//! Mitigation shootout on a multi-server cluster.
//!
//! Runs a small mix of MapReduce and Spark jobs over three simulated servers
//! with one fio and one STREAM antagonist, under each mitigation strategy,
//! and reports mean job completion time and resource-utilization efficiency.
//!
//! Run with: `cargo run --release --example mitigation_shootout`

use perfcloud::baselines::{Dolly, LatePolicy};
use perfcloud::cluster::{
    mean_efficiency, ClusterSpec, Experiment, ExperimentConfig, Mitigation, MixConfig, WorkloadMix,
};
use perfcloud::core::PerfCloudConfig;
use perfcloud::prelude::*;

fn main() {
    let seed = 42;
    let mut cluster = ClusterSpec::large_scale(seed);
    cluster.servers = 3;

    let mix_cfg = MixConfig {
        mapreduce_jobs: 4,
        spark_jobs: 4,
        small_fraction: 0.75,
        mean_arrival_gap: 8.0,
        servers: cluster.servers,
        fio_antagonists: 1,
        stream_antagonists: 1,
    };
    let rng = RngFactory::new(seed);
    let mut mix = WorkloadMix::generate(&mix_cfg, &rng);
    mix.stagger_antagonists(&rng, 60.0);
    println!(
        "{} jobs, {} tasks, {} antagonists on {} servers\n",
        mix.jobs.len(),
        mix.total_tasks(),
        mix.antagonists.len(),
        cluster.servers
    );

    let strategies: Vec<(&str, Mitigation)> = vec![
        ("default", Mitigation::Default),
        ("late", Mitigation::Late(LatePolicy::default())),
        ("dolly-4", Mitigation::Dolly(Dolly::new(4))),
        ("perfcloud", Mitigation::PerfCloud(PerfCloudConfig::default())),
    ];

    println!("{:<10}  {:>12}  {:>10}", "system", "mean JCT (s)", "efficiency");
    for (name, mitigation) in strategies {
        let mut cfg = ExperimentConfig::new(cluster.clone(), mitigation);
        cfg.jobs = mix.jobs.clone();
        cfg.antagonists = mix.antagonists.clone();
        cfg.max_sim_time = SimTime::from_secs(7_200);
        let r = Experiment::build(cfg).run();
        let mean_jct =
            r.outcomes.iter().map(|o| o.jct).sum::<f64>() / r.outcomes.len().max(1) as f64;
        println!("{:<10}  {:>12.1}  {:>10.2}", name, mean_jct, mean_efficiency(&r.outcomes));
    }
    println!("\n(Dolly trades efficiency for speed; PerfCloud gets both by throttling the");
    println!(" antagonists at the host instead of duplicating work.)");
}
