//! Component-level walkthrough of PerfCloud's detection pipeline.
//!
//! Drives a single simulated server directly (no experiment harness):
//! four victim VMs run a mild I/O workload, a fio antagonist arrives
//! mid-run, and we watch each stage of the pipeline react —
//! the monitor's smoothed per-VM metrics, the across-VM deviation, the
//! threshold detector, and the Pearson-based antagonist identifier.
//!
//! Run with: `cargo run --release --example interference_detection`

use perfcloud::core::antagonist::Resource;
use perfcloud::core::detector::{detect, deviation_across_vms};
use perfcloud::core::{AntagonistIdentifier, PerfCloudConfig, PerformanceMonitor, VmMetricKind};
use perfcloud::host::{PhysicalServer, ServerConfig, ServerId, VmConfig, VmId};
use perfcloud::prelude::*;
use perfcloud::workloads::FioRandRead;

fn main() {
    let dt = SimDuration::from_millis(100);
    let mut server =
        PhysicalServer::new(ServerId(0), ServerConfig::chameleon(), RngFactory::new(7), dt);

    // Four victim VMs with a mild random-read load.
    let victims: Vec<VmId> = (0..4).map(VmId).collect();
    for &vm in &victims {
        server.add_vm(vm, VmConfig::high_priority());
        server.spawn(vm, Box::new(FioRandRead::with_rate(800.0, 4096.0, None)));
    }
    // The suspect VM exists from the start but idles until t = 30 s.
    let suspect = VmId(10);
    server.add_vm(suspect, VmConfig::low_priority());

    let config = PerfCloudConfig::default();
    let mut monitor = PerformanceMonitor::new(&config);
    let mut identifier = AntagonistIdentifier::new(&config);

    println!("t(s)  io-deviation  contended  suspect-corr  identified");
    let mut now = SimTime::ZERO;
    monitor.sample(now, &server);
    for interval in 1..=16u64 {
        if interval == 6 {
            // t = 30 s: the antagonist starts a saturating random-read load.
            server.spawn(suspect, Box::new(FioRandRead::new(None).with_modulation(99)));
        }
        for _ in 0..50 {
            server.tick(dt);
        }
        now += SimDuration::from_secs(5.0);

        monitor.sample(now, &server);
        let signal = detect(&monitor, &victims, config.h_io, config.h_cpi);
        identifier.observe(now, signal.io_deviation, signal.cpi_deviation, &monitor, &[suspect]);
        let corr = identifier.correlation(suspect, Resource::Io);
        let found = identifier.identify(&[suspect], Resource::Io);

        println!(
            "{:>4}  {:>12}  {:>9}  {:>12}  {:>10}",
            now.as_secs_f64() as u64,
            signal.io_deviation.map(|d| format!("{d:8.2}")).unwrap_or_else(|| "-".into()),
            signal.io_contended,
            corr.map(|r| format!("{r:+.3}")).unwrap_or_else(|| "-".into()),
            if found.contains(&suspect) { "YES" } else { "" },
        );
    }

    // The raw smoothed series are available for inspection too.
    let dev = deviation_across_vms(&monitor, &victims, VmMetricKind::IowaitRatio);
    println!(
        "\nfinal across-VM iowait-ratio deviation: {:.2} ms/op (threshold {})",
        dev.unwrap_or(0.0),
        config.h_io
    );
}
