//! The CUBIC cap dynamics on their own — no simulation required.
//!
//! Prints an ASCII plot of the normalized cap after a contention event,
//! labelling the three regions of the paper's Fig. 7 (initial growth,
//! plateau, probing), plus a second contention event showing the
//! multiplicative decrease from the new `C_max`.
//!
//! Run with: `cargo run --example cubic_control`

use perfcloud::core::cubic::{CubicController, CubicState, GrowthRegion};

fn bar(cap: f64) -> String {
    let width = (cap * 40.0).round().clamp(0.0, 60.0) as usize;
    "#".repeat(width)
}

fn region(r: GrowthRegion) -> &'static str {
    match r {
        GrowthRegion::InitialGrowth => "initial growth",
        GrowthRegion::Plateau => "plateau",
        GrowthRegion::Probing => "probing",
    }
}

fn main() {
    let controller = CubicController::paper(); // beta = 0.8, gamma = 0.005
    let mut state = CubicState::new(); // cap = observed usage = 1.0

    println!("interval  cap    region          |cap|");
    for t in 0..=30u64 {
        // Contention is detected at intervals 2 and 18.
        let contended = t == 2 || t == 18;
        let cap = controller.step(&mut state, contended);
        println!(
            "{:>8}  {:>5.3}  {:<14}  {}{}",
            t,
            cap,
            if contended { "DECREASE" } else { region(state.region()) },
            bar(cap),
            if contended { "  <- I(t) > H" } else { "" },
        );
    }
}
