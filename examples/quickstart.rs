//! Quickstart: the paper's headline result in ~40 lines.
//!
//! Builds the 12-node virtual Hadoop cluster on one simulated Chameleon
//! server, runs a terasort job three ways — alone, with a fio antagonist,
//! and with the antagonist under PerfCloud control — and prints the job
//! completion times.
//!
//! Run with: `cargo run --release --example quickstart`

use perfcloud::cluster::{
    AntagonistKind, AntagonistPlacement, ClusterSpec, Experiment, ExperimentConfig, Mitigation,
};
use perfcloud::core::PerfCloudConfig;
use perfcloud::frameworks::Benchmark;
use perfcloud::prelude::*;

fn run(mitigation: Mitigation, with_antagonist: bool) -> f64 {
    let mut cfg = ExperimentConfig::new(ClusterSpec::small_scale(42), mitigation);
    // One terasort job (20 maps + 8 reduces), submitted at t = 5 s.
    cfg.jobs.push((SimTime::from_secs(5), Benchmark::Terasort.job(20)));
    if with_antagonist {
        // A colocated low-priority VM starts hammering the disk at t = 15 s.
        cfg.antagonists.push(
            AntagonistPlacement::pinned(AntagonistKind::Fio, 0).starting_at(SimTime::from_secs(15)),
        );
    }
    cfg.max_sim_time = SimTime::from_secs(3_600);
    Experiment::build(cfg).run().sole_jct()
}

fn main() {
    println!("terasort on a 12-node virtual Hadoop cluster (simulated testbed)\n");

    let alone = run(Mitigation::Default, false);
    println!("  alone:                      {alone:6.1} s");

    let contended = run(Mitigation::Default, true);
    println!(
        "  with fio antagonist:        {contended:6.1} s  ({:+.0}%)",
        (contended / alone - 1.0) * 100.0
    );

    let protected = run(Mitigation::PerfCloud(PerfCloudConfig::default()), true);
    println!(
        "  with antagonist + PerfCloud:{protected:6.1} s  ({:+.0}%)",
        (protected / alone - 1.0) * 100.0
    );

    let recovered = (contended - protected) / (contended - alone) * 100.0;
    println!("\nPerfCloud recovered {recovered:.0}% of the interference-induced slowdown.");
}
