//! Flight-recorder walkthrough: watch PerfCloud think.
//!
//! Replays the paper's Fig. 10 shape — a terasort job on one server, a fio
//! antagonist arriving mid-run — with flight recorders attached to the
//! node manager, the control plane and its network. Afterwards it prints
//! the merged, sim-time-ordered event log (detection onset, antagonist
//! identification, throttling, CUBIC cap updates, placement epochs) and
//! writes a Chrome-trace JSON you can open at <https://ui.perfetto.dev>.
//!
//! Everything here is deterministic: run it twice and both the printed log
//! and the trace file are byte-identical.
//!
//! Run with: `cargo run --example flight_recorder`

use perfcloud::cluster::{
    AntagonistKind, AntagonistPlacement, ClusterSpec, Experiment, ExperimentConfig, Mitigation,
};
use perfcloud::core::PerfCloudConfig;
use perfcloud::frameworks::Benchmark;
use perfcloud::sim::SimTime;

fn main() {
    let mut cfg = ExperimentConfig::new(
        ClusterSpec::small_scale(42),
        Mitigation::PerfCloud(PerfCloudConfig::default()),
    );
    cfg.jobs.push((SimTime::from_secs(5), Benchmark::Terasort.job(20)));
    cfg.antagonists.push(
        AntagonistPlacement::pinned(AntagonistKind::Fio, 0).starting_at(SimTime::from_secs(15)),
    );
    cfg.max_sim_time = SimTime::from_secs(7_200);

    let mut experiment = Experiment::build(cfg);
    experiment.enable_observability(4096);
    let result = experiment.run();

    println!("job completion time: {:.1}s", result.sole_jct());
    println!(
        "ingest: {} samples recorded, {} rejected (stale={}, duplicates={}, regressions={})",
        result.ingest.recorded,
        result.ingest.rejected(),
        result.ingest.stale,
        result.ingest.duplicates,
        result.ingest.regressions,
    );

    println!("\nmetrics snapshot:");
    for (name, value) in experiment.metrics_snapshot() {
        println!("  {name} = {value}");
    }

    // The merged event log: every track, in deterministic (time, track,
    // sequence) order. `[server0]` lines are the node-manager agent —
    // detection, identification, throttling, cap updates; `[ctrl]` and
    // `[net]` are the control plane publishing placement epochs.
    println!("\nlast 40 flight-recorder events:");
    print!("{}", experiment.flight_dump(40));

    let path = "flight_recorder_trace.json";
    match std::fs::write(path, experiment.chrome_trace()) {
        Ok(()) => println!("\nwrote {path} — open it at https://ui.perfetto.dev"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
