//! CPU time allocation: weighted max-min fair sharing with hard caps.
//!
//! Each tick, every VM demands some core-seconds (bounded by its vCPU count
//! and any `vcpu_quota` hard cap). If total demand exceeds the machine's
//! core-seconds for the tick, the scheduler performs progressive filling
//! (weighted max-min fairness, weights = vCPU counts) — the behaviour of a
//! work-conserving proportional-share hypervisor scheduler like CFS/KVM.

/// One VM's CPU request for a tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuRequest {
    /// Core-seconds wanted this tick (already bounded by parallelism).
    pub demand: f64,
    /// Hard limit in core-seconds for this tick (vCPUs and `vcpu_quota`).
    pub limit: f64,
    /// Fair-share weight (vCPU count).
    pub weight: f64,
}

/// Allocates `capacity` core-seconds among the requests with weighted
/// max-min fairness. Returns per-request allocations, each ≤
/// `min(demand, limit)`, summing to ≤ `capacity`. Work-conserving: if total
/// effective demand ≤ capacity everyone gets their demand.
pub fn allocate(requests: &[CpuRequest], capacity: f64) -> Vec<f64> {
    let n = requests.len();
    let mut alloc = vec![0.0; n];
    if n == 0 || capacity <= 0.0 {
        return alloc;
    }
    // Effective demand per VM.
    let want: Vec<f64> = requests.iter().map(|r| r.demand.min(r.limit).max(0.0)).collect();
    let mut remaining = capacity;
    let mut active: Vec<usize> = (0..n).filter(|&i| want[i] > 0.0).collect();
    // Progressive filling: in each round, offer every active VM its weighted
    // share of the remaining capacity; VMs whose residual want is below the
    // share are satisfied and leave, freeing capacity for the next round.
    while !active.is_empty() && remaining > 1e-15 {
        let total_weight: f64 = active.iter().map(|&i| requests[i].weight.max(1e-9)).sum();
        let mut satisfied: Vec<usize> = Vec::new();
        let mut consumed = 0.0;
        for &i in &active {
            let share = remaining * requests[i].weight.max(1e-9) / total_weight;
            let residual = want[i] - alloc[i];
            if residual <= share {
                alloc[i] = want[i];
                consumed += residual;
                satisfied.push(i);
            }
        }
        if satisfied.is_empty() {
            // No one is satisfiable: split the remainder by weight and stop.
            for &i in &active {
                let share = remaining * requests[i].weight.max(1e-9) / total_weight;
                alloc[i] += share;
            }
            break;
        }
        remaining -= consumed;
        active.retain(|i| !satisfied.contains(i));
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(demand: f64, limit: f64, weight: f64) -> CpuRequest {
        CpuRequest { demand, limit, weight }
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(allocate(&[], 10.0).is_empty());
    }

    #[test]
    fn undersubscribed_everyone_satisfied() {
        let rs = [req(1.0, 2.0, 2.0), req(3.0, 4.0, 2.0)];
        let a = allocate(&rs, 10.0);
        assert_eq!(a, vec![1.0, 3.0]);
    }

    #[test]
    fn oversubscribed_split_by_weight() {
        let rs = [req(10.0, 10.0, 1.0), req(10.0, 10.0, 3.0)];
        let a = allocate(&rs, 4.0);
        assert!((a[0] - 1.0).abs() < 1e-9);
        assert!((a[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn limit_binds_before_demand() {
        let rs = [req(10.0, 0.5, 1.0), req(10.0, 10.0, 1.0)];
        let a = allocate(&rs, 4.0);
        assert!((a[0] - 0.5).abs() < 1e-9, "capped VM gets its cap");
        assert!((a[1] - 3.5).abs() < 1e-9, "work-conserving: slack flows to the other VM");
    }

    #[test]
    fn small_demand_releases_share_to_big_demand() {
        let rs = [req(0.2, 10.0, 1.0), req(100.0, 100.0, 1.0)];
        let a = allocate(&rs, 2.0);
        assert!((a[0] - 0.2).abs() < 1e-9);
        assert!((a[1] - 1.8).abs() < 1e-9);
    }

    #[test]
    fn total_never_exceeds_capacity() {
        let rs = [req(5.0, 5.0, 1.0), req(7.0, 6.0, 2.0), req(0.1, 1.0, 1.0)];
        let a = allocate(&rs, 3.0);
        let sum: f64 = a.iter().sum();
        assert!(sum <= 3.0 + 1e-9, "sum {sum}");
        for (x, r) in a.iter().zip(&rs) {
            assert!(*x <= r.demand.min(r.limit) + 1e-9);
            assert!(*x >= 0.0);
        }
    }

    #[test]
    fn zero_capacity_allocates_nothing() {
        let rs = [req(1.0, 1.0, 1.0)];
        assert_eq!(allocate(&rs, 0.0), vec![0.0]);
    }

    #[test]
    fn zero_demand_gets_zero() {
        let rs = [req(0.0, 5.0, 1.0), req(4.0, 5.0, 1.0)];
        let a = allocate(&rs, 2.0);
        assert_eq!(a[0], 0.0);
        assert!((a[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn equal_weights_equal_split() {
        let rs = [req(10.0, 10.0, 2.0), req(10.0, 10.0, 2.0), req(10.0, 10.0, 2.0)];
        let a = allocate(&rs, 6.0);
        for x in a {
            assert!((x - 2.0).abs() < 1e-9);
        }
    }
}
