//! Shared last-level cache and memory-bandwidth contention model.
//!
//! The model produces the two `perf_event` observables the paper's pipeline
//! consumes: per-VM **LLC miss rate** and **CPI**.
//!
//! * **LLC**: each active VM's hot working set competes for cache capacity.
//!   With total footprint `W` and cache size `L`, a VM retains the fraction
//!   `a = min(1, L / W)` of the residency it needs, so its hit rate is
//!   `cache_reuse × a` and its miss rate `1 − cache_reuse × a`. A streaming
//!   antagonist (huge `working_set`, `cache_reuse ≈ 0`) both misses
//!   constantly itself *and* evicts everyone else — the paper's STREAM
//!   behaviour.
//! * **Bandwidth**: missing references consume DRAM bandwidth (64-byte lines
//!   plus writeback traffic). Offered utilization ρ inflates the per-miss
//!   stall through a capped `1/(1−ρ)` queueing factor.
//! * **CPI**: `base_cpi + refs_per_instr × miss_rate × penalty × queue ×
//!   luck`. The luck factor (per-VM AR(1), amplitude grows with ρ) creates
//!   the across-VM CPI deviation that PerfCloud detects.

use crate::config::MemoryConfig;

/// Bytes moved per LLC miss (line fill + average writeback share).
pub const BYTES_PER_MISS: f64 = 96.0;

/// One VM's memory behaviour this tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemRequest {
    /// Instructions the VM wants to execute this tick (pre-allocation,
    /// already clamped by CPU caps).
    pub instr_demand: f64,
    /// Activity level in [0, 1]: the fraction of the VM's full-speed
    /// instruction rate this demand represents. A CPU-capped streamer
    /// sweeps its array proportionally slower, so its *effective* cache
    /// footprint shrinks with activity.
    pub activity: f64,
    /// LLC references per instruction.
    pub refs_per_instr: f64,
    /// Hot working set in bytes.
    pub working_set: f64,
    /// Fraction of references that would hit given unlimited cache.
    pub cache_reuse: f64,
    /// Base CPI of the instruction mix with a warm, private cache.
    pub base_cpi: f64,
    /// The VM's current luck multiplier.
    pub luck: f64,
}

/// Derived memory outcome for one VM this tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemOutcome {
    /// Effective cycles per instruction under current contention.
    pub cpi: f64,
    /// LLC miss rate (misses / references).
    pub miss_rate: f64,
}

/// Result of one tick of the memory model.
#[derive(Debug, Clone, PartialEq)]
pub struct MemTick {
    /// Per-VM outcomes, index-aligned with the request slice.
    pub outcomes: Vec<MemOutcome>,
    /// Offered DRAM bandwidth utilization (may exceed 1 under overload).
    pub offered_utilization: f64,
}

/// Evaluates the memory model for one tick of `dt` seconds.
pub fn model(requests: &[MemRequest], cfg: &MemoryConfig, dt: f64) -> MemTick {
    assert!(dt > 0.0, "tick length must be positive");
    // Cache squeeze: total active footprint vs. LLC capacity. A VM's
    // eviction pressure is bounded by the bytes it can actually touch within
    // a cache-residency window — a CPU-capped streamer sweeps its huge array
    // slowly and evicts correspondingly less.
    const EVICTION_WINDOW_SECS: f64 = 0.01;
    let total_ws: f64 = requests
        .iter()
        .filter(|r| r.instr_demand > 0.0)
        .map(|r| {
            let touched = (r.instr_demand / dt) * r.refs_per_instr * 64.0 * EVICTION_WINDOW_SECS;
            (r.working_set * r.activity.clamp(0.0, 1.0)).min(touched)
        })
        .sum();
    let adequacy = if total_ws > 0.0 { (cfg.llc_bytes / total_ws).min(1.0) } else { 1.0 };

    let miss_rates: Vec<f64> = requests
        .iter()
        .map(|r| (1.0 - r.cache_reuse.clamp(0.0, 1.0) * adequacy).clamp(0.0, 1.0))
        .collect();

    // Offered DRAM bandwidth demand.
    let demand_bytes: f64 = requests
        .iter()
        .zip(&miss_rates)
        .map(|(r, &m)| r.instr_demand.max(0.0) * r.refs_per_instr * m * BYTES_PER_MISS)
        .sum();
    let offered = demand_bytes / (cfg.bandwidth_bps * dt);

    let rho = offered.min(0.999);
    let queue = (1.0 / (1.0 - rho)).min(cfg.max_queue_factor);

    let outcomes = requests
        .iter()
        .zip(&miss_rates)
        .map(|(r, &m)| {
            // Latency sensitivity scales with reuse: demand (pointer-chasing,
            // reuse-heavy) loads stall for the full queueing delay, while
            // streaming access (reuse ≈ 0) is prefetch-covered and
            // bandwidth-bound, feeling queueing only weakly.
            let sensitivity = r.cache_reuse.clamp(0.0, 1.0);
            let effective_queue = queue.powf(sensitivity);
            let stall =
                r.refs_per_instr * m * cfg.miss_penalty_cycles * effective_queue * r.luck.max(0.0);
            MemOutcome { cpi: r.base_cpi + stall, miss_rate: m }
        })
        .collect();

    MemTick { outcomes, offered_utilization: offered }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MemoryConfig {
        MemoryConfig::default()
    }

    fn victim(instr: f64) -> MemRequest {
        MemRequest {
            instr_demand: instr,
            activity: 1.0,
            refs_per_instr: 0.02,
            working_set: 4.0e6,
            cache_reuse: 0.9,
            base_cpi: 1.0,
            luck: 1.0,
        }
    }

    fn stream(instr: f64) -> MemRequest {
        MemRequest {
            instr_demand: instr,
            activity: 1.0,
            refs_per_instr: 0.25,
            working_set: 2.0e9,
            cache_reuse: 0.0,
            base_cpi: 1.0,
            luck: 1.0,
        }
    }

    #[test]
    fn empty_tick_is_idle() {
        let t = model(&[], &cfg(), 0.1);
        assert!(t.outcomes.is_empty());
        assert_eq!(t.offered_utilization, 0.0);
    }

    #[test]
    fn lone_small_footprint_has_low_miss_and_base_cpi() {
        let t = model(&[victim(1e8)], &cfg(), 0.1);
        let o = t.outcomes[0];
        // Footprint (4 MB) fits in the 60 MB LLC: miss rate = 1 - reuse.
        assert!((o.miss_rate - 0.1).abs() < 1e-9, "miss {:.3}", o.miss_rate);
        assert!(o.cpi < 1.1, "cpi {:.3}", o.cpi);
        assert!(t.offered_utilization < 0.01);
    }

    #[test]
    fn streaming_antagonist_always_misses() {
        let t = model(&[stream(1e9)], &cfg(), 0.1);
        assert!((t.outcomes[0].miss_rate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn colocated_stream_raises_victim_miss_rate_and_cpi() {
        let alone = model(&[victim(1e8)], &cfg(), 0.1);
        let shared = model(&[victim(1e8), stream(2e9), stream(2e9)], &cfg(), 0.1);
        let v_alone = alone.outcomes[0];
        let v_shared = shared.outcomes[0];
        assert!(v_shared.miss_rate > 5.0 * v_alone.miss_rate);
        assert!(v_shared.cpi > 1.5 * v_alone.cpi, "{} !> {}", v_shared.cpi, v_alone.cpi);
        assert!(shared.offered_utilization > alone.offered_utilization);
    }

    #[test]
    fn idle_vm_does_not_squeeze_cache() {
        // A VM with zero instruction demand contributes no footprint.
        let idle_stream = MemRequest { instr_demand: 0.0, ..stream(0.0) };
        let t = model(&[victim(1e8), idle_stream], &cfg(), 0.1);
        assert!((t.outcomes[0].miss_rate - 0.1).abs() < 1e-9);
    }

    #[test]
    fn queue_factor_is_capped_under_overload() {
        let heavy = [stream(1e12), stream(1e12), victim(1e8)];
        let t = model(&heavy, &cfg(), 0.1);
        let v = t.outcomes[2];
        let max_stall = 0.02 * 1.0 * cfg().miss_penalty_cycles * cfg().max_queue_factor;
        assert!(v.cpi <= 1.0 + max_stall + 1e-9);
        assert!(t.offered_utilization > 1.0);
    }

    #[test]
    fn luck_scales_only_the_stall_component() {
        let mut lucky = victim(1e8);
        lucky.luck = 0.0;
        let t = model(&[lucky, stream(2e9)], &cfg(), 0.1);
        assert!((t.outcomes[0].cpi - 1.0).abs() < 1e-12, "zero luck => base CPI");
    }

    #[test]
    fn miss_rate_bounded_in_unit_interval() {
        for reuse in [0.0, 0.5, 1.0] {
            for ws in [0.0, 1e6, 1e12] {
                let r = MemRequest {
                    instr_demand: 1e8,
                    activity: 1.0,
                    refs_per_instr: 0.1,
                    working_set: ws,
                    cache_reuse: reuse,
                    base_cpi: 1.0,
                    luck: 1.0,
                };
                let t = model(&[r], &cfg(), 0.1);
                let m = t.outcomes[0].miss_rate;
                assert!((0.0..=1.0).contains(&m), "miss {m}");
            }
        }
    }

    #[test]
    fn perfect_reuse_fitting_cache_never_misses() {
        let r = MemRequest {
            instr_demand: 1e8,
            activity: 1.0,
            refs_per_instr: 0.1,
            working_set: 1e6,
            cache_reuse: 1.0,
            base_cpi: 0.8,
            luck: 1.0,
        };
        let t = model(&[r], &cfg(), 0.1);
        assert!(t.outcomes[0].miss_rate.abs() < 1e-9);
        assert!((t.outcomes[0].cpi - 0.8).abs() < 1e-9);
    }
}
