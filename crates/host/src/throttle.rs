//! Resource caps: the blkio throttling policy and CPU hard caps.
//!
//! These are the actuators PerfCloud drives (§III-C): the node manager
//! applies I/O caps "through block I/O subsystem's throttling policy" and
//! CPU caps "through `vcpu_quota`". In the fluid model a cap simply bounds
//! the rate a VM may consume within a tick; an uncapped VM is bounded only by
//! its vCPU count and the device.

/// Per-VM I/O throttle (the blkio throttling policy). `None` = unthrottled.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IoThrottle {
    /// Cap on operations per second.
    pub iops: Option<f64>,
    /// Cap on bytes per second.
    pub bps: Option<f64>,
}

impl IoThrottle {
    /// No throttling.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Clamp an I/O demand `(ops, bytes)` for a tick of `dt` seconds. The
    /// two caps apply independently; ops and bytes scale together by the
    /// tighter of the two ratios so the op mix is preserved.
    pub fn clamp(&self, ops: f64, bytes: f64, dt: f64) -> (f64, f64) {
        debug_assert!(dt > 0.0);
        let mut scale: f64 = 1.0;
        if let Some(cap) = self.iops {
            let max_ops = cap.max(0.0) * dt;
            if ops > max_ops {
                scale = scale.min(if ops > 0.0 { max_ops / ops } else { 1.0 });
            }
        }
        if let Some(cap) = self.bps {
            let max_bytes = cap.max(0.0) * dt;
            if bytes > max_bytes {
                scale = scale.min(if bytes > 0.0 { max_bytes / bytes } else { 1.0 });
            }
        }
        (ops * scale, bytes * scale)
    }

    /// True if any cap is set.
    pub fn is_throttled(&self) -> bool {
        self.iops.is_some() || self.bps.is_some()
    }
}

/// Per-VM CPU hard cap (`vcpu_quota`), in cores. `None` = only bounded by
/// the VM's vCPU count.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CpuCap {
    /// Maximum cores' worth of CPU time per wall second.
    pub cores: Option<f64>,
}

impl CpuCap {
    /// No cap.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Effective core limit for a VM with `vcpus` virtual CPUs.
    pub fn effective_cores(&self, vcpus: u32) -> f64 {
        let base = vcpus as f64;
        match self.cores {
            None => base,
            Some(c) => c.clamp(0.0, base),
        }
    }

    /// True if a cap is set.
    pub fn is_capped(&self) -> bool {
        self.cores.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_passes_demand_through() {
        let t = IoThrottle::unlimited();
        assert_eq!(t.clamp(100.0, 1e6, 0.1), (100.0, 1e6));
        assert!(!t.is_throttled());
    }

    #[test]
    fn iops_cap_scales_ops_and_bytes_together() {
        let t = IoThrottle { iops: Some(500.0), bps: None };
        // Demand 100 ops in 0.1 s = 1000 ops/s, cap 500 → half.
        let (ops, bytes) = t.clamp(100.0, 1e6, 0.1);
        assert!((ops - 50.0).abs() < 1e-9);
        assert!((bytes - 5e5).abs() < 1e-9);
        assert!(t.is_throttled());
    }

    #[test]
    fn bps_cap_binds_when_tighter() {
        let t = IoThrottle { iops: Some(10_000.0), bps: Some(1e6) };
        // 0.1 s tick: byte budget 1e5; demand 1e6 bytes → scale 0.1.
        let (ops, bytes) = t.clamp(100.0, 1e6, 0.1);
        assert!((bytes - 1e5).abs() < 1e-6);
        assert!((ops - 10.0).abs() < 1e-9);
    }

    #[test]
    fn cap_larger_than_demand_is_noop() {
        let t = IoThrottle { iops: Some(1e9), bps: Some(1e12) };
        assert_eq!(t.clamp(10.0, 100.0, 1.0), (10.0, 100.0));
    }

    #[test]
    fn zero_cap_blocks_everything() {
        let t = IoThrottle { iops: Some(0.0), bps: None };
        let (ops, bytes) = t.clamp(10.0, 100.0, 1.0);
        assert_eq!(ops, 0.0);
        assert_eq!(bytes, 0.0);
    }

    #[test]
    fn zero_demand_is_stable() {
        let t = IoThrottle { iops: Some(5.0), bps: Some(5.0) };
        assert_eq!(t.clamp(0.0, 0.0, 1.0), (0.0, 0.0));
    }

    #[test]
    fn cpu_cap_clamps_to_vcpus() {
        let c = CpuCap { cores: Some(8.0) };
        assert_eq!(c.effective_cores(2), 2.0); // cannot exceed vCPUs
        let c = CpuCap { cores: Some(0.4) };
        assert_eq!(c.effective_cores(2), 0.4);
        assert!(c.is_capped());
    }

    #[test]
    fn cpu_uncapped_is_vcpus() {
        let c = CpuCap::unlimited();
        assert_eq!(c.effective_cores(4), 4.0);
        assert!(!c.is_capped());
    }

    #[test]
    fn negative_cap_treated_as_zero() {
        let c = CpuCap { cores: Some(-1.0) };
        assert_eq!(c.effective_cores(2), 0.0);
        let t = IoThrottle { iops: Some(-5.0), bps: None };
        let (ops, _) = t.clamp(10.0, 0.0, 1.0);
        assert_eq!(ops, 0.0);
    }
}
