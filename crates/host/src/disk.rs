//! Shared block-device model with queueing-delay accounting.
//!
//! A VM's I/O demand is translated into *device time*: random ops are
//! seek-bound (cost `ops / max_random_iops`), sequential transfers are
//! bandwidth-bound (cost `bytes / max_seq_bps`). Device time within a tick is
//! shared max-min fairly across VMs (equal weights, as a fair-queueing
//! elevator would), after per-VM blkio throttles have already clamped the
//! demand that reaches the queue.
//!
//! The queueing wait charged per completed op grows with *offered*
//! utilization ρ like the M/M/1 factor `ρ/(1-ρ)` (capped), multiplied by the
//! VM's current luck factor — this is what makes the across-VM iowait-ratio
//! deviation a contention signal (see [`crate::jitter`]).

use crate::config::DiskConfig;
use crate::cpu::{allocate as waterfill, CpuRequest};

/// One VM's I/O demand reaching the device this tick (post-throttle).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiskRequest {
    /// Random-pattern operations wanted.
    pub rand_ops: f64,
    /// Bytes attached to the random ops.
    pub rand_bytes: f64,
    /// Sequential-pattern operations wanted.
    pub seq_ops: f64,
    /// Bytes attached to the sequential ops.
    pub seq_bytes: f64,
    /// The VM's current luck multiplier (see [`crate::jitter`]).
    pub luck: f64,
    /// Effective queue depth of the VM's I/O streams (0 = use the device
    /// config's default).
    pub queue_depth: f64,
}

/// What one VM's I/O achieved this tick.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiskOutcome {
    /// Operations completed.
    pub ops: f64,
    /// Bytes transferred.
    pub bytes: f64,
    /// Queueing wait accrued by the completed ops, seconds.
    pub wait: f64,
}

/// Result of one tick of device arbitration.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskTick {
    /// Per-VM outcomes, index-aligned with the request slice.
    pub outcomes: Vec<DiskOutcome>,
    /// Offered utilization ρ (total demanded device time / tick length).
    /// May exceed 1 under overload.
    pub offered_utilization: f64,
}

/// Device time needed to serve a request in full, seconds. Random ops pay
/// the seek budget plus their (usually negligible) transfer time; sequential
/// transfers pay bandwidth only.
fn device_time(req: &DiskRequest, cfg: &DiskConfig, speed: f64) -> f64 {
    let iops = cfg.max_random_iops * speed;
    let bps = cfg.max_seq_bps * speed;
    req.rand_ops / iops + (req.rand_bytes + req.seq_bytes) / bps
}

/// Arbitrates the device for one tick of `dt` seconds.
pub fn allocate(requests: &[DiskRequest], cfg: &DiskConfig, speed: f64, dt: f64) -> DiskTick {
    assert!(dt > 0.0, "tick length must be positive");
    assert!(speed > 0.0, "speed factor must be positive");
    let want_time: Vec<f64> = requests.iter().map(|r| device_time(r, cfg, speed)).collect();
    let offered: f64 = want_time.iter().sum::<f64>() / dt;

    // Share device time max-min fairly (equal weights).
    let cpu_reqs: Vec<CpuRequest> =
        want_time.iter().map(|&w| CpuRequest { demand: w, limit: w, weight: 1.0 }).collect();
    let granted = waterfill(&cpu_reqs, dt);

    // Per-op queueing wait: (queue factor − 1) service times, scaled by luck.
    let rho = offered.min(0.999);
    let queue_factor = (1.0 / (1.0 - rho)).min(cfg.max_queue_factor);
    let base_wait = cfg.base_service_time / speed * (queue_factor - 1.0);

    let service = cfg.base_service_time / speed;
    let outcomes = requests
        .iter()
        .zip(&want_time)
        .zip(&granted)
        .map(|((req, &want), &got)| {
            let frac = if want > 0.0 { (got / want).clamp(0.0, 1.0) } else { 0.0 };
            let wait_per_op = base_wait * req.luck.max(0.0);
            // Closed-loop latency effect: a requester with `queue_depth`
            // outstanding ops completes at most depth/(S + W) per S·depth of
            // demand — queueing delay throttles victims even when fair-share
            // bandwidth is nominally available. Deep-queue workloads (fio)
            // are far less latency-sensitive than buffered guest streams.
            let depth = if req.queue_depth > 0.0 { req.queue_depth } else { cfg.queue_depth };
            let closed_loop = 1.0 / (1.0 + wait_per_op / (service * depth));
            let eff = frac * closed_loop;
            let ops = (req.rand_ops + req.seq_ops) * eff;
            let bytes = (req.rand_bytes + req.seq_bytes) * eff;
            let wait = ops * wait_per_op;
            DiskOutcome { ops, bytes, wait }
        })
        .collect();

    DiskTick { outcomes, offered_utilization: offered }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DiskConfig {
        DiskConfig::default()
    }

    fn rand_req(ops: f64, luck: f64) -> DiskRequest {
        DiskRequest { rand_ops: ops, rand_bytes: ops * 4096.0, luck, ..Default::default() }
    }

    #[test]
    fn idle_device_is_idle() {
        let t = allocate(&[], &cfg(), 1.0, 0.1);
        assert!(t.outcomes.is_empty());
        assert_eq!(t.offered_utilization, 0.0);
    }

    #[test]
    fn undersubscribed_demand_fully_served() {
        // 100 ops in 0.1 s on a 4000-IOPS device = 25% utilization.
        let reqs = [rand_req(100.0, 1.0)];
        let t = allocate(&reqs, &cfg(), 1.0, 0.1);
        // Low utilization: nearly all demand served (small closed-loop loss).
        assert!(t.outcomes[0].ops > 95.0 && t.outcomes[0].ops <= 100.0);
        // 100/4000 IOPS = 0.25 seek time plus a sliver of transfer time.
        assert!((0.25..0.27).contains(&t.offered_utilization));
        // Low utilization => modest wait.
        assert!(t.outcomes[0].wait < 100.0 * cfg().base_service_time);
    }

    #[test]
    fn oversubscribed_split_fairly() {
        // Each wants the whole device.
        let reqs = [rand_req(400.0, 1.0), rand_req(400.0, 1.0)];
        let t = allocate(&reqs, &cfg(), 1.0, 0.1);
        assert!((t.outcomes[0].ops - t.outcomes[1].ops).abs() < 1e-6, "equal split");
        // Fair share is 200 ops each; saturation latency costs some of it.
        assert!(t.outcomes[0].ops < 220.0 && t.outcomes[0].ops > 60.0);
        assert!((2.0..2.2).contains(&t.offered_utilization));
    }

    #[test]
    fn small_demand_is_protected_but_feels_latency() {
        let reqs = [rand_req(10.0, 1.0), rand_req(4000.0, 1.0)];
        let t = allocate(&reqs, &cfg(), 1.0, 0.1);
        // The small request fits inside its fair share of bandwidth, but
        // saturation latency (the closed-loop factor) still slows it — this
        // is precisely why victims suffer even under fair queueing.
        let small = t.outcomes[0].ops;
        assert!(small < 10.0 && small > 2.0, "got {small}");
        // The big one gets most of the rest of the device time.
        let big = t.outcomes[1].ops;
        assert!(big < 4000.0 && big > 100.0, "got {big}");
        assert!(big > 10.0 * small);
    }

    #[test]
    fn wait_grows_with_utilization() {
        let low = allocate(&[rand_req(40.0, 1.0)], &cfg(), 1.0, 0.1);
        let high = allocate(&[rand_req(360.0, 1.0)], &cfg(), 1.0, 0.1);
        let w_low = low.outcomes[0].wait / low.outcomes[0].ops;
        let w_high = high.outcomes[0].wait / high.outcomes[0].ops;
        assert!(
            w_high > 5.0 * w_low,
            "wait/op should blow up near saturation: {w_low} vs {w_high}"
        );
    }

    #[test]
    fn unlucky_vm_waits_more_and_achieves_less() {
        let reqs = [rand_req(100.0, 0.5), rand_req(100.0, 2.0)];
        let t = allocate(&reqs, &cfg(), 1.0, 0.1);
        let lucky = t.outcomes[0];
        let unlucky = t.outcomes[1];
        // Per-op wait scales with luck (4×)…
        let w_lucky = lucky.wait / lucky.ops;
        let w_unlucky = unlucky.wait / unlucky.ops;
        assert!((w_unlucky / w_lucky - 4.0).abs() < 1e-9);
        // …and higher latency means lower closed-loop throughput.
        assert!(unlucky.ops < lucky.ops);
    }

    #[test]
    fn sequential_demand_is_bandwidth_bound() {
        // 40 MB sequential in 0.1 s on a 400 MB/s device = full utilization.
        let req = DiskRequest { seq_ops: 10.0, seq_bytes: 40.0e6, luck: 1.0, ..Default::default() };
        let t = allocate(&[req], &cfg(), 1.0, 0.1);
        assert!((t.offered_utilization - 1.0).abs() < 1e-9);
        // Saturated: full bandwidth granted, latency claws some back.
        assert!(t.outcomes[0].bytes > 10.0e6 && t.outcomes[0].bytes <= 40.0e6);
    }

    #[test]
    fn speed_factor_scales_capacity() {
        let reqs = [rand_req(400.0, 1.0)];
        let nominal = allocate(&reqs, &cfg(), 1.0, 0.1);
        let slow = allocate(&reqs, &cfg(), 0.5, 0.1);
        assert!((slow.offered_utilization - 2.0 * nominal.offered_utilization).abs() < 1e-9);
        assert!(slow.outcomes[0].ops < nominal.outcomes[0].ops);
    }

    #[test]
    fn queue_factor_is_capped() {
        // Monstrous overload: wait/op must stay finite and bounded.
        let t = allocate(&[rand_req(1e9, 1.0)], &cfg(), 1.0, 0.1);
        let wait_per_op = t.outcomes[0].wait / t.outcomes[0].ops;
        let bound = cfg().base_service_time * cfg().max_queue_factor;
        assert!(wait_per_op <= bound + 1e-9);
    }

    #[test]
    fn zero_luck_means_zero_wait() {
        let t = allocate(&[rand_req(100.0, 0.0)], &cfg(), 1.0, 0.1);
        assert_eq!(t.outcomes[0].wait, 0.0);
        assert!(t.outcomes[0].ops > 0.0);
    }
}
