//! Per-VM cumulative performance counters.
//!
//! Semantics mirror what the paper's performance monitor reads on real
//! hardware: cgroup blkio counters via libvirt (`io_serviced`,
//! `io_service_bytes`, `io_wait_time`) and `perf_event` in counting mode
//! (cycles, instructions, LLC references and misses). All counters are
//! **cumulative since VM boot**; consumers take deltas between samples
//! (§III-D.1). Values are monotonically non-decreasing `f64` accumulators —
//! the fluid model produces fractional ops per tick, and keeping fractions
//! avoids systematic rounding drift at small tick sizes.

/// Cumulative counters for one VM (one cgroup).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VmCounters {
    /// Block I/O operations completed (`blkio.io_serviced`).
    pub io_serviced: f64,
    /// Bytes of block I/O completed (`blkio.io_service_bytes`).
    pub io_service_bytes: f64,
    /// Total time I/O operations spent waiting in scheduler queues, in
    /// seconds (`blkio.io_wait_time`; the kernel reports nanoseconds).
    pub io_wait_time: f64,
    /// CPU time consumed, in core-seconds.
    pub cpu_time: f64,
    /// Clock cycles retired.
    pub cycles: f64,
    /// Instructions retired.
    pub instructions: f64,
    /// Last-level-cache references.
    pub llc_references: f64,
    /// Last-level-cache misses.
    pub llc_misses: f64,
}

impl VmCounters {
    /// Accumulates a tick's achieved work into the counters.
    pub fn accumulate(&mut self, delta: &VmCounters) {
        self.io_serviced += delta.io_serviced;
        self.io_service_bytes += delta.io_service_bytes;
        self.io_wait_time += delta.io_wait_time;
        self.cpu_time += delta.cpu_time;
        self.cycles += delta.cycles;
        self.instructions += delta.instructions;
        self.llc_references += delta.llc_references;
        self.llc_misses += delta.llc_misses;
    }
}

/// A point-in-time snapshot of one VM's counters, as the monitor would read
/// them from the hypervisor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterSnapshot {
    /// The counters at the snapshot instant.
    pub counters: VmCounters,
}

impl CounterSnapshot {
    /// True if any counter in `self` is below its value in `earlier`.
    ///
    /// Counters are monotone per VM boot, so a regressed snapshot is the
    /// signature of a stale delivery (a delayed sample overtaken by fresher
    /// ones) or a counter reset; the monitor rejects such snapshots instead
    /// of computing a negative delta.
    pub fn regressed_since(&self, earlier: &CounterSnapshot) -> bool {
        let a = &earlier.counters;
        let b = &self.counters;
        b.io_serviced < a.io_serviced
            || b.io_service_bytes < a.io_service_bytes
            || b.io_wait_time < a.io_wait_time
            || b.cpu_time < a.cpu_time
            || b.cycles < a.cycles
            || b.instructions < a.instructions
            || b.llc_references < a.llc_references
            || b.llc_misses < a.llc_misses
    }

    /// Difference of two snapshots (`later - self`), i.e. activity in the
    /// interval between them. Panics in debug builds if `later` is not
    /// actually later (counters are monotone).
    pub fn delta_to(&self, later: &CounterSnapshot) -> VmCounters {
        let a = &self.counters;
        let b = &later.counters;
        debug_assert!(b.io_serviced >= a.io_serviced, "counters must be monotone");
        VmCounters {
            io_serviced: b.io_serviced - a.io_serviced,
            io_service_bytes: b.io_service_bytes - a.io_service_bytes,
            io_wait_time: b.io_wait_time - a.io_wait_time,
            cpu_time: b.cpu_time - a.cpu_time,
            cycles: b.cycles - a.cycles,
            instructions: b.instructions - a.instructions,
            llc_references: b.llc_references - a.llc_references,
            llc_misses: b.llc_misses - a.llc_misses,
        }
    }
}

/// Derived per-interval metrics computed from a counter delta — the exact
/// quantities in the paper's detection pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalMetrics {
    /// Block iowait ratio: `Δio_wait_time / Δio_serviced`, in **milliseconds
    /// per operation**. `None` when no I/O was serviced in the interval.
    pub iowait_ratio_ms: Option<f64>,
    /// Cycles per instruction. `None` when no instructions retired.
    pub cpi: Option<f64>,
    /// LLC miss rate in misses per second. `None` when idle — the paper's
    /// "LLC miss rates are not counted when the VMs are not running any
    /// workload". (A per-time rate, not the miss *ratio*: a saturating
    /// streaming workload has a flat ratio of ~1.0 but a strongly varying
    /// rate, and the rate is what tracks the pressure it exerts.)
    pub llc_miss_rate: Option<f64>,
    /// I/O throughput in bytes per second over the interval.
    pub io_bps: f64,
    /// I/O throughput in operations per second over the interval.
    pub io_iops: f64,
    /// Average CPU usage in cores over the interval.
    pub cpu_cores: f64,
}

impl IntervalMetrics {
    /// Computes derived metrics from a counter delta over `interval_secs`.
    pub fn from_delta(delta: &VmCounters, interval_secs: f64) -> Self {
        assert!(interval_secs > 0.0, "interval must be positive");
        let iowait_ratio_ms = if delta.io_serviced > 0.0 {
            Some(delta.io_wait_time / delta.io_serviced * 1e3)
        } else {
            None
        };
        let cpi =
            if delta.instructions > 0.0 { Some(delta.cycles / delta.instructions) } else { None };
        let llc_miss_rate =
            if delta.instructions > 0.0 { Some(delta.llc_misses / interval_secs) } else { None };
        IntervalMetrics {
            iowait_ratio_ms,
            cpi,
            llc_miss_rate,
            io_bps: delta.io_service_bytes / interval_secs,
            io_iops: delta.io_serviced / interval_secs,
            cpu_cores: delta.cpu_time / interval_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VmCounters {
        VmCounters {
            io_serviced: 100.0,
            io_service_bytes: 1e6,
            io_wait_time: 0.5,
            cpu_time: 2.0,
            cycles: 4.6e9,
            instructions: 4.0e9,
            llc_references: 1e8,
            llc_misses: 5e6,
        }
    }

    #[test]
    fn accumulate_adds_fields() {
        let mut c = VmCounters::default();
        c.accumulate(&sample());
        c.accumulate(&sample());
        assert_eq!(c.io_serviced, 200.0);
        assert_eq!(c.cpu_time, 4.0);
        assert_eq!(c.llc_misses, 1e7);
    }

    #[test]
    fn snapshot_delta_recovers_interval_activity() {
        let start = CounterSnapshot { counters: sample() };
        let mut later = sample();
        later.accumulate(&sample());
        let end = CounterSnapshot { counters: later };
        let d = start.delta_to(&end);
        assert_eq!(d.io_serviced, 100.0);
        assert_eq!(d.io_wait_time, 0.5);
        assert_eq!(d.cycles, 4.6e9);
    }

    #[test]
    fn regression_detection() {
        let base = CounterSnapshot { counters: sample() };
        let mut advanced = sample();
        advanced.accumulate(&sample());
        let later = CounterSnapshot { counters: advanced };
        assert!(!later.regressed_since(&base));
        assert!(base.regressed_since(&later));
        assert!(!base.regressed_since(&base), "equal snapshots are not a regression");
        let mut dipped = sample();
        dipped.cycles -= 1.0;
        assert!(CounterSnapshot { counters: dipped }.regressed_since(&base));
    }

    #[test]
    fn interval_metrics_formulas() {
        let d = sample();
        let m = IntervalMetrics::from_delta(&d, 5.0);
        // 0.5 s wait over 100 ops = 5 ms/op.
        assert!((m.iowait_ratio_ms.unwrap() - 5.0).abs() < 1e-12);
        assert!((m.cpi.unwrap() - 1.15).abs() < 1e-12);
        // 5e6 misses over 5 s = 1e6 misses/s.
        assert!((m.llc_miss_rate.unwrap() - 1e6).abs() < 1e-6);
        assert!((m.io_bps - 2e5).abs() < 1e-9);
        assert!((m.io_iops - 20.0).abs() < 1e-12);
        assert!((m.cpu_cores - 0.4).abs() < 1e-12);
    }

    #[test]
    fn idle_intervals_yield_missing_metrics() {
        let d = VmCounters::default();
        let m = IntervalMetrics::from_delta(&d, 5.0);
        assert_eq!(m.iowait_ratio_ms, None);
        assert_eq!(m.cpi, None);
        assert_eq!(m.llc_miss_rate, None);
        assert_eq!(m.io_bps, 0.0);
        assert_eq!(m.cpu_cores, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = IntervalMetrics::from_delta(&VmCounters::default(), 0.0);
    }

    #[test]
    fn cpu_only_interval_has_cpi_but_no_iowait() {
        let d =
            VmCounters { cpu_time: 1.0, cycles: 2.0e9, instructions: 1.0e9, ..Default::default() };
        let m = IntervalMetrics::from_delta(&d, 5.0);
        assert_eq!(m.iowait_ratio_ms, None);
        assert_eq!(m.cpi, Some(2.0));
        // Executing instructions with zero misses is a present zero rate,
        // not a missing sample.
        assert_eq!(m.llc_miss_rate, Some(0.0));
    }
}
