//! Virtual machines: process containers with cgroup accounting and caps.

use crate::config::VmConfig;
use crate::counters::VmCounters;
use crate::demand::{IoPattern, Process, ProcessId, ResourceDemand};
use crate::jitter::Ar1;
use crate::throttle::{CpuCap, IoThrottle};
use rand_chacha::ChaCha8Rng;

/// Cluster-wide identifier of a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmId(pub u32);

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// Aggregated demand of all processes in one VM for one tick.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VmDemand {
    /// Total instructions wanted.
    pub instructions: f64,
    /// Total CPU parallelism wanted (will be clamped to vCPUs).
    pub parallelism: f64,
    /// Random-pattern ops / bytes wanted.
    pub rand_ops: f64,
    /// Bytes attached to random ops.
    pub rand_bytes: f64,
    /// Sequential-pattern ops wanted.
    pub seq_ops: f64,
    /// Bytes attached to sequential ops.
    pub seq_bytes: f64,
    /// Ops-weighted mean I/O queue depth of the demanding processes.
    pub io_queue_depth: f64,
    /// Instruction-weighted mean LLC references per instruction.
    pub refs_per_instr: f64,
    /// Total hot working set.
    pub working_set: f64,
    /// Instruction-weighted mean cache reuse.
    pub cache_reuse: f64,
    /// Instruction-weighted mean base CPI.
    pub base_cpi: f64,
}

/// A hosted virtual machine.
#[derive(Clone)]
pub struct Vm {
    /// Cluster-wide identifier.
    pub id: VmId,
    /// Static configuration.
    pub config: VmConfig,
    /// Current blkio throttle.
    pub io_throttle: IoThrottle,
    /// Current CPU hard cap.
    pub cpu_cap: CpuCap,
    /// Cumulative counters (the VM's cgroup view).
    pub counters: VmCounters,
    /// True while the VM is frozen by a live migration's stop-and-copy
    /// phase: its processes demand nothing and make no progress, but the
    /// luck processes keep stepping so the RNG stream position is
    /// independent of whether (or when) a pause happened elsewhere.
    pub(crate) paused: bool,
    pub(crate) processes: Vec<(ProcessId, Box<dyn Process>)>,
    pub(crate) io_luck: Ar1,
    pub(crate) cpi_luck: Ar1,
    pub(crate) io_rng: ChaCha8Rng,
    pub(crate) cpi_rng: ChaCha8Rng,
}

impl Vm {
    pub(crate) fn new(
        id: VmId,
        config: VmConfig,
        io_luck: Ar1,
        cpi_luck: Ar1,
        io_rng: ChaCha8Rng,
        cpi_rng: ChaCha8Rng,
    ) -> Self {
        Vm {
            id,
            config,
            io_throttle: IoThrottle::unlimited(),
            cpu_cap: CpuCap::unlimited(),
            counters: VmCounters::default(),
            paused: false,
            processes: Vec::new(),
            io_luck,
            cpi_luck,
            io_rng,
            cpi_rng,
        }
    }

    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Aggregates all process demands for a tick of length `dt`. A paused
    /// VM demands nothing — identical to a VM with no processes — so the
    /// stop-and-copy stall is a pure progress freeze.
    pub(crate) fn aggregate_demand(&self, dt: perfcloud_sim::SimDuration) -> VmDemand {
        let mut agg = VmDemand::default();
        let mut w_refs = 0.0;
        let mut w_reuse = 0.0;
        let mut w_cpi = 0.0;
        let mut w_depth = 0.0;
        let processes: &[_] = if self.paused { &[] } else { &self.processes };
        for (_, p) in processes {
            let d = p.demand(dt);
            agg.instructions += d.cpu_instructions;
            agg.parallelism += d.cpu_parallelism;
            w_depth += d.io_queue_depth * d.io_ops;
            match d.io_pattern {
                IoPattern::Random => {
                    agg.rand_ops += d.io_ops;
                    agg.rand_bytes += d.io_bytes;
                }
                IoPattern::Sequential => {
                    agg.seq_ops += d.io_ops;
                    agg.seq_bytes += d.io_bytes;
                }
            }
            agg.working_set += d.working_set * if d.cpu_instructions > 0.0 { 1.0 } else { 0.0 };
            w_refs += d.mem_refs_per_instr * d.cpu_instructions;
            w_reuse += d.cache_reuse * d.cpu_instructions;
            w_cpi += d.base_cpi * d.cpu_instructions;
        }
        if agg.instructions > 0.0 {
            agg.refs_per_instr = w_refs / agg.instructions;
            agg.cache_reuse = w_reuse / agg.instructions;
            agg.base_cpi = w_cpi / agg.instructions;
        } else {
            agg.base_cpi = 1.0;
        }
        let total_ops = agg.rand_ops + agg.seq_ops;
        agg.io_queue_depth = if total_ops > 0.0 { w_depth / total_ops } else { 32.0 };
        agg
    }

    /// Per-process demands (same order as the internal process list).
    pub(crate) fn process_demands(&self, dt: perfcloud_sim::SimDuration) -> Vec<ResourceDemand> {
        self.processes.iter().map(|(_, p)| p.demand(dt)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jitter::Ar1;
    use perfcloud_sim::{RngFactory, SimDuration};

    #[derive(Clone)]
    struct FakeProc {
        demand: ResourceDemand,
    }
    impl Process for FakeProc {
        fn demand(&self, _dt: SimDuration) -> ResourceDemand {
            self.demand
        }
        fn advance(&mut self, _a: &crate::demand::Achieved, _dt: SimDuration) {}
        fn is_done(&self) -> bool {
            false
        }
        fn progress(&self) -> f64 {
            0.0
        }
        fn label(&self) -> &str {
            "fake"
        }
    }

    fn make_vm() -> Vm {
        let f = RngFactory::new(1);
        Vm::new(
            VmId(0),
            VmConfig::high_priority(),
            Ar1::with_time_constant(5.0, 0.1),
            Ar1::with_time_constant(5.0, 0.1),
            f.stream("io"),
            f.stream("cpi"),
        )
    }

    fn proc_with(demand: ResourceDemand) -> (ProcessId, Box<dyn Process>) {
        (ProcessId(0), Box::new(FakeProc { demand }))
    }

    #[test]
    fn empty_vm_has_idle_demand() {
        let vm = make_vm();
        let d = vm.aggregate_demand(SimDuration::from_millis(100));
        assert_eq!(d.instructions, 0.0);
        assert_eq!(d.rand_ops, 0.0);
        assert_eq!(d.base_cpi, 1.0);
    }

    #[test]
    fn io_patterns_bucketed_separately() {
        let mut vm = make_vm();
        vm.processes.push(proc_with(ResourceDemand {
            io_ops: 10.0,
            io_bytes: 100.0,
            io_pattern: IoPattern::Random,
            ..ResourceDemand::idle()
        }));
        vm.processes.push(proc_with(ResourceDemand {
            io_ops: 3.0,
            io_bytes: 999.0,
            io_pattern: IoPattern::Sequential,
            ..ResourceDemand::idle()
        }));
        let d = vm.aggregate_demand(SimDuration::from_millis(100));
        assert_eq!(d.rand_ops, 10.0);
        assert_eq!(d.rand_bytes, 100.0);
        assert_eq!(d.seq_ops, 3.0);
        assert_eq!(d.seq_bytes, 999.0);
    }

    #[test]
    fn memory_attributes_are_instruction_weighted() {
        let mut vm = make_vm();
        vm.processes.push(proc_with(ResourceDemand {
            cpu_instructions: 1e6,
            cpu_parallelism: 1.0,
            mem_refs_per_instr: 0.1,
            cache_reuse: 1.0,
            working_set: 10.0,
            ..ResourceDemand::idle()
        }));
        vm.processes.push(proc_with(ResourceDemand {
            cpu_instructions: 3e6,
            cpu_parallelism: 1.0,
            mem_refs_per_instr: 0.3,
            cache_reuse: 0.0,
            working_set: 30.0,
            ..ResourceDemand::idle()
        }));
        let d = vm.aggregate_demand(SimDuration::from_millis(100));
        assert_eq!(d.instructions, 4e6);
        assert_eq!(d.parallelism, 2.0);
        assert!((d.refs_per_instr - 0.25).abs() < 1e-12);
        assert!((d.cache_reuse - 0.25).abs() < 1e-12);
        assert_eq!(d.working_set, 40.0);
    }

    #[test]
    fn idle_process_working_set_excluded() {
        let mut vm = make_vm();
        vm.processes.push(proc_with(ResourceDemand {
            cpu_instructions: 0.0,
            working_set: 1e9,
            ..ResourceDemand::idle()
        }));
        let d = vm.aggregate_demand(SimDuration::from_millis(100));
        assert_eq!(d.working_set, 0.0);
    }
}
