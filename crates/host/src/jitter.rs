//! Per-VM AR(1) "luck" processes.
//!
//! On real shared hardware, VMs competing for a saturated device do not
//! suffer equally: queueing is bursty, and whichever VM's requests land
//! behind an antagonist burst waits disproportionately. The effect persists
//! over seconds (a request stream stuck behind a deep queue stays stuck),
//! which is what makes the paper's *across-VM standard deviation* a usable
//! contention signal at 5-second sampling.
//!
//! We model each VM's luck as a stationary AR(1) process
//! `x ← a·x + √(1−a²)·z`, `z ∼ N(0,1)`, with unit stationary variance and a
//! correlation time of a few seconds. The multiplicative factor applied to
//! that VM's queueing delay is `exp(amp(ρ) · x)`, where the amplitude
//! `amp(ρ)` is ≈0 below a utilization onset and grows smoothly to the
//! configured maximum at saturation — so deviation across VMs stays tiny when
//! the application runs alone and blows up under contention.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A stationary AR(1) process with unit variance.
#[derive(Debug, Clone, PartialEq)]
pub struct Ar1 {
    a: f64,
    noise_scale: f64,
    state: f64,
}

impl Ar1 {
    /// Creates a process whose autocorrelation decays with time constant
    /// `tau_secs` when stepped every `dt_secs`. Panics unless both are
    /// positive.
    pub fn with_time_constant(tau_secs: f64, dt_secs: f64) -> Self {
        assert!(tau_secs > 0.0 && dt_secs > 0.0, "time constants must be positive");
        let a = (-dt_secs / tau_secs).exp();
        Ar1 { a, noise_scale: (1.0 - a * a).sqrt(), state: 0.0 }
    }

    /// Advances one step and returns the new state.
    pub fn step(&mut self, rng: &mut ChaCha8Rng) -> f64 {
        let z = gaussian(rng);
        self.state = self.a * self.state + self.noise_scale * z;
        self.state
    }

    /// Current state without advancing.
    pub fn state(&self) -> f64 {
        self.state
    }
}

/// Standard normal via Box–Muller (avoids a rand_distr dependency).
fn gaussian(rng: &mut ChaCha8Rng) -> f64 {
    // u1 in (0, 1] so ln is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Smooth jitter amplitude ramp: a small `floor` whenever the resource is
/// in use at all (real VMs never behave identically), rising with a
/// smoothstep from `onset` to `max_amp` at utilization 1. Utilization above
/// 1 (offered overload) saturates at `max_amp`.
pub fn amplitude(utilization: f64, onset: f64, max_amp: f64, floor: f64) -> f64 {
    if utilization <= 0.02 {
        return 0.0;
    }
    if utilization <= onset {
        return floor.min(max_amp);
    }
    let t = ((utilization - onset) / (1.0 - onset)).clamp(0.0, 1.0);
    let s = t * t * (3.0 - 2.0 * t); // smoothstep
    (floor + (max_amp - floor) * s).min(max_amp)
}

/// The multiplicative luck factor for one VM: `exp(amp · x)`.
pub fn luck_multiplier(ar1_state: f64, amp: f64) -> f64 {
    (amp * ar1_state).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfcloud_sim::RngFactory;

    #[test]
    fn ar1_is_stationary_unit_variance() {
        let mut rng = RngFactory::new(11).stream("ar1-test");
        let mut p = Ar1::with_time_constant(5.0, 0.1);
        // Burn in, then measure.
        for _ in 0..1_000 {
            p.step(&mut rng);
        }
        let n = 50_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = p.step(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn ar1_is_temporally_correlated() {
        let mut rng = RngFactory::new(12).stream("ar1-corr");
        let mut p = Ar1::with_time_constant(5.0, 0.1);
        for _ in 0..100 {
            p.step(&mut rng);
        }
        // Lag-1 autocorrelation should be close to a = exp(-0.02) ≈ 0.98.
        let n = 20_000;
        let mut prev = p.state();
        let (mut sxy, mut sxx) = (0.0, 0.0);
        for _ in 0..n {
            let x = p.step(&mut rng);
            sxy += prev * x;
            sxx += prev * prev;
            prev = x;
        }
        let rho = sxy / sxx;
        assert!(rho > 0.9, "lag-1 autocorrelation {rho}");
    }

    #[test]
    fn amplitude_is_floor_below_onset() {
        assert_eq!(amplitude(0.0, 0.5, 1.0, 0.1), 0.0, "idle resource has no jitter");
        assert_eq!(amplitude(0.5, 0.5, 1.0, 0.1), 0.1);
        assert_eq!(amplitude(0.49, 0.5, 1.0, 0.1), 0.1);
        assert_eq!(amplitude(0.3, 0.5, 1.0, 0.0), 0.0, "zero floor behaves as before");
    }

    #[test]
    fn amplitude_saturates_at_max() {
        assert!((amplitude(1.0, 0.5, 0.8, 0.1) - 0.8).abs() < 1e-12);
        assert!((amplitude(3.0, 0.5, 0.8, 0.1) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn amplitude_is_monotone_above_idle() {
        let mut last = 0.0;
        for i in 1..=20 {
            let u = 0.05 + i as f64 / 20.0 * 1.45;
            let a = amplitude(u, 0.4, 1.0, 0.1);
            assert!(a >= last, "amp({u}) = {a} < {last}");
            last = a;
        }
    }

    #[test]
    fn luck_multiplier_is_one_without_amplitude() {
        assert_eq!(luck_multiplier(2.5, 0.0), 1.0);
        assert!((luck_multiplier(1.0, 0.5) - (0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn identical_streams_replay_identically() {
        let f = RngFactory::new(99);
        let run = || {
            let mut rng = f.stream("replay");
            let mut p = Ar1::with_time_constant(3.0, 0.1);
            (0..64).map(|_| p.step(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
