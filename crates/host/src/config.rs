//! Static configuration of servers, devices and VMs.
//!
//! Defaults approximate the paper's testbed: Dell PowerEdge R630 bare-metal
//! servers with a 2.3 GHz 48-core Xeon and 125 GB RAM, hosting 2-vCPU / 8 GB
//! VMs, with a local disk whose random-read capability is in the
//! few-thousand-IOPS range typical of the 2017-era testbed.

/// Scheduling priority of a VM, assigned by the cloud administrator
/// "possibly based on the cost of reserving the specific instance types".
/// PerfCloud isolates *high*-priority applications by throttling *low*-
/// priority antagonists; high-priority VMs are never throttled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Data-intensive scale-out application VMs (Hadoop / Spark workers).
    High,
    /// Best-effort colocated tenants (fio, STREAM, sysbench, …).
    Low,
}

/// Block-device model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskConfig {
    /// Random-access operations the device can serve per second.
    pub max_random_iops: f64,
    /// Sequential throughput in bytes per second.
    pub max_seq_bps: f64,
    /// Mean device service time per random op at low load, seconds.
    /// (The iowait ratio is reported in milliseconds per op; this constant
    /// anchors its uncontended scale.)
    pub base_service_time: f64,
    /// Cap on the queueing-delay multiplier `1/(1-ρ)` so the fluid model
    /// stays finite at saturation.
    pub max_queue_factor: f64,
    /// Effective queue depth of guest I/O streams: how many requests a
    /// process keeps outstanding. Queueing wait slows a closed-loop
    /// requester by `1 + wait/(service × depth)` — deep queues hide latency,
    /// shallow ones feel it fully.
    pub queue_depth: f64,
    /// Amplitude of per-VM iowait jitter at full saturation (log-scale).
    pub jitter_amplitude: f64,
    /// Utilization below which jitter stays at the floor.
    pub jitter_onset: f64,
    /// Baseline jitter amplitude whenever the device is in use at all.
    pub jitter_floor: f64,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            max_random_iops: 4_000.0,
            max_seq_bps: 400.0e6,
            base_service_time: 0.004,
            max_queue_factor: 40.0,
            queue_depth: 32.0,
            jitter_amplitude: 1.1,
            jitter_onset: 0.55,
            jitter_floor: 0.3,
        }
    }
}

/// Memory-hierarchy model parameters (last-level cache + memory bandwidth).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryConfig {
    /// Last-level cache capacity in bytes (R630 Xeon: 2 × 30 MB).
    pub llc_bytes: f64,
    /// Memory bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Extra CPI cycles charged per LLC miss-reference per instruction.
    pub miss_penalty_cycles: f64,
    /// Cap on the bandwidth queueing multiplier.
    pub max_queue_factor: f64,
    /// Amplitude of per-VM CPI jitter at full bandwidth saturation.
    pub jitter_amplitude: f64,
    /// Bandwidth utilization below which CPI jitter stays at the floor.
    pub jitter_onset: f64,
    /// Baseline CPI jitter amplitude whenever instructions are executing.
    pub jitter_floor: f64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            llc_bytes: 60.0e6,
            bandwidth_bps: 60.0e9,
            miss_penalty_cycles: 22.0,
            max_queue_factor: 12.0,
            jitter_amplitude: 0.9,
            jitter_onset: 0.45,
            jitter_floor: 0.1,
        }
    }
}

/// Physical-server configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Number of physical cores.
    pub cores: u32,
    /// Core clock frequency in cycles per second.
    pub frequency_hz: f64,
    /// Relative speed factor (1.0 = nominal). Models the heterogeneous
    /// clusters of the paper's future-work discussion: effective frequency
    /// and disk rates scale by this factor.
    pub speed_factor: f64,
    /// Block-device model.
    pub disk: DiskConfig,
    /// Memory-hierarchy model.
    pub memory: MemoryConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cores: 48,
            frequency_hz: 2.3e9,
            speed_factor: 1.0,
            disk: DiskConfig::default(),
            memory: MemoryConfig::default(),
        }
    }
}

impl ServerConfig {
    /// Effective core frequency after the heterogeneity speed factor.
    pub fn effective_frequency(&self) -> f64 {
        self.frequency_hz * self.speed_factor
    }

    /// The experiment preset modelling a Chameleon Dell R630 with local
    /// SSD-class storage, tuned so that a 12-node virtual Hadoop cluster
    /// alone keeps the device below the jitter onset while a saturating fio
    /// antagonist pushes it past it (the regimes of the paper's Figs. 3–4).
    pub fn chameleon() -> Self {
        ServerConfig {
            cores: 48,
            frequency_hz: 2.3e9,
            speed_factor: 1.0,
            disk: DiskConfig {
                max_random_iops: 20_000.0,
                max_seq_bps: 1.2e9,
                base_service_time: 0.002,
                max_queue_factor: 40.0,
                queue_depth: 32.0,
                jitter_amplitude: 0.9,
                jitter_onset: 0.5,
                jitter_floor: 0.35,
            },
            memory: MemoryConfig::default(),
        }
    }
}

/// Virtual-machine configuration (the paper's instances: 2 vCPU, 8 GB).
#[derive(Debug, Clone, PartialEq)]
pub struct VmConfig {
    /// Number of virtual CPUs.
    pub vcpus: u32,
    /// Guest memory in bytes.
    pub memory_bytes: u64,
    /// Scheduling priority.
    pub priority: Priority,
}

impl VmConfig {
    /// The paper's standard instance: 2 vCPU / 8 GB, high priority.
    pub fn high_priority() -> Self {
        VmConfig { vcpus: 2, memory_bytes: 8 << 30, priority: Priority::High }
    }

    /// The paper's standard instance at low (antagonist) priority.
    pub fn low_priority() -> Self {
        VmConfig { vcpus: 2, memory_bytes: 8 << 30, priority: Priority::Low }
    }

    /// Same instance with a custom vCPU count.
    pub fn with_vcpus(mut self, vcpus: u32) -> Self {
        self.vcpus = vcpus;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_model_the_r630() {
        let s = ServerConfig::default();
        assert_eq!(s.cores, 48);
        assert!((s.effective_frequency() - 2.3e9).abs() < 1.0);
        assert!(s.disk.max_random_iops > 0.0);
        assert!(s.memory.llc_bytes > 0.0);
    }

    #[test]
    fn speed_factor_scales_frequency() {
        let s = ServerConfig { speed_factor: 0.5, ..Default::default() };
        assert!((s.effective_frequency() - 1.15e9).abs() < 1.0);
    }

    #[test]
    fn vm_presets_match_paper() {
        let hi = VmConfig::high_priority();
        assert_eq!(hi.vcpus, 2);
        assert_eq!(hi.memory_bytes, 8 << 30);
        assert_eq!(hi.priority, Priority::High);
        let lo = VmConfig::low_priority().with_vcpus(4);
        assert_eq!(lo.vcpus, 4);
        assert_eq!(lo.priority, Priority::Low);
    }
}
