//! The physical server: one tick of multi-resource arbitration.
//!
//! Each tick the server (1) steps every VM's luck processes, (2) aggregates
//! per-VM demand, (3) applies blkio throttles, (4) arbitrates the block
//! device, (5) evaluates the memory model to get per-VM CPI and miss rates,
//! (6) allocates CPU time with hard caps, (7) updates cgroup counters, and
//! (8) distributes achieved work back to processes, reaping finished ones.
//!
//! Jitter amplitudes use the *previous* tick's utilization — the fluid-model
//! equivalent of queue state carrying over — which avoids a circular
//! dependency between allocation and luck.

use crate::config::{Priority, ServerConfig, VmConfig};
use crate::counters::{CounterSnapshot, VmCounters};
use crate::cpu::{allocate as cpu_allocate, CpuRequest};
use crate::demand::{Achieved, Process, ProcessId};
use crate::disk::{allocate as disk_allocate, DiskRequest};
use crate::jitter::{amplitude, luck_multiplier, Ar1};
use crate::memory::{model as mem_model, MemRequest};
use crate::throttle::{CpuCap, IoThrottle};
use crate::vm::{Vm, VmId};
use perfcloud_sim::{RngFactory, SimDuration};
use std::collections::HashMap;

/// Identifier of a physical server within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u32);

impl std::fmt::Display for ServerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server{}", self.0)
    }
}

/// A process that completed during a tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedProcess {
    /// VM that hosted the process.
    pub vm: VmId,
    /// Server-local process id.
    pub pid: ProcessId,
    /// The process's label.
    pub label: String,
}

/// Summary of one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TickReport {
    /// Processes that finished this tick.
    pub finished: Vec<FinishedProcess>,
    /// Offered block-device utilization (may exceed 1).
    pub disk_utilization: f64,
    /// Offered memory-bandwidth utilization (may exceed 1).
    pub memory_utilization: f64,
    /// CPU utilization in [0, 1].
    pub cpu_utilization: f64,
}

/// A simulated physical server hosting VMs.
#[derive(Clone)]
pub struct PhysicalServer {
    /// Identifier within the cluster.
    pub id: ServerId,
    config: ServerConfig,
    rng: RngFactory,
    vms: Vec<Vm>,
    index: HashMap<VmId, usize>,
    next_pid: u64,
    last_disk_rho: f64,
    last_mem_rho: f64,
    ar1_dt: f64,
    /// Cores reserved by in-flight live migrations (source or destination
    /// pre-copy tax). Subtracted from the CPU capacity offered to VMs.
    migration_load: f64,
}

/// Time constant (seconds) of per-VM luck processes; a few seconds so luck
/// persists across the monitor's 5-second sampling interval.
const LUCK_TAU_SECS: f64 = 6.0;

impl PhysicalServer {
    /// Creates a server. `rng` seeds the per-VM jitter streams; `tick_dt` is
    /// the tick length the server will be driven at (needed to discretize
    /// the AR(1) processes consistently).
    pub fn new(id: ServerId, config: ServerConfig, rng: RngFactory, tick_dt: SimDuration) -> Self {
        assert!(!tick_dt.is_zero(), "tick length must be positive");
        PhysicalServer {
            id,
            config,
            rng,
            vms: Vec::new(),
            index: HashMap::new(),
            next_pid: 0,
            last_disk_rho: 0.0,
            last_mem_rho: 0.0,
            ar1_dt: tick_dt.as_secs_f64(),
            migration_load: 0.0,
        }
    }

    /// The server's static configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Boots a VM on this server. Panics if the id is already present.
    pub fn add_vm(&mut self, id: VmId, cfg: VmConfig) {
        assert!(!self.index.contains_key(&id), "duplicate VM id {id}");
        let io_rng = self.rng.stream_indexed("io-luck", id.0 as u64);
        let cpi_rng = self.rng.stream_indexed("cpi-luck", id.0 as u64);
        let vm = Vm::new(
            id,
            cfg,
            Ar1::with_time_constant(LUCK_TAU_SECS, self.ar1_dt),
            Ar1::with_time_constant(LUCK_TAU_SECS, self.ar1_dt),
            io_rng,
            cpi_rng,
        );
        self.index.insert(id, self.vms.len());
        self.vms.push(vm);
    }

    /// All hosted VM ids, in boot order.
    pub fn vm_ids(&self) -> Vec<VmId> {
        self.vms.iter().map(|v| v.id).collect()
    }

    /// True if the VM is hosted here.
    pub fn hosts(&self, vm: VmId) -> bool {
        self.index.contains_key(&vm)
    }

    /// Priority of a hosted VM.
    pub fn priority(&self, vm: VmId) -> Option<Priority> {
        self.vm(vm).map(|v| v.config.priority)
    }

    /// Static configuration of a hosted VM (vCPUs, guest memory, priority).
    pub fn vm_config(&self, vm: VmId) -> Option<&VmConfig> {
        self.vm(vm).map(|v| &v.config)
    }

    fn vm(&self, id: VmId) -> Option<&Vm> {
        self.index.get(&id).map(|&i| &self.vms[i])
    }

    fn vm_mut(&mut self, id: VmId) -> Option<&mut Vm> {
        let i = *self.index.get(&id)?;
        Some(&mut self.vms[i])
    }

    /// Removes a hosted VM and returns it intact — processes, RNG streams,
    /// luck state, caps, and counters all travel with it, which is what
    /// makes live migration deterministic. Removal is order-preserving:
    /// the remaining VMs keep their relative tick order, so the
    /// floating-point summation order of the arbitration pipeline (and
    /// with it every downstream trace byte) is unchanged for the stayers.
    pub fn extract_vm(&mut self, id: VmId) -> Option<Vm> {
        let row = self.index.remove(&id)?;
        let vm = self.vms.remove(row);
        for idx in self.index.values_mut() {
            if *idx > row {
                *idx -= 1;
            }
        }
        Some(vm)
    }

    /// Installs a VM extracted from another server. It joins at the tail
    /// of the tick order, exactly like a fresh boot. Panics if the id is
    /// already present.
    pub fn insert_vm(&mut self, vm: Vm) {
        assert!(!self.index.contains_key(&vm.id), "duplicate VM id {}", vm.id);
        self.index.insert(vm.id, self.vms.len());
        self.vms.push(vm);
    }

    /// Freezes or thaws a VM (stop-and-copy). While paused the VM demands
    /// nothing and its processes make no progress, but its luck streams
    /// keep stepping so RNG positions stay schedule-independent.
    pub fn set_paused(&mut self, vm: VmId, paused: bool) {
        if let Some(v) = self.vm_mut(vm) {
            v.paused = paused;
        }
    }

    /// True if the VM is currently frozen by a migration.
    pub fn is_paused(&self, vm: VmId) -> bool {
        self.vm(vm).is_some_and(|v| v.paused)
    }

    /// Sets the CPU tax (in cores) charged by in-flight migrations.
    pub fn set_migration_load(&mut self, cores: f64) {
        assert!(cores >= 0.0 && cores.is_finite(), "migration load must be finite and >= 0");
        self.migration_load = cores;
    }

    /// Current migration CPU tax in cores.
    pub fn migration_load(&self) -> f64 {
        self.migration_load
    }

    /// Starts a process on a VM, returning its server-local id.
    pub fn spawn(&mut self, vm: VmId, process: Box<dyn Process>) -> ProcessId {
        let pid = ProcessId(self.next_pid);
        self.next_pid += 1;
        self.vm_mut(vm)
            .unwrap_or_else(|| panic!("spawn on unknown VM {vm}"))
            .processes
            .push((pid, process));
        pid
    }

    /// Kills a process (used by speculation/cloning schedulers). Returns
    /// true if the process existed and was removed.
    pub fn kill(&mut self, vm: VmId, pid: ProcessId) -> bool {
        match self.vm_mut(vm) {
            None => false,
            Some(v) => {
                let before = v.processes.len();
                v.processes.retain(|(p, _)| *p != pid);
                v.processes.len() != before
            }
        }
    }

    /// Progress of a running process, if it exists.
    pub fn process_progress(&self, vm: VmId, pid: ProcessId) -> Option<f64> {
        self.vm(vm)?.processes.iter().find(|(p, _)| *p == pid).map(|(_, proc_)| proc_.progress())
    }

    /// Number of live processes on a VM.
    pub fn process_count(&self, vm: VmId) -> usize {
        self.vm(vm).map(|v| v.process_count()).unwrap_or(0)
    }

    /// Reads a VM's cumulative counters, as the hypervisor would report them.
    pub fn counters(&self, vm: VmId) -> Option<CounterSnapshot> {
        self.vm(vm).map(|v| CounterSnapshot { counters: v.counters })
    }

    /// Counter snapshots of every hosted VM, in boot order — one hypervisor
    /// read for the whole server, so a per-interval sampling pass needs no
    /// [`vm_ids`](Self::vm_ids) id-list allocation.
    pub fn snapshots(&self) -> impl Iterator<Item = (VmId, CounterSnapshot)> + '_ {
        self.vms.iter().map(|v| (v.id, CounterSnapshot { counters: v.counters }))
    }

    /// Applies (or clears, with `IoThrottle::unlimited()`) the blkio
    /// throttling policy on a VM.
    pub fn set_io_throttle(&mut self, vm: VmId, throttle: IoThrottle) {
        if let Some(v) = self.vm_mut(vm) {
            v.io_throttle = throttle;
        }
    }

    /// Applies (or clears) the `vcpu_quota` hard cap on a VM.
    pub fn set_cpu_cap(&mut self, vm: VmId, cap: CpuCap) {
        if let Some(v) = self.vm_mut(vm) {
            v.cpu_cap = cap;
        }
    }

    /// Current I/O throttle of a VM.
    pub fn io_throttle(&self, vm: VmId) -> Option<IoThrottle> {
        self.vm(vm).map(|v| v.io_throttle)
    }

    /// Current CPU cap of a VM.
    pub fn cpu_cap(&self, vm: VmId) -> Option<CpuCap> {
        self.vm(vm).map(|v| v.cpu_cap)
    }

    /// Advances the server by one tick of length `dt`.
    pub fn tick(&mut self, dt: SimDuration) -> TickReport {
        let dt_s = dt.as_secs_f64();
        assert!(dt_s > 0.0, "tick length must be positive");
        let n = self.vms.len();

        // 1. Step luck processes; amplitude from last tick's utilization.
        let io_amp = amplitude(
            self.last_disk_rho,
            self.config.disk.jitter_onset,
            self.config.disk.jitter_amplitude,
            self.config.disk.jitter_floor,
        );
        let cpi_amp = amplitude(
            self.last_mem_rho,
            self.config.memory.jitter_onset,
            self.config.memory.jitter_amplitude,
            self.config.memory.jitter_floor,
        );
        let mut io_luck = Vec::with_capacity(n);
        let mut cpi_luck = Vec::with_capacity(n);
        for vm in &mut self.vms {
            let x = {
                let rng = &mut vm.io_rng;
                vm.io_luck.step(rng)
            };
            io_luck.push(luck_multiplier(x, io_amp));
            let y = {
                let rng = &mut vm.cpi_rng;
                vm.cpi_luck.step(rng)
            };
            cpi_luck.push(luck_multiplier(y, cpi_amp));
        }

        // 2. Aggregate demand per VM.
        let demands: Vec<_> = self.vms.iter().map(|v| v.aggregate_demand(dt)).collect();

        // 3+4. Throttle and arbitrate the block device.
        let disk_reqs: Vec<DiskRequest> = self
            .vms
            .iter()
            .zip(&demands)
            .zip(&io_luck)
            .map(|((vm, d), &luck)| {
                let total_ops = d.rand_ops + d.seq_ops;
                let total_bytes = d.rand_bytes + d.seq_bytes;
                let (ops_ok, bytes_ok) = vm.io_throttle.clamp(total_ops, total_bytes, dt_s);
                let ops_scale = if total_ops > 0.0 { ops_ok / total_ops } else { 0.0 };
                let bytes_scale = if total_bytes > 0.0 { bytes_ok / total_bytes } else { 0.0 };
                DiskRequest {
                    rand_ops: d.rand_ops * ops_scale,
                    rand_bytes: d.rand_bytes * bytes_scale,
                    seq_ops: d.seq_ops * ops_scale,
                    seq_bytes: d.seq_bytes * bytes_scale,
                    luck,
                    queue_depth: d.io_queue_depth,
                }
            })
            .collect();
        let disk = disk_allocate(&disk_reqs, &self.config.disk, self.config.speed_factor, dt_s);

        // 5. Memory model: per-VM CPI and miss rate.
        let freq_for_mem = self.config.effective_frequency();
        let mem_reqs: Vec<MemRequest> = self
            .vms
            .iter()
            .zip(&demands)
            .zip(&cpi_luck)
            .map(|((vm, d), &luck)| {
                // CPU hard caps bound how many instructions the VM can
                // actually issue, and with them its memory pressure — this
                // is what makes `vcpu_quota` capping effective against
                // LLC/bandwidth antagonists (§III-C).
                let cores = vm.cpu_cap.effective_cores(vm.config.vcpus);
                let issue_limit = cores * dt_s * freq_for_mem / d.base_cpi.max(0.1);
                let full_rate = vm.config.vcpus as f64 * dt_s * freq_for_mem / d.base_cpi.max(0.1);
                let instr_demand = d.instructions.min(issue_limit);
                MemRequest {
                    instr_demand,
                    activity: if full_rate > 0.0 {
                        (instr_demand / full_rate).clamp(0.0, 1.0)
                    } else {
                        0.0
                    },
                    refs_per_instr: d.refs_per_instr,
                    working_set: d.working_set,
                    cache_reuse: d.cache_reuse,
                    base_cpi: d.base_cpi,
                    luck,
                }
            })
            .collect();
        let mem = mem_model(&mem_reqs, &self.config.memory, dt_s);

        // 6. CPU allocation.
        let freq = self.config.effective_frequency();
        let cpu_reqs: Vec<CpuRequest> = self
            .vms
            .iter()
            .zip(&demands)
            .zip(&mem.outcomes)
            .map(|((vm, d), m)| {
                let cores = vm.cpu_cap.effective_cores(vm.config.vcpus);
                let par = d.parallelism.min(cores);
                // Time needed to retire the demanded instructions at this CPI.
                let needed = d.instructions * m.cpi / freq;
                CpuRequest {
                    demand: needed.min(par * dt_s),
                    limit: cores * dt_s,
                    weight: vm.config.vcpus as f64,
                }
            })
            .collect();
        // Live migrations steal hypervisor cores for the copy streams;
        // with no migration in flight this is byte-identical to the
        // untaxed capacity.
        let cpu_capacity = (self.config.cores as f64 - self.migration_load).max(0.0) * dt_s;
        let cpu_alloc = cpu_allocate(&cpu_reqs, cpu_capacity);
        let cpu_used: f64 = cpu_alloc.iter().sum();

        // 7+8. Account counters, distribute achievements, reap finished.
        let mut finished = Vec::new();
        for i in 0..n {
            let d = &demands[i];
            let m = &mem.outcomes[i];
            let dsk = &disk.outcomes[i];
            let cpu_time = cpu_alloc[i];
            let cycles = cpu_time * freq;
            let instructions = (cycles / m.cpi).min(d.instructions.max(0.0));
            let llc_refs = instructions * d.refs_per_instr;
            let llc_misses = llc_refs * m.miss_rate;

            let delta = VmCounters {
                io_serviced: dsk.ops,
                io_service_bytes: dsk.bytes,
                io_wait_time: dsk.wait,
                cpu_time,
                cycles,
                instructions,
                llc_references: llc_refs,
                llc_misses,
            };
            self.vms[i].counters.accumulate(&delta);

            // A paused VM's processes are frozen mid-flight: no demand was
            // aggregated above, and skipping `advance` here keeps even
            // wall-clock-driven processes (duration-based antagonists)
            // from progressing through the stop-and-copy window.
            if self.vms[i].paused {
                continue;
            }

            // Distribute to processes proportionally to their demands.
            let instr_frac = if d.instructions > 0.0 { instructions / d.instructions } else { 0.0 };
            let ops_demand = d.rand_ops + d.seq_ops;
            let bytes_demand = d.rand_bytes + d.seq_bytes;
            let ops_frac = if ops_demand > 0.0 { dsk.ops / ops_demand } else { 0.0 };
            let bytes_frac = if bytes_demand > 0.0 { dsk.bytes / bytes_demand } else { 0.0 };

            let proc_demands = self.vms[i].process_demands(dt);
            let vm = &mut self.vms[i];
            for ((pid, proc_), pd) in vm.processes.iter_mut().zip(&proc_demands) {
                let p_instr = pd.cpu_instructions * instr_frac;
                let achieved = Achieved {
                    cpu_time: if d.instructions > 0.0 {
                        cpu_time * pd.cpu_instructions / d.instructions
                    } else {
                        0.0
                    },
                    instructions: p_instr,
                    cycles: p_instr * m.cpi,
                    io_ops: pd.io_ops * ops_frac,
                    io_bytes: pd.io_bytes * bytes_frac,
                    io_wait: 0.0,
                    llc_references: p_instr * pd.mem_refs_per_instr,
                    llc_misses: p_instr * pd.mem_refs_per_instr * m.miss_rate,
                };
                proc_.advance(&achieved, dt);
                if proc_.is_done() {
                    finished.push(FinishedProcess {
                        vm: vm.id,
                        pid: *pid,
                        label: proc_.label().to_string(),
                    });
                }
            }
            vm.processes.retain(|(_, p)| !p.is_done());
        }

        self.last_disk_rho = disk.offered_utilization;
        self.last_mem_rho = mem.offered_utilization;

        TickReport {
            finished,
            disk_utilization: disk.offered_utilization,
            memory_utilization: mem.offered_utilization,
            cpu_utilization: cpu_used / (self.config.cores as f64 * dt_s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{IoPattern, ResourceDemand};

    /// A process that wants `instr` instructions and `bytes` of I/O total.
    #[derive(Clone)]
    struct WorkProc {
        instr_left: f64,
        bytes_left: f64,
        total_instr: f64,
        total_bytes: f64,
        pattern: IoPattern,
    }

    impl WorkProc {
        fn cpu(instr: f64) -> Self {
            WorkProc {
                instr_left: instr,
                bytes_left: 0.0,
                total_instr: instr,
                total_bytes: 0.0,
                pattern: IoPattern::Random,
            }
        }
        fn io(bytes: f64, pattern: IoPattern) -> Self {
            WorkProc {
                instr_left: 0.0,
                bytes_left: bytes,
                total_instr: 0.0,
                total_bytes: bytes,
                pattern,
            }
        }
    }

    impl Process for WorkProc {
        fn demand(&self, dt: SimDuration) -> ResourceDemand {
            let dt_s = dt.as_secs_f64();
            ResourceDemand {
                cpu_parallelism: if self.instr_left > 0.0 { 1.0 } else { 0.0 },
                cpu_instructions: self.instr_left.min(1e10 * dt_s),
                // Closed-loop I/O with bounded queue depth: a real process
                // submits ~2000 random ops/s or ~200 MB/s sequential at most.
                io_ops: if self.bytes_left > 0.0 {
                    (self.bytes_left / 4096.0).min(2_000.0 * dt_s)
                } else {
                    0.0
                },
                io_bytes: self.bytes_left.min(2.0e8 * dt_s),
                io_pattern: self.pattern,
                io_queue_depth: 32.0,
                mem_refs_per_instr: 0.01,
                working_set: 1e6,
                cache_reuse: 0.9,
                base_cpi: 1.0,
            }
        }
        fn advance(&mut self, a: &Achieved, _dt: SimDuration) {
            self.instr_left = (self.instr_left - a.instructions).max(0.0);
            self.bytes_left = (self.bytes_left - a.io_bytes).max(0.0);
        }
        fn is_done(&self) -> bool {
            self.instr_left <= 0.0 && self.bytes_left <= 0.0
        }
        fn progress(&self) -> f64 {
            let total = self.total_instr + self.total_bytes;
            if total <= 0.0 {
                1.0
            } else {
                1.0 - (self.instr_left + self.bytes_left) / total
            }
        }
        fn label(&self) -> &str {
            "work"
        }
    }

    const DT: SimDuration = SimDuration::from_micros(100_000);

    fn server() -> PhysicalServer {
        PhysicalServer::new(ServerId(0), ServerConfig::default(), RngFactory::new(7), DT)
    }

    #[test]
    fn cpu_bound_process_finishes_in_expected_time() {
        let mut s = server();
        s.add_vm(VmId(0), VmConfig::high_priority());
        // 2.3e9 instructions at ~1 CPI on one 2.3 GHz core ≈ 1 s.
        let pid = s.spawn(VmId(0), Box::new(WorkProc::cpu(2.3e9)));
        let mut ticks = 0;
        loop {
            let r = s.tick(DT);
            ticks += 1;
            if r.finished.iter().any(|f| f.pid == pid) {
                break;
            }
            assert!(ticks < 100, "process did not finish");
        }
        let secs = ticks as f64 * 0.1;
        assert!((0.8..=1.6).contains(&secs), "took {secs}s, expected ≈1s");
    }

    #[test]
    fn io_bound_process_progresses_and_counts() {
        let mut s = server();
        s.add_vm(VmId(0), VmConfig::high_priority());
        s.spawn(VmId(0), Box::new(WorkProc::io(40.0e6, IoPattern::Sequential)));
        for _ in 0..20 {
            s.tick(DT);
        }
        let c = s.counters(VmId(0)).unwrap().counters;
        assert!(c.io_service_bytes > 0.0);
        assert!(c.io_serviced > 0.0);
    }

    #[test]
    fn cpu_cap_slows_a_process_down() {
        let run = |cap: Option<f64>| {
            let mut s = server();
            s.add_vm(VmId(0), VmConfig::low_priority());
            if let Some(c) = cap {
                s.set_cpu_cap(VmId(0), CpuCap { cores: Some(c) });
            }
            let pid = s.spawn(VmId(0), Box::new(WorkProc::cpu(2.3e9)));
            let mut ticks = 0;
            while s.process_progress(VmId(0), pid).is_some() {
                s.tick(DT);
                ticks += 1;
                assert!(ticks < 500);
            }
            ticks
        };
        let uncapped = run(None);
        let capped = run(Some(0.25));
        assert!(
            capped as f64 >= 3.0 * uncapped as f64,
            "0.25-core cap should ≈4x the runtime: {uncapped} vs {capped}"
        );
    }

    #[test]
    fn io_throttle_slows_io_down() {
        let run = |bps: Option<f64>| {
            let mut s = server();
            s.add_vm(VmId(0), VmConfig::low_priority());
            s.set_io_throttle(VmId(0), IoThrottle { iops: None, bps });
            let pid = s.spawn(VmId(0), Box::new(WorkProc::io(100.0e6, IoPattern::Sequential)));
            let mut ticks = 0;
            while s.process_progress(VmId(0), pid).is_some() {
                s.tick(DT);
                ticks += 1;
                assert!(ticks < 10_000);
            }
            ticks
        };
        let fast = run(None);
        let slow = run(Some(20.0e6));
        assert!(slow > 3 * fast, "20 MB/s cap on a 400 MB/s device: {fast} vs {slow}");
    }

    #[test]
    fn contention_inflates_iowait_ratio() {
        // One VM alone vs. the same VM sharing the disk with a heavy random
        // reader: wait per op must grow sharply.
        let ratio_of = |with_antagonist: bool| {
            let mut s = server();
            s.add_vm(VmId(0), VmConfig::high_priority());
            s.spawn(VmId(0), Box::new(WorkProc::io(8.0e6, IoPattern::Random)));
            if with_antagonist {
                s.add_vm(VmId(1), VmConfig::low_priority());
                s.spawn(VmId(1), Box::new(WorkProc::io(1e12, IoPattern::Random)));
            }
            for _ in 0..50 {
                s.tick(DT);
            }
            let c = s.counters(VmId(0)).unwrap().counters;
            c.io_wait_time / c.io_serviced * 1e3 // ms per op
        };
        let alone = ratio_of(false);
        let contended = ratio_of(true);
        assert!(
            contended > 3.0 * alone,
            "iowait ratio should blow up: alone {alone:.3} ms, contended {contended:.3} ms"
        );
    }

    #[test]
    fn kill_removes_process() {
        let mut s = server();
        s.add_vm(VmId(0), VmConfig::high_priority());
        let pid = s.spawn(VmId(0), Box::new(WorkProc::cpu(1e12)));
        assert_eq!(s.process_count(VmId(0)), 1);
        assert!(s.kill(VmId(0), pid));
        assert_eq!(s.process_count(VmId(0)), 0);
        assert!(!s.kill(VmId(0), pid), "double kill is a no-op");
    }

    #[test]
    fn progress_reaches_one_at_completion() {
        let mut s = server();
        s.add_vm(VmId(0), VmConfig::high_priority());
        let pid = s.spawn(VmId(0), Box::new(WorkProc::cpu(2.3e8)));
        let mut last = 0.0;
        while let Some(p) = s.process_progress(VmId(0), pid) {
            assert!(p >= last - 1e-9, "progress must be monotone");
            last = p;
            s.tick(DT);
        }
        assert!(last > 0.5);
    }

    #[test]
    fn counters_are_monotone() {
        let mut s = server();
        s.add_vm(VmId(0), VmConfig::high_priority());
        s.spawn(VmId(0), Box::new(WorkProc::cpu(1e11)));
        s.spawn(VmId(0), Box::new(WorkProc::io(1e9, IoPattern::Random)));
        let mut prev = s.counters(VmId(0)).unwrap().counters;
        for _ in 0..30 {
            s.tick(DT);
            let c = s.counters(VmId(0)).unwrap().counters;
            assert!(c.instructions >= prev.instructions);
            assert!(c.io_serviced >= prev.io_serviced);
            assert!(c.io_wait_time >= prev.io_wait_time);
            assert!(c.cycles >= prev.cycles);
            prev = c;
        }
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut s = server();
            s.add_vm(VmId(0), VmConfig::high_priority());
            s.add_vm(VmId(1), VmConfig::low_priority());
            s.spawn(VmId(0), Box::new(WorkProc::io(5e8, IoPattern::Random)));
            s.spawn(VmId(1), Box::new(WorkProc::io(1e10, IoPattern::Random)));
            for _ in 0..40 {
                s.tick(DT);
            }
            let c = s.counters(VmId(0)).unwrap().counters;
            (c.io_serviced, c.io_wait_time, c.instructions)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "duplicate VM id")]
    fn duplicate_vm_id_rejected() {
        let mut s = server();
        s.add_vm(VmId(0), VmConfig::high_priority());
        s.add_vm(VmId(0), VmConfig::high_priority());
    }

    #[test]
    fn extract_preserves_vm_and_stayer_order() {
        let mut s = server();
        s.add_vm(VmId(0), VmConfig::high_priority());
        s.add_vm(VmId(1), VmConfig::low_priority());
        s.add_vm(VmId(2), VmConfig::high_priority());
        let pid = s.spawn(VmId(1), Box::new(WorkProc::cpu(1e12)));
        for _ in 0..5 {
            s.tick(DT);
        }
        let before = s.counters(VmId(1)).unwrap();
        let vm = s.extract_vm(VmId(1)).expect("hosted");
        assert_eq!(vm.id, VmId(1));
        assert_eq!(vm.process_count(), 1);
        assert!(!s.hosts(VmId(1)));
        // Stayers keep boot order and stay addressable.
        assert_eq!(s.vm_ids(), vec![VmId(0), VmId(2)]);
        assert!(s.counters(VmId(2)).is_some());
        assert!(s.extract_vm(VmId(1)).is_none(), "double extract is a no-op");

        let mut dst =
            PhysicalServer::new(ServerId(1), ServerConfig::default(), RngFactory::new(8), DT);
        dst.insert_vm(vm);
        assert!(dst.hosts(VmId(1)));
        assert_eq!(dst.counters(VmId(1)).unwrap(), before, "counters travel with the VM");
        assert!(dst.process_progress(VmId(1), pid).is_some(), "processes travel with the VM");
        for _ in 0..5 {
            dst.tick(DT);
        }
        assert!(
            dst.counters(VmId(1)).unwrap().counters.instructions > before.counters.instructions,
            "migrated VM resumes progress on the destination"
        );
    }

    #[test]
    fn paused_vm_makes_no_progress_and_resumes() {
        let mut s = server();
        s.add_vm(VmId(0), VmConfig::high_priority());
        let pid = s.spawn(VmId(0), Box::new(WorkProc::cpu(2.3e10)));
        for _ in 0..3 {
            s.tick(DT);
        }
        let p0 = s.process_progress(VmId(0), pid).unwrap();
        assert!(p0 > 0.0);
        s.set_paused(VmId(0), true);
        assert!(s.is_paused(VmId(0)));
        let frozen = s.counters(VmId(0)).unwrap();
        for _ in 0..10 {
            s.tick(DT);
        }
        assert_eq!(s.process_progress(VmId(0), pid).unwrap(), p0, "paused VM is frozen");
        assert_eq!(s.counters(VmId(0)).unwrap(), frozen, "no counter motion while paused");
        s.set_paused(VmId(0), false);
        s.tick(DT);
        assert!(s.process_progress(VmId(0), pid).unwrap() > p0, "resumes after thaw");
    }

    #[test]
    fn migration_load_taxes_cpu_capacity() {
        let run = |tax: f64| {
            let mut s = server();
            s.add_vm(VmId(0), VmConfig::high_priority());
            s.set_migration_load(tax);
            let pid = s.spawn(VmId(0), Box::new(WorkProc::cpu(2.3e9)));
            let mut ticks = 0;
            while s.process_progress(VmId(0), pid).is_some() {
                s.tick(DT);
                ticks += 1;
                assert!(ticks < 2_000);
            }
            ticks
        };
        let untaxed = run(0.0);
        let taxed = run(47.5);
        assert!(
            taxed as f64 >= 1.5 * untaxed as f64,
            "a 47.5-of-48-core migration tax must slow a 1-core job: {untaxed} vs {taxed}"
        );
    }

    #[test]
    fn zero_migration_load_is_exactly_free() {
        // The capacity expression must be bit-identical with tax 0.0 so
        // existing goldens cannot move.
        let run = |set_zero: bool| {
            let mut s = server();
            s.add_vm(VmId(0), VmConfig::high_priority());
            s.add_vm(VmId(1), VmConfig::low_priority());
            if set_zero {
                s.set_migration_load(0.0);
            }
            s.spawn(VmId(0), Box::new(WorkProc::io(5e8, IoPattern::Random)));
            s.spawn(VmId(1), Box::new(WorkProc::cpu(1e11)));
            for _ in 0..40 {
                s.tick(DT);
            }
            let a = s.counters(VmId(0)).unwrap().counters;
            let b = s.counters(VmId(1)).unwrap().counters;
            (a.io_serviced, a.io_wait_time, b.instructions, b.cpu_time)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn work_conserving_across_vms() {
        // Two VMs, one busy, one idle: busy VM is not slowed by idle one.
        let mut s1 = server();
        s1.add_vm(VmId(0), VmConfig::high_priority());
        let p1 = s1.spawn(VmId(0), Box::new(WorkProc::cpu(2.3e9)));
        let mut s2 = server();
        s2.add_vm(VmId(0), VmConfig::high_priority());
        s2.add_vm(VmId(1), VmConfig::low_priority());
        let p2 = s2.spawn(VmId(0), Box::new(WorkProc::cpu(2.3e9)));
        let t1 = {
            let mut t = 0;
            while s1.process_progress(VmId(0), p1).is_some() {
                s1.tick(DT);
                t += 1;
            }
            t
        };
        let t2 = {
            let mut t = 0;
            while s2.process_progress(VmId(0), p2).is_some() {
                s2.tick(DT);
                t += 1;
            }
            t
        };
        assert_eq!(t1, t2);
    }
}
