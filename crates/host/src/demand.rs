//! The process abstraction: how guest work expresses resource demand.
//!
//! Everything that runs inside a VM — a MapReduce task, a Spark task, a fio
//! job, a STREAM thread group — implements [`Process`]. Each tick the server
//! asks every process what it *wants* ([`ResourceDemand`]), allocates the
//! contended resources, and tells the process what it *got* ([`Achieved`]).
//! A process completes when its phases have consumed their work budgets; its
//! duration is therefore an emergent property of contention, exactly as task
//! stragglers are in the paper.

use perfcloud_sim::SimDuration;

/// Identifier of a process within one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub u64);

/// Access pattern of block I/O; random ops are seek-bound (cost ∝ IOPS
/// budget), sequential ops are transfer-bound (cost ∝ bytes-per-sec budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoPattern {
    /// Random access (fio randread, OLTP point reads, shuffle spill reads).
    Random,
    /// Sequential streaming (HDFS block scans, TeraSort writes).
    Sequential,
}

/// What a process wants to consume in one tick, expressed as *rates demanded
/// over the tick*. The server may deliver anything from zero up to this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceDemand {
    /// Degree of parallelism: how many cores the process can use at once.
    pub cpu_parallelism: f64,
    /// Instructions the process still wants to execute (cap on this tick).
    pub cpu_instructions: f64,
    /// Block I/O operations wanted this tick.
    pub io_ops: f64,
    /// Block I/O bytes wanted this tick.
    pub io_bytes: f64,
    /// Access pattern of the wanted I/O.
    pub io_pattern: IoPattern,
    /// Requests the process keeps outstanding. Queueing delay slows a
    /// requester by `1 + wait/(service × depth)`: deep-queue workloads (fio
    /// with iodepth 64+) hide latency; ordinary buffered streams feel it.
    pub io_queue_depth: f64,
    /// Memory references per instruction (loads/stores that reach the cache
    /// hierarchy) — drives LLC pressure and bandwidth demand.
    pub mem_refs_per_instr: f64,
    /// Cache working set in bytes (0 for pure-I/O processes).
    pub working_set: f64,
    /// Cache sensitivity in [0, 1]: how much of this process's references
    /// would hit in LLC given enough cache (1 = reuse-heavy like Spark
    /// iterative stages; ~0 = streaming like STREAM, which misses anyway).
    pub cache_reuse: f64,
    /// Base CPI of the instruction mix with warm, private caches.
    pub base_cpi: f64,
}

impl ResourceDemand {
    /// A demand that wants nothing (an idle process).
    pub fn idle() -> Self {
        ResourceDemand {
            cpu_parallelism: 0.0,
            cpu_instructions: 0.0,
            io_ops: 0.0,
            io_bytes: 0.0,
            io_pattern: IoPattern::Random,
            io_queue_depth: 32.0,
            mem_refs_per_instr: 0.0,
            working_set: 0.0,
            cache_reuse: 0.0,
            base_cpi: 1.0,
        }
    }

    /// True if the demand requests no resources at all.
    pub fn is_idle(&self) -> bool {
        self.cpu_instructions <= 0.0 && self.io_ops <= 0.0 && self.io_bytes <= 0.0
    }
}

/// What the server actually delivered to a process in one tick.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Achieved {
    /// Core-seconds of CPU time consumed.
    pub cpu_time: f64,
    /// Instructions retired.
    pub instructions: f64,
    /// Cycles consumed (`cpu_time × frequency`).
    pub cycles: f64,
    /// Block I/O operations completed.
    pub io_ops: f64,
    /// Block I/O bytes completed.
    pub io_bytes: f64,
    /// Total queueing wait endured by the completed ops, seconds.
    pub io_wait: f64,
    /// LLC references issued.
    pub llc_references: f64,
    /// LLC misses suffered.
    pub llc_misses: f64,
}

/// The `CloneBox` bound on [`Process`]: every process must be duplicable
/// so a whole server (and therefore a whole experiment) can be forked
/// mid-run. The blanket impl covers any `Clone` process type; implementors
/// only need `#[derive(Clone)]`.
pub trait CloneProcess {
    /// Boxes a deep copy of `self`.
    fn clone_box(&self) -> Box<dyn Process>;
}

impl<T: Process + Clone + 'static> CloneProcess for T {
    fn clone_box(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn Process> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A unit of guest work. Object-safe so VMs can host heterogeneous
/// processes; `Send` so servers (and the VMs they host) can move between
/// the sharded experiment loop's worker threads at epoch barriers, and
/// [`CloneProcess`] so forking an experiment can deep-copy every running
/// process.
pub trait Process: Send + CloneProcess {
    /// Demand for the coming tick of length `dt`.
    fn demand(&self, dt: SimDuration) -> ResourceDemand;

    /// Consumes the achieved resources for the tick just simulated.
    fn advance(&mut self, achieved: &Achieved, dt: SimDuration);

    /// True once the process has finished all its work. Finished processes
    /// are reaped by the server at the end of the tick.
    fn is_done(&self) -> bool;

    /// Fraction of total work completed, in `[0, 1]`; used by speculative
    /// schedulers (LATE) to estimate time-to-finish.
    fn progress(&self) -> f64;

    /// Human-readable label for traces and experiment reports.
    fn label(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_demand_is_idle() {
        let d = ResourceDemand::idle();
        assert!(d.is_idle());
        assert_eq!(d.cpu_parallelism, 0.0);
    }

    #[test]
    fn nonzero_io_is_not_idle() {
        let d = ResourceDemand { io_ops: 1.0, ..ResourceDemand::idle() };
        assert!(!d.is_idle());
        let d = ResourceDemand { cpu_instructions: 1.0, ..ResourceDemand::idle() };
        assert!(!d.is_idle());
    }

    #[test]
    fn achieved_default_is_zero() {
        let a = Achieved::default();
        assert_eq!(a.cpu_time, 0.0);
        assert_eq!(a.io_ops, 0.0);
        assert_eq!(a.llc_misses, 0.0);
    }
}
