//! Simulated multi-tenant physical server.
//!
//! This crate is the testbed substrate PerfCloud runs on: a fluid-flow model
//! of one physical machine hosting KVM-style VMs, advanced in fixed ticks by
//! the discrete-event engine. It exposes exactly the surface the paper's
//! node manager uses on real hardware:
//!
//! * **per-VM cumulative counters** ([`counters`]) with the semantics of
//!   cgroup blkio (`io_serviced`, `io_service_bytes`, `io_wait_time`) and
//!   `perf_event` (cycles, instructions, LLC references/misses) — the monitor
//!   samples them and takes deltas, as the paper does via libvirt/perf;
//! * **actuators** — per-VM disk throttles (IOPS / bytes-per-sec caps, the
//!   blkio throttling policy) and CPU hard caps (`vcpu_quota`);
//! * **contention** — a shared block device with queueing-delay inflation, a
//!   shared last-level cache and memory bandwidth that inflate CPI.
//!
//! The one deliberately synthetic ingredient is *per-VM jitter*: on real
//! hardware, VMs sharing a saturated device do not suffer equally — bursty
//! queueing parks some VMs' requests behind the antagonist's. We model that
//! with per-VM AR(1) "luck" processes whose amplitude grows with utilization
//! ([`jitter`]), which reproduces the paper's key observable: the standard
//! deviation of block-iowait ratio / CPI *across* an application's VMs stays
//! under the detection threshold when the application runs alone and blows
//! up under contention (Figs. 3–4).

pub mod config;
pub mod counters;
pub mod cpu;
pub mod demand;
pub mod disk;
pub mod jitter;
pub mod memory;
pub mod server;
pub mod throttle;
pub mod vm;

pub use config::{DiskConfig, MemoryConfig, Priority, ServerConfig, VmConfig};
pub use counters::{CounterSnapshot, VmCounters};
pub use demand::{Achieved, IoPattern, Process, ProcessId, ResourceDemand};
pub use server::{FinishedProcess, PhysicalServer, ServerId, TickReport};
pub use vm::{Vm, VmId};
