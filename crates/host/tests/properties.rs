//! Property-based tests for the host resource-arbitration models.

use perfcloud_host::config::{DiskConfig, MemoryConfig};
use perfcloud_host::cpu::{allocate as cpu_allocate, CpuRequest};
use perfcloud_host::disk::{allocate as disk_allocate, DiskRequest};
use perfcloud_host::memory::{model as mem_model, MemRequest};
use perfcloud_host::throttle::{CpuCap, IoThrottle};
use proptest::prelude::*;

fn cpu_requests() -> impl Strategy<Value = Vec<CpuRequest>> {
    proptest::collection::vec(
        (0.0f64..10.0, 0.0f64..10.0, 0.5f64..8.0).prop_map(|(demand, limit, weight)| CpuRequest {
            demand,
            limit,
            weight,
        }),
        0..12,
    )
}

fn disk_requests() -> impl Strategy<Value = Vec<DiskRequest>> {
    proptest::collection::vec(
        (0.0f64..5_000.0, 0.0f64..1e8, 0.0f64..100.0, 0.0f64..1e8, 0.1f64..4.0, 1.0f64..512.0)
            .prop_map(|(rand_ops, rand_bytes, seq_ops, seq_bytes, luck, queue_depth)| {
                DiskRequest { rand_ops, rand_bytes, seq_ops, seq_bytes, luck, queue_depth }
            }),
        0..10,
    )
}

proptest! {
    /// CPU allocation never exceeds capacity, demand, or limit — and is
    /// work-conserving when undersubscribed.
    #[test]
    fn cpu_allocation_feasible(reqs in cpu_requests(), capacity in 0.0f64..50.0) {
        let alloc = cpu_allocate(&reqs, capacity);
        prop_assert_eq!(alloc.len(), reqs.len());
        let total: f64 = alloc.iter().sum();
        prop_assert!(total <= capacity + 1e-6, "total {total} > capacity {capacity}");
        let mut want_total = 0.0;
        for (a, r) in alloc.iter().zip(&reqs) {
            prop_assert!(*a >= -1e-12);
            prop_assert!(*a <= r.demand.min(r.limit) + 1e-6);
            want_total += r.demand.min(r.limit);
        }
        if want_total <= capacity {
            prop_assert!((total - want_total).abs() < 1e-6, "must be work-conserving");
        }
    }

    /// Disk allocation is feasible and per-VM outcomes never exceed demand.
    #[test]
    fn disk_allocation_feasible(reqs in disk_requests(), dt in 0.01f64..1.0) {
        let cfg = DiskConfig::default();
        let tick = disk_allocate(&reqs, &cfg, 1.0, dt);
        prop_assert_eq!(tick.outcomes.len(), reqs.len());
        for (o, r) in tick.outcomes.iter().zip(&reqs) {
            let ops_want = r.rand_ops + r.seq_ops;
            let bytes_want = r.rand_bytes + r.seq_bytes;
            prop_assert!(o.ops <= ops_want + 1e-6);
            prop_assert!(o.bytes <= bytes_want + 1e-3);
            prop_assert!(o.ops >= -1e-12 && o.bytes >= -1e-12 && o.wait >= -1e-12);
        }
        prop_assert!(tick.offered_utilization >= 0.0);
    }

    /// Total device time granted never exceeds the tick.
    #[test]
    fn disk_time_conservation(reqs in disk_requests(), dt in 0.01f64..1.0) {
        let cfg = DiskConfig::default();
        let tick = disk_allocate(&reqs, &cfg, 1.0, dt);
        let mut granted_time = 0.0;
        for (o, r) in tick.outcomes.iter().zip(&reqs) {
            let ops_want = r.rand_ops + r.seq_ops;
            let frac = if ops_want > 0.0 { o.ops / ops_want } else { 0.0 };
            let want_time = r.rand_ops / cfg.max_random_iops
                + (r.rand_bytes + r.seq_bytes) / cfg.max_seq_bps;
            granted_time += frac * want_time;
        }
        prop_assert!(granted_time <= dt + 1e-6, "granted {granted_time} > dt {dt}");
    }

    /// Memory model: miss rates in [0,1], CPI ≥ base CPI (with luck ≥ 0),
    /// and monotone in added streaming pressure.
    #[test]
    fn memory_model_sane(
        n in 1usize..8,
        refs in 0.0f64..0.3,
        ws in 1e3f64..1e9,
        reuse in 0.0f64..1.0,
    ) {
        let cfg = MemoryConfig::default();
        let base = MemRequest {
            instr_demand: 1e8,
            activity: 1.0,
            refs_per_instr: refs,
            working_set: ws,
            cache_reuse: reuse,
            base_cpi: 1.0,
            luck: 1.0,
        };
        let reqs: Vec<MemRequest> = (0..n).map(|_| base).collect();
        let t = mem_model(&reqs, &cfg, 0.1);
        for o in &t.outcomes {
            prop_assert!((0.0..=1.0).contains(&o.miss_rate));
            prop_assert!(o.cpi >= 1.0 - 1e-9);
        }
        // Add a large streaming antagonist: everyone's CPI must not drop.
        let mut with_stream = reqs.clone();
        with_stream.push(MemRequest {
            instr_demand: 1e9,
            activity: 1.0,
            refs_per_instr: 0.25,
            working_set: 2e9,
            cache_reuse: 0.0,
            base_cpi: 1.0,
            luck: 1.0,
        });
        let t2 = mem_model(&with_stream, &cfg, 0.1);
        for (before, after) in t.outcomes.iter().zip(&t2.outcomes) {
            prop_assert!(after.cpi >= before.cpi - 1e-9);
            prop_assert!(after.miss_rate >= before.miss_rate - 1e-9);
        }
    }

    /// Throttle clamp output never exceeds the caps or the demand.
    #[test]
    fn throttle_clamp_feasible(
        ops in 0.0f64..1e6,
        bytes in 0.0f64..1e9,
        iops_cap in proptest::option::of(0.0f64..1e5),
        bps_cap in proptest::option::of(0.0f64..1e8),
        dt in 0.01f64..1.0,
    ) {
        let t = IoThrottle { iops: iops_cap, bps: bps_cap };
        let (o, b) = t.clamp(ops, bytes, dt);
        prop_assert!(o <= ops + 1e-9 && b <= bytes + 1e-9);
        if let Some(cap) = iops_cap {
            prop_assert!(o <= cap * dt + 1e-6);
        }
        if let Some(cap) = bps_cap {
            prop_assert!(b <= cap * dt + 1e-3);
        }
        prop_assert!(o >= 0.0 && b >= 0.0);
    }

    /// CPU cap is always within [0, vcpus].
    #[test]
    fn cpu_cap_bounded(cores in proptest::option::of(-5.0f64..100.0), vcpus in 1u32..64) {
        let c = CpuCap { cores };
        let e = c.effective_cores(vcpus);
        prop_assert!((0.0..=vcpus as f64).contains(&e));
    }
}
