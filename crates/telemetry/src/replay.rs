//! Deterministic replay of a recorded telemetry stream.

use crate::record::TelemetryRecording;
use crate::source::{CounterSource, Sample};
use perfcloud_host::PhysicalServer;
use perfcloud_sim::SimTime;
use std::sync::Arc;

/// A [`CounterSource`] that re-delivers one server's recorded samples.
///
/// Construction normalizes the stream to `(time, vm, seq)` order, so the
/// delivered sequence is a pure function of the recording — independent of
/// how the original run interleaved collection across threads or shards.
/// Each `collect_into` call delivers every not-yet-delivered sample whose
/// timestamp is at or before `now`; late samples surface exactly where the
/// recording put them, and the monitor's existing stale/duplicate handling
/// applies unchanged.
///
/// Cloning carries the cursor, so a forked experiment resumes replay from
/// the fork point. The underlying samples are shared (`Arc`), making
/// clones cheap even for multi-hour recordings.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    samples: Arc<Vec<Sample>>,
    cursor: usize,
}

impl ReplaySource {
    /// Builds a replay source from the samples recorded on `server`.
    pub fn for_server(recording: &TelemetryRecording, server: u32) -> Self {
        let mut samples: Vec<Sample> =
            recording.samples.iter().filter(|r| r.server == server).map(|r| r.sample).collect();
        samples.sort_by_key(|s| (s.time, s.vm, s.seq));
        ReplaySource { samples: Arc::new(samples), cursor: 0 }
    }

    /// Total samples in this server's stream.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples not yet delivered.
    pub fn remaining(&self) -> usize {
        self.samples.len() - self.cursor
    }
}

impl CounterSource for ReplaySource {
    fn collect_into(&mut self, now: SimTime, _server: &PhysicalServer, out: &mut Vec<Sample>) {
        while let Some(s) = self.samples.get(self.cursor) {
            if s.time > now {
                break;
            }
            out.push(*s);
            self.cursor += 1;
        }
    }

    fn name(&self) -> &'static str {
        "replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecordingFormat, TelemetryReader, TelemetryWriter};
    use crate::source::SimSource;
    use perfcloud_host::{CounterSnapshot, VmCounters, VmId};

    fn sample(t: u64, vm: u32, seq: u64) -> Sample {
        let counters = VmCounters { cpu_time: t as f64, ..Default::default() };
        Sample {
            time: SimTime::from_micros(t),
            vm: VmId(vm),
            seq,
            snapshot: CounterSnapshot { counters },
        }
    }

    fn recording() -> TelemetryRecording {
        let mut w = TelemetryWriter::new(RecordingFormat::Binary, "sim");
        // Deliberately shuffled append order and a second server mixed in.
        w.append(0, &sample(2_000_000, 1, 3));
        w.append(1, &sample(1_000_000, 0, 1));
        w.append(0, &sample(1_000_000, 1, 2));
        w.append(0, &sample(1_000_000, 0, 0));
        TelemetryReader::parse(&w.finish()).unwrap()
    }

    // A small simulated host: two idle VMs is enough for source plumbing.
    fn dummy_server() -> PhysicalServer {
        use perfcloud_host::{ServerConfig, ServerId, VmConfig};
        use perfcloud_sim::{RngFactory, SimDuration};
        let mut s = PhysicalServer::new(
            ServerId(0),
            ServerConfig::default(),
            RngFactory::new(7),
            SimDuration::from_micros(100_000),
        );
        s.add_vm(VmId(0), VmConfig::high_priority());
        s.add_vm(VmId(1), VmConfig::low_priority());
        s
    }

    #[test]
    fn replay_is_sorted_filtered_and_cursor_driven() {
        let rec = recording();
        let mut src = ReplaySource::for_server(&rec, 0);
        assert_eq!(src.len(), 3);
        let server = dummy_server();
        let mut out = Vec::new();
        src.collect_into(SimTime::from_micros(500_000), &server, &mut out);
        assert!(out.is_empty(), "nothing due before the first timestamp");
        src.collect_into(SimTime::from_micros(1_000_000), &server, &mut out);
        assert_eq!(
            out.iter().map(|s| (s.vm.0, s.seq)).collect::<Vec<_>>(),
            vec![(0, 0), (1, 2)],
            "(time, vm, seq) order regardless of append order"
        );
        out.clear();
        src.collect_into(SimTime::from_micros(10_000_000), &server, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].vm, VmId(1));
        assert_eq!(src.remaining(), 0);
    }

    #[test]
    fn clone_preserves_cursor() {
        let rec = recording();
        let mut src = ReplaySource::for_server(&rec, 0);
        let server = dummy_server();
        let mut out = Vec::new();
        src.collect_into(SimTime::from_micros(1_000_000), &server, &mut out);
        let mut forked = src.clone();
        let mut a = Vec::new();
        let mut b = Vec::new();
        src.collect_into(SimTime::MAX, &server, &mut a);
        forked.collect_into(SimTime::MAX, &server, &mut b);
        assert_eq!(a, b, "fork resumes from the same cursor");
    }

    #[test]
    fn sim_tee_replays_identically() {
        // Samples collected by SimSource, teed, parsed, and replayed come
        // back in the same order with identical payloads.
        let server = dummy_server();
        let mut sim = SimSource::new();
        let mut teed = TelemetryWriter::new(RecordingFormat::Jsonl, sim.name());
        let mut live = Vec::new();
        for step in 1..=3u64 {
            let now = SimTime::from_micros(step * 1_000_000);
            let mut batch = Vec::new();
            sim.collect_into(now, &server, &mut batch);
            for s in &batch {
                teed.append(0, s);
            }
            live.extend(batch);
        }
        let rec = TelemetryReader::parse(&teed.finish()).unwrap();
        let mut replay = ReplaySource::for_server(&rec, 0);
        let mut replayed = Vec::new();
        replay.collect_into(SimTime::MAX, &server, &mut replayed);
        assert_eq!(live, replayed);
    }
}
