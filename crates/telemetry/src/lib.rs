//! Counter-sample sources: where the node manager's samples come from.
//!
//! The paper's monitor reads cgroup and `perf_event` counters from a real
//! hypervisor; this reproduction normally reads them from the simulated
//! [`PhysicalServer`](perfcloud_host::PhysicalServer). This crate abstracts
//! that read behind the [`CounterSource`] trait so the same
//! monitor → detector → identifier pipeline can run against three backends:
//!
//! * [`SimSource`] — wraps `PhysicalServer::snapshots()`; the default, and
//!   byte-identical to the historical direct read;
//! * [`HostCollector`] — an rAdvisor-style cgroup v1/v2 polling collector
//!   with per-target ring buffers and batched flush, for running the node
//!   manager against a real Linux host;
//! * [`ReplaySource`] — feeds a previously recorded trace back through the
//!   pipeline deterministically, for offline A/B scoring of controllers.
//!
//! Every source can be teed into the versioned recording format
//! ([`TelemetryWriter`] / [`TelemetryReader`], JSONL or compact
//! length-prefixed binary), and a recording replays to byte-identical
//! decisions at any shard or thread count: samples are totally ordered by
//! `(time, vm, seq)` and carry their own timestamps.
//!
//! The crate is deliberately dependency-light (sim + host only, no I/O
//! framework, no serde) so it can sit beside `obs` at the bottom of the
//! dependency stack.

#![warn(missing_docs)]

pub mod host;
pub mod record;
pub mod replay;
pub mod source;

pub use host::{CgroupTarget, CgroupVersion, CollectorStats, HostCollector};
pub use record::{
    RecordedSample, RecordingFormat, TelemetryReader, TelemetryRecording, TelemetryWriter,
    RECORDING_MAGIC, RECORDING_VERSION,
};
pub use replay::ReplaySource;
pub use source::{CloneSource, CounterSource, Sample, SimSource};
