//! A cgroup v1/v2 host collector in the style of rAdvisor: poll stat
//! files on a fine cadence into per-target ring buffers, flush batches at
//! the node manager's sampling interval.
//!
//! The collector never fails a poll: a missing controller file (unmounted
//! controller, cgroup v2 without the io controller, a target torn down
//! mid-poll) degrades to a zero field and a `missing_files` count, so the
//! pipeline keeps running on whatever subset of counters the host exposes.
//! Fields the sim models but cgroups do not export (`cycles`,
//! `instructions`, LLC counters — `perf_event` territory) read as zero.
//!
//! Wall time is mapped onto the sim clock by anchoring the first poll's
//! monotonic instant at [`SimTime::ZERO`]; every later poll is stamped
//! with its monotonic offset from that origin, so recordings made on a
//! host replay on the same timeline the sim uses.

use crate::source::{CounterSource, Sample};
use perfcloud_host::{CounterSnapshot, PhysicalServer, VmCounters, VmId};
use perfcloud_sim::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Which cgroup hierarchy layout a target uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CgroupVersion {
    /// Split hierarchies: `cpuacct`, `blkio`, `memory` controllers each
    /// have their own directory.
    V1,
    /// Unified hierarchy: one directory with `cpu.stat`, `io.stat`,
    /// `memory.current`.
    V2,
}

/// One monitored cgroup (one VM / container).
#[derive(Debug, Clone)]
pub struct CgroupTarget {
    vm: VmId,
    version: CgroupVersion,
    cpu_dir: PathBuf,
    blkio_dir: PathBuf,
    memory_dir: PathBuf,
}

impl CgroupTarget {
    /// A cgroup v1 target with separate controller directories.
    pub fn v1(
        vm: VmId,
        cpuacct: impl Into<PathBuf>,
        blkio: impl Into<PathBuf>,
        memory: impl Into<PathBuf>,
    ) -> Self {
        CgroupTarget {
            vm,
            version: CgroupVersion::V1,
            cpu_dir: cpuacct.into(),
            blkio_dir: blkio.into(),
            memory_dir: memory.into(),
        }
    }

    /// A cgroup v2 target rooted at one unified directory.
    pub fn v2(vm: VmId, dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        CgroupTarget {
            vm,
            version: CgroupVersion::V2,
            cpu_dir: dir.clone(),
            blkio_dir: dir.clone(),
            memory_dir: dir,
        }
    }

    /// The VM this cgroup is attributed to.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// The hierarchy layout this target reads.
    pub fn version(&self) -> CgroupVersion {
        self.version
    }
}

/// Collector health counters, exported into the metrics registry by the
/// experiment layer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CollectorStats {
    /// Poll sweeps completed.
    pub polls: u64,
    /// Samples pushed into rings.
    pub samples: u64,
    /// Samples evicted from full rings before they were flushed.
    pub dropped: u64,
    /// Stat files that could not be read (missing controller, races).
    pub missing_files: u64,
    /// Batched flushes into the monitor.
    pub flushes: u64,
    /// Worst observed poll lag beyond the configured cadence, in µs.
    pub max_poll_lag_us: u64,
    /// Memory usage summed over targets at the last poll, in bytes.
    /// Memory has no [`VmCounters`] field — it informs operators, not the
    /// detectors — so it lives here.
    pub memory_bytes: f64,
}

#[derive(Debug, Clone)]
struct TargetState {
    target: CgroupTarget,
    ring: VecDeque<Sample>,
    dropped_since_flush: u64,
}

/// Polls cgroup stat files into fixed-capacity per-target rings and
/// flushes them as batches through the [`CounterSource`] interface.
#[derive(Debug, Clone)]
pub struct HostCollector {
    targets: Vec<TargetState>,
    ring_capacity: usize,
    cadence: SimDuration,
    origin: Option<Instant>,
    last_poll: Option<SimTime>,
    seq: u64,
    stats: CollectorStats,
}

impl HostCollector {
    /// Creates a collector that intends to poll every `cadence` and keeps
    /// at most `ring_capacity` unflushed samples per target (oldest
    /// evicted first).
    pub fn new(cadence: SimDuration, ring_capacity: usize) -> Self {
        assert!(ring_capacity > 0, "ring capacity must be positive");
        HostCollector {
            targets: Vec::new(),
            ring_capacity,
            cadence,
            origin: None,
            last_poll: None,
            seq: 0,
            stats: CollectorStats::default(),
        }
    }

    /// Registers a cgroup to poll. Targets are flushed in registration
    /// order.
    pub fn add_target(&mut self, target: CgroupTarget) {
        self.targets.push(TargetState {
            target,
            ring: VecDeque::with_capacity(self.ring_capacity),
            dropped_since_flush: 0,
        });
    }

    /// Current health counters.
    pub fn stats(&self) -> CollectorStats {
        self.stats
    }

    /// Polls every target now, stamping samples with the monotonic offset
    /// from the first poll (which anchors [`SimTime::ZERO`]). Returns the
    /// mapped timestamp.
    pub fn poll_once(&mut self) -> SimTime {
        let origin = *self.origin.get_or_insert_with(Instant::now);
        let elapsed = origin.elapsed();
        let now =
            SimTime::ZERO.saturating_add(SimDuration::from_micros(elapsed.as_micros() as u64));
        self.poll_at(now);
        now
    }

    /// Polls every target, stamping samples at `now`. Split from
    /// [`poll_once`](Self::poll_once) so tests can drive the collector on
    /// a synthetic clock.
    pub fn poll_at(&mut self, now: SimTime) {
        if let Some(last) = self.last_poll {
            let gap = now.saturating_since(last).as_micros();
            let lag = gap.saturating_sub(self.cadence.as_micros());
            self.stats.max_poll_lag_us = self.stats.max_poll_lag_us.max(lag);
        }
        self.last_poll = Some(now);
        self.stats.polls += 1;
        let mut memory_total = 0.0;
        for state in &mut self.targets {
            let (counters, memory) = read_target(&state.target, &mut self.stats);
            memory_total += memory;
            if state.ring.len() == self.ring_capacity {
                state.ring.pop_front();
                state.dropped_since_flush += 1;
                self.stats.dropped += 1;
            }
            state.ring.push_back(Sample {
                time: now,
                vm: state.target.vm,
                seq: self.seq,
                snapshot: CounterSnapshot { counters },
            });
            self.seq += 1;
            self.stats.samples += 1;
        }
        self.stats.memory_bytes = memory_total;
    }

    /// Drains every ring (targets in registration order, then normalized
    /// to `(time, vm, seq)` order) into `out` — the batched flush.
    pub fn flush_into(&mut self, out: &mut Vec<Sample>) {
        let start = out.len();
        for state in &mut self.targets {
            out.extend(state.ring.drain(..));
        }
        out[start..].sort_by_key(|s| (s.time, s.vm, s.seq));
        self.stats.flushes += 1;
    }
}

fn read_target(target: &CgroupTarget, stats: &mut CollectorStats) -> (VmCounters, f64) {
    match target.version {
        CgroupVersion::V1 => read_v1(target, stats),
        CgroupVersion::V2 => read_v2(target, stats),
    }
}

fn read_file(path: &Path, stats: &mut CollectorStats) -> Option<String> {
    match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(_) => {
            stats.missing_files += 1;
            None
        }
    }
}

fn read_v1(t: &CgroupTarget, stats: &mut CollectorStats) -> (VmCounters, f64) {
    let cpu_ns = read_file(&t.cpu_dir.join("cpuacct.usage"), stats)
        .and_then(|s| parse_scalar(&s))
        .unwrap_or(0.0);
    let io_serviced = read_file(&t.blkio_dir.join("blkio.throttle.io_serviced"), stats)
        .and_then(|s| parse_blkio_total(&s))
        .unwrap_or(0.0);
    let io_bytes = read_file(&t.blkio_dir.join("blkio.throttle.io_service_bytes"), stats)
        .and_then(|s| parse_blkio_total(&s))
        .unwrap_or(0.0);
    let wait_ns = read_file(&t.blkio_dir.join("blkio.io_wait_time"), stats)
        .and_then(|s| parse_blkio_total(&s))
        .unwrap_or(0.0);
    let memory = read_file(&t.memory_dir.join("memory.usage_in_bytes"), stats)
        .and_then(|s| parse_scalar(&s))
        .unwrap_or(0.0);
    let counters = VmCounters {
        io_serviced,
        io_service_bytes: io_bytes,
        io_wait_time: wait_ns / 1e9,
        cpu_time: cpu_ns / 1e9,
        ..Default::default()
    };
    (counters, memory)
}

fn read_v2(t: &CgroupTarget, stats: &mut CollectorStats) -> (VmCounters, f64) {
    let cpu_usec = read_file(&t.cpu_dir.join("cpu.stat"), stats)
        .and_then(|s| parse_flat_keyed(&s, "usage_usec"))
        .unwrap_or(0.0);
    let (io_serviced, io_bytes) = read_file(&t.blkio_dir.join("io.stat"), stats)
        .map(|s| parse_io_stat(&s))
        .unwrap_or((0.0, 0.0));
    let memory = read_file(&t.memory_dir.join("memory.current"), stats)
        .and_then(|s| parse_scalar(&s))
        .unwrap_or(0.0);
    // The unified hierarchy has no io_wait_time analogue; the field stays
    // zero and the iowait detector simply sees no I/O pressure signal
    // from this source.
    let counters = VmCounters {
        io_serviced,
        io_service_bytes: io_bytes,
        cpu_time: cpu_usec / 1e6,
        ..Default::default()
    };
    (counters, memory)
}

impl CounterSource for HostCollector {
    fn collect_into(&mut self, _now: SimTime, _server: &PhysicalServer, out: &mut Vec<Sample>) {
        self.flush_into(out);
    }

    fn name(&self) -> &'static str {
        "cgroup"
    }

    fn take_drops(&mut self) -> Vec<(VmId, u64)> {
        let mut drops = Vec::new();
        for state in &mut self.targets {
            if state.dropped_since_flush > 0 {
                drops.push((state.target.vm, state.dropped_since_flush));
                state.dropped_since_flush = 0;
            }
        }
        drops
    }
}

/// Parses a single-value stat file (`cpuacct.usage`, `memory.current`).
pub fn parse_scalar(text: &str) -> Option<f64> {
    text.trim().parse().ok()
}

/// Parses a flat-keyed stat file (`cpu.stat`) and returns `key`'s value.
pub fn parse_flat_keyed(text: &str, key: &str) -> Option<f64> {
    for line in text.lines() {
        let mut it = line.split_whitespace();
        if it.next() == Some(key) {
            return it.next().and_then(|v| v.parse().ok());
        }
    }
    None
}

/// Parses a cgroup v1 blkio file: prefers the global `Total N` summary
/// line, falling back to summing per-device `maj:min Read|Write N` lines.
pub fn parse_blkio_total(text: &str) -> Option<f64> {
    let mut rw_sum = 0.0;
    let mut any = false;
    for line in text.lines() {
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            ["Total", v] => return v.parse().ok(),
            [_, "Read" | "Write", v] => {
                if let Ok(x) = v.parse::<f64>() {
                    rw_sum += x;
                    any = true;
                }
            }
            _ => {}
        }
    }
    any.then_some(rw_sum)
}

/// Parses a cgroup v2 `io.stat` file into `(operations, bytes)` summed
/// over devices (reads + writes).
pub fn parse_io_stat(text: &str) -> (f64, f64) {
    let mut ops = 0.0;
    let mut bytes = 0.0;
    for line in text.lines() {
        for tok in line.split_whitespace().skip(1) {
            if let Some((k, v)) = tok.split_once('=') {
                if let Ok(x) = v.parse::<f64>() {
                    match k {
                        "rbytes" | "wbytes" => bytes += x,
                        "rios" | "wios" => ops += x,
                        _ => {}
                    }
                }
            }
        }
    }
    (ops, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    #[test]
    fn parsers_handle_real_file_shapes() {
        assert_eq!(parse_scalar(" 123456789\n"), Some(123456789.0));
        assert_eq!(parse_scalar("junk"), None);

        let cpu_stat = "usage_usec 4200000\nuser_usec 3000000\nsystem_usec 1200000\n";
        assert_eq!(parse_flat_keyed(cpu_stat, "usage_usec"), Some(4200000.0));
        assert_eq!(parse_flat_keyed(cpu_stat, "nr_periods"), None);

        let serviced =
            "8:0 Read 120\n8:0 Write 30\n8:0 Sync 100\n8:0 Async 50\n8:0 Total 150\nTotal 150\n";
        assert_eq!(parse_blkio_total(serviced), Some(150.0));
        // No global Total line: fall back to Read+Write.
        let partial = "8:0 Read 120\n8:0 Write 30\n";
        assert_eq!(parse_blkio_total(partial), Some(150.0));
        assert_eq!(parse_blkio_total(""), None);

        let io_stat = "8:0 rbytes=1024 wbytes=512 rios=4 wios=2 dbytes=0 dios=0\n\
                       8:16 rbytes=100 wbytes=0 rios=1 wios=0 dbytes=0 dios=0\n";
        let (ops, bytes) = parse_io_stat(io_stat);
        assert_eq!(ops, 7.0);
        assert_eq!(bytes, 1636.0);
    }

    fn synthetic_tree(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pftl-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write(dir: &Path, name: &str, content: &str) {
        fs::write(dir.join(name), content).unwrap();
    }

    #[test]
    fn v1_tree_polls_into_counters() {
        let dir = synthetic_tree("v1");
        write(&dir, "cpuacct.usage", "2500000000\n");
        write(&dir, "blkio.throttle.io_serviced", "8:0 Read 90\n8:0 Write 10\nTotal 100\n");
        write(&dir, "blkio.throttle.io_service_bytes", "Total 1048576\n");
        write(&dir, "blkio.io_wait_time", "Total 500000000\n");
        write(&dir, "memory.usage_in_bytes", "7340032\n");
        let mut c = HostCollector::new(SimDuration::from_millis(100), 8);
        c.add_target(CgroupTarget::v1(VmId(3), &dir, &dir, &dir));
        c.poll_at(SimTime::from_micros(1_000));
        let mut out = Vec::new();
        c.flush_into(&mut out);
        assert_eq!(out.len(), 1);
        let s = &out[0];
        assert_eq!(s.vm, VmId(3));
        assert_eq!(s.snapshot.counters.cpu_time, 2.5);
        assert_eq!(s.snapshot.counters.io_serviced, 100.0);
        assert_eq!(s.snapshot.counters.io_service_bytes, 1048576.0);
        assert_eq!(s.snapshot.counters.io_wait_time, 0.5);
        assert_eq!(s.snapshot.counters.cycles, 0.0, "perf-only fields degrade to zero");
        let st = c.stats();
        assert_eq!(st.polls, 1);
        assert_eq!(st.missing_files, 0);
        assert_eq!(st.memory_bytes, 7340032.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_tree_polls_into_counters() {
        let dir = synthetic_tree("v2");
        write(&dir, "cpu.stat", "usage_usec 1500000\nuser_usec 1000000\n");
        write(&dir, "io.stat", "8:0 rbytes=2048 wbytes=1024 rios=8 wios=4 dbytes=0 dios=0\n");
        write(&dir, "memory.current", "1048576\n");
        let mut c = HostCollector::new(SimDuration::from_millis(100), 8);
        c.add_target(CgroupTarget::v2(VmId(1), &dir));
        c.poll_at(SimTime::from_micros(1_000));
        let mut out = Vec::new();
        c.flush_into(&mut out);
        assert_eq!(out.len(), 1);
        let s = &out[0];
        assert_eq!(s.snapshot.counters.cpu_time, 1.5);
        assert_eq!(s.snapshot.counters.io_serviced, 12.0);
        assert_eq!(s.snapshot.counters.io_service_bytes, 3072.0);
        assert_eq!(s.snapshot.counters.io_wait_time, 0.0, "v2 has no iowait analogue");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_controller_files_degrade_gracefully() {
        let dir = synthetic_tree("missing");
        write(&dir, "cpu.stat", "usage_usec 1000000\n");
        // io.stat and memory.current deliberately absent.
        let mut c = HostCollector::new(SimDuration::from_millis(100), 8);
        c.add_target(CgroupTarget::v2(VmId(0), &dir));
        c.poll_at(SimTime::from_micros(1_000));
        let mut out = Vec::new();
        c.flush_into(&mut out);
        assert_eq!(out.len(), 1, "a poll always yields a sample");
        assert_eq!(out[0].snapshot.counters.cpu_time, 1.0);
        assert_eq!(out[0].snapshot.counters.io_serviced, 0.0);
        assert_eq!(c.stats().missing_files, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_reports() {
        let dir = synthetic_tree("ring");
        write(&dir, "cpu.stat", "usage_usec 1000000\n");
        write(&dir, "io.stat", "");
        write(&dir, "memory.current", "0\n");
        let mut c = HostCollector::new(SimDuration::from_millis(100), 2);
        c.add_target(CgroupTarget::v2(VmId(5), &dir));
        for step in 0..5u64 {
            c.poll_at(SimTime::from_micros(1_000 * (step + 1)));
        }
        let mut out = Vec::new();
        c.flush_into(&mut out);
        assert_eq!(out.len(), 2, "ring keeps only the newest two");
        assert_eq!(out[0].time, SimTime::from_micros(4_000));
        assert_eq!(out[1].time, SimTime::from_micros(5_000));
        assert_eq!(c.stats().dropped, 3);
        let drops = c.take_drops();
        assert_eq!(drops, vec![(VmId(5), 3)]);
        assert!(c.take_drops().is_empty(), "drop counts reset after take");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn poll_lag_is_tracked() {
        let dir = synthetic_tree("lag");
        write(&dir, "cpu.stat", "usage_usec 0\n");
        write(&dir, "io.stat", "");
        write(&dir, "memory.current", "0\n");
        let mut c = HostCollector::new(SimDuration::from_millis(100), 8);
        c.add_target(CgroupTarget::v2(VmId(0), &dir));
        c.poll_at(SimTime::from_micros(0));
        c.poll_at(SimTime::from_micros(100_000));
        assert_eq!(c.stats().max_poll_lag_us, 0, "on-cadence polls have no lag");
        c.poll_at(SimTime::from_micros(350_000));
        assert_eq!(c.stats().max_poll_lag_us, 150_000);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Probes the real cgroup hierarchy when one is mounted; skips (with a
    /// note) when the environment has none. CI runs this on Linux runners.
    #[cfg(target_os = "linux")]
    #[test]
    fn host_collector_reads_real_cgroup() {
        let root = Path::new("/sys/fs/cgroup");
        let target = if root.join("cgroup.controllers").exists() {
            CgroupTarget::v2(VmId(0), root)
        } else if root.join("cpuacct").exists() {
            CgroupTarget::v1(VmId(0), root.join("cpuacct"), root.join("blkio"), root.join("memory"))
        } else {
            eprintln!("skipping host_collector_reads_real_cgroup: no cgroup fs at /sys/fs/cgroup");
            return;
        };
        let mut c = HostCollector::new(SimDuration::from_millis(10), 64);
        c.add_target(target);
        let t0 = c.poll_once();
        std::thread::sleep(std::time::Duration::from_millis(15));
        let t1 = c.poll_once();
        assert!(t1 > t0, "monotonic clock mapping must advance");
        let mut out = Vec::new();
        c.flush_into(&mut out);
        assert_eq!(out.len(), 2);
        assert!(
            out[1].snapshot.counters.cpu_time >= out[0].snapshot.counters.cpu_time,
            "cpu time is monotone"
        );
        assert_eq!(c.stats().polls, 2);
    }
}
