//! The versioned telemetry recording format.
//!
//! A recording is a header (magic, format version, source name) followed by
//! a flat stream of `(server, sample)` records. Two encodings share the
//! logical schema:
//!
//! * **binary** — magic `PFTL`, `u32` version, length-prefixed source name,
//!   then one length-prefixed 88-byte record per sample (`time:u64`,
//!   `server:u32`, `vm:u32`, `seq:u64`, eight `f64` counters in
//!   [`VmCounters`] field order, all little-endian). The per-record length
//!   prefix lets old readers skip fields a future version appends.
//! * **JSONL** — a header object line, then one object per sample with the
//!   counters as an eight-element array. Floats are rendered with Rust's
//!   shortest round-trip `Display`, so decode(encode(x)) is exact.
//!
//! [`TelemetryReader::parse`] auto-detects the encoding from the first
//! byte. Neither encoder consults any ambient state, so identical sample
//! streams produce identical bytes.

use crate::source::Sample;
use perfcloud_host::{CounterSnapshot, VmCounters, VmId};
use perfcloud_sim::SimTime;
use std::fmt::Write as _;

/// Magic bytes opening every recording (`PFTL`, "PerfCloud TeLemetry").
pub const RECORDING_MAGIC: &[u8; 4] = b"PFTL";

/// Current format version. Readers reject newer major versions.
pub const RECORDING_VERSION: u32 = 1;

/// Bytes in one binary record body (time + server + vm + seq + 8 counters).
const RECORD_LEN: usize = 8 + 4 + 4 + 8 + 8 * 8;

/// Which encoding a writer emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordingFormat {
    /// Compact length-prefixed little-endian binary.
    #[default]
    Binary,
    /// One JSON object per line; self-describing and diffable.
    Jsonl,
}

/// One recorded sample, tagged with the server it was collected on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordedSample {
    /// Server (node manager) the sample belongs to.
    pub server: u32,
    /// The sample itself.
    pub sample: Sample,
}

/// A decoded recording: header fields plus all samples in stream order.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryRecording {
    /// Format version the stream was written with.
    pub version: u32,
    /// Name of the source that produced the samples (`"sim"`, `"cgroup"`).
    pub source: String,
    /// Samples in the order they were appended.
    pub samples: Vec<RecordedSample>,
}

/// Accumulates teed samples and serializes them on demand.
///
/// The writer buffers decoded records rather than bytes so it can be
/// cloned cheaply enough for experiment forking and serialized once at the
/// end of a run.
#[derive(Debug, Clone)]
pub struct TelemetryWriter {
    format: RecordingFormat,
    source: String,
    samples: Vec<RecordedSample>,
}

impl TelemetryWriter {
    /// Creates a writer for the given encoding and source name.
    pub fn new(format: RecordingFormat, source: &str) -> Self {
        TelemetryWriter { format, source: source.to_string(), samples: Vec::new() }
    }

    /// Appends one sample collected on `server`.
    pub fn append(&mut self, server: u32, sample: &Sample) {
        self.samples.push(RecordedSample { server, sample: *sample });
    }

    /// Number of samples appended so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The recording accumulated so far, without consuming the writer.
    pub fn recording(&self) -> TelemetryRecording {
        TelemetryRecording {
            version: RECORDING_VERSION,
            source: self.source.clone(),
            samples: self.samples.clone(),
        }
    }

    /// Serializes the recording and consumes the writer.
    pub fn finish(self) -> Vec<u8> {
        let rec = TelemetryRecording {
            version: RECORDING_VERSION,
            source: self.source,
            samples: self.samples,
        };
        match self.format {
            RecordingFormat::Binary => encode_binary(&rec),
            RecordingFormat::Jsonl => encode_jsonl(&rec).into_bytes(),
        }
    }
}

fn counters_array(c: &VmCounters) -> [f64; 8] {
    [
        c.io_serviced,
        c.io_service_bytes,
        c.io_wait_time,
        c.cpu_time,
        c.cycles,
        c.instructions,
        c.llc_references,
        c.llc_misses,
    ]
}

fn counters_from_array(a: [f64; 8]) -> VmCounters {
    VmCounters {
        io_serviced: a[0],
        io_service_bytes: a[1],
        io_wait_time: a[2],
        cpu_time: a[3],
        cycles: a[4],
        instructions: a[5],
        llc_references: a[6],
        llc_misses: a[7],
    }
}

fn encode_binary(rec: &TelemetryRecording) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + rec.source.len() + rec.samples.len() * (4 + RECORD_LEN));
    out.extend_from_slice(RECORDING_MAGIC);
    out.extend_from_slice(&rec.version.to_le_bytes());
    out.extend_from_slice(&(rec.source.len() as u32).to_le_bytes());
    out.extend_from_slice(rec.source.as_bytes());
    for r in &rec.samples {
        out.extend_from_slice(&(RECORD_LEN as u32).to_le_bytes());
        out.extend_from_slice(&r.sample.time.as_micros().to_le_bytes());
        out.extend_from_slice(&r.server.to_le_bytes());
        out.extend_from_slice(&r.sample.vm.0.to_le_bytes());
        out.extend_from_slice(&r.sample.seq.to_le_bytes());
        for v in counters_array(&r.sample.snapshot.counters) {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    out
}

fn encode_jsonl(rec: &TelemetryRecording) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"magic\":\"PFTL\",\"version\":{},\"source\":\"{}\"}}",
        rec.version, rec.source
    );
    for r in &rec.samples {
        let _ = write!(
            out,
            "{{\"t\":{},\"server\":{},\"vm\":{},\"seq\":{},\"c\":[",
            r.sample.time.as_micros(),
            r.server,
            r.sample.vm.0,
            r.sample.seq
        );
        for (i, v) in counters_array(&r.sample.snapshot.counters).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("]}\n");
    }
    out
}

/// Decodes recordings written by [`TelemetryWriter`].
pub struct TelemetryReader;

impl TelemetryReader {
    /// Parses a recording, auto-detecting binary (`PFTL` magic) vs JSONL
    /// (leading `{`). Returns a description of the first malformation
    /// encountered on bad input.
    pub fn parse(bytes: &[u8]) -> Result<TelemetryRecording, String> {
        match bytes.first() {
            Some(b'P') => decode_binary(bytes),
            Some(b'{') => decode_jsonl(std::str::from_utf8(bytes).map_err(|e| e.to_string())?),
            Some(b) => Err(format!("unrecognized recording leader byte 0x{b:02x}")),
            None => Err("empty recording".to_string()),
        }
    }
}

fn take<'a>(bytes: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8], String> {
    if bytes.len() < n {
        return Err(format!("truncated recording: {what}"));
    }
    let (head, rest) = bytes.split_at(n);
    *bytes = rest;
    Ok(head)
}

fn take_u32(bytes: &mut &[u8], what: &str) -> Result<u32, String> {
    Ok(u32::from_le_bytes(take(bytes, 4, what)?.try_into().unwrap()))
}

fn take_u64(bytes: &mut &[u8], what: &str) -> Result<u64, String> {
    Ok(u64::from_le_bytes(take(bytes, 8, what)?.try_into().unwrap()))
}

fn decode_binary(mut bytes: &[u8]) -> Result<TelemetryRecording, String> {
    let magic = take(&mut bytes, 4, "magic")?;
    if magic != RECORDING_MAGIC {
        return Err("bad magic (expected PFTL)".to_string());
    }
    let version = take_u32(&mut bytes, "version")?;
    if version > RECORDING_VERSION {
        return Err(format!("unsupported recording version {version}"));
    }
    let name_len = take_u32(&mut bytes, "source-name length")? as usize;
    let source = String::from_utf8(take(&mut bytes, name_len, "source name")?.to_vec())
        .map_err(|e| e.to_string())?;
    let mut samples = Vec::new();
    while !bytes.is_empty() {
        let len = take_u32(&mut bytes, "record length")? as usize;
        if len < RECORD_LEN {
            return Err(format!("record too short: {len} bytes"));
        }
        let mut body = take(&mut bytes, len, "record body")?;
        let time = SimTime::from_micros(take_u64(&mut body, "time")?);
        let server = take_u32(&mut body, "server")?;
        let vm = VmId(take_u32(&mut body, "vm")?);
        let seq = take_u64(&mut body, "seq")?;
        let mut c = [0.0f64; 8];
        for slot in &mut c {
            *slot = f64::from_bits(take_u64(&mut body, "counter")?);
        }
        // Anything past the known fields is a forward-compatible extension.
        let snapshot = CounterSnapshot { counters: counters_from_array(c) };
        samples.push(RecordedSample { server, sample: Sample { time, vm, seq, snapshot } });
    }
    Ok(TelemetryRecording { version, source, samples })
}

/// Extracts the number following `"key":` in a single JSON object line.
fn json_field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat).ok_or_else(|| format!("missing field {key}"))? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}', ']']).ok_or_else(|| format!("unterminated field {key}"))?;
    Ok(rest[..end].trim().trim_matches('"'))
}

fn decode_jsonl(text: &str) -> Result<TelemetryRecording, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty recording")?;
    if json_field(header, "magic")? != "PFTL" {
        return Err("bad magic (expected PFTL)".to_string());
    }
    let version: u32 = json_field(header, "version")?.parse().map_err(|_| "bad version")?;
    if version > RECORDING_VERSION {
        return Err(format!("unsupported recording version {version}"));
    }
    let source = json_field(header, "source")?.to_string();
    let mut samples = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let time = SimTime::from_micros(json_field(line, "t")?.parse().map_err(|_| "bad time")?);
        let server: u32 = json_field(line, "server")?.parse().map_err(|_| "bad server")?;
        let vm = VmId(json_field(line, "vm")?.parse().map_err(|_| "bad vm")?);
        let seq: u64 = json_field(line, "seq")?.parse().map_err(|_| "bad seq")?;
        let open = line.find("\"c\":[").ok_or("missing counters")? + 5;
        let close = line[open..].find(']').ok_or("unterminated counters")? + open;
        let mut c = [0.0f64; 8];
        let mut n = 0;
        for (i, tok) in line[open..close].split(',').enumerate() {
            if i >= 8 {
                return Err("too many counters".to_string());
            }
            c[i] = tok.trim().parse().map_err(|_| format!("bad counter {tok:?}"))?;
            n = i + 1;
        }
        if n != 8 {
            return Err(format!("expected 8 counters, got {n}"));
        }
        let snapshot = CounterSnapshot { counters: counters_from_array(c) };
        samples.push(RecordedSample { server, sample: Sample { time, vm, seq, snapshot } });
    }
    Ok(TelemetryRecording { version, source, samples })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: u64, vm: u32, seq: u64, base: f64) -> Sample {
        let counters = counters_from_array([
            base,
            base * 512.0,
            base / 100.0,
            base / 50.0,
            base * 1e7,
            base * 0.9e7,
            base * 1e4,
            base * 300.7,
        ]);
        Sample {
            time: SimTime::from_micros(t),
            vm: VmId(vm),
            seq,
            snapshot: CounterSnapshot { counters },
        }
    }

    fn roundtrip(format: RecordingFormat) {
        let mut w = TelemetryWriter::new(format, "sim");
        w.append(0, &sample(1_000_000, 3, 0, 17.25));
        w.append(1, &sample(1_000_000, 9, 1, 0.1));
        w.append(0, &sample(2_000_000, 3, 2, 1e12 + 0.5));
        assert_eq!(w.len(), 3);
        let bytes = w.finish();
        let rec = TelemetryReader::parse(&bytes).expect("parse");
        assert_eq!(rec.version, RECORDING_VERSION);
        assert_eq!(rec.source, "sim");
        assert_eq!(rec.samples.len(), 3);
        assert_eq!(rec.samples[0].sample, sample(1_000_000, 3, 0, 17.25));
        assert_eq!(rec.samples[1].server, 1);
        assert_eq!(rec.samples[2].sample, sample(2_000_000, 3, 2, 1e12 + 0.5));
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        roundtrip(RecordingFormat::Binary);
    }

    #[test]
    fn jsonl_roundtrip_is_exact() {
        roundtrip(RecordingFormat::Jsonl);
    }

    #[test]
    fn encoders_are_deterministic() {
        for format in [RecordingFormat::Binary, RecordingFormat::Jsonl] {
            let build = || {
                let mut w = TelemetryWriter::new(format, "sim");
                w.append(0, &sample(5, 1, 0, 2.5));
                w.finish()
            };
            assert_eq!(build(), build());
        }
    }

    #[test]
    fn truncated_and_corrupt_inputs_are_rejected() {
        let mut w = TelemetryWriter::new(RecordingFormat::Binary, "sim");
        w.append(0, &sample(5, 1, 0, 2.5));
        let bytes = w.finish();
        assert!(TelemetryReader::parse(&bytes[..bytes.len() - 3]).is_err());
        assert!(TelemetryReader::parse(b"XXXX").is_err());
        assert!(TelemetryReader::parse(b"").is_err());
        assert!(
            TelemetryReader::parse(b"{\"magic\":\"NOPE\",\"version\":1,\"source\":\"x\"}").is_err()
        );
    }

    #[test]
    fn newer_version_is_rejected() {
        let mut w = TelemetryWriter::new(RecordingFormat::Binary, "sim");
        w.append(0, &sample(5, 1, 0, 2.5));
        let mut bytes = w.finish();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        let err = TelemetryReader::parse(&bytes).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn longer_records_are_forward_compatible() {
        // A future writer may append fields to each record; the length
        // prefix lets this reader skip them.
        let mut w = TelemetryWriter::new(RecordingFormat::Binary, "sim");
        w.append(2, &sample(5, 1, 0, 2.5));
        let bytes = w.finish();
        let header_len = 4 + 4 + 4 + 3;
        let mut extended = bytes[..header_len].to_vec();
        extended.extend_from_slice(&((RECORD_LEN + 8) as u32).to_le_bytes());
        extended.extend_from_slice(&bytes[header_len + 4..]);
        extended.extend_from_slice(&0xdead_beefu64.to_le_bytes());
        let rec = TelemetryReader::parse(&extended).expect("extended record parses");
        assert_eq!(rec.samples.len(), 1);
        assert_eq!(rec.samples[0].server, 2);
        assert_eq!(rec.samples[0].sample, sample(5, 1, 0, 2.5));
    }
}
