//! The [`CounterSource`] trait and the default simulated implementation.

use perfcloud_host::{CounterSnapshot, PhysicalServer, VmId};
use perfcloud_sim::SimTime;

/// One counter read for one VM, as delivered to the monitor.
///
/// `time` is when the counters were read (for [`SimSource`] this is the
/// sampling instant; for a host collector it is the poll instant mapped
/// onto the sim clock), and `seq` is a per-source monotone sequence number
/// that makes the `(time, vm, seq)` triple a total order — the order every
/// replay is normalized to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Instant the counters were read.
    pub time: SimTime,
    /// The VM (cgroup) the counters belong to.
    pub vm: VmId,
    /// Per-source monotone sequence number; tie-breaks equal `(time, vm)`.
    pub seq: u64,
    /// The cumulative counter values.
    pub snapshot: CounterSnapshot,
}

/// Object-safe clone support for boxed sources (the node manager is
/// `Clone` for experiment forking, so its source must be too).
pub trait CloneSource {
    /// Clones into a new boxed trait object.
    fn clone_box(&self) -> Box<dyn CounterSource>;
}

impl<T: CounterSource + Clone + 'static> CloneSource for T {
    fn clone_box(&self) -> Box<dyn CounterSource> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn CounterSource> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Where the node manager's counter samples come from.
///
/// Implementations must be deterministic given their own state: two
/// identically constructed sources driven by the same `collect_into`
/// sequence must yield the same samples in the same order, regardless of
/// thread or shard count.
pub trait CounterSource: Send + CloneSource {
    /// Appends every sample that is due at `now` to `out`, in delivery
    /// order. `server` is the simulated host being sampled; host-side
    /// sources that read real files ignore it.
    fn collect_into(&mut self, now: SimTime, server: &PhysicalServer, out: &mut Vec<Sample>);

    /// Short stable name recorded in trace headers (`"sim"`, `"cgroup"`,
    /// `"replay"`).
    fn name(&self) -> &'static str;

    /// True for the default simulated source. The node manager suppresses
    /// collector flight events on sim-only runs so the historical traces
    /// stay byte-identical.
    fn is_sim(&self) -> bool {
        false
    }

    /// Samples dropped (per VM) since the last call, for ring-overflow
    /// accounting. Only buffering sources ever report drops.
    fn take_drops(&mut self) -> Vec<(VmId, u64)> {
        Vec::new()
    }
}

/// The default source: one hypervisor read of the simulated server.
///
/// Produces exactly `server.snapshots()` — every VM in boot order, all
/// stamped at the sampling instant — so a node manager using it is
/// byte-identical to the historical direct-read path.
#[derive(Debug, Clone, Default)]
pub struct SimSource {
    seq: u64,
}

impl SimSource {
    /// Creates the source with its sequence counter at zero.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CounterSource for SimSource {
    fn collect_into(&mut self, now: SimTime, server: &PhysicalServer, out: &mut Vec<Sample>) {
        for (vm, snapshot) in server.snapshots() {
            out.push(Sample { time: now, vm, seq: self.seq, snapshot });
            self.seq += 1;
        }
    }

    fn name(&self) -> &'static str {
        "sim"
    }

    fn is_sim(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxed_source_clones() {
        let src: Box<dyn CounterSource> = Box::new(SimSource::new());
        let dup = src.clone();
        assert_eq!(dup.name(), "sim");
        assert!(dup.is_sim());
    }
}
