//! Dolly: proactive cloning of small jobs.
//!
//! Dolly "avoids waiting and speculation altogether" by launching multiple
//! clones of a job at submission and using the result of the first clone
//! that finishes. The paper evaluates the *job-level* cloning variant
//! (task-level cloning needs intrusive framework changes) with 2, 4 and 6
//! clones, and only for small jobs — cloning a 500-task job would be
//! ruinous; Dolly's own analysis targets the ≤10-task interactive jobs that
//! dominate production traces.

use perfcloud_frameworks::scheduler::FrameworkScheduler;
use perfcloud_frameworks::{JobId, JobSpec};
use perfcloud_sim::SimTime;

/// Job-level cloning configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dolly {
    /// Number of clones per eligible job (the paper's Dolly-2/4/6).
    pub clones: usize,
    /// Jobs with at most this many tasks per stage are cloned.
    pub small_job_threshold: usize,
}

impl Dolly {
    /// Dolly-k with the ≤10-task eligibility rule.
    pub fn new(clones: usize) -> Self {
        assert!(clones >= 2, "Dolly needs at least 2 clones, got {clones}");
        Dolly { clones, small_job_threshold: 10 }
    }

    /// How many copies of `spec` to submit.
    pub fn clones_for(&self, spec: &JobSpec) -> usize {
        if spec.max_tasks_per_stage() <= self.small_job_threshold {
            self.clones
        } else {
            1
        }
    }

    /// Submits `spec` through the cloning rule; returns the member job ids.
    pub fn submit(
        &self,
        scheduler: &mut FrameworkScheduler,
        spec: JobSpec,
        now: SimTime,
    ) -> Vec<JobId> {
        let n = self.clones_for(&spec);
        scheduler.submit_cloned(spec, n, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfcloud_frameworks::job::StageSpec;
    use perfcloud_frameworks::task::{Phase, TaskSpec};
    use perfcloud_frameworks::Worker;
    use perfcloud_host::{PhysicalServer, ServerConfig, ServerId, VmConfig, VmId};
    use perfcloud_sim::RngFactory;

    fn job(tasks: usize) -> JobSpec {
        JobSpec {
            name: format!("j{tasks}"),
            stages: vec![StageSpec {
                tasks: (0..tasks)
                    .map(|i| TaskSpec::new(format!("t{i}"), vec![Phase::compute(1e8)]))
                    .collect(),
            }],
        }
    }

    #[test]
    fn small_jobs_are_cloned_large_are_not() {
        let d = Dolly::new(4);
        assert_eq!(d.clones_for(&job(5)), 4);
        assert_eq!(d.clones_for(&job(10)), 4);
        assert_eq!(d.clones_for(&job(11)), 1);
        assert_eq!(d.clones_for(&job(50)), 1);
    }

    #[test]
    fn submit_creates_the_right_number_of_jobs() {
        let mut server = PhysicalServer::new(
            ServerId(0),
            ServerConfig::default(),
            RngFactory::new(1),
            perfcloud_sim::SimDuration::from_millis(100),
        );
        server.add_vm(VmId(0), VmConfig::high_priority());
        let mut sched =
            FrameworkScheduler::new(vec![Worker { server_idx: 0, vm: VmId(0), slots: 8 }]);
        let d = Dolly::new(3);
        let small = d.submit(&mut sched, job(4), SimTime::ZERO);
        assert_eq!(small.len(), 3);
        let large = d.submit(&mut sched, job(40), SimTime::ZERO);
        assert_eq!(large.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_clone_rejected() {
        let _ = Dolly::new(1);
    }
}
