//! Static resource capping: the fixed-policy comparison point of Fig. 9.
//!
//! The paper's static policy "applies 20% I/O cap on the VM running fio
//! random read benchmark, and 20% CPU cap on the VM running STREAM
//! benchmark". It isolates the victim about as well as PerfCloud but keeps
//! the antagonists pinned down even when they are harmless — the cost
//! PerfCloud's dynamic control avoids.

use perfcloud_host::throttle::{CpuCap, IoThrottle};
use perfcloud_host::{PhysicalServer, VmId};

/// One static cap assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StaticCap {
    /// Cap a VM's I/O at a fraction of the given reference rates.
    Io {
        /// Target VM.
        vm: VmId,
        /// Cap as a fraction of the reference (0.2 = the paper's 20%).
        fraction: f64,
        /// Reference ops/s (the VM's solo throughput).
        ref_iops: f64,
        /// Reference bytes/s.
        ref_bps: f64,
    },
    /// Cap a VM's CPU at a fraction of the given reference cores.
    Cpu {
        /// Target VM.
        vm: VmId,
        /// Cap fraction.
        fraction: f64,
        /// Reference cores (the VM's solo usage).
        ref_cores: f64,
    },
}

/// A set of static caps applied once at experiment start.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StaticCapping {
    caps: Vec<StaticCap>,
}

impl StaticCapping {
    /// No caps.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an I/O cap (fraction of the reference rates).
    pub fn cap_io(mut self, vm: VmId, fraction: f64, ref_iops: f64, ref_bps: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "cap fraction must be in [0,1]");
        self.caps.push(StaticCap::Io { vm, fraction, ref_iops, ref_bps });
        self
    }

    /// Adds a CPU cap (fraction of the reference cores).
    pub fn cap_cpu(mut self, vm: VmId, fraction: f64, ref_cores: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "cap fraction must be in [0,1]");
        self.caps.push(StaticCap::Cpu { vm, fraction, ref_cores });
        self
    }

    /// The configured caps.
    pub fn caps(&self) -> &[StaticCap] {
        &self.caps
    }

    /// Applies every cap whose VM is hosted on `server`.
    pub fn apply(&self, server: &mut PhysicalServer) {
        for cap in &self.caps {
            match *cap {
                StaticCap::Io { vm, fraction, ref_iops, ref_bps } => {
                    if server.hosts(vm) {
                        server.set_io_throttle(
                            vm,
                            IoThrottle {
                                iops: Some(fraction * ref_iops),
                                bps: Some(fraction * ref_bps),
                            },
                        );
                    }
                }
                StaticCap::Cpu { vm, fraction, ref_cores } => {
                    if server.hosts(vm) {
                        server.set_cpu_cap(vm, CpuCap { cores: Some(fraction * ref_cores) });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfcloud_host::{ServerConfig, ServerId, VmConfig};
    use perfcloud_sim::{RngFactory, SimDuration};

    fn server() -> PhysicalServer {
        let mut s = PhysicalServer::new(
            ServerId(0),
            ServerConfig::default(),
            RngFactory::new(1),
            SimDuration::from_millis(100),
        );
        s.add_vm(VmId(0), VmConfig::low_priority());
        s.add_vm(VmId(1), VmConfig::low_priority());
        s
    }

    #[test]
    fn applies_paper_20_percent_caps() {
        let mut s = server();
        let policy =
            StaticCapping::new().cap_io(VmId(0), 0.2, 4000.0, 16.0e6).cap_cpu(VmId(1), 0.2, 2.0);
        policy.apply(&mut s);
        let t = s.io_throttle(VmId(0)).unwrap();
        assert_eq!(t.iops, Some(800.0));
        assert_eq!(t.bps, Some(3.2e6));
        let c = s.cpu_cap(VmId(1)).unwrap();
        assert_eq!(c.cores, Some(0.4));
    }

    #[test]
    fn skips_vms_not_hosted_here() {
        let mut s = server();
        let policy = StaticCapping::new().cap_io(VmId(99), 0.2, 1000.0, 1e6);
        policy.apply(&mut s);
        assert!(!s.io_throttle(VmId(0)).unwrap().is_throttled());
    }

    #[test]
    fn empty_policy_is_noop() {
        let mut s = server();
        StaticCapping::new().apply(&mut s);
        assert!(!s.io_throttle(VmId(0)).unwrap().is_throttled());
        assert!(!s.cpu_cap(VmId(1)).unwrap().is_capped());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn out_of_range_fraction_rejected() {
        let _ = StaticCapping::new().cap_io(VmId(0), 1.5, 100.0, 100.0);
    }
}
