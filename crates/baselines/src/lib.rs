//! Baseline mitigation techniques PerfCloud is evaluated against.
//!
//! * [`LatePolicy`] — the LATE scheduler (Zaharia et al., OSDI'08):
//!   speculative execution that ranks stragglers by *estimated time to
//!   finish* and re-launches a bounded number of copies.
//! * [`Dolly`] — proactive job-level cloning (Ananthanarayanan et al.,
//!   NSDI'13): small jobs are submitted as k identical clones, the first
//!   finisher wins, the rest are killed. Effective but wasteful — its
//!   resource-utilization efficiency falls as k grows (paper Fig. 11c).
//! * [`StaticCapping`] — the fixed-cap policy of the paper's Fig. 9
//!   comparison: a 20% I/O cap on the fio VM and a 20% CPU cap on the
//!   STREAM VM, applied unconditionally.
//!
//! The *default* baseline (no mitigation) is simply
//! [`perfcloud_frameworks::NoSpeculation`] with no resource control.

pub mod dolly;
pub mod late;
pub mod static_cap;

pub use dolly::Dolly;
pub use late::LatePolicy;
pub use static_cap::StaticCapping;
