//! The LATE scheduler (Longest Approximate Time to End).
//!
//! LATE improves on naive speculative execution with three rules, all
//! implemented here against the [`SpeculationPolicy`] hook:
//!
//! 1. rank candidate stragglers by **estimated time to finish**
//!    `(1 − progress) / progress_rate` and speculate the longest first;
//! 2. only speculate tasks that are actually *slow* — progress rate below
//!    the `slow_task_threshold` percentile of currently running tasks;
//! 3. bound concurrent speculative copies by a **speculative cap** fraction
//!    of the cluster's slots.
//!
//! Defaults follow the LATE paper: 25th-percentile slow-task threshold and a
//! 10% speculative cap. The wait-and-observe delay (`min_elapsed`) is the
//! inherent cost the PerfCloud paper criticizes: "a task is allowed to run
//! for a significant amount of time before it can be identified as a
//! straggler".

use perfcloud_frameworks::scheduler::{SchedulerView, SpeculationPolicy};
use perfcloud_frameworks::TaskId;
use perfcloud_stats::quantile;

/// The LATE speculative scheduler.
#[derive(Debug, Clone)]
pub struct LatePolicy {
    /// Max fraction of total slots usable by speculative copies.
    pub speculative_cap: f64,
    /// Percentile (0–1) of progress rate below which a task is "slow".
    pub slow_task_threshold: f64,
    /// Seconds a task must have run before it can be speculated.
    pub min_elapsed: f64,
}

impl Default for LatePolicy {
    fn default() -> Self {
        LatePolicy { speculative_cap: 0.10, slow_task_threshold: 0.25, min_elapsed: 10.0 }
    }
}

impl LatePolicy {
    /// Creates a policy with explicit parameters.
    pub fn new(speculative_cap: f64, slow_task_threshold: f64, min_elapsed: f64) -> Self {
        assert!((0.0..=1.0).contains(&speculative_cap));
        assert!((0.0..=1.0).contains(&slow_task_threshold));
        assert!(min_elapsed >= 0.0);
        LatePolicy { speculative_cap, slow_task_threshold, min_elapsed }
    }
}

impl SpeculationPolicy for LatePolicy {
    fn name(&self) -> &'static str {
        "late"
    }

    fn plan(&mut self, view: &SchedulerView) -> Vec<TaskId> {
        // Speculative budget: cap minus already-running copies.
        let cap = ((self.speculative_cap * view.total_slots as f64).floor() as usize).max(1);
        let speculating = view.running.iter().filter(|t| t.attempts >= 2).count();
        let budget = cap.saturating_sub(speculating).min(view.free_slots);
        if budget == 0 {
            return Vec::new();
        }
        // Slow-task threshold over the progress rates of singly-attempted,
        // old-enough tasks.
        let rates: Vec<f64> = view
            .running
            .iter()
            .filter(|t| t.elapsed >= self.min_elapsed)
            .map(|t| t.progress_rate())
            .collect();
        if rates.len() < 2 {
            return Vec::new();
        }
        let Some(threshold) = quantile(&rates, self.slow_task_threshold) else {
            return Vec::new();
        };
        let mut candidates: Vec<_> = view
            .running
            .iter()
            .filter(|t| {
                t.attempts == 1
                    && t.elapsed >= self.min_elapsed
                    && t.progress < 1.0
                    // Strictly below the percentile: a task matching the
                    // common-case rate is not a straggler.
                    && t.progress_rate() < threshold
            })
            .collect();
        // Longest estimated time to finish first.
        candidates.sort_by(|a, b| {
            b.estimated_time_left()
                .partial_cmp(&a.estimated_time_left())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.task.cmp(&b.task))
        });
        candidates.into_iter().take(budget).map(|t| t.task).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfcloud_frameworks::scheduler::RunningTaskView;
    use perfcloud_frameworks::JobId;
    use perfcloud_sim::SimTime;

    fn task(index: usize, progress: f64, elapsed: f64, attempts: usize) -> RunningTaskView {
        RunningTaskView {
            task: TaskId { job: JobId(0), stage: 0, index },
            progress,
            elapsed,
            attempts,
            nominal_seconds: 10.0,
        }
    }

    fn view(running: Vec<RunningTaskView>, free: usize, total: usize) -> SchedulerView {
        SchedulerView {
            now: SimTime::from_secs(100),
            running,
            free_slots: free,
            total_slots: total,
        }
    }

    #[test]
    fn speculates_the_slowest_task() {
        let mut late = LatePolicy::default();
        // 9 healthy tasks at rate 0.05/s, one straggler at 0.005/s.
        let mut running: Vec<_> = (0..9).map(|i| task(i, 0.5, 10.0, 1)).collect();
        running.push(task(9, 0.05, 10.0, 1));
        let picks = late.plan(&view(running, 4, 20));
        assert_eq!(picks.len(), 1, "10% of 20 slots = 2 budget, but only 1 is slow");
        assert_eq!(picks[0].index, 9);
    }

    #[test]
    fn respects_speculative_cap() {
        let mut late = LatePolicy::new(0.10, 0.9, 0.0);
        // Everything below the 90th percentile counts as slow; 20 tasks.
        let running: Vec<_> = (0..20).map(|i| task(i, 0.1 + 0.01 * i as f64, 10.0, 1)).collect();
        let picks = late.plan(&view(running, 20, 20));
        assert!(picks.len() <= 2, "cap = 10% of 20 slots = 2, got {}", picks.len());
    }

    #[test]
    fn counts_existing_speculation_against_cap() {
        let mut late = LatePolicy::new(0.10, 0.9, 0.0);
        let mut running: Vec<_> = (0..18).map(|i| task(i, 0.5, 10.0, 1)).collect();
        // Two tasks already have speculative copies.
        running.push(task(18, 0.1, 10.0, 2));
        running.push(task(19, 0.1, 10.0, 2));
        let picks = late.plan(&view(running, 20, 20));
        assert!(picks.is_empty(), "budget exhausted by running copies: {picks:?}");
    }

    #[test]
    fn waits_before_speculating() {
        let mut late = LatePolicy::default(); // min_elapsed = 10 s
        let running = vec![task(0, 0.01, 3.0, 1), task(1, 0.9, 3.0, 1)];
        assert!(late.plan(&view(running, 4, 20)).is_empty(), "tasks too young");
    }

    #[test]
    fn fast_tasks_are_not_speculated() {
        let mut late = LatePolicy::default();
        let running: Vec<_> = (0..10).map(|i| task(i, 0.5, 20.0, 1)).collect();
        // All equal rates: threshold = rate, every task "slow" — but ranking
        // by ETA is equal too; budget limits picks. The invariant we care
        // about: never speculate a task whose rate is above the threshold.
        let mut fast = running.clone();
        fast[0].progress = 0.99; // nearly done, highest rate
        let picks = late.plan(&view(fast, 4, 20));
        assert!(!picks.iter().any(|t| t.index == 0), "fastest task speculated");
    }

    #[test]
    fn no_speculation_with_no_free_slots() {
        let mut late = LatePolicy::new(0.5, 0.5, 0.0);
        let running = vec![task(0, 0.1, 10.0, 1), task(1, 0.9, 10.0, 1)];
        assert!(late.plan(&view(running, 0, 4)).is_empty());
    }

    #[test]
    fn zero_rate_task_has_infinite_eta_and_ranks_first() {
        let mut late = LatePolicy::new(0.5, 0.5, 0.0);
        let running = vec![
            task(0, 0.0, 10.0, 1), // stuck
            task(1, 0.2, 10.0, 1),
            task(2, 0.8, 10.0, 1),
        ];
        let picks = late.plan(&view(running, 1, 10));
        assert_eq!(picks.len(), 1);
        assert_eq!(picks[0].index, 0);
    }

    #[test]
    fn single_running_task_is_not_judged() {
        let mut late = LatePolicy::new(0.5, 0.5, 0.0);
        let running = vec![task(0, 0.1, 50.0, 1)];
        assert!(late.plan(&view(running, 4, 4)).is_empty(), "no peer group to compare against");
    }

    #[test]
    #[should_panic]
    fn invalid_cap_rejected() {
        let _ = LatePolicy::new(1.5, 0.25, 10.0);
    }
}
