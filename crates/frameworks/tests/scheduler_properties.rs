//! Property-based tests of the framework scheduler's invariants under
//! randomized job shapes.

use perfcloud_frameworks::job::{JobSpec, StageSpec};
use perfcloud_frameworks::scheduler::{FrameworkScheduler, NoSpeculation, Worker};
use perfcloud_frameworks::task::{Phase, TaskSpec};
use perfcloud_host::{PhysicalServer, ServerConfig, ServerId, VmConfig, VmId};
use perfcloud_sim::{RngFactory, SimDuration, SimTime};
use proptest::prelude::*;

const DT: SimDuration = SimDuration::from_micros(100_000);

fn testbed(workers: u32, slots: u32) -> (Vec<PhysicalServer>, Vec<Worker>) {
    let mut server =
        PhysicalServer::new(ServerId(0), ServerConfig::default(), RngFactory::new(19), DT);
    let mut ws = Vec::new();
    for i in 0..workers {
        server.add_vm(VmId(i), VmConfig::high_priority());
        ws.push(Worker { server_idx: 0, vm: VmId(i), slots });
    }
    (vec![server], ws)
}

fn job(name: &str, stages: &[u8]) -> JobSpec {
    JobSpec {
        name: name.into(),
        stages: stages
            .iter()
            .map(|&n| StageSpec {
                tasks: (0..n.max(1))
                    .map(|i| TaskSpec::new(format!("{name}-{i}"), vec![Phase::compute(2.0e8)]))
                    .collect(),
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any mix of jobs drains; every task completes exactly once; running
    /// attempts never exceed the slot supply; efficiency of non-speculative
    /// runs is 1.
    #[test]
    fn scheduler_drains_all_jobs(
        shapes in proptest::collection::vec(
            proptest::collection::vec(1u8..6, 1..4),
            1..5,
        ),
        workers in 2u32..6,
        slots in 1u32..3,
        clones in 1usize..4,
    ) {
        let (mut servers, ws) = testbed(workers, slots);
        let total_slots = (workers * slots) as usize;
        let mut sched = FrameworkScheduler::new(ws);
        let mut logical_jobs = 0;
        for (k, shape) in shapes.iter().enumerate() {
            let spec = job(&format!("j{k}"), shape);
            // Alternate plain and cloned submissions.
            if k % 2 == 0 {
                sched.submit(spec, SimTime::ZERO);
            } else {
                sched.submit_cloned(spec, clones, SimTime::ZERO);
            }
            logical_jobs += 1;
        }
        let mut now = SimTime::ZERO;
        let mut policy = NoSpeculation;
        sched.on_tick(now, &mut servers, &[], &mut policy);
        let mut ticks = 0;
        while !sched.is_idle() {
            now += DT;
            let mut fin = Vec::new();
            for (i, s) in servers.iter_mut().enumerate() {
                for f in s.tick(DT).finished {
                    fin.push((i, f));
                }
            }
            // Invariant: running attempts never exceed the slot supply.
            let running: usize =
                (0..workers).map(|i| servers[0].process_count(VmId(i))).sum();
            prop_assert!(running <= total_slots, "{running} attempts > {total_slots} slots");
            sched.on_tick(now, &mut servers, &fin, &mut policy);
            ticks += 1;
            prop_assert!(ticks < 40_000, "scheduler did not drain");
        }
        prop_assert_eq!(sched.outcomes().len(), logical_jobs);
        for o in sched.outcomes() {
            prop_assert!(o.jct > 0.0);
            prop_assert!(o.successful_task_secs <= o.total_task_secs + 1e-9);
            if o.clones == 1 {
                prop_assert!((o.efficiency() - 1.0).abs() < 1e-9,
                    "un-cloned, un-speculated jobs waste nothing");
            }
        }
    }
}
