//! Minimal HDFS model: fixed-size blocks placed across datanode VMs.
//!
//! The paper sets the HDFS block size to its default 64 MB; map-task counts
//! in the MapReduce model equal the number of input blocks, and each map
//! task's read size is its block's size, so file layout feeds directly into
//! job shape.

use perfcloud_host::VmId;
use std::collections::HashMap;

/// Identifier of a stored block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// Default HDFS block size (64 MB), as in the paper.
pub const DEFAULT_BLOCK_SIZE: u64 = 64 << 20;

/// Default replication factor.
pub const DEFAULT_REPLICATION: usize = 3;

/// A stored block: size and replica locations.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockInfo {
    /// Bytes in this block (the final block of a file may be short).
    pub size: u64,
    /// Datanode VMs holding replicas (distinct).
    pub replicas: Vec<VmId>,
}

/// The namenode's view: datanodes and the block map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HdfsCluster {
    block_size: u64,
    replication: usize,
    datanodes: Vec<VmId>,
    blocks: HashMap<BlockId, BlockInfo>,
    next_block: u64,
    next_placement: usize,
}

impl HdfsCluster {
    /// Creates a cluster with the paper's defaults (64 MB blocks, 3-way
    /// replication) over the given datanodes.
    pub fn new(datanodes: Vec<VmId>) -> Self {
        Self::with_config(datanodes, DEFAULT_BLOCK_SIZE, DEFAULT_REPLICATION)
    }

    /// Creates a cluster with custom block size and replication.
    pub fn with_config(datanodes: Vec<VmId>, block_size: u64, replication: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        assert!(replication >= 1, "replication must be at least 1");
        assert!(!datanodes.is_empty(), "need at least one datanode");
        HdfsCluster {
            block_size,
            replication: replication.min(datanodes.len()),
            datanodes,
            blocks: HashMap::new(),
            next_block: 0,
            next_placement: 0,
        }
    }

    /// Configured block size.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Effective replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Datanode VMs.
    pub fn datanodes(&self) -> &[VmId] {
        &self.datanodes
    }

    /// Writes a file of `bytes`, splitting into blocks placed round-robin.
    /// Returns the block ids in file order.
    pub fn write_file(&mut self, bytes: u64) -> Vec<BlockId> {
        assert!(bytes > 0, "empty files are not modelled");
        let full = bytes / self.block_size;
        let tail = bytes % self.block_size;
        let nblocks = full + u64::from(tail > 0);
        let mut ids = Vec::with_capacity(nblocks as usize);
        for i in 0..nblocks {
            let size = if i == nblocks - 1 && tail > 0 { tail } else { self.block_size };
            let id = BlockId(self.next_block);
            self.next_block += 1;
            let mut replicas = Vec::with_capacity(self.replication);
            for r in 0..self.replication {
                let node = self.datanodes[(self.next_placement + r) % self.datanodes.len()];
                replicas.push(node);
            }
            self.next_placement = (self.next_placement + 1) % self.datanodes.len();
            self.blocks.insert(id, BlockInfo { size, replicas });
            ids.push(id);
        }
        ids
    }

    /// Looks up a stored block.
    pub fn block(&self, id: BlockId) -> Option<&BlockInfo> {
        self.blocks.get(&id)
    }

    /// Number of stored blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of blocks a file of `bytes` would occupy.
    pub fn blocks_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.block_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<VmId> {
        (0..n).map(VmId).collect()
    }

    #[test]
    fn file_splits_into_blocks_with_short_tail() {
        let mut h = HdfsCluster::new(nodes(6));
        let ids = h.write_file(150 << 20); // 150 MB -> 64 + 64 + 22
        assert_eq!(ids.len(), 3);
        assert_eq!(h.block(ids[0]).unwrap().size, 64 << 20);
        assert_eq!(h.block(ids[1]).unwrap().size, 64 << 20);
        assert_eq!(h.block(ids[2]).unwrap().size, 22 << 20);
        assert_eq!(h.block_count(), 3);
    }

    #[test]
    fn exact_multiple_has_no_tail() {
        let mut h = HdfsCluster::new(nodes(3));
        let ids = h.write_file(128 << 20);
        assert_eq!(ids.len(), 2);
        assert!(ids.iter().all(|&b| h.block(b).unwrap().size == 64 << 20));
    }

    #[test]
    fn replicas_are_distinct_nodes() {
        let mut h = HdfsCluster::new(nodes(6));
        for &b in &h.write_file(1 << 30) {
            let info = h.block(b).unwrap();
            assert_eq!(info.replicas.len(), 3);
            let mut dedup = info.replicas.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "replicas must be on distinct nodes");
        }
    }

    #[test]
    fn replication_clamped_to_cluster_size() {
        let h = HdfsCluster::with_config(nodes(2), 64 << 20, 3);
        assert_eq!(h.replication(), 2);
    }

    #[test]
    fn placement_spreads_round_robin() {
        let mut h = HdfsCluster::with_config(nodes(4), 64 << 20, 1);
        let ids = h.write_file(4 * (64 << 20));
        let homes: Vec<VmId> = ids.iter().map(|&b| h.block(b).unwrap().replicas[0]).collect();
        assert_eq!(homes, nodes(4), "single-replica blocks should round-robin");
    }

    #[test]
    fn blocks_for_rounds_up() {
        let h = HdfsCluster::new(nodes(3));
        assert_eq!(h.blocks_for(1), 1);
        assert_eq!(h.blocks_for(64 << 20), 1);
        assert_eq!(h.blocks_for((64 << 20) + 1), 2);
    }

    #[test]
    #[should_panic(expected = "datanode")]
    fn empty_cluster_rejected() {
        let _ = HdfsCluster::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "empty files")]
    fn empty_file_rejected() {
        let mut h = HdfsCluster::new(nodes(3));
        let _ = h.write_file(0);
    }
}
