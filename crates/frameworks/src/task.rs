//! Tasks as multi-phase processes.
//!
//! A task runs its phases in order; each phase carries an instruction budget
//! and an I/O budget plus the memory attributes of that phase's code. A phase
//! ends when *both* budgets are exhausted — a map task's read phase finishes
//! when the block is read, its compute phase when the records are processed,
//! and so on. Contention slows whichever budget is bottlenecked, which is
//! exactly how real tasks straggle.

use perfcloud_host::{Achieved, IoPattern, Process, ResourceDemand};
use perfcloud_sim::SimDuration;

/// One phase of a task.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Instructions to retire in this phase.
    pub instructions: f64,
    /// Block I/O bytes to move in this phase.
    pub io_bytes: f64,
    /// Block I/O operations to perform (ops and bytes drain proportionally).
    pub io_ops: f64,
    /// Access pattern of this phase's I/O.
    pub io_pattern: IoPattern,
    /// Outstanding-request depth of this phase's I/O streams.
    pub io_queue_depth: f64,
    /// Degree of parallelism of this phase (task slots are single-threaded
    /// in Hadoop/Spark, so usually 1).
    pub parallelism: f64,
    /// LLC references per instruction.
    pub mem_refs_per_instr: f64,
    /// Hot working set during the phase, bytes.
    pub working_set: f64,
    /// Cache reuse in [0, 1].
    pub cache_reuse: f64,
    /// Base CPI of the phase's instruction mix.
    pub base_cpi: f64,
    /// Rate limits: how fast the task *could* consume resources with zero
    /// contention (closed-loop bounds). Instructions per second:
    pub max_instr_rate: f64,
    /// Max I/O bytes per second the phase can request.
    pub max_io_rate: f64,
}

impl Phase {
    /// A pure-compute phase.
    pub fn compute(instructions: f64) -> Self {
        Phase {
            instructions,
            io_bytes: 0.0,
            io_ops: 0.0,
            io_pattern: IoPattern::Random,
            io_queue_depth: 32.0,
            parallelism: 1.0,
            mem_refs_per_instr: 0.01,
            working_set: 8.0e6,
            cache_reuse: 0.9,
            base_cpi: 1.0,
            max_instr_rate: 2.3e9,
            max_io_rate: 0.0,
        }
    }

    /// A pure-I/O phase moving `bytes` with the given pattern.
    pub fn io(bytes: f64, pattern: IoPattern) -> Self {
        let op_size: f64 = match pattern {
            // Shuffle fetches are sizeable merged transfers, not tiny
            // point reads.
            IoPattern::Random => 256.0 * 1024.0,
            IoPattern::Sequential => 4.0e6,
        };
        Phase {
            instructions: bytes * 0.5, // per-byte handling cost
            io_bytes: bytes,
            io_ops: bytes / op_size,
            io_pattern: pattern,
            // Buffered guest streams with readahead: a moderate queue.
            io_queue_depth: 48.0,
            parallelism: 1.0,
            mem_refs_per_instr: 0.005,
            working_set: 4.0e6,
            cache_reuse: 0.6,
            base_cpi: 1.2,
            max_instr_rate: 2.3e9,
            // Per-stream guest I/O rate: a virtio disk stream moves tens of
            // MB/s, not the device's full bandwidth.
            max_io_rate: 30.0e6,
        }
    }

    fn is_empty(&self) -> bool {
        self.instructions <= 0.0 && self.io_bytes <= 0.0
    }

    /// Total abstract work for progress reporting: seconds of uncontended
    /// execution this phase represents.
    fn nominal_seconds(&self) -> f64 {
        let cpu =
            if self.max_instr_rate > 0.0 { self.instructions / self.max_instr_rate } else { 0.0 };
        let io = if self.max_io_rate > 0.0 { self.io_bytes / self.max_io_rate } else { 0.0 };
        cpu + io
    }
}

/// The specification of a task: its label and phases.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Label carried into server traces, e.g. `"terasort-map"`.
    pub label: String,
    /// Phases in execution order.
    pub phases: Vec<Phase>,
}

impl TaskSpec {
    /// Creates a spec; empty phases are dropped. Panics if nothing remains.
    pub fn new(label: impl Into<String>, phases: Vec<Phase>) -> Self {
        let phases: Vec<Phase> = phases.into_iter().filter(|p| !p.is_empty()).collect();
        assert!(!phases.is_empty(), "task must have at least one non-empty phase");
        TaskSpec { label: label.into(), phases }
    }

    /// Uncontended runtime estimate, seconds.
    pub fn nominal_seconds(&self) -> f64 {
        self.phases.iter().map(Phase::nominal_seconds).sum()
    }
}

/// Execution state of a task attempt: a [`Process`] the server can host.
#[derive(Debug, Clone)]
pub struct TaskProcess {
    spec: TaskSpec,
    phase: usize,
    instr_left: f64,
    io_left: f64,
    nominal_total: f64,
    nominal_done_prior: f64,
}

impl TaskProcess {
    /// Instantiates an attempt of `spec`.
    pub fn new(spec: TaskSpec) -> Self {
        let nominal_total = spec.nominal_seconds().max(1e-12);
        let p0 = spec.phases[0].clone();
        TaskProcess {
            instr_left: p0.instructions,
            io_left: p0.io_bytes,
            spec,
            phase: 0,
            nominal_total,
            nominal_done_prior: 0.0,
        }
    }

    fn current(&self) -> &Phase {
        &self.spec.phases[self.phase]
    }

    fn advance_phase_if_complete(&mut self) {
        while self.phase < self.spec.phases.len() && self.instr_left <= 1e-9 && self.io_left <= 1e-9
        {
            self.nominal_done_prior += self.current().nominal_seconds();
            self.phase += 1;
            if self.phase < self.spec.phases.len() {
                let p = self.spec.phases[self.phase].clone();
                self.instr_left = p.instructions;
                self.io_left = p.io_bytes;
            }
        }
    }
}

impl Process for TaskProcess {
    fn demand(&self, dt: SimDuration) -> ResourceDemand {
        if self.is_done() {
            return ResourceDemand::idle();
        }
        let dt_s = dt.as_secs_f64();
        let p = self.current();
        let want_instr = (p.max_instr_rate * p.parallelism * dt_s).min(self.instr_left);
        let want_bytes = (p.max_io_rate * dt_s).min(self.io_left);
        let ops_per_byte = if p.io_bytes > 0.0 { p.io_ops / p.io_bytes } else { 0.0 };
        ResourceDemand {
            cpu_parallelism: if want_instr > 0.0 { p.parallelism } else { 0.0 },
            cpu_instructions: want_instr,
            io_ops: want_bytes * ops_per_byte,
            io_bytes: want_bytes,
            io_pattern: p.io_pattern,
            io_queue_depth: p.io_queue_depth,
            mem_refs_per_instr: p.mem_refs_per_instr,
            working_set: p.working_set,
            cache_reuse: p.cache_reuse,
            base_cpi: p.base_cpi,
        }
    }

    fn advance(&mut self, achieved: &Achieved, _dt: SimDuration) {
        if self.is_done() {
            return;
        }
        self.instr_left = (self.instr_left - achieved.instructions).max(0.0);
        self.io_left = (self.io_left - achieved.io_bytes).max(0.0);
        self.advance_phase_if_complete();
    }

    fn is_done(&self) -> bool {
        self.phase >= self.spec.phases.len()
    }

    fn progress(&self) -> f64 {
        if self.is_done() {
            return 1.0;
        }
        let p = self.current();
        let phase_total = p.nominal_seconds().max(1e-12);
        let instr_frac =
            if p.instructions > 0.0 { 1.0 - self.instr_left / p.instructions } else { 1.0 };
        let io_frac = if p.io_bytes > 0.0 { 1.0 - self.io_left / p.io_bytes } else { 1.0 };
        // Weight sub-progress by each budget's share of the phase's time.
        let cpu_w = if p.max_instr_rate > 0.0 { p.instructions / p.max_instr_rate } else { 0.0 };
        let io_w = if p.max_io_rate > 0.0 { p.io_bytes / p.max_io_rate } else { 0.0 };
        let phase_frac = if cpu_w + io_w > 0.0 {
            (instr_frac * cpu_w + io_frac * io_w) / (cpu_w + io_w)
        } else {
            0.0
        };
        ((self.nominal_done_prior + phase_frac * phase_total) / self.nominal_total).clamp(0.0, 1.0)
    }

    fn label(&self) -> &str {
        &self.spec.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration::from_micros(100_000);

    fn run_to_completion(mut t: TaskProcess, instr_rate: f64, io_rate: f64) -> usize {
        let mut ticks = 0;
        while !t.is_done() {
            let d = t.demand(DT);
            let a = Achieved {
                instructions: d.cpu_instructions.min(instr_rate * 0.1),
                io_bytes: d.io_bytes.min(io_rate * 0.1),
                io_ops: d.io_ops,
                ..Default::default()
            };
            t.advance(&a, DT);
            ticks += 1;
            assert!(ticks < 100_000, "task did not terminate");
        }
        ticks
    }

    #[test]
    fn phases_run_in_order() {
        let spec =
            TaskSpec::new("t", vec![Phase::io(1e6, IoPattern::Sequential), Phase::compute(1e6)]);
        let mut t = TaskProcess::new(spec);
        // Initially the task demands I/O.
        let d = t.demand(DT);
        assert!(d.io_bytes > 0.0);
        // Complete phase 1 budgets.
        t.advance(&Achieved { io_bytes: 1e6, instructions: 5e5, ..Default::default() }, DT);
        let d = t.demand(DT);
        assert_eq!(d.io_bytes, 0.0, "now in compute phase");
        assert!(d.cpu_instructions > 0.0);
    }

    #[test]
    fn completes_and_reports_done() {
        let spec = TaskSpec::new("t", vec![Phase::compute(1e9)]);
        let ticks = run_to_completion(TaskProcess::new(spec), 2.3e9, 0.0);
        // 1e9 instructions at 2.3e9/s ≈ 0.43 s ≈ 5 ticks.
        assert!((4..=6).contains(&ticks), "{ticks}");
    }

    #[test]
    fn progress_is_monotone_and_reaches_one() {
        let spec =
            TaskSpec::new("t", vec![Phase::io(12.0e6, IoPattern::Sequential), Phase::compute(1e9)]);
        let mut t = TaskProcess::new(spec);
        let mut last = t.progress();
        assert!(last < 0.01);
        while !t.is_done() {
            let d = t.demand(DT);
            let a = Achieved {
                instructions: d.cpu_instructions * 0.8,
                io_bytes: d.io_bytes * 0.8,
                ..Default::default()
            };
            t.advance(&a, DT);
            let p = t.progress();
            assert!(p >= last - 1e-9, "progress regressed: {last} -> {p}");
            last = p;
        }
        assert_eq!(t.progress(), 1.0);
    }

    #[test]
    fn starved_task_makes_no_progress() {
        let spec = TaskSpec::new("t", vec![Phase::compute(1e9)]);
        let mut t = TaskProcess::new(spec);
        let p0 = t.progress();
        for _ in 0..10 {
            t.advance(&Achieved::default(), DT);
        }
        assert_eq!(t.progress(), p0);
        assert!(!t.is_done());
    }

    #[test]
    fn slower_io_rate_stretches_runtime() {
        let spec = TaskSpec::new("t", vec![Phase::io(50.0e6, IoPattern::Sequential)]);
        let fast = run_to_completion(TaskProcess::new(spec.clone()), 2.3e9, 30.0e6);
        let slow = run_to_completion(TaskProcess::new(spec), 2.3e9, 3.0e6);
        assert!(slow > 5 * fast, "fast {fast} slow {slow}");
    }

    #[test]
    fn demand_respects_rate_limits() {
        let spec = TaskSpec::new("t", vec![Phase::io(1e12, IoPattern::Sequential)]);
        let t = TaskProcess::new(spec);
        let d = t.demand(DT);
        assert!(d.io_bytes <= 30.0e6 * 0.1 + 1.0);
    }

    #[test]
    fn nominal_seconds_sums_phases() {
        let spec = TaskSpec::new(
            "t",
            vec![Phase::compute(2.3e9), Phase::io(30.0e6, IoPattern::Sequential)],
        );
        // 1 s compute + 1 s I/O (plus the I/O phase's small instruction cost).
        let s = spec.nominal_seconds();
        assert!((2.0..2.2).contains(&s), "{s}");
    }

    #[test]
    #[should_panic(expected = "non-empty phase")]
    fn all_empty_phases_rejected() {
        let _ = TaskSpec::new("t", vec![]);
    }

    #[test]
    fn done_task_demands_nothing() {
        let spec = TaskSpec::new("t", vec![Phase::compute(1.0)]);
        let mut t = TaskProcess::new(spec);
        t.advance(&Achieved { instructions: 1.0, ..Default::default() }, DT);
        assert!(t.is_done());
        assert!(t.demand(DT).is_idle());
    }
}
