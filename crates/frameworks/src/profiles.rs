//! Benchmark profiles: PUMA MapReduce and SparkBench resource mixes.
//!
//! Each benchmark is characterized by the resource mix of its tasks —
//! instructions per input byte, shuffle/output volume, memory intensity and
//! cache reuse. The mixes are chosen so the *relative* sensitivities match
//! the paper's motivation experiments: terasort is the most disk-bound (worst
//! hit by fio, Fig. 1), wordcount the most CPU-bound, and the Spark
//! benchmarks reuse in-memory intermediate data, making them the most
//! sensitive to LLC/memory-bandwidth contention (Fig. 2) while their I/O
//! sensitivity is concentrated in the load stage (Fig. 1's ~44% for LR vs
//! ~72% for terasort).

use crate::hdfs::DEFAULT_BLOCK_SIZE;
use crate::job::{JobSpec, StageSpec};
use crate::task::{Phase, TaskSpec};
use perfcloud_host::IoPattern;

/// The six benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// PUMA terasort — I/O bound sort over TeraGen data.
    Terasort,
    /// PUMA wordcount — CPU-bound tokenization of Wikipedia text.
    Wordcount,
    /// PUMA inverted-index — mixed CPU/shuffle document indexing.
    InvertedIndex,
    /// SparkBench page-rank — iterative, shuffle- and memory-heavy.
    PageRank,
    /// SparkBench logistic regression — iterative, memory/compute heavy.
    LogisticRegression,
    /// SparkBench SVM — iterative, memory/compute heavy.
    Svm,
}

impl Benchmark {
    /// All six benchmarks in paper order.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::Terasort,
        Benchmark::Wordcount,
        Benchmark::InvertedIndex,
        Benchmark::PageRank,
        Benchmark::LogisticRegression,
        Benchmark::Svm,
    ];

    /// The three PUMA MapReduce benchmarks.
    pub const MAPREDUCE: [Benchmark; 3] =
        [Benchmark::Terasort, Benchmark::Wordcount, Benchmark::InvertedIndex];

    /// The three SparkBench benchmarks.
    pub const SPARK: [Benchmark; 3] =
        [Benchmark::PageRank, Benchmark::LogisticRegression, Benchmark::Svm];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Terasort => "terasort",
            Benchmark::Wordcount => "wordcount",
            Benchmark::InvertedIndex => "inverted-index",
            Benchmark::PageRank => "page-rank",
            Benchmark::LogisticRegression => "logistic-regression",
            Benchmark::Svm => "svm",
        }
    }

    /// True for the SparkBench members.
    pub fn is_spark(self) -> bool {
        matches!(self, Benchmark::PageRank | Benchmark::LogisticRegression | Benchmark::Svm)
    }

    /// Builds a job sized by task count, the paper's job-size knob ("jobs
    /// with fewer than ten tasks", "10 to 50 tasks", "40 tasks per stage").
    /// For MapReduce, `tasks` is the map count (reduces scale as ~40%); for
    /// Spark it is the tasks-per-stage width.
    pub fn job(self, tasks: usize) -> JobSpec {
        assert!(tasks >= 1, "job needs at least one task");
        if self.is_spark() {
            self.spark_job(tasks, 64.0e6)
        } else {
            let reduces = (tasks * 2 / 5).max(1);
            self.mapreduce_job(tasks as u64 * DEFAULT_BLOCK_SIZE, reduces)
        }
    }

    /// Builds a MapReduce job over `input_bytes` of HDFS data with the given
    /// reduce count. The map count is the number of 64 MB blocks.
    pub fn mapreduce_job(self, input_bytes: u64, reduces: usize) -> JobSpec {
        assert!(!self.is_spark(), "{} is a Spark benchmark", self.name());
        assert!(input_bytes > 0 && reduces >= 1);
        let p = self.mr_params();
        let nmaps = input_bytes.div_ceil(DEFAULT_BLOCK_SIZE).max(1);
        let mut maps = Vec::with_capacity(nmaps as usize);
        for i in 0..nmaps {
            let bytes = if i == nmaps - 1 {
                (input_bytes - i * DEFAULT_BLOCK_SIZE) as f64
            } else {
                DEFAULT_BLOCK_SIZE as f64
            };
            maps.push(self.mr_map_task(bytes, &p));
        }
        let shuffle_total = input_bytes as f64 * p.shuffle_ratio;
        let per_reduce = shuffle_total / reduces as f64;
        let reduces: Vec<TaskSpec> =
            (0..reduces).map(|_| self.mr_reduce_task(per_reduce, &p)).collect();
        JobSpec {
            name: format!("{}/{}m+{}r", self.name(), nmaps, reduces.len()),
            stages: vec![StageSpec { tasks: maps }, StageSpec { tasks: reduces }],
        }
    }

    /// Builds a Spark job with `tasks_per_stage` tasks and `bytes_per_task`
    /// of input per task in the load stage.
    pub fn spark_job(self, tasks_per_stage: usize, bytes_per_task: f64) -> JobSpec {
        assert!(self.is_spark(), "{} is a MapReduce benchmark", self.name());
        assert!(tasks_per_stage >= 1 && bytes_per_task > 0.0);
        let p = self.spark_params();
        let load: Vec<TaskSpec> =
            (0..tasks_per_stage).map(|_| self.spark_load_task(bytes_per_task)).collect();
        let mut stages = vec![StageSpec { tasks: load }];
        for it in 0..p.iterations {
            let tasks: Vec<TaskSpec> = (0..tasks_per_stage)
                .map(|_| self.spark_iter_task(bytes_per_task, it, &p))
                .collect();
            stages.push(StageSpec { tasks });
        }
        JobSpec {
            name: format!("{}/{}t x{}st", self.name(), tasks_per_stage, stages.len()),
            stages,
        }
    }

    fn mr_params(self) -> MrParams {
        match self {
            // terasort: sort is cheap per byte but moves every byte through
            // shuffle and output — the disk-bound extreme.
            Benchmark::Terasort => MrParams {
                instr_per_byte_map: 200.0,
                instr_per_byte_reduce: 150.0,
                shuffle_ratio: 1.0,
                output_ratio: 1.0,
                mem_refs_per_instr: 0.009,
                cache_reuse: 0.85,
            },
            // wordcount: heavy tokenization CPU, tiny aggregated output.
            Benchmark::Wordcount => MrParams {
                instr_per_byte_map: 800.0,
                instr_per_byte_reduce: 200.0,
                shuffle_ratio: 0.10,
                output_ratio: 0.02,
                mem_refs_per_instr: 0.010,
                cache_reuse: 0.9,
            },
            // inverted-index: in between.
            Benchmark::InvertedIndex => MrParams {
                instr_per_byte_map: 450.0,
                instr_per_byte_reduce: 180.0,
                shuffle_ratio: 0.35,
                output_ratio: 0.20,
                mem_refs_per_instr: 0.016,
                cache_reuse: 0.88,
            },
            _ => unreachable!("spark benchmark"),
        }
    }

    fn spark_params(self) -> SparkParams {
        match self {
            // page-rank: shuffle traffic every iteration on top of the
            // memory-resident rank vectors.
            Benchmark::PageRank => SparkParams {
                iterations: 5,
                instr_per_byte_iter: 250.0,
                shuffle_ratio_iter: 0.15,
                mem_refs_per_instr: 0.014,
                working_set: 4.0e6,
                cache_reuse: 0.96,
            },
            // logistic regression: gradient passes over cached partitions.
            Benchmark::LogisticRegression => SparkParams {
                iterations: 5,
                instr_per_byte_iter: 300.0,
                shuffle_ratio_iter: 0.05,
                mem_refs_per_instr: 0.016,
                working_set: 4.0e6,
                cache_reuse: 0.97,
            },
            // svm: like LR with slightly heavier math per pass.
            Benchmark::Svm => SparkParams {
                iterations: 4,
                instr_per_byte_iter: 350.0,
                shuffle_ratio_iter: 0.04,
                mem_refs_per_instr: 0.015,
                working_set: 4.0e6,
                cache_reuse: 0.97,
            },
            _ => unreachable!("mapreduce benchmark"),
        }
    }

    fn mr_map_task(self, bytes: f64, p: &MrParams) -> TaskSpec {
        let read = Phase {
            mem_refs_per_instr: p.mem_refs_per_instr,
            cache_reuse: p.cache_reuse,
            ..Phase::io(bytes, IoPattern::Sequential)
        };
        let compute = Phase {
            instructions: bytes * p.instr_per_byte_map,
            mem_refs_per_instr: p.mem_refs_per_instr,
            cache_reuse: p.cache_reuse,
            working_set: 6.0e6,
            ..Phase::compute(bytes * p.instr_per_byte_map)
        };
        let spill = Phase {
            mem_refs_per_instr: p.mem_refs_per_instr,
            cache_reuse: p.cache_reuse,
            ..Phase::io(bytes * p.shuffle_ratio, IoPattern::Sequential)
        };
        let phases = vec![read, compute, spill];
        TaskSpec::new(format!("{}-map", self.name()), phases)
    }

    fn mr_reduce_task(self, shuffle_bytes: f64, p: &MrParams) -> TaskSpec {
        let fetch = Phase {
            mem_refs_per_instr: p.mem_refs_per_instr,
            cache_reuse: p.cache_reuse,
            ..Phase::io(shuffle_bytes, IoPattern::Random)
        };
        let compute = Phase {
            working_set: 6.0e6,
            mem_refs_per_instr: p.mem_refs_per_instr,
            cache_reuse: p.cache_reuse,
            ..Phase::compute(shuffle_bytes * p.instr_per_byte_reduce)
        };
        let write = Phase {
            mem_refs_per_instr: p.mem_refs_per_instr,
            cache_reuse: p.cache_reuse,
            ..Phase::io(
                shuffle_bytes * p.output_ratio / p.shuffle_ratio.max(1e-9),
                IoPattern::Sequential,
            )
        };
        let phases = vec![fetch, compute, write];
        TaskSpec::new(format!("{}-reduce", self.name()), phases)
    }

    fn spark_load_task(self, bytes: f64) -> TaskSpec {
        let read = Phase::io(bytes, IoPattern::Sequential);
        let cache = Phase {
            working_set: 4.0e6,
            mem_refs_per_instr: 0.01,
            cache_reuse: 0.9,
            ..Phase::compute(bytes * 50.0)
        };
        TaskSpec::new(format!("{}-load", self.name()), vec![read, cache])
    }

    fn spark_iter_task(self, bytes: f64, _iter: usize, p: &SparkParams) -> TaskSpec {
        let mut phases = Vec::with_capacity(2);
        if p.shuffle_ratio_iter > 0.0 {
            phases.push(Phase {
                mem_refs_per_instr: p.mem_refs_per_instr,
                cache_reuse: p.cache_reuse,
                ..Phase::io(bytes * p.shuffle_ratio_iter, IoPattern::Random)
            });
        }
        phases.push(Phase {
            working_set: p.working_set,
            mem_refs_per_instr: p.mem_refs_per_instr,
            cache_reuse: p.cache_reuse,
            base_cpi: 0.9,
            ..Phase::compute(bytes * p.instr_per_byte_iter)
        });
        TaskSpec::new(format!("{}-iter", self.name()), phases)
    }
}

struct MrParams {
    instr_per_byte_map: f64,
    instr_per_byte_reduce: f64,
    shuffle_ratio: f64,
    output_ratio: f64,
    mem_refs_per_instr: f64,
    cache_reuse: f64,
}

struct SparkParams {
    iterations: usize,
    instr_per_byte_iter: f64,
    shuffle_ratio_iter: f64,
    mem_refs_per_instr: f64,
    working_set: f64,
    cache_reuse: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_families() {
        assert_eq!(Benchmark::ALL.len(), 6);
        for b in Benchmark::MAPREDUCE {
            assert!(!b.is_spark());
        }
        for b in Benchmark::SPARK {
            assert!(b.is_spark());
        }
        assert_eq!(Benchmark::Terasort.name(), "terasort");
        assert_eq!(Benchmark::LogisticRegression.name(), "logistic-regression");
    }

    #[test]
    fn mapreduce_job_shape() {
        let j = Benchmark::Terasort.mapreduce_job(10 * DEFAULT_BLOCK_SIZE, 10);
        assert_eq!(j.stages.len(), 2, "map + reduce");
        assert_eq!(j.stages[0].tasks.len(), 10, "one map per 64 MB block");
        assert_eq!(j.stages[1].tasks.len(), 10);
        assert_eq!(j.max_tasks_per_stage(), 10);
    }

    #[test]
    fn spark_job_shape() {
        let j = Benchmark::LogisticRegression.spark_job(40, 64.0e6);
        assert_eq!(j.stages.len(), 6, "load + 5 iterations");
        assert!(j.stages.iter().all(|s| s.tasks.len() == 40));
    }

    #[test]
    fn job_sizing_by_tasks() {
        let j = Benchmark::Wordcount.job(8);
        assert_eq!(j.stages[0].tasks.len(), 8);
        let j = Benchmark::Svm.job(10);
        assert_eq!(j.max_tasks_per_stage(), 10);
    }

    #[test]
    fn terasort_moves_more_io_than_wordcount() {
        let io_of = |b: Benchmark| {
            let j = b.job(10);
            j.stages
                .iter()
                .flat_map(|s| &s.tasks)
                .flat_map(|t| &t.phases)
                .map(|p| p.io_bytes)
                .sum::<f64>()
        };
        assert!(io_of(Benchmark::Terasort) > 3.0 * io_of(Benchmark::Wordcount));
    }

    #[test]
    fn wordcount_computes_more_than_terasort() {
        let instr_of = |b: Benchmark| {
            let j = b.job(10);
            j.stages
                .iter()
                .flat_map(|s| &s.tasks)
                .flat_map(|t| &t.phases)
                .map(|p| p.instructions)
                .sum::<f64>()
        };
        assert!(instr_of(Benchmark::Wordcount) > 2.0 * instr_of(Benchmark::Terasort));
    }

    #[test]
    fn spark_iterations_have_high_cache_reuse() {
        let j = Benchmark::LogisticRegression.spark_job(4, 64.0e6);
        let iter_task = &j.stages[2].tasks[0];
        let compute = iter_task.phases.last().unwrap();
        assert!(compute.cache_reuse > 0.9);
        assert!(compute.mem_refs_per_instr > 0.01);
    }

    #[test]
    fn pagerank_shuffles_each_iteration() {
        let j = Benchmark::PageRank.spark_job(4, 64.0e6);
        let iter_task = &j.stages[2].tasks[0];
        assert!(iter_task.phases.iter().any(|p| p.io_bytes > 0.0));
        // LR iterations are almost shuffle-free by comparison.
        let lr = Benchmark::LogisticRegression.spark_job(4, 64.0e6);
        let lr_io: f64 = lr.stages[2].tasks[0].phases.iter().map(|p| p.io_bytes).sum();
        let pr_io: f64 = iter_task.phases.iter().map(|p| p.io_bytes).sum();
        assert!(pr_io > 2.0 * lr_io);
    }

    #[test]
    fn short_tail_block_shrinks_last_map() {
        let j = Benchmark::Terasort.mapreduce_job(DEFAULT_BLOCK_SIZE + (DEFAULT_BLOCK_SIZE / 2), 2);
        assert_eq!(j.stages[0].tasks.len(), 2);
        let t0: f64 = j.stages[0].tasks[0].phases[0].io_bytes;
        let t1: f64 = j.stages[0].tasks[1].phases[0].io_bytes;
        assert!((t1 - t0 / 2.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "Spark benchmark")]
    fn spark_job_via_mapreduce_api_rejected() {
        let _ = Benchmark::PageRank.mapreduce_job(1 << 30, 4);
    }

    #[test]
    #[should_panic(expected = "MapReduce benchmark")]
    fn mapreduce_job_via_spark_api_rejected() {
        let _ = Benchmark::Terasort.spark_job(4, 1e6);
    }
}
