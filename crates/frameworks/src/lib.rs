//! Scale-out data-processing substrates.
//!
//! The paper evaluates PerfCloud on Hadoop MapReduce (PUMA suite) and Spark
//! (SparkBench). This crate implements the framework layer those benchmarks
//! run on, as it matters to the experiments:
//!
//! * [`hdfs`] — block storage: files are split into 64 MB blocks placed
//!   round-robin with replication across datanode VMs; map-task counts and
//!   input sizes derive from the placement.
//! * [`task`] — tasks as multi-phase [`perfcloud_host::Process`]es (read →
//!   compute → write). Task duration is *emergent* from contention on the
//!   simulated host, which is what creates stragglers.
//! * [`job`] — jobs as sequences of stages (MapReduce: map then reduce;
//!   Spark: a stage DAG linearized), with attempt tracking (speculative
//!   copies, clones, kills) and the paper's resource-utilization-efficiency
//!   accounting.
//! * [`profiles`] — the six benchmarks as resource-mix profiles: terasort,
//!   wordcount, inverted-index (MapReduce); page-rank, logistic regression,
//!   svm (Spark).
//! * [`scheduler`] — a slot-based JobTracker/Spark-master hybrid that
//!   launches attempts onto worker VMs, detects completions, supports
//!   first-attempt-wins with kill of losers, and exposes the hook
//!   ([`scheduler::SpeculationPolicy`]) that the LATE baseline plugs into.

pub mod hdfs;
pub mod job;
pub mod profiles;
pub mod scheduler;
pub mod task;

pub use hdfs::{BlockId, HdfsCluster};
pub use job::{AttemptId, JobId, JobOutcome, JobSpec, JobState, StageSpec, TaskId};
pub use profiles::Benchmark;
pub use scheduler::{FrameworkScheduler, NoSpeculation, SpeculationPolicy, Worker};
pub use task::{Phase, TaskProcess, TaskSpec};
