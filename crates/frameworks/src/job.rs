//! Jobs, stages, tasks and attempts.
//!
//! A job is a sequence of stages; a stage is a set of tasks that can run in
//! parallel; stage *n+1* starts when every task of stage *n* has completed.
//! MapReduce jobs have two stages (map, reduce); Spark jobs linearize their
//! stage DAG. A *task* may have several *attempts* (the original plus
//! speculative copies or clone-job siblings); the first attempt to finish
//! wins and the rest are killed — the accounting behind the paper's
//! resource-utilization-efficiency metric (Fig. 11c).

use crate::task::TaskSpec;
use perfcloud_host::{ProcessId, VmId};
use perfcloud_sim::SimTime;

/// Identifier of a job within one scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Identifier of a task within the scheduler: job, stage index, task index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId {
    /// Owning job.
    pub job: JobId,
    /// Stage index within the job.
    pub stage: usize,
    /// Task index within the stage.
    pub index: usize,
}

/// Identifier of a task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttemptId(pub u64);

/// One stage of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpec {
    /// The stage's tasks.
    pub tasks: Vec<TaskSpec>,
}

/// A job specification: name plus stages.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Human-readable name (benchmark + size), e.g. `"terasort/10m+10r"`.
    pub name: String,
    /// Stages in execution order.
    pub stages: Vec<StageSpec>,
}

impl JobSpec {
    /// Total number of tasks across stages.
    pub fn task_count(&self) -> usize {
        self.stages.iter().map(|s| s.tasks.len()).sum()
    }

    /// Largest stage width (the paper characterizes jobs by tasks-per-stage).
    pub fn max_tasks_per_stage(&self) -> usize {
        self.stages.iter().map(|s| s.tasks.len()).max().unwrap_or(0)
    }

    /// Uncontended runtime estimate of the critical path, seconds (the sum
    /// over stages of the longest task in each stage).
    pub fn nominal_critical_path(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.tasks.iter().map(TaskSpec::nominal_seconds).fold(0.0, f64::max))
            .sum()
    }
}

/// How an attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// Still executing.
    Running,
    /// Finished first and its result was used.
    Won,
    /// Finished but the result was discarded (a sibling won, or the clone
    /// group's winner was another job).
    Discarded,
    /// Killed before finishing.
    Killed,
}

/// One execution attempt of a task.
#[derive(Debug, Clone, PartialEq)]
pub struct Attempt {
    /// Attempt identifier.
    pub id: AttemptId,
    /// Index of the hosting server in the experiment's server list.
    pub server_idx: usize,
    /// Hosting VM.
    pub vm: VmId,
    /// Server-local process id of the attempt.
    pub pid: ProcessId,
    /// Launch time.
    pub started: SimTime,
    /// End time (completion or kill).
    pub ended: Option<SimTime>,
    /// How it ended.
    pub outcome: AttemptOutcome,
}

impl Attempt {
    /// Execution time so far (until `now` if still running).
    pub fn runtime(&self, now: SimTime) -> f64 {
        let end = self.ended.unwrap_or(now);
        end.saturating_since(self.started).as_secs_f64()
    }
}

/// Execution state of one task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskState {
    /// The task's specification.
    pub spec: TaskSpec,
    /// All attempts launched so far.
    pub attempts: Vec<Attempt>,
    /// Completion time (first attempt to finish).
    pub completed_at: Option<SimTime>,
}

impl TaskState {
    pub(crate) fn new(spec: TaskSpec) -> Self {
        TaskState { spec, attempts: Vec::new(), completed_at: None }
    }

    /// True once some attempt has won.
    pub fn is_complete(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Number of attempts still running.
    pub fn running_attempts(&self) -> usize {
        self.attempts.iter().filter(|a| a.outcome == AttemptOutcome::Running).count()
    }
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Some stage still has incomplete tasks.
    Running,
    /// All stages completed and (if cloned) this clone won.
    Completed,
    /// Killed because a sibling clone won.
    Cancelled,
}

/// Execution state of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobState {
    /// Identifier.
    pub id: JobId,
    /// Name from the spec.
    pub name: String,
    /// Per-stage task states.
    pub stages: Vec<Vec<TaskState>>,
    /// Index of the stage currently eligible to run.
    pub current_stage: usize,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time, set when the last stage finishes.
    pub completed: Option<SimTime>,
    /// Lifecycle status.
    pub status: JobStatus,
    /// Clone group this job belongs to (Dolly), if any.
    pub clone_group: Option<u64>,
}

impl JobState {
    pub(crate) fn new(
        id: JobId,
        spec: &JobSpec,
        submitted: SimTime,
        clone_group: Option<u64>,
    ) -> Self {
        JobState {
            id,
            name: spec.name.clone(),
            stages: spec
                .stages
                .iter()
                .map(|s| s.tasks.iter().cloned().map(TaskState::new).collect())
                .collect(),
            current_stage: 0,
            submitted,
            completed: None,
            status: JobStatus::Running,
            clone_group,
        }
    }

    /// Job completion time, if finished.
    pub fn jct(&self) -> Option<f64> {
        self.completed.map(|c| c.saturating_since(self.submitted).as_secs_f64())
    }

    /// True if every task of `stage` is complete.
    pub fn stage_complete(&self, stage: usize) -> bool {
        self.stages[stage].iter().all(TaskState::is_complete)
    }
}

/// Final metrics for a logical job (one clone group counts once).
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Job name.
    pub name: String,
    /// Submission time.
    pub submitted: SimTime,
    /// Job completion time, seconds (winner's completion for clone groups).
    pub jct: f64,
    /// Seconds of task execution whose results were used.
    pub successful_task_secs: f64,
    /// Seconds of all task execution, including killed/discarded attempts.
    pub total_task_secs: f64,
    /// Number of logical tasks.
    pub task_count: usize,
    /// Number of clones launched (1 = not cloned).
    pub clones: usize,
}

impl JobOutcome {
    /// The paper's resource-utilization-efficiency metric: successful task
    /// time over total task time.
    pub fn efficiency(&self) -> f64 {
        if self.total_task_secs <= 0.0 {
            1.0
        } else {
            (self.successful_task_secs / self.total_task_secs).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Phase;

    fn spec(stages: &[usize]) -> JobSpec {
        JobSpec {
            name: "test".into(),
            stages: stages
                .iter()
                .map(|&n| StageSpec {
                    tasks: (0..n)
                        .map(|i| TaskSpec::new(format!("t{i}"), vec![Phase::compute(1e9)]))
                        .collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn spec_counts() {
        let s = spec(&[10, 4]);
        assert_eq!(s.task_count(), 14);
        assert_eq!(s.max_tasks_per_stage(), 10);
        assert!(s.nominal_critical_path() > 0.0);
    }

    #[test]
    fn job_state_tracks_stages() {
        let s = spec(&[2, 1]);
        let mut j = JobState::new(JobId(0), &s, SimTime::ZERO, None);
        assert!(!j.stage_complete(0));
        j.stages[0][0].completed_at = Some(SimTime::from_secs(1));
        assert!(!j.stage_complete(0));
        j.stages[0][1].completed_at = Some(SimTime::from_secs(2));
        assert!(j.stage_complete(0));
        assert_eq!(j.jct(), None);
        j.completed = Some(SimTime::from_secs(5));
        assert_eq!(j.jct(), Some(5.0));
    }

    #[test]
    fn attempt_runtime_until_now_or_end() {
        let a = Attempt {
            id: AttemptId(0),
            server_idx: 0,
            vm: VmId(0),
            pid: ProcessId(0),
            started: SimTime::from_secs(10),
            ended: None,
            outcome: AttemptOutcome::Running,
        };
        assert_eq!(a.runtime(SimTime::from_secs(15)), 5.0);
        let mut done = a.clone();
        done.ended = Some(SimTime::from_secs(12));
        done.outcome = AttemptOutcome::Won;
        assert_eq!(done.runtime(SimTime::from_secs(100)), 2.0);
    }

    #[test]
    fn efficiency_metric() {
        let o = JobOutcome {
            name: "x".into(),
            submitted: SimTime::ZERO,
            jct: 10.0,
            successful_task_secs: 30.0,
            total_task_secs: 40.0,
            task_count: 4,
            clones: 2,
        };
        assert!((o.efficiency() - 0.75).abs() < 1e-12);
        let perfect = JobOutcome { total_task_secs: 0.0, ..o };
        assert_eq!(perfect.efficiency(), 1.0);
    }

    #[test]
    fn task_state_attempt_counting() {
        let t = TaskState::new(TaskSpec::new("t", vec![Phase::compute(1.0)]));
        assert!(!t.is_complete());
        assert_eq!(t.running_attempts(), 0);
    }
}
