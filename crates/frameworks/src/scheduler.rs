//! The framework scheduler (JobTracker / Spark master).
//!
//! Slot-based task scheduling over worker VMs: each worker advertises a
//! fixed number of task slots (the paper's VMs have 2 vCPUs → 2 slots);
//! pending tasks of the current stage are dispatched to the freest worker.
//! A task may run several attempts — the original, speculative copies
//! requested by a [`SpeculationPolicy`] (how LATE plugs in), or attempts
//! belonging to Dolly clone jobs submitted via [`FrameworkScheduler::submit_cloned`].
//! The first attempt to finish wins; the scheduler kills the losers and
//! accounts their execution time as waste for the paper's
//! resource-utilization-efficiency metric.

use crate::job::{
    Attempt, AttemptId, AttemptOutcome, JobId, JobOutcome, JobSpec, JobState, JobStatus, TaskId,
};
use crate::task::TaskProcess;
use perfcloud_host::{FinishedProcess, PhysicalServer, VmId};
use perfcloud_sim::SimTime;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Maximum attempts per task (original + one speculative copy, as in
/// Hadoop's default speculation cap).
pub const MAX_ATTEMPTS_PER_TASK: usize = 2;

/// A worker VM registered with the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Worker {
    /// Index of the hosting server in the experiment's server list.
    pub server_idx: usize,
    /// The worker VM.
    pub vm: VmId,
    /// Concurrent task slots.
    pub slots: u32,
}

/// Snapshot of one running task offered to speculation policies.
#[derive(Debug, Clone, PartialEq)]
pub struct RunningTaskView {
    /// The task.
    pub task: TaskId,
    /// Best progress across its running attempts, in [0, 1].
    pub progress: f64,
    /// Seconds since its earliest running attempt started.
    pub elapsed: f64,
    /// Total attempts launched so far (running or not).
    pub attempts: usize,
    /// Uncontended runtime estimate of the task, seconds.
    pub nominal_seconds: f64,
}

impl RunningTaskView {
    /// Progress rate (progress per second); 0 if just started.
    pub fn progress_rate(&self) -> f64 {
        if self.elapsed > 0.0 {
            self.progress / self.elapsed
        } else {
            0.0
        }
    }

    /// LATE's estimated time to finish: `(1 − progress) / rate`.
    /// Infinite when no progress has been made.
    pub fn estimated_time_left(&self) -> f64 {
        let r = self.progress_rate();
        if r > 0.0 {
            (1.0 - self.progress) / r
        } else {
            f64::INFINITY
        }
    }
}

/// What a speculation policy sees each tick.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerView {
    /// Current time.
    pub now: SimTime,
    /// Running, incomplete tasks of running jobs.
    pub running: Vec<RunningTaskView>,
    /// Free task slots across workers.
    pub free_slots: usize,
    /// Total task slots across workers.
    pub total_slots: usize,
}

/// The `CloneBox` bound on [`SpeculationPolicy`]: policies must be
/// duplicable so a whole experiment can be forked mid-run.
/// Blanket-implemented for any `Clone` policy.
pub trait ClonePolicy {
    /// Boxes a deep copy of `self`.
    fn clone_box(&self) -> Box<dyn SpeculationPolicy>;
}

impl<T: SpeculationPolicy + Clone + 'static> ClonePolicy for T {
    fn clone_box(&self) -> Box<dyn SpeculationPolicy> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn SpeculationPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Hook for straggler-mitigation policies that launch speculative attempts.
///
/// `Send` because experiments (which own their policy) move between sweep
/// worker threads; [`ClonePolicy`] so forking an experiment can deep-copy
/// the policy.
pub trait SpeculationPolicy: Send + ClonePolicy {
    /// Policy name for reports.
    fn name(&self) -> &'static str;
    /// Returns the tasks to launch one more attempt for. The scheduler
    /// enforces slot availability and [`MAX_ATTEMPTS_PER_TASK`].
    fn plan(&mut self, view: &SchedulerView) -> Vec<TaskId>;
}

/// The default: never speculate.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSpeculation;

impl SpeculationPolicy for NoSpeculation {
    fn name(&self) -> &'static str {
        "none"
    }
    fn plan(&mut self, _view: &SchedulerView) -> Vec<TaskId> {
        Vec::new()
    }
}

#[derive(Clone)]
struct CloneGroup {
    members: Vec<JobId>,
    winner: Option<JobId>,
    name: String,
    submitted: SimTime,
}

/// The scheduler itself.
#[derive(Clone)]
pub struct FrameworkScheduler {
    workers: Vec<Worker>,
    running_on: Vec<usize>,
    jobs: BTreeMap<JobId, JobState>,
    specs: HashMap<JobId, JobSpec>,
    pending: VecDeque<TaskId>,
    pid_index: HashMap<(usize, perfcloud_host::ProcessId), (TaskId, AttemptId)>,
    clone_groups: HashMap<u64, CloneGroup>,
    outcomes: Vec<JobOutcome>,
    next_job: u64,
    next_attempt: u64,
    next_group: u64,
}

impl FrameworkScheduler {
    /// Creates a scheduler over the given workers. Panics if empty.
    pub fn new(workers: Vec<Worker>) -> Self {
        assert!(!workers.is_empty(), "scheduler needs at least one worker");
        let n = workers.len();
        FrameworkScheduler {
            workers,
            running_on: vec![0; n],
            jobs: BTreeMap::new(),
            specs: HashMap::new(),
            pending: VecDeque::new(),
            pid_index: HashMap::new(),
            clone_groups: HashMap::new(),
            outcomes: Vec::new(),
            next_job: 0,
            next_attempt: 0,
            next_group: 0,
        }
    }

    /// Registered workers.
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// Total slots across workers.
    pub fn total_slots(&self) -> usize {
        self.workers.iter().map(|w| w.slots as usize).sum()
    }

    /// Free slots across workers.
    pub fn free_slots(&self) -> usize {
        self.workers
            .iter()
            .zip(&self.running_on)
            .map(|(w, &r)| (w.slots as usize).saturating_sub(r))
            .sum()
    }

    /// Submits a job; its first stage becomes dispatchable immediately.
    pub fn submit(&mut self, spec: JobSpec, now: SimTime) -> JobId {
        self.submit_internal(spec, now, None)
    }

    /// Submits `clones` identical copies of a job (Dolly). The first clone
    /// to finish wins; the others are killed. Returns the member job ids.
    pub fn submit_cloned(&mut self, spec: JobSpec, clones: usize, now: SimTime) -> Vec<JobId> {
        assert!(clones >= 1);
        if clones == 1 {
            return vec![self.submit(spec, now)];
        }
        let gid = self.next_group;
        self.next_group += 1;
        let mut members = Vec::with_capacity(clones);
        for _ in 0..clones {
            members.push(self.submit_internal(spec.clone(), now, Some(gid)));
        }
        self.clone_groups.insert(
            gid,
            CloneGroup {
                members: members.clone(),
                winner: None,
                name: spec.name.clone(),
                submitted: now,
            },
        );
        members
    }

    fn submit_internal(&mut self, spec: JobSpec, now: SimTime, group: Option<u64>) -> JobId {
        assert!(!spec.stages.is_empty(), "job must have at least one stage");
        let id = JobId(self.next_job);
        self.next_job += 1;
        let state = JobState::new(id, &spec, now, group);
        for index in 0..state.stages[0].len() {
            self.pending.push_back(TaskId { job: id, stage: 0, index });
        }
        self.jobs.insert(id, state);
        self.specs.insert(id, spec);
        id
    }

    /// One scheduling round: process completions, consult the speculation
    /// policy, dispatch pending tasks.
    pub fn on_tick(
        &mut self,
        now: SimTime,
        servers: &mut [PhysicalServer],
        finished: &[(usize, FinishedProcess)],
        policy: &mut dyn SpeculationPolicy,
    ) {
        self.handle_finished(now, servers, finished);
        self.run_speculation(now, servers, policy);
        self.dispatch(now, servers);
    }

    /// True when no job is still running.
    pub fn is_idle(&self) -> bool {
        self.jobs.values().all(|j| j.status != JobStatus::Running)
    }

    /// Outcomes of finished logical jobs (clone groups count once).
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// Read access to a job's state.
    pub fn job(&self, id: JobId) -> Option<&JobState> {
        self.jobs.get(&id)
    }

    /// Ids of all jobs ever submitted.
    pub fn job_ids(&self) -> Vec<JobId> {
        self.jobs.keys().copied().collect()
    }

    fn worker_free(&self, widx: usize) -> usize {
        (self.workers[widx].slots as usize).saturating_sub(self.running_on[widx])
    }

    /// Picks the freest worker, preferring ones not already running an
    /// attempt of `task` (for speculative copies). Returns its index.
    fn pick_worker(&self, avoid_vms: &[VmId]) -> Option<usize> {
        let mut best: Option<(usize, usize, bool)> = None; // (idx, free, avoided)
        for (i, w) in self.workers.iter().enumerate() {
            let free = self.worker_free(i);
            if free == 0 {
                continue;
            }
            let clean = !avoid_vms.contains(&w.vm);
            let better = match best {
                None => true,
                Some((_, bfree, bclean)) => (clean, free) > (bclean, bfree),
            };
            if better {
                best = Some((i, free, clean));
            }
        }
        best.map(|(i, _, _)| i)
    }

    fn launch_attempt(
        &mut self,
        tid: TaskId,
        now: SimTime,
        servers: &mut [PhysicalServer],
    ) -> bool {
        let avoid: Vec<VmId> = {
            let job = &self.jobs[&tid.job];
            job.stages[tid.stage][tid.index]
                .attempts
                .iter()
                .filter(|a| a.outcome == AttemptOutcome::Running)
                .map(|a| a.vm)
                .collect()
        };
        let Some(widx) = self.pick_worker(&avoid) else {
            return false;
        };
        let w = self.workers[widx];
        let spec = self.jobs[&tid.job].stages[tid.stage][tid.index].spec.clone();
        let pid = servers[w.server_idx].spawn(w.vm, Box::new(TaskProcess::new(spec)));
        let aid = AttemptId(self.next_attempt);
        self.next_attempt += 1;
        self.running_on[widx] += 1;
        self.pid_index.insert((w.server_idx, pid), (tid, aid));
        let job = self.jobs.get_mut(&tid.job).expect("job exists");
        job.stages[tid.stage][tid.index].attempts.push(Attempt {
            id: aid,
            server_idx: w.server_idx,
            vm: w.vm,
            pid,
            started: now,
            ended: None,
            outcome: AttemptOutcome::Running,
        });
        true
    }

    fn worker_index(&self, server_idx: usize, vm: VmId) -> Option<usize> {
        self.workers.iter().position(|w| w.server_idx == server_idx && w.vm == vm)
    }

    fn kill_attempt(
        &mut self,
        tid: TaskId,
        aid: AttemptId,
        now: SimTime,
        servers: &mut [PhysicalServer],
    ) {
        let job = self.jobs.get_mut(&tid.job).expect("job exists");
        let task = &mut job.stages[tid.stage][tid.index];
        let Some(a) = task.attempts.iter_mut().find(|a| a.id == aid) else {
            return;
        };
        if a.outcome != AttemptOutcome::Running {
            return;
        }
        a.outcome = AttemptOutcome::Killed;
        a.ended = Some(now);
        let (sidx, vm, pid) = (a.server_idx, a.vm, a.pid);
        servers[sidx].kill(vm, pid);
        self.pid_index.remove(&(sidx, pid));
        if let Some(widx) = self.worker_index(sidx, vm) {
            self.running_on[widx] = self.running_on[widx].saturating_sub(1);
        }
    }

    fn handle_finished(
        &mut self,
        now: SimTime,
        servers: &mut [PhysicalServer],
        finished: &[(usize, FinishedProcess)],
    ) {
        for (sidx, fin) in finished {
            let Some((tid, aid)) = self.pid_index.remove(&(*sidx, fin.pid)) else {
                continue; // not ours (an antagonist or already-killed attempt)
            };
            if let Some(widx) = self.worker_index(*sidx, fin.vm) {
                self.running_on[widx] = self.running_on[widx].saturating_sub(1);
            }
            let job = self.jobs.get_mut(&tid.job).expect("job exists");
            let task = &mut job.stages[tid.stage][tid.index];
            let attempt =
                task.attempts.iter_mut().find(|a| a.id == aid).expect("attempt recorded at launch");
            attempt.ended = Some(now);
            let job_running = job.status == JobStatus::Running;
            if !job_running || task.completed_at.is_some() {
                attempt.outcome = AttemptOutcome::Discarded;
                continue;
            }
            attempt.outcome = AttemptOutcome::Won;
            task.completed_at = Some(now);
            // Kill losing sibling attempts.
            let losers: Vec<AttemptId> = task
                .attempts
                .iter()
                .filter(|a| a.outcome == AttemptOutcome::Running)
                .map(|a| a.id)
                .collect();
            for l in losers {
                self.kill_attempt(tid, l, now, servers);
            }
            self.advance_job(tid.job, now, servers);
        }
    }

    fn advance_job(&mut self, jid: JobId, now: SimTime, servers: &mut [PhysicalServer]) {
        loop {
            let job = self.jobs.get_mut(&jid).expect("job exists");
            if job.status != JobStatus::Running {
                return;
            }
            let stage = job.current_stage;
            if stage >= job.stages.len() || !job.stage_complete(stage) {
                return;
            }
            job.current_stage += 1;
            if job.current_stage == job.stages.len() {
                job.completed = Some(now);
                job.status = JobStatus::Completed;
                let group = job.clone_group;
                match group {
                    None => self.finalize_single(jid, now),
                    Some(gid) => self.finalize_group_winner(gid, jid, now, servers),
                }
                return;
            }
            let next = job.current_stage;
            for index in 0..job.stages[next].len() {
                self.pending.push_back(TaskId { job: jid, stage: next, index });
            }
        }
    }

    fn finalize_single(&mut self, jid: JobId, now: SimTime) {
        let job = &self.jobs[&jid];
        let (mut ok, mut total, mut count) = (0.0, 0.0, 0);
        for stage in &job.stages {
            for task in stage {
                count += 1;
                for a in &task.attempts {
                    let rt = a.runtime(now);
                    total += rt;
                    if a.outcome == AttemptOutcome::Won {
                        ok += rt;
                    }
                }
            }
        }
        self.outcomes.push(JobOutcome {
            name: job.name.clone(),
            submitted: job.submitted,
            jct: job.jct().expect("job completed"),
            successful_task_secs: ok,
            total_task_secs: total,
            task_count: count,
            clones: 1,
        });
    }

    fn finalize_group_winner(
        &mut self,
        gid: u64,
        winner: JobId,
        now: SimTime,
        servers: &mut [PhysicalServer],
    ) {
        let members = {
            let g = self.clone_groups.get_mut(&gid).expect("group exists");
            if g.winner.is_some() {
                return; // already decided (shouldn't happen; be safe)
            }
            g.winner = Some(winner);
            g.members.clone()
        };
        // Kill losing clones.
        for &m in &members {
            if m == winner {
                continue;
            }
            let running: Vec<(TaskId, AttemptId)> = {
                let job = &self.jobs[&m];
                job.stages
                    .iter()
                    .enumerate()
                    .flat_map(|(si, stage)| {
                        stage.iter().enumerate().flat_map(move |(ti, task)| {
                            task.attempts
                                .iter()
                                .filter(|a| a.outcome == AttemptOutcome::Running)
                                .map(move |a| (TaskId { job: m, stage: si, index: ti }, a.id))
                        })
                    })
                    .collect()
            };
            for (tid, aid) in running {
                self.kill_attempt(tid, aid, now, servers);
            }
            let job = self.jobs.get_mut(&m).expect("member exists");
            if job.status == JobStatus::Running {
                job.status = JobStatus::Cancelled;
            }
            // Drop its pending tasks.
            self.pending.retain(|t| t.job != m);
        }
        // Aggregate the group outcome.
        let g = &self.clone_groups[&gid];
        let (mut ok, mut total) = (0.0, 0.0);
        let mut count = 0;
        for &m in &members {
            let job = &self.jobs[&m];
            for stage in &job.stages {
                for task in stage {
                    for a in &task.attempts {
                        let rt = a.runtime(now);
                        total += rt;
                        if m == winner && a.outcome == AttemptOutcome::Won {
                            ok += rt;
                        }
                    }
                }
            }
            if m == winner {
                count = job.stages.iter().map(Vec::len).sum();
            }
        }
        let winner_job = &self.jobs[&winner];
        self.outcomes.push(JobOutcome {
            name: g.name.clone(),
            submitted: g.submitted,
            jct: winner_job
                .completed
                .expect("winner completed")
                .saturating_since(g.submitted)
                .as_secs_f64(),
            successful_task_secs: ok,
            total_task_secs: total,
            task_count: count,
            clones: members.len(),
        });
    }

    fn build_view(&self, now: SimTime, servers: &[PhysicalServer]) -> SchedulerView {
        let mut running = Vec::new();
        for (jid, job) in &self.jobs {
            if job.status != JobStatus::Running {
                continue;
            }
            let stage = job.current_stage.min(job.stages.len() - 1);
            for (ti, task) in job.stages[stage].iter().enumerate() {
                if task.is_complete() {
                    continue;
                }
                let mut progress: f64 = 0.0;
                let mut earliest: Option<SimTime> = None;
                let mut any_running = false;
                for a in &task.attempts {
                    if a.outcome != AttemptOutcome::Running {
                        continue;
                    }
                    any_running = true;
                    if let Some(p) = servers[a.server_idx].process_progress(a.vm, a.pid) {
                        progress = progress.max(p);
                    }
                    earliest = Some(match earliest {
                        None => a.started,
                        Some(e) => e.min(a.started),
                    });
                }
                if !any_running {
                    continue;
                }
                running.push(RunningTaskView {
                    task: TaskId { job: *jid, stage, index: ti },
                    progress,
                    elapsed: now
                        .saturating_since(earliest.expect("running attempt has start"))
                        .as_secs_f64(),
                    attempts: task.attempts.len(),
                    nominal_seconds: task.spec.nominal_seconds(),
                });
            }
        }
        SchedulerView {
            now,
            running,
            free_slots: self.free_slots(),
            total_slots: self.total_slots(),
        }
    }

    fn run_speculation(
        &mut self,
        now: SimTime,
        servers: &mut [PhysicalServer],
        policy: &mut dyn SpeculationPolicy,
    ) {
        let view = self.build_view(now, servers);
        if view.running.is_empty() || view.free_slots == 0 {
            return;
        }
        let mut requested = policy.plan(&view);
        requested.dedup();
        for tid in requested {
            let Some(job) = self.jobs.get(&tid.job) else { continue };
            if job.status != JobStatus::Running {
                continue;
            }
            let task = &job.stages[tid.stage][tid.index];
            if task.is_complete() || task.attempts.len() >= MAX_ATTEMPTS_PER_TASK {
                continue;
            }
            if self.free_slots() == 0 {
                break;
            }
            self.launch_attempt(tid, now, servers);
        }
    }

    fn dispatch(&mut self, now: SimTime, servers: &mut [PhysicalServer]) {
        let mut requeue = VecDeque::new();
        while self.free_slots() > 0 {
            let Some(tid) = self.pending.pop_front() else { break };
            let job = &self.jobs[&tid.job];
            if job.status != JobStatus::Running || job.stages[tid.stage][tid.index].is_complete() {
                continue;
            }
            if !self.launch_attempt(tid, now, servers) {
                requeue.push_back(tid);
                break;
            }
        }
        while let Some(t) = requeue.pop_front() {
            self.pending.push_front(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::StageSpec;
    use crate::task::{Phase, TaskSpec};
    use perfcloud_host::{ServerConfig, ServerId, VmConfig};
    use perfcloud_sim::{RngFactory, SimDuration};

    const DT: SimDuration = SimDuration::from_micros(100_000);

    fn testbed(workers_per_server: u32, servers: usize) -> (Vec<PhysicalServer>, Vec<Worker>) {
        let mut srv = Vec::new();
        let mut workers = Vec::new();
        let mut vm_counter = 0;
        for s in 0..servers {
            let mut server = PhysicalServer::new(
                ServerId(s as u32),
                ServerConfig::default(),
                RngFactory::new(40 + s as u64),
                DT,
            );
            for _ in 0..workers_per_server {
                let vm = VmId(vm_counter);
                vm_counter += 1;
                server.add_vm(vm, VmConfig::high_priority());
                workers.push(Worker { server_idx: s, vm, slots: 2 });
            }
            srv.push(server);
        }
        (srv, workers)
    }

    fn cpu_job(name: &str, tasks: &[usize], instr: f64) -> JobSpec {
        JobSpec {
            name: name.into(),
            stages: tasks
                .iter()
                .map(|&n| StageSpec {
                    tasks: (0..n)
                        .map(|i| TaskSpec::new(format!("{name}-t{i}"), vec![Phase::compute(instr)]))
                        .collect(),
                })
                .collect(),
        }
    }

    fn drive(
        sched: &mut FrameworkScheduler,
        servers: &mut [PhysicalServer],
        policy: &mut dyn SpeculationPolicy,
        max_ticks: usize,
    ) -> usize {
        let mut now = SimTime::ZERO;
        for tick in 0..max_ticks {
            now += DT;
            let mut finished = Vec::new();
            for (i, s) in servers.iter_mut().enumerate() {
                let rep = s.tick(DT);
                for f in rep.finished {
                    finished.push((i, f));
                }
            }
            sched.on_tick(now, servers, &finished, policy);
            if sched.is_idle() {
                return tick + 1;
            }
        }
        panic!("scheduler did not drain in {max_ticks} ticks");
    }

    #[test]
    fn single_stage_job_completes() {
        let (mut servers, workers) = testbed(2, 1);
        let mut sched = FrameworkScheduler::new(workers);
        sched.submit(cpu_job("j", &[4], 2.3e8), SimTime::ZERO);
        sched.dispatch(SimTime::ZERO, &mut servers);
        drive(&mut sched, &mut servers, &mut NoSpeculation, 1000);
        assert_eq!(sched.outcomes().len(), 1);
        let o = &sched.outcomes()[0];
        assert_eq!(o.task_count, 4);
        assert!(o.jct > 0.0);
        assert!((o.efficiency() - 1.0).abs() < 1e-9, "no kills => perfect efficiency");
    }

    #[test]
    fn stages_run_sequentially() {
        let (mut servers, workers) = testbed(2, 1);
        let mut sched = FrameworkScheduler::new(workers);
        let jid = sched.submit(cpu_job("j", &[2, 2], 2.3e9), SimTime::ZERO);
        sched.dispatch(SimTime::ZERO, &mut servers);
        // While stage 0 incomplete, stage 1 has no attempts.
        let mut now = SimTime::ZERO;
        for _ in 0..2 {
            now += DT;
            let mut fin = Vec::new();
            for (i, s) in servers.iter_mut().enumerate() {
                for f in s.tick(DT).finished {
                    fin.push((i, f));
                }
            }
            sched.on_tick(now, &mut servers, &fin, &mut NoSpeculation);
        }
        let job = sched.job(jid).unwrap();
        assert!(job.stages[1].iter().all(|t| t.attempts.is_empty()));
        drive(&mut sched, &mut servers, &mut NoSpeculation, 1000);
        let job = sched.job(jid).unwrap();
        assert_eq!(job.status, JobStatus::Completed);
        assert!(job.stages[1].iter().all(|t| t.is_complete()));
    }

    #[test]
    fn slots_limit_concurrency() {
        let (mut servers, workers) = testbed(1, 1); // 1 worker × 2 slots
        let mut sched = FrameworkScheduler::new(workers);
        sched.submit(cpu_job("j", &[8], 2.3e9), SimTime::ZERO);
        sched.dispatch(SimTime::ZERO, &mut servers);
        assert_eq!(sched.free_slots(), 0);
        assert_eq!(servers[0].process_count(VmId(0)), 2, "only 2 of 8 tasks running");
        drive(&mut sched, &mut servers, &mut NoSpeculation, 5000);
        assert_eq!(sched.outcomes().len(), 1);
    }

    #[test]
    fn cloned_job_counts_once_and_wastes_work() {
        let (mut servers, workers) = testbed(4, 2);
        let mut sched = FrameworkScheduler::new(workers);
        let members = sched.submit_cloned(cpu_job("j", &[2], 2.3e8), 3, SimTime::ZERO);
        assert_eq!(members.len(), 3);
        sched.dispatch(SimTime::ZERO, &mut servers);
        drive(&mut sched, &mut servers, &mut NoSpeculation, 1000);
        assert_eq!(sched.outcomes().len(), 1, "clone group reports one outcome");
        let o = &sched.outcomes()[0];
        assert_eq!(o.clones, 3);
        assert!(o.efficiency() < 0.9, "losing clones waste work: {}", o.efficiency());
        // Exactly one member Completed; others Cancelled (or Completed-then-
        // discarded is impossible since the winner cancels them).
        let done = members
            .iter()
            .filter(|&&m| sched.job(m).unwrap().status == JobStatus::Completed)
            .count();
        let cancelled = members
            .iter()
            .filter(|&&m| sched.job(m).unwrap().status == JobStatus::Cancelled)
            .count();
        assert_eq!(done, 1);
        assert_eq!(cancelled, 2);
    }

    /// A policy that speculates every running task immediately.
    #[derive(Clone)]
    struct AlwaysSpeculate;
    impl SpeculationPolicy for AlwaysSpeculate {
        fn name(&self) -> &'static str {
            "always"
        }
        fn plan(&mut self, view: &SchedulerView) -> Vec<TaskId> {
            view.running.iter().map(|r| r.task).collect()
        }
    }

    #[test]
    fn speculation_launches_bounded_copies() {
        let (mut servers, workers) = testbed(4, 1);
        let mut sched = FrameworkScheduler::new(workers);
        let jid = sched.submit(cpu_job("j", &[2], 2.3e9), SimTime::ZERO);
        sched.dispatch(SimTime::ZERO, &mut servers);
        let mut pol = AlwaysSpeculate;
        drive(&mut sched, &mut servers, &mut pol, 2000);
        let job = sched.job(jid).unwrap();
        for task in &job.stages[0] {
            assert!(task.attempts.len() <= MAX_ATTEMPTS_PER_TASK);
            assert!(!task.attempts.is_empty());
        }
        // With duplicates, some work is wasted.
        let o = &sched.outcomes()[0];
        assert!(o.total_task_secs >= o.successful_task_secs);
    }

    #[test]
    fn speculative_copy_lands_on_a_different_vm() {
        let (mut servers, workers) = testbed(4, 1);
        let mut sched = FrameworkScheduler::new(workers);
        let jid = sched.submit(cpu_job("j", &[1], 2.3e9), SimTime::ZERO);
        sched.dispatch(SimTime::ZERO, &mut servers);
        let mut pol = AlwaysSpeculate;
        // One tick to start speculation.
        let mut now = SimTime::ZERO;
        now += DT;
        let mut fin = Vec::new();
        for (i, s) in servers.iter_mut().enumerate() {
            for f in s.tick(DT).finished {
                fin.push((i, f));
            }
        }
        sched.on_tick(now, &mut servers, &fin, &mut pol);
        let job = sched.job(jid).unwrap();
        let attempts = &job.stages[0][0].attempts;
        assert_eq!(attempts.len(), 2);
        assert_ne!(attempts[0].vm, attempts[1].vm);
    }

    #[test]
    fn multiple_jobs_share_the_cluster() {
        let (mut servers, workers) = testbed(3, 2);
        let mut sched = FrameworkScheduler::new(workers);
        for k in 0..4 {
            sched.submit(cpu_job(&format!("j{k}"), &[3], 2.3e8), SimTime::ZERO);
        }
        sched.dispatch(SimTime::ZERO, &mut servers);
        drive(&mut sched, &mut servers, &mut NoSpeculation, 2000);
        assert_eq!(sched.outcomes().len(), 4);
    }

    #[test]
    fn outcome_jct_reflects_contention() {
        // 8 tasks on 2 slots must take ~4x longer than 2 tasks on 2 slots.
        let run = |ntasks: usize| {
            let (mut servers, workers) = testbed(1, 1);
            let mut sched = FrameworkScheduler::new(workers);
            sched.submit(cpu_job("j", &[ntasks], 2.3e8), SimTime::ZERO);
            sched.dispatch(SimTime::ZERO, &mut servers);
            drive(&mut sched, &mut servers, &mut NoSpeculation, 4000);
            sched.outcomes()[0].jct
        };
        let small = run(2);
        let big = run(8);
        assert!(big >= 3.0 * small, "small {small} big {big}");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_worker_set_rejected() {
        let _ = FrameworkScheduler::new(vec![]);
    }
}
