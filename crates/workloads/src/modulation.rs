//! Natural rate variability for antagonist workloads.
//!
//! Real benchmarks do not produce perfectly flat demand: fio's random reads
//! burst with file layout and readahead luck, STREAM's phases alternate
//! kernels, OLTP load follows its transaction mix. This variability is what
//! makes PerfCloud's cross-correlation identification work in *steady*
//! colocation (not just at workload onset): intervals where the antagonist
//! pushes harder are the intervals where the victim's deviation spikes.
//!
//! [`RateModulation`] is a slowly varying multiplicative factor
//! `exp(amplitude · x)`, with `x` an AR(1) process stepped once per tick —
//! the same construction as the host's luck processes, but owned by the
//! workload and seeded per instance.

use perfcloud_host::jitter::Ar1;
use perfcloud_sim::{RngFactory, SimDuration};
use rand_chacha::ChaCha8Rng;

/// A slowly varying demand multiplier.
#[derive(Debug, Clone)]
pub struct RateModulation {
    ar1: Ar1,
    rng: ChaCha8Rng,
    amplitude: f64,
    factor: f64,
    dt_hint: Option<SimDuration>,
}

impl RateModulation {
    /// Creates a modulation with log-amplitude `amplitude` and correlation
    /// time `tau_secs`, seeded from `seed`.
    pub fn new(seed: u64, amplitude: f64, tau_secs: f64) -> Self {
        assert!(amplitude >= 0.0 && tau_secs > 0.0);
        let rng = RngFactory::new(seed).stream("workload-modulation");
        RateModulation {
            // Discretization is fixed at first use; 100 ms is the default.
            ar1: Ar1::with_time_constant(tau_secs, 0.1),
            rng,
            amplitude,
            factor: 1.0,
            dt_hint: None,
        }
    }

    /// A disabled modulation (factor constantly 1).
    pub fn none() -> Self {
        Self::new(0, 0.0, 1.0)
    }

    /// Current multiplicative factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// Steps the process by one tick of length `dt` and returns the new
    /// factor.
    pub fn step(&mut self, dt: SimDuration) -> f64 {
        // Note: the AR(1) was discretized at 100 ms; ticks of other lengths
        // only stretch the correlation time, which is harmless here.
        let _ = self.dt_hint.get_or_insert(dt);
        let x = self.ar1.step(&mut self.rng);
        self.factor = (self.amplitude * x).exp();
        self.factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration::from_micros(100_000);

    #[test]
    fn disabled_modulation_is_identity() {
        let mut m = RateModulation::none();
        for _ in 0..10 {
            assert_eq!(m.step(DT), 1.0);
        }
    }

    #[test]
    fn factor_is_positive_and_varies() {
        let mut m = RateModulation::new(7, 0.4, 8.0);
        let mut values = Vec::new();
        for _ in 0..200 {
            let f = m.step(DT);
            assert!(f > 0.0);
            values.push(f);
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min > 1.3, "modulation should actually vary: {min}..{max}");
    }

    #[test]
    fn seeded_replay_is_deterministic() {
        let run = |seed| {
            let mut m = RateModulation::new(seed, 0.4, 8.0);
            (0..50).map(|_| m.step(DT)).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn factor_is_temporally_correlated() {
        let mut m = RateModulation::new(11, 0.4, 8.0);
        for _ in 0..100 {
            m.step(DT);
        }
        // Adjacent factors should be close (slow process).
        let a = m.step(DT);
        let b = m.step(DT);
        assert!((a.ln() - b.ln()).abs() < 0.25, "{a} vs {b}");
    }
}
