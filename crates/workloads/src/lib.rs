//! Synthetic antagonist workloads.
//!
//! These are the colocated low-priority tenants from the paper's evaluation,
//! reimplemented as closed-loop [`perfcloud_host::Process`] models with the
//! same resource signatures as the originals:
//!
//! * [`FioRandRead`] — the fio random-read benchmark: seek-bound small-block
//!   reads at a queue-depth-limited submission rate. Dominates the disk.
//! * [`Stream`] — the STREAM memory benchmark: streaming triad over a huge
//!   array (the paper used 2-billion-element arrays, 8 threads per VM), zero
//!   cache reuse, saturates memory bandwidth and evicts everyone's LLC lines.
//! * [`SysbenchOltp`] — sysbench OLTP read-only against a 10M-row table,
//!   8 threads, 120 s: a moderate mix of random point reads and CPU.
//! * [`SysbenchCpu`] — sysbench CPU computing primes up to 12M with 4
//!   threads: pure computation, tiny footprint — the "innocent bystander"
//!   that PerfCloud must *not* flag as an antagonist.

pub mod fio;
pub mod modulation;
pub mod stream;
pub mod sysbench;

pub use fio::FioRandRead;
pub use modulation::RateModulation;
pub use stream::Stream;
pub use sysbench::{SysbenchCpu, SysbenchOltp};

use perfcloud_sim::SimDuration;

/// Shared run-length bookkeeping for duration-bounded workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct RunWindow {
    elapsed: SimDuration,
    duration: Option<SimDuration>,
}

impl RunWindow {
    pub(crate) fn new(duration: Option<SimDuration>) -> Self {
        RunWindow { elapsed: SimDuration::ZERO, duration }
    }

    pub(crate) fn advance(&mut self, dt: SimDuration) {
        self.elapsed += dt;
    }

    pub(crate) fn is_done(&self) -> bool {
        match self.duration {
            None => false,
            Some(d) => self.elapsed >= d,
        }
    }

    pub(crate) fn progress(&self) -> f64 {
        match self.duration {
            None => 0.0,
            Some(d) if d.is_zero() => 1.0,
            Some(d) => (self.elapsed.as_secs_f64() / d.as_secs_f64()).min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_window_never_finishes() {
        let mut w = RunWindow::new(None);
        w.advance(SimDuration::from_secs(1e9));
        assert!(!w.is_done());
        assert_eq!(w.progress(), 0.0);
    }

    #[test]
    fn bounded_window_finishes_and_reports_progress() {
        let mut w = RunWindow::new(Some(SimDuration::from_secs(10.0)));
        w.advance(SimDuration::from_secs(4.0));
        assert!(!w.is_done());
        assert!((w.progress() - 0.4).abs() < 1e-12);
        w.advance(SimDuration::from_secs(6.0));
        assert!(w.is_done());
        assert_eq!(w.progress(), 1.0);
    }

    #[test]
    fn zero_duration_is_immediately_done() {
        let w = RunWindow::new(Some(SimDuration::ZERO));
        assert!(w.is_done());
        assert_eq!(w.progress(), 1.0);
    }
}
