//! The fio random-read antagonist.
//!
//! Models `fio --rw=randread --direct=1` with a fixed queue depth: the
//! process keeps `iodepth` small-block random reads outstanding, so its
//! submission rate is bounded by `iodepth / service_time` but it will happily
//! consume the whole device if allowed. The paper's VMs ran with caching
//! `none`, so every op reaches the (virtual) device — as here.

use crate::modulation::RateModulation;
use crate::RunWindow;
use perfcloud_host::{Achieved, IoPattern, Process, ResourceDemand};
use perfcloud_sim::SimDuration;

/// Closed-loop random-read I/O generator.
#[derive(Debug, Clone)]
pub struct FioRandRead {
    label: String,
    /// Max ops the workload can have in flight per second of tick.
    submission_rate: f64,
    block_size: f64,
    window: RunWindow,
    ops_done: f64,
    modulation: RateModulation,
}

impl FioRandRead {
    /// Default deep-queue generator: submits up to 12 500 random 4 KiB reads
    /// per second — ~60% of the Chameleon preset device's capability, so its
    /// natural rate swings push the shared device in and out of saturation
    /// (as a real fio instance's bursts do) and its achieved throughput
    /// visibly tracks those swings.
    pub fn new(duration: Option<SimDuration>) -> Self {
        Self::with_rate(12_500.0, 4096.0, duration)
    }

    /// Generator with an explicit submission rate (ops/s) and block size.
    pub fn with_rate(submission_rate: f64, block_size: f64, duration: Option<SimDuration>) -> Self {
        assert!(submission_rate > 0.0 && block_size > 0.0);
        FioRandRead {
            label: "fio-randread".to_string(),
            submission_rate,
            block_size,
            window: RunWindow::new(duration),
            ops_done: 0.0,
            modulation: RateModulation::none(),
        }
    }

    /// Enables natural rate variability (±~50% swings over ~15 s), seeded
    /// per instance. Needed for steady-state antagonist identification.
    pub fn with_modulation(mut self, seed: u64) -> Self {
        self.modulation = RateModulation::new(seed, 0.5, 15.0);
        self
    }

    /// Total operations completed so far.
    pub fn ops_completed(&self) -> f64 {
        self.ops_done
    }
}

impl Process for FioRandRead {
    fn demand(&self, dt: SimDuration) -> ResourceDemand {
        let dt_s = dt.as_secs_f64();
        let ops = self.submission_rate * self.modulation.factor() * dt_s;
        ResourceDemand {
            // fio burns a little CPU issuing and reaping ops.
            cpu_parallelism: 1.0,
            cpu_instructions: ops * 20_000.0,
            io_ops: ops,
            io_bytes: ops * self.block_size,
            io_pattern: IoPattern::Random,
            // Deep asynchronous queue: fio barely feels queueing latency.
            io_queue_depth: 256.0,
            // Small buffers, direct I/O: fio barely touches the LLC — it is
            // a pure disk antagonist.
            mem_refs_per_instr: 0.002,
            working_set: 8.0e6,
            cache_reuse: 0.1,
            base_cpi: 1.0,
        }
    }

    fn advance(&mut self, achieved: &Achieved, dt: SimDuration) {
        self.ops_done += achieved.io_ops;
        self.modulation.step(dt);
        self.window.advance(dt);
    }

    fn is_done(&self) -> bool {
        self.window.is_done()
    }

    fn progress(&self) -> f64 {
        self.window.progress()
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration::from_micros(100_000);

    #[test]
    fn demand_scales_with_tick_length() {
        let f = FioRandRead::new(None);
        let d1 = f.demand(DT);
        let d2 = f.demand(SimDuration::from_micros(200_000));
        assert!((d2.io_ops - 2.0 * d1.io_ops).abs() < 1e-9);
        assert_eq!(d1.io_pattern, IoPattern::Random);
        assert!((d1.io_bytes - d1.io_ops * 4096.0).abs() < 1e-9);
    }

    #[test]
    fn tracks_completed_ops() {
        let mut f = FioRandRead::new(None);
        let a = Achieved { io_ops: 123.0, ..Default::default() };
        f.advance(&a, DT);
        f.advance(&a, DT);
        assert_eq!(f.ops_completed(), 246.0);
        assert!(!f.is_done());
    }

    #[test]
    fn bounded_run_completes() {
        let mut f = FioRandRead::new(Some(SimDuration::from_secs(1.0)));
        for _ in 0..10 {
            assert!(!f.is_done());
            f.advance(&Achieved::default(), DT);
        }
        assert!(f.is_done());
        assert_eq!(f.progress(), 1.0);
    }

    #[test]
    fn custom_rate_respected() {
        let f = FioRandRead::with_rate(100.0, 8192.0, None);
        let d = f.demand(DT);
        assert!((d.io_ops - 10.0).abs() < 1e-9);
        assert!((d.io_bytes - 10.0 * 8192.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        let _ = FioRandRead::with_rate(0.0, 4096.0, None);
    }
}
