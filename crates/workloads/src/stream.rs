//! The STREAM memory-bandwidth antagonist.
//!
//! Models McCalpin's STREAM triad: `threads` worker threads sweeping arrays
//! far larger than the LLC. Zero temporal reuse (every reference misses once
//! the prefetcher's window is past), so the workload both saturates DRAM
//! bandwidth and evicts colocated tenants' cache lines. The paper runs it
//! with 8 threads and a 2-billion-element array per VM, noting that one
//! 8-thread instance alone is mild but a 16-thread group causes significant
//! interference — the model reproduces that superlinearity through the
//! bandwidth queueing factor.

use crate::modulation::RateModulation;
use crate::RunWindow;
use perfcloud_host::{Achieved, IoPattern, Process, ResourceDemand};
use perfcloud_sim::SimDuration;

/// Streaming memory-bandwidth hog.
#[derive(Debug, Clone)]
pub struct Stream {
    label: String,
    threads: u32,
    array_bytes: f64,
    intensity: f64,
    window: RunWindow,
    instructions_done: f64,
    modulation: RateModulation,
}

impl Stream {
    /// The paper's configuration: 8 threads over a 2-billion-element
    /// (≈16 GB) array.
    pub fn new(duration: Option<SimDuration>) -> Self {
        Self::with_threads(8, 16.0e9, duration)
    }

    /// Custom thread count and array size.
    pub fn with_threads(threads: u32, array_bytes: f64, duration: Option<SimDuration>) -> Self {
        assert!(threads > 0 && array_bytes > 0.0);
        Stream {
            label: "stream".to_string(),
            threads,
            array_bytes,
            intensity: 0.15,
            window: RunWindow::new(duration),
            instructions_done: 0.0,
            modulation: RateModulation::none(),
        }
    }

    /// Sets the per-instruction LLC-reference intensity. The default (0.15)
    /// makes a single instance saturating, as in the motivation experiments
    /// (Fig. 2); the paper's antagonist-group case study (Fig. 6) sizes
    /// STREAM so instances are individually mild (~0.05) but jointly
    /// saturating.
    pub fn with_intensity(mut self, refs_per_instr: f64) -> Self {
        assert!(refs_per_instr > 0.0);
        self.intensity = refs_per_instr;
        self
    }

    /// Enables natural intensity variability (alternating triad kernels),
    /// seeded per instance; required for steady-state identification via
    /// LLC-miss-rate correlation.
    pub fn with_modulation(mut self, seed: u64) -> Self {
        self.modulation = RateModulation::new(seed, 0.6, 12.0);
        self
    }

    /// Worker thread count.
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// Instructions retired so far (proxy for triad iterations).
    pub fn instructions_completed(&self) -> f64 {
        self.instructions_done
    }
}

impl Process for Stream {
    fn demand(&self, dt: SimDuration) -> ResourceDemand {
        let dt_s = dt.as_secs_f64();
        let par = self.threads as f64;
        ResourceDemand {
            cpu_parallelism: par,
            // Wants to run flat out on all threads at ~1 IPC nominal.
            cpu_instructions: par * 2.3e9 * dt_s,
            io_ops: 0.0,
            io_bytes: 0.0,
            io_pattern: IoPattern::Sequential,
            io_queue_depth: 32.0,
            // Memory-intensive streaming. The modulation varies the kernel
            // mix, which perf counters see as a varying LLC-miss rate.
            mem_refs_per_instr: self.intensity * self.modulation.factor(),
            working_set: self.array_bytes,
            cache_reuse: 0.0,
            base_cpi: 1.0,
        }
    }

    fn advance(&mut self, achieved: &Achieved, dt: SimDuration) {
        self.instructions_done += achieved.instructions;
        self.modulation.step(dt);
        self.window.advance(dt);
    }

    fn is_done(&self) -> bool {
        self.window.is_done()
    }

    fn progress(&self) -> f64 {
        self.window.progress()
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration::from_micros(100_000);

    #[test]
    fn paper_default_configuration() {
        let s = Stream::new(None);
        assert_eq!(s.threads(), 8);
        let d = s.demand(DT);
        assert_eq!(d.cpu_parallelism, 8.0);
        assert_eq!(d.cache_reuse, 0.0);
        assert!(d.working_set > 1e9);
        assert_eq!(d.io_ops, 0.0);
    }

    #[test]
    fn demand_scales_with_threads() {
        let s2 = Stream::with_threads(2, 1e9, None);
        let s8 = Stream::with_threads(8, 1e9, None);
        let d2 = s2.demand(DT);
        let d8 = s8.demand(DT);
        assert!((d8.cpu_instructions / d2.cpu_instructions - 4.0).abs() < 1e-9);
    }

    #[test]
    fn accumulates_instructions() {
        let mut s = Stream::new(None);
        s.advance(&Achieved { instructions: 5e8, ..Default::default() }, DT);
        assert_eq!(s.instructions_completed(), 5e8);
        assert!(!s.is_done());
    }

    #[test]
    fn bounded_run_completes() {
        let mut s = Stream::with_threads(8, 1e9, Some(SimDuration::from_secs(0.2)));
        s.advance(&Achieved::default(), DT);
        assert!(!s.is_done());
        s.advance(&Achieved::default(), DT);
        assert!(s.is_done());
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        let _ = Stream::with_threads(0, 1e9, None);
    }
}
