//! The sysbench decoys.
//!
//! In the paper's antagonist-identification case studies (Figs. 5–6),
//! sysbench OLTP and sysbench CPU are colocated alongside the real
//! antagonists. Neither stresses the contended resource enough to hurt the
//! victims, so PerfCloud must *not* correlate them with the victim's
//! deviation series. Their resource signatures:
//!
//! * **OLTP** (read-only, 8 threads, 10M-row table, 120 s): moderate random
//!   point reads against a mostly-cached table plus query-processing CPU.
//! * **CPU** (4 threads, primes up to 12M): pure integer computation with a
//!   tiny working set — essentially invisible to disk and memory bandwidth.

use crate::modulation::RateModulation;
use crate::RunWindow;
use perfcloud_host::{Achieved, IoPattern, Process, ResourceDemand};
use perfcloud_sim::SimDuration;

/// sysbench OLTP read-only workload.
#[derive(Debug, Clone)]
pub struct SysbenchOltp {
    label: String,
    threads: u32,
    window: RunWindow,
    transactions_done: f64,
    modulation: RateModulation,
}

impl SysbenchOltp {
    /// The paper's configuration: 8 threads for 120 seconds.
    pub fn new() -> Self {
        Self::with_config(8, Some(SimDuration::from_secs(120.0)))
    }

    /// Custom thread count and duration.
    pub fn with_config(threads: u32, duration: Option<SimDuration>) -> Self {
        assert!(threads > 0);
        SysbenchOltp {
            label: "sysbench-oltp".to_string(),
            threads,
            window: RunWindow::new(duration),
            transactions_done: 0.0,
            modulation: RateModulation::none(),
        }
    }

    /// Enables natural transaction-rate variability, seeded per instance.
    /// OLTP fluctuates like every real workload — the identifier must still
    /// not flag it, because its fluctuations do not move the victim.
    pub fn with_modulation(mut self, seed: u64) -> Self {
        self.modulation = RateModulation::new(seed, 0.5, 6.0);
        self
    }

    /// Transactions completed so far (one per achieved op).
    pub fn transactions_completed(&self) -> f64 {
        self.transactions_done
    }
}

impl Default for SysbenchOltp {
    fn default() -> Self {
        Self::new()
    }
}

impl Process for SysbenchOltp {
    fn demand(&self, dt: SimDuration) -> ResourceDemand {
        let dt_s = dt.as_secs_f64();
        let par = self.threads as f64;
        // Each thread issues ~40 point reads/s; most hit the buffer pool, a
        // fraction reach the device.
        let device_reads = par * 40.0 * 0.25 * self.modulation.factor() * dt_s;
        ResourceDemand {
            cpu_parallelism: par,
            // Query processing tracks the transaction rate, so the CPU and
            // cache activity fluctuate with the same pattern as the I/O.
            cpu_instructions: par * 0.12e9 * self.modulation.factor() * dt_s,
            io_ops: device_reads,
            io_bytes: device_reads * 16.0 * 1024.0,
            io_pattern: IoPattern::Random,
            // Synchronous point reads: one outstanding request per thread.
            io_queue_depth: 8.0,
            mem_refs_per_instr: 0.01,
            working_set: 256.0e6,
            cache_reuse: 0.7,
            base_cpi: 1.1,
        }
    }

    fn advance(&mut self, achieved: &Achieved, dt: SimDuration) {
        self.transactions_done += achieved.io_ops;
        self.modulation.step(dt);
        self.window.advance(dt);
    }

    fn is_done(&self) -> bool {
        self.window.is_done()
    }

    fn progress(&self) -> f64 {
        self.window.progress()
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// sysbench CPU (prime computation) workload.
#[derive(Debug, Clone)]
pub struct SysbenchCpu {
    label: String,
    threads: u32,
    instructions_left: f64,
    total_instructions: f64,
}

impl SysbenchCpu {
    /// The paper's configuration: 4 threads computing primes up to 12M.
    pub fn new() -> Self {
        Self::with_config(4, 12_000_000)
    }

    /// Custom thread count and prime bound. The instruction budget scales
    /// roughly with `n√n`, anchored so the default runs a few minutes.
    pub fn with_config(threads: u32, max_prime: u64) -> Self {
        assert!(threads > 0 && max_prime > 1);
        let n = max_prime as f64;
        let budget = n * n.sqrt() * 12.0;
        SysbenchCpu {
            label: "sysbench-cpu".to_string(),
            threads,
            instructions_left: budget,
            total_instructions: budget,
        }
    }
}

impl Default for SysbenchCpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Process for SysbenchCpu {
    fn demand(&self, dt: SimDuration) -> ResourceDemand {
        let dt_s = dt.as_secs_f64();
        let par = self.threads as f64;
        ResourceDemand {
            cpu_parallelism: par,
            cpu_instructions: (par * 2.3e9 * dt_s).min(self.instructions_left),
            io_ops: 0.0,
            io_bytes: 0.0,
            io_pattern: IoPattern::Random,
            io_queue_depth: 32.0,
            // Prime sieving runs out of registers and L1; it effectively
            // never touches the LLC — the perfect innocent bystander.
            mem_refs_per_instr: 0.0,
            working_set: 1.0e6,
            cache_reuse: 1.0,
            base_cpi: 0.8,
        }
    }

    fn advance(&mut self, achieved: &Achieved, _dt: SimDuration) {
        self.instructions_left = (self.instructions_left - achieved.instructions).max(0.0);
    }

    fn is_done(&self) -> bool {
        self.instructions_left <= 0.0
    }

    fn progress(&self) -> f64 {
        1.0 - self.instructions_left / self.total_instructions
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration::from_micros(100_000);

    #[test]
    fn oltp_defaults_match_paper() {
        let o = SysbenchOltp::new();
        assert_eq!(o.threads, 8);
        let d = o.demand(DT);
        assert!(d.io_ops > 0.0, "OLTP must touch the disk");
        assert!(d.cpu_instructions > 0.0);
        assert_eq!(d.io_pattern, IoPattern::Random);
    }

    #[test]
    fn oltp_io_is_mild_compared_to_fio() {
        let o = SysbenchOltp::new();
        let f = crate::FioRandRead::new(None);
        let od = o.demand(DT);
        let fd = f.demand(DT);
        assert!(
            od.io_ops * 10.0 < fd.io_ops,
            "OLTP ({}) must demand far fewer ops than fio ({})",
            od.io_ops,
            fd.io_ops
        );
    }

    #[test]
    fn oltp_finishes_after_120s() {
        let mut o = SysbenchOltp::new();
        for _ in 0..1199 {
            o.advance(&Achieved::default(), DT);
        }
        assert!(!o.is_done());
        o.advance(&Achieved::default(), DT);
        assert!(o.is_done());
    }

    #[test]
    fn cpu_is_disk_and_memory_innocent() {
        let c = SysbenchCpu::new();
        let d = c.demand(DT);
        assert_eq!(d.io_ops, 0.0);
        assert!(d.mem_refs_per_instr < 0.01);
        assert!(d.working_set < 10.0e6);
        assert_eq!(d.cache_reuse, 1.0);
    }

    #[test]
    fn cpu_progresses_by_instructions() {
        let mut c = SysbenchCpu::with_config(4, 1_000_000);
        let total = c.total_instructions;
        c.advance(&Achieved { instructions: total / 2.0, ..Default::default() }, DT);
        assert!((c.progress() - 0.5).abs() < 1e-9);
        c.advance(&Achieved { instructions: total, ..Default::default() }, DT);
        assert!(c.is_done());
        assert_eq!(c.progress(), 1.0);
    }

    #[test]
    fn cpu_demand_caps_at_remaining_work() {
        let mut c = SysbenchCpu::with_config(4, 1_000_000);
        c.instructions_left = 5.0;
        let d = c.demand(DT);
        assert_eq!(d.cpu_instructions, 5.0);
    }

    #[test]
    fn oltp_counts_transactions() {
        let mut o = SysbenchOltp::new();
        o.advance(&Achieved { io_ops: 7.0, ..Default::default() }, DT);
        assert_eq!(o.transactions_completed(), 7.0);
    }
}
