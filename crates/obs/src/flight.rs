//! Typed-event ring-buffer flight recorder.
//!
//! A [`FlightRecorder`] holds the last `capacity` [`Record`]s — plain
//! `Copy` events stamped with sim time (raw microseconds) and a
//! per-recorder sequence number. The buffer is allocated once at
//! construction; recording overwrites the oldest entry and never
//! allocates, so recorders can live inside allocation-free hot paths.
//! Because events carry only sim time and the per-recorder `seq`, the
//! recorded stream is a pure function of the simulated run: identical
//! seeds produce identical event logs regardless of wall clock or thread
//! scheduling.

use std::fmt;

/// One in this many collected samples emits a [`FlightEvent::SampleIngested`]
/// event. Collection is steady-state (every VM, every interval), so
/// undecimated sample events would evict every interesting record from the
/// ring within a few intervals.
pub const SAMPLE_EVENT_DECIMATION: u64 = 64;

/// The resource dimension an event refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resource {
    /// Disk I/O (IOPS / bandwidth caps).
    Io,
    /// CPU (core caps).
    Cpu,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Resource::Io => "io",
            Resource::Cpu => "cpu",
        })
    }
}

/// Why the monitor refused an ingested sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Same timestamp delivered twice.
    Duplicate,
    /// Timestamp behind the last accepted sample.
    Stale,
    /// Monotonic hardware counters ran backwards (e.g. after a reset).
    CounterRegression,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RejectReason::Duplicate => "dup",
            RejectReason::Stale => "stale",
            RejectReason::CounterRegression => "regress",
        })
    }
}

/// Which chaos fault fired (mirrors `core::chaos::FaultKind` without the
/// dependency).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// A metric sample was dropped.
    DropSample,
    /// A metric sample was delayed for later delivery.
    DelaySample,
    /// A metric sample was delivered twice.
    DuplicateSample,
    /// A metric value was corrupted (NaN / spike / stuck-at).
    CorruptSample,
    /// A node manager was stalled.
    StallManager,
    /// A node manager crashed and restarted.
    CrashRestart,
    /// A placement view was desynchronized.
    DesyncPlacement,
    /// A control-plane replica went down.
    DownReplica,
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultClass::DropSample => "drop-sample",
            FaultClass::DelaySample => "delay-sample",
            FaultClass::DuplicateSample => "dup-sample",
            FaultClass::CorruptSample => "corrupt-sample",
            FaultClass::StallManager => "stall",
            FaultClass::CrashRestart => "crash",
            FaultClass::DesyncPlacement => "desync",
            FaultClass::DownReplica => "down-replica",
        })
    }
}

/// One flight-recorder event. `Copy`, fixed size, covering the four
/// instrumented domains: sim engine, node manager, control plane, chaos.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FlightEvent {
    // --- sim engine ---
    /// A calendar event fired.
    Fire {
        /// Events still pending after this one popped.
        pending: u64,
    },
    /// The event queue reached a new high-water depth.
    QueueHighWater {
        /// New peak number of pending events.
        depth: u64,
    },
    /// An entry was scheduled behind the wheel cursor and promoted to the
    /// late heap.
    LatePromotion {
        /// Cumulative late-heap insertions.
        total: u64,
    },
    /// An entry landed beyond the wheel horizon in the overflow heap.
    OverflowPromotion {
        /// Cumulative overflow-heap insertions.
        total: u64,
    },

    // --- node manager ---
    /// Detection crossed a threshold: a contention episode began.
    DetectOnset {
        /// Server index.
        server: u32,
        /// I/O deviation exceeded its threshold.
        io: bool,
        /// CPI deviation exceeded its threshold.
        cpu: bool,
    },
    /// Detection fell back below both thresholds: episode over.
    DetectClear {
        /// Server index.
        server: u32,
    },
    /// Correlation fingered a low-priority VM as an antagonist.
    AntagonistIdentified {
        /// Server index.
        server: u32,
        /// Suspect VM id.
        vm: u64,
        /// Resource dimension of the correlation.
        resource: Resource,
    },
    /// A VM was newly enrolled for CUBIC throttling.
    Throttle {
        /// Server index.
        server: u32,
        /// Throttled VM id.
        vm: u64,
        /// Resource dimension being capped.
        resource: Resource,
    },
    /// A throttled VM departed and its caps were released.
    Release {
        /// Server index.
        server: u32,
        /// Released VM id.
        vm: u64,
    },
    /// The CUBIC controller moved a VM's cap.
    CapUpdate {
        /// Server index.
        server: u32,
        /// Capped VM id.
        vm: u64,
        /// Resource dimension.
        resource: Resource,
        /// New cap level in [0, 1].
        level: f64,
    },
    /// The node manager crashed and restarted, releasing all caps.
    ManagerRestart {
        /// Server index.
        server: u32,
    },
    /// The manager rode a stale placement cache (message path).
    PlacementStale {
        /// Server index.
        server: u32,
        /// Consecutive stale intervals.
        staleness: u32,
    },
    /// The monitor rejected an ingested sample.
    IngestRejected {
        /// Server index.
        server: u32,
        /// VM the sample belonged to.
        vm: u64,
        /// Rejection reason.
        reason: RejectReason,
    },

    // --- telemetry collector ---
    /// A counter sample reached the monitor. Emitted decimated (one in
    /// every [`SAMPLE_EVENT_DECIMATION`] collected samples) so steady-state
    /// collection doesn't flood the ring.
    SampleIngested {
        /// Server index.
        server: u32,
        /// Sampled VM id.
        vm: u64,
    },
    /// A collector ring evicted unflushed samples for a VM.
    SampleDropped {
        /// Server index.
        server: u32,
        /// VM whose samples were evicted.
        vm: u64,
        /// Samples lost since the previous flush.
        count: u64,
    },
    /// A collector flushed a batch of samples at the sampling interval.
    FlushBatch {
        /// Server index.
        server: u32,
        /// Samples in the batch.
        count: u64,
    },

    // --- control plane ---
    /// A replica started an election round.
    Election {
        /// Replica index.
        replica: u32,
        /// Election round.
        round: u64,
    },
    /// A replica won and became coordinator.
    Coordinator {
        /// Replica index.
        replica: u32,
        /// Its term, packed as `round:owner`.
        term: u64,
    },
    /// A coordinator observed a higher term and stepped down.
    Stepdown {
        /// Replica index.
        replica: u32,
        /// The superseding term.
        term: u64,
    },
    /// A node manager rejected a placement epoch as stale.
    EpochRejected {
        /// Server index.
        server: u32,
        /// Rejected epoch term.
        term: u64,
        /// Rejected epoch sequence.
        seq: u64,
    },
    /// A coordinator published a placement epoch.
    EpochPublished {
        /// Publishing replica index.
        replica: u32,
        /// Epoch term.
        term: u64,
        /// Epoch sequence.
        seq: u64,
    },
    /// A live migration entered its pre-copy phase.
    MigrationStart {
        /// Migrating VM id.
        vm: u64,
        /// Source server index.
        from: u32,
        /// Destination server index.
        to: u32,
    },
    /// A live migration froze its VM for the stop-and-copy phase.
    MigrationStopCopy {
        /// Migrating VM id.
        vm: u64,
        /// Source server index.
        from: u32,
        /// Destination server index.
        to: u32,
    },
    /// A live migration completed and the VM resumed on the destination.
    MigrationComplete {
        /// Migrated VM id.
        vm: u64,
        /// Source server index.
        from: u32,
        /// Destination server index.
        to: u32,
    },
    /// A replica process went down (fault window opened).
    ReplicaDown {
        /// Replica index.
        replica: u32,
    },
    /// A replica process came back up.
    ReplicaUp {
        /// Replica index.
        replica: u32,
    },
    /// A message was accepted onto the simulated link.
    MsgSend {
        /// Sender endpoint id.
        from: u32,
        /// Destination endpoint id.
        to: u32,
        /// Delivered copies (>1 means fault-duplicated).
        copies: u32,
    },
    /// A message was dropped (partition or injected fault).
    MsgDrop {
        /// Sender endpoint id.
        from: u32,
        /// Destination endpoint id.
        to: u32,
        /// True if a partition severed the link, false for an injected
        /// drop fault.
        partitioned: bool,
    },
    /// A message was delayed by an injected fault.
    MsgDelay {
        /// Sender endpoint id.
        from: u32,
        /// Destination endpoint id.
        to: u32,
        /// Extra latency in microseconds.
        micros: u64,
    },

    // --- chaos ---
    /// A fault-injection rule fired.
    Fault {
        /// Fault class.
        class: FaultClass,
        /// Server index the fault applied to.
        server: u32,
        /// VM it applied to, or `u64::MAX` for server-scoped faults.
        vm: u64,
    },
}

impl fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use FlightEvent::*;
        match *self {
            Fire { pending } => write!(f, "fire pending={pending}"),
            QueueHighWater { depth } => write!(f, "queue-high-water depth={depth}"),
            LatePromotion { total } => write!(f, "late-promotion total={total}"),
            OverflowPromotion { total } => write!(f, "overflow-promotion total={total}"),
            DetectOnset { server, io, cpu } => {
                write!(f, "detect-onset s{server} io={} cpu={}", io as u8, cpu as u8)
            }
            DetectClear { server } => write!(f, "detect-clear s{server}"),
            AntagonistIdentified { server, vm, resource } => {
                write!(f, "identify s{server} vm{vm} {resource}")
            }
            Throttle { server, vm, resource } => write!(f, "throttle s{server} vm{vm} {resource}"),
            Release { server, vm } => write!(f, "release s{server} vm{vm}"),
            CapUpdate { server, vm, resource, level } => {
                write!(f, "cap s{server} vm{vm} {resource}={level}")
            }
            ManagerRestart { server } => write!(f, "manager-restart s{server}"),
            PlacementStale { server, staleness } => {
                write!(f, "placement-stale s{server} n={staleness}")
            }
            IngestRejected { server, vm, reason } => {
                write!(f, "ingest-reject s{server} vm{vm} {reason}")
            }
            SampleIngested { server, vm } => write!(f, "sample-ingest s{server} vm{vm}"),
            SampleDropped { server, vm, count } => {
                write!(f, "sample-drop s{server} vm{vm} n={count}")
            }
            FlushBatch { server, count } => write!(f, "flush s{server} n={count}"),
            Election { replica, round } => write!(f, "elect m{replica} r={round}"),
            Coordinator { replica, term } => write!(f, "coord m{replica} t={term}"),
            Stepdown { replica, term } => write!(f, "stepdown m{replica} t={term}"),
            EpochRejected { server, term, seq } => {
                write!(f, "epoch-reject s{server} e={term}:{seq}")
            }
            EpochPublished { replica, term, seq } => {
                write!(f, "epoch-pub m{replica} e={term}:{seq}")
            }
            MigrationStart { vm, from, to } => {
                write!(f, "migrate-start vm{vm} s{from}->s{to}")
            }
            MigrationStopCopy { vm, from, to } => {
                write!(f, "migrate-stopcopy vm{vm} s{from}->s{to}")
            }
            MigrationComplete { vm, from, to } => {
                write!(f, "migrate-done vm{vm} s{from}->s{to}")
            }
            ReplicaDown { replica } => write!(f, "replica-down m{replica}"),
            ReplicaUp { replica } => write!(f, "replica-up m{replica}"),
            MsgSend { from, to, copies } => write!(f, "msg-send {from}->{to} copies={copies}"),
            MsgDrop { from, to, partitioned } => {
                write!(
                    f,
                    "msg-drop {from}->{to} {}",
                    if partitioned { "partition" } else { "fault" }
                )
            }
            MsgDelay { from, to, micros } => write!(f, "msg-delay {from}->{to} +{micros}us"),
            Fault { class, server, vm } => {
                if vm == u64::MAX {
                    write!(f, "fault {class} s{server}")
                } else {
                    write!(f, "fault {class} s{server} vm{vm}")
                }
            }
        }
    }
}

/// One recorded event: sim time (microseconds), per-recorder sequence
/// number, and the typed event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Record {
    /// Sim time of the event in raw microseconds.
    pub t: u64,
    /// Per-recorder monotonic sequence number (total events ever
    /// recorded when this one was written, starting at 0).
    pub seq: u64,
    /// The event itself.
    pub event: FlightEvent,
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Decode micros to seconds with the same shortest-round-trip f64
        // Display the decision trace uses.
        write!(f, "t={} {}", self.t as f64 / 1e6, self.event)
    }
}

/// Bounded ring buffer of [`Record`]s. Allocates its full capacity at
/// construction; recording never allocates and overwrites the oldest
/// entry once full.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<Record>,
    capacity: usize,
    /// Index the next record will be written at once the buffer is full.
    head: usize,
    /// Total events ever recorded (also the next sequence number).
    seq: u64,
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` events. The backing buffer
    /// is fully reserved here.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder { buf: Vec::with_capacity(capacity), capacity, head: 0, seq: 0 }
    }

    /// Records an event at sim time `t` (microseconds). Never allocates.
    #[inline]
    pub fn record(&mut self, t: u64, event: FlightEvent) {
        let rec = Record { t, seq: self.seq, event };
        self.seq += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn total_recorded(&self) -> u64 {
        self.seq
    }

    /// Events lost to ring overwrite.
    pub fn dropped(&self) -> u64 {
        self.seq - self.buf.len() as u64
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        let (wrapped, start) = self.buf.split_at(self.head);
        start.iter().chain(wrapped.iter())
    }

    /// The newest `n` events, oldest of those first.
    pub fn tail(&self, n: usize) -> Vec<Record> {
        let skip = self.buf.len().saturating_sub(n);
        self.iter().skip(skip).copied().collect()
    }

    /// Decoded text of the newest `n` events, one per line — what golden
    /// failures dump.
    pub fn decode_tail(&self, n: usize) -> String {
        let mut out = String::new();
        for rec in self.tail(n) {
            out.push_str(&rec.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_keeps_order() {
        let mut fr = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            fr.record(i * 10, FlightEvent::DetectClear { server: i as u32 });
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.total_recorded(), 5);
        assert_eq!(fr.dropped(), 2);
        let times: Vec<u64> = fr.iter().map(|r| r.t).collect();
        assert_eq!(times, [20, 30, 40]);
        let seqs: Vec<u64> = fr.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [2, 3, 4]);
    }

    #[test]
    fn tail_returns_newest_events() {
        let mut fr = FlightRecorder::with_capacity(8);
        for i in 0..6u64 {
            fr.record(i, FlightEvent::QueueHighWater { depth: i });
        }
        let t = fr.tail(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].t, 4);
        assert_eq!(t[1].t, 5);
        // Asking for more than retained returns everything.
        assert_eq!(fr.tail(100).len(), 6);
    }

    #[test]
    fn record_does_not_allocate_after_construction() {
        let mut fr = FlightRecorder::with_capacity(4);
        let ptr_before = fr.buf.as_ptr();
        for i in 0..100u64 {
            fr.record(i, FlightEvent::ManagerRestart { server: 0 });
        }
        assert_eq!(fr.buf.as_ptr(), ptr_before, "ring buffer must never reallocate");
        assert_eq!(fr.buf.capacity(), 4);
    }

    #[test]
    fn decoded_text_is_compact() {
        let mut fr = FlightRecorder::with_capacity(4);
        fr.record(
            5_000_000,
            FlightEvent::AntagonistIdentified { server: 0, vm: 10, resource: Resource::Io },
        );
        fr.record(
            5_500_000,
            FlightEvent::CapUpdate { server: 0, vm: 10, resource: Resource::Io, level: 0.5 },
        );
        assert_eq!(fr.decode_tail(8), "t=5 identify s0 vm10 io\nt=5.5 cap s0 vm10 io=0.5\n");
    }
}
