//! Fixed-capacity metrics registry: counters, gauges, log-linear
//! histograms.
//!
//! All capacity is reserved at construction; registration past the
//! declared capacity panics, and neither registration order nor any
//! record-path operation allocates afterwards. The record path is pure
//! u64/i64 integer arithmetic — no floats until a snapshot is taken — so
//! it is safe inside the simulator's allocation-free hot loops.
//!
//! Histograms are log-linear in the HdrHistogram style: four linear
//! sub-buckets per power of two, covering the full u64 range in
//! [`BUCKETS`] buckets with a worst-case relative error of 25% per
//! bucket. Snapshots decode bucket midpoints into approximate quantiles.

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Linear sub-buckets per power of two (as a bit count): 2 bits = 4.
const SUB_BITS: u32 = 2;
/// Total log-linear buckets needed to span the u64 range.
pub const BUCKETS: usize = 4 + (62 * 4);

/// Index of the log-linear bucket holding `v`. Values 0–3 get exact
/// buckets; above that, the bucket is identified by the position of the
/// most significant bit plus the next [`SUB_BITS`] bits.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < (1 << SUB_BITS) {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    ((msb - 1) as usize) * 4 + sub
}

/// Lower bound of bucket `idx` (inverse of [`bucket_index`]).
fn bucket_lower(idx: usize) -> u64 {
    if idx < 4 {
        return idx as u64;
    }
    let msb = (idx / 4 + 1) as u32;
    let sub = (idx % 4) as u64;
    (1u64 << msb) | (sub << (msb - SUB_BITS))
}

/// Midpoint of bucket `idx`, used when decoding quantiles.
fn bucket_mid(idx: usize) -> u64 {
    if idx < 4 {
        return idx as u64;
    }
    let msb = (idx / 4 + 1) as u32;
    bucket_lower(idx) + (1u64 << (msb - SUB_BITS)) / 2
}

#[derive(Debug)]
struct Histogram {
    name: String,
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Registry of named counters, gauges and histograms with capacity fixed
/// at construction.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    histograms: Vec<Histogram>,
    cap: usize,
}

impl MetricsRegistry {
    /// A registry able to hold up to `cap` metrics of each kind. All
    /// backing storage is reserved here.
    pub fn with_capacity(cap: usize) -> Self {
        MetricsRegistry {
            counters: Vec::with_capacity(cap),
            gauges: Vec::with_capacity(cap),
            histograms: Vec::with_capacity(cap),
            cap,
        }
    }

    /// Registers a counter. Panics past the fixed capacity.
    pub fn counter(&mut self, name: &str) -> CounterId {
        assert!(self.counters.len() < self.cap, "metrics registry counter capacity exhausted");
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers a gauge. Panics past the fixed capacity.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        assert!(self.gauges.len() < self.cap, "metrics registry gauge capacity exhausted");
        self.gauges.push((name.to_string(), 0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a histogram. Panics past the fixed capacity.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        assert!(self.histograms.len() < self.cap, "metrics registry histogram capacity exhausted");
        self.histograms.push(Histogram {
            name: name.to_string(),
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        });
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds `delta` to a counter. Integer math, no allocation.
    #[inline]
    pub fn inc(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0].1 += delta;
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Sets a gauge. Integer math, no allocation.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: i64) {
        self.gauges[id.0].1 = value;
    }

    /// Raises a gauge to `value` if it is below it (high-water tracking).
    #[inline]
    pub fn raise(&mut self, id: GaugeId, value: i64) {
        let g = &mut self.gauges[id.0].1;
        if value > *g {
            *g = value;
        }
    }

    /// Records one observation into a histogram. Pure u64 bucket math,
    /// no floats, no allocation.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        let h = &mut self.histograms[id.0];
        h.buckets[bucket_index(value)] += 1;
        h.count += 1;
        h.sum = h.sum.saturating_add(value);
        if value < h.min {
            h.min = value;
        }
        if value > h.max {
            h.max = value;
        }
    }

    /// Approximate quantile of a histogram (bucket-midpoint decode).
    fn quantile(h: &Histogram, q: f64) -> f64 {
        if h.count == 0 {
            return 0.0;
        }
        let target = ((h.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in h.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_mid(idx) as f64;
            }
        }
        h.max as f64
    }

    /// Registered counters as `(name, value)` pairs in registration
    /// order — the kind-aware view exporters need for `# TYPE` lines.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Registered gauges as `(name, value)` pairs in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Flattened histogram statistics, exactly the `(name, value)` pairs
    /// [`snapshot`](Self::snapshot) emits for histograms.
    pub fn histogram_stats(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for h in &self.histograms {
            out.push((format!("{}_count", h.name), h.count as f64));
            if h.count == 0 {
                continue;
            }
            out.push((format!("{}_min", h.name), h.min as f64));
            out.push((format!("{}_max", h.name), h.max as f64));
            out.push((format!("{}_mean", h.name), h.sum as f64 / h.count as f64));
            out.push((format!("{}_p50", h.name), Self::quantile(h, 0.50)));
            out.push((format!("{}_p99", h.name), Self::quantile(h, 0.99)));
        }
        out
    }

    /// Flattens every metric into `(name, value)` pairs in registration
    /// order — the shape `BenchRecord` extras use. Histograms expand to
    /// `_count`, `_min`, `_max`, `_mean`, `_p50` and `_p99` fields
    /// (empty histograms only emit `_count`).
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for (name, v) in &self.counters {
            out.push((name.clone(), *v as f64));
        }
        for (name, v) in &self.gauges {
            out.push((name.clone(), *v as f64));
        }
        out.extend(self.histogram_stats());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_invertible() {
        let mut values: Vec<u64> = Vec::new();
        for shift in 0..63u32 {
            for off in [0u64, 1, 3] {
                values.push((1u64 << shift).saturating_add(off));
            }
        }
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx >= last, "bucket index must be monotone in value (v={v})");
            last = idx;
            assert!(bucket_lower(idx) <= v, "lower bound {} > value {v}", bucket_lower(idx));
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn exact_small_values() {
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_mid(v as usize), v);
        }
    }

    #[test]
    fn counters_gauges_histograms_snapshot() {
        let mut m = MetricsRegistry::with_capacity(8);
        let c = m.counter("events");
        let g = m.gauge("depth_peak");
        let h = m.histogram("latency_us");
        m.inc(c, 3);
        m.inc(c, 2);
        m.raise(g, 10);
        m.raise(g, 4); // lower: ignored
        for v in [10u64, 20, 30, 1000] {
            m.observe(h, v);
        }
        assert_eq!(m.counter_value(c), 5);
        let snap = m.snapshot();
        let get = |k: &str| snap.iter().find(|(n, _)| n == k).map(|(_, v)| *v).unwrap();
        assert_eq!(get("events"), 5.0);
        assert_eq!(get("depth_peak"), 10.0);
        assert_eq!(get("latency_us_count"), 4.0);
        assert_eq!(get("latency_us_min"), 10.0);
        assert_eq!(get("latency_us_max"), 1000.0);
        // p50 lands in the bucket containing 20 (bucket width 4 there).
        assert!((get("latency_us_p50") - 20.0).abs() <= 4.0);
    }

    #[test]
    #[should_panic(expected = "capacity exhausted")]
    fn registration_past_capacity_panics() {
        let mut m = MetricsRegistry::with_capacity(1);
        m.counter("a");
        m.counter("b");
    }
}
