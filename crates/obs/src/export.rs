//! Trace export: Chrome-trace-event JSON (Perfetto-loadable) and JSONL.
//!
//! Both emitters are pure functions of the recorded events: sources are
//! merged in `(time, source rank, sequence)` order, timestamps are sim
//! microseconds, and no wall-clock or thread-dependent state is
//! consulted, so the output bytes are identical for identical runs.
//!
//! The Chrome format puts every source on its own named track (one
//! `thread_name` metadata event per source). Ordinary events render as
//! instant events (`"ph":"i"`); CUBIC cap updates additionally render as
//! counter events (`"ph":"C"`) so Perfetto draws the cap trajectory of
//! each throttled VM as a stepped line.

use crate::flight::{FlightEvent, FlightRecorder, Record};
use crate::metrics::MetricsRegistry;
use std::fmt::Write as _;

/// One track in an exported trace: a display name, a stable rank used to
/// break timestamp ties deterministically, and the retained events.
#[derive(Debug)]
pub struct ExportSource {
    /// Track name shown in the viewer (e.g. `server0`, `ctrl`).
    pub name: String,
    /// Tie-break rank; also the Chrome `tid`. Must be unique per source.
    pub rank: u32,
    /// Retained events, oldest first.
    pub records: Vec<Record>,
}

impl ExportSource {
    /// Snapshots a recorder into an export source.
    pub fn from_recorder(rank: u32, name: &str, recorder: &FlightRecorder) -> Self {
        ExportSource { name: name.to_string(), rank, records: recorder.iter().copied().collect() }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Merges sources into one deterministic `(t, rank, seq)`-ordered list of
/// `(rank index, record)` pairs.
fn merge(sources: &[ExportSource]) -> Vec<(usize, Record)> {
    let mut all: Vec<(usize, Record)> = Vec::new();
    for (i, src) in sources.iter().enumerate() {
        all.extend(src.records.iter().map(|r| (i, *r)));
    }
    all.sort_by_key(|&(i, r)| (r.t, sources[i].rank, r.seq));
    all
}

/// Renders a finite f64 compactly; non-finite values become 0 (JSON has
/// no NaN/Inf literals).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Decoded text of the newest `n` merged events, one per line prefixed
/// with its track name — what golden-trace failures dump.
pub fn merged_dump(sources: &[ExportSource], n: usize) -> String {
    let all = merge(sources);
    let skip = all.len().saturating_sub(n);
    let mut out = String::new();
    for &(i, ref rec) in all.iter().skip(skip) {
        let _ = writeln!(out, "[{}] {}", sources[i].name, rec);
    }
    out
}

/// Renders sources as Chrome-trace-event JSON (the `traceEvents` object
/// form), loadable in Perfetto / `chrome://tracing`.
pub fn chrome_trace(sources: &[ExportSource]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let push = |out: &mut String, line: &str, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(line);
    };

    let mut by_rank: Vec<&ExportSource> = sources.iter().collect();
    by_rank.sort_by_key(|s| s.rank);
    for src in &by_rank {
        let mut name = String::new();
        escape(&src.name, &mut name);
        let line = format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            src.rank, name
        );
        push(&mut out, &line, &mut first);
    }

    for (i, rec) in merge(sources) {
        let tid = sources[i].rank;
        let mut name = String::new();
        escape(&rec.event.to_string(), &mut name);
        let line = format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{}}}",
            name, tid, rec.t
        );
        push(&mut out, &line, &mut first);
        if let FlightEvent::CapUpdate { server, vm, resource, level } = rec.event {
            let line = format!(
                "{{\"name\":\"cap s{} vm{} {}\",\"ph\":\"C\",\"pid\":1,\"tid\":{},\"ts\":{},\
                 \"args\":{{\"level\":{}}}}}",
                server,
                vm,
                resource,
                tid,
                rec.t,
                json_num(level)
            );
            push(&mut out, &line, &mut first);
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Renders a registry in the Prometheus text exposition format.
///
/// Deterministic: metrics are emitted sorted by name with a `# TYPE` line
/// each, and values use the same shortest-round-trip `Display` as the
/// decision trace, so identical registries produce identical bytes.
/// Counters keep their registered type; gauges and flattened histogram
/// statistics (`_count`, `_min`, `_max`, `_mean`, `_p50`, `_p99`) are
/// exposed as gauges, matching how `metrics_snapshot()` consumers already
/// interpret them.
pub fn prometheus_text(reg: &MetricsRegistry) -> String {
    let mut entries: Vec<(String, String, f64)> = Vec::new();
    for (name, v) in reg.counters() {
        entries.push((name.to_string(), "counter".to_string(), v as f64));
    }
    for (name, v) in reg.gauges() {
        entries.push((name.to_string(), "gauge".to_string(), v as f64));
    }
    for (name, v) in reg.histogram_stats() {
        entries.push((name, "gauge".to_string(), v));
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    for (name, kind, value) in entries {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        let _ = writeln!(out, "{name} {}", json_num(value));
    }
    out
}

/// Renders sources as JSONL: one JSON object per event, merged in
/// deterministic order.
pub fn jsonl(sources: &[ExportSource]) -> String {
    let mut out = String::new();
    for (i, rec) in merge(sources) {
        let mut track = String::new();
        escape(&sources[i].name, &mut track);
        let mut event = String::new();
        escape(&rec.event.to_string(), &mut event);
        let _ = writeln!(
            out,
            "{{\"ts\":{},\"track\":\"{}\",\"seq\":{},\"event\":\"{}\"}}",
            rec.t, track, rec.seq, event
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::Resource;

    fn sample_sources() -> Vec<ExportSource> {
        let mut a = FlightRecorder::with_capacity(8);
        a.record(10, FlightEvent::DetectOnset { server: 0, io: true, cpu: false });
        a.record(
            30,
            FlightEvent::CapUpdate { server: 0, vm: 7, resource: Resource::Io, level: 0.25 },
        );
        let mut b = FlightRecorder::with_capacity(8);
        b.record(20, FlightEvent::Election { replica: 1, round: 2 });
        b.record(10, FlightEvent::ReplicaDown { replica: 0 });
        vec![
            ExportSource::from_recorder(0, "server0", &a),
            ExportSource::from_recorder(1, "ctrl", &b),
        ]
    }

    #[test]
    fn chrome_trace_is_valid_shape_and_ordered() {
        let json = chrome_trace(&sample_sources());
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.ends_with("]}\n"));
        // Track metadata present for both sources.
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"server0\""));
        assert!(json.contains("\"ctrl\""));
        // Cap update also emits a counter event.
        assert!(json.contains("\"ph\":\"C\""));
        // Merge order: t=10 rank0 before t=10 rank1 before t=20 before t=30.
        let i_detect = json.find("detect-onset").unwrap();
        let i_down = json.find("replica-down").unwrap();
        let i_elect = json.find("elect m1").unwrap();
        let i_cap = json.find("cap s0 vm7").unwrap();
        assert!(i_detect < i_down && i_down < i_elect && i_elect < i_cap);
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let text = jsonl(&sample_sources());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in lines {
            assert!(line.starts_with("{\"ts\":"));
            assert!(line.ends_with("\"}"));
        }
    }

    #[test]
    fn migration_events_render_in_both_exports() {
        let mut fr = FlightRecorder::with_capacity(8);
        fr.record(100, FlightEvent::MigrationStart { vm: 12, from: 0, to: 1 });
        fr.record(900, FlightEvent::MigrationStopCopy { vm: 12, from: 0, to: 1 });
        fr.record(950, FlightEvent::MigrationComplete { vm: 12, from: 0, to: 1 });
        let sources = vec![ExportSource::from_recorder(0, "ctrl", &fr)];
        let json = chrome_trace(&sources);
        for needle in [
            "migrate-start vm12 s0->s1",
            "migrate-stopcopy vm12 s0->s1",
            "migrate-done vm12 s0->s1",
        ] {
            assert!(json.contains(needle), "chrome trace missing {needle}");
            assert!(jsonl(&sources).contains(needle), "jsonl missing {needle}");
        }
        let i_start = json.find("migrate-start").unwrap();
        let i_stop = json.find("migrate-stopcopy").unwrap();
        let i_done = json.find("migrate-done").unwrap();
        assert!(i_start < i_stop && i_stop < i_done);
    }

    #[test]
    fn telemetry_events_render_in_both_exports() {
        let mut fr = FlightRecorder::with_capacity(8);
        fr.record(100, FlightEvent::FlushBatch { server: 0, count: 12 });
        fr.record(100, FlightEvent::SampleIngested { server: 0, vm: 3 });
        fr.record(200, FlightEvent::SampleDropped { server: 0, vm: 7, count: 5 });
        let sources = vec![ExportSource::from_recorder(0, "server0", &fr)];
        let json = chrome_trace(&sources);
        for needle in ["flush s0 n=12", "sample-ingest s0 vm3", "sample-drop s0 vm7 n=5"] {
            assert!(json.contains(needle), "chrome trace missing {needle}");
            assert!(jsonl(&sources).contains(needle), "jsonl missing {needle}");
        }
    }

    #[test]
    fn prometheus_text_is_byte_stable() {
        let build = || {
            let mut m = MetricsRegistry::with_capacity(8);
            let c = m.counter("ingest_recorded");
            let c2 = m.counter("telemetry_teed_samples");
            let g = m.gauge("shards");
            let h = m.histogram("flush_batch");
            m.inc(c, 41);
            m.inc(c2, 7);
            m.set(g, 4);
            m.observe(h, 12);
            m.observe(h, 12);
            m
        };
        let text = prometheus_text(&build());
        assert_eq!(
            text,
            "# TYPE flush_batch_count gauge\n\
             flush_batch_count 2\n\
             # TYPE flush_batch_max gauge\n\
             flush_batch_max 12\n\
             # TYPE flush_batch_mean gauge\n\
             flush_batch_mean 12\n\
             # TYPE flush_batch_min gauge\n\
             flush_batch_min 12\n\
             # TYPE flush_batch_p50 gauge\n\
             flush_batch_p50 13\n\
             # TYPE flush_batch_p99 gauge\n\
             flush_batch_p99 13\n\
             # TYPE ingest_recorded counter\n\
             ingest_recorded 41\n\
             # TYPE shards gauge\n\
             shards 4\n\
             # TYPE telemetry_teed_samples counter\n\
             telemetry_teed_samples 7\n"
        );
        assert_eq!(text, prometheus_text(&build()), "byte-stable across builds");
    }

    #[test]
    fn export_is_deterministic() {
        let a = chrome_trace(&sample_sources());
        let b = chrome_trace(&sample_sources());
        assert_eq!(a, b);
        assert_eq!(jsonl(&sample_sources()), jsonl(&sample_sources()));
    }
}
