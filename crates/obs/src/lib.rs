//! Deterministic observability for the PerfCloud testbed.
//!
//! Three pieces, all dependency-free so every crate in the workspace —
//! including the bottom-of-stack simulation engine — can use them:
//!
//! - [`metrics`]: a fixed-capacity registry of counters, gauges and
//!   log-linear histograms. All record-path arithmetic is u64 integer
//!   math; after construction no path allocates. Snapshots render to the
//!   same flat `(name, value)` pairs the `BENCH_*.json` records use.
//! - [`flight`]: a bounded ring buffer of typed, `Copy`, sim-time-stamped
//!   events — a flight recorder. Every component that makes decisions
//!   (engine, node manager, control plane, chaos injector) can carry one;
//!   when something diverges, the last N events explain *why*, in
//!   deterministic `(time, seq)` order.
//! - [`export`]: merges any number of recorders into Chrome-trace-event
//!   JSON (loadable in Perfetto, one track per source) or JSONL. Output
//!   depends only on the recorded events, never on wall-clock time or
//!   thread scheduling, so trace files are byte-identical across runs.
//!
//! Time is represented as raw `u64` microseconds (the simulator's native
//! tick); this crate deliberately does not depend on `perfcloud-sim`, so
//! the engine itself can be instrumented.

#![warn(missing_docs)]

pub mod export;
pub mod flight;
pub mod metrics;

pub use export::{chrome_trace, jsonl, merged_dump, prometheus_text, ExportSource};
pub use flight::{FlightEvent, FlightRecorder, Record, Resource, SAMPLE_EVENT_DECIMATION};
pub use metrics::{CounterId, GaugeId, HistogramId, MetricsRegistry};
