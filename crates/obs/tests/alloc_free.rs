//! Proof that recording and metric updates never allocate after init.
//!
//! A counting global allocator wraps the system allocator. The flight
//! recorder reserves its ring at construction; [`FlightRecorder::record`]
//! — including wrap-around overwrites — and every metrics-registry update
//! path must then perform zero heap allocations, so components can record
//! from their hottest loops without perturbing the zero-allocation
//! steady-state proofs elsewhere in the workspace.

use perfcloud_obs::{FlightEvent, FlightRecorder, MetricsRegistry, Resource};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counted(on: bool) {
    COUNTING.with(|c| c.set(on));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn record_path_is_allocation_free_even_across_wraparound() {
    let mut rec = FlightRecorder::with_capacity(256);
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    counted(true);
    // 4x capacity: fills the ring, then overwrites every slot three times.
    for i in 0..1024u64 {
        rec.record(i * 100, FlightEvent::Fire { pending: i });
        rec.record(
            i * 100 + 1,
            FlightEvent::CapUpdate { server: 0, vm: i, resource: Resource::Io, level: 0.5 },
        );
    }
    counted(false);
    let total = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(total, 0, "{total} allocations across 2048 records (expected 0)");
    assert_eq!(rec.iter().count(), 256);
}

#[test]
fn metric_updates_are_allocation_free() {
    let mut m = MetricsRegistry::with_capacity(8);
    let c = m.counter("ops");
    let g = m.gauge("depth");
    let h = m.histogram("latency_us");
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    counted(true);
    for i in 0..10_000u64 {
        m.inc(c, 1);
        m.set(g, i as i64);
        m.observe(h, i);
    }
    counted(false);
    let total = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(total, 0, "{total} allocations across 30000 metric updates (expected 0)");
}
