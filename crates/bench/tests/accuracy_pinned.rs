//! The ISSUE-pinned adversarial pair: a family where the paper pipeline
//! *fails* and an alternative *succeeds*, asserted as a regular test so the
//! contrast cannot silently evaporate under recalibration.
//!
//! The family is `low_signal`: a rate-limited fio antagonist whose across-VM
//! iowait deviation stays below ℋ_io = 10, so the paper's Eq. 1 threshold
//! never trips — detection recall (and hence detect-F1) is 0. The
//! Alioth-style learned monitor leans on the robust (MAD) deviation, which
//! the same episode moves well past its decision surface, and detects it
//! cleanly. Only the two relevant cells are run here; the full 20-cell
//! matrix (and the byte-pinned scoreboard) lives in `accuracy_bench
//! --check`.

use perfcloud_bench::accuracy::{accuracy_scenarios, run_cell};
use perfcloud_core::{DetectorKind, IdentifierKind, PipelineSpec};

#[test]
fn low_signal_defeats_paper_but_not_alioth() {
    let scenarios = accuracy_scenarios();
    let low_signal = scenarios
        .iter()
        .find(|s| s.name == "low_signal")
        .expect("low_signal scenario in the accuracy matrix");

    let paper = run_cell(low_signal, PipelineSpec::paper());
    assert!(
        paper.detect_f1 < 0.5,
        "paper pipeline should miss the sub-threshold antagonist \
         (detect_f1 = {}, expected < 0.5); if the detector or the scenario \
         changed, re-derive the adversarial family",
        paper.detect_f1
    );

    let alioth = run_cell(
        low_signal,
        PipelineSpec { detector: DetectorKind::Alioth, identifier: IdentifierKind::Paper },
    );
    assert!(
        alioth.detect_f1 >= 0.8,
        "alioth detector should catch the sub-threshold antagonist \
         (detect_f1 = {}, expected >= 0.8); recalibrate the weights in \
         pipeline/alioth.rs against the measured features",
        alioth.detect_f1
    );
}
