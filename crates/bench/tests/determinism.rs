//! The parallel sweep must be a pure scheduling optimization: identical
//! results — down to the formatted bytes — no matter the worker count.

use perfcloud_bench::sweep;
use rand::Rng;

/// A stand-in for one sweep repetition: derives its RNG stream purely from
/// (seed, rep) and burns an index-dependent amount of work so threads
/// finish out of order.
fn repetition(seed: u64, rep: usize) -> f64 {
    let factory = sweep::rep_factory(seed, rep);
    let mut rng = factory.stream("load");
    let mut acc = 0.0f64;
    for _ in 0..(rep % 5 + 1) * 2_000 {
        acc += rng.gen_range(0.0..1.0);
    }
    acc
}

#[test]
fn parallel_sweep_output_is_byte_identical_to_sequential() {
    let seed = 0xC0FFEE;
    let sequential = sweep::run_with_threads(24, 1, |rep| repetition(seed, rep));
    for threads in [2, 4, 8] {
        let parallel = sweep::run_with_threads(24, threads, |rep| repetition(seed, rep));
        // Bitwise equality of the floats…
        assert_eq!(sequential, parallel, "{threads} threads diverged");
        // …and byte equality of what a harness would print.
        let seq_text: Vec<String> = sequential.iter().map(|v| format!("{v:.6}")).collect();
        let par_text: Vec<String> = parallel.iter().map(|v| format!("{v:.6}")).collect();
        assert_eq!(seq_text, par_text);
    }
}

#[test]
fn repetition_streams_do_not_depend_on_execution_order() {
    let seed = 42;
    // Compute rep 7 alone vs. as part of a full sweep: same value.
    let alone = repetition(seed, 7);
    let swept = sweep::run_with_threads(12, 4, |rep| repetition(seed, rep));
    assert_eq!(alone.to_bits(), swept[7].to_bits());
}
