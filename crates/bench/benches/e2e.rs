//! End-to-end simulation throughput: one tick of the paper's small-scale
//! experiment (12-node cluster + four antagonists + a Spark job under
//! PerfCloud control) and a complete short terasort run.

use criterion::{criterion_group, criterion_main, Criterion};
use perfcloud_cluster::{
    AntagonistKind, AntagonistPlacement, ClusterSpec, Experiment, ExperimentConfig, Mitigation,
};
use perfcloud_core::PerfCloudConfig;
use perfcloud_frameworks::Benchmark;
use perfcloud_sim::SimTime;
use std::hint::black_box;

fn small_scale_experiment() -> Experiment {
    let mut cfg = ExperimentConfig::new(
        ClusterSpec::small_scale(42),
        Mitigation::PerfCloud(PerfCloudConfig::default()),
    );
    cfg.jobs.push((SimTime::from_secs(5), Benchmark::LogisticRegression.job(40)));
    for kind in [
        AntagonistKind::Fio,
        AntagonistKind::Stream,
        AntagonistKind::SysbenchOltp,
        AntagonistKind::SysbenchCpu,
    ] {
        cfg.antagonists
            .push(AntagonistPlacement::pinned(kind, 0).starting_at(SimTime::from_secs(15)));
    }
    cfg.max_sim_time = SimTime::from_secs(7_200);
    Experiment::build(cfg)
}

fn bench_tick(c: &mut Criterion) {
    c.bench_function("e2e/small_scale_tick", |b| {
        let mut e = small_scale_experiment();
        // Warm into the contended regime.
        e.run_for(perfcloud_sim::SimDuration::from_secs(30.0));
        b.iter(|| {
            e.step_tick();
            black_box(e.now())
        })
    });
}

fn bench_full_job(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e");
    g.sample_size(10);
    g.bench_function("terasort4_clean_run", |b| {
        b.iter(|| {
            let mut cfg = ExperimentConfig::new(ClusterSpec::small_scale(42), Mitigation::Default);
            cfg.jobs.push((SimTime::from_secs(5), Benchmark::Terasort.job(4)));
            cfg.max_sim_time = SimTime::from_secs(3_600);
            black_box(Experiment::build(cfg).run())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tick, bench_full_job);
criterion_main!(benches);
