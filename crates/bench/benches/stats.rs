//! Microbenchmarks of the statistics kernels on PerfCloud's hot path:
//! Pearson correlation, across-VM deviation and EWMA updates run once per
//! (suspect × resource) per 5-second interval per server.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfcloud_stats::{
    pearson, pearson_missing_as_zero, population_stddev, BoxplotSummary, Ewma, RollingPearson,
};
use std::hint::black_box;

fn series(n: usize, phase: f64) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.37 + phase).sin() * 5.0 + i as f64 * 0.01).collect()
}

fn bench_pearson(c: &mut Criterion) {
    let mut g = c.benchmark_group("pearson");
    for n in [8usize, 24, 64, 256] {
        let x = series(n, 0.0);
        let y = series(n, 1.0);
        g.bench_with_input(BenchmarkId::new("plain", n), &n, |b, _| {
            b.iter(|| pearson(black_box(&x), black_box(&y)))
        });
        let xo: Vec<Option<f64>> =
            x.iter().enumerate().map(|(i, &v)| (i % 5 != 0).then_some(v)).collect();
        let yo: Vec<Option<f64>> =
            y.iter().enumerate().map(|(i, &v)| (i % 7 != 0).then_some(v)).collect();
        g.bench_with_input(BenchmarkId::new("missing_as_zero", n), &n, |b, _| {
            b.iter(|| pearson_missing_as_zero(black_box(&xo), black_box(&yo)))
        });
    }
    g.finish();
}

/// The identifier's per-tick work, old vs new: batch recomputation over the
/// trailing window after every new sample vs one O(1) rolling push.
fn bench_identification_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("identification_tick");
    for window in [24usize, 64] {
        let x = series(window * 4, 0.0);
        let y = series(window * 4, 1.0);
        let xo: Vec<Option<f64>> =
            x.iter().enumerate().map(|(i, &v)| (i % 5 != 0).then_some(v)).collect();
        let yo: Vec<Option<f64>> =
            y.iter().enumerate().map(|(i, &v)| (i % 7 != 0).then_some(v)).collect();
        g.bench_with_input(BenchmarkId::new("batch_recompute", window), &window, |b, _| {
            // Seed behavior: align the tail and recompute from scratch each tick.
            b.iter(|| {
                let mut last = None;
                for i in window..xo.len() {
                    last = pearson_missing_as_zero(
                        black_box(&xo[i - window..i]),
                        black_box(&yo[i - window..i]),
                    );
                }
                last
            })
        });
        g.bench_with_input(BenchmarkId::new("rolling_push", window), &window, |b, _| {
            b.iter(|| {
                let mut rp = RollingPearson::new(window);
                let mut last = None;
                for i in 0..xo.len() {
                    rp.push(black_box(xo[i]), black_box(yo[i]));
                    last = rp.correlation();
                }
                last
            })
        });
    }
    g.finish();
}

fn bench_deviation(c: &mut Criterion) {
    let mut g = c.benchmark_group("deviation");
    for n in [10usize, 150] {
        let values = series(n, 0.3);
        g.bench_with_input(BenchmarkId::new("population_stddev", n), &n, |b, _| {
            b.iter(|| population_stddev(black_box(&values)))
        });
    }
    g.finish();
}

fn bench_ewma(c: &mut Criterion) {
    c.bench_function("ewma/update_1000", |b| {
        let xs = series(1000, 0.9);
        b.iter(|| {
            let mut e = Ewma::new(0.5);
            for &x in &xs {
                black_box(e.update(x));
            }
            e.value()
        })
    });
}

fn bench_boxplot(c: &mut Criterion) {
    let xs = series(200, 0.1);
    c.bench_function("boxplot/200", |b| b.iter(|| BoxplotSummary::from_data(black_box(&xs))));
}

criterion_group!(
    benches,
    bench_pearson,
    bench_identification_tick,
    bench_deviation,
    bench_ewma,
    bench_boxplot
);
criterion_main!(benches);
