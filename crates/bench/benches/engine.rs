//! Throughput of the simulation substrate: event calendar operations and
//! physical-server ticks at various VM counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfcloud_host::{PhysicalServer, ServerConfig, ServerId, VmConfig, VmId};
use perfcloud_sim::{RngFactory, SimDuration, SimTime, Simulation};
use perfcloud_workloads::{FioRandRead, Stream};
use std::hint::black_box;

fn bench_event_calendar(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    for n in [1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::new("schedule_and_fire", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Simulation::new(0u64);
                for i in 0..n {
                    sim.schedule_at(SimTime::from_micros(((i * 7919) % 100_000) as u64), |w, _| {
                        *w += 1
                    });
                }
                sim.run();
                black_box(sim.into_world())
            })
        });
    }
    g.finish();
}

/// The simulator's real calendar pattern: handlers capture a few words
/// (task/VM ids, amounts), and a third of the scheduled events — timeouts,
/// speculative retries — are cancelled before they fire.
fn bench_cancel_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    for n in [1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::new("schedule_cancel_churn", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Simulation::new(0u64);
                for i in 0..n {
                    let a = i as u64;
                    let bb = (i * 31) as u64;
                    let cc = (i * 17) as u64;
                    let id = sim.schedule_at(
                        SimTime::from_micros(((i * 7919) % 100_000) as u64),
                        move |w, _| *w += a ^ bb ^ cc,
                    );
                    if i % 3 == 0 {
                        sim.cancel(id);
                    }
                }
                sim.run();
                black_box(sim.into_world())
            })
        });
    }
    g.finish();
}

fn server_with_vms(n: u32) -> PhysicalServer {
    let mut s = PhysicalServer::new(
        ServerId(0),
        ServerConfig::chameleon(),
        RngFactory::new(5),
        SimDuration::from_millis(100),
    );
    for i in 0..n {
        s.add_vm(VmId(i), VmConfig::high_priority());
        if i % 2 == 0 {
            s.spawn(VmId(i), Box::new(FioRandRead::with_rate(500.0, 4096.0, None)));
        } else {
            s.spawn(VmId(i), Box::new(Stream::with_threads(2, 1e9, None)));
        }
    }
    s
}

fn bench_server_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("server_tick");
    for n in [4u32, 12, 48] {
        g.bench_with_input(BenchmarkId::new("vms", n), &n, |b, &n| {
            let mut s = server_with_vms(n);
            b.iter(|| black_box(s.tick(SimDuration::from_millis(100))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_event_calendar, bench_cancel_churn, bench_server_tick);
criterion_main!(benches);
