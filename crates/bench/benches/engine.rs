//! Throughput of the simulation substrate: event calendar operations and
//! physical-server ticks at various VM counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfcloud_host::{PhysicalServer, ServerConfig, ServerId, VmConfig, VmId};
use perfcloud_sim::wheel::{Entry, TimerWheel};
use perfcloud_sim::{EventId, RngFactory, SimDuration, SimTime, Simulation};
use perfcloud_workloads::{FioRandRead, Stream};
use std::collections::BinaryHeap;
use std::hint::black_box;

fn bench_event_calendar(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    for n in [1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::new("schedule_and_fire", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Simulation::new(0u64);
                for i in 0..n {
                    sim.schedule_at(SimTime::from_micros(((i * 7919) % 100_000) as u64), |w, _| {
                        *w += 1
                    });
                }
                sim.run();
                black_box(sim.into_world())
            })
        });
    }
    g.finish();
}

/// The simulator's real calendar pattern: handlers capture a few words
/// (task/VM ids, amounts), and a third of the scheduled events — timeouts,
/// speculative retries — are cancelled before they fire.
fn bench_cancel_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    for n in [1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::new("schedule_cancel_churn", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Simulation::new(0u64);
                for i in 0..n {
                    let a = i as u64;
                    let bb = (i * 31) as u64;
                    let cc = (i * 17) as u64;
                    let id = sim.schedule_at(
                        SimTime::from_micros(((i * 7919) % 100_000) as u64),
                        move |w, _| *w += a ^ bb ^ cc,
                    );
                    if i % 3 == 0 {
                        sim.cancel(id);
                    }
                }
                sim.run();
                black_box(sim.into_world())
            })
        });
    }
    g.finish();
}

/// Raw calendar pop/reinsert churn at a fixed pending count: the
/// hierarchical timer wheel against the binary heap it replaced, both on
/// the engine's 24-byte `(time, seq, id)` entry. Mirrors the
/// `engine_bench` binary's comparison points (10k/100k/1M) at criterion's
/// statistical rigor; 1M is left to the binary to keep `cargo bench` quick.
fn bench_wheel_vs_heap(c: &mut Criterion) {
    fn entry(t: u64, seq: u64) -> Entry {
        Entry { time: SimTime::from_micros(t), seq, id: EventId::from_raw(0) }
    }
    let mut xs = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        xs ^= xs << 13;
        xs ^= xs >> 7;
        xs ^= xs << 17;
        xs
    };
    let mut g = c.benchmark_group("calendar_churn");
    for pending in [10_000usize, 100_000] {
        let horizon = pending as u64 * 16;
        g.bench_with_input(BenchmarkId::new("wheel", pending), &pending, |b, &pending| {
            let mut w = TimerWheel::new();
            let mut seq = 0u64;
            for _ in 0..pending {
                w.insert(entry(next() % horizon, seq));
                seq += 1;
            }
            b.iter(|| {
                let e = w.pop().expect("pending count is constant");
                w.insert(entry(e.time.as_micros() + 1 + next() % horizon, seq));
                seq += 1;
                black_box(e.seq)
            })
        });
        g.bench_with_input(BenchmarkId::new("heap", pending), &pending, |b, &pending| {
            let mut h = BinaryHeap::new();
            let mut seq = 0u64;
            for _ in 0..pending {
                h.push(entry(next() % horizon, seq));
                seq += 1;
            }
            b.iter(|| {
                let e = h.pop().expect("pending count is constant");
                h.push(entry(e.time.as_micros() + 1 + next() % horizon, seq));
                seq += 1;
                black_box(e.seq)
            })
        });
    }
    g.finish();
}

fn server_with_vms(n: u32) -> PhysicalServer {
    let mut s = PhysicalServer::new(
        ServerId(0),
        ServerConfig::chameleon(),
        RngFactory::new(5),
        SimDuration::from_millis(100),
    );
    for i in 0..n {
        s.add_vm(VmId(i), VmConfig::high_priority());
        if i % 2 == 0 {
            s.spawn(VmId(i), Box::new(FioRandRead::with_rate(500.0, 4096.0, None)));
        } else {
            s.spawn(VmId(i), Box::new(Stream::with_threads(2, 1e9, None)));
        }
    }
    s
}

fn bench_server_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("server_tick");
    for n in [4u32, 12, 48] {
        g.bench_with_input(BenchmarkId::new("vms", n), &n, |b, &n| {
            let mut s = server_with_vms(n);
            b.iter(|| black_box(s.tick(SimDuration::from_millis(100))))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_event_calendar,
    bench_cancel_churn,
    bench_wheel_vs_heap,
    bench_server_tick
);
criterion_main!(benches);
