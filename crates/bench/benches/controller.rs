//! Controller overhead (paper §IV-D.1): "applying resource caps on a VM
//! takes less than 30 ms … increases linearly with the number of
//! antagonists". Here the analogous costs are the CUBIC step itself and a
//! full node-manager interval over servers with growing antagonist counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfcloud_core::cubic::{CubicController, CubicState};
use perfcloud_core::{AppId, CloudManager, NodeManager, PerfCloudConfig, VmRecord};
use perfcloud_host::{PhysicalServer, Priority, ServerConfig, ServerId, VmConfig, VmId};
use perfcloud_sim::{RngFactory, SimDuration, SimTime};
use perfcloud_workloads::FioRandRead;
use std::hint::black_box;

fn bench_cubic_step(c: &mut Criterion) {
    c.bench_function("cubic/step", |b| {
        let ctrl = CubicController::paper();
        let mut state = CubicState::new();
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(ctrl.step(&mut state, k.is_multiple_of(13)))
        })
    });
}

/// One node-manager interval on a server hosting 4 victims and `n`
/// antagonists, with monitor state warmed up.
fn bench_node_manager(c: &mut Criterion) {
    let mut g = c.benchmark_group("node_manager_step");
    g.sample_size(20);
    for n_antagonists in [1usize, 4, 16] {
        g.bench_with_input(
            BenchmarkId::new("antagonists", n_antagonists),
            &n_antagonists,
            |b, &n| {
                let dt = SimDuration::from_millis(100);
                let mut server = PhysicalServer::new(
                    ServerId(0),
                    ServerConfig::chameleon(),
                    RngFactory::new(9),
                    dt,
                );
                let mut cloud = CloudManager::new();
                for i in 0..4u32 {
                    server.add_vm(VmId(i), VmConfig::high_priority());
                    server.spawn(VmId(i), Box::new(FioRandRead::with_rate(300.0, 4096.0, None)));
                    cloud.register(
                        VmId(i),
                        VmRecord {
                            server: ServerId(0),
                            priority: Priority::High,
                            app: Some(AppId(1)),
                        },
                    );
                }
                for i in 0..n as u32 {
                    let vm = VmId(100 + i);
                    server.add_vm(vm, VmConfig::low_priority());
                    server.spawn(vm, Box::new(FioRandRead::with_rate(2_000.0, 4096.0, None)));
                    cloud.register(
                        vm,
                        VmRecord { server: ServerId(0), priority: Priority::Low, app: None },
                    );
                }
                let mut nm = NodeManager::new(PerfCloudConfig::default());
                // Warm up: a few sampled intervals.
                let mut now = SimTime::ZERO;
                for _ in 0..6 {
                    for _ in 0..50 {
                        server.tick(dt);
                    }
                    now += SimDuration::from_secs(5.0);
                    nm.step(now, &mut server, &mut cloud);
                }
                b.iter(|| {
                    now += SimDuration::from_secs(5.0);
                    black_box(nm.step(now, &mut server, &mut cloud))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_cubic_step, bench_node_manager);
criterion_main!(benches);
