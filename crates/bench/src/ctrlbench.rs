//! Control-plane throughput probe.
//!
//! Drives a full [`ControlPlane`] — three cloud-manager replicas, sixteen
//! server endpoints, a 10 ms ± 2 ms link — through placement publishes,
//! acks and heartbeats over simulated time, and reports **delivered
//! control-plane messages per wall-clock second** into `BENCH_ctrl.json`.
//! The sampling cadence is cranked far above the production default so the
//! measurement is dominated by the message path (network wheel, jitter
//! hashing, epoch stamping, placement apply) rather than by idle ticks.
//! `msgs_per_sec` is the regression-gated headline number.

use crate::benchjson::BenchRecord;
use perfcloud_core::{AppId, CloudManager, NodeManager, PerfCloudConfig, VmRecord};
use perfcloud_ctrl::{ControlPlane, ControlPlaneSpec, LinkSpec};
use perfcloud_host::{Priority, ServerId, VmId};
use perfcloud_sim::faults::FaultScenario;
use perfcloud_sim::{SimDuration, SimTime};
use std::time::Instant;

/// Cloud-manager replicas in the probe deployment.
const MANAGERS: u32 = 3;
/// Server endpoints receiving placement updates.
const SERVERS: usize = 16;
/// VMs registered per server (sets the size of each placement payload).
const VMS_PER_SERVER: u32 = 2;
/// Engine tick driving delivery and replica timers.
const TICK: SimDuration = SimDuration::from_micros(10_000);
/// Placement publish cadence (50× the production 5 s default).
const SAMPLE: SimDuration = SimDuration::from_micros(100_000);
/// Simulated horizon (long enough for ~0.3 s of wall time, so the gate
/// compares stable averages rather than timer noise).
const HORIZON: SimTime = SimTime::from_secs(3600);

/// Runs the probe and returns the record (not yet written to disk).
pub fn probe() -> BenchRecord {
    let spec = ControlPlaneSpec {
        managers: MANAGERS,
        link: LinkSpec {
            latency: SimDuration::from_micros(10_000),
            jitter: SimDuration::from_micros(2_000),
        },
        ..ControlPlaneSpec::default()
    };
    let mut cloud = CloudManager::new();
    for s in 0..SERVERS as u32 {
        for v in 0..VMS_PER_SERVER {
            cloud.register(
                VmId(s * VMS_PER_SERVER + v),
                VmRecord {
                    server: ServerId(s),
                    priority: if v == 0 { Priority::High } else { Priority::Low },
                    app: (v == 0).then_some(AppId(s)),
                },
            );
        }
    }
    let mut nms: Vec<NodeManager> =
        (0..SERVERS).map(|_| NodeManager::new(PerfCloudConfig::default())).collect();
    let ids = (0..SERVERS).map(|i| ServerId(i as u32)).collect();
    let mut plane = ControlPlane::new(spec, 0xC7B1, FaultScenario::default(), ids, SAMPLE);

    let start = Instant::now();
    let mut now = SimTime::ZERO;
    let mut next_sample = SimTime::ZERO;
    while now <= HORIZON {
        if now >= next_sample {
            plane.begin_interval(now, &cloud);
            next_sample = next_sample.saturating_add(SAMPLE);
        }
        plane.tick(now, &mut cloud, &mut nms);
        now = now.saturating_add(TICK);
    }
    let wall_seconds = start.elapsed().as_secs_f64();

    let stats = plane.net_stats();
    let mut record = BenchRecord::wall("ctrl", wall_seconds);
    record.extras.push(("messages_sent".into(), stats.sent as f64));
    record.extras.push(("messages_delivered".into(), stats.delivered as f64));
    record.extras.push(("msgs_per_sec".into(), stats.delivered as f64 / wall_seconds));
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_counts_and_gated_field_are_wired() {
        let record = probe();
        let sent = extra(&record, "messages_sent");
        let delivered = extra(&record, "messages_delivered");
        // Publishes alone: one update per server per interval, each acked.
        let intervals = (HORIZON.as_micros() / SAMPLE.as_micros() + 1) as f64;
        assert!(sent >= intervals * SERVERS as f64 * 2.0, "sent {sent} over {intervals} intervals");
        // A loss-free link delivers everything that was in flight.
        assert!(delivered >= sent * 0.99, "delivered {delivered} of {sent}");
        assert!(extra(&record, "msgs_per_sec") > 0.0);
        assert!(record.to_json().contains("\"msgs_per_sec\""));
    }

    fn extra(record: &BenchRecord, key: &str) -> f64 {
        record
            .extras
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing extra {key}"))
    }
}
