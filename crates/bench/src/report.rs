//! Plain-text tables for harness output.

/// A simple aligned-column table printer.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; shorter rows are padded with blanks.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        while cells.len() < self.headers.len() {
            cells.push(String::new());
        }
        self.rows.push(cells);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().take(ncols).enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().take(widths.len()).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
        // All data lines align the second column.
        let col = lines[2].find('1').unwrap();
        assert_eq!(lines[3].find("12345").unwrap(), col);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f3(1.2345), "1.234");
        assert_eq!(pct(0.3333), "33%");
    }
}
