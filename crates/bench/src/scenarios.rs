//! Canned paper scenarios shared by the figure binaries.

use perfcloud_cluster::{
    AntagonistKind, AntagonistPlacement, ClusterSpec, Experiment, ExperimentConfig,
    ExperimentResult, Mitigation,
};
use perfcloud_frameworks::Benchmark;
use perfcloud_sim::{SimDuration, SimTime};

/// Master seed used by the harnesses (override with `PERFCLOUD_SEED`).
pub fn base_seed() -> u64 {
    std::env::var("PERFCLOUD_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// When the job is submitted in small-scale scenarios.
pub const JOB_START: SimTime = SimTime::from_secs(5);

/// When antagonists arrive in detection/control scenarios — after the
/// application has established a couple of baseline samples, as in the
/// paper's case studies (its Fig. 10 shows throttling beginning ≈ 15 s in).
pub const ANTAGONIST_ONSET: SimTime = SimTime::from_secs(15);

/// Builds the small-scale (12-node, single-server) experiment with one job
/// and the given antagonists.
pub fn small_scale(
    bench: Benchmark,
    tasks: usize,
    antagonists: Vec<AntagonistPlacement>,
    mitigation: Mitigation,
    seed: u64,
) -> Experiment {
    small_scale_spec(bench.job(tasks), antagonists, mitigation, seed)
}

/// Like [`small_scale`] but with an explicit job spec (e.g. the paper's
/// terasort with exactly 10 maps and 10 reduces).
pub fn small_scale_spec(
    spec: perfcloud_frameworks::JobSpec,
    antagonists: Vec<AntagonistPlacement>,
    mitigation: Mitigation,
    seed: u64,
) -> Experiment {
    let mut cfg = ExperimentConfig::new(ClusterSpec::small_scale(seed), mitigation);
    cfg.jobs.push((JOB_START, spec));
    cfg.antagonists = antagonists;
    cfg.max_sim_time = SimTime::from_secs(7_200);
    Experiment::build(cfg)
}

/// Interference-free JCT of one benchmark at the given size. Served from
/// the cross-figure baseline cache when `run_all` has precomputed it (the
/// cached value is bit-identical to a fresh computation).
pub fn solo_jct(bench: Benchmark, tasks: usize, seed: u64) -> f64 {
    if let Some(v) = crate::baseline::cached(&crate::baseline::solo_jct_key(bench, tasks, seed)) {
        return v;
    }
    small_scale(bench, tasks, Vec::new(), Mitigation::Default, seed).run().sole_jct()
}

/// JCT with antagonists pinned from t = 0 (degradation scenarios: the
/// colocated workload runs for the whole job, as in Figs. 1–2).
pub fn contended_run(
    bench: Benchmark,
    tasks: usize,
    kinds: &[AntagonistKind],
    mitigation: Mitigation,
    seed: u64,
) -> ExperimentResult {
    let placements = kinds.iter().map(|&k| AntagonistPlacement::pinned(k, 0)).collect();
    small_scale(bench, tasks, placements, mitigation, seed).run()
}

/// The fio random-read benchmark running alone on an otherwise empty
/// Chameleon server: its solo IOPS and bytes/s (the normalization reference
/// for Figs. 1 and 9).
pub fn fio_solo_reference(seed: u64) -> (f64, f64) {
    let (iops_key, bps_key) = crate::baseline::fio_keys(seed);
    if let (Some(iops), Some(bps)) =
        (crate::baseline::cached(&iops_key), crate::baseline::cached(&bps_key))
    {
        return (iops, bps);
    }
    let mut cfg = ExperimentConfig::new(ClusterSpec::small_scale(seed), Mitigation::Default);
    // No workers do anything; just the antagonist.
    cfg.antagonists.push(AntagonistPlacement::pinned(AntagonistKind::Fio, 0));
    cfg.max_sim_time = SimTime::from_secs(60);
    let r = Experiment::build(cfg).run();
    let a = &r.antagonists[0];
    let secs = r.duration.as_secs_f64();
    (a.io_ops / secs, a.io_bytes / secs)
}

/// The STREAM benchmark running alone: solo CPU cores used (reference for
/// static CPU caps).
pub fn stream_solo_cores(seed: u64) -> f64 {
    if let Some(v) = crate::baseline::cached(&crate::baseline::stream_key(seed)) {
        return v;
    }
    let mut cfg = ExperimentConfig::new(ClusterSpec::small_scale(seed), Mitigation::Default);
    cfg.antagonists.push(AntagonistPlacement::pinned(AntagonistKind::Stream, 0));
    cfg.max_sim_time = SimTime::from_secs(60);
    let r = Experiment::build(cfg).run();
    r.antagonists[0].cpu_time / r.duration.as_secs_f64()
}

/// The four-antagonist colocation of the paper's §IV-B (fio + STREAM +
/// sysbench oltp + sysbench cpu on the job's server), arriving at
/// [`ANTAGONIST_ONSET`].
pub fn four_antagonists() -> Vec<AntagonistPlacement> {
    [
        AntagonistKind::Fio,
        AntagonistKind::Stream,
        AntagonistKind::SysbenchOltp,
        AntagonistKind::SysbenchCpu,
    ]
    .into_iter()
    .map(|k| AntagonistPlacement::pinned(k, 0).starting_at(ANTAGONIST_ONSET))
    .collect()
}

/// Runs an experiment for a fixed horizon even after jobs drain (used when
/// harvesting time series).
pub fn run_for_horizon(e: &mut Experiment, horizon: SimDuration) -> ExperimentResult {
    e.run_for(horizon);
    e.result()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_jcts_are_plausible() {
        let jct = solo_jct(Benchmark::Terasort, 4, 7);
        assert!(jct > 5.0 && jct < 400.0, "terasort-4 solo {jct}");
    }

    #[test]
    fn fio_reference_is_positive() {
        let (iops, bps) = fio_solo_reference(7);
        assert!(iops > 1_000.0, "{iops}");
        assert!(bps > 1e6);
    }

    #[test]
    fn stream_reference_uses_its_vcpus() {
        let cores = stream_solo_cores(7);
        assert!(cores > 0.5 && cores <= 2.01, "{cores}");
    }

    #[test]
    fn four_antagonists_cover_all_kinds() {
        let v = four_antagonists();
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|p| p.start == ANTAGONIST_ONSET));
    }
}
