//! Ground-truth accuracy scoreboard for detection/identification pipelines.
//!
//! Antagonists are injected, so the truth behind every decision is known
//! exactly. This harness runs every (detector × identifier) pipeline over a
//! scenario matrix — the clean paper case study plus adversarial families
//! engineered at the paper pipeline's documented weaknesses — scores each
//! cell against the injected schedule, and renders the results as
//! `BENCH_accuracy.json` plus a human-readable table. The scoreboard is the
//! measurement substrate future detector changes are judged against: the
//! committed copy in `tests/golden/accuracy_scoreboard.trace` is checked
//! byte-for-byte by `accuracy_bench --check` (BLESS=1 regenerates), and
//! [`gate`] enforces the semantic floor — the paper pipeline must stay
//! strong on the clean scenario, and the alternatives must strictly beat it
//! on at least two adversarial families.
//!
//! ## Scoring semantics
//!
//! PerfCloud is a *closed loop*: once an antagonist is throttled the
//! contention it caused disappears, so a correct pipeline flags only a
//! handful of steps per episode and then (correctly) reports calm while the
//! antagonist is still running under caps. Step-wise recall would punish
//! exactly the pipelines that mitigate fastest. The scoreboard therefore
//! scores **event-wise recall** (each injected antagonist counts as
//! detected/identified if at least one step caught it inside its active
//! window) and **step-wise precision** (every flagged step outside a truth
//! window, or naming an innocent VM, counts against the pipeline), plus the
//! median time from workload onset to the first detection and the fraction
//! of cap-steps applied to VMs that were never guilty of that resource.

use crate::report::Table;
use crate::scenarios::JOB_START;
use crate::sweep;
use perfcloud_cluster::labels::{parse_trace, GroundTruth, StepObservation, TruthEntry};
use perfcloud_cluster::{
    AntagonistKind, AntagonistPlacement, ClusterSpec, Experiment, ExperimentConfig, Mitigation,
};
use perfcloud_core::antagonist::Resource;
use perfcloud_core::{DetectorKind, IdentifierKind, PerfCloudConfig, PipelineSpec};
use perfcloud_frameworks::Benchmark;
use perfcloud_sim::{FaultKind, FaultRule, FaultScenario, SimDuration, SimTime};
use perfcloud_stats::median;
use std::fmt::Write as _;

/// Master seed baked into every accuracy scenario. A literal, like
/// [`crate::golden::GOLDEN_SEED`], so the scoreboard does not follow
/// `PERFCLOUD_SEED`.
pub const ACCURACY_SEED: u64 = 42;

/// Grace period (seconds) after an antagonist stops during which detection
/// flags still count as true: the monitor's EWMA decays over a few sampling
/// intervals, so the signal lags the workload by design.
pub const DETECT_GRACE_S: f64 = 30.0;

/// Grace period (seconds) after an antagonist stops during which naming it
/// still counts as true: the correlation windows retain `corr_window`
/// intervals (24 × 5 s) of evidence, so an identification can outlive the
/// workload by up to the window span without being wrong.
pub const IDENT_GRACE_S: f64 = 130.0;

/// All pipelines the scoreboard exercises: the 2 × 2 (detector ×
/// identifier) grid.
pub fn pipelines() -> Vec<PipelineSpec> {
    let mut out = Vec::new();
    for detector in [DetectorKind::Paper, DetectorKind::Alioth] {
        for identifier in [IdentifierKind::Paper, IdentifierKind::Panda] {
            out.push(PipelineSpec { detector, identifier });
        }
    }
    out
}

/// Which metric a scenario family is *about* — the one the gate compares
/// across pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Headline {
    /// Detection-level family: compare `detect_f1`.
    Detect,
    /// Identification-level family: compare (identification) `f1`.
    Ident,
}

/// One scenario family of the accuracy matrix.
pub struct ScenarioSpec {
    /// Scoreboard row name.
    pub name: &'static str,
    /// Whether the family is engineered at a pipeline weakness (the gate's
    /// "alternatives must beat paper" clause quantifies over these).
    pub adversarial: bool,
    /// The metric this family is scored on by the gate.
    pub headline: Headline,
    /// Builds the experiment configuration (pipeline filled in per cell).
    pub build: fn() -> ExperimentConfig,
}

/// When antagonists arrive in the accuracy scenarios.
const ONSET: SimTime = SimTime::from_secs(15);
/// How long bounded antagonists run.
const EPISODE: SimDuration = SimDuration::from_millis(150_000);

/// The shared testbed: the small-scale cluster running one 20-task
/// terasort — the same shape as the golden chaos testbed.
fn base_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(
        ClusterSpec::small_scale(ACCURACY_SEED),
        Mitigation::PerfCloud(PerfCloudConfig::default()),
    );
    cfg.jobs.push((JOB_START, Benchmark::Terasort.job(20)));
    cfg.max_sim_time = SimTime::from_secs(7_200);
    cfg
}

fn clean() -> ExperimentConfig {
    let mut cfg = base_config();
    cfg.antagonists.push(
        AntagonistPlacement::pinned(AntagonistKind::Fio, 0).starting_at(ONSET).lasting(EPISODE),
    );
    cfg
}

/// Noisy counters: the clean scenario with CPI samples spiked 50× at 35%
/// probability (a minority of VMs per interval). The paper's moment
/// deviation explodes on every spiked interval and flags phantom processor
/// contention; a robust detector should not.
fn noisy_counters() -> ExperimentConfig {
    let mut cfg = clean();
    cfg.faults = Some(
        FaultScenario::named("accuracy-noisy").rule(
            FaultRule::new("spike-cpi", FaultKind::CorruptSpike { factor: 50.0 })
                .on_metric(perfcloud_sim::MetricClass::Cpi)
                .window(SimTime::from_secs(25), SimTime::from_secs(150))
                .with_probability(0.35),
        ),
    );
    cfg
}

/// Correlated innocent: a low-rate fio bystander starts at the same instant
/// as the heavy antagonist. Its usage series steps up exactly when the
/// victim's deviation does, so scale-invariant Pearson convicts it; a
/// magnitude-aware identifier should not.
fn correlated_innocent() -> ExperimentConfig {
    let mut cfg = clean();
    cfg.antagonists.push(
        AntagonistPlacement::pinned(AntagonistKind::FioRate(250.0), 0)
            .starting_at(ONSET)
            .lasting(EPISODE),
    );
    cfg
}

/// Low-signal antagonist: a rate-limited fio heavy enough to degrade the
/// victims (truth says guilty) but whose across-VM deviation stays below
/// the paper's ℋ_io = 10 — the paper detector never fires.
fn low_signal() -> ExperimentConfig {
    let mut cfg = base_config();
    cfg.antagonists.push(
        AntagonistPlacement::pinned(AntagonistKind::FioRate(LOW_SIGNAL_RATE), 0)
            .starting_at(ONSET)
            .lasting(EPISODE),
    );
    cfg
}

/// Submission rate (ops/s) of the low-signal antagonist — calibrated so the
/// paper's io deviation sits in the 1.5–8 band (measured peak 8.0): clearly
/// elevated over the clean baseline's 0.57, clearly below ℋ_io = 10.
pub const LOW_SIGNAL_RATE: f64 = 10_000.0;

/// Multi-antagonist overlap: fio (I/O) at 15 s, STREAM (processor) at 25 s,
/// plus a CPU-compute decoy that contends neither monitored resource. Both
/// real antagonists must be caught on their own resource and the decoy left
/// alone while the episodes overlap. The job is doubled to 40 tasks: a
/// mitigated 20-task terasort finishes ≈ 40 s in, before STREAM's CPI
/// signal (which takes ~25 s of EWMA warm-up to cross any threshold) ever
/// becomes visible.
fn multi_antagonist() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(
        ClusterSpec::small_scale(ACCURACY_SEED),
        Mitigation::PerfCloud(PerfCloudConfig::default()),
    );
    cfg.jobs.push((JOB_START, Benchmark::Terasort.job(40)));
    cfg.max_sim_time = SimTime::from_secs(7_200);
    cfg.antagonists.push(
        AntagonistPlacement::pinned(AntagonistKind::Fio, 0).starting_at(ONSET).lasting(EPISODE),
    );
    cfg.antagonists.push(
        AntagonistPlacement::pinned(AntagonistKind::Stream, 0)
            .starting_at(SimTime::from_secs(25))
            .lasting(EPISODE),
    );
    cfg.antagonists
        .push(AntagonistPlacement::pinned(AntagonistKind::SysbenchCpu, 0).starting_at(ONSET));
    cfg
}

/// The scenario matrix, clean first.
pub fn accuracy_scenarios() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec { name: "clean", adversarial: false, headline: Headline::Ident, build: clean },
        ScenarioSpec {
            name: "noisy_counters",
            adversarial: true,
            headline: Headline::Detect,
            build: noisy_counters,
        },
        ScenarioSpec {
            name: "correlated_innocent",
            adversarial: true,
            headline: Headline::Ident,
            build: correlated_innocent,
        },
        ScenarioSpec {
            name: "low_signal",
            adversarial: true,
            headline: Headline::Detect,
            build: low_signal,
        },
        ScenarioSpec {
            name: "multi_antagonist",
            adversarial: true,
            headline: Headline::Ident,
            build: multi_antagonist,
        },
    ]
}

/// The scores of one (pipeline × scenario) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellScore {
    /// `<detector>/<identifier>`.
    pub pipeline: String,
    /// Scenario family name.
    pub scenario: String,
    /// Identification precision: correctly named VMs / all named VMs, over
    /// every decided step (step-wise).
    pub precision: f64,
    /// Identification recall: injected culprits named at least once inside
    /// their active window (event-wise).
    pub recall: f64,
    /// Harmonic mean of identification precision and recall.
    pub f1: f64,
    /// Detection precision: contended flags raised inside a truth window /
    /// all contended flags (step-wise).
    pub detect_precision: f64,
    /// Detection recall: injected culprits whose (server, resource) was
    /// flagged at least once inside their window (event-wise).
    pub detect_recall: f64,
    /// Harmonic mean of detection precision and recall.
    pub detect_f1: f64,
    /// Median seconds from workload onset to the first matching contended
    /// step, over the culprits that were detected at all; −1 when none were.
    pub ttd_median_s: f64,
    /// Cap-steps applied to VMs never guilty of that resource / all
    /// cap-steps; 0 when nothing was ever capped.
    pub false_throttle_rate: f64,
}

fn f1_of(precision: f64, recall: f64) -> f64 {
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

fn precision_of(tp: u64, flagged: u64) -> f64 {
    if flagged == 0 {
        1.0
    } else {
        tp as f64 / flagged as f64
    }
}

fn entry_active_with_grace(e: &TruthEntry, t: f64, grace: f64) -> bool {
    t >= e.active_from && e.active_until.is_none_or(|end| t <= end + grace)
}

/// Whether any truth entry makes `(server, resource)` genuinely contended
/// at `t`, within `grace` seconds of signal decay.
fn truth_contended(truth: &GroundTruth, server: usize, resource: Resource, t: f64) -> bool {
    truth.entries.iter().any(|e| {
        e.server == server
            && e.resource == Some(resource)
            && entry_active_with_grace(e, t, DETECT_GRACE_S)
    })
}

/// Whether naming `vm` for `resource` at `t` on `server` is correct, within
/// the identification window's retention grace.
fn truth_culprit(truth: &GroundTruth, server: usize, vm: u64, resource: Resource, t: f64) -> bool {
    truth.entries.iter().any(|e| {
        u64::from(e.vm.0) == vm
            && e.server == server
            && e.resource == Some(resource)
            && entry_active_with_grace(e, t, IDENT_GRACE_S)
    })
}

/// Whether `vm` is ever guilty of `resource` on `server` at any time — the
/// false-throttle criterion (capping a true antagonist after its episode is
/// persistent control, not a false throttle).
fn ever_culprit(truth: &GroundTruth, server: usize, vm: u64, resource: Resource) -> bool {
    truth
        .entries
        .iter()
        .any(|e| u64::from(e.vm.0) == vm && e.server == server && e.resource == Some(resource))
}

/// Scores one run's parsed decision trace against its injected truth.
/// Public and pure so the scorer itself is testable on hand-built fixtures
/// with analytically known answers.
pub fn score_steps(truth: &GroundTruth, steps: &[StepObservation]) -> CellScore {
    const RESOURCES: [Resource; 2] = [Resource::Io, Resource::Cpu];

    // Step-wise precision tallies.
    let (mut det_flagged, mut det_tp) = (0u64, 0u64);
    let (mut id_named, mut id_tp) = (0u64, 0u64);
    let (mut cap_steps, mut cap_false) = (0u64, 0u64);
    for s in steps.iter().filter(|s| s.decided) {
        for r in RESOURCES {
            if s.contended(r) {
                det_flagged += 1;
                if truth_contended(truth, s.server, r, s.t) {
                    det_tp += 1;
                }
            }
            for &vm in s.antagonists(r) {
                id_named += 1;
                if truth_culprit(truth, s.server, vm, r, s.t) {
                    id_tp += 1;
                }
            }
            for &(vm, _) in s.caps(r) {
                cap_steps += 1;
                if !ever_culprit(truth, s.server, vm, r) {
                    cap_false += 1;
                }
            }
        }
    }

    // Event-wise recall and time-to-detect, one event per injected culprit.
    let mut events = 0u64;
    let (mut detected, mut identified) = (0u64, 0u64);
    let mut ttds: Vec<f64> = Vec::new();
    for e in truth.culprits() {
        let r = e.resource.expect("culprits have a resource");
        events += 1;
        let first_detect = steps.iter().find(|s| {
            s.decided
                && s.server == e.server
                && s.contended(r)
                && entry_active_with_grace(e, s.t, DETECT_GRACE_S)
        });
        if let Some(s) = first_detect {
            detected += 1;
            ttds.push(s.t - e.active_from);
        }
        let named = steps.iter().any(|s| {
            s.decided
                && s.server == e.server
                && s.antagonists(r).contains(&u64::from(e.vm.0))
                && entry_active_with_grace(e, s.t, IDENT_GRACE_S)
        });
        if named {
            identified += 1;
        }
    }
    let event_rate = |hit: u64| if events == 0 { 1.0 } else { hit as f64 / events as f64 };

    let precision = precision_of(id_tp, id_named);
    let recall = event_rate(identified);
    let detect_precision = precision_of(det_tp, det_flagged);
    let detect_recall = event_rate(detected);
    CellScore {
        pipeline: String::new(),
        scenario: String::new(),
        precision,
        recall,
        f1: f1_of(precision, recall),
        detect_precision,
        detect_recall,
        detect_f1: f1_of(detect_precision, detect_recall),
        ttd_median_s: median(&ttds).unwrap_or(-1.0),
        false_throttle_rate: if cap_steps == 0 { 0.0 } else { cap_false as f64 / cap_steps as f64 },
    }
}

/// Runs one (scenario × pipeline) cell and scores it.
pub fn run_cell(scenario: &ScenarioSpec, pipeline: PipelineSpec) -> CellScore {
    let mut cfg = (scenario.build)();
    cfg.pipeline = pipeline;
    let mut e = Experiment::build(cfg);
    e.enable_decision_trace();
    e.run();
    let truth = GroundTruth::from_experiment(&e);
    let steps = parse_trace(&e.decision_trace().expect("trace enabled").canonical());
    let mut score = score_steps(&truth, &steps);
    score.pipeline = pipeline.name();
    score.scenario = scenario.name.to_string();
    score
}

/// Runs the full matrix — every pipeline over every scenario — in parallel
/// (deterministic: each cell is an independent single-seeded run, results
/// in matrix order regardless of thread count).
pub fn run_matrix() -> Vec<CellScore> {
    let scenarios = accuracy_scenarios();
    let pipes = pipelines();
    let cells: Vec<(usize, usize)> =
        (0..pipes.len()).flat_map(|p| (0..scenarios.len()).map(move |s| (p, s))).collect();
    sweep::run(cells.len(), |i| {
        let (p, s) = cells[i];
        run_cell(&scenarios[s], pipes[p])
    })
}

/// The scoreboard as canonical JSON: one flat object per row, `f64` values
/// via Display (shortest round-trip), fixed field order — byte-identical
/// across runs and thread counts.
pub fn scoreboard_json(rows: &[CellScore]) -> String {
    let mut out = String::from("{\"rows\":[\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "{{\"pipeline\":\"{}\",\"scenario\":\"{}\",\"precision\":{},\"recall\":{},\"f1\":{},\"detect_precision\":{},\"detect_recall\":{},\"detect_f1\":{},\"ttd_median_s\":{},\"false_throttle_rate\":{}}}",
            r.pipeline,
            r.scenario,
            r.precision,
            r.recall,
            r.f1,
            r.detect_precision,
            r.detect_recall,
            r.detect_f1,
            r.ttd_median_s,
            r.false_throttle_rate,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("]}\n");
    out
}

/// The scoreboard as an aligned human-readable table.
pub fn scoreboard_table(rows: &[CellScore]) -> String {
    let mut t = Table::new(vec![
        "pipeline",
        "scenario",
        "prec",
        "rec",
        "f1",
        "d-prec",
        "d-rec",
        "d-f1",
        "ttd(s)",
        "false-throttle",
    ]);
    let f = |x: f64| format!("{x:.3}");
    for r in rows {
        t.row(vec![
            r.pipeline.clone(),
            r.scenario.clone(),
            f(r.precision),
            f(r.recall),
            f(r.f1),
            f(r.detect_precision),
            f(r.detect_recall),
            f(r.detect_f1),
            format!("{:.1}", r.ttd_median_s),
            f(r.false_throttle_rate),
        ]);
    }
    t.render()
}

/// Minimum identification F1 the paper pipeline must keep on the clean
/// scenario — the "don't regress the paper's own operating point" floor.
pub const PAPER_CLEAN_F1_FLOOR: f64 = 0.9;

/// Semantic gates over a scoreboard. Returns every violated clause; empty
/// means the scoreboard passes.
pub fn gate(rows: &[CellScore]) -> Vec<String> {
    let mut violations = Vec::new();
    let cell = |pipeline: &str, scenario: &str| {
        rows.iter().find(|r| r.pipeline == pipeline && r.scenario == scenario)
    };

    // 1. The paper pipeline holds its clean-scenario operating point.
    match cell("paper/paper", "clean") {
        Some(r) if r.f1 >= PAPER_CLEAN_F1_FLOOR => {}
        Some(r) => violations.push(format!(
            "paper/paper clean F1 {} fell below the floor {PAPER_CLEAN_F1_FLOOR}",
            r.f1
        )),
        None => violations.push("paper/paper clean row missing".into()),
    }

    // 2. Alternatives strictly beat paper on ≥ 2 adversarial families (on
    // each family's headline metric).
    let mut beaten = Vec::new();
    for s in accuracy_scenarios().iter().filter(|s| s.adversarial) {
        let Some(paper) = cell("paper/paper", s.name) else { continue };
        let headline = |r: &CellScore| match s.headline {
            Headline::Detect => r.detect_f1,
            Headline::Ident => r.f1,
        };
        let best_alt = rows
            .iter()
            .filter(|r| r.scenario == s.name && r.pipeline != "paper/paper")
            .map(&headline)
            .fold(f64::NEG_INFINITY, f64::max);
        if best_alt > headline(paper) {
            beaten.push(s.name);
        }
    }
    if beaten.len() < 2 {
        violations.push(format!(
            "alternatives beat paper/paper on only {} adversarial families ({:?}); need ≥ 2",
            beaten.len(),
            beaten
        ));
    }

    // 3. The pinned failure/success pair: the paper thresholds demonstrably
    // miss the low-signal antagonist while the learned detector catches it.
    match (cell("paper/paper", "low_signal"), cell("alioth/paper", "low_signal")) {
        (Some(p), Some(a)) => {
            if p.detect_f1 >= 0.5 {
                violations.push(format!(
                    "paper/paper low_signal detect F1 {} ≥ 0.5 — the scenario no longer defeats the paper thresholds",
                    p.detect_f1
                ));
            }
            if a.detect_f1 < 0.8 {
                violations.push(format!(
                    "alioth/paper low_signal detect F1 {} < 0.8 — the learned detector lost the low-signal case",
                    a.detect_f1
                ));
            }
        }
        _ => violations.push("low_signal rows missing".into()),
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfcloud_host::VmId;

    fn step(t: f64, server: usize) -> StepObservation {
        StepObservation { t, server, decided: true, ..Default::default() }
    }

    fn truth_one(resource: Resource, from: f64, until: Option<f64>) -> GroundTruth {
        GroundTruth {
            entries: vec![TruthEntry {
                vm: VmId(10),
                server: 0,
                resource: Some(resource),
                active_from: from,
                active_until: until,
            }],
        }
    }

    // --- The hand-built micro-matrix: three fixtures with analytically
    // known precision / recall / TTD, guarding the scorer itself. ---

    /// Fixture 1: the ideal pipeline. One culprit active [15, 165]; flagged
    /// and named on every step inside the window, silent outside it.
    #[test]
    fn micro_ideal_pipeline_scores_perfectly() {
        let truth = truth_one(Resource::Io, 15.0, Some(165.0));
        let steps: Vec<StepObservation> = (1..=40)
            .map(|k| {
                let t = 5.0 * k as f64;
                let mut s = step(t, 0);
                if (15.0..=165.0).contains(&t) {
                    s.io_contended = true;
                    s.io_antagonists = vec![10];
                    s.io_caps = vec![(10, 0.5)];
                }
                s
            })
            .collect();
        let score = score_steps(&truth, &steps);
        assert_eq!(score.precision, 1.0);
        assert_eq!(score.recall, 1.0);
        assert_eq!(score.f1, 1.0);
        assert_eq!(score.detect_precision, 1.0);
        assert_eq!(score.detect_recall, 1.0);
        assert_eq!(score.detect_f1, 1.0);
        // First contended step at t = 15, onset 15 → TTD exactly 0.
        assert_eq!(score.ttd_median_s, 0.0);
        assert_eq!(score.false_throttle_rate, 0.0);
    }

    /// Fixture 2: late and trigger-happy. Detection starts 4 intervals
    /// (20 s) after onset; additionally 5 phantom flags long after the
    /// window. Exactly: 30 true flags (t = 35..=180, within end+grace),
    /// 5 false (t = 400..440) → precision 30/35 = 6/7; the single event is
    /// detected → recall 1; TTD = 35 − 15 = 20.
    #[test]
    fn micro_late_noisy_detector_scores_exactly() {
        let truth = truth_one(Resource::Io, 15.0, Some(165.0));
        let mut steps = Vec::new();
        for k in 1..=100 {
            let t = 5.0 * k as f64;
            let mut s = step(t, 0);
            if (35.0..=180.0).contains(&t) || (400.0..=440.0).contains(&t) {
                s.io_contended = true;
            }
            steps.push(s);
        }
        let score = score_steps(&truth, &steps);
        let true_flags = ((180.0f64 - 35.0) / 5.0) as u64 + 1; // 30
        assert_eq!(true_flags, 30);
        assert!((score.detect_precision - 30.0 / 39.0).abs() < 1e-12, "{}", score.detect_precision);
        assert_eq!(score.detect_recall, 1.0);
        assert_eq!(score.ttd_median_s, 20.0);
        // Nothing was ever named: identification precision defaults to 1,
        // recall 0.
        assert_eq!(score.precision, 1.0);
        assert_eq!(score.recall, 0.0);
        assert_eq!(score.f1, 0.0);
    }

    /// Fixture 3: the false-throttler. Names and caps an innocent VM (11)
    /// half the time alongside the culprit → identification precision 2/3,
    /// false-throttle rate exactly 1/3.
    #[test]
    fn micro_false_throttler_scores_exactly() {
        let truth = truth_one(Resource::Io, 15.0, None);
        let steps: Vec<StepObservation> = (3..=32)
            .map(|k| {
                let t = 5.0 * k as f64;
                let mut s = step(t, 0);
                s.io_contended = true;
                s.io_antagonists = vec![10];
                s.io_caps = vec![(10, 0.4)];
                if k % 2 == 0 {
                    s.io_antagonists.push(11);
                    s.io_caps.push((11, 0.4));
                }
                s
            })
            .collect();
        let score = score_steps(&truth, &steps);
        // 30 steps name VM 10 (all true), 15 also name VM 11 (all false):
        // precision 30/45 = 2/3.
        assert!((score.precision - 2.0 / 3.0).abs() < 1e-12, "{}", score.precision);
        assert_eq!(score.recall, 1.0);
        // Same 45 cap-steps, 15 on the innocent → exactly 1/3.
        assert!((score.false_throttle_rate - 1.0 / 3.0).abs() < 1e-12);
        // Detection: truth runs forever, every flag is true.
        assert_eq!(score.detect_precision, 1.0);
        assert_eq!(score.ttd_median_s, 0.0);
    }

    #[test]
    fn undetected_event_yields_sentinel_ttd_and_zero_recall() {
        let truth = truth_one(Resource::Io, 15.0, Some(165.0));
        let steps: Vec<StepObservation> = (1..=40).map(|k| step(5.0 * k as f64, 0)).collect();
        let score = score_steps(&truth, &steps);
        assert_eq!(score.detect_recall, 0.0);
        assert_eq!(score.detect_f1, 0.0);
        assert_eq!(score.ttd_median_s, -1.0);
    }

    #[test]
    fn wrong_server_and_wrong_resource_do_not_count() {
        let truth = truth_one(Resource::Io, 15.0, Some(165.0));
        // Flags on the right times but wrong server; names on the wrong
        // resource.
        let steps: Vec<StepObservation> = (4..=20)
            .map(|k| {
                let t = 5.0 * k as f64;
                let mut s = step(t, 1);
                s.io_contended = true;
                s.cpu_antagonists = vec![10];
                s
            })
            .collect();
        let score = score_steps(&truth, &steps);
        assert_eq!(score.detect_precision, 0.0);
        assert_eq!(score.detect_recall, 0.0);
        assert_eq!(score.precision, 0.0);
        assert_eq!(score.recall, 0.0);
    }

    #[test]
    fn matrix_covers_all_cells() {
        assert_eq!(pipelines().len(), 4);
        assert_eq!(accuracy_scenarios().len(), 5);
        let names: Vec<&str> = accuracy_scenarios().iter().map(|s| s.name).collect();
        assert!(names.contains(&"clean") && names.contains(&"low_signal"));
        assert_eq!(accuracy_scenarios().iter().filter(|s| s.adversarial).count(), 4);
    }

    #[test]
    fn json_is_flat_and_ordered() {
        let rows = vec![CellScore {
            pipeline: "paper/paper".into(),
            scenario: "clean".into(),
            precision: 1.0,
            recall: 0.5,
            f1: 2.0 / 3.0,
            detect_precision: 1.0,
            detect_recall: 1.0,
            detect_f1: 1.0,
            ttd_median_s: 20.0,
            false_throttle_rate: 0.0,
        }];
        let json = scoreboard_json(&rows);
        assert!(json.contains("\"pipeline\":\"paper/paper\""));
        assert!(json.contains("\"f1\":0.6666666666666666"));
        assert!(json.ends_with("]}\n"));
    }
}
