//! Placement-subsystem benchmark: policy decision throughput plus the
//! throttle-vs-migrate-vs-hybrid scenario comparison.
//!
//! Two measurements land in one `BENCH_placement.json` record:
//!
//! - `decisions_per_sec` — how fast [`AntagonistAware::propose`] turns a
//!   cluster snapshot (server loads + candidate VMs + penalty ledger)
//!   into migration proposals. This is the hot path a cloud-scale
//!   coordinator would run every sampling interval, so CI gates it
//!   against the committed baseline like the engine and scale probes.
//! - the scenario JCT comparison — the three `placement_*` golden
//!   testbeds re-run end to end, recording each arm's victim JCT,
//!   migration count, and the hybrid-vs-throttle delta. These are
//!   deterministic (fixed seed, tick-driven), so [`check`] can assert
//!   the paper-level claims exactly: migration fires, ping-pong does
//!   not, and hybrid does not lose to throttle-only.

use crate::benchjson::BenchRecord;
use crate::scenarios::{ANTAGONIST_ONSET, JOB_START};
use perfcloud_cluster::{
    AntagonistKind, AntagonistPlacement, ClusterSpec, Experiment, ExperimentConfig, Mitigation,
};
use perfcloud_core::PerfCloudConfig;
use perfcloud_frameworks::Benchmark;
use perfcloud_host::{ServerId, VmId};
use perfcloud_place::{
    AntagonistAware, InterferenceHistory, MigrationCandidate, PlacementConfig, PlacementCtx,
    PlacementPolicy, ServerLoad, UsageVector,
};
use perfcloud_sim::SimTime;
use std::time::Instant;

/// Servers in the synthetic decision-throughput snapshot.
const PROBE_SERVERS: usize = 64;
/// Candidate low-priority VMs per snapshot.
const PROBE_CANDIDATES: usize = 128;
/// Proposal rounds per timed pass of [`decision_throughput`].
const PROBE_ROUNDS: usize = 2_000;
/// Timed passes; the fastest one is reported. A single pass lasts only a
/// few milliseconds, which is far too noisy for a CI gate on a shared
/// runner — the best-of-N minimum is stable to a few percent.
const PROBE_PASSES: usize = 5;

/// One arm of the scenario comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArmResult {
    /// Victim job completion time, seconds.
    pub jct: f64,
    /// Live migrations the placement runtime started.
    pub migrations: u64,
}

/// The full placement measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementProbe {
    /// Policy proposals evaluated per wall-clock second.
    pub decisions_per_sec: f64,
    /// Throttle-only arm (PerfCloud, no placement runtime).
    pub throttle: ArmResult,
    /// Migrate-only arm (no throttling).
    pub migrate: ArmResult,
    /// Hybrid arm (throttle + migrate).
    pub hybrid: ArmResult,
    /// Wall-clock seconds for the whole probe.
    pub wall_seconds: f64,
}

/// Builds the shared scenario config: the `placement_*` golden testbed —
/// two servers with the second held spare, one terasort job, one fio
/// antagonist on the populated server.
fn arm_config(seed: u64, mitigation: Mitigation) -> ExperimentConfig {
    let mut cluster = ClusterSpec::small_scale(seed);
    cluster.servers = 2;
    cluster.spare_servers = 1;
    let mut cfg = ExperimentConfig::new(cluster, mitigation);
    cfg.jobs.push((JOB_START, Benchmark::Terasort.job(20)));
    cfg.antagonists
        .push(AntagonistPlacement::pinned(AntagonistKind::Fio, 0).starting_at(ANTAGONIST_ONSET));
    cfg.max_sim_time = SimTime::from_secs(7_200);
    cfg
}

/// Runs one arm to completion.
fn run_arm(seed: u64, mitigation: Mitigation) -> ArmResult {
    let mut e = Experiment::build(arm_config(seed, mitigation));
    let r = e.run();
    let migrations = e.placement().map_or(0, |rt| rt.migrations_started());
    ArmResult { jct: r.sole_jct(), migrations }
}

/// Times [`AntagonistAware::propose`] over a synthetic cluster snapshot:
/// deterministic loads (no RNG — the bytes don't matter, only that the
/// policy walks every server per candidate), a ledger with a handful of
/// penalized VMs, and [`PROBE_ROUNDS`] proposal rounds.
pub fn decision_throughput() -> f64 {
    let mut history = InterferenceHistory::new();
    for vm in 0..PROBE_CANDIDATES as u32 {
        if vm % 7 == 0 {
            history.record_verdict(VmId(vm));
        }
    }
    let servers: Vec<ServerLoad> = (0..PROBE_SERVERS)
        .map(|i| ServerLoad {
            usage: UsageVector {
                cpu: (i % 10) as f64 / 10.0,
                disk: (i % 5) as f64 / 5.0,
                net: 0.0,
            },
            vms: i % 4 + 1,
            protected: i % 3 == 0,
        })
        .collect();
    let candidates: Vec<MigrationCandidate> = (0..PROBE_CANDIDATES)
        .map(|i| MigrationCandidate {
            vm: VmId(i as u32),
            from: ServerId((i % PROBE_SERVERS) as u32),
            usage: UsageVector { disk: (i % 3) as f64 / 3.0, cpu: 0.2, net: 0.0 },
        })
        .collect();
    let policy = AntagonistAware::default();
    let ctx = PlacementCtx { servers: &servers, history: &history };
    let mut best = f64::INFINITY;
    for _ in 0..PROBE_PASSES {
        let start = Instant::now();
        let mut proposals = 0usize;
        for _ in 0..PROBE_ROUNDS {
            proposals += policy.propose(&candidates, &ctx).len();
            std::hint::black_box(proposals);
        }
        let elapsed = start.elapsed().as_secs_f64();
        assert!(proposals > 0, "throughput probe proposed nothing — snapshot degenerate");
        best = best.min(elapsed);
    }
    let decisions = (PROBE_ROUNDS * PROBE_CANDIDATES) as f64;
    if best > 0.0 {
        decisions / best
    } else {
        f64::INFINITY
    }
}

/// Runs the full probe: the decision-throughput micro-bench plus the
/// three scenario arms, all at `seed`.
pub fn probe(seed: u64) -> PlacementProbe {
    let start = Instant::now();
    let decisions_per_sec = decision_throughput();
    let throttle = run_arm(seed, Mitigation::PerfCloud(PerfCloudConfig::default()));
    let migrate = run_arm(seed, Mitigation::MigrateOnly(PlacementConfig::default()));
    let hybrid =
        run_arm(seed, Mitigation::Hybrid(PerfCloudConfig::default(), PlacementConfig::default()));
    PlacementProbe {
        decisions_per_sec,
        throttle,
        migrate,
        hybrid,
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}

impl PlacementProbe {
    /// The probe as a `BENCH_placement.json` record.
    pub fn record(&self) -> BenchRecord {
        let mut r = BenchRecord::wall("placement", self.wall_seconds);
        r.extras.push(("decisions_per_sec".into(), self.decisions_per_sec));
        r.extras.push(("throttle_jct".into(), self.throttle.jct));
        r.extras.push(("migrate_jct".into(), self.migrate.jct));
        r.extras.push(("hybrid_jct".into(), self.hybrid.jct));
        r.extras.push(("migrate_migrations".into(), self.migrate.migrations as f64));
        r.extras.push(("hybrid_migrations".into(), self.hybrid.migrations as f64));
        r.extras.push(("hybrid_vs_throttle".into(), self.hybrid.jct / self.throttle.jct));
        r
    }

    /// The deterministic paper-level invariants the CI `--check` run
    /// asserts. Returns the violations (empty = all good).
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.migrate.migrations == 0 {
            out.push("migrate-only arm started no migration".into());
        }
        if self.hybrid.migrations == 0 {
            out.push("hybrid arm started no migration".into());
        }
        for (name, arm) in [("migrate-only", self.migrate), ("hybrid", self.hybrid)] {
            if arm.migrations > 2 {
                out.push(format!(
                    "{name} arm started {} migrations — ping-pong guard broken",
                    arm.migrations
                ));
            }
        }
        if self.hybrid.jct > self.throttle.jct {
            out.push(format!(
                "hybrid victim JCT {} lost to throttle-only {}",
                self.hybrid.jct, self.throttle.jct
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_throughput_is_positive_and_finite() {
        let dps = decision_throughput();
        assert!(dps > 0.0 && dps.is_finite(), "decisions/sec: {dps}");
    }

    #[test]
    fn record_carries_all_gate_fields() {
        let p = PlacementProbe {
            decisions_per_sec: 1e6,
            throttle: ArmResult { jct: 39.2, migrations: 0 },
            migrate: ArmResult { jct: 39.5, migrations: 1 },
            hybrid: ArmResult { jct: 38.8, migrations: 1 },
            wall_seconds: 1.0,
        };
        let json = p.record().to_json();
        for field in [
            "decisions_per_sec",
            "throttle_jct",
            "migrate_jct",
            "hybrid_jct",
            "migrate_migrations",
            "hybrid_migrations",
            "hybrid_vs_throttle",
        ] {
            assert!(json.contains(field), "{field} missing from {json}");
        }
        assert!(p.violations().is_empty());
    }

    #[test]
    fn violations_catch_broken_invariants() {
        let p = PlacementProbe {
            decisions_per_sec: 1e6,
            throttle: ArmResult { jct: 30.0, migrations: 0 },
            migrate: ArmResult { jct: 50.0, migrations: 0 },
            hybrid: ArmResult { jct: 31.0, migrations: 5 },
            wall_seconds: 1.0,
        };
        let v = p.violations();
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().any(|m| m.contains("no migration")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("ping-pong")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("lost to throttle-only")), "{v:?}");
    }
}
