//! Golden-trace regression harness.
//!
//! Every scenario in [`scenarios`] renders a canonical text artifact — the
//! decision trace of a node-manager run, or a summary table of a mini
//! sweep — that is checked into `tests/golden/` at the repository root.
//! [`check`] diffs a freshly generated artifact against the checked-in one
//! and, on mismatch, reports the **first diverging line** with context, so
//! a behavioural regression points straight at the first decision that
//! changed. Set `BLESS=1` to regenerate the golden files after an
//! intentional behaviour change.
//!
//! Scenario outputs use a fixed literal seed (not `PERFCLOUD_SEED`) so the
//! goldens do not depend on the environment, and every run is single-seeded
//! and tick-deterministic, so the artifacts are byte-identical no matter
//! how many sweep threads (`PERFCLOUD_THREADS`) execute them.

use crate::scenarios::{ANTAGONIST_ONSET, JOB_START};
use crate::sweep;
use perfcloud_baselines::{Dolly, LatePolicy};
use perfcloud_cluster::{
    AntagonistKind, AntagonistPlacement, ClusterSpec, Experiment, ExperimentConfig, Mitigation,
    TelemetrySpec,
};
use perfcloud_core::PerfCloudConfig;
use perfcloud_ctrl::{ControlPlaneSpec, LinkSpec, NodeId, Partition};
use perfcloud_frameworks::Benchmark;
use perfcloud_obs::{merged_dump, ExportSource};
use perfcloud_place::PlacementConfig;
use perfcloud_sim::{
    FaultKind, FaultRule, FaultScenario, MessageClass, MetricClass, SimDuration, SimTime,
};
use perfcloud_stats::BoxplotSummary;
use rand::Rng;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

/// The master seed baked into every golden scenario. Deliberately a
/// literal — golden artifacts must not follow the `PERFCLOUD_SEED`
/// override, or the suite would fail for anyone with the variable set.
pub const GOLDEN_SEED: u64 = 42;

/// Flight events each recorder retains during a golden run.
pub const FLIGHT_CAPACITY: usize = 4096;

/// Merged flight events a golden mismatch dumps for context.
pub const FLIGHT_DUMP_EVENTS: usize = 48;

/// Whether golden runs attach flight recorders (the default). The
/// `golden_obs_off` suite clears this in its own process to prove the
/// artifacts are byte-identical without observability; recording is pure
/// observation, so the artifact bytes must not depend on this flag.
pub static OBSERVE_GOLDENS: AtomicBool = AtomicBool::new(true);

thread_local! {
    /// Flight-recorder sources of the most recent golden run built on this
    /// thread, consumed by [`check`] to annotate first-divergence reports
    /// and by `run_all --trace-out` to export a full Perfetto trace.
    static LAST_FLIGHT_SOURCES: RefCell<Vec<ExportSource>> = const { RefCell::new(Vec::new()) };
}

/// Takes (and clears) the flight-recorder sources of the most recent
/// golden run built on this thread. Empty when the run had no recorders.
pub fn take_flight_sources() -> Vec<ExportSource> {
    LAST_FLIGHT_SOURCES.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

/// Takes (and clears) this thread's flight sources, rendered as the
/// newest [`FLIGHT_DUMP_EVENTS`] merged events — the mismatch context.
pub fn take_flight_dump() -> String {
    merged_dump(&take_flight_sources(), FLIGHT_DUMP_EVENTS)
}

/// One named golden scenario: `build(shards)` renders the canonical
/// artifact with the experiment partitioned into that many in-run shards.
/// The bytes must be identical at every shard count; pass
/// [`env_shards`]`()` to follow the `PERFCLOUD_SHARDS` environment (the CI
/// matrix), or a literal to pin a count in-process (the shard-invariance
/// suites — an env var would race parallel tests).
pub struct GoldenScenario {
    /// File stem under `tests/golden/` (`<name>.trace`).
    pub name: &'static str,
    /// Renders the artifact from scratch.
    pub build: fn(usize) -> String,
}

/// The ambient shard count: `PERFCLOUD_SHARDS`, default 1.
pub fn env_shards() -> usize {
    perfcloud_sim::shard::shards_from_env(1)
}

/// Whether golden runs snapshot mid-run and finish on the fork
/// (`FORK_GOLDENS=1`). [`Experiment::fork`] promises a fork continues
/// byte-identically to its parent, so every golden artifact must come out
/// unchanged — any missed byte of state (an RNG position, a monitor
/// window, an in-flight message) surfaces as a golden diff. CI runs the
/// golden suites once more with this set (and never with `BLESS`).
pub fn fork_goldens() -> bool {
    std::env::var("FORK_GOLDENS").map(|v| v == "1").unwrap_or(false)
}

/// Snapshot instant for the `FORK_GOLDENS=1` leg: 30 s (ticks are 100 ms)
/// is past detection and the throttling onset and inside every fault
/// window, yet safely before any golden scenario's job completes — the
/// fork is taken with live monitor windows, controller state, fault
/// machinery, and in-flight control messages.
const FORK_PREFIX_TICKS: u64 = 300;

/// Runs an experiment to completion — straight through, or (with
/// `FORK_GOLDENS=1`) via a mid-run snapshot whose fork finishes the run.
fn run_to_completion(mut e: Experiment) -> (Experiment, perfcloud_cluster::ExperimentResult) {
    if fork_goldens() {
        for _ in 0..FORK_PREFIX_TICKS {
            e.step_tick();
        }
        e = e.fork();
    }
    let r = e.run();
    (e, r)
}

/// All golden scenarios: the fault-free references, one scenario per fault
/// class, a kitchen-sink mix, and the mini Fig. 12(b) sweep.
pub fn scenarios() -> Vec<GoldenScenario> {
    vec![
        GoldenScenario { name: "baseline", build: baseline },
        GoldenScenario { name: "ablation_monitoring", build: ablation_monitoring },
        GoldenScenario { name: "chaos_drop", build: chaos_drop },
        GoldenScenario { name: "chaos_delay", build: chaos_delay },
        GoldenScenario { name: "chaos_duplicate", build: chaos_duplicate },
        GoldenScenario { name: "chaos_nan_iowait", build: chaos_nan_iowait },
        GoldenScenario { name: "chaos_spike_cpi", build: chaos_spike_cpi },
        GoldenScenario { name: "chaos_stuck_iowait", build: chaos_stuck_iowait },
        GoldenScenario { name: "chaos_stall", build: chaos_stall },
        GoldenScenario { name: "chaos_crash", build: chaos_crash },
        GoldenScenario { name: "chaos_desync", build: chaos_desync },
        GoldenScenario { name: "chaos_kitchen_sink", build: chaos_kitchen_sink },
        GoldenScenario { name: "ctrl_coordinator_crash", build: ctrl_coordinator_crash },
        GoldenScenario { name: "ctrl_partition_heal", build: ctrl_partition_heal },
        GoldenScenario { name: "ctrl_lossy_placement", build: ctrl_lossy_placement },
        GoldenScenario { name: "placement_throttle", build: placement_throttle },
        GoldenScenario { name: "placement_migrate", build: placement_migrate },
        GoldenScenario { name: "placement_hybrid", build: placement_hybrid },
        GoldenScenario { name: "fig12b_mini", build: fig12b_mini },
    ]
}

/// The shared chaos testbed: the small-scale cluster, one 20-task terasort
/// job (long enough for detection → identification → throttling to play
/// out), one fio antagonist arriving mid-run, PerfCloud (unless
/// overridden) — the same shape as the paper's Fig. 10 case study — with
/// `faults` injected into the node manager. Returns the run's canonical
/// artifact: two summary headers plus the full decision trace.
fn chaos_run(shards: usize, faults: Option<FaultScenario>, mitigation: Mitigation) -> String {
    chaos_run_with_control(shards, faults, mitigation, ControlPlaneSpec::default())
}

/// [`chaos_run`] with an explicit control-plane deployment — used by the
/// `ctrl_*` scenarios to run replicated cloud managers over a lossy or
/// partitioned network while the same job/antagonist testbed plays out.
fn chaos_run_with_control(
    shards: usize,
    faults: Option<FaultScenario>,
    mitigation: Mitigation,
    control: ControlPlaneSpec,
) -> String {
    let mut cfg = ExperimentConfig::new(ClusterSpec::small_scale(GOLDEN_SEED), mitigation);
    cfg.jobs.push((JOB_START, Benchmark::Terasort.job(20)));
    cfg.antagonists
        .push(AntagonistPlacement::pinned(AntagonistKind::Fio, 0).starting_at(ANTAGONIST_ONSET));
    cfg.max_sim_time = SimTime::from_secs(7_200);
    cfg.faults = faults;
    cfg.control = control;
    let mut e = Experiment::build(cfg);
    e.set_shards(shards);
    e.enable_decision_trace();
    if OBSERVE_GOLDENS.load(Ordering::Relaxed) {
        e.enable_observability(FLIGHT_CAPACITY);
    }
    let (e, r) = run_to_completion(e);
    LAST_FLIGHT_SOURCES.with(|s| *s.borrow_mut() = e.flight_sources());
    let trace = e.decision_trace().expect("trace enabled");
    let mut out = String::new();
    let _ = writeln!(out, "# jct={}", r.sole_jct());
    let _ = writeln!(out, "# antagonist_io_ops={}", r.antagonists[0].io_ops);
    out.push_str(&trace.canonical());
    out
}

fn perfcloud() -> Mitigation {
    Mitigation::PerfCloud(PerfCloudConfig::default())
}

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn baseline(shards: usize) -> String {
    chaos_run(shards, None, perfcloud())
}

fn ablation_monitoring(shards: usize) -> String {
    // Monitoring-only node managers: deviations are recorded but thresholds
    // sit at infinity, so the trace must show signals and no decisions.
    chaos_run(shards, None, Mitigation::Default)
}

fn chaos_drop(shards: usize) -> String {
    let s = FaultScenario::named("drop").rule(
        FaultRule::new("drop-30pct", FaultKind::DropSample)
            .window(secs(20), secs(120))
            .with_probability(0.3),
    );
    chaos_run(shards, Some(s), perfcloud())
}

fn chaos_delay(shards: usize) -> String {
    let s = FaultScenario::named("delay").rule(
        FaultRule::new("delay-2", FaultKind::DelaySample { intervals: 2 })
            .window(secs(20), secs(120))
            .with_probability(0.4),
    );
    chaos_run(shards, Some(s), perfcloud())
}

fn chaos_duplicate(shards: usize) -> String {
    let s = FaultScenario::named("duplicate").rule(
        FaultRule::new("dup-half", FaultKind::DuplicateSample)
            .window(secs(20), secs(120))
            .with_probability(0.5),
    );
    chaos_run(shards, Some(s), perfcloud())
}

fn chaos_nan_iowait(shards: usize) -> String {
    let s = FaultScenario::named("nan-iowait").rule(
        FaultRule::new("nan-all", FaultKind::CorruptNaN)
            .on_metric(MetricClass::BlkioIowait)
            .window(secs(25), secs(60)),
    );
    chaos_run(shards, Some(s), perfcloud())
}

fn chaos_spike_cpi(shards: usize) -> String {
    let s = FaultScenario::named("spike-cpi").rule(
        FaultRule::new("spike-50x", FaultKind::CorruptSpike { factor: 50.0 })
            .on_metric(MetricClass::Cpi)
            .window(secs(25), secs(80))
            .with_probability(0.5),
    );
    chaos_run(shards, Some(s), perfcloud())
}

fn chaos_stuck_iowait(shards: usize) -> String {
    let s = FaultScenario::named("stuck-iowait").rule(
        FaultRule::new("stuck-all", FaultKind::CorruptStuckAt)
            .on_metric(MetricClass::BlkioIowait)
            .window(secs(30), secs(90)),
    );
    chaos_run(shards, Some(s), perfcloud())
}

fn chaos_stall(shards: usize) -> String {
    let s = FaultScenario::named("stall").rule(
        FaultRule::new("stall-3", FaultKind::StallManager { intervals: 3 })
            .window(secs(30), secs(35)),
    );
    chaos_run(shards, Some(s), perfcloud())
}

fn chaos_crash(shards: usize) -> String {
    let s = FaultScenario::named("crash")
        .rule(FaultRule::new("crash-once", FaultKind::CrashRestart).window(secs(40), secs(45)));
    chaos_run(shards, Some(s), perfcloud())
}

fn chaos_desync(shards: usize) -> String {
    let s = FaultScenario::named("desync").rule(
        FaultRule::new("desync-20", FaultKind::DesyncPlacement { intervals: 20 })
            .window(secs(20), secs(25)),
    );
    chaos_run(shards, Some(s), perfcloud())
}

fn chaos_kitchen_sink(shards: usize) -> String {
    let s = FaultScenario::named("kitchen-sink")
        .rule(
            FaultRule::new("drop", FaultKind::DropSample)
                .window(secs(20), secs(200))
                .with_probability(0.15),
        )
        .rule(
            FaultRule::new("delay", FaultKind::DelaySample { intervals: 1 })
                .window(secs(20), secs(200))
                .with_probability(0.2),
        )
        .rule(
            FaultRule::new("nan-iowait", FaultKind::CorruptNaN)
                .on_metric(MetricClass::BlkioIowait)
                .window(secs(30), secs(90))
                .with_probability(0.3),
        )
        .rule(
            FaultRule::new("spike-cpi", FaultKind::CorruptSpike { factor: 25.0 })
                .on_metric(MetricClass::Cpi)
                .window(secs(30), secs(90))
                .with_probability(0.3),
        )
        .rule(
            FaultRule::new("stall", FaultKind::StallManager { intervals: 2 })
                .window(secs(50), secs(55)),
        )
        .rule(FaultRule::new("crash", FaultKind::CrashRestart).window(secs(70), secs(75)))
        .rule(
            FaultRule::new("desync", FaultKind::DesyncPlacement { intervals: 10 })
                .window(secs(100), secs(105)),
        );
    chaos_run(shards, Some(s), perfcloud())
}

/// Three cloud-manager replicas on a high-latency (600 ms) link; the
/// coordinator m0 dies mid-contention and heals 30 s later still believing
/// it leads. The trace must show the Bully handover (m1 wins a contested
/// round — the RTT forces a generous election timeout), placement epochs
/// jumping to m1's term within the staleness budget, and the healed m0's
/// stale republish being rejected by epoch and stepped down.
fn ctrl_coordinator_crash(shards: usize) -> String {
    // The heal lands just before the t=35 sampling instant AND just after
    // the new coordinator's in-flight heartbeat died against the still-down
    // replica, so the healed m0 still believes it leads when the publish
    // fires — the epoch-regression window the node managers must reject.
    let s = FaultScenario::named("ctrl-coordinator-crash").rule(
        FaultRule::new("down-m0", FaultKind::DownReplica)
            .on_server(0)
            .window(secs(12), SimTime::from_secs_f64(34.9)),
    );
    let control = ControlPlaneSpec {
        managers: 3,
        link: LinkSpec { latency: SimDuration::from_millis(600), ..LinkSpec::default() },
        // The election timeout must exceed the answer round-trip (1.2 s),
        // or a worse candidate wins its round before the Answer lands.
        election_timeout: SimDuration::from_millis(1_500),
        trace_events: true,
        ..ControlPlaneSpec::default()
    };
    chaos_run_with_control(shards, Some(s), perfcloud(), control)
}

/// Three replicas with the coordinator m0 partitioned away from everyone
/// else for 30 s. The majority side elects m1 and keeps placement flowing;
/// the isolated m0 publishes into the void (visible as fully-cut publish
/// events). At heal both sides publish into the same interval: epoch
/// ordering rejects the stale coordinator's update and its own heartbeat
/// draws the step-down correction.
fn ctrl_partition_heal(shards: usize) -> String {
    let control = ControlPlaneSpec {
        managers: 3,
        link: LinkSpec { latency: SimDuration::from_millis(10), ..LinkSpec::default() },
        // Heals just before the t=30 sampling instant, so both the isolated
        // stale coordinator and the elected one publish into the same
        // interval and epoch ordering has to arbitrate.
        partitions: vec![Partition {
            name: "m0-isolated".into(),
            side_a: vec![NodeId::manager(0)],
            side_b: vec![NodeId::manager(1), NodeId::manager(2), NodeId::server(0)],
            from: secs(12),
            until: SimTime::from_secs_f64(29.9),
        }],
        trace_events: true,
        ..ControlPlaneSpec::default()
    };
    chaos_run_with_control(shards, None, perfcloud(), control)
}

/// A single manager on a lossy link: placement updates are dropped at 35%
/// and occasionally delayed past the next publish, so stale epochs arrive
/// after fresher ones and must be rejected while the node manager rides
/// its cached view within the staleness budget.
fn ctrl_lossy_placement(shards: usize) -> String {
    // The delay exceeds the 5 s publish cadence, so a lagged epoch arrives
    // after its successor was applied and must be rejected as a regression.
    let s = FaultScenario::named("ctrl-lossy-placement")
        .rule(
            FaultRule::new("drop-placement", FaultKind::DropMessage)
                .on_message(MessageClass::Placement)
                .window(secs(10), secs(200))
                .with_probability(0.45),
        )
        .rule(
            FaultRule::new("lag-placement", FaultKind::DelayMessage { micros: 6_000_000 })
                .on_message(MessageClass::Placement)
                .window(secs(10), secs(200))
                .with_probability(0.2),
        );
    let control = ControlPlaneSpec {
        link: LinkSpec { latency: SimDuration::from_millis(10), ..LinkSpec::default() },
        trace_events: true,
        ..ControlPlaneSpec::default()
    };
    chaos_run_with_control(shards, Some(s), perfcloud(), control)
}

/// The placement testbed: the chaos job/antagonist shape on a two-server
/// cluster whose second server is held spare (no workers), so a placement
/// policy has somewhere to move the antagonist. Same seed and onsets as
/// [`chaos_run`]; the artifact adds a `# migrations=` header pinning how
/// many live migrations the run started, so a policy change that starts
/// migrating (or stops) is a one-line golden diff even before any
/// decision drifts.
fn placement_run(shards: usize, mitigation: Mitigation) -> String {
    let mut e = build_placement(mitigation, TelemetrySpec::default());
    e.set_shards(shards);
    if OBSERVE_GOLDENS.load(Ordering::Relaxed) {
        e.enable_observability(FLIGHT_CAPACITY);
    }
    let (e, r) = run_to_completion(e);
    LAST_FLIGHT_SOURCES.with(|s| *s.borrow_mut() = e.flight_sources());
    placement_artifact(&e, &r)
}

/// Builds the placement-testbed experiment (decision trace enabled) with
/// an explicit telemetry spec. Public so the record/replay acceptance
/// suite can tee the exact `placement_hybrid` golden run, replay the
/// recording, and byte-compare both artifacts against the checked-in
/// golden.
pub fn build_placement(mitigation: Mitigation, telemetry: TelemetrySpec) -> Experiment {
    let mut cluster = ClusterSpec::small_scale(GOLDEN_SEED);
    cluster.servers = 2;
    cluster.spare_servers = 1;
    let mut cfg = ExperimentConfig::new(cluster, mitigation);
    cfg.jobs.push((JOB_START, Benchmark::Terasort.job(20)));
    cfg.antagonists
        .push(AntagonistPlacement::pinned(AntagonistKind::Fio, 0).starting_at(ANTAGONIST_ONSET));
    cfg.max_sim_time = SimTime::from_secs(7_200);
    cfg.telemetry = telemetry;
    let mut e = Experiment::build(cfg);
    e.enable_decision_trace();
    e
}

/// Renders the canonical placement-golden artifact of a completed
/// [`build_placement`] run.
pub fn placement_artifact(e: &Experiment, r: &perfcloud_cluster::ExperimentResult) -> String {
    let trace = e.decision_trace().expect("trace enabled");
    let migrations = e.placement().map_or(0, |rt| rt.migrations_started());
    let mut out = String::new();
    let _ = writeln!(out, "# jct={}", r.sole_jct());
    let _ = writeln!(out, "# antagonist_io_ops={}", r.antagonists[0].io_ops);
    let _ = writeln!(out, "# migrations={migrations}");
    out.push_str(&trace.canonical());
    out
}

/// Throttle-only arm of the placement comparison: PerfCloud caps the
/// antagonist in place; the spare server stays empty and `migrations=0`.
fn placement_throttle(shards: usize) -> String {
    placement_run(shards, perfcloud())
}

/// Migrate-only arm: no throttling — the identified antagonist is
/// live-migrated to the spare server and runs there uncapped.
fn placement_migrate(shards: usize) -> String {
    placement_run(shards, Mitigation::MigrateOnly(PlacementConfig::default()))
}

/// Hybrid arm: throttle while the interference penalty accrues, then
/// migrate the antagonist away entirely.
fn placement_hybrid(shards: usize) -> String {
    placement_run(
        shards,
        Mitigation::Hybrid(PerfCloudConfig::default(), PlacementConfig::default()),
    )
}

/// A down-scaled Fig. 12(b): the Spark logistic-regression job under
/// randomly placed antagonists, 6 repetitions over 4 servers for each of
/// LATE, Dolly-4 and PerfCloud. This pins the default-seed normalized-JCT
/// distributions — including the spread ordering, which at this mini scale
/// is close between systems and has historically drifted under innocuous-
/// looking changes to sampling or identification. Any such drift now shows
/// up as a golden diff instead of a silent shape change.
fn fig12b_mini(shards: usize) -> String {
    const SERVERS: usize = 4;
    const REPS: usize = 6;
    const TASKS: usize = 12;
    let bench = Benchmark::LogisticRegression;

    let solo = {
        let mut cluster = ClusterSpec::large_scale(GOLDEN_SEED);
        cluster.servers = SERVERS;
        let mut cfg = ExperimentConfig::new(cluster, Mitigation::Default);
        cfg.jobs.push((JOB_START, bench.job(TASKS)));
        cfg.max_sim_time = SimTime::from_secs(7_200);
        let mut e = Experiment::build(cfg);
        e.set_shards(shards);
        run_to_completion(e).1.sole_jct()
    };

    type MitigationFactory = fn() -> Mitigation;
    let systems: [(&str, MitigationFactory); 3] = [
        ("late", || Mitigation::Late(LatePolicy::default())),
        ("dolly-4", || Mitigation::Dolly(Dolly::new(4))),
        ("perfcloud", perfcloud),
    ];

    let mut out = String::new();
    let _ = writeln!(out, "# fig12b-mini servers={SERVERS} reps={REPS} solo_jct={solo}");
    for (name, make) in systems {
        let jcts: Vec<f64> = sweep::run(REPS, |rep| {
            let rep_rng = sweep::rep_factory(GOLDEN_SEED, rep);
            let mut r = rep_rng.stream("fig12/placement");
            let mut antagonists = Vec::new();
            for _ in 0..(SERVERS / 3).max(1) {
                for kind in [AntagonistKind::Fio, AntagonistKind::Stream] {
                    let start = SimTime::from_secs_f64(10.0 + 30.0 * r.gen::<f64>());
                    antagonists.push(
                        AntagonistPlacement::pinned(kind, r.gen_range(0..SERVERS))
                            .starting_at(start),
                    );
                }
            }
            let mut cluster = ClusterSpec::large_scale(GOLDEN_SEED ^ (rep as u64) << 8);
            cluster.servers = SERVERS;
            let mut cfg = ExperimentConfig::new(cluster, make());
            cfg.jobs.push((JOB_START, bench.job(TASKS)));
            cfg.antagonists = antagonists;
            cfg.max_sim_time = SimTime::from_secs(7_200);
            let mut e = Experiment::build(cfg);
            e.set_shards(shards);
            run_to_completion(e).1.sole_jct() / solo
        });
        let b = BoxplotSummary::from_data(&jcts).expect("non-empty");
        let list: Vec<String> = jcts.iter().map(|v| format!("{v}")).collect();
        let _ = writeln!(
            out,
            "system={name} njct={} median={} spread={}",
            list.join(","),
            b.median,
            b.whisker_spread()
        );
    }
    out
}

/// Outcome of diffing a scenario against its golden file.
#[derive(Debug)]
pub enum GoldenStatus {
    /// Byte-identical to the checked-in golden.
    Match,
    /// `BLESS=1` was set: the golden file was (re)written.
    Regenerated,
    /// The artifact differs; `diff` pinpoints the first diverging line.
    Mismatch {
        /// Human-readable first-divergence report.
        diff: String,
    },
}

/// Directory the golden files live in (`tests/golden/` at the repo root).
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Diffs `actual` against `tests/golden/<name>.trace`. With `BLESS=1` the
/// file is rewritten instead and [`GoldenStatus::Regenerated`] returned.
///
/// On mismatch, the report carries the flight-recorder dump of the run
/// that produced `actual` (when one was recorded on this thread): the
/// last [`FLIGHT_DUMP_EVENTS`] events on the diverging side, so a failure
/// shows not just *which* decision changed but what the engine, agents,
/// and control plane were doing around it.
pub fn check(name: &str, actual: &str) -> GoldenStatus {
    // Always consume this thread's dump so a scenario that records nothing
    // cannot inherit a stale dump from a previous run on the same worker.
    let dump = take_flight_dump();
    check_with_dump(name, actual, &dump)
}

/// [`check`] with an explicitly captured flight dump — for callers that
/// render scenarios on sweep worker threads, where the thread-local dump
/// lives on the worker rather than the checking thread. Capture it inside
/// the worker closure with [`take_flight_dump`] and pass it here.
pub fn check_with_dump(name: &str, actual: &str, dump: &str) -> GoldenStatus {
    let dir = golden_dir();
    let path = dir.join(format!("{name}.trace"));
    let bless = std::env::var("BLESS").map(|v| v == "1").unwrap_or(false);
    if bless {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
        std::fs::write(&path, actual).expect("write golden file");
        return GoldenStatus::Regenerated;
    }
    let expected = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(_) => {
            return GoldenStatus::Mismatch {
                diff: format!(
                    "golden file {} is missing — run the suite once with BLESS=1 to create it",
                    path.display()
                ),
            }
        }
    };
    if expected == actual {
        GoldenStatus::Match
    } else {
        let mut diff = first_divergence(name, &expected, actual);
        if !dump.is_empty() {
            let _ = write!(
                diff,
                "\nlast {FLIGHT_DUMP_EVENTS} flight-recorder events of the diverging run:\n{dump}"
            );
        }
        GoldenStatus::Mismatch { diff }
    }
}

/// Renders the first line where `expected` and `actual` diverge, with the
/// line number and both versions — "the first decision that changed".
pub fn first_divergence(name: &str, expected: &str, actual: &str) -> String {
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    for (i, (e, a)) in exp.iter().zip(act.iter()).enumerate() {
        if e != a {
            return format!(
                "golden trace '{name}' diverges at line {}:\n  expected: {e}\n  actual:   {a}",
                i + 1
            );
        }
    }
    if exp.len() != act.len() {
        let i = exp.len().min(act.len());
        let (side, line) = if exp.len() > act.len() {
            ("expected has extra", exp[i])
        } else {
            ("actual has extra", act[i])
        };
        return format!("golden trace '{name}' diverges at line {}: {side} line:\n  {line}", i + 1);
    }
    format!("golden trace '{name}': traces differ only in trailing whitespace")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_divergence_points_at_the_first_changed_line() {
        let d = first_divergence("x", "a\nb\nc\n", "a\nB\nc\n");
        assert!(d.contains("line 2"), "{d}");
        assert!(d.contains("expected: b"), "{d}");
        assert!(d.contains("actual:   B"), "{d}");
    }

    #[test]
    fn first_divergence_reports_length_mismatch() {
        let d = first_divergence("x", "a\nb\n", "a\n");
        assert!(d.contains("line 2"), "{d}");
        assert!(d.contains("expected has extra"), "{d}");
    }

    #[test]
    fn scenario_names_are_unique_and_nonempty() {
        let s = scenarios();
        assert!(s.len() >= 16);
        let mut names: Vec<&str> = s.iter().map(|sc| sc.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), s.len(), "duplicate scenario names");
    }
}
