//! Scale probe: a synthetic sharded cluster far beyond the paper's
//! 15-server testbed.
//!
//! The scenario registers `servers × vms_per_server` VMs in the SoA
//! [`CloudManager`], partitions the servers into `S` contiguous shards
//! ([`perfcloud_sim::shard::partition`]), and gives each shard its own
//! [`Simulation`] driving one batched periodic event per sampling interval
//! — the event shape the node-manager sampling path uses. Each firing
//! streams the shard's VM state columns (EWMA update per VM, the monitor's
//! §III-B smoothing arithmetic) with no per-record pointer chasing; one
//! VM-sample counts as one aggregate event. Shards advance between epoch
//! barriers aligned to the sampling interval, concurrently when `threads`
//! is set.
//!
//! Every run folds its final EWMA column into an order-independent-of-`S`
//! digest: per-VM state depends only on that VM's own sample sequence, so
//! the digest must be identical at any shard count — the cheap end-to-end
//! proof that sharding changed no arithmetic. A plain nested loop over the
//! same columns ([`direct_loop`]) is the no-engine baseline the ≤5%
//! single-shard-overhead target is measured against.

use crate::benchjson::BenchRecord;
use perfcloud_cluster::shard::for_each_shard;
use perfcloud_core::{AppId, CloudManager, VmRecord};
use perfcloud_host::{Priority, ServerId, VmId};
use perfcloud_sim::rng::fnv1a64;
use perfcloud_sim::shard::partition;
use perfcloud_sim::{SimDuration, SimTime, Simulation};
use std::time::Instant;

/// EWMA smoothing weight, the paper's default α.
const ALPHA: f64 = 0.5;

/// Sampling interval of the synthetic cluster, the paper's 5 s cadence.
const INTERVAL_SECS: f64 = 5.0;

/// One scale-scenario configuration.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Physical servers in the synthetic cluster.
    pub servers: usize,
    /// VMs per server (one low-priority suspect, the rest high-priority).
    pub vms_per_server: usize,
    /// Sampling intervals simulated (= epochs between barriers).
    pub intervals: usize,
    /// In-run shards.
    pub shards: usize,
    /// Advance shards on scoped worker threads between barriers.
    pub threads: bool,
}

impl ScaleConfig {
    /// The full benchmark scenario: 100k servers / 1M VMs.
    pub fn full(shards: usize) -> Self {
        ScaleConfig { servers: 100_000, vms_per_server: 10, intervals: 150, shards, threads: false }
    }

    /// A smoke-sized scenario (1k servers / 10k VMs) for `cargo test`.
    pub fn smoke(shards: usize) -> Self {
        ScaleConfig { servers: 1_000, vms_per_server: 10, intervals: 20, shards, threads: false }
    }

    /// Total VMs in the scenario.
    pub fn total_vms(&self) -> usize {
        self.servers * self.vms_per_server
    }
}

/// Measured outcome of one scale run.
#[derive(Debug, Clone)]
pub struct ScaleOutcome {
    /// Aggregate events processed (one per VM-sample).
    pub events: u64,
    /// Wall time of the drive loop (registry build excluded).
    pub wall_seconds: f64,
    /// Digest of the final per-VM EWMA column, in global VM order. Must
    /// not depend on the shard count.
    pub digest: u64,
    /// Per-shard calendar peak depth (timer-wheel high-water mark).
    pub queue_peak_depth: Vec<usize>,
    /// Per-shard microseconds spent waiting at epoch barriers.
    pub barrier_wait_us: Vec<u64>,
}

impl ScaleOutcome {
    /// Aggregate events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_seconds
    }
}

/// Builds the synthetic registry: `servers × vms_per_server` VMs, VM ids
/// dense in server-major order, one low-priority suspect per server and
/// the high-priority rest grouped into per-rack applications.
pub fn build_registry(cfg: &ScaleConfig) -> CloudManager {
    let mut cloud = CloudManager::new();
    let k = cfg.vms_per_server;
    for s in 0..cfg.servers {
        for v in 0..k {
            let vm = VmId((s * k + v) as u32);
            let record = if v == 0 {
                VmRecord { server: ServerId(s as u32), priority: Priority::Low, app: None }
            } else {
                VmRecord {
                    server: ServerId(s as u32),
                    priority: Priority::High,
                    app: Some(AppId((s / 40) as u32)),
                }
            };
            cloud.register(vm, record);
        }
    }
    cloud
}

/// One shard's streamed state: contiguous columns for its VM range.
struct ShardWorld {
    /// Smoothed per-VM signal, the mutated column.
    ewma: Vec<f64>,
    /// Per-VM raw-sample base, derived from the registry's priority and
    /// app columns at build time.
    base: Vec<f64>,
    /// Samples processed.
    events: u64,
}

/// Extracts shard-local `base` values for `server_range` from the
/// registry, streaming its SoA columns via the per-server row lists, in
/// global VM order.
fn shard_base(cloud: &CloudManager, server_range: std::ops::Range<usize>) -> Vec<f64> {
    let cols = cloud.vm_columns();
    let mut base = Vec::new();
    for s in server_range {
        for &row in cloud.rows_on(ServerId(s as u32)) {
            let row = row as usize;
            // Low-priority suspects offer a heavier raw signal; high-
            // priority members shade by application id. Arbitrary but
            // fixed arithmetic — the digest pins it.
            let b = match cols.priorities[row] {
                Priority::Low => 8.0 + (cols.ids[row].0 % 13) as f64,
                Priority::High => 1.0 + cols.apps[row].map_or(0.0, |a| (a.0 % 7) as f64) * 0.25,
            };
            base.push(b);
        }
    }
    base
}

/// Runs the sharded scale scenario.
pub fn run_scale(cfg: &ScaleConfig) -> ScaleOutcome {
    let cloud = build_registry(cfg);
    let ranges = partition(cfg.servers, cfg.shards);
    let interval = SimDuration::from_secs(INTERVAL_SECS);

    // Per-shard engines, each with one batched periodic sampling event.
    let mut sims: Vec<Simulation<ShardWorld>> = ranges
        .iter()
        .map(|r| {
            let base = shard_base(&cloud, r.clone());
            let ewma = vec![0.0f64; base.len()];
            let mut sim = Simulation::new(ShardWorld { ewma, base, events: 0 });
            sim.schedule_periodic(SimTime::ZERO + interval, interval, |w: &mut ShardWorld, _| {
                // Stream the shard's columns: x_v = base_v, s_v ← s_v + α(x_v − s_v).
                for (s, &b) in w.ewma.iter_mut().zip(w.base.iter()) {
                    *s += ALPHA * (b - *s);
                }
                w.events += w.base.len() as u64;
                true
            });
            sim
        })
        .collect();

    let mut barrier_wait_us = vec![0u64; cfg.shards];
    let start = Instant::now();
    for epoch in 1..=cfg.intervals {
        let end = SimTime::ZERO + SimDuration::from_secs(INTERVAL_SECS * epoch as f64);
        // Epoch barrier: every shard reaches `end` before any proceeds.
        let waits = for_each_shard(cfg.threads, &mut sims, |_, sim| {
            sim.run_until(end);
        });
        for (s, w) in waits.iter().enumerate() {
            barrier_wait_us[s] += w;
        }
    }
    let wall_seconds = start.elapsed().as_secs_f64();

    // Shards are contiguous server ranges and each shard's VMs are laid
    // out in global order, so shard-order concatenation is global VM order.
    let mut hash_buf = Vec::with_capacity(cfg.total_vms() * 8);
    let mut events = 0u64;
    let mut queue_peak_depth = Vec::with_capacity(cfg.shards);
    for sim in &sims {
        let w = sim.world();
        events += w.events;
        for s in &w.ewma {
            hash_buf.extend_from_slice(&s.to_bits().to_le_bytes());
        }
        queue_peak_depth.push(sim.wheel_stats().peak_len as usize);
    }
    ScaleOutcome {
        events,
        wall_seconds,
        digest: fnv1a64(&hash_buf),
        queue_peak_depth,
        barrier_wait_us,
    }
}

/// The no-engine baseline: the same columns and arithmetic as a plain
/// nested loop — "today's loop" with neither calendar nor shard structure.
pub fn direct_loop(cfg: &ScaleConfig) -> ScaleOutcome {
    let cloud = build_registry(cfg);
    let base = shard_base(&cloud, 0..cfg.servers);
    let mut ewma = vec![0.0f64; base.len()];
    let mut events = 0u64;
    let start = Instant::now();
    for _ in 0..cfg.intervals {
        for (s, &b) in ewma.iter_mut().zip(base.iter()) {
            *s += ALPHA * (b - *s);
        }
        events += base.len() as u64;
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    let mut hash_buf = Vec::with_capacity(ewma.len() * 8);
    for s in &ewma {
        hash_buf.extend_from_slice(&s.to_bits().to_le_bytes());
    }
    ScaleOutcome {
        events,
        wall_seconds,
        digest: fnv1a64(&hash_buf),
        queue_peak_depth: vec![0],
        barrier_wait_us: vec![0],
    }
}

/// The full `BENCH_scale.json` measurement: the direct-loop baseline, the
/// single-shard engine run (the gated `events_per_sec` headline), and
/// multi-shard runs proving digest invariance while reporting per-shard
/// queue peaks and barrier waits.
pub fn probe(cfg: &ScaleConfig) -> BenchRecord {
    let direct = direct_loop(cfg);
    let one = run_scale(&ScaleConfig { shards: 1, ..cfg.clone() });
    assert_eq!(one.digest, direct.digest, "engine driving changed the arithmetic");

    let mut record = BenchRecord {
        name: "scale".into(),
        wall_seconds: one.wall_seconds,
        events_fired: Some(one.events),
        extras: vec![
            ("servers".into(), cfg.servers as f64),
            ("vms".into(), cfg.total_vms() as f64),
            ("intervals".into(), cfg.intervals as f64),
            ("direct_loop_eps".into(), direct.events_per_sec()),
            ("single_shard_overhead".into(), 1.0 - one.events_per_sec() / direct.events_per_sec()),
        ],
    };
    for shards in [2usize, 4, 7] {
        let multi = run_scale(&ScaleConfig { shards, ..cfg.clone() });
        assert_eq!(multi.digest, one.digest, "digest diverged at {shards} shards");
        record.extras.push((format!("eps_shards{shards}"), multi.events_per_sec()));
        if shards == 4 {
            for (s, &peak) in multi.queue_peak_depth.iter().enumerate() {
                record.extras.push((format!("shard{s}_queue_peak_depth"), peak as f64));
            }
            for (s, &us) in multi.barrier_wait_us.iter().enumerate() {
                record.extras.push((format!("shard{s}_barrier_wait_us"), us as f64));
            }
        }
    }
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_invariant_across_shard_counts() {
        let reference = run_scale(&ScaleConfig::smoke(1));
        assert_eq!(reference.events, 10_000 * 20);
        for shards in [2usize, 3, 4, 7] {
            let out = run_scale(&ScaleConfig::smoke(shards));
            assert_eq!(out.events, reference.events, "shards={shards}");
            assert_eq!(out.digest, reference.digest, "shards={shards}");
            assert_eq!(out.queue_peak_depth.len(), shards);
        }
        // Threaded epoch advancement changes latency only.
        let threaded = run_scale(&ScaleConfig { threads: true, ..ScaleConfig::smoke(4) });
        assert_eq!(threaded.digest, reference.digest);
    }

    #[test]
    fn direct_loop_matches_engine_arithmetic() {
        let direct = direct_loop(&ScaleConfig::smoke(1));
        let engine = run_scale(&ScaleConfig::smoke(1));
        assert_eq!(direct.digest, engine.digest);
        assert_eq!(direct.events, engine.events);
    }

    #[test]
    fn registry_has_expected_shape() {
        let cfg = ScaleConfig::smoke(1);
        let cloud = build_registry(&cfg);
        assert_eq!(cloud.len(), cfg.total_vms());
        let rows = cloud.rows_on(ServerId(0));
        assert_eq!(rows.len(), cfg.vms_per_server);
        let cols = cloud.vm_columns();
        // One low-priority suspect per server, first in id order.
        assert_eq!(cols.priorities[rows[0] as usize], Priority::Low);
    }
}
