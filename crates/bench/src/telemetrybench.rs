//! Telemetry replay-path throughput probe.
//!
//! Measures the record/replay backend end to end on a synthetic sample
//! stream: serialize a large recording, parse it back, and drive the
//! parsed samples through [`ReplaySource`] into a [`PerformanceMonitor`] —
//! the exact path a shadow-mode run takes per node manager. The headline
//! number is `replay_samples_per_sec` (parse + source + ingest); the
//! committed `BENCH_telemetry.json` record is the CI regression baseline.

use crate::benchjson::BenchRecord;
use perfcloud_core::{PerfCloudConfig, PerformanceMonitor};
use perfcloud_host::{CounterSnapshot, VmCounters, VmId};
use perfcloud_sim::SimTime;
use perfcloud_telemetry::{
    RecordedSample, RecordingFormat, Sample, TelemetryReader, TelemetryRecording, TelemetryWriter,
    RECORDING_VERSION,
};
use std::time::Instant;

/// Sampling interval of the synthetic stream, microseconds (the paper's
/// 5 s cadence).
const INTERVAL_US: u64 = 5_000_000;

/// Builds a synthetic recording: `vms` VMs sampled for `intervals`
/// intervals with smoothly growing monotone counters — every sample passes
/// the monitor's staleness/regression checks, so the ingest loop measures
/// the accept path, not rejection short-circuits.
pub fn synthetic_recording(vms: u32, intervals: u64) -> TelemetryRecording {
    let mut samples = Vec::with_capacity((vms as usize) * (intervals as usize));
    let mut seq = 0u64;
    for k in 0..intervals {
        let time = SimTime::from_micros((k + 1) * INTERVAL_US);
        for v in 0..vms {
            let t = (k + 1) as f64;
            let lean = 1.0 + f64::from(v) * 0.25;
            let counters = VmCounters {
                io_serviced: 900.0 * lean * t,
                io_service_bytes: 4096.0 * 900.0 * lean * t,
                io_wait_time: 0.4 * t,
                cpu_time: 2.5 * t,
                cycles: 6.0e9 * t,
                instructions: 4.0e9 / lean * t,
                llc_references: 2.0e7 * t,
                llc_misses: 3.0e6 * t,
            };
            samples.push(RecordedSample {
                server: 0,
                sample: Sample { time, vm: VmId(v), seq, snapshot: CounterSnapshot { counters } },
            });
            seq += 1;
        }
    }
    TelemetryRecording { version: RECORDING_VERSION, source: "sim".into(), samples }
}

/// Serializes, re-parses, and replays a synthetic recording through the
/// monitor, timing each leg. Returns the record for `BENCH_telemetry.json`:
/// `replay_samples_per_sec` (the gated headline), `parse_samples_per_sec`,
/// and `encode_bytes`.
pub fn probe() -> BenchRecord {
    const VMS: u32 = 12;
    const INTERVALS: u64 = 40_000; // 480k samples ≈ 64 simulated days
    let recording = synthetic_recording(VMS, INTERVALS);
    let total = recording.samples.len();

    let mut writer = TelemetryWriter::new(RecordingFormat::Binary, &recording.source);
    for r in &recording.samples {
        writer.append(r.server, &r.sample);
    }
    let bytes = writer.finish();

    let parse_start = Instant::now();
    let parsed = TelemetryReader::parse(&bytes).expect("synthetic recording parses");
    let parse_secs = parse_start.elapsed().as_secs_f64();
    assert_eq!(parsed.samples.len(), total);

    // The replay leg: source cursor + monitor ingest, as a node manager
    // drives it — one collect per sampling instant.
    use perfcloud_host::{PhysicalServer, ServerConfig, ServerId};
    use perfcloud_sim::RngFactory;
    use perfcloud_telemetry::{CounterSource as _, ReplaySource};
    let mut source = ReplaySource::for_server(&parsed, 0);
    let mut monitor = PerformanceMonitor::new(&PerfCloudConfig::default());
    // The source ignores the server (streams are bound at construction);
    // an empty host satisfies the trait signature.
    let server = PhysicalServer::new(
        ServerId(0),
        ServerConfig::default(),
        RngFactory::new(1),
        perfcloud_sim::SimDuration::from_micros(100_000),
    );
    let mut buf: Vec<Sample> = Vec::new();
    let mut ingested = 0u64;
    let replay_start = Instant::now();
    for k in 0..INTERVALS {
        let now = SimTime::from_micros((k + 1) * INTERVAL_US);
        buf.clear();
        source.collect_into(now, &server, &mut buf);
        for s in &buf {
            let _ = monitor.ingest(s.time, s.vm, s.snapshot);
            ingested += 1;
        }
    }
    let replay_secs = replay_start.elapsed().as_secs_f64();
    assert_eq!(ingested as usize, total, "replay delivered every sample");

    let mut record = BenchRecord::wall("telemetry", parse_secs + replay_secs);
    record.extras.push(("samples".into(), total as f64));
    record.extras.push(("encode_bytes".into(), bytes.len() as f64));
    record.extras.push(("parse_samples_per_sec".into(), total as f64 / parse_secs.max(1e-9)));
    record.extras.push(("replay_samples_per_sec".into(), total as f64 / replay_secs.max(1e-9)));
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_recording_is_monotone_and_dense() {
        let rec = synthetic_recording(3, 5);
        assert_eq!(rec.samples.len(), 15);
        // Monotone per VM: no sample regresses its predecessor.
        for v in 0..3u32 {
            let series: Vec<_> = rec.samples.iter().filter(|r| r.sample.vm == VmId(v)).collect();
            for w in series.windows(2) {
                assert!(!w[1].sample.snapshot.regressed_since(&w[0].sample.snapshot));
                assert!(w[1].sample.time > w[0].sample.time);
            }
        }
    }
}
