//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/figN.rs` regenerates one figure of the paper's
//! evaluation: it builds the corresponding scenario from
//! [`perfcloud_cluster`], runs it, prints the same rows/series the paper
//! plots alongside the paper's reported anchors, and self-checks the
//! qualitative shape (`shape check … HOLDS/VIOLATED`). `run_all` executes
//! everything in sequence; `--fast` shrinks the two expensive sweeps.

pub mod accuracy;
pub mod baseline;
pub mod benchjson;
pub mod ctrlbench;
pub mod enginebench;
pub mod forked;
pub mod golden;
pub mod placementbench;
pub mod report;
pub mod scalebench;
pub mod scenarios;
pub mod shadow;
pub mod sweep;
pub mod telemetrybench;

pub use report::Table;
