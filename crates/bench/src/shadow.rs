//! Shadow mode: replay a telemetry recording through every pipeline cell.
//!
//! The production deployment story behind the accuracy scoreboard is
//! *shadow evaluation*: record the counter stream of a live run once, then
//! drive every candidate (detector × identifier) pipeline from the same
//! recording and score them against the known truth — no pipeline under
//! test ever touches the live system, and every cell sees byte-identical
//! input. This module implements that loop on the simulated testbed: for
//! each cell of [`crate::accuracy`]'s scenario matrix it runs the live
//! experiment with a tee attached, replays the serialized recording
//! through a second build of the same cell, and scores both runs.
//!
//! Because PerfCloud is a closed loop (throttling changes the counters the
//! collector sees next interval), a recording is only a faithful shadow
//! input for the pipeline that produced it; replaying it under the *same*
//! pipeline must reproduce the live decisions exactly. That is the
//! invariant `shadow_bench` enforces cell-for-cell: the replayed
//! scoreboard must be byte-identical to the live one — which `--check`
//! then pins against the committed `accuracy_scoreboard.trace` golden.

use crate::accuracy::{score_steps, CellScore, ScenarioSpec};
use crate::sweep;
use perfcloud_cluster::labels::{parse_trace, GroundTruth};
use perfcloud_cluster::Experiment;
use perfcloud_core::PipelineSpec;
use perfcloud_telemetry::{RecordingFormat, TelemetryReader};
use std::sync::Arc;

/// One shadow-evaluated cell: the live score, the replayed score, and the
/// recording that carried the counters from one to the other.
#[derive(Debug, Clone)]
pub struct ShadowCell {
    /// Score of the live (teeing) run.
    pub live: CellScore,
    /// Score of the run replayed from the recording.
    pub replayed: CellScore,
    /// Samples in the recording.
    pub samples: usize,
    /// Serialized recording size in bytes.
    pub bytes: usize,
}

impl ShadowCell {
    /// Whether the replayed run reproduced the live decisions exactly.
    pub fn matches(&self) -> bool {
        self.live == self.replayed
    }
}

fn score(e: &Experiment, scenario: &ScenarioSpec, pipeline: PipelineSpec) -> CellScore {
    let truth = GroundTruth::from_experiment(e);
    let steps = parse_trace(&e.decision_trace().expect("trace enabled").canonical());
    let mut s = score_steps(&truth, &steps);
    s.pipeline = pipeline.name();
    s.scenario = scenario.name.to_string();
    s
}

/// Runs one (scenario × pipeline) cell in shadow mode: live run with a
/// binary tee, then a replay of the serialized recording through a fresh
/// build of the same cell.
pub fn run_shadow_cell(scenario: &ScenarioSpec, pipeline: PipelineSpec) -> ShadowCell {
    let mut cfg = (scenario.build)();
    cfg.pipeline = pipeline;
    cfg.telemetry.tee = Some(RecordingFormat::Binary);
    let mut live_e = Experiment::build(cfg);
    live_e.enable_decision_trace();
    live_e.run();
    let live = score(&live_e, scenario, pipeline);
    let bytes = live_e.take_recording().expect("tee armed");
    let recording = TelemetryReader::parse(&bytes).expect("own recording parses");
    let samples = recording.samples.len();

    let mut cfg = (scenario.build)();
    cfg.pipeline = pipeline;
    cfg.telemetry.replay = Some(Arc::new(recording));
    let mut replay_e = Experiment::build(cfg);
    replay_e.enable_decision_trace();
    replay_e.run();
    let replayed = score(&replay_e, scenario, pipeline);

    ShadowCell { live, replayed, samples, bytes: bytes.len() }
}

/// Shadow-evaluates the full accuracy matrix — every pipeline over every
/// scenario, in matrix order (parallel but deterministic, like
/// [`crate::accuracy::run_matrix`]).
pub fn run_shadow_matrix() -> Vec<ShadowCell> {
    let scenarios = crate::accuracy::accuracy_scenarios();
    let pipes = crate::accuracy::pipelines();
    let cells: Vec<(usize, usize)> =
        (0..pipes.len()).flat_map(|p| (0..scenarios.len()).map(move |s| (p, s))).collect();
    sweep::run(cells.len(), |i| {
        let (p, s) = cells[i];
        run_shadow_cell(&scenarios[s], pipes[p])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::{accuracy_scenarios, pipelines};

    /// One full cell through the shadow loop — the clean scenario under
    /// the paper pipeline must replay to the exact same score.
    #[test]
    fn clean_cell_shadow_matches() {
        let scenarios = accuracy_scenarios();
        let clean = scenarios.iter().find(|s| s.name == "clean").expect("clean scenario");
        let cell = run_shadow_cell(clean, pipelines()[0]);
        assert!(cell.samples > 0);
        assert!(cell.bytes > cell.samples * 8, "binary records are > 8 bytes each");
        assert!(
            cell.matches(),
            "replay diverged from live: {:?} vs {:?}",
            cell.live,
            cell.replayed
        );
    }
}
