//! Fork-point sweep runner: share one simulation prefix across a sweep.
//!
//! Many figure sweeps run the *same* scenario prefix — boot the cluster,
//! settle the antagonist placement, reach the divergence instant — once per
//! sweep point, then vary a single knob (a cap fraction, an antagonist
//! onset, a mitigation). [`sweep`] runs the common prefix once on a parent
//! [`Experiment`], forks an independent snapshot per point, applies each
//! point's divergence to its fork, and distributes the forks across the
//! `PERFCLOUD_THREADS` worker pool (forks are `Send`; forking itself is a
//! cheap deep copy done serially on the coordinator).
//!
//! Exactness is inherited from [`Experiment::fork`]: every fork's result,
//! decision trace, and flight export is byte-identical to a fresh run of
//! its diverged configuration, so converting a sweep to fork-points can
//! never change a figure — only its wall time. The returned
//! [`ForkedResults`] carries the accounting the `BENCH_fig*.json` records
//! publish: how many points forked and how many prefix ticks the sharing
//! avoided re-simulating.

use crate::sweep;
use perfcloud_cluster::Experiment;
use std::sync::Mutex;

/// Results of a fork-point sweep, with prefix-sharing accounting.
pub struct ForkedResults<T> {
    /// Per-point results, in point order.
    pub results: Vec<T>,
    /// Points that ran as forks of the shared parent.
    pub forked_points: usize,
    /// Ticks of shared prefix the parent executed once.
    pub prefix_ticks: u64,
    /// Ticks a fresh-run-per-point sweep would have re-simulated:
    /// `(points − 1) × prefix_ticks`.
    pub prefix_ticks_saved: u64,
}

/// Forks `points` snapshots off `parent` (which has already run the shared
/// prefix) and evaluates `f(point_index, fork)` for each on the sweep
/// thread pool. Results come back in point order.
pub fn sweep<T, F>(parent: &Experiment, points: usize, f: F) -> ForkedResults<T>
where
    T: Send,
    F: Fn(usize, Experiment) -> T + Sync,
{
    // Fork serially: `fork()` borrows the parent, and a deep copy is tiny
    // next to the simulation work each point then does in parallel.
    let forks: Vec<Mutex<Option<Experiment>>> =
        (0..points).map(|_| Mutex::new(Some(parent.fork()))).collect();
    let results = sweep::run(points, |i| {
        let fork = forks[i]
            .lock()
            .expect("unpoisoned fork slot")
            .take()
            .expect("each point claims its fork once");
        f(i, fork)
    });
    let prefix_ticks = parent.ticks_stepped();
    ForkedResults {
        results,
        forked_points: points,
        prefix_ticks,
        prefix_ticks_saved: prefix_ticks * points.saturating_sub(1) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfcloud_cluster::{
        AntagonistKind, AntagonistPlacement, ClusterSpec, ExperimentConfig, Mitigation,
    };
    use perfcloud_frameworks::Benchmark;
    use perfcloud_sim::SimTime;

    fn parent() -> Experiment {
        let mut cfg = ExperimentConfig::new(ClusterSpec::small_scale(5), Mitigation::Default);
        cfg.jobs.push((SimTime::from_secs(5), Benchmark::Wordcount.job(4)));
        cfg.antagonists.push(AntagonistPlacement::pinned(AntagonistKind::Fio, 0).deferred());
        cfg.max_sim_time = SimTime::from_secs(2_000);
        Experiment::build(cfg)
    }

    #[test]
    fn forked_sweep_matches_fresh_runs_and_counts_savings() {
        let onsets = [10u64, 20, 30];
        let mut p = parent();
        // Shared prefix: everything before the earliest divergence.
        while p.now() < SimTime::from_secs(9) {
            p.step_tick();
        }
        let out = sweep(&p, onsets.len(), |i, mut e| {
            e.start_antagonist(0, SimTime::from_secs(onsets[i]));
            e.run().sole_jct()
        });
        assert_eq!(out.forked_points, 3);
        assert_eq!(out.prefix_ticks, 90);
        assert_eq!(out.prefix_ticks_saved, 180);
        for (i, &onset) in onsets.iter().enumerate() {
            let mut fresh = parent();
            fresh.start_antagonist(0, SimTime::from_secs(onset));
            assert_eq!(out.results[i], fresh.run().sole_jct(), "onset {onset}");
        }
    }
}
