//! Deterministic parallel sweep runner.
//!
//! Every expensive harness loop in this crate has the same shape: `n`
//! independent repetitions, each fully determined by its index (the
//! repetition derives its own RNG stream from the master seed and the
//! index, so nothing depends on scheduling). [`run`] executes those
//! repetitions on a small thread pool and returns the results **in index
//! order**, which makes the downstream output byte-identical to a
//! sequential run — the only observable difference is wall time.
//!
//! Worker threads pull indices from a shared atomic counter (work
//! stealing), so uneven repetition costs still balance. The thread count
//! defaults to the machine's available parallelism and can be overridden
//! with `PERFCLOUD_THREADS` (set it to `1` to force sequential execution,
//! e.g. when diffing against a parallel run).
//!
//! Repetition closures must not print: stdout interleaving is the one
//! channel this module cannot order. Return the data and print from the
//! caller, after `run` returns.

use perfcloud_sim::RngFactory;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads a sweep of `jobs` repetitions will use:
/// `PERFCLOUD_THREADS` if set, otherwise the available parallelism, never
/// more than `jobs` and never less than 1.
pub fn worker_count(jobs: usize) -> usize {
    let hw = std::env::var("PERFCLOUD_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    hw.clamp(1, jobs.max(1))
}

/// The RNG factory for repetition `rep` of a sweep keyed by `master_seed`:
/// an insulated child stream family, identical no matter which thread (or
/// whether any thread) runs the repetition.
pub fn rep_factory(master_seed: u64, rep: usize) -> RngFactory {
    RngFactory::new(master_seed).child_indexed("rep", rep as u64)
}

/// Runs `f(0), f(1), …, f(jobs - 1)` across [`worker_count`] threads and
/// returns the results in index order.
pub fn run<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_with_threads(jobs, worker_count(jobs), f)
}

/// [`run`] with an explicit thread count. `threads == 1` executes inline
/// with no pool at all; results are in index order either way.
pub fn run_with_threads<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    if threads <= 1 {
        return (0..jobs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("unpoisoned result slot") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("unpoisoned result slot")
                .expect("every index was claimed by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_with_threads(64, 8, |i| i * 3);
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential() {
        // Uneven per-job cost exercises the work-stealing path.
        let work = |i: usize| {
            let mut acc = i as u64;
            for k in 0..(i % 7) * 1_000 {
                acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(k as u64);
            }
            acc
        };
        let seq = run_with_threads(40, 1, work);
        let par = run_with_threads(40, 6, work);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<u8> = run_with_threads(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn rep_factories_are_insulated_and_stable() {
        use rand::Rng;
        let a = rep_factory(42, 3).stream("x").gen::<u64>();
        let b = rep_factory(42, 3).stream("x").gen::<u64>();
        let c = rep_factory(42, 4).stream("x").gen::<u64>();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
