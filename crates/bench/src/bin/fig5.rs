//! Figure 5 — identifying an I/O antagonist by cross-correlation.
//!
//! Scenario (paper §III-B): terasort VMs colocated with a fio random-read
//! VM, a sysbench-oltp VM (8 threads, read-only) and a sysbench-cpu VM
//! (4 threads, primes). Output:
//!
//! * (a) the victim's normalized iowait-ratio deviation series;
//! * (b) each suspect's normalized I/O throughput series;
//! * (c) Pearson correlation vs. dataset size.
//!
//! Paper anchors: fio correlates strongly (≥ 0.8) from a dataset as small
//! as 3 samples; oltp and cpu stay well below the threshold.

use perfcloud_bench::report::{f3, Table};
use perfcloud_bench::scenarios::*;
use perfcloud_cluster::{AntagonistKind, AntagonistPlacement, Mitigation};
use perfcloud_core::antagonist::Resource;
use perfcloud_core::VmMetricKind;
use perfcloud_frameworks::Benchmark;
use perfcloud_host::VmId;
use perfcloud_sim::SimDuration;
use perfcloud_stats::pearson::pearson_missing_as_zero;
use perfcloud_stats::timeseries::align_tail;

fn main() {
    let seed = base_seed();
    println!("=== Figure 5: I/O antagonist identification ===\n");

    let antagonists = vec![
        AntagonistPlacement::pinned(AntagonistKind::Fio, 0).starting_at(ANTAGONIST_ONSET),
        AntagonistPlacement::pinned(AntagonistKind::SysbenchOltp, 0),
        AntagonistPlacement::pinned(AntagonistKind::SysbenchCpu, 0),
    ];
    let spec = Benchmark::Terasort.mapreduce_job(10 * (64 << 20), 10);
    let mut e = small_scale_spec(spec, antagonists, Mitigation::Default, seed);
    let _ = e.run();
    e.run_for(SimDuration::from_secs(10.0));

    let suspects =
        [(VmId(10), "fio-randread"), (VmId(11), "sysbench-oltp"), (VmId(12), "sysbench-cpu")];
    let nm = &e.node_managers[0];
    let victim = nm.identifier().deviation_series(Resource::Io);
    let victim_norm = victim.normalized_by_peak();

    // (a) + (b): normalized series, one row per sample.
    println!("Fig 5(a,b): normalized deviation and suspect I/O throughput series");
    let mut t = Table::new(vec!["t (s)", "victim dev", "fio", "oltp", "cpu"]);
    let suspect_series: Vec<_> = suspects
        .iter()
        .map(|&(vm, _)| {
            nm.monitor()
                .series(vm, VmMetricKind::IoBps)
                .expect("suspect monitored")
                .normalized_by_peak()
        })
        .collect();
    for (i, &ts) in victim_norm.times().iter().enumerate() {
        let mut row = vec![
            format!("{:.0}", ts.as_secs_f64()),
            victim_norm.values()[i].map(f3).unwrap_or_else(|| "-".into()),
        ];
        for s in &suspect_series {
            let v = s.times().iter().position(|&u| u == ts).and_then(|k| s.values()[k]);
            row.push(v.map(f3).unwrap_or_else(|| "-".into()));
        }
        t.row(row);
    }
    t.print();

    // (c): correlation vs dataset size. Identification runs online *while
    // the victim application exists*, so the dataset is the most recent
    // `size` samples of the job's lifetime (trailing post-job samples,
    // where there is no victim to protect, are excluded).
    println!("\nFig 5(c): Pearson correlation vs dataset size (missing-as-zero)");
    println!("(paper: fio >= 0.8 from size 3; sysbench oltp/cpu stay below)");
    let alive = victim.trim_trailing_missing();
    let mut t = Table::new(vec!["dataset size", "fio", "oltp", "cpu"]);
    let mut fio_at_3 = 0.0;
    let mut fio_beats_decoys = true;
    let mut decoys_ok = true;
    // The dataset accumulates from the last sample before the suspect
    // became active (the paper's Fig. 5a/b series likewise span the onset).
    let onset_idx = alive.times().iter().rposition(|&u| u < ANTAGONIST_ONSET).unwrap_or(0);
    for size in [3usize, 6, 9, 12, 15] {
        let mut row = vec![size.to_string()];
        let mut fio_row = 0.0;
        for (k, &(vm, _)) in suspects.iter().enumerate() {
            let usage = nm.monitor().series(vm, VmMetricKind::IoBps).expect("series");
            let (x, y) = align_tail(&alive, usage, alive.len());
            let end = (onset_idx + size).min(x.len());
            let start = end.saturating_sub(size);
            let r = pearson_missing_as_zero(&x[start..end], &y[start..end]).unwrap_or(0.0);
            if k == 0 {
                if size == 3 {
                    fio_at_3 = r;
                }
                fio_row = r;
            } else {
                decoys_ok &= r < 0.8;
                fio_beats_decoys &= fio_row > r;
            }
            row.push(f3(r));
        }
        t.row(row);
    }
    t.print();

    println!(
        "\nshape check (fio identified, r >= 0.8, from a dataset as small as 3): {}",
        if fio_at_3 >= 0.8 { "HOLDS" } else { "VIOLATED" }
    );
    println!(
        "shape check (oltp/cpu never cross the threshold): {}",
        if decoys_ok { "HOLDS" } else { "VIOLATED" }
    );
    println!(
        "shape check (fio outranks the decoys at every size): {}",
        if fio_beats_decoys { "HOLDS" } else { "VIOLATED" }
    );
}
