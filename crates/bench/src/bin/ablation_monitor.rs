//! Ablation — monitor tuning (DESIGN.md §5): EWMA smoothing weight and
//! sampling interval vs. detection latency and false positives.
//!
//! For each (α, interval) pair, runs the Fig. 3 terasort scenario twice —
//! alone and with a fio antagonist arriving mid-run — and reports:
//!
//! * detection latency: seconds from the fio onset until the smoothed
//!   iowait-ratio deviation first exceeds ℋ = 10;
//! * false positives: intervals in the *alone* run whose deviation exceeds
//!   ℋ (should be zero).
//!
//! Expected shape: heavier smoothing (small α) suppresses false positives
//! but delays detection; coarser sampling delays detection roughly by the
//! interval length. The paper's 5 s / EWMA choice sits in the corner with
//! zero false positives and single-interval latency.

use perfcloud_bench::report::Table;
use perfcloud_bench::scenarios::*;
use perfcloud_bench::sweep;
use perfcloud_cluster::{
    AntagonistKind, AntagonistPlacement, ClusterSpec, Experiment, ExperimentConfig, Mitigation,
};
use perfcloud_core::antagonist::Resource;
use perfcloud_core::PerfCloudConfig;
use perfcloud_frameworks::Benchmark;
use perfcloud_sim::{SimDuration, SimTime};

fn run(alpha: f64, interval: f64, with_fio: bool, seed: u64) -> Vec<(f64, f64)> {
    let pc = PerfCloudConfig {
        ewma_alpha: alpha,
        sample_interval: SimDuration::from_secs(interval),
        h_io: f64::INFINITY, // monitoring only
        h_cpi: f64::INFINITY,
        ..Default::default()
    };
    let mut cfg = ExperimentConfig::new(ClusterSpec::small_scale(seed), Mitigation::PerfCloud(pc));
    cfg.jobs.push((JOB_START, Benchmark::Terasort.job(20)));
    if with_fio {
        cfg.antagonists.push(
            AntagonistPlacement::pinned(AntagonistKind::Fio, 0).starting_at(ANTAGONIST_ONSET),
        );
    }
    cfg.max_sim_time = SimTime::from_secs(3_600);
    let mut e = Experiment::build(cfg);
    let _ = e.run();
    let s = e.node_managers[0].identifier().deviation_series(Resource::Io);
    s.times()
        .iter()
        .zip(s.values())
        .filter_map(|(&t, &v)| v.map(|v| (t.as_secs_f64(), v)))
        .collect()
}

fn main() {
    let seed = base_seed();
    const H: f64 = 10.0;
    println!("=== Ablation: EWMA weight x sampling interval ===");
    println!("(terasort-20; fio onset at t = {}s; H = {H})\n", ANTAGONIST_ONSET.as_secs_f64());

    let mut t = Table::new(vec![
        "alpha",
        "interval (s)",
        "detection latency (s)",
        "false positives (alone)",
    ]);
    // 3×3 grid × {alone, contended} = 18 independent experiments; job 2k is
    // the alone run for grid point k, job 2k+1 its contended twin.
    let grid: Vec<(f64, f64)> = [0.2, 0.5, 1.0]
        .iter()
        .flat_map(|&alpha| [2.5, 5.0, 10.0].iter().map(move |&interval| (alpha, interval)))
        .collect();
    let runs = sweep::run(grid.len() * 2, |j| {
        let (alpha, interval) = grid[j / 2];
        run(alpha, interval, j % 2 == 1, seed)
    });
    for (k, &(alpha, interval)) in grid.iter().enumerate() {
        let alone = &runs[2 * k];
        let contended = &runs[2 * k + 1];
        let fp = alone.iter().filter(|&&(_, v)| v > H).count();
        let onset = ANTAGONIST_ONSET.as_secs_f64();
        let latency = contended
            .iter()
            .find(|&&(time, v)| time > onset && v > H)
            .map(|&(time, _)| time - onset);
        t.row(vec![
            format!("{alpha}"),
            format!("{interval}"),
            latency.map(|l| format!("{l:.0}")).unwrap_or_else(|| "none".into()),
            fp.to_string(),
        ]);
    }
    t.print();
    println!(
        "\n(the paper's operating point is alpha-smoothed sampling at 5 s: detection within\n\
 \"a few seconds\" and no false positives when running alone)"
    );
}
