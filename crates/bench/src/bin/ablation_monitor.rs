//! Ablation — monitor tuning (DESIGN.md §5): EWMA smoothing weight and
//! sampling interval vs. detection latency and false positives.
//!
//! For each (α, interval) pair, runs the Fig. 3 terasort scenario twice —
//! alone and with a fio antagonist arriving mid-run — and reports:
//!
//! * detection latency: seconds from the fio onset until the smoothed
//!   iowait-ratio deviation first exceeds ℋ = 10;
//! * false positives: intervals in the *alone* run whose deviation exceeds
//!   ℋ (should be zero).
//!
//! Expected shape: heavier smoothing (small α) suppresses false positives
//! but delays detection; coarser sampling delays detection roughly by the
//! interval length. The paper's 5 s / EWMA choice sits in the corner with
//! zero false positives and single-interval latency.
//!
//! Grid points cannot share a parent (each builds its monitors with a
//! different α/interval), but within a grid point the alone and contended
//! twins diverge only at the fio onset: one parent per point runs the
//! pre-onset prefix, then each twin is a fork (the alone fork simply never
//! starts the booted, inert antagonist VM).

use perfcloud_bench::benchjson::BenchRecord;
use perfcloud_bench::report::Table;
use perfcloud_bench::scenarios::*;
use perfcloud_bench::sweep;
use perfcloud_cluster::{
    AntagonistKind, AntagonistPlacement, ClusterSpec, Experiment, ExperimentConfig, Mitigation,
};
use perfcloud_core::antagonist::Resource;
use perfcloud_core::PerfCloudConfig;
use perfcloud_frameworks::Benchmark;
use perfcloud_sim::{SimDuration, SimTime};

type Series = Vec<(f64, f64)>;

fn deviation_series(e: &Experiment) -> Series {
    let s = e.node_managers[0].identifier().deviation_series(Resource::Io);
    s.times()
        .iter()
        .zip(s.values())
        .filter_map(|(&t, &v)| v.map(|v| (t.as_secs_f64(), v)))
        .collect()
}

/// Runs one grid point's alone/contended twins off a shared parent.
/// Returns (alone series, contended series, prefix ticks shared).
fn grid_point(alpha: f64, interval: f64, seed: u64) -> (Series, Series, u64) {
    let pc = PerfCloudConfig {
        ewma_alpha: alpha,
        sample_interval: SimDuration::from_secs(interval),
        h_io: f64::INFINITY, // monitoring only
        h_cpi: f64::INFINITY,
        ..Default::default()
    };
    let mut cfg = ExperimentConfig::new(ClusterSpec::small_scale(seed), Mitigation::PerfCloud(pc));
    cfg.jobs.push((JOB_START, Benchmark::Terasort.job(20)));
    cfg.antagonists.push(AntagonistPlacement::pinned(AntagonistKind::Fio, 0).deferred());
    cfg.max_sim_time = SimTime::from_secs(3_600);
    let mut parent = Experiment::build(cfg);
    let tick = SimDuration::from_secs(0.1);
    while parent.now() + tick < ANTAGONIST_ONSET {
        parent.step_tick();
    }
    let finish = |mut e: Experiment| {
        let _ = e.run();
        deviation_series(&e)
    };
    let alone = parent.fork();
    let mut contended = parent.fork();
    contended.start_antagonist(0, ANTAGONIST_ONSET);
    (finish(alone), finish(contended), parent.ticks_stepped())
}

fn main() {
    let t0 = std::time::Instant::now();
    let seed = base_seed();
    const H: f64 = 10.0;
    println!("=== Ablation: EWMA weight x sampling interval ===");
    println!("(terasort-20; fio onset at t = {}s; H = {H})\n", ANTAGONIST_ONSET.as_secs_f64());

    let mut t = Table::new(vec![
        "alpha",
        "interval (s)",
        "detection latency (s)",
        "false positives (alone)",
    ]);
    // 3×3 grid, each point an alone/contended fork pair off one parent.
    let grid: Vec<(f64, f64)> = [0.2, 0.5, 1.0]
        .iter()
        .flat_map(|&alpha| [2.5, 5.0, 10.0].iter().map(move |&interval| (alpha, interval)))
        .collect();
    let runs = sweep::run(grid.len(), |k| {
        let (alpha, interval) = grid[k];
        grid_point(alpha, interval, seed)
    });
    for (k, &(alpha, interval)) in grid.iter().enumerate() {
        let (alone, contended, _) = &runs[k];
        let fp = alone.iter().filter(|&&(_, v)| v > H).count();
        let onset = ANTAGONIST_ONSET.as_secs_f64();
        let latency = contended
            .iter()
            .find(|&&(time, v)| time > onset && v > H)
            .map(|&(time, _)| time - onset);
        t.row(vec![
            format!("{alpha}"),
            format!("{interval}"),
            latency.map(|l| format!("{l:.0}")).unwrap_or_else(|| "none".into()),
            fp.to_string(),
        ]);
    }
    t.print();
    println!(
        "\n(the paper's operating point is alpha-smoothed sampling at 5 s: detection within\n\
 \"a few seconds\" and no false positives when running alone)"
    );

    let mut rec = BenchRecord::wall("ablation_monitor", t0.elapsed().as_secs_f64());
    let saved: u64 = runs.iter().map(|r| r.2).sum();
    rec.extras.push(("sweep_points".into(), (grid.len() * 2) as f64));
    rec.extras.push(("forked_points".into(), (grid.len() * 2) as f64));
    rec.extras.push(("prefix_events_saved".into(), saved as f64));
    let _ = rec.write();
}
