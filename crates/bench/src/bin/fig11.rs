//! Figure 11 — large-scale comparison: LATE, Dolly-2/4/6 and PerfCloud on a
//! 152-node virtual cluster over 15 physical servers.
//!
//! Workload (paper §IV-C): mixes of MapReduce and Spark jobs (80% with
//! fewer than 10 tasks, 20% with 10–50), with fio and STREAM antagonist VMs
//! randomly distributed across the servers. Reported:
//!
//! * (a) breakdown of MapReduce job degradation (normalized to the job's
//!   interference-free JCT): < 10%, 10–30%, ≥ 30%;
//! * (b) the same for Spark jobs;
//! * (c) mean resource-utilization efficiency (successful task time over
//!   all task time, counting killed attempts and clones).
//!
//! Paper anchors: PerfCloud keeps every job under 30% degradation and the
//! largest fraction under 10%, at efficiency ≈ 1; Dolly beats LATE and
//! improves with more clones while its efficiency collapses (Dolly-6 worst).
//!
//! Flags: `--scale <f>` shrinks the mix (default 0.25 ≈ 50 jobs for a
//! tractable default run; use `--scale 1.0` for the paper's full 200 jobs);
//! `--heterogeneous` gives servers mixed speed factors (the paper's
//! future-work scenario).

use perfcloud_baselines::{Dolly, LatePolicy};
use perfcloud_bench::benchjson::BenchRecord;
use perfcloud_bench::report::{f2, pct, Table};
use perfcloud_bench::scenarios::base_seed;
use perfcloud_bench::{forked, sweep};
use perfcloud_cluster::{
    mean_efficiency, normalize_jcts, ClusterSpec, DegradationBreakdown, Experiment,
    ExperimentConfig, Mitigation, MixConfig, WorkloadMix,
};
use perfcloud_core::PerfCloudConfig;
use perfcloud_frameworks::{Benchmark, JobOutcome};
use perfcloud_sim::{RngFactory, SimDuration, SimTime};
use std::collections::HashMap;

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

type MitigationFactory = fn() -> Mitigation;

fn mitigations() -> Vec<(&'static str, MitigationFactory)> {
    vec![
        ("late", || Mitigation::Late(LatePolicy::default())),
        ("dolly-2", || Mitigation::Dolly(Dolly::new(2))),
        ("dolly-4", || Mitigation::Dolly(Dolly::new(4))),
        ("dolly-6", || Mitigation::Dolly(Dolly::new(6))),
        ("perfcloud", || Mitigation::PerfCloud(PerfCloudConfig::default())),
    ]
}

/// Measures each distinct job's interference-free JCT on a clean cluster.
/// Every baseline shares the same empty-cluster warm-up, so one parent runs
/// that prefix (up to just before the 5 s submission instant) and each
/// distinct job runs as a fork with its job pushed in.
fn baselines(
    mix: &WorkloadMix,
    spec: &ClusterSpec,
) -> (HashMap<String, f64>, forked::ForkedResults<(String, f64)>) {
    let jobs = mix.distinct_specs();
    let mut cfg = ExperimentConfig::new(spec.clone(), Mitigation::Default);
    cfg.max_sim_time = SimTime::from_secs(7_200);
    let mut parent = Experiment::build(cfg);
    let tick = SimDuration::from_secs(0.1);
    while parent.now() + tick < SimTime::from_secs(5) {
        parent.step_tick();
    }
    let out = forked::sweep(&parent, jobs.len(), |i, mut e| {
        let job = jobs[i].clone();
        let name = job.name.clone();
        e.push_job(SimTime::from_secs(5), job);
        let r = e.run();
        (name, r.outcomes[0].jct)
    });
    let map = out.results.iter().cloned().collect();
    (map, out)
}

fn is_spark(outcome: &JobOutcome) -> bool {
    Benchmark::SPARK.iter().any(|b| outcome.name.starts_with(b.name()))
}

fn main() {
    let t0 = std::time::Instant::now();
    let seed = base_seed();
    let scale: f64 = arg_value("--scale").and_then(|s| s.parse().ok()).unwrap_or(0.25);
    let heterogeneous = std::env::args().any(|a| a == "--heterogeneous");
    println!("=== Figure 11: large-scale comparison (scale {scale}) ===\n");

    let mut cluster = ClusterSpec::large_scale(seed);
    if heterogeneous {
        // Paper §IV-D.2 future work: a third of the servers run slower.
        cluster.speed_factors =
            (0..cluster.servers).map(|i| if i % 3 == 2 { 0.7 } else { 1.0 }).collect();
        println!("(heterogeneous servers: every third server at 0.7x speed)\n");
    }
    let mix_cfg = MixConfig::paper(cluster.servers).scaled(scale);
    let rng = RngFactory::new(seed);
    let mut mix = WorkloadMix::generate(&mix_cfg, &rng);
    mix.stagger_antagonists(&rng, 120.0);
    println!(
        "mix: {} jobs ({} tasks), {} antagonists over {} servers",
        mix.jobs.len(),
        mix.total_tasks(),
        mix.antagonists.len(),
        cluster.servers
    );

    println!(
        "measuring interference-free baselines ({} distinct jobs)…",
        mix.distinct_specs().len()
    );
    let (base, base_forks) = baselines(&mix, &cluster);

    let systems = mitigations();
    println!(
        "running {} mitigations ({} sweep workers)…",
        systems.len(),
        sweep::worker_count(systems.len())
    );
    // All five systems run the identical mix, so they share one neutral
    // parent: its prefix ends strictly before the first job submission and
    // the first 5 s monitoring sample, where swapping the mitigation on a
    // fork is still exact.
    let mut parent_cfg = ExperimentConfig::new(cluster.clone(), Mitigation::Default);
    parent_cfg.jobs = mix.jobs.clone();
    parent_cfg.antagonists = mix.antagonists.clone();
    parent_cfg.max_sim_time = SimTime::from_secs(4 * 3_600);
    let mut parent = Experiment::build(parent_cfg);
    let first_job = mix.jobs.iter().map(|(t, _)| *t).min().unwrap_or(SimTime::MAX);
    let cut = first_job.min(SimTime::from_secs(5));
    let tick = SimDuration::from_secs(0.1);
    while parent.now() + tick < cut {
        parent.step_tick();
    }
    let sys_forks = forked::sweep(&parent, systems.len(), |i, mut e| {
        let (name, make) = systems[i];
        e.set_mitigation(make());
        let r = e.run();
        let mr: Vec<JobOutcome> = r.outcomes.iter().filter(|o| !is_spark(o)).cloned().collect();
        let spark: Vec<JobOutcome> = r.outcomes.iter().filter(|o| is_spark(o)).cloned().collect();
        let mr_b = DegradationBreakdown::from_normalized(&normalize_jcts(&mr, &base));
        let sp_b = DegradationBreakdown::from_normalized(&normalize_jcts(&spark, &base));
        let eff = mean_efficiency(&r.outcomes);
        (name.to_string(), mr_b, sp_b, eff)
    });
    let rows: Vec<(String, DegradationBreakdown, DegradationBreakdown, f64)> = sys_forks.results;

    for (label, pick) in [("a) MapReduce", 0usize), ("b) Spark", 1)] {
        println!("\nFig 11({label}): fraction of jobs by degradation bucket");
        let mut t = Table::new(vec!["system", "<10%", "10-30%", ">=30%", "<30% total"]);
        for (name, mr_b, sp_b, _) in &rows {
            let b = if pick == 0 { mr_b } else { sp_b };
            t.row(vec![
                name.clone(),
                pct(b.under_10),
                pct(b.from_10_to_30),
                pct(b.over_30),
                pct(b.under_30()),
            ]);
        }
        t.print();
    }

    println!("\nFig 11(c): mean resource-utilization efficiency");
    let mut t = Table::new(vec!["system", "efficiency"]);
    for (name, _, _, eff) in &rows {
        t.row(vec![name.clone(), f2(*eff)]);
    }
    t.print();

    // Shape checks against the paper.
    let by_name: HashMap<&str, &(String, DegradationBreakdown, DegradationBreakdown, f64)> =
        rows.iter().map(|r| (r.0.as_str(), r)).collect();
    let pc = by_name["perfcloud"];
    let late = by_name["late"];
    let d2 = by_name["dolly-2"];
    let d6 = by_name["dolly-6"];
    let all_under10 = |r: &(String, DegradationBreakdown, DegradationBreakdown, f64)| {
        (r.1.under_10 * r.1.count as f64 + r.2.under_10 * r.2.count as f64)
            / (r.1.count + r.2.count).max(1) as f64
    };
    println!(
        "\nshape check (PerfCloud protects more jobs than LATE): {}",
        if all_under10(pc) > all_under10(late) { "HOLDS" } else { "VIOLATED" }
    );
    if all_under10(pc) < all_under10(d2).max(all_under10(d6)) {
        println!(
            "note: the paper's PerfCloud also leads Dolly on the <10% bucket; here Dolly's\n\
brute-force duplication wins that bucket because our steady-state antagonist\n\
identification is weaker than the testbed's (see EXPERIMENTS.md) — while PerfCloud\n\
pays no duplication cost (efficiency 1.0 vs Dolly's {:.2}).",
            d6.3
        );
    }
    println!(
        "shape check (Dolly efficiency falls with clone count): {}",
        if d2.3 > by_name["dolly-4"].3 && by_name["dolly-4"].3 > d6.3 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "shape check (PerfCloud efficiency ~1, above every Dolly): {}",
        if pc.3 > 0.95 && pc.3 > d2.3 { "HOLDS" } else { "VIOLATED" }
    );
    println!(
        "shape check (more clones help Dolly's job performance): {}",
        if all_under10(d6) >= all_under10(d2) { "HOLDS" } else { "VIOLATED" }
    );

    let mut rec = BenchRecord::wall("fig11", t0.elapsed().as_secs_f64());
    let sweep_points = base_forks.forked_points + sys_forks.forked_points;
    let saved = base_forks.prefix_ticks_saved + sys_forks.prefix_ticks_saved;
    rec.extras.push(("sweep_points".into(), sweep_points as f64));
    rec.extras.push(("forked_points".into(), sweep_points as f64));
    rec.extras.push(("prefix_events_saved".into(), saved as f64));
    let _ = rec.write();
}
