//! Shadow-mode scoreboard runner: record, replay, re-score.
//!
//! `cargo run --release -p perfcloud-bench --bin shadow_bench [-- --check]`
//!
//! Runs every (detector × identifier) cell of the accuracy matrix in
//! shadow mode ([`perfcloud_bench::shadow`]): a live run tees its counter
//! stream into a binary recording, a second build of the same cell replays
//! the recording, and both runs are scored against the injected ground
//! truth. Every cell must replay to the *exact* live score — any
//! divergence exits non-zero. With `--check` the replayed scoreboard is
//! additionally byte-compared against the committed
//! `tests/golden/accuracy_scoreboard.trace` and the semantic gates of
//! [`perfcloud_bench::accuracy::gate`] are enforced, proving the replay
//! path reproduces the live scoreboard cell-for-cell.

use perfcloud_bench::accuracy::{gate, scoreboard_json, scoreboard_table};
use perfcloud_bench::golden::GoldenStatus;
use perfcloud_bench::shadow::run_shadow_matrix;
use perfcloud_bench::Table;

fn main() {
    let mut check = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: shadow_bench [--check]");
                std::process::exit(2);
            }
        }
    }

    let cells = run_shadow_matrix();
    let mut t = Table::new(vec!["pipeline", "scenario", "samples", "bytes", "shadow"]);
    let mut mismatched = 0usize;
    for c in &cells {
        t.row(vec![
            c.live.pipeline.clone(),
            c.live.scenario.clone(),
            format!("{}", c.samples),
            format!("{}", c.bytes),
            if c.matches() { "match".into() } else { "DIVERGED".into() },
        ]);
        if !c.matches() {
            mismatched += 1;
            eprintln!(
                "shadow divergence in {}/{}: live {:?} vs replayed {:?}",
                c.live.pipeline, c.live.scenario, c.live, c.replayed
            );
        }
    }
    print!("{}", t.render());
    let mut failed = mismatched > 0;
    if failed {
        eprintln!("{mismatched} of {} cells diverged under replay", cells.len());
    } else {
        println!("all {} cells replayed to their exact live score", cells.len());
    }

    if check {
        // The replayed scoreboard must equal the committed live golden:
        // the strongest form of "shadow mode reproduces the scoreboard".
        let rows: Vec<_> = cells.iter().map(|c| c.replayed.clone()).collect();
        let artifact = format!("{}{}", scoreboard_json(&rows), scoreboard_table(&rows));
        match perfcloud_bench::golden::check("accuracy_scoreboard", &artifact) {
            GoldenStatus::Match => {
                println!("replayed scoreboard matches tests/golden/accuracy_scoreboard.trace")
            }
            GoldenStatus::Regenerated => println!("scoreboard golden regenerated (BLESS=1)"),
            GoldenStatus::Mismatch { diff } => {
                eprintln!("{diff}");
                failed = true;
            }
        }
        let violations = gate(&rows);
        for v in &violations {
            eprintln!("gate violated under replay: {v}");
        }
        failed |= !violations.is_empty();
    }
    if failed {
        std::process::exit(1);
    }
}
