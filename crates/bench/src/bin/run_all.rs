//! Runs every figure harness and ablation in sequence.
//!
//! `cargo run --release -p perfcloud-bench --bin run_all [-- --fast]`
//!
//! `--fast` shrinks the expensive sweeps (fig11 scale 0.1, fig12 reps 8) so
//! the full suite finishes in a few minutes; without it the defaults match
//! the per-binary defaults.

use std::process::Command;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let bins: Vec<(&str, Vec<&str>)> = vec![
        ("fig1", vec![]),
        ("fig2", vec![]),
        ("fig3", vec![]),
        ("fig4", vec![]),
        ("fig5", vec![]),
        ("fig6", vec![]),
        ("fig7", vec![]),
        ("fig9", vec![]),
        ("fig10", vec![]),
        ("fig11", if fast { vec!["--scale", "0.1"] } else { vec![] }),
        (
            "fig12",
            if fast { vec!["--reps", "8", "--scale-servers", "6"] } else { vec![] },
        ),
        ("future_work", vec![]),
        ("ablation_controller", vec![]),
        ("ablation_threshold", vec![]),
        ("ablation_monitor", vec![]),
    ];

    let exe_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("bin dir")
        .to_path_buf();

    let mut failures = Vec::new();
    for (bin, args) in bins {
        println!("\n################################################################");
        println!("## {bin} {}", args.join(" "));
        println!("################################################################");
        let status = Command::new(exe_dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failures.push(bin);
        }
    }
    if failures.is_empty() {
        println!("\nall harnesses completed");
    } else {
        println!("\nFAILED harnesses: {failures:?}");
        std::process::exit(1);
    }
}
