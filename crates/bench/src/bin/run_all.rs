//! Runs every figure harness and ablation.
//!
//! `cargo run --release -p perfcloud-bench --bin run_all [-- --fast]`
//!
//! Before anything else, the suite precomputes the **union of the solo
//! baselines** the figures share — every `(benchmark, tasks, seed)` solo
//! JCT plus fio's and STREAM's solo references — once, in parallel and
//! in-process, writes them to a cache file, and exports
//! `PERFCLOUD_BASELINE_CACHE` so every child harness reads them instead of
//! recomputing. Cached values round-trip as IEEE-754 bit patterns, so
//! figure outputs are byte-for-byte unchanged (see `baseline.rs`).
//!
//! The light harnesses (fig1–fig10, future_work, the ablations) are
//! independent child processes, so they run concurrently on the sweep
//! runner with their captured output replayed in the canonical order. The
//! two expensive sweeps (fig11, fig12) run sequentially afterwards: each
//! parallelizes internally and should own the machine.
//!
//! `--fast` shrinks the expensive sweeps (fig11 scale 0.1, fig12 reps 8) so
//! the full suite finishes in a few minutes; without it the defaults match
//! the per-binary defaults.
//!
//! `--trace-out PATH` switches to trace-export mode instead of running the
//! figure suite: it replays one golden scenario (default
//! `ctrl_coordinator_crash`, override with `--trace-scenario NAME`) with
//! flight recorders attached and writes the merged Chrome-trace-event JSON
//! to PATH — open it in [Perfetto](https://ui.perfetto.dev). The scenario
//! run is single-seeded and tick-deterministic, so the trace bytes are
//! identical regardless of `PERFCLOUD_THREADS`.
//!
//! Every harness run also emits a machine-readable `BENCH_<bin>.json`
//! record (the fork-converted figures write their own, with
//! `sweep_points` / `forked_points` / `prefix_events_saved` extras), and a
//! quick in-process engine probe emits `BENCH_engine.json` with raw
//! simulator throughput (run `engine_bench` for the full wheel-vs-heap
//! comparison record). The whole suite's timing lands in
//! `BENCH_runall.json` — total wall seconds plus one `<bin>_wall` extra
//! per harness — which CI regression-gates against the committed copy via
//! `--baseline BENCH_runall.json --max-slower 0.15` (and `--timing-out
//! PATH` writes a second copy wherever the caller wants it).

use perfcloud_bench::benchjson::BenchRecord;
use perfcloud_bench::{baseline, enginebench, golden, scenarios, sweep};
use perfcloud_frameworks::Benchmark;
use perfcloud_obs::chrome_trace;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

fn banner(bin: &str, args: &[&str]) {
    println!("\n################################################################");
    println!("## {bin} {}", args.join(" "));
    println!("################################################################");
}

/// Launches one harness binary, capturing its output and wall time.
fn run_bin(exe_dir: &Path, bin: &str, args: &[&str]) -> (std::process::Output, f64) {
    let start = Instant::now();
    let output = Command::new(exe_dir.join(bin))
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    (output, start.elapsed().as_secs_f64())
}

fn record(bin: &str, wall_seconds: f64) {
    if let Err(e) = BenchRecord::wall(bin, wall_seconds).write() {
        eprintln!("warning: could not write BENCH_{bin}.json: {e}");
    }
}

/// Precomputes the union of every solo baseline the figure harnesses
/// consult, in parallel, and exports the cache file path via
/// [`baseline::ENV`] so all child harnesses inherit it. Returns the cache
/// file path (best-effort: on write failure the children just recompute).
fn prewarm_baselines(seed: u64) -> Option<PathBuf> {
    enum Task {
        Solo(Benchmark, usize),
        Fio,
        Stream,
    }
    // fig1(c)/fig2 need every benchmark at 10 tasks; fig1(b) and fig9 the
    // 40-task logistic regression; fig1/fig9 the fio reference; fig9 the
    // STREAM core usage. fig11/fig12 baselines run on other cluster
    // topologies and are not cacheable by these keys.
    let mut tasks = vec![Task::Fio, Task::Stream, Task::Solo(Benchmark::LogisticRegression, 40)];
    for bench in Benchmark::ALL {
        tasks.push(Task::Solo(bench, 10));
    }
    let entries: Vec<Vec<(String, f64)>> = sweep::run(tasks.len(), |i| match tasks[i] {
        Task::Solo(bench, n) => {
            vec![(baseline::solo_jct_key(bench, n, seed), scenarios::solo_jct(bench, n, seed))]
        }
        Task::Fio => {
            let (iops, bps) = scenarios::fio_solo_reference(seed);
            let (iops_key, bps_key) = baseline::fio_keys(seed);
            vec![(iops_key, iops), (bps_key, bps)]
        }
        Task::Stream => {
            vec![(baseline::stream_key(seed), scenarios::stream_solo_cores(seed))]
        }
    });
    let map: BTreeMap<String, f64> = entries.into_iter().flatten().collect();
    let path =
        std::env::temp_dir().join(format!("perfcloud_baselines_{}.cache", std::process::id()));
    if let Err(e) = std::fs::write(&path, baseline::render(&map)) {
        eprintln!("warning: could not write baseline cache {}: {e}", path.display());
        return None;
    }
    std::env::set_var(baseline::ENV, &path);
    Some(path)
}

/// Replays one golden scenario with recorders attached and writes its
/// Chrome trace. Exits the process (0 on success).
fn export_trace(scenario: &str, path: &str, shards: usize) -> ! {
    let Some(sc) = golden::scenarios().into_iter().find(|s| s.name == scenario) else {
        eprintln!("unknown scenario: {scenario}");
        eprintln!("known scenarios:");
        for s in golden::scenarios() {
            eprintln!("  {}", s.name);
        }
        std::process::exit(2);
    };
    let artifact = (sc.build)(shards);
    let sources = golden::take_flight_sources();
    if sources.is_empty() {
        eprintln!("scenario {scenario} recorded no flight events (sweep-internal scenario?)");
        std::process::exit(1);
    }
    let json = chrome_trace(&sources);
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("error: could not write {path}: {e}");
        std::process::exit(1);
    }
    let events = sources.iter().map(|s| s.records.len()).sum::<usize>();
    println!(
        "wrote {path}: {events} events on {} tracks ({} bytes) from scenario {scenario} \
         ({} artifact lines)",
        sources.len(),
        json.len(),
        artifact.lines().count()
    );
    std::process::exit(0);
}

fn main() {
    let suite_start = Instant::now();
    let mut fast = false;
    let mut trace_out: Option<String> = None;
    let mut trace_scenario = String::from("ctrl_coordinator_crash");
    let mut shards: Option<usize> = None;
    let mut timing_out: Option<String> = None;
    let mut timing_baseline: Option<String> = None;
    let mut max_slower = 0.15f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--trace-out" => trace_out = Some(args.next().expect("--trace-out needs a path")),
            "--trace-scenario" => {
                trace_scenario = args.next().expect("--trace-scenario needs a name")
            }
            "--shards" => {
                let n = args.next().expect("--shards needs a count");
                shards = Some(n.parse().unwrap_or_else(|_| panic!("bad shard count: {n}")));
            }
            "--timing-out" => timing_out = Some(args.next().expect("--timing-out needs a path")),
            "--baseline" => timing_baseline = Some(args.next().expect("--baseline needs a path")),
            "--max-slower" => {
                max_slower = args
                    .next()
                    .expect("--max-slower needs a fraction")
                    .parse()
                    .expect("--max-slower must be a number")
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: run_all [--fast] [--shards N] [--timing-out PATH] \
                     [--baseline FILE [--max-slower FRAC]] \
                     [--trace-out PATH [--trace-scenario NAME]]"
                );
                std::process::exit(2);
            }
        }
    }
    // --shards overrides the PERFCLOUD_SHARDS environment; exporting it
    // makes every child harness inherit the same in-run shard count. The
    // results are byte-identical at any count — this is a perf knob.
    if let Some(n) = shards {
        std::env::set_var(perfcloud_sim::shard::SHARDS_ENV, n.to_string());
    }
    let shard_count = perfcloud_sim::shard::shards_from_env(1);
    if let Some(path) = &trace_out {
        export_trace(&trace_scenario, path, shard_count);
    }
    if shard_count != 1 {
        println!("in-run shards: {shard_count}");
    }

    // The committed timing baseline is read up front so gating against the
    // repo-root copy works even when BENCH_JSON_DIR points elsewhere.
    let baseline_wall =
        timing_baseline.as_deref().and_then(|p| BenchRecord::read_field(p, "wall_seconds"));
    if let Some(path) = &timing_baseline {
        match baseline_wall {
            Some(wall) => {
                println!("timing baseline {path}: {wall:.1}s (gate: +{:.0}%)", max_slower * 100.0)
            }
            None => eprintln!("warning: no wall_seconds in baseline {path}; gate disabled"),
        }
    }

    let prewarm_start = Instant::now();
    let cache_path = prewarm_baselines(scenarios::base_seed());
    let prewarm_wall = prewarm_start.elapsed().as_secs_f64();
    if let Some(path) = &cache_path {
        println!("baseline cache: {} ({prewarm_wall:.2}s to prewarm)", path.display());
    }

    // (bin, args, self_records): harnesses converted to fork-point sweeps
    // write their own BENCH_<bin>.json with prefix-sharing extras; run_all
    // must not overwrite those with a bare wall record.
    let light: Vec<(&str, Vec<&str>, bool)> = vec![
        ("fig1", vec![], true),
        ("fig2", vec![], true),
        ("fig3", vec![], false),
        ("fig4", vec![], false),
        ("fig5", vec![], false),
        ("fig6", vec![], false),
        ("fig7", vec![], false),
        ("fig9", vec![], false),
        ("fig10", vec![], false),
        ("future_work", vec![], false),
        ("ablation_controller", vec![], true),
        ("ablation_threshold", vec![], true),
        ("ablation_monitor", vec![], true),
    ];
    let heavy: Vec<(&str, Vec<&str>, bool)> = vec![
        ("fig11", if fast { vec!["--scale", "0.1"] } else { vec![] }, true),
        ("fig12", if fast { vec!["--reps", "8", "--scale-servers", "6"] } else { vec![] }, true),
    ];

    let exe_dir =
        std::env::current_exe().expect("current_exe").parent().expect("bin dir").to_path_buf();

    let mut failures: Vec<&str> = Vec::new();
    let mut walls: Vec<(String, f64)> = Vec::new();

    println!(
        "running {} light harnesses across {} sweep workers…",
        light.len(),
        sweep::worker_count(light.len())
    );
    let outputs = sweep::run(light.len(), |i| {
        let (bin, args, _) = &light[i];
        run_bin(&exe_dir, bin, args)
    });
    for ((bin, args, self_records), (output, wall)) in light.iter().zip(outputs) {
        banner(bin, args);
        print!("{}", String::from_utf8_lossy(&output.stdout));
        eprint!("{}", String::from_utf8_lossy(&output.stderr));
        if !self_records {
            record(bin, wall);
        }
        walls.push((format!("{bin}_wall"), wall));
        if !output.status.success() {
            failures.push(bin);
        }
    }

    for (bin, args, self_records) in &heavy {
        banner(bin, args);
        let (output, wall) = run_bin(&exe_dir, bin, args);
        print!("{}", String::from_utf8_lossy(&output.stdout));
        eprint!("{}", String::from_utf8_lossy(&output.stderr));
        if !self_records {
            record(bin, wall);
        }
        walls.push((format!("{bin}_wall"), wall));
        if !output.status.success() {
            failures.push(bin);
        }
    }

    // Quick engine probe only — the wheel-vs-heap comparison record is
    // `engine_bench`'s job and costs more wall time than every converted
    // figure combined.
    let probe = enginebench::probe();
    match probe.write() {
        Ok(path) => println!(
            "\nengine probe: {} events in {:.3}s ({:.0} events/sec) -> {}",
            probe.events_fired.unwrap_or(0),
            probe.wall_seconds,
            probe.events_per_sec().unwrap_or(0.0),
            path.display()
        ),
        Err(e) => eprintln!("warning: could not write BENCH_engine.json: {e}"),
    }

    if let Some(path) = &cache_path {
        let _ = std::fs::remove_file(path);
    }

    let total_wall = suite_start.elapsed().as_secs_f64();
    let mut runall = BenchRecord::wall("runall", total_wall);
    runall.extras.push(("prewarm_wall".into(), prewarm_wall));
    runall.extras.append(&mut walls);
    match runall.write() {
        Ok(path) => println!("suite timing: {total_wall:.1}s total -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_runall.json: {e}"),
    }
    if let Some(path) = &timing_out {
        if let Err(e) = std::fs::write(path, format!("{}\n", runall.to_json())) {
            eprintln!("warning: could not write {path}: {e}");
        }
    }

    let mut gate_failed = false;
    if let Some(base) = baseline_wall {
        let ceiling = base * (1.0 + max_slower);
        if total_wall > ceiling {
            eprintln!(
                "REGRESSION: run_all took {total_wall:.1}s, above the gate ceiling \
                 {ceiling:.1}s (baseline {base:.1}s, max {:.0}% slower)",
                max_slower * 100.0
            );
            gate_failed = true;
        } else {
            println!("run_all timing gate passed: {total_wall:.1}s <= {ceiling:.1}s");
        }
    }

    if failures.is_empty() && !gate_failed {
        println!("\nall harnesses completed");
    } else {
        if !failures.is_empty() {
            println!("\nFAILED harnesses: {failures:?}");
        }
        std::process::exit(1);
    }
}
