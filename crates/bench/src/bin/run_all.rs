//! Runs every figure harness and ablation.
//!
//! `cargo run --release -p perfcloud-bench --bin run_all [-- --fast]`
//!
//! The light harnesses (fig1–fig10, future_work, the ablations) are
//! independent child processes, so they run concurrently on the sweep
//! runner with their captured output replayed in the canonical order. The
//! two expensive sweeps (fig11, fig12) run sequentially afterwards: each
//! parallelizes internally and should own the machine.
//!
//! `--fast` shrinks the expensive sweeps (fig11 scale 0.1, fig12 reps 8) so
//! the full suite finishes in a few minutes; without it the defaults match
//! the per-binary defaults.
//!
//! `--trace-out PATH` switches to trace-export mode instead of running the
//! figure suite: it replays one golden scenario (default
//! `ctrl_coordinator_crash`, override with `--trace-scenario NAME`) with
//! flight recorders attached and writes the merged Chrome-trace-event JSON
//! to PATH — open it in [Perfetto](https://ui.perfetto.dev). The scenario
//! run is single-seeded and tick-deterministic, so the trace bytes are
//! identical regardless of `PERFCLOUD_THREADS`.
//!
//! Every harness run also emits a machine-readable `BENCH_<bin>.json`
//! record (wall seconds), and a final in-process engine probe emits
//! `BENCH_engine.json` with raw simulator throughput (events/sec).

use perfcloud_bench::benchjson::BenchRecord;
use perfcloud_bench::{enginebench, golden, sweep};
use perfcloud_obs::chrome_trace;
use std::path::Path;
use std::process::Command;
use std::time::Instant;

fn banner(bin: &str, args: &[&str]) {
    println!("\n################################################################");
    println!("## {bin} {}", args.join(" "));
    println!("################################################################");
}

/// Launches one harness binary, capturing its output and wall time.
fn run_bin(exe_dir: &Path, bin: &str, args: &[&str]) -> (std::process::Output, f64) {
    let start = Instant::now();
    let output = Command::new(exe_dir.join(bin))
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    (output, start.elapsed().as_secs_f64())
}

fn record(bin: &str, wall_seconds: f64) {
    if let Err(e) = BenchRecord::wall(bin, wall_seconds).write() {
        eprintln!("warning: could not write BENCH_{bin}.json: {e}");
    }
}

/// Replays one golden scenario with recorders attached and writes its
/// Chrome trace. Exits the process (0 on success).
fn export_trace(scenario: &str, path: &str, shards: usize) -> ! {
    let Some(sc) = golden::scenarios().into_iter().find(|s| s.name == scenario) else {
        eprintln!("unknown scenario: {scenario}");
        eprintln!("known scenarios:");
        for s in golden::scenarios() {
            eprintln!("  {}", s.name);
        }
        std::process::exit(2);
    };
    let artifact = (sc.build)(shards);
    let sources = golden::take_flight_sources();
    if sources.is_empty() {
        eprintln!("scenario {scenario} recorded no flight events (sweep-internal scenario?)");
        std::process::exit(1);
    }
    let json = chrome_trace(&sources);
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("error: could not write {path}: {e}");
        std::process::exit(1);
    }
    let events = sources.iter().map(|s| s.records.len()).sum::<usize>();
    println!(
        "wrote {path}: {events} events on {} tracks ({} bytes) from scenario {scenario} \
         ({} artifact lines)",
        sources.len(),
        json.len(),
        artifact.lines().count()
    );
    std::process::exit(0);
}

fn main() {
    let mut fast = false;
    let mut trace_out: Option<String> = None;
    let mut trace_scenario = String::from("ctrl_coordinator_crash");
    let mut shards: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--trace-out" => trace_out = Some(args.next().expect("--trace-out needs a path")),
            "--trace-scenario" => {
                trace_scenario = args.next().expect("--trace-scenario needs a name")
            }
            "--shards" => {
                let n = args.next().expect("--shards needs a count");
                shards = Some(n.parse().unwrap_or_else(|_| panic!("bad shard count: {n}")));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: run_all [--fast] [--shards N] \
                     [--trace-out PATH [--trace-scenario NAME]]"
                );
                std::process::exit(2);
            }
        }
    }
    // --shards overrides the PERFCLOUD_SHARDS environment; exporting it
    // makes every child harness inherit the same in-run shard count. The
    // results are byte-identical at any count — this is a perf knob.
    if let Some(n) = shards {
        std::env::set_var(perfcloud_sim::shard::SHARDS_ENV, n.to_string());
    }
    let shard_count = perfcloud_sim::shard::shards_from_env(1);
    if let Some(path) = &trace_out {
        export_trace(&trace_scenario, path, shard_count);
    }
    if shard_count != 1 {
        println!("in-run shards: {shard_count}");
    }

    let light: Vec<(&str, Vec<&str>)> = vec![
        ("fig1", vec![]),
        ("fig2", vec![]),
        ("fig3", vec![]),
        ("fig4", vec![]),
        ("fig5", vec![]),
        ("fig6", vec![]),
        ("fig7", vec![]),
        ("fig9", vec![]),
        ("fig10", vec![]),
        ("future_work", vec![]),
        ("ablation_controller", vec![]),
        ("ablation_threshold", vec![]),
        ("ablation_monitor", vec![]),
    ];
    let heavy: Vec<(&str, Vec<&str>)> = vec![
        ("fig11", if fast { vec!["--scale", "0.1"] } else { vec![] }),
        ("fig12", if fast { vec!["--reps", "8", "--scale-servers", "6"] } else { vec![] }),
    ];

    let exe_dir =
        std::env::current_exe().expect("current_exe").parent().expect("bin dir").to_path_buf();

    let mut failures: Vec<&str> = Vec::new();

    println!(
        "running {} light harnesses across {} sweep workers…",
        light.len(),
        sweep::worker_count(light.len())
    );
    let outputs = sweep::run(light.len(), |i| {
        let (bin, args) = &light[i];
        run_bin(&exe_dir, bin, args)
    });
    for ((bin, args), (output, wall)) in light.iter().zip(outputs) {
        banner(bin, args);
        print!("{}", String::from_utf8_lossy(&output.stdout));
        eprint!("{}", String::from_utf8_lossy(&output.stderr));
        record(bin, wall);
        if !output.status.success() {
            failures.push(bin);
        }
    }

    for (bin, args) in &heavy {
        banner(bin, args);
        let (output, wall) = run_bin(&exe_dir, bin, args);
        print!("{}", String::from_utf8_lossy(&output.stdout));
        eprint!("{}", String::from_utf8_lossy(&output.stderr));
        record(bin, wall);
        if !output.status.success() {
            failures.push(bin);
        }
    }

    let probe = enginebench::probe_with_comparison();
    match probe.write() {
        Ok(path) => println!(
            "\nengine probe: {} events in {:.3}s ({:.0} events/sec) -> {}",
            probe.events_fired.unwrap_or(0),
            probe.wall_seconds,
            probe.events_per_sec().unwrap_or(0.0),
            path.display()
        ),
        Err(e) => eprintln!("warning: could not write BENCH_engine.json: {e}"),
    }

    if failures.is_empty() {
        println!("\nall harnesses completed");
    } else {
        println!("\nFAILED harnesses: {failures:?}");
        std::process::exit(1);
    }
}
