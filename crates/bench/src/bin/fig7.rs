//! Figure 7 — the CUBIC cap-growth function and its three regions.
//!
//! Replays Eq. 1 analytically: one multiplicative decrease (β = 0.8), then
//! cubic growth with γ = 0.005, printing the cap and its region (initial
//! growth / plateau / probing) per 5-second control interval.

use perfcloud_bench::report::{f3, Table};
use perfcloud_core::cubic::{CubicController, CubicState, GrowthRegion};

fn region_name(r: GrowthRegion) -> &'static str {
    match r {
        GrowthRegion::InitialGrowth => "initial-growth",
        GrowthRegion::Plateau => "plateau",
        GrowthRegion::Probing => "probing",
    }
}

fn main() {
    println!("=== Figure 7: CUBIC growth function (beta = 0.8, gamma = 0.005) ===\n");
    let c = CubicController::paper();
    let mut s = CubicState::new();
    // Contention at t = 0 drops the cap from the observed usage (1.0).
    c.step(&mut s, true);

    let mut t = Table::new(vec!["interval", "t (s)", "cap (normalized)", "region"]);
    t.row(vec!["0".to_string(), "0".to_string(), f3(s.cap), "decrease (x0.2)".to_string()]);
    let mut transitions = Vec::new();
    let mut last = s.region();
    for k in 1..=16u64 {
        c.step(&mut s, false);
        let r = s.region();
        if r != last {
            transitions.push(region_name(r));
            last = r;
        }
        t.row(vec![k.to_string(), (k * 5).to_string(), f3(s.cap), region_name(r).to_string()]);
    }
    t.print();

    println!("\nregion transitions observed: initial-growth -> {}", transitions.join(" -> "));
    let ok = transitions == ["plateau", "probing"];
    println!(
        "shape check (steep growth, then plateau around C_max, then probing): {}",
        if ok { "HOLDS" } else { "VIOLATED" }
    );
}
