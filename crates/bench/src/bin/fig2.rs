//! Figure 2 — performance degradation due to a colocated memory-intensive
//! (STREAM) workload.
//!
//! Paper anchor: all six benchmarks degrade significantly, and the Spark
//! benchmarks are hit harder than MapReduce because they "frequently reuse
//! intermediate results residing in memory" — LLC and memory-bandwidth
//! contention inflates exactly the phases Spark spends most time in.

use perfcloud_bench::report::{f2, Table};
use perfcloud_bench::scenarios::*;
use perfcloud_cluster::{AntagonistKind, Mitigation};
use perfcloud_frameworks::Benchmark;

fn main() {
    let seed = base_seed();
    println!("=== Figure 2: degradation under a colocated STREAM VM ===");
    println!("(paper shape: every benchmark degrades; Spark > MapReduce)\n");

    let mut t = Table::new(vec!["benchmark", "family", "solo JCT (s)", "with STREAM", "norm JCT"]);
    let mut mr_norm = Vec::new();
    let mut spark_norm = Vec::new();
    for bench in Benchmark::ALL {
        let tasks = 10;
        let solo = solo_jct(bench, tasks, seed);
        let r = contended_run(bench, tasks, &[AntagonistKind::Stream], Mitigation::Default, seed);
        let norm = r.sole_jct() / solo;
        if bench.is_spark() {
            spark_norm.push(norm);
        } else {
            mr_norm.push(norm);
        }
        t.row(vec![
            bench.name().to_string(),
            if bench.is_spark() { "spark" } else { "mapreduce" }.to_string(),
            format!("{solo:.1}"),
            format!("{:.1}", r.sole_jct()),
            f2(norm),
        ]);
    }
    t.print();

    let mr = mr_norm.iter().sum::<f64>() / mr_norm.len() as f64;
    let spark = spark_norm.iter().sum::<f64>() / spark_norm.len() as f64;
    println!("\nmean normalized JCT: mapreduce {mr:.2}, spark {spark:.2}");
    println!(
        "shape check (Spark hit harder than MapReduce): {}",
        if spark > mr { "HOLDS" } else { "VIOLATED" }
    );
}
