//! Figure 2 — performance degradation due to a colocated memory-intensive
//! (STREAM) workload.
//!
//! Paper anchor: all six benchmarks degrade significantly, and the Spark
//! benchmarks are hit harder than MapReduce because they "frequently reuse
//! intermediate results residing in memory" — LLC and memory-bandwidth
//! contention inflates exactly the phases Spark spends most time in.
//!
//! The six contended runs differ only in which job arrives at 5 s, so one
//! STREAM-contended parent runs the pre-submission warm-up once and each
//! benchmark forks off it.

use perfcloud_bench::benchjson::BenchRecord;
use perfcloud_bench::report::{f2, Table};
use perfcloud_bench::scenarios::*;
use perfcloud_bench::{forked, sweep};
use perfcloud_cluster::{
    AntagonistKind, AntagonistPlacement, ClusterSpec, Experiment, ExperimentConfig, Mitigation,
};
use perfcloud_frameworks::Benchmark;
use perfcloud_sim::SimTime;

/// Shared-prefix ticks: 4.9 s, strictly before the 5 s job submission
/// (ticks are 100 ms).
const PREFIX_TICKS: u64 = 49;

fn main() {
    let t0 = std::time::Instant::now();
    let seed = base_seed();
    println!("=== Figure 2: degradation under a colocated STREAM VM ===");
    println!("(paper shape: every benchmark degrades; Spark > MapReduce)\n");

    let mut cfg = ExperimentConfig::new(ClusterSpec::small_scale(seed), Mitigation::Default);
    cfg.antagonists.push(AntagonistPlacement::pinned(AntagonistKind::Stream, 0));
    cfg.max_sim_time = SimTime::from_secs(7_200);
    let mut parent = Experiment::build(cfg);
    for _ in 0..PREFIX_TICKS {
        parent.step_tick();
    }
    let out = forked::sweep(&parent, Benchmark::ALL.len(), |i, mut e| {
        e.push_job(JOB_START, Benchmark::ALL[i].job(10));
        e.run()
    });
    let solos: Vec<f64> =
        sweep::run(Benchmark::ALL.len(), |i| solo_jct(Benchmark::ALL[i], 10, seed));

    let mut t = Table::new(vec!["benchmark", "family", "solo JCT (s)", "with STREAM", "norm JCT"]);
    let mut mr_norm = Vec::new();
    let mut spark_norm = Vec::new();
    for ((bench, r), solo) in Benchmark::ALL.iter().zip(&out.results).zip(&solos) {
        let norm = r.sole_jct() / solo;
        if bench.is_spark() {
            spark_norm.push(norm);
        } else {
            mr_norm.push(norm);
        }
        t.row(vec![
            bench.name().to_string(),
            if bench.is_spark() { "spark" } else { "mapreduce" }.to_string(),
            format!("{solo:.1}"),
            format!("{:.1}", r.sole_jct()),
            f2(norm),
        ]);
    }
    t.print();

    let mr = mr_norm.iter().sum::<f64>() / mr_norm.len() as f64;
    let spark = spark_norm.iter().sum::<f64>() / spark_norm.len() as f64;
    println!("\nmean normalized JCT: mapreduce {mr:.2}, spark {spark:.2}");
    println!(
        "shape check (Spark hit harder than MapReduce): {}",
        if spark > mr { "HOLDS" } else { "VIOLATED" }
    );

    let mut rec = BenchRecord::wall("fig2", t0.elapsed().as_secs_f64());
    rec.extras.push(("sweep_points".into(), out.forked_points as f64));
    rec.extras.push(("forked_points".into(), out.forked_points as f64));
    rec.extras.push(("prefix_events_saved".into(), out.prefix_ticks_saved as f64));
    let _ = rec.write();
}
