//! Engine micro-benchmark runner with a CI regression gate.
//!
//! `cargo run --release -p perfcloud-bench --bin engine_bench -- \
//!     [--baseline BENCH_engine.json] [--ctrl-baseline BENCH_ctrl.json] \
//!     [--max-drop 0.15] [--no-comparison] [--obs-gate FRAC] \
//!     [--trace-out PATH]`
//!
//! `--obs-gate FRAC` additionally re-runs the engine probe with the flight
//! recorder attached and fails if the recorder costs more than `FRAC`
//! (fraction, e.g. 0.10) of the disabled-mode `events_per_sec` — the CI
//! guard that keeps observability effectively free. `--trace-out PATH`
//! writes the observed probe's engine events as Chrome-trace JSON.
//!
//! Runs the canonical engine probe (and, unless `--no-comparison`, the
//! wheel-vs-heap churn points at 10k/100k/1M pending entries plus the
//! batched-sampling shape) and the control-plane message-path probe,
//! writes fresh `BENCH_engine.json` and `BENCH_ctrl.json` records, and —
//! when `--baseline` / `--ctrl-baseline` name previously committed records
//! — exits non-zero if the fresh `events_per_sec` (engine) or
//! `msgs_per_sec` (control plane) fell more than `--max-drop` (fraction,
//! default 0.15) below the baseline's. Baselines are read *before* the
//! fresh records are written, so gating against the committed files in the
//! repo root works even when `BENCH_JSON_DIR` is unset.

use perfcloud_bench::benchjson::BenchRecord;
use perfcloud_bench::{ctrlbench, enginebench};

fn main() {
    let mut baseline: Option<String> = None;
    let mut ctrl_baseline: Option<String> = None;
    let mut max_drop = 0.15f64;
    let mut comparison = true;
    let mut obs_gate: Option<f64> = None;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = Some(args.next().expect("--baseline needs a path")),
            "--ctrl-baseline" => {
                ctrl_baseline = Some(args.next().expect("--ctrl-baseline needs a path"))
            }
            "--max-drop" => {
                max_drop = args
                    .next()
                    .expect("--max-drop needs a fraction")
                    .parse()
                    .expect("--max-drop must be a number")
            }
            "--no-comparison" => comparison = false,
            "--obs-gate" => {
                obs_gate = Some(
                    args.next()
                        .expect("--obs-gate needs a fraction")
                        .parse()
                        .expect("--obs-gate must be a number"),
                )
            }
            "--trace-out" => trace_out = Some(args.next().expect("--trace-out needs a path")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: engine_bench [--baseline FILE] [--ctrl-baseline FILE] \
                     [--max-drop FRAC] [--no-comparison] [--obs-gate FRAC] [--trace-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let baseline_eps =
        baseline.as_deref().and_then(|p| BenchRecord::read_field(p, "events_per_sec"));
    if let Some(path) = &baseline {
        match baseline_eps {
            Some(eps) => {
                println!("baseline {path}: {eps:.0} events/sec (gate: -{:.0}%)", max_drop * 100.0)
            }
            None => eprintln!("warning: no events_per_sec in baseline {path}; gate disabled"),
        }
    }
    let ctrl_baseline_mps =
        ctrl_baseline.as_deref().and_then(|p| BenchRecord::read_field(p, "msgs_per_sec"));
    if let Some(path) = &ctrl_baseline {
        match ctrl_baseline_mps {
            Some(mps) => println!(
                "ctrl baseline {path}: {mps:.0} msgs/sec (gate: -{:.0}%)",
                max_drop * 100.0
            ),
            None => eprintln!("warning: no msgs_per_sec in baseline {path}; gate disabled"),
        }
    }

    let record =
        if comparison { enginebench::probe_with_comparison() } else { enginebench::probe() };

    println!(
        "engine probe: {} events in {:.3}s ({:.0} events/sec)",
        record.events_fired.unwrap_or(0),
        record.wall_seconds,
        record.events_per_sec().unwrap_or(0.0),
    );
    for (key, value) in &record.extras {
        if key.starts_with("speedup_") || key.ends_with("_speedup") {
            println!("  {key}: {value:.2}x");
        } else {
            println!("  {key}: {value:.0}");
        }
    }

    match record.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write BENCH_engine.json: {e}");
            std::process::exit(1);
        }
    }

    let mut observed_eps: Option<f64> = None;
    if obs_gate.is_some() || trace_out.is_some() {
        let (obs_record, trace) = enginebench::probe_observed();
        println!(
            "observed probe: {} events in {:.3}s ({:.0} events/sec, flight recorder on)",
            obs_record.events_fired.unwrap_or(0),
            obs_record.wall_seconds,
            obs_record.events_per_sec().unwrap_or(0.0),
        );
        observed_eps = obs_record.events_per_sec();
        if let Some(path) = &trace_out {
            match std::fs::write(path, &trace) {
                Ok(()) => println!("wrote {path} ({} bytes of Chrome-trace JSON)", trace.len()),
                Err(e) => {
                    eprintln!("error: could not write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    let ctrl = ctrlbench::probe();
    let ctrl_mps = extra(&ctrl, "msgs_per_sec");
    println!(
        "ctrl probe: {:.0} messages delivered in {:.3}s ({:.0} msgs/sec)",
        extra(&ctrl, "messages_delivered").unwrap_or(0.0),
        ctrl.wall_seconds,
        ctrl_mps.unwrap_or(0.0),
    );
    match ctrl.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write BENCH_ctrl.json: {e}");
            std::process::exit(1);
        }
    }

    let mut failed = false;
    if let (Some(base), Some(fresh)) = (baseline_eps, record.events_per_sec()) {
        let floor = base * (1.0 - max_drop);
        if fresh < floor {
            eprintln!(
                "REGRESSION: events_per_sec {fresh:.0} is below the gate floor {floor:.0} \
                 (baseline {base:.0}, max drop {:.0}%)",
                max_drop * 100.0
            );
            failed = true;
        } else {
            println!("engine gate passed: {fresh:.0} >= {floor:.0}");
        }
    }
    if let (Some(gate), Some(disabled), Some(enabled)) =
        (obs_gate, record.events_per_sec(), observed_eps)
    {
        let overhead = 1.0 - enabled / disabled;
        if overhead > gate {
            eprintln!(
                "REGRESSION: flight-recorder overhead {:.1}% exceeds the {:.0}% gate \
                 (disabled {disabled:.0} events/sec, enabled {enabled:.0})",
                overhead * 100.0,
                gate * 100.0
            );
            failed = true;
        } else {
            println!(
                "obs gate passed: {:.1}% recorder overhead <= {:.0}%",
                overhead.max(0.0) * 100.0,
                gate * 100.0
            );
        }
    }
    if let (Some(base), Some(fresh)) = (ctrl_baseline_mps, ctrl_mps) {
        let floor = base * (1.0 - max_drop);
        if fresh < floor {
            eprintln!(
                "REGRESSION: msgs_per_sec {fresh:.0} is below the gate floor {floor:.0} \
                 (baseline {base:.0}, max drop {:.0}%)",
                max_drop * 100.0
            );
            failed = true;
        } else {
            println!("ctrl gate passed: {fresh:.0} >= {floor:.0}");
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn extra(record: &BenchRecord, key: &str) -> Option<f64> {
    record.extras.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}
