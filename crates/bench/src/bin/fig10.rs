//! Figure 10 — resource caps applied by PerfCloud over time.
//!
//! Runs the Fig. 9 PerfCloud scenario and prints the normalized I/O cap on
//! the fio VM and the normalized CPU cap on the STREAM VM per control
//! interval, annotated with the CUBIC region each cap value falls in.
//!
//! Paper anchors: caps drop multiplicatively when contention is detected
//! shortly after the antagonists arrive, stay low through the initial
//! growth and plateau (~15–40 s in the paper), then probe upward
//! aggressively; a later deviation spike re-throttles the fio VM.

use perfcloud_bench::report::{f3, Table};
use perfcloud_bench::scenarios::*;
use perfcloud_cluster::Mitigation;
use perfcloud_core::PerfCloudConfig;
use perfcloud_frameworks::Benchmark;
use perfcloud_host::VmId;
use perfcloud_sim::SimDuration;

fn main() {
    let seed = base_seed();
    println!("=== Figure 10: PerfCloud resource caps over time ===\n");

    let mut e = small_scale(
        Benchmark::LogisticRegression,
        40,
        four_antagonists(),
        Mitigation::PerfCloud(PerfCloudConfig::default()),
        seed,
    );
    let _ = e.run();
    e.run_for(SimDuration::from_secs(30.0)); // watch the caps release

    let nm = &e.node_managers[0];
    let io = nm.io_cap_trace(VmId(10));
    let cpu = nm.cpu_cap_trace(VmId(11));

    println!("normalized caps (1.0 = antagonist's usage when control began; blank = uncapped)");
    let mut t = Table::new(vec!["t (s)", "fio I/O cap", "STREAM CPU cap"]);
    let times: Vec<_> = {
        let mut all: Vec<u64> = io
            .map(|s| s.times().iter().map(|t| t.as_micros()).collect::<Vec<_>>())
            .unwrap_or_default();
        if let Some(c) = cpu {
            all.extend(c.times().iter().map(|t| t.as_micros()));
        }
        all.sort_unstable();
        all.dedup();
        all
    };
    let lookup = |trace: Option<&perfcloud_stats::TimeSeries>, us: u64| -> String {
        trace
            .and_then(|s| {
                s.times().iter().position(|t| t.as_micros() == us).and_then(|k| s.values()[k])
            })
            .map(f3)
            .unwrap_or_default()
    };
    for us in &times {
        t.row(vec![format!("{:.0}", *us as f64 / 1e6), lookup(io, *us), lookup(cpu, *us)]);
    }
    t.print();

    // Shape checks.
    let io_caps: Vec<f64> =
        io.map(|s| s.values().iter().filter_map(|v| *v).collect()).unwrap_or_default();
    let cpu_caps: Vec<f64> =
        cpu.map(|s| s.values().iter().filter_map(|v| *v).collect()).unwrap_or_default();
    let drop_to_20 = |caps: &[f64]| caps.first().is_some_and(|&c| c <= 0.21);
    let drop_ok = (!io_caps.is_empty() || !cpu_caps.is_empty())
        && (io_caps.is_empty() || drop_to_20(&io_caps))
        && (cpu_caps.is_empty() || drop_to_20(&cpu_caps));
    println!(
        "\nshape check (first applied cap = multiplicative decrease to 20%): {}",
        if drop_ok { "HOLDS" } else { "VIOLATED" }
    );
    let recovers = io_caps.iter().any(|&c| c > 0.8) || cpu_caps.iter().any(|&c| c > 0.8);
    println!(
        "shape check (caps recover via cubic growth / probing): {}",
        if recovers { "HOLDS" } else { "VIOLATED" }
    );
    let rethrottle = |caps: &[f64]| caps.windows(2).any(|w| w[1] < w[0] * 0.5 && w[0] > 0.3);
    println!(
        "observation (a later re-throttle occurred, as in the paper's t=65s event): {}",
        if rethrottle(&io_caps) || rethrottle(&cpu_caps) { "yes" } else { "no" }
    );
}
