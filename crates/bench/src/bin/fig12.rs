//! Figure 12 — performance variability under randomly placed antagonists.
//!
//! Scenario (paper §IV-C): a terasort job with 50 tasks and a Spark
//! logistic-regression job with 50 tasks per stage run on the 15-server
//! cluster; on every repetition the fio and STREAM antagonist VMs land on
//! random servers. 30 repetitions per system (LATE, Dolly, PerfCloud).
//!
//! Paper anchors: "the median and the spread of the normalized job
//! completion time is much smaller in case of PerfCloud" — LATE's and
//! Dolly's effectiveness depends on where the antagonists landed (a clone
//! placed next to another antagonist still straggles), while PerfCloud
//! throttles antagonists wherever they are.
//!
//! Flags: `--reps <n>` (default 30), `--scale-servers <n>` (default 15).

use perfcloud_baselines::{Dolly, LatePolicy};
use perfcloud_bench::report::{f2, Table};
use perfcloud_bench::scenarios::base_seed;
use perfcloud_bench::sweep;
use perfcloud_cluster::{
    AntagonistKind, AntagonistPlacement, ClusterSpec, Experiment, ExperimentConfig, Mitigation,
};
use perfcloud_core::PerfCloudConfig;
use perfcloud_frameworks::Benchmark;
use perfcloud_sim::{RngFactory, SimTime};
use perfcloud_stats::BoxplotSummary;
use rand::Rng;

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

/// Random antagonist placement for one repetition: one fio and one STREAM
/// VM per third of the servers, on seed-chosen servers. The antagonist VMs
/// are booted during the run (the paper redistributes them "on each job
/// execution"), at random times early in the job.
fn random_antagonists(rng: &RngFactory, servers: usize) -> Vec<AntagonistPlacement> {
    let mut r = rng.stream("fig12/placement");
    let mut out = Vec::new();
    for _ in 0..(servers / 3).max(1) {
        for kind in [AntagonistKind::Fio, AntagonistKind::Stream] {
            let start = SimTime::from_secs_f64(10.0 + 30.0 * r.gen::<f64>());
            out.push(AntagonistPlacement::pinned(kind, r.gen_range(0..servers)).starting_at(start));
        }
    }
    out
}

fn run_once(
    bench: Benchmark,
    mitigation: Mitigation,
    servers: usize,
    rep_rng: &RngFactory,
    seed: u64,
) -> f64 {
    let mut cluster = ClusterSpec::large_scale(seed);
    cluster.servers = servers;
    let mut cfg = ExperimentConfig::new(cluster, mitigation);
    cfg.jobs.push((SimTime::from_secs(5), bench.job(50)));
    cfg.antagonists = random_antagonists(rep_rng, servers);
    cfg.max_sim_time = SimTime::from_secs(7_200);
    Experiment::build(cfg).run().sole_jct()
}

fn main() {
    let seed = base_seed();
    let reps: usize = arg_value("--reps").and_then(|s| s.parse().ok()).unwrap_or(30);
    let servers: usize = arg_value("--scale-servers").and_then(|s| s.parse().ok()).unwrap_or(15);
    println!("=== Figure 12: variability over {reps} repetitions, {servers} servers ===\n");

    type MitigationFactory = fn() -> Mitigation;
    let systems: Vec<(&str, MitigationFactory)> = vec![
        ("late", || Mitigation::Late(LatePolicy::default())),
        ("dolly-4", || Mitigation::Dolly(Dolly::new(4))),
        ("perfcloud", || Mitigation::PerfCloud(PerfCloudConfig::default())),
    ];

    for (bench, label) in [
        (Benchmark::Terasort, "a) MapReduce terasort, 50 tasks"),
        (Benchmark::LogisticRegression, "b) Spark logistic regression, 50 tasks/stage"),
    ] {
        // Interference-free baseline for normalization.
        let mut cluster = ClusterSpec::large_scale(seed);
        cluster.servers = servers;
        let mut cfg = ExperimentConfig::new(cluster, Mitigation::Default);
        cfg.jobs.push((SimTime::from_secs(5), bench.job(50)));
        cfg.max_sim_time = SimTime::from_secs(7_200);
        let solo = Experiment::build(cfg).run().sole_jct();

        println!("Fig 12({label}); solo JCT = {solo:.1}s");
        let mut t = Table::new(vec!["system", "median", "q1", "q3", "whisker span", "max"]);
        let mut spreads = Vec::new();
        for (name, make) in &systems {
            let jcts: Vec<f64> = sweep::run(reps, |rep| {
                let rep_rng = sweep::rep_factory(seed, rep);
                run_once(bench, make(), servers, &rep_rng, seed ^ (rep as u64) << 8) / solo
            });
            let b = BoxplotSummary::from_data(&jcts).expect("non-empty");
            spreads.push((name.to_string(), b.median, b.whisker_spread()));
            t.row(vec![
                name.to_string(),
                f2(b.median),
                f2(b.q1),
                f2(b.q3),
                f2(b.whisker_spread()),
                f2(b.max),
            ]);
        }
        t.print();

        let pc = spreads.iter().find(|s| s.0 == "perfcloud").expect("perfcloud row");
        let others: Vec<_> = spreads.iter().filter(|s| s.0 != "perfcloud").collect();
        let median_ok = others.iter().all(|o| pc.1 <= o.1 + 1e-9);
        let spread_ok = others.iter().all(|o| pc.2 <= o.2 + 1e-9);
        println!(
            "shape check (PerfCloud has the smallest median): {}",
            if median_ok { "HOLDS" } else { "VIOLATED" }
        );
        println!(
            "shape check (PerfCloud has the smallest spread): {}\n",
            if spread_ok { "HOLDS" } else { "VIOLATED" }
        );
    }
}
