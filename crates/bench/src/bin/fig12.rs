//! Figure 12 — performance variability under randomly placed antagonists.
//!
//! Scenario (paper §IV-C): a terasort job with 50 tasks and a Spark
//! logistic-regression job with 50 tasks per stage run on the 15-server
//! cluster; on every repetition the fio and STREAM antagonist VMs land on
//! random servers. 30 repetitions per system (LATE, Dolly, PerfCloud).
//!
//! Paper anchors: "the median and the spread of the normalized job
//! completion time is much smaller in case of PerfCloud" — LATE's and
//! Dolly's effectiveness depends on where the antagonists landed (a clone
//! placed next to another antagonist still straggles), while PerfCloud
//! throttles antagonists wherever they are.
//!
//! The three systems see *identical* repetitions (same cluster seed, same
//! antagonist placements), so each repetition builds one neutral parent,
//! runs the shared prefix once — up to just before the job submission and
//! the first monitoring sample — and forks it three times, swapping in one
//! mitigation per fork. [`Experiment::fork`] guarantees each fork is
//! byte-identical to a fresh run of that system, so this is purely a
//! wall-clock optimization.
//!
//! Flags: `--reps <n>` (default 30), `--scale-servers <n>` (default 15).

use perfcloud_baselines::{Dolly, LatePolicy};
use perfcloud_bench::benchjson::BenchRecord;
use perfcloud_bench::report::{f2, Table};
use perfcloud_bench::scenarios::base_seed;
use perfcloud_bench::sweep;
use perfcloud_cluster::{
    AntagonistKind, AntagonistPlacement, ClusterSpec, Experiment, ExperimentConfig, Mitigation,
};
use perfcloud_core::PerfCloudConfig;
use perfcloud_frameworks::Benchmark;
use perfcloud_sim::{RngFactory, SimTime};
use perfcloud_stats::BoxplotSummary;
use rand::Rng;

/// Shared-prefix length: 4.9 s, strictly before the 5 s job submission and
/// the first 5 s sampling instant (ticks are 100 ms), so a fork may still
/// swap its mitigation exactly.
const PREFIX_TICKS: u64 = 49;

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

/// Random antagonist placement for one repetition: one fio and one STREAM
/// VM per third of the servers, on seed-chosen servers. The antagonist VMs
/// are booted during the run (the paper redistributes them "on each job
/// execution"), at random times early in the job.
fn random_antagonists(rng: &RngFactory, servers: usize) -> Vec<AntagonistPlacement> {
    let mut r = rng.stream("fig12/placement");
    let mut out = Vec::new();
    for _ in 0..(servers / 3).max(1) {
        for kind in [AntagonistKind::Fio, AntagonistKind::Stream] {
            let start = SimTime::from_secs_f64(10.0 + 30.0 * r.gen::<f64>());
            out.push(AntagonistPlacement::pinned(kind, r.gen_range(0..servers)).starting_at(start));
        }
    }
    out
}

fn main() {
    let t0 = std::time::Instant::now();
    let seed = base_seed();
    let reps: usize = arg_value("--reps").and_then(|s| s.parse().ok()).unwrap_or(30);
    let servers: usize = arg_value("--scale-servers").and_then(|s| s.parse().ok()).unwrap_or(15);
    println!("=== Figure 12: variability over {reps} repetitions, {servers} servers ===\n");

    type MitigationFactory = fn() -> Mitigation;
    let systems: Vec<(&str, MitigationFactory)> = vec![
        ("late", || Mitigation::Late(LatePolicy::default())),
        ("dolly-4", || Mitigation::Dolly(Dolly::new(4))),
        ("perfcloud", || Mitigation::PerfCloud(PerfCloudConfig::default())),
    ];

    let mut sweep_points = 0usize;
    let mut forked_points = 0usize;
    let mut prefix_saved = 0u64;
    for (bench, label) in [
        (Benchmark::Terasort, "a) MapReduce terasort, 50 tasks"),
        (Benchmark::LogisticRegression, "b) Spark logistic regression, 50 tasks/stage"),
    ] {
        // Interference-free baseline for normalization. No antagonist VMs
        // are booted here, so the topology differs from the repetitions and
        // this run cannot share their parent.
        let mut cluster = ClusterSpec::large_scale(seed);
        cluster.servers = servers;
        let mut cfg = ExperimentConfig::new(cluster, Mitigation::Default);
        cfg.jobs.push((SimTime::from_secs(5), bench.job(50)));
        cfg.max_sim_time = SimTime::from_secs(7_200);
        let solo = Experiment::build(cfg).run().sole_jct();
        sweep_points += 1;

        // One parent per repetition; the three systems run as forks of it.
        let per_rep: Vec<[f64; 3]> = sweep::run(reps, |rep| {
            let rep_rng = sweep::rep_factory(seed, rep);
            let mut cluster = ClusterSpec::large_scale(seed ^ (rep as u64) << 8);
            cluster.servers = servers;
            let mut cfg = ExperimentConfig::new(cluster, Mitigation::Default);
            cfg.jobs.push((SimTime::from_secs(5), bench.job(50)));
            cfg.antagonists = random_antagonists(&rep_rng, servers);
            cfg.max_sim_time = SimTime::from_secs(7_200);
            let mut parent = Experiment::build(cfg);
            for _ in 0..PREFIX_TICKS {
                parent.step_tick();
            }
            let mut out = [0.0; 3];
            for (slot, (_, make)) in out.iter_mut().zip(&systems) {
                let mut fork = parent.fork();
                fork.set_mitigation(make());
                *slot = fork.run().sole_jct() / solo;
            }
            out
        });
        sweep_points += systems.len() * reps;
        forked_points += systems.len() * reps;
        prefix_saved += reps as u64 * PREFIX_TICKS * (systems.len() as u64 - 1);

        println!("Fig 12({label}); solo JCT = {solo:.1}s");
        let mut t = Table::new(vec!["system", "median", "q1", "q3", "whisker span", "max"]);
        let mut spreads = Vec::new();
        for (si, (name, _)) in systems.iter().enumerate() {
            let jcts: Vec<f64> = per_rep.iter().map(|r| r[si]).collect();
            let b = BoxplotSummary::from_data(&jcts).expect("non-empty");
            spreads.push((name.to_string(), b.median, b.whisker_spread()));
            t.row(vec![
                name.to_string(),
                f2(b.median),
                f2(b.q1),
                f2(b.q3),
                f2(b.whisker_spread()),
                f2(b.max),
            ]);
        }
        t.print();

        let pc = spreads.iter().find(|s| s.0 == "perfcloud").expect("perfcloud row");
        let others: Vec<_> = spreads.iter().filter(|s| s.0 != "perfcloud").collect();
        let median_ok = others.iter().all(|o| pc.1 <= o.1 + 1e-9);
        let spread_ok = others.iter().all(|o| pc.2 <= o.2 + 1e-9);
        println!(
            "shape check (PerfCloud has the smallest median): {}",
            if median_ok { "HOLDS" } else { "VIOLATED" }
        );
        println!(
            "shape check (PerfCloud has the smallest spread): {}\n",
            if spread_ok { "HOLDS" } else { "VIOLATED" }
        );
    }

    let mut rec = BenchRecord::wall("fig12", t0.elapsed().as_secs_f64());
    rec.extras.push(("sweep_points".into(), sweep_points as f64));
    rec.extras.push(("forked_points".into(), forked_points as f64));
    rec.extras.push(("prefix_events_saved".into(), prefix_saved as f64));
    let _ = rec.write();
}
