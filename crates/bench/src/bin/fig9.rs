//! Figure 9 — impact of PerfCloud's dynamic resource control.
//!
//! Scenario (paper §IV-B): Spark logistic regression (≤ 40 tasks per stage)
//! on the 12-node single-server cluster, colocated with fio random read,
//! STREAM, sysbench oltp and sysbench cpu. Compared systems: the default
//! (no control), a static capping policy (20% I/O cap on the fio VM, 20%
//! CPU cap on the STREAM VM) and PerfCloud.
//!
//! Output: (a) iowait-ratio deviation time series, (b) CPI deviation time
//! series — both default vs PerfCloud; (c) job completion times and
//! antagonist throughput.
//!
//! Paper anchors: PerfCloud sharply reduces both deviations; PerfCloud and
//! static capping beat the default by ~31% and ~33%; PerfCloud costs the
//! antagonists less than permanent static caps.

use perfcloud_baselines::StaticCapping;
use perfcloud_bench::report::{f2, Table};
use perfcloud_bench::scenarios::*;
use perfcloud_cluster::{Experiment, ExperimentResult, Mitigation};
use perfcloud_core::antagonist::Resource;
use perfcloud_core::PerfCloudConfig;
use perfcloud_frameworks::Benchmark;
use perfcloud_host::VmId;
use perfcloud_sim::SimDuration;

const TASKS: usize = 40;

fn run(mitigation: Mitigation, seed: u64) -> (Experiment, ExperimentResult) {
    let mut e =
        small_scale(Benchmark::LogisticRegression, TASKS, four_antagonists(), mitigation, seed);
    let r = e.run();
    (e, r)
}

fn deviation_rows(e: &Experiment, resource: Resource) -> Vec<(f64, f64)> {
    let s = e.node_managers[0].identifier().deviation_series(resource);
    s.times()
        .iter()
        .zip(s.values())
        .filter_map(|(&t, &v)| v.map(|v| (t.as_secs_f64(), v)))
        .collect()
}

fn main() {
    let seed = base_seed();
    println!("=== Figure 9: dynamic resource control on Spark logistic regression ===\n");

    let solo = solo_jct(Benchmark::LogisticRegression, TASKS, seed);
    let (fio_iops, fio_bps) = fio_solo_reference(seed);
    let stream_cores = stream_solo_cores(seed);

    let (e_def, r_def) = run(Mitigation::Default, seed);
    let static_policy = StaticCapping::new().cap_io(VmId(10), 0.2, fio_iops, fio_bps).cap_cpu(
        VmId(11),
        0.2,
        stream_cores,
    );
    let (_e_static, r_static) = run(Mitigation::StaticCap(static_policy), seed);
    let (e_pc, r_pc) = run(Mitigation::PerfCloud(PerfCloudConfig::default()), seed);

    // (a) + (b): deviation series.
    for (label, resource, threshold) in [
        ("a) stddev of block iowait ratio [ms/op]", Resource::Io, 10.0),
        ("b) stddev of CPI", Resource::Cpu, 1.0),
    ] {
        println!("Fig 9({label}); threshold H = {threshold}");
        let d = deviation_rows(&e_def, resource);
        let p = deviation_rows(&e_pc, resource);
        let mut t = Table::new(vec!["t (s)", "default", "perfcloud"]);
        let n = d.len().max(p.len());
        for i in 0..n {
            t.row(vec![
                d.get(i).or(p.get(i)).map(|x| format!("{:.0}", x.0)).unwrap_or_default(),
                d.get(i).map(|x| f2(x.1)).unwrap_or_default(),
                p.get(i).map(|x| f2(x.1)).unwrap_or_default(),
            ]);
        }
        t.print();
        let mean = |xs: &[(f64, f64)]| {
            let tail: Vec<f64> =
                xs.iter().filter(|x| x.0 > ANTAGONIST_ONSET.as_secs_f64()).map(|x| x.1).collect();
            tail.iter().sum::<f64>() / tail.len().max(1) as f64
        };
        println!("mean post-onset deviation: default {:.2}, perfcloud {:.2}\n", mean(&d), mean(&p));
    }

    // (c): JCT comparison.
    println!("Fig 9(c): job completion time (paper: PerfCloud and static beat default by ~31-33%)");
    let mut t = Table::new(vec!["system", "JCT (s)", "norm vs solo", "vs default"]);
    for (name, r) in [("default", &r_def), ("static-cap-20%", &r_static), ("perfcloud", &r_pc)] {
        let jct = r.sole_jct();
        t.row(vec![
            name.to_string(),
            format!("{jct:.1}"),
            f2(jct / solo),
            format!("{:+.0}%", (jct / r_def.sole_jct() - 1.0) * 100.0),
        ]);
    }
    t.print();

    // Antagonist cost: how much throughput the low-priority VMs retain.
    println!("\nAntagonist throughput retained (vs default run; higher is better for tenants)");
    let mut t = Table::new(vec!["antagonist", "static-cap", "perfcloud"]);
    let horizon = |r: &ExperimentResult| r.duration.as_secs_f64();
    for (i, label, pick) in [(0usize, "fio IOPS", 0usize), (1usize, "STREAM instr/s", 1usize)] {
        let _ = i;
        let rate = |r: &ExperimentResult| {
            let a = &r.antagonists[pick];
            match pick {
                0 => a.io_ops / horizon(r),
                _ => a.instructions / horizon(r),
            }
        };
        let d = rate(&r_def);
        t.row(vec![label.to_string(), f2(rate(&r_static) / d), f2(rate(&r_pc) / d)]);
    }
    t.print();

    let improve_pc = 1.0 - r_pc.sole_jct() / r_def.sole_jct();
    let improve_st = 1.0 - r_static.sole_jct() / r_def.sole_jct();
    println!(
        "\nimprovement over default: perfcloud {:.0}%, static {:.0}% (paper: 31% / 33%)",
        improve_pc * 100.0,
        improve_st * 100.0
    );
    println!(
        "shape check (both improve over default substantially): {}",
        if improve_pc > 0.1 && improve_st > 0.1 { "HOLDS" } else { "VIOLATED" }
    );

    // Keep the PerfCloud experiment alive a little longer so fig10 users see
    // the cap release; here we just confirm caps were applied.
    let _ = SimDuration::from_secs(0.0);
    let any_caps = e_pc.node_managers[0].io_cap_trace(VmId(10)).is_some()
        || e_pc.node_managers[0].cpu_cap_trace(VmId(11)).is_some();
    println!(
        "shape check (PerfCloud actually throttled an antagonist): {}",
        if any_caps { "HOLDS" } else { "VIOLATED" }
    );
}
