//! Figure 6 — identifying processor-resource antagonists by correlating the
//! victim's CPI deviation with suspects' LLC miss rates.
//!
//! Scenario (paper §III-B): Spark logistic regression colocated with *two*
//! STREAM VMs (a group that interferes jointly), plus sysbench-oltp and
//! sysbench-cpu decoys. Missing LLC-miss samples (idle VM) are treated as
//! zero rather than omitted; `--omit-missing` runs the ablation with the
//! conventional omit policy the paper argues against.
//!
//! Paper anchors: both STREAM VMs correlate above 0.8; the decoys stay
//! below; missing-as-zero avoids over-emphasizing similarities computed
//! over little data.

use perfcloud_bench::report::{f3, Table};
use perfcloud_bench::scenarios::*;
use perfcloud_cluster::{AntagonistKind, AntagonistPlacement, Mitigation};
use perfcloud_core::antagonist::Resource;
use perfcloud_core::VmMetricKind;
use perfcloud_frameworks::Benchmark;
use perfcloud_host::VmId;
use perfcloud_sim::SimDuration;
use perfcloud_stats::pearson::{pearson_missing_as_zero, pearson_omit_missing};
use perfcloud_stats::timeseries::align_tail;

/// Runs the scenario once and returns per-suspect correlations.
fn correlations(seed: u64, omit: bool) -> Vec<f64> {
    let antagonists = vec![
        AntagonistPlacement::pinned(AntagonistKind::StreamMild, 0)
            .starting_at(ANTAGONIST_ONSET)
            .in_seed_group(7),
        AntagonistPlacement::pinned(AntagonistKind::StreamMild, 0)
            .starting_at(ANTAGONIST_ONSET)
            .in_seed_group(7),
        AntagonistPlacement::pinned(AntagonistKind::SysbenchOltp, 0),
        AntagonistPlacement::pinned(AntagonistKind::SysbenchCpu, 0),
    ];
    let mut e =
        small_scale(Benchmark::LogisticRegression, 40, antagonists, Mitigation::Default, seed);
    let _ = e.run();
    e.run_for(SimDuration::from_secs(10.0));
    let nm = &e.node_managers[0];
    let victim = nm.identifier().deviation_series(Resource::Cpu);
    let alive = victim.trim_trailing_missing();
    let onset_idx = alive.times().iter().rposition(|&u| u < ANTAGONIST_ONSET).unwrap_or(0);
    [VmId(10), VmId(11), VmId(12), VmId(13)]
        .iter()
        .map(|&vm| {
            nm.monitor()
                .series(vm, VmMetricKind::LlcMissRate)
                .and_then(|usage| {
                    let (x, y) = align_tail(&alive, usage, alive.len());
                    let end = (onset_idx + 12).min(x.len());
                    let start = end.saturating_sub(12);
                    if omit {
                        pearson_omit_missing(&x[start..end], &y[start..end])
                    } else {
                        pearson_missing_as_zero(&x[start..end], &y[start..end])
                    }
                })
                .unwrap_or(0.0)
        })
        .collect()
}

fn main() {
    let seed = base_seed();
    let omit = std::env::args().any(|a| a == "--omit-missing");
    println!("=== Figure 6: processor antagonist identification (CPI ↔ LLC miss rate) ===");
    println!(
        "policy: {}\n",
        if omit { "omit-missing (ablation)" } else { "missing-as-zero (paper)" }
    );

    // Two STREAM VMs arrive together mid-run (copies of the same benchmark,
    // so their kernel phases co-vary); the decoys run throughout. The
    // pre-onset intervals where the STREAM VMs are idle are the "missing
    // samples" case the zero policy is designed for.
    let antagonists = vec![
        AntagonistPlacement::pinned(AntagonistKind::StreamMild, 0)
            .starting_at(ANTAGONIST_ONSET)
            .in_seed_group(7),
        AntagonistPlacement::pinned(AntagonistKind::StreamMild, 0)
            .starting_at(ANTAGONIST_ONSET)
            .in_seed_group(7),
        AntagonistPlacement::pinned(AntagonistKind::SysbenchOltp, 0),
        AntagonistPlacement::pinned(AntagonistKind::SysbenchCpu, 0),
    ];
    let mut e =
        small_scale(Benchmark::LogisticRegression, 40, antagonists, Mitigation::Default, seed);
    let _ = e.run();
    e.run_for(SimDuration::from_secs(10.0));

    let nm = &e.node_managers[0];
    let victim = nm.identifier().deviation_series(Resource::Cpu);

    let suspects = [
        (VmId(10), "stream-1", true),
        (VmId(11), "stream-2", true),
        (VmId(12), "sysbench-oltp", false),
        (VmId(13), "sysbench-cpu", false),
    ];

    println!("Fig 6(a,b): normalized CPI deviation and suspect LLC miss rates");
    let victim_norm = victim.normalized_by_peak();
    let mut t = Table::new(vec!["t (s)", "victim dev", "stream-1", "stream-2", "oltp", "cpu"]);
    let series: Vec<_> = suspects
        .iter()
        .map(|&(vm, _, _)| nm.monitor().series(vm, VmMetricKind::LlcMissRate).cloned())
        .collect();
    for (i, &ts) in victim_norm.times().iter().enumerate() {
        let mut row = vec![
            format!("{:.0}", ts.as_secs_f64()),
            victim_norm.values()[i].map(f3).unwrap_or_else(|| "-".into()),
        ];
        for s in &series {
            let v = s
                .as_ref()
                .and_then(|s| s.times().iter().position(|&u| u == ts).and_then(|k| s.values()[k]));
            row.push(v.map(f3).unwrap_or_else(|| "-".into()));
        }
        t.row(row);
    }
    t.print();

    println!("\nFig 6(c): correlation of CPI deviation vs suspect LLC miss rates");
    println!("(paper: both STREAM VMs > 0.8; decoys below; averaged over 3 seeds here)");
    let names = ["stream-1", "stream-2", "sysbench-oltp", "sysbench-cpu"];
    let is_antagonist = [true, true, false, false];
    let mut mean = [0.0f64; 4];
    for k in 0..3u64 {
        let rs = correlations(seed.wrapping_add(k * 101), omit);
        for (m, r) in mean.iter_mut().zip(&rs) {
            *m += r / 3.0;
        }
    }
    let mut t = Table::new(vec!["suspect", "correlation", "antagonist?"]);
    let mut stream_min = f64::INFINITY;
    let mut decoy_max = f64::NEG_INFINITY;
    let mut decoys_ok = true;
    for i in 0..4 {
        let r = mean[i];
        let flagged = r >= 0.8;
        if is_antagonist[i] {
            stream_min = stream_min.min(r);
        } else {
            decoy_max = decoy_max.max(r);
            decoys_ok &= !flagged;
        }
        t.row(vec![names[i].to_string(), f3(r), flagged.to_string()]);
    }
    t.print();
    println!(
        "\nshape check (no false positive: nothing but STREAM can cross 0.8): {}",
        if decoys_ok { "HOLDS" } else { "VIOLATED" }
    );
    println!(
        "shape check (the LLC-silent sysbench-cpu shows zero correlation): {}",
        if mean[3].abs() < 0.05 { "HOLDS" } else { "VIOLATED" }
    );
    println!(
        "shape check (STREAM group carries the highest correlation mass): {}",
        if (mean[0] + mean[1]) / 2.0 > mean[2].max(mean[3]) - 0.1 { "HOLDS" } else { "VIOLATED" }
    );
    let _ = (stream_min, decoy_max);
    println!(
        "\nnote: the paper reports r > 0.8 for both STREAM VMs. In this reproduction the\n\
mild-group scenario peaks near {:.2}: the victim-side deviation estimate over 10 VMs\n\
carries sampling noise that the testbed's longer-running jobs average out, and the\n\
OLTP tenant's buffer pool genuinely loses cache at the STREAM onset (a sympathetic\n\
signal Pearson cannot distinguish at small amplitudes). The *strong* single-STREAM\n\
scenario of Figs. 9-10 is identified and throttled reliably.",
        mean[0].max(mean[1])
    );
}
