//! Ablation — the detection threshold ℋ (DESIGN.md §5).
//!
//! Sweeps ℋ for the iowait-ratio deviation over the Fig. 3 scenario and
//! reports, per candidate threshold, the false-positive intervals when the
//! application runs alone and the detection latency when fio arrives. The
//! paper sets ℋ = 10 "determined by the peak standard deviation … observed
//! when there is no resource contention"; the sweep shows the usable window
//! between the alone-peak and the contended plateau.
//!
//! The alone and contended legs differ only in whether the fio workload
//! ever starts, so both run as forks of one parent whose antagonist VM is
//! booted but deferred: the parent executes the shared pre-onset prefix
//! once, the contended fork schedules the onset, the alone fork never does
//! (a booted, idle VM is inert — it issues no I/O and draws no luck RNG).

use perfcloud_bench::benchjson::BenchRecord;
use perfcloud_bench::forked;
use perfcloud_bench::report::Table;
use perfcloud_bench::scenarios::*;
use perfcloud_cluster::{AntagonistKind, AntagonistPlacement, Mitigation};
use perfcloud_core::antagonist::Resource;
use perfcloud_frameworks::Benchmark;
use perfcloud_sim::SimDuration;

fn main() {
    let t0 = std::time::Instant::now();
    let seed = base_seed();
    println!("=== Ablation: detection threshold sweep (iowait-ratio deviation) ===\n");
    let mut parent = small_scale(
        Benchmark::Terasort,
        20,
        vec![AntagonistPlacement::pinned(AntagonistKind::Fio, 0).deferred()],
        Mitigation::Default,
        seed,
    );
    let tick = SimDuration::from_secs(0.1);
    while parent.now() + tick < ANTAGONIST_ONSET {
        parent.step_tick();
    }
    let out = forked::sweep(&parent, 2, |i, mut e| {
        if i == 1 {
            e.start_antagonist(0, ANTAGONIST_ONSET);
        }
        let _ = e.run();
        e.run_for(SimDuration::from_secs(5.0));
        let s = e.node_managers[0].identifier().deviation_series(Resource::Io);
        s.times()
            .iter()
            .zip(s.values())
            .filter_map(|(&t, &v)| v.map(|v| (t.as_secs_f64(), v)))
            .collect::<Vec<(f64, f64)>>()
    });
    let mut runs = out.results;
    let contended = runs.pop().unwrap();
    let alone = runs.pop().unwrap();
    let alone_peak = alone.iter().map(|x| x.1).fold(0.0f64, f64::max);
    let contended_peak = contended.iter().map(|x| x.1).fold(0.0f64, f64::max);
    println!("alone peak = {alone_peak:.2}; contended peak = {contended_peak:.2}\n");

    let onset = ANTAGONIST_ONSET.as_secs_f64();
    let mut t = Table::new(vec!["H", "false positives (alone)", "detection latency (s)"]);
    for &h in &[0.25, 1.0, 5.0, 10.0, 20.0, 40.0, 80.0] {
        let fp = alone.iter().filter(|&&(_, v)| v > h).count();
        let latency = contended
            .iter()
            .find(|&&(time, v)| time > onset && v > h)
            .map(|&(time, _)| format!("{:.0}", time - onset))
            .unwrap_or_else(|| "none".into());
        t.row(vec![format!("{h}"), fp.to_string(), latency]);
    }
    t.print();
    println!(
        "\nshape check (H = 10 sits in the zero-false-positive, fast-detection window): {}",
        {
            let fp10 = alone.iter().filter(|&&(_, v)| v > 10.0).count();
            let lat10 = contended.iter().any(|&(time, v)| time > onset && v > 10.0);
            if fp10 == 0 && lat10 {
                "HOLDS"
            } else {
                "VIOLATED"
            }
        }
    );

    let mut rec = BenchRecord::wall("ablation_threshold", t0.elapsed().as_secs_f64());
    rec.extras.push(("sweep_points".into(), out.forked_points as f64));
    rec.extras.push(("forked_points".into(), out.forked_points as f64));
    rec.extras.push(("prefix_events_saved".into(), out.prefix_ticks_saved as f64));
    let _ = rec.write();
}
