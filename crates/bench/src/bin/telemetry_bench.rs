//! Telemetry replay throughput runner with a CI regression gate.
//!
//! `cargo run --release -p perfcloud-bench --bin telemetry_bench -- \
//!     [--baseline BENCH_telemetry.json] [--max-drop 0.15]`
//!
//! Runs the synthetic record → serialize → parse → replay-ingest probe
//! ([`perfcloud_bench::telemetrybench`]), writes a fresh
//! `BENCH_telemetry.json`, and — when `--baseline` names a previously
//! committed record — exits non-zero if `replay_samples_per_sec` fell more
//! than `--max-drop` (fraction, default 0.15) below the baseline's. The
//! baseline is read *before* the fresh record is written, so gating
//! against the committed file in the repo root works even when
//! `BENCH_JSON_DIR` is unset.

use perfcloud_bench::benchjson::BenchRecord;
use perfcloud_bench::telemetrybench;

fn main() {
    let mut baseline: Option<String> = None;
    let mut max_drop = 0.15f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = Some(args.next().expect("--baseline needs a path")),
            "--max-drop" => {
                max_drop = args
                    .next()
                    .expect("--max-drop needs a fraction")
                    .parse()
                    .expect("--max-drop must be a number")
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: telemetry_bench [--baseline FILE] [--max-drop FRAC]");
                std::process::exit(2);
            }
        }
    }

    let baseline_sps =
        baseline.as_deref().and_then(|p| BenchRecord::read_field(p, "replay_samples_per_sec"));
    if let Some(path) = &baseline {
        match baseline_sps {
            Some(sps) => println!(
                "baseline {path}: {sps:.0} replay samples/sec (gate: -{:.0}%)",
                max_drop * 100.0
            ),
            None => {
                eprintln!("warning: no replay_samples_per_sec in baseline {path}; gate disabled")
            }
        }
    }

    let record = telemetrybench::probe();
    let extra = |key: &str| record.extras.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
    println!(
        "telemetry probe: {:.0} samples in {:.3}s ({:.0} parse/s, {:.0} replay-ingest/s, {:.0} bytes)",
        extra("samples").unwrap_or(0.0),
        record.wall_seconds,
        extra("parse_samples_per_sec").unwrap_or(0.0),
        extra("replay_samples_per_sec").unwrap_or(0.0),
        extra("encode_bytes").unwrap_or(0.0),
    );
    match record.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write BENCH_telemetry.json: {e}");
            std::process::exit(1);
        }
    }

    if let (Some(base), Some(fresh)) = (baseline_sps, extra("replay_samples_per_sec")) {
        let floor = base * (1.0 - max_drop);
        if fresh < floor {
            eprintln!(
                "REGRESSION: replay_samples_per_sec {fresh:.0} is below the gate floor \
                 {floor:.0} (baseline {base:.0}, max drop {:.0}%)",
                max_drop * 100.0
            );
            std::process::exit(1);
        }
        println!("telemetry gate passed: {fresh:.0} >= {floor:.0}");
    }
}
