//! Figure 4 — the standard deviation of CPI across the application's VMs as
//! a shared-processor-contention indicator.
//!
//! Paper anchors: the peak CPI deviation never exceeds ℋ = 1 when the
//! benchmarks run alone; with a colocated STREAM VM it is "much higher than
//! 1" for every benchmark, and the deviation correlates with the amount of
//! degradation (Spark benchmarks suffer more).

use perfcloud_bench::report::{f2, Table};
use perfcloud_bench::scenarios::*;
use perfcloud_cluster::{AntagonistKind, AntagonistPlacement, Mitigation};
use perfcloud_core::antagonist::Resource;
use perfcloud_frameworks::Benchmark;
use perfcloud_sim::SimDuration;

fn cpi_deviation_peak(bench: Benchmark, with_stream: bool, seed: u64) -> f64 {
    let antagonists = if with_stream {
        vec![AntagonistPlacement::pinned(AntagonistKind::Stream, 0).starting_at(ANTAGONIST_ONSET)]
    } else {
        Vec::new()
    };
    let mut e = small_scale(bench, 10, antagonists, Mitigation::Default, seed);
    let _ = e.run();
    e.run_for(SimDuration::from_secs(10.0));
    let s = e.node_managers[0].identifier().deviation_series(Resource::Cpu);
    s.values().iter().filter_map(|v| *v).fold(0.0, f64::max)
}

fn main() {
    let seed = base_seed();
    const H_CPI: f64 = 1.0;
    println!("=== Figure 4: stddev of CPI across application VMs ===");
    println!("(paper: peaks < 1 alone, > 1 with a colocated STREAM VM)\n");

    let mut t = Table::new(vec![
        "benchmark",
        "family",
        "peak alone",
        "peak with STREAM",
        "alone < H",
        "stream > H",
    ]);
    let mut all_hold = true;
    let mut spark_peaks = Vec::new();
    let mut mr_peaks = Vec::new();
    for bench in Benchmark::ALL {
        let pa = cpi_deviation_peak(bench, false, seed);
        let ps = cpi_deviation_peak(bench, true, seed);
        let ok = pa < H_CPI && ps > H_CPI;
        all_hold &= ok;
        if bench.is_spark() {
            spark_peaks.push(ps);
        } else {
            mr_peaks.push(ps);
        }
        t.row(vec![
            bench.name().to_string(),
            if bench.is_spark() { "spark" } else { "mapreduce" }.to_string(),
            f2(pa),
            f2(ps),
            (pa < H_CPI).to_string(),
            (ps > H_CPI).to_string(),
        ]);
    }
    t.print();

    println!(
        "\nshape check (H = 1 separates alone from contended for all benchmarks): {}",
        if all_hold { "HOLDS" } else { "VIOLATED" }
    );
    let spark = spark_peaks.iter().sum::<f64>() / spark_peaks.len() as f64;
    let mr = mr_peaks.iter().sum::<f64>() / mr_peaks.len() as f64;
    println!("mean contended peak: spark {spark:.2} vs mapreduce {mr:.2}");
}
