//! Scale benchmark runner with a CI regression gate.
//!
//! `cargo run --release -p perfcloud-bench --bin scale_bench -- \
//!     [--baseline BENCH_scale.json] [--max-drop 0.15] \
//!     [--servers N] [--intervals N] [--threads]`
//!
//! Runs the synthetic 100k-server / 1M-VM sharded scenario
//! ([`perfcloud_bench::scalebench`]): a direct-loop baseline, the gated
//! single-shard engine run, and 2/4/7-shard runs whose state digests must
//! match the single-shard digest. Writes a fresh `BENCH_scale.json` and —
//! when `--baseline` names a previously committed record — exits non-zero
//! if the fresh `events_per_sec` fell more than `--max-drop` (fraction,
//! default 0.15) below the baseline's. The baseline is read *before* the
//! fresh record is written, so gating against the committed file in the
//! repo root works even when `BENCH_JSON_DIR` is unset.

use perfcloud_bench::benchjson::BenchRecord;
use perfcloud_bench::scalebench::{self, ScaleConfig};
use perfcloud_sim::shard::shards_from_env;

fn main() {
    let mut baseline: Option<String> = None;
    let mut max_drop = 0.15f64;
    let mut cfg = ScaleConfig::full(shards_from_env(1));
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = Some(args.next().expect("--baseline needs a path")),
            "--max-drop" => {
                max_drop = args
                    .next()
                    .expect("--max-drop needs a fraction")
                    .parse()
                    .expect("--max-drop must be a number")
            }
            "--servers" => {
                cfg.servers = args
                    .next()
                    .expect("--servers needs a count")
                    .parse()
                    .expect("--servers must be a number")
            }
            "--intervals" => {
                cfg.intervals = args
                    .next()
                    .expect("--intervals needs a count")
                    .parse()
                    .expect("--intervals must be a number")
            }
            "--threads" => cfg.threads = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: scale_bench [--baseline FILE] [--max-drop FRAC] \
                     [--servers N] [--intervals N] [--threads]"
                );
                std::process::exit(2);
            }
        }
    }

    let baseline_eps =
        baseline.as_deref().and_then(|p| BenchRecord::read_field(p, "events_per_sec"));
    if let Some(path) = &baseline {
        match baseline_eps {
            Some(eps) => {
                println!("baseline {path}: {eps:.0} events/sec (gate: -{:.0}%)", max_drop * 100.0)
            }
            None => eprintln!("warning: no events_per_sec in baseline {path}; gate disabled"),
        }
    }

    println!(
        "scale scenario: {} servers x {} VMs/server over {} intervals",
        cfg.servers, cfg.vms_per_server, cfg.intervals
    );
    let record = scalebench::probe(&cfg);
    println!(
        "scale probe: {} VM-samples in {:.3}s ({:.0} events/sec, digests match at 1/2/4/7 shards)",
        record.events_fired.unwrap_or(0),
        record.wall_seconds,
        record.events_per_sec().unwrap_or(0.0),
    );
    for (key, value) in &record.extras {
        if key.ends_with("_overhead") {
            println!("  {key}: {:.1}%", value * 100.0);
        } else {
            println!("  {key}: {value:.0}");
        }
    }

    match record.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write BENCH_scale.json: {e}");
            std::process::exit(1);
        }
    }

    if let (Some(base), Some(fresh)) = (baseline_eps, record.events_per_sec()) {
        let floor = base * (1.0 - max_drop);
        if fresh < floor {
            eprintln!(
                "REGRESSION: events_per_sec {fresh:.0} is below the gate floor {floor:.0} \
                 (baseline {base:.0}, max drop {:.0}%)",
                max_drop * 100.0
            );
            std::process::exit(1);
        }
        println!("scale gate passed: {fresh:.0} >= {floor:.0}");
    }
}
