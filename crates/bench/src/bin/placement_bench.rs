//! Placement benchmark runner with a CI regression gate.
//!
//! `cargo run --release -p perfcloud-bench --bin placement_bench -- \
//!     [--check] [--baseline BENCH_placement.json] [--max-drop 0.15]`
//!
//! Runs [`perfcloud_bench::placementbench`]: the `AntagonistAware`
//! decision-throughput micro-bench plus the deterministic
//! throttle-vs-migrate-vs-hybrid scenario comparison, and writes a fresh
//! `BENCH_placement.json`. With `--baseline` (implied as the committed
//! `BENCH_placement.json` by `--check`) the run exits non-zero if
//! `decisions_per_sec` fell more than `--max-drop` (default 0.15) below
//! the baseline. `--check` additionally asserts the scenario invariants:
//! both placement arms migrate exactly once (no ping-pong) and hybrid
//! does not lose to throttle-only on victim JCT.

use perfcloud_bench::benchjson::BenchRecord;
use perfcloud_bench::placementbench;

/// The fixed seed of the gated run — the golden seed, so the scenario
/// arms reproduce the committed `placement_*` golden artifacts.
const SEED: u64 = 42;

fn main() {
    let mut baseline: Option<String> = None;
    let mut max_drop = 0.15f64;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--baseline" => baseline = Some(args.next().expect("--baseline needs a path")),
            "--max-drop" => {
                max_drop = args
                    .next()
                    .expect("--max-drop needs a fraction")
                    .parse()
                    .expect("--max-drop must be a number")
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: placement_bench [--check] [--baseline FILE] [--max-drop FRAC]");
                std::process::exit(2);
            }
        }
    }
    if check && baseline.is_none() {
        baseline = Some("BENCH_placement.json".into());
    }

    let baseline_dps =
        baseline.as_deref().and_then(|p| BenchRecord::read_field(p, "decisions_per_sec"));
    if let Some(path) = &baseline {
        match baseline_dps {
            Some(dps) => println!(
                "baseline {path}: {dps:.0} decisions/sec (gate: -{:.0}%)",
                max_drop * 100.0
            ),
            None => eprintln!("warning: no decisions_per_sec in baseline {path}; gate disabled"),
        }
    }

    let probe = placementbench::probe(SEED);
    println!(
        "placement probe: {:.0} decisions/sec; \
         jct throttle={:.1}s migrate={:.1}s hybrid={:.1}s; \
         migrations migrate={} hybrid={}",
        probe.decisions_per_sec,
        probe.throttle.jct,
        probe.migrate.jct,
        probe.hybrid.jct,
        probe.migrate.migrations,
        probe.hybrid.migrations,
    );

    let record = probe.record();
    match record.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write BENCH_placement.json: {e}");
            std::process::exit(1);
        }
    }

    if check {
        let violations = probe.violations();
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("INVARIANT VIOLATION: {v}");
            }
            std::process::exit(1);
        }
        println!("placement invariants hold: one migration per arm, hybrid <= throttle JCT");
    }

    if let Some(base) = baseline_dps {
        let fresh = probe.decisions_per_sec;
        let floor = base * (1.0 - max_drop);
        if fresh < floor {
            eprintln!(
                "REGRESSION: decisions_per_sec {fresh:.0} is below the gate floor {floor:.0} \
                 (baseline {base:.0}, max drop {:.0}%)",
                max_drop * 100.0
            );
            std::process::exit(1);
        }
        println!("placement gate passed: {fresh:.0} >= {floor:.0}");
    }
}
