//! Figure 3 — the standard deviation of the block-iowait ratio across the
//! Hadoop VMs as an early I/O-contention indicator.
//!
//! * (a) time series for a terasort job (10 maps + 10 reduces) running
//!   alone vs. colocated with fio random read.
//! * (b) peak deviation for every benchmark, alone vs. colocated.
//!
//! Paper anchors: alone, the deviation never exceeds the threshold ℋ = 10;
//! with fio, the peak grows by ≈ 8.2× for terasort; the pattern holds for
//! all benchmarks; detection is possible "within a few seconds" (here: one
//! 5-second sampling interval after the antagonist arrives).

use perfcloud_bench::report::{f2, Table};
use perfcloud_bench::scenarios::*;
use perfcloud_cluster::{AntagonistKind, AntagonistPlacement, Mitigation};
use perfcloud_core::antagonist::Resource;
use perfcloud_frameworks::Benchmark;
use perfcloud_sim::SimDuration;

/// Runs a job spec and returns the io-deviation series (time, value).
/// `fio_at` is the antagonist onset (the motivation experiments colocate it
/// from t = 0; the Fig. 3a time series shows a mid-run onset).
fn deviation_series(
    spec: perfcloud_frameworks::JobSpec,
    fio_at: Option<perfcloud_sim::SimTime>,
    seed: u64,
) -> Vec<(f64, f64)> {
    let antagonists = if let Some(at) = fio_at {
        vec![AntagonistPlacement::pinned(AntagonistKind::Fio, 0).starting_at(at)]
    } else {
        Vec::new()
    };
    let mut e = small_scale_spec(spec, antagonists, Mitigation::Default, seed);
    let _ = e.run();
    // Keep sampling a little past completion for a clean tail.
    e.run_for(SimDuration::from_secs(10.0));
    let s = e.node_managers[0].identifier().deviation_series(Resource::Io);
    s.times()
        .iter()
        .zip(s.values())
        .filter_map(|(&t, &v)| v.map(|v| (t.as_secs_f64(), v)))
        .collect()
}

fn peak(series: &[(f64, f64)]) -> f64 {
    series.iter().map(|&(_, v)| v).fold(0.0, f64::max)
}

fn main() {
    let seed = base_seed();
    const H_IO: f64 = 10.0;
    println!("=== Figure 3: stddev of block iowait ratio across Hadoop VMs ===\n");

    // (a) terasort 10 maps + 10 reduces, time series.
    let spec = Benchmark::Terasort.mapreduce_job(10 * (64 << 20), 10);
    let alone = deviation_series(spec.clone(), None, seed);
    let with_fio = deviation_series(spec, Some(ANTAGONIST_ONSET), seed);
    println!("Fig 3(a): terasort 10m+10r — stddev(block iowait ratio) [ms/op] time series");
    let mut t = Table::new(vec!["t (s)", "alone", "with fio"]);
    let n = alone.len().max(with_fio.len());
    for i in 0..n {
        let ta = alone.get(i);
        let tf = with_fio.get(i);
        t.row(vec![
            format!("{:.0}", ta.or(tf).map(|x| x.0).unwrap_or_default()),
            ta.map(|x| f2(x.1)).unwrap_or_default(),
            tf.map(|x| f2(x.1)).unwrap_or_default(),
        ]);
    }
    t.print();
    let pa = peak(&alone);
    let pf = peak(&with_fio);
    println!(
        "\npeak alone = {pa:.2}, peak with fio = {pf:.2}, ratio = {:.1}x (paper: 8.2x)",
        pf / pa.max(1e-9)
    );

    // (b) all benchmarks: peak deviation alone vs. colocated.
    println!("\nFig 3(b): peak deviation per benchmark vs threshold H = {H_IO}");
    let mut t =
        Table::new(vec!["benchmark", "peak alone", "peak with fio", "alone < H", "fio > H"]);
    let mut all_hold = true;
    for bench in Benchmark::ALL {
        // 20 tasks: long enough that the contended phase spans several
        // sampling intervals for every benchmark.
        let spec = bench.job(20);
        let pa = peak(&deviation_series(spec.clone(), None, seed));
        let pf = peak(&deviation_series(spec, Some(perfcloud_sim::SimTime::ZERO), seed));
        let ok_alone = pa < H_IO;
        let ok_fio = pf > H_IO;
        all_hold &= ok_alone && ok_fio;
        t.row(vec![
            bench.name().to_string(),
            f2(pa),
            f2(pf),
            ok_alone.to_string(),
            ok_fio.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nshape check (threshold separates alone from contended for all benchmarks): {}",
        if all_hold { "HOLDS" } else { "VIOLATED" }
    );
}
