//! Ablation — why CUBIC? (DESIGN.md §5)
//!
//! Compares the paper's CUBIC cap dynamics against two simpler controllers
//! on the same feedback task: keep a victim's contention signal below the
//! threshold while granting the antagonist as much of its demand as
//! possible.
//!
//! The plant is a deliberately simple closed loop: contention occurs while
//! the antagonist's cap exceeds the spare capacity left by the victim, whose
//! demand shifts occasionally (a step pattern). Controllers only observe the
//! binary contended/uncontended signal — exactly what Eq. 1 consumes.
//!
//! * **cubic** — Eq. 1 (β = 0.8, γ = 0.05 scaled for the fast plant);
//! * **aimd**  — additive increase (+0.05/interval), ×0.2 decrease;
//! * **onoff** — the paper's "ad-hoc" strawman: cap 0.2 while contended,
//!   uncapped otherwise.
//!
//! Metrics over the horizon: fraction of intervals in contention (victim
//! pain), mean granted cap (antagonist utility), and cap oscillation
//! (stddev of interval-to-interval cap changes — the paper's "oscillatory
//! and unstable system behavior" concern).

use perfcloud_bench::benchjson::BenchRecord;
use perfcloud_bench::report::{f3, Table};
use perfcloud_bench::sweep;
use perfcloud_core::cubic::{CubicController, CubicState};
use perfcloud_stats::population_stddev;

/// Spare capacity for the antagonist over time: the victim's demand steps
/// between phases (e.g. I/O-heavy vs compute-heavy stages).
fn spare_capacity(t: usize) -> f64 {
    match (t / 60) % 3 {
        0 => 0.55,
        1 => 0.25,
        _ => 0.80,
    }
}

trait Controller {
    fn step(&mut self, contended: bool) -> f64;
}

struct Cubic {
    c: CubicController,
    s: CubicState,
}
impl Controller for Cubic {
    fn step(&mut self, contended: bool) -> f64 {
        self.c.step(&mut self.s, contended).min(1.0)
    }
}

struct Aimd {
    cap: f64,
}
impl Controller for Aimd {
    fn step(&mut self, contended: bool) -> f64 {
        if contended {
            self.cap *= 0.2;
        } else {
            self.cap = (self.cap + 0.05).min(1.0);
        }
        self.cap
    }
}

struct OnOff {
    cap: f64,
}
impl Controller for OnOff {
    fn step(&mut self, contended: bool) -> f64 {
        self.cap = if contended { 0.2 } else { 1.0 };
        self.cap
    }
}

fn evaluate(name: &str, ctrl: &mut dyn Controller, horizon: usize) -> (String, f64, f64, f64) {
    let mut cap = 1.0f64;
    let mut contended_intervals = 0usize;
    let mut caps = Vec::with_capacity(horizon);
    for t in 0..horizon {
        // Contention materializes when the cap lets the antagonist push
        // beyond the current spare capacity.
        let contended = cap > spare_capacity(t);
        if contended {
            contended_intervals += 1;
        }
        cap = ctrl.step(contended);
        caps.push(cap);
    }
    let mean_cap = caps.iter().sum::<f64>() / caps.len() as f64;
    let deltas: Vec<f64> = caps.windows(2).map(|w| w[1] - w[0]).collect();
    let oscillation = population_stddev(&deltas).unwrap_or(0.0);
    (name.to_string(), contended_intervals as f64 / horizon as f64, mean_cap, oscillation)
}

fn main() {
    let t0 = std::time::Instant::now();
    println!("=== Ablation: CUBIC vs AIMD vs ad-hoc on/off capping ===\n");
    let horizon = 600;
    // γ is rescaled because the synthetic plant's spare capacity is O(1);
    // β matches the paper. Each controller's closed loop is independent.
    let rows = sweep::run(3, |i| {
        let mut ctrl: Box<dyn Controller> = match i {
            0 => Box::new(Cubic { c: CubicController::new(0.8, 0.05), s: CubicState::new() }),
            1 => Box::new(Aimd { cap: 1.0 }),
            _ => Box::new(OnOff { cap: 1.0 }),
        };
        evaluate(["cubic", "aimd", "onoff"][i], ctrl.as_mut(), horizon)
    });

    let mut t =
        Table::new(vec!["controller", "contended fraction", "mean granted cap", "cap oscillation"]);
    for (name, pain, cap, osc) in &rows {
        t.row(vec![name.clone(), f3(*pain), f3(*cap), f3(*osc)]);
    }
    t.print();

    let cubic = &rows[0];
    let onoff = &rows[2];
    println!(
        "\nshape check (cubic oscillates less than on/off): {}",
        if cubic.3 < onoff.3 { "HOLDS" } else { "VIOLATED" }
    );
    println!(
        "shape check (cubic causes less contention than on/off): {}",
        if cubic.1 < onoff.1 { "HOLDS" } else { "VIOLATED" }
    );

    // Purely synthetic closed loops — no Experiment, nothing to fork.
    let mut rec = BenchRecord::wall("ablation_controller", t0.elapsed().as_secs_f64());
    rec.extras.push(("sweep_points".into(), 3.0));
    rec.extras.push(("forked_points".into(), 0.0));
    rec.extras.push(("prefix_events_saved".into(), 0.0));
    let _ = rec.write();
}
