//! Figure 1 — performance degradation due to a colocated I/O-intensive
//! workload, and the effect of static I/O caps on the antagonist.
//!
//! * (a) MapReduce terasort: normalized JCT and normalized fio IOPS as the
//!   fio VM's I/O cap sweeps {uncapped, 50%, 40%, 30%, 20%, 10%}.
//! * (b) the same sweep for Spark logistic regression.
//! * (c) normalized JCT of all six benchmarks with the uncapped fio VM.
//!
//! Paper anchors: terasort degrades by ~72% and Spark LR by ~44% under the
//! uncapped fio; MR/Spark performance improves as the cap tightens, while
//! fio's own throughput falls roughly with the cap; capping below ~20%
//! stops helping Spark (disk no longer its bottleneck).
//!
//! Sweep structure: the cap sweeps (a)/(b) fork one uncapped parent before
//! its first tick and apply each cap to a fork ([`Experiment::apply_static_caps`]
//! at tick zero is byte-identical to building with the static-cap
//! mitigation); caps bind from t = 0, so there is no shared prefix to save
//! there. Panel (c) varies only the job, so its parent runs the
//! fio-only warm-up once and each benchmark forks off it.

use perfcloud_baselines::StaticCapping;
use perfcloud_bench::benchjson::BenchRecord;
use perfcloud_bench::report::{f2, Table};
use perfcloud_bench::scenarios::*;
use perfcloud_bench::{forked, sweep};
use perfcloud_cluster::{
    AntagonistKind, AntagonistPlacement, ClusterSpec, Experiment, ExperimentConfig, Mitigation,
};
use perfcloud_frameworks::Benchmark;
use perfcloud_host::VmId;
use perfcloud_sim::SimTime;

/// Shared-prefix ticks for panel (c): 4.9 s, strictly before the 5 s job
/// submission (ticks are 100 ms).
const PREFIX_TICKS: u64 = 49;

fn cap_sweep(
    bench: Benchmark,
    tasks: usize,
    label: &str,
    seed: u64,
) -> forked::ForkedResults<(f64, f64)> {
    let (solo_iops, solo_bps) = fio_solo_reference(seed);
    let solo = solo_jct(bench, tasks, seed);
    println!(
        "\nFig 1({label}): {} ({} tasks); solo JCT = {:.1}s, fio solo = {:.0} IOPS",
        bench.name(),
        tasks,
        solo,
        solo_iops
    );
    let caps = [None, Some(0.5), Some(0.4), Some(0.3), Some(0.2), Some(0.1)];
    // The antagonist VM is the first VM added after the 10 workers => id 10.
    let fio_vm = VmId(10);
    let parent = small_scale(
        bench,
        tasks,
        vec![AntagonistPlacement::pinned(AntagonistKind::Fio, 0)],
        Mitigation::Default,
        seed,
    );
    let out = forked::sweep(&parent, caps.len(), |i, mut e| {
        if let Some(frac) = caps[i] {
            e.apply_static_caps(&StaticCapping::new().cap_io(fio_vm, frac, solo_iops, solo_bps));
        }
        let r = e.run();
        let secs = r.duration.as_secs_f64();
        (r.sole_jct(), r.antagonists[0].io_ops / secs)
    });
    let mut t = Table::new(vec!["fio I/O cap", "norm JCT", "norm fio IOPS"]);
    for (cap, &(jct, iops)) in caps.iter().zip(&out.results) {
        let cap_label = match cap {
            None => "uncapped".to_string(),
            Some(c) => format!("{:.0}%", c * 100.0),
        };
        t.row(vec![cap_label, f2(jct / solo), f2(iops / solo_iops)]);
    }
    t.print();
    out
}

fn main() {
    let t0 = std::time::Instant::now();
    let seed = base_seed();
    println!("=== Figure 1: degradation under a colocated fio random-read VM ===");

    let a = cap_sweep(Benchmark::Terasort, 10, "a", seed);
    let b = cap_sweep(Benchmark::LogisticRegression, 40, "b", seed);

    println!("\nFig 1(c): normalized JCT of each benchmark with uncapped fio");
    println!("(paper anchors: terasort ≈ 1.72, logistic-regression ≈ 1.44)");
    // One fio-contended parent runs the pre-submission warm-up; each
    // benchmark is a fork with its job pushed in at the usual 5 s.
    let mut cfg = ExperimentConfig::new(ClusterSpec::small_scale(seed), Mitigation::Default);
    cfg.antagonists.push(AntagonistPlacement::pinned(AntagonistKind::Fio, 0));
    cfg.max_sim_time = SimTime::from_secs(7_200);
    let mut parent = Experiment::build(cfg);
    for _ in 0..PREFIX_TICKS {
        parent.step_tick();
    }
    let c = forked::sweep(&parent, Benchmark::ALL.len(), |i, mut e| {
        e.push_job(JOB_START, Benchmark::ALL[i].job(10));
        e.run()
    });
    let solos: Vec<f64> =
        sweep::run(Benchmark::ALL.len(), |i| solo_jct(Benchmark::ALL[i], 10, seed));
    let mut t = Table::new(vec!["benchmark", "solo JCT (s)", "with fio", "norm JCT"]);
    for ((bench, r), solo) in Benchmark::ALL.iter().zip(&c.results).zip(&solos) {
        t.row(vec![
            bench.name().to_string(),
            format!("{solo:.1}"),
            format!("{:.1}", r.sole_jct()),
            f2(r.sole_jct() / solo),
        ]);
    }
    t.print();

    let mut rec = BenchRecord::wall("fig1", t0.elapsed().as_secs_f64());
    let points = a.forked_points + b.forked_points + c.forked_points;
    let saved = a.prefix_ticks_saved + b.prefix_ticks_saved + c.prefix_ticks_saved;
    rec.extras.push(("sweep_points".into(), points as f64));
    rec.extras.push(("forked_points".into(), points as f64));
    rec.extras.push(("prefix_events_saved".into(), saved as f64));
    let _ = rec.write();
}
