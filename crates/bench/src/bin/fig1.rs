//! Figure 1 — performance degradation due to a colocated I/O-intensive
//! workload, and the effect of static I/O caps on the antagonist.
//!
//! * (a) MapReduce terasort: normalized JCT and normalized fio IOPS as the
//!   fio VM's I/O cap sweeps {uncapped, 50%, 40%, 30%, 20%, 10%}.
//! * (b) the same sweep for Spark logistic regression.
//! * (c) normalized JCT of all six benchmarks with the uncapped fio VM.
//!
//! Paper anchors: terasort degrades by ~72% and Spark LR by ~44% under the
//! uncapped fio; MR/Spark performance improves as the cap tightens, while
//! fio's own throughput falls roughly with the cap; capping below ~20%
//! stops helping Spark (disk no longer its bottleneck).

use perfcloud_baselines::StaticCapping;
use perfcloud_bench::report::{f2, Table};
use perfcloud_bench::scenarios::*;
use perfcloud_cluster::{AntagonistKind, Mitigation};
use perfcloud_frameworks::Benchmark;
use perfcloud_host::VmId;

fn capped_run(
    bench: Benchmark,
    tasks: usize,
    cap: Option<f64>,
    fio_ref: (f64, f64),
    seed: u64,
) -> (f64, f64) {
    // The antagonist VM is the first VM added after the 10 workers => id 10.
    let fio_vm = VmId(10);
    let mitigation = match cap {
        None => Mitigation::Default,
        Some(frac) => {
            Mitigation::StaticCap(StaticCapping::new().cap_io(fio_vm, frac, fio_ref.0, fio_ref.1))
        }
    };
    let r = contended_run(bench, tasks, &[AntagonistKind::Fio], mitigation, seed);
    let secs = r.duration.as_secs_f64();
    (r.sole_jct(), r.antagonists[0].io_ops / secs)
}

fn sweep(bench: Benchmark, tasks: usize, label: &str, seed: u64) {
    let (solo_iops, solo_bps) = fio_solo_reference(seed);
    let solo = solo_jct(bench, tasks, seed);
    println!(
        "\nFig 1({label}): {} ({} tasks); solo JCT = {:.1}s, fio solo = {:.0} IOPS",
        bench.name(),
        tasks,
        solo,
        solo_iops
    );
    let mut t = Table::new(vec!["fio I/O cap", "norm JCT", "norm fio IOPS"]);
    for cap in [None, Some(0.5), Some(0.4), Some(0.3), Some(0.2), Some(0.1)] {
        let (jct, iops) = capped_run(bench, tasks, cap, (solo_iops, solo_bps), seed);
        let cap_label = match cap {
            None => "uncapped".to_string(),
            Some(c) => format!("{:.0}%", c * 100.0),
        };
        t.row(vec![cap_label, f2(jct / solo), f2(iops / solo_iops)]);
    }
    t.print();
}

fn main() {
    let seed = base_seed();
    println!("=== Figure 1: degradation under a colocated fio random-read VM ===");

    sweep(Benchmark::Terasort, 10, "a", seed);
    sweep(Benchmark::LogisticRegression, 40, "b", seed);

    println!("\nFig 1(c): normalized JCT of each benchmark with uncapped fio");
    println!("(paper anchors: terasort ≈ 1.72, logistic-regression ≈ 1.44)");
    let mut t = Table::new(vec!["benchmark", "solo JCT (s)", "with fio", "norm JCT"]);
    for bench in Benchmark::ALL {
        let tasks = 10;
        let solo = solo_jct(bench, tasks, seed);
        let r = contended_run(bench, tasks, &[AntagonistKind::Fio], Mitigation::Default, seed);
        t.row(vec![
            bench.name().to_string(),
            format!("{solo:.1}"),
            format!("{:.1}", r.sole_jct()),
            f2(r.sole_jct() / solo),
        ]);
    }
    t.print();
}
