//! The paper's future-work scenario (§IV-D.2): heterogeneous servers.
//!
//! "Due to its decentralized design, PerfCloud does not take into account
//! the hardware heterogeneity of physical servers. As a result, VMs running
//! on slower machines may still cause some tasks to straggle. In such
//! cases, application-level approaches such as speculative execution can
//! complement PerfCloud."
//!
//! A 6-server cluster where two servers run at 0.4× speed, with a fio and
//! a STREAM antagonist, executes a batch of jobs under: LATE alone,
//! PerfCloud alone, and the PerfCloud + LATE hybrid. Expected shape: LATE
//! helps with slow-server stragglers but not contention; PerfCloud helps
//! with contention but not slow servers; the hybrid beats both.

use perfcloud_baselines::LatePolicy;
use perfcloud_bench::report::{f2, Table};
use perfcloud_bench::scenarios::base_seed;
use perfcloud_cluster::{
    AntagonistKind, AntagonistPlacement, ClusterSpec, Experiment, ExperimentConfig, Mitigation,
};
use perfcloud_core::PerfCloudConfig;
use perfcloud_frameworks::Benchmark;
use perfcloud_sim::SimTime;

fn cluster(seed: u64) -> ClusterSpec {
    let mut c = ClusterSpec::large_scale(seed);
    c.servers = 6;
    c.speed_factors = vec![1.0, 1.0, 0.4, 1.0, 0.4, 1.0];
    c
}

fn run(mitigation: Mitigation, seed: u64) -> f64 {
    let mut cfg = ExperimentConfig::new(cluster(seed), mitigation);
    for (i, bench) in [Benchmark::Terasort, Benchmark::InvertedIndex, Benchmark::Wordcount]
        .into_iter()
        .enumerate()
    {
        cfg.jobs.push((SimTime::from_secs(5 + 10 * i as u64), bench.job(24)));
    }
    cfg.antagonists.push(
        AntagonistPlacement::pinned(AntagonistKind::Fio, 0).starting_at(SimTime::from_secs(20)),
    );
    cfg.antagonists.push(
        AntagonistPlacement::pinned(AntagonistKind::Stream, 3).starting_at(SimTime::from_secs(20)),
    );
    cfg.max_sim_time = SimTime::from_secs(7_200);
    let r = Experiment::build(cfg).run();
    r.outcomes.iter().map(|o| o.jct).sum::<f64>() / r.outcomes.len() as f64
}

fn main() {
    let seed = base_seed();
    println!("=== Future work: heterogeneous servers (2 of 6 at 0.4x) + antagonists ===\n");

    let rows = vec![
        ("default", run(Mitigation::Default, seed)),
        ("late", run(Mitigation::Late(LatePolicy::default()), seed)),
        ("perfcloud", run(Mitigation::PerfCloud(PerfCloudConfig::default()), seed)),
        (
            "perfcloud+late",
            run(
                Mitigation::PerfCloudWithLate(PerfCloudConfig::default(), LatePolicy::default()),
                seed,
            ),
        ),
    ];
    let default_jct = rows[0].1;
    let mut t = Table::new(vec!["system", "mean JCT (s)", "vs default"]);
    for (name, jct) in &rows {
        t.row(vec![name.to_string(), format!("{jct:.1}"), f2(jct / default_jct)]);
    }
    t.print();

    let late = rows[1].1;
    let pc = rows[2].1;
    let hybrid = rows[3].1;
    println!(
        "\nshape check (the hybrid beats both constituents): {}",
        if hybrid <= pc && hybrid <= late { "HOLDS" } else { "VIOLATED" }
    );
    println!(
        "shape check (each constituent beats the default): {}",
        if pc < default_jct && late < default_jct { "HOLDS" } else { "VIOLATED" }
    );
}
