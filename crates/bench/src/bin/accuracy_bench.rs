//! Ground-truth accuracy scoreboard runner with a CI regression gate.
//!
//! `cargo run --release -p perfcloud-bench --bin accuracy_bench [-- --check]`
//!
//! Runs every (detector × identifier) pipeline over the accuracy scenario
//! matrix ([`perfcloud_bench::accuracy`]), prints the scoreboard table, and
//! writes `BENCH_accuracy.json` (to `$BENCH_JSON_DIR`, or the current
//! directory). With `--check` the rendered scoreboard is additionally
//! byte-compared against `tests/golden/accuracy_scoreboard.trace`
//! (`BLESS=1` regenerates it) and the semantic gates of
//! [`perfcloud_bench::accuracy::gate`] are enforced; any mismatch or
//! violated gate exits non-zero.

use perfcloud_bench::accuracy::{self, gate, run_matrix, scoreboard_json, scoreboard_table};
use perfcloud_bench::golden::GoldenStatus;
use std::path::PathBuf;

fn json_path() -> PathBuf {
    let dir = std::env::var_os("BENCH_JSON_DIR").map(PathBuf::from).unwrap_or_default();
    dir.join("BENCH_accuracy.json")
}

fn main() {
    let mut check = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: accuracy_bench [--check]");
                std::process::exit(2);
            }
        }
    }

    let rows = run_matrix();
    let table = scoreboard_table(&rows);
    print!("{table}");

    let json = scoreboard_json(&rows);
    let path = json_path();
    std::fs::write(&path, &json).expect("write BENCH_accuracy.json");
    println!("\nwrote {}", path.display());

    if !check {
        return;
    }

    let mut failed = false;
    // The committed scoreboard is the regression surface: any accuracy
    // movement — better or worse — must show up in the diff and be
    // re-blessed consciously.
    let artifact = format!("{json}{table}");
    match perfcloud_bench::golden::check("accuracy_scoreboard", &artifact) {
        GoldenStatus::Match => {
            println!("scoreboard matches tests/golden/accuracy_scoreboard.trace")
        }
        GoldenStatus::Regenerated => println!("scoreboard golden regenerated (BLESS=1)"),
        GoldenStatus::Mismatch { diff } => {
            eprintln!("{diff}");
            failed = true;
        }
    }

    let violations = gate(&rows);
    if violations.is_empty() {
        println!(
            "all gates hold: paper clean F1 ≥ {}, alternatives beat paper on ≥ 2 \
             adversarial families, low-signal failure/success pair pinned",
            accuracy::PAPER_CLEAN_F1_FLOOR
        );
    } else {
        for v in &violations {
            eprintln!("gate violated: {v}");
        }
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
