//! Engine micro-benchmark: calendar throughput and wheel-vs-heap points.
//!
//! Two measurements, both emitted into one machine-readable
//! `BENCH_engine.json` record:
//!
//! * the **canonical probe** — eight periodic tickers plus
//!   schedule-then-cancel churn through the full [`Simulation`] stack,
//!   the hot-path pattern the cluster harness leans on. Its
//!   `events_per_sec` is the regression-gated headline number.
//! * the **queue comparison** — raw pop/push churn on the hierarchical
//!   [`TimerWheel`] versus the `BinaryHeap` calendar it replaced, at 10k,
//!   100k and 1M pending entries, reported as `wheel_eps_*`, `heap_eps_*`
//!   and `speedup_*` extras. The heap side mirrors the old engine's queue
//!   exactly: same 24-byte `Entry`, same inverted `Ord`.
//! * a **batched-sampling point** — one periodic event driving all VMs of
//!   a server versus one periodic event per VM, the event-shape change the
//!   node-manager sampling path uses (`batched_sampling_speedup`).

use crate::benchjson::BenchRecord;
use perfcloud_obs::{chrome_trace, ExportSource};
use perfcloud_sim::wheel::{Entry, TimerWheel};
use perfcloud_sim::{EventId, SimDuration, SimTime, Simulation};
use std::collections::BinaryHeap;
use std::time::Instant;

/// Pending-entry counts for the queue comparison.
pub const COMPARISON_SIZES: [(usize, &str); 3] =
    [(10_000, "10k"), (100_000, "100k"), (1_000_000, "1m")];

/// Pop/push operations measured per comparison point.
const CHURN_OPS: u64 = 2_000_000;

/// Flight events the observed probe's recorder retains.
pub const OBSERVED_FLIGHT_CAPACITY: usize = 8_192;

/// Raw simulator throughput: periodic tickers plus schedule/cancel churn.
/// Reported as `BENCH_engine.json` so engine-level regressions show up
/// even when the figure harnesses mask them behind model work. Alongside
/// the gated `events_per_sec`, the record carries the calendar's own
/// counters — peak pending depth, late-heap insertions, overflow
/// promotions — which are pure functions of the workload and therefore
/// stable across machines.
pub fn probe() -> BenchRecord {
    probe_run(false).0
}

/// The canonical probe with the engine flight recorder attached: same
/// workload, same extras, so the `events_per_sec` delta against
/// [`probe`] is exactly the recorder's overhead (gated in CI at ≤ 10%).
/// Also returns the Chrome-trace JSON of the recorded engine events.
pub fn probe_observed() -> (BenchRecord, String) {
    let (mut record, trace) = probe_run(true);
    record.name = "engine_observed".into();
    (record, trace.expect("observed probe has a recorder"))
}

fn probe_run(observed: bool) -> (BenchRecord, Option<String>) {
    let mut sim = Simulation::new(0u64);
    if observed {
        sim.attach_flight(OBSERVED_FLIGHT_CAPACITY);
    }
    for k in 0..8u64 {
        sim.schedule_periodic(SimTime::ZERO, SimDuration::from_micros(50 + 17 * k), |w, ctx| {
            *w += 1;
            let doomed = ctx.schedule_in(SimDuration::from_secs(1.0), |w, _| *w += 1);
            ctx.cancel(doomed);
            true
        });
    }
    let start = Instant::now();
    sim.run_until(SimTime::from_secs(20));
    let wall_seconds = start.elapsed().as_secs_f64();
    let ws = sim.wheel_stats();
    let extras = vec![
        ("queue_peak_depth".to_string(), ws.peak_len as f64),
        ("late_promotions".to_string(), ws.late_insertions as f64),
        ("overflow_promotions".to_string(), ws.overflow_insertions as f64),
        ("overflow_migrations".to_string(), ws.overflow_migrations as f64),
    ];
    let trace =
        sim.flight().map(|rec| chrome_trace(&[ExportSource::from_recorder(0, "engine", rec)]));
    let record = BenchRecord {
        name: "engine".into(),
        wall_seconds,
        events_fired: Some(sim.events_fired()),
        extras,
    };
    (record, trace)
}

/// The canonical probe plus the wheel-vs-heap and batched-sampling extras.
pub fn probe_with_comparison() -> BenchRecord {
    let mut record = probe();
    for (pending, tag) in COMPARISON_SIZES {
        let wheel_eps = churn_wheel(pending);
        let heap_eps = churn_heap(pending);
        record.extras.push((format!("wheel_eps_{tag}"), wheel_eps));
        record.extras.push((format!("heap_eps_{tag}"), heap_eps));
        record.extras.push((format!("speedup_{tag}"), wheel_eps / heap_eps));
    }
    let (per_vm, batched) = sampling_shapes();
    record.extras.push(("per_vm_sampling_eps".into(), per_vm));
    record.extras.push(("batched_sampling_eps".into(), batched));
    record.extras.push(("batched_sampling_speedup".into(), batched / per_vm));
    record
}

/// Deterministic xorshift stream; seeded per measurement so wheel and heap
/// see identical schedules.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn entry(t: u64, seq: u64) -> Entry {
    Entry { time: SimTime::from_micros(t), seq, id: EventId::from_raw(0) }
}

/// Steady-state churn at a fixed pending count: pop the minimum, reinsert
/// it a pseudo-random distance ahead. Returns events (pops) per second.
fn churn_wheel(pending: usize) -> f64 {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    let mut w = TimerWheel::new();
    let mut seq = 0u64;
    for _ in 0..pending {
        w.insert(entry(rng.next() % (pending as u64 * 16), seq));
        seq += 1;
    }
    let start = Instant::now();
    for _ in 0..CHURN_OPS {
        let e = w.pop().expect("pending count is constant");
        w.insert(entry(e.time.as_micros() + 1 + rng.next() % (pending as u64 * 16), seq));
        seq += 1;
    }
    CHURN_OPS as f64 / start.elapsed().as_secs_f64()
}

/// The same churn on the binary-heap calendar the wheel replaced.
fn churn_heap(pending: usize) -> f64 {
    let mut rng = XorShift(0x9e3779b97f4a7c15);
    let mut h = BinaryHeap::new();
    let mut seq = 0u64;
    for _ in 0..pending {
        h.push(entry(rng.next() % (pending as u64 * 16), seq));
        seq += 1;
    }
    let start = Instant::now();
    for _ in 0..CHURN_OPS {
        let e = h.pop().expect("pending count is constant");
        h.push(entry(e.time.as_micros() + 1 + rng.next() % (pending as u64 * 16), seq));
        seq += 1;
    }
    CHURN_OPS as f64 / start.elapsed().as_secs_f64()
}

/// Sampling-event shapes: 15 servers × 10 VMs sampled every 5 ms of sim
/// time, either as one periodic event per VM or as one per server that
/// walks its VMs. Returns (per-VM samples/sec, batched samples/sec) — the
/// same per-VM work either way, so the difference is pure calendar
/// overhead.
fn sampling_shapes() -> (f64, f64) {
    const SERVERS: usize = 15;
    const VMS: usize = 10;
    const HORIZON_SECS: u64 = 60;
    let period = SimDuration::from_millis(5);
    let samples = |counters: &[u64]| counters.iter().sum::<u64>();

    let mut per_vm_sim = Simulation::new(vec![0u64; SERVERS * VMS]);
    for vm in 0..SERVERS * VMS {
        per_vm_sim.schedule_periodic(SimTime::ZERO, period, move |w, _| {
            w[vm] += 1;
            true
        });
    }
    let start = Instant::now();
    per_vm_sim.run_until(SimTime::from_secs(HORIZON_SECS));
    let per_vm_eps = samples(per_vm_sim.world()) as f64 / start.elapsed().as_secs_f64();

    let mut batched_sim = Simulation::new(vec![0u64; SERVERS * VMS]);
    for server in 0..SERVERS {
        batched_sim.schedule_periodic(SimTime::ZERO, period, move |w, _| {
            for vm in 0..VMS {
                w[server * VMS + vm] += 1;
            }
            true
        });
    }
    let start = Instant::now();
    batched_sim.run_until(SimTime::from_secs(HORIZON_SECS));
    let batched_eps = samples(batched_sim.world()) as f64 / start.elapsed().as_secs_f64();

    (per_vm_eps, batched_eps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_record_has_all_points() {
        // Smoke-test shape only (tiny op counts would be needed for speed;
        // instead just check the extras the real run will emit are wired).
        let mut r = BenchRecord::wall("engine", 1.0);
        for (_, tag) in COMPARISON_SIZES {
            r.extras.push((format!("wheel_eps_{tag}"), 1.0));
            r.extras.push((format!("heap_eps_{tag}"), 1.0));
            r.extras.push((format!("speedup_{tag}"), 1.0));
        }
        let j = r.to_json();
        for (_, tag) in COMPARISON_SIZES {
            assert!(j.contains(&format!("\"speedup_{tag}\"")), "{j}");
        }
    }

    #[test]
    fn engine_flight_export_is_deterministic() {
        // A miniature of the observed probe: same recorder attachment and
        // export path, small enough for a debug-mode test. The trace must
        // be a pure function of the (deterministic) event schedule.
        let run = || {
            let mut sim = Simulation::new(0u64);
            sim.attach_flight(64);
            sim.schedule_periodic(SimTime::ZERO, SimDuration::from_millis(1), |w, _| {
                *w += 1;
                *w < 50
            });
            sim.run_until(SimTime::from_secs(1));
            let rec = sim.flight().expect("recorder attached");
            (sim.events_fired(), chrome_trace(&[ExportSource::from_recorder(0, "engine", rec)]))
        };
        let (a_events, a_trace) = run();
        let (b_events, b_trace) = run();
        assert_eq!(a_events, b_events);
        assert_eq!(a_trace, b_trace);
        assert!(a_trace.contains("\"engine\""), "{a_trace}");
        assert!(a_trace.contains("fire pending="), "{a_trace}");
    }

    #[test]
    fn churn_preserves_pending_count() {
        // The measurement loops assume pop always succeeds; verify the
        // invariant on a small wheel without timing anything.
        let mut rng = XorShift(42);
        let mut w = TimerWheel::new();
        for seq in 0..256u64 {
            w.insert(entry(rng.next() % 4096, seq));
        }
        for seq in 256..4096u64 {
            let e = w.pop().expect("pending count is constant");
            w.insert(entry(e.time.as_micros() + 1 + rng.next() % 4096, seq));
        }
        assert_eq!(w.len(), 256);
    }
}
