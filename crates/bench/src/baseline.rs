//! Cross-figure baseline cache.
//!
//! Several figure harnesses need the same interference-free references —
//! the solo JCT of a `(benchmark, tasks, seed)` combination, fio's solo
//! IOPS/bandwidth, STREAM's solo core usage — and each used to recompute
//! them from scratch. When `run_all` drives the whole suite it precomputes
//! the union of those references once (in parallel, in-process), writes
//! them to a cache file, and points every child harness at it via
//! `PERFCLOUD_BASELINE_CACHE`. The [`crate::scenarios`] accessors consult
//! the cache first and fall back to computing — a stale or partial cache
//! can only cost time, never change a number.
//!
//! Values round-trip through the file as IEEE-754 bit patterns (hex), so a
//! cached baseline is **bit-identical** to a freshly computed one and
//! figure outputs are byte-for-byte unchanged by caching.

use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Environment variable naming the cache file.
pub const ENV: &str = "PERFCLOUD_BASELINE_CACHE";

/// Cache key of a solo JCT.
pub fn solo_jct_key(bench: perfcloud_frameworks::Benchmark, tasks: usize, seed: u64) -> String {
    format!("solo_jct:{}:{tasks}:{seed}", bench.name())
}

/// Cache keys of the fio solo reference (IOPS, bytes/s).
pub fn fio_keys(seed: u64) -> (String, String) {
    (format!("fio_solo_iops:{seed}"), format!("fio_solo_bps:{seed}"))
}

/// Cache key of STREAM's solo core usage.
pub fn stream_key(seed: u64) -> String {
    format!("stream_solo_cores:{seed}")
}

fn cache() -> &'static BTreeMap<String, f64> {
    static CACHE: OnceLock<BTreeMap<String, f64>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let Ok(path) = std::env::var(ENV) else { return BTreeMap::new() };
        let Ok(text) = std::fs::read_to_string(&path) else { return BTreeMap::new() };
        parse(&text)
    })
}

fn parse(text: &str) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((key, bits)) = line.split_once('\t') {
            if let Ok(bits) = u64::from_str_radix(bits.trim(), 16) {
                map.insert(key.to_string(), f64::from_bits(bits));
            }
        }
    }
    map
}

/// Looks `key` up in the process-wide cache (loaded lazily from the file
/// named by [`ENV`]; empty when unset or unreadable).
pub fn cached(key: &str) -> Option<f64> {
    cache().get(key).copied()
}

/// Serializes entries in the cache file format (sorted, bit-exact hex).
pub fn render(entries: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("# PerfCloud baseline cache: key \\t f64-bits-hex\n");
    for (key, value) in entries {
        out.push_str(&format!("{key}\t{:016x}\n", value.to_bits()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip_is_bit_exact() {
        let mut entries = BTreeMap::new();
        entries.insert("a".to_string(), 1.0 / 3.0);
        entries.insert("b".to_string(), 123_456.789_012_345);
        entries.insert("c".to_string(), f64::MIN_POSITIVE);
        let parsed = parse(&render(&entries));
        assert_eq!(entries.len(), parsed.len());
        for (k, v) in &entries {
            assert_eq!(v.to_bits(), parsed[k].to_bits(), "{k}");
        }
    }

    #[test]
    fn comments_and_garbage_lines_are_skipped() {
        let map = parse("# header\n\nnot-a-pair\nx\tzz\nok\t3ff0000000000000\n");
        assert_eq!(map.len(), 1);
        assert_eq!(map["ok"], 1.0);
    }

    #[test]
    fn keys_are_distinct_per_parameter() {
        use perfcloud_frameworks::Benchmark;
        let a = solo_jct_key(Benchmark::Terasort, 10, 42);
        let b = solo_jct_key(Benchmark::Terasort, 20, 42);
        let c = solo_jct_key(Benchmark::Wordcount, 10, 42);
        assert_ne!(a, b);
        assert_ne!(a, c);
        let (iops, bps) = fio_keys(42);
        assert_ne!(iops, bps);
        assert_ne!(stream_key(42), stream_key(43));
    }
}
