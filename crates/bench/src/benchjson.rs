//! Machine-readable benchmark records.
//!
//! `run_all` (and anything else that measures a run) writes one
//! `BENCH_<name>.json` file per measurement so CI and scripts can track
//! wall time and engine throughput without scraping human-readable logs.
//! Files land in `$BENCH_JSON_DIR` when set, else the current directory.

use std::path::PathBuf;

/// One benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Identifier; becomes the `BENCH_<name>.json` file name.
    pub name: String,
    /// Wall-clock duration of the measured run, in seconds.
    pub wall_seconds: f64,
    /// Simulation events fired during the run, when the measurement drove
    /// a [`perfcloud_sim::Simulation`] directly.
    pub events_fired: Option<u64>,
    /// Additional named measurements appended verbatim as JSON number
    /// fields (e.g. the wheel-vs-heap comparison points of the engine
    /// micro-bench). Keys must be unique and distinct from the fixed
    /// fields.
    pub extras: Vec<(String, f64)>,
}

impl BenchRecord {
    /// Creates a wall-time-only record.
    pub fn wall(name: impl Into<String>, wall_seconds: f64) -> Self {
        BenchRecord { name: name.into(), wall_seconds, events_fired: None, extras: Vec::new() }
    }

    /// Events per wall-clock second, when events were counted.
    pub fn events_per_sec(&self) -> Option<f64> {
        let fired = self.events_fired?;
        if self.wall_seconds > 0.0 {
            Some(fired as f64 / self.wall_seconds)
        } else {
            None
        }
    }

    /// The record as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"name\":{},\"wall_seconds\":{}",
            json_string(&self.name),
            json_number(self.wall_seconds)
        );
        if let Some(fired) = self.events_fired {
            s.push_str(&format!(",\"events_fired\":{fired}"));
        }
        if let Some(eps) = self.events_per_sec() {
            s.push_str(&format!(",\"events_per_sec\":{}", json_number(eps)));
        }
        for (key, value) in &self.extras {
            s.push_str(&format!(",{}:{}", json_string(key), json_number(*value)));
        }
        s.push('}');
        s
    }

    /// Reads one numeric field out of a previously written record, e.g.
    /// the committed `BENCH_engine.json` baseline's `events_per_sec`.
    /// Minimal by design (the writer above emits flat objects with no
    /// nested structure): returns `None` when the file or field is absent.
    pub fn read_field(path: impl AsRef<std::path::Path>, field: &str) -> Option<f64> {
        let text = std::fs::read_to_string(path).ok()?;
        let needle = format!("{}:", json_string(field));
        let at = text.find(&needle)? + needle.len();
        let rest = &text[at..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest[..end].trim().parse().ok()
    }

    /// The output path: `$BENCH_JSON_DIR/BENCH_<name>.json` (or the current
    /// directory without the variable).
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var_os("BENCH_JSON_DIR").map(PathBuf::from).unwrap_or_default();
        dir.join(format!("BENCH_{}.json", self.name))
    }

    /// Writes the record, returning where it landed.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        std::fs::write(&path, format!("{}\n", self.to_json()))?;
        Ok(path)
    }
}

/// Escapes a string for JSON (the names we use are tame, but be correct).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as valid JSON (no NaN/inf; those become null).
fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_only_record() {
        let r = BenchRecord::wall("fig3", 1.5);
        assert_eq!(r.to_json(), "{\"name\":\"fig3\",\"wall_seconds\":1.5}");
        assert_eq!(r.events_per_sec(), None);
    }

    #[test]
    fn throughput_record() {
        let r = BenchRecord {
            name: "engine".into(),
            wall_seconds: 2.0,
            events_fired: Some(1_000_000),
            extras: Vec::new(),
        };
        assert_eq!(r.events_per_sec(), Some(500_000.0));
        let j = r.to_json();
        assert!(j.contains("\"events_fired\":1000000"), "{j}");
        assert!(j.contains("\"events_per_sec\":500000"), "{j}");
    }

    #[test]
    fn extras_append_as_number_fields() {
        let mut r = BenchRecord::wall("engine", 1.0);
        r.extras.push(("wheel_eps_10k".into(), 2.5e6));
        let j = r.to_json();
        assert!(j.ends_with(",\"wheel_eps_10k\":2500000}"), "{j}");
    }

    #[test]
    fn read_field_round_trips() {
        let r = BenchRecord {
            name: "readback".into(),
            wall_seconds: 0.5,
            events_fired: Some(100),
            extras: vec![("speedup_1m".into(), 3.25)],
        };
        let path = std::env::temp_dir().join("perfcloud_benchjson_readback.json");
        std::fs::write(&path, format!("{}\n", r.to_json())).unwrap();
        assert_eq!(BenchRecord::read_field(&path, "events_per_sec"), Some(200.0));
        assert_eq!(BenchRecord::read_field(&path, "speedup_1m"), Some(3.25));
        assert_eq!(BenchRecord::read_field(&path, "missing"), None);
        assert_eq!(BenchRecord::read_field("/no/such/file.json", "events_per_sec"), None);
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn non_finite_wall_is_null() {
        let r = BenchRecord::wall("x", f64::NAN);
        assert!(r.to_json().contains("\"wall_seconds\":null"));
    }

    #[test]
    fn path_respects_env_dir() {
        let r = BenchRecord::wall("probe", 1.0);
        assert!(r.path().to_string_lossy().ends_with("BENCH_probe.json"));
    }
}
