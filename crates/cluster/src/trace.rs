//! Canonical decision traces.
//!
//! A [`DecisionTrace`] records, per node-manager step, everything the agent
//! observed and did: the deviation signal, contention flags, identified
//! antagonists, applied caps, and fault flags. The encoding is one line per
//! step in a fixed field order, with `f64` values printed via Rust's `{}`
//! Display — the shortest string that round-trips to the same bits — so two
//! traces are byte-identical exactly when the decision sequences are
//! bit-identical. The golden-trace suite diffs these against checked-in
//! references and prints the first diverging decision.

use perfcloud_core::StepReport;
use perfcloud_sim::rng::fnv1a64;
use perfcloud_sim::SimTime;
use std::fmt::Write;

/// An append-only, canonically encoded record of node-manager decisions.
#[derive(Debug, Default, Clone)]
pub struct DecisionTrace {
    lines: Vec<String>,
}

impl DecisionTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one node-manager step. `server` is the server index the
    /// report came from.
    pub fn record(&mut self, now: SimTime, server: usize, report: &StepReport) {
        let mut line = String::with_capacity(96);
        let _ = write!(line, "t={} s={}", now.as_secs_f64(), server);

        match &report.signal {
            Some(sig) => {
                let _ = write!(
                    line,
                    " dio={} dcpi={} io={} cpu={}",
                    opt(sig.io_deviation),
                    opt(sig.cpi_deviation),
                    u8::from(sig.io_contended),
                    u8::from(sig.cpu_contended),
                );
            }
            None => line.push_str(" dio=- dcpi=- io=- cpu=-"),
        }

        let _ = write!(
            line,
            " aio={} acpu={}",
            vm_list(&report.io_antagonists),
            vm_list(&report.cpu_antagonists)
        );
        let _ =
            write!(line, " cio={} ccpu={}", cap_list(&report.io_caps), cap_list(&report.cpu_caps));

        let mut flags = String::new();
        if report.stalled {
            flags.push('S');
        }
        if report.restarted {
            flags.push('R');
        }
        if report.placement_stale {
            flags.push('P');
        }
        if flags.is_empty() {
            flags.push('-');
        }
        let _ = write!(line, " f={flags}");
        self.lines.push(line);
    }

    /// Appends one control-plane event (election, publish summary, epoch
    /// reject, replica outage) at the simulated time it happened.
    pub fn record_ctrl(&mut self, at: SimTime, text: &str) {
        let mut line = String::with_capacity(24 + text.len());
        let _ = write!(line, "t={} ctrl {text}", at.as_secs_f64());
        self.lines.push(line);
    }

    /// The recorded lines, in order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Empties the trace, keeping line capacity. Shard scratch traces are
    /// cleared at each epoch barrier after merging.
    pub fn clear(&mut self) {
        self.lines.clear();
    }

    /// Moves this trace's lines onto the end of `target`, leaving this
    /// trace empty. Appending per-shard fragments in shard order is how the
    /// sharded sampling phase reassembles the global server-index order
    /// (shards are contiguous index ranges).
    pub fn drain_into(&mut self, target: &mut DecisionTrace) {
        target.lines.append(&mut self.lines);
    }

    /// The whole trace as one newline-terminated string.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// A stable 64-bit digest of the canonical encoding.
    pub fn digest(&self) -> u64 {
        fnv1a64(self.canonical().as_bytes())
    }
}

fn opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x}"),
        None => "-".into(),
    }
}

fn vm_list(vms: &[perfcloud_host::VmId]) -> String {
    if vms.is_empty() {
        return "-".into();
    }
    let mut out = String::new();
    for (i, vm) in vms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", vm.0);
    }
    out
}

fn cap_list(caps: &[(perfcloud_host::VmId, f64)]) -> String {
    if caps.is_empty() {
        return "-".into();
    }
    let mut out = String::new();
    for (i, (vm, cap)) in caps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", vm.0, cap);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfcloud_core::ContentionSignal;
    use perfcloud_host::VmId;

    fn idle_report() -> StepReport {
        StepReport {
            signal: None,
            io_antagonists: Vec::new(),
            cpu_antagonists: Vec::new(),
            io_caps: Vec::new(),
            cpu_caps: Vec::new(),
            stalled: false,
            restarted: false,
            placement_stale: false,
        }
    }

    #[test]
    fn canonical_line_shape() {
        let mut trace = DecisionTrace::new();
        trace.record(SimTime::from_secs(5), 0, &idle_report());
        let mut busy = idle_report();
        busy.signal = Some(ContentionSignal {
            io_deviation: Some(12.5),
            cpi_deviation: None,
            io_contended: true,
            cpu_contended: false,
        });
        busy.io_antagonists = vec![VmId(10)];
        busy.io_caps = vec![(VmId(10), 0.2)];
        busy.restarted = true;
        trace.record(SimTime::from_secs(10), 3, &busy);
        assert_eq!(
            trace.lines()[0],
            "t=5 s=0 dio=- dcpi=- io=- cpu=- aio=- acpu=- cio=- ccpu=- f=-"
        );
        assert_eq!(
            trace.lines()[1],
            "t=10 s=3 dio=12.5 dcpi=- io=1 cpu=0 aio=10 acpu=- cio=10:0.2 ccpu=- f=R"
        );
        assert_eq!(trace.canonical().lines().count(), 2);
        assert!(trace.canonical().ends_with('\n'));
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let mut a = DecisionTrace::new();
        let mut b = DecisionTrace::new();
        a.record(SimTime::from_secs(5), 0, &idle_report());
        b.record(SimTime::from_secs(5), 0, &idle_report());
        assert_eq!(a.digest(), b.digest());
        b.record(SimTime::from_secs(10), 0, &idle_report());
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn float_encoding_round_trips() {
        // Display for f64 is shortest-roundtrip: parsing the encoded value
        // back must recover the exact bits.
        let vals = [0.1 + 0.2, 1.0 / 3.0, 12.5, f64::MIN_POSITIVE];
        for v in vals {
            let s = opt(Some(v));
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), v.to_bits());
        }
    }
}
