//! The experiment driver.
//!
//! One [`Experiment`] is a single run: a cluster topology, a mitigation
//! strategy, a set of antagonist placements, and a schedule of job
//! submissions. The driver advances the world in fixed ticks — servers
//! arbitrate resources, the framework scheduler launches/reaps task
//! attempts — and fires every server's node manager at the PerfCloud
//! sampling interval. With a non-PerfCloud mitigation the node managers run
//! in *monitoring-only* mode (detection thresholds at infinity), so
//! deviation time series are recorded identically across strategies — how
//! the paper's Fig. 9 compares the default system against PerfCloud.

use crate::antagonists::{AntagonistKind, AntagonistPlacement};
use crate::placement::PlacementRuntime;
use crate::shard::{for_each_shard, ShardEffect, ShardScratch};
use crate::topology::{ClusterSpec, Testbed};
use crate::trace::DecisionTrace;
use perfcloud_baselines::{Dolly, LatePolicy, StaticCapping};
use perfcloud_core::{
    CloudManager, IngestStats, NodeFaults, NodeManager, PerfCloudConfig, PipelineSpec, StepReport,
};
use perfcloud_ctrl::{ControlPlane, ControlPlaneSpec};
use perfcloud_frameworks::scheduler::{FrameworkScheduler, NoSpeculation, SpeculationPolicy};
use perfcloud_frameworks::{JobOutcome, JobSpec};
use perfcloud_host::{FinishedProcess, PhysicalServer, ServerId, VmId};
use perfcloud_obs::{ExportSource, MetricsRegistry};
use perfcloud_place::PlacementConfig;
use perfcloud_sim::shard::{partition, shards_from_env, split_mut};
use perfcloud_sim::{FaultScenario, SimDuration, SimTime};
use perfcloud_telemetry::{
    RecordingFormat, ReplaySource, Sample, TelemetryRecording, TelemetryWriter,
};
use std::ops::Range;
use std::sync::Arc;

/// Minimum servers per shard before the dispatch loop spawns worker
/// threads. Below this, per-tick thread spawn/join overhead (~10µs per
/// worker) dwarfs the shard's work, so small clusters — including every
/// golden scenario — run shards inline in shard order, which is
/// byte-identical by construction.
const SHARD_THREAD_MIN_SERVERS: usize = 64;

/// The mitigation strategy of one run.
pub enum Mitigation {
    /// No mitigation at all.
    Default,
    /// LATE speculative execution.
    Late(LatePolicy),
    /// Dolly job cloning.
    Dolly(Dolly),
    /// Fixed caps applied at experiment start.
    StaticCap(StaticCapping),
    /// PerfCloud dynamic resource control.
    PerfCloud(PerfCloudConfig),
    /// The paper's future-work hybrid (§IV-D.2): PerfCloud resource control
    /// plus LATE speculative execution, so application-level speculation
    /// covers what host-level throttling cannot (e.g. slow servers in a
    /// heterogeneous cluster).
    PerfCloudWithLate(PerfCloudConfig, LatePolicy),
    /// Migration-only mitigation (§VI's "complementary solutions such as
    /// VM migration"): the PerfCloud pipeline detects and identifies as
    /// usual but never throttles; instead an interference-aware placement
    /// policy live-migrates identified antagonists away.
    MigrateOnly(PlacementConfig),
    /// Throttle *and* migrate: full PerfCloud resource control plus the
    /// placement runtime — caps contain the antagonist while its penalty
    /// accrues, then migration removes the colocation entirely.
    Hybrid(PerfCloudConfig, PlacementConfig),
}

impl Mitigation {
    /// Display name for result tables.
    pub fn name(&self) -> String {
        match self {
            Mitigation::Default => "default".into(),
            Mitigation::Late(_) => "late".into(),
            Mitigation::Dolly(d) => format!("dolly-{}", d.clones),
            Mitigation::StaticCap(_) => "static-cap".into(),
            Mitigation::PerfCloud(_) => "perfcloud".into(),
            Mitigation::PerfCloudWithLate(_, _) => "perfcloud+late".into(),
            Mitigation::MigrateOnly(_) => "migrate-only".into(),
            Mitigation::Hybrid(_, _) => "hybrid".into(),
        }
    }
}

/// Telemetry source and recording configuration of one run.
///
/// The default is the pure simulated path: every node manager reads its
/// server's hypervisor counters directly and nothing is recorded — the
/// pre-telemetry behavior, byte for byte.
#[derive(Clone, Default)]
pub struct TelemetrySpec {
    /// When set, tee every raw (pre-fault) collected sample into a
    /// recording in this encoding, retrievable via
    /// [`Experiment::take_recording`].
    pub tee: Option<RecordingFormat>,
    /// When set, node managers ingest from this recording (each server
    /// replays its own sample stream) instead of reading the simulated
    /// hypervisor.
    pub replay: Option<Arc<TelemetryRecording>>,
}

/// Configuration of one experiment run.
pub struct ExperimentConfig {
    /// Cluster topology.
    pub cluster: ClusterSpec,
    /// Mitigation strategy.
    pub mitigation: Mitigation,
    /// Antagonists to place.
    pub antagonists: Vec<AntagonistPlacement>,
    /// Jobs with their submission times.
    pub jobs: Vec<(SimTime, JobSpec)>,
    /// Hard wall on simulated time.
    pub max_sim_time: SimTime,
    /// Fault-injection scenario applied to every node manager; the per-run
    /// chaos seed is derived from the testbed's master seed, so a run is
    /// replayable from `(cluster seed, scenario)` alone.
    pub faults: Option<FaultScenario>,
    /// Control-plane deployment: replica count, link model, election timing.
    /// The default is a single manager on a zero-latency loopback, which
    /// reproduces the direct-fetch behavior byte-for-byte.
    pub control: ControlPlaneSpec,
    /// Detection/identification pipeline run by the node managers when the
    /// mitigation is PerfCloud; non-PerfCloud mitigations always run the
    /// paper's monitoring-only pipeline. The default (paper/paper)
    /// reproduces the pre-seam behavior byte-for-byte.
    pub pipeline: PipelineSpec,
    /// Counter-source and recording configuration. The default (simulated
    /// source, no tee) reproduces the pre-telemetry behavior byte-for-byte.
    pub telemetry: TelemetrySpec,
}

impl ExperimentConfig {
    /// A minimal config over a cluster spec, extended with builder calls.
    pub fn new(cluster: ClusterSpec, mitigation: Mitigation) -> Self {
        ExperimentConfig {
            cluster,
            mitigation,
            antagonists: Vec::new(),
            jobs: Vec::new(),
            max_sim_time: SimTime::from_secs(3_600),
            faults: None,
            control: ControlPlaneSpec::default(),
            pipeline: PipelineSpec::default(),
            telemetry: TelemetrySpec::default(),
        }
    }
}

/// Final counters of one antagonist VM.
#[derive(Debug, Clone, PartialEq)]
pub struct AntagonistStats {
    /// The antagonist's VM.
    pub vm: VmId,
    /// Its workload.
    pub kind: AntagonistKind,
    /// Total I/O operations completed.
    pub io_ops: f64,
    /// Total I/O bytes moved.
    pub io_bytes: f64,
    /// Total instructions retired.
    pub instructions: f64,
    /// Total CPU time consumed, core-seconds.
    pub cpu_time: f64,
}

/// Results of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Mitigation name.
    pub mitigation: String,
    /// Outcomes of all logical jobs, in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Simulated time the run took.
    pub duration: SimDuration,
    /// Final antagonist counters.
    pub antagonists: Vec<AntagonistStats>,
    /// Monitor ingest tallies summed across all node managers — how many
    /// samples were baselined, recorded, or rejected (stale / duplicate /
    /// counter-regression) over the run.
    pub ingest: IngestStats,
}

impl ExperimentResult {
    /// JCT of the single job of a one-job experiment.
    pub fn sole_jct(&self) -> f64 {
        assert_eq!(self.outcomes.len(), 1, "experiment has {} outcomes", self.outcomes.len());
        self.outcomes[0].jct
    }
}

/// A fully built, runnable experiment.
pub struct Experiment {
    /// The physical servers.
    pub servers: Vec<PhysicalServer>,
    /// The cloud registry.
    pub cloud: CloudManager,
    /// The framework scheduler.
    pub scheduler: FrameworkScheduler,
    /// One node manager per server (monitoring-only for non-PerfCloud).
    pub node_managers: Vec<NodeManager>,
    /// The message-passing control plane carrying placement sync,
    /// heartbeats, and elections between managers and servers.
    pub plane: ControlPlane,
    policy: Box<dyn SpeculationPolicy>,
    dolly: Option<Dolly>,
    mitigation_name: String,
    antagonist_vms: Vec<(VmId, AntagonistPlacement)>,
    antagonist_seeds: Vec<u64>,
    pending_antagonists: Vec<usize>,
    pending_jobs: Vec<(SimTime, JobSpec)>,
    submitted_jobs: usize,
    tick: SimDuration,
    sample_interval: SimDuration,
    next_sample: SimTime,
    now: SimTime,
    max_sim_time: SimTime,
    /// Ticks executed so far — the prefix length a fork inherits for free.
    ticks_stepped: u64,
    /// Chaos seed derived from the testbed's master seed at build time;
    /// kept so [`Self::set_mitigation`] can rebuild node managers with
    /// byte-identical fault streams.
    chaos_seed: u64,
    /// The fault scenario attached to node managers at build, if any.
    fault_scenario: Option<FaultScenario>,
    /// The pipeline spec from the build config (only in effect under a
    /// PerfCloud mitigation).
    pipeline: PipelineSpec,
    /// Flight-recorder capacity if observability is on; re-attached to
    /// rebuilt node managers by [`Self::set_mitigation`].
    flight_capacity: Option<usize>,
    trace: Option<DecisionTrace>,
    /// Reused step-report buffer: one per experiment, refilled by every
    /// node-manager step instead of allocating a report per (server,
    /// interval).
    report_buf: StepReport,
    /// In-run shard count `S` (`PERFCLOUD_SHARDS`, default 1).
    shards: usize,
    /// Contiguous server-index range of each shard.
    shard_ranges: Vec<Range<usize>>,
    /// Per-shard scratch buffers, reused every phase.
    shard_scratch: Vec<ShardScratch>,
    /// Thread-dispatch override for the shard phases: `None` auto-sizes on
    /// servers-per-shard, `Some(v)` forces threads on/off (tests).
    shard_threads: Option<bool>,
    /// Stall flags snapshotted from the control plane at the epoch barrier
    /// before the sampling phase fans out.
    stall_snapshot: Vec<bool>,
    /// Merged `(server, finished process)` pairs from the tick phase.
    finished_buf: Vec<(usize, FinishedProcess)>,
    /// The placement runtime, when the mitigation migrates. Runs entirely
    /// on the coordinator: verdict ingestion and proposals at sampling
    /// instants, phase transitions between ticks.
    placement: Option<PlacementRuntime>,
    /// The telemetry spec from the build config; re-applied to rebuilt
    /// node managers by [`Self::set_mitigation`].
    telemetry: TelemetrySpec,
    /// Recording writer when teeing is configured; fed in server order at
    /// every sampling barrier.
    tee_writer: Option<TelemetryWriter>,
    /// Reused drain scratch for the tee barrier.
    tee_buf: Vec<Sample>,
    /// Sampling barriers at which the tee drained node managers.
    tee_flushes: u64,
}

impl Experiment {
    /// Builds an experiment from its configuration.
    pub fn build(config: ExperimentConfig) -> Self {
        let mut tb = Testbed::build(&config.cluster);
        let mitigation_name = config.mitigation.name();

        // Place antagonist VMs up front; their workloads start later.
        let mut antagonist_vms = Vec::new();
        let mut antagonist_seeds = Vec::new();
        for (i, p) in config.antagonists.iter().enumerate() {
            let vm = tb.add_low_priority_vm(p.server_idx);
            antagonist_vms.push((vm, *p));
            let idx = p.seed_group.unwrap_or(i as u64 + 1_000);
            antagonist_seeds.push(tb.rng.child_indexed("antagonist", idx).master_seed());
        }
        let pending_antagonists: Vec<usize> = (0..antagonist_vms.len()).collect();

        let MitigationParts { policy, dolly, pc_config, pipeline, placement, actuation } =
            resolve_mitigation(config.mitigation, config.pipeline, &mut tb.servers);

        let mut node_managers: Vec<NodeManager> = (0..tb.servers.len())
            .map(|_| {
                let mut nm = NodeManager::with_pipeline(pc_config.clone(), pipeline);
                nm.set_actuation(actuation);
                nm
            })
            .collect();
        let chaos_seed = tb.rng.child("chaos").master_seed();
        let scenario = config.faults.clone().unwrap_or_default();
        if let Some(scenario) = &config.faults {
            for (i, nm) in node_managers.iter_mut().enumerate() {
                nm.attach_faults(NodeFaults::new(chaos_seed, scenario.clone(), i as u32));
            }
        }
        apply_telemetry(&config.telemetry, &mut node_managers);
        let tee_writer = config.telemetry.tee.map(|fmt| {
            let source = node_managers.first().map_or("sim", |nm| nm.source_name());
            TelemetryWriter::new(fmt, source)
        });
        let server_ids: Vec<ServerId> = (0..tb.servers.len()).map(|i| ServerId(i as u32)).collect();
        let plane = ControlPlane::new(
            config.control,
            chaos_seed,
            scenario,
            server_ids,
            pc_config.sample_interval,
        );

        let mut jobs = config.jobs;
        jobs.sort_by_key(|(t, _)| *t);
        jobs.reverse(); // pop from the back = earliest first

        let scheduler = FrameworkScheduler::new(tb.workers.clone());
        let sample_interval = pc_config.sample_interval;
        let shards = shards_from_env(1);
        let shard_ranges = partition(tb.servers.len(), shards);
        let shard_scratch = (0..shards).map(|_| ShardScratch::default()).collect();
        Experiment {
            servers: tb.servers,
            cloud: tb.cloud,
            scheduler,
            node_managers,
            plane,
            policy,
            dolly,
            mitigation_name,
            antagonist_vms,
            antagonist_seeds,
            pending_antagonists,
            pending_jobs: jobs,
            submitted_jobs: 0,
            tick: tb.tick,
            sample_interval,
            next_sample: SimTime::ZERO + sample_interval,
            now: SimTime::ZERO,
            max_sim_time: config.max_sim_time,
            ticks_stepped: 0,
            chaos_seed,
            fault_scenario: config.faults,
            pipeline: config.pipeline,
            flight_capacity: None,
            trace: None,
            report_buf: StepReport::default(),
            shards,
            shard_ranges,
            shard_scratch,
            shard_threads: None,
            stall_snapshot: Vec::new(),
            finished_buf: Vec::new(),
            placement: placement.as_ref().map(PlacementRuntime::new),
            telemetry: config.telemetry,
            tee_writer,
            tee_buf: Vec::new(),
            tee_flushes: 0,
        }
    }

    /// Repartitions the cluster into `shards` in-run shards. Any count
    /// produces byte-identical traces and results; more shards than
    /// servers leaves the excess shards empty.
    pub fn set_shards(&mut self, shards: usize) {
        let shards = shards.max(1);
        self.shards = shards;
        self.shard_ranges = partition(self.servers.len(), shards);
        self.shard_scratch = (0..shards).map(|_| ShardScratch::default()).collect();
    }

    /// The in-run shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Forces shard worker threads on or off (`None` restores the
    /// auto-sizing default). Threading is a latency decision only; outputs
    /// are identical either way.
    pub fn set_shard_threads(&mut self, force: Option<bool>) {
        self.shard_threads = force;
    }

    fn use_threads(&self) -> bool {
        self.shard_threads.unwrap_or_else(|| {
            self.shards > 1 && self.servers.len() / self.shards >= SHARD_THREAD_MIN_SERVERS
        })
    }

    /// Starts recording a canonical decision trace of every node-manager
    /// step from this point on.
    pub fn enable_decision_trace(&mut self) {
        self.trace = Some(DecisionTrace::new());
    }

    /// Attaches flight recorders everywhere: one per node manager, one on
    /// the control plane, one on its network — each retaining the last
    /// `capacity` events. Recording is pure observation; enabling it
    /// changes no decision, trace, or result byte.
    pub fn enable_observability(&mut self, capacity: usize) {
        self.flight_capacity = Some(capacity);
        for nm in &mut self.node_managers {
            nm.attach_flight(capacity);
        }
        self.plane.attach_flight(capacity);
    }

    /// Snapshots every attached flight recorder into export sources with
    /// stable ranks: server `i` → rank `i`, the control plane → rank `n`,
    /// its network → rank `n + 1`. Empty when observability is off.
    pub fn flight_sources(&self) -> Vec<ExportSource> {
        let mut out = Vec::new();
        for (i, nm) in self.node_managers.iter().enumerate() {
            if let Some(fl) = nm.flight() {
                out.push(ExportSource::from_recorder(i as u32, &format!("server{i}"), fl));
            }
        }
        let n = self.node_managers.len() as u32;
        if let Some(fl) = self.plane.flight() {
            out.push(ExportSource::from_recorder(n, "ctrl", fl));
        }
        if let Some(fl) = self.plane.net_flight() {
            out.push(ExportSource::from_recorder(n + 1, "net", fl));
        }
        out
    }

    /// Chrome-trace-event JSON of every attached recorder (Perfetto-loadable).
    pub fn chrome_trace(&self) -> String {
        perfcloud_obs::chrome_trace(&self.flight_sources())
    }

    /// JSONL trace of every attached recorder.
    pub fn jsonl_trace(&self) -> String {
        perfcloud_obs::jsonl(&self.flight_sources())
    }

    /// Decoded text of the newest `n` flight events across all recorders,
    /// merged in deterministic order — the golden-failure dump.
    pub fn flight_dump(&self, n: usize) -> String {
        perfcloud_obs::merged_dump(&self.flight_sources(), n)
    }

    /// Monitor ingest tallies summed across all node managers.
    pub fn ingest_stats(&self) -> IngestStats {
        let mut total = IngestStats::default();
        for nm in &self.node_managers {
            total.merge(&nm.monitor().ingest_stats());
        }
        total
    }

    /// The run's observability counters assembled into a
    /// [`MetricsRegistry`]: monitor ingest outcomes, control-plane network
    /// delivery counters, telemetry tee tallies, and shard gauges. Every
    /// export path — the flat snapshot, the Prometheus text exposition —
    /// reads this one registry, so no counter can appear in one and not
    /// the other.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::with_capacity(18 + 2 * self.shards);
        let ingest = self.ingest_stats();
        let pairs = [
            ("ingest_baselines", ingest.baselines),
            ("ingest_recorded", ingest.recorded),
            ("ingest_stale", ingest.stale),
            ("ingest_duplicates", ingest.duplicates),
            ("ingest_regressions", ingest.regressions),
            ("ingest_rejected", ingest.rejected()),
        ];
        for (name, value) in pairs {
            let id = reg.counter(name);
            reg.inc(id, value);
        }
        let net = self.plane.net_stats();
        for (name, value) in [
            ("net_sent", net.sent),
            ("net_delivered", net.delivered),
            ("net_dropped", net.dropped),
            ("net_duplicated", net.duplicated),
        ] {
            let id = reg.counter(name);
            reg.inc(id, value);
        }
        let teed = self.tee_writer.as_ref().map_or(0, |w| w.len() as u64);
        for (name, value) in
            [("telemetry_teed_samples", teed), ("telemetry_flush_batches", self.tee_flushes)]
        {
            let id = reg.counter(name);
            reg.inc(id, value);
        }
        let id = reg.gauge("shards");
        reg.set(id, self.shards as i64);
        for (s, scratch) in self.shard_scratch.iter().enumerate() {
            let id = reg.gauge(&format!("shard{s}_queue_peak_depth"));
            reg.set(id, scratch.queue_peak_depth as i64);
            let id = reg.gauge(&format!("shard{s}_barrier_wait_us"));
            reg.set(id, scratch.barrier_wait_us as i64);
        }
        reg
    }

    /// Current observability counters as the flat `(name, value)` pairs the
    /// `BENCH_*.json` records use. A snapshot of [`Self::metrics_registry`].
    pub fn metrics_snapshot(&self) -> Vec<(String, f64)> {
        self.metrics_registry().snapshot()
    }

    /// Prometheus text exposition of [`Self::metrics_registry`].
    pub fn prometheus_metrics(&self) -> String {
        perfcloud_obs::prometheus_text(&self.metrics_registry())
    }

    /// The decision trace, if [`Self::enable_decision_trace`] was called.
    pub fn decision_trace(&self) -> Option<&DecisionTrace> {
        self.trace.as_ref()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The antagonist VMs with their placements, in placement order.
    pub fn antagonist_vms(&self) -> &[(VmId, AntagonistPlacement)] {
        &self.antagonist_vms
    }

    /// The placement runtime, when the mitigation migrates.
    pub fn placement(&self) -> Option<&PlacementRuntime> {
        self.placement.as_ref()
    }

    /// Ticks executed so far. A fork inherits the parent's prefix, so a
    /// sweep that forks `n` points off one parent at this tick count saves
    /// `(n - 1) × ticks_stepped` ticks over `n` fresh runs.
    pub fn ticks_stepped(&self) -> u64 {
        self.ticks_stepped
    }

    /// Snapshots the entire experiment into an independent copy.
    ///
    /// The fork duplicates every byte of mutable state — server and VM
    /// contents (running processes, AR(1) luck states, RNG stream
    /// positions), the cloud registry, the framework scheduler, every node
    /// manager (monitor windows, CUBIC controllers, pipeline state), the
    /// control plane with its in-flight network messages, the decision
    /// trace, and any attached flight recorders — so continuing the fork
    /// is byte-identical to continuing the parent, and neither observes
    /// the other. Per-shard scratch buffers are rebuilt empty: they are
    /// drained at every epoch barrier and only accumulate latency metrics,
    /// never simulation state.
    ///
    /// Combined with the divergence APIs ([`Self::start_antagonist`],
    /// [`Self::push_job`], [`Self::apply_static_caps`],
    /// [`Self::set_mitigation`]), a run forked at time `t` and diverged
    /// produces the same result, decision trace, and flight export as a
    /// fresh run built with the diverged configuration.
    pub fn fork(&self) -> Self {
        Experiment {
            servers: self.servers.clone(),
            cloud: self.cloud.clone(),
            scheduler: self.scheduler.clone(),
            node_managers: self.node_managers.clone(),
            plane: self.plane.clone(),
            policy: self.policy.clone(),
            dolly: self.dolly,
            mitigation_name: self.mitigation_name.clone(),
            antagonist_vms: self.antagonist_vms.clone(),
            antagonist_seeds: self.antagonist_seeds.clone(),
            pending_antagonists: self.pending_antagonists.clone(),
            pending_jobs: self.pending_jobs.clone(),
            submitted_jobs: self.submitted_jobs,
            tick: self.tick,
            sample_interval: self.sample_interval,
            next_sample: self.next_sample,
            now: self.now,
            max_sim_time: self.max_sim_time,
            ticks_stepped: self.ticks_stepped,
            chaos_seed: self.chaos_seed,
            fault_scenario: self.fault_scenario.clone(),
            pipeline: self.pipeline,
            flight_capacity: self.flight_capacity,
            trace: self.trace.clone(),
            report_buf: self.report_buf.clone(),
            shards: self.shards,
            shard_ranges: self.shard_ranges.clone(),
            shard_scratch: (0..self.shards).map(|_| ShardScratch::default()).collect(),
            shard_threads: self.shard_threads,
            stall_snapshot: Vec::new(),
            finished_buf: Vec::new(),
            placement: self.placement.clone(),
            telemetry: self.telemetry.clone(),
            tee_writer: self.tee_writer.clone(),
            tee_buf: Vec::new(),
            tee_flushes: self.tee_flushes,
        }
    }

    /// Diverges a fork: schedules the `index`-th placed antagonist to
    /// start at `at`. The parent typically places it with a start beyond
    /// the horizon (an idle, booted VM is inert: it draws from its own
    /// luck RNG streams only when it runs processes), so the fork decides
    /// the onset. Exactness requires `at` to lie strictly ahead of the
    /// last executed tick (or no tick to have run yet) — otherwise a
    /// fresh run of the diverged config would already have spawned it.
    pub fn start_antagonist(&mut self, index: usize, at: SimTime) {
        assert!(
            at > self.now || self.ticks_stepped == 0,
            "antagonist start {at:?} is not ahead of the fork point {:?}",
            self.now
        );
        assert!(self.pending_antagonists.contains(&index), "antagonist {index} already started");
        self.antagonist_vms[index].1.start = at;
    }

    /// Diverges a fork: submits an additional job at time `at` (strictly
    /// ahead of the last executed tick, or before the first). Equivalent
    /// to having appended `(at, spec)` to the build config's job list.
    pub fn push_job(&mut self, at: SimTime, spec: JobSpec) {
        assert!(
            at > self.now || self.ticks_stepped == 0,
            "job submission {at:?} is not ahead of the fork point {:?}",
            self.now
        );
        // `pending_jobs` is sorted descending (pop-from-back = earliest).
        // Insert before existing equal-time entries so they pop first —
        // the order a stable ascending sort gives an appended config entry.
        let idx = self.pending_jobs.partition_point(|(t, _)| *t > at);
        self.pending_jobs.insert(idx, (at, spec));
    }

    /// Diverges a fork: applies fixed caps to every server, as
    /// [`Mitigation::StaticCap`] does at build time. Forking an uncapped
    /// parent before its first tick and applying caps is byte-identical
    /// to building with the static-cap mitigation.
    pub fn apply_static_caps(&mut self, caps: &StaticCapping) {
        for server in &mut self.servers {
            caps.apply(server);
        }
        self.mitigation_name = "static-cap".into();
    }

    /// Diverges a fork: swaps the mitigation strategy, rebuilding the
    /// speculation policy, Dolly cloning, and every node manager.
    ///
    /// Exact only **before the first sampling instant**: until then no
    /// placement view has been published and no sample ingested, so the
    /// node managers (and the detector/identifier/controller state inside
    /// them) are still in their just-built state — rebuilding them is a
    /// no-op observationally. All mitigation pipelines share the sampling
    /// cadence, so the control plane (built once from the chaos seed) is
    /// already exact. This is what lets one neutral parent cover a whole
    /// mitigation comparison: run the shared prefix once, fork per
    /// system, swap, continue.
    pub fn set_mitigation(&mut self, mitigation: Mitigation) {
        assert!(
            self.now < SimTime::ZERO + self.sample_interval,
            "set_mitigation at {:?} is past the first sampling instant",
            self.now
        );
        self.mitigation_name = mitigation.name();
        let MitigationParts { policy, dolly, pc_config, pipeline, placement, actuation } =
            resolve_mitigation(mitigation, self.pipeline, &mut self.servers);
        assert_eq!(
            pc_config.sample_interval, self.sample_interval,
            "set_mitigation cannot change the sampling cadence"
        );
        self.policy = policy;
        self.dolly = dolly;
        self.placement = placement.as_ref().map(PlacementRuntime::new);
        self.node_managers = (0..self.servers.len())
            .map(|_| {
                let mut nm = NodeManager::with_pipeline(pc_config.clone(), pipeline);
                nm.set_actuation(actuation);
                nm
            })
            .collect();
        if let Some(scenario) = &self.fault_scenario {
            for (i, nm) in self.node_managers.iter_mut().enumerate() {
                nm.attach_faults(NodeFaults::new(self.chaos_seed, scenario.clone(), i as u32));
            }
        }
        if let Some(capacity) = self.flight_capacity {
            for nm in &mut self.node_managers {
                nm.attach_flight(capacity);
            }
        }
        apply_telemetry(&self.telemetry, &mut self.node_managers);
    }

    /// Advances one tick.
    pub fn step_tick(&mut self) {
        self.now += self.tick;
        self.ticks_stepped += 1;
        let now = self.now;

        // Start due antagonists. The hosting server comes from the live
        // registry, not the placement-time index — a late-starting VM may
        // have been migrated before its workload begins.
        let antagonist_vms = &self.antagonist_vms;
        let seeds = &self.antagonist_seeds;
        let servers = &mut self.servers;
        let cloud = &self.cloud;
        self.pending_antagonists.retain(|&i| {
            let (vm, p) = antagonist_vms[i];
            if p.start <= now {
                let host = cloud.record(vm).expect("antagonist registered").server.0 as usize;
                servers[host].spawn(vm, p.kind.spawn(p.duration, seeds[i]));
                false
            } else {
                true
            }
        });

        // Live-migration phase transitions happen between ticks: a freeze
        // or a completed move applies to the tick crossing its deadline.
        if let Some(rt) = self.placement.as_mut() {
            rt.advance(now, &mut self.servers, &mut self.cloud, &mut self.plane);
        }

        // Submit due jobs.
        while let Some((t, _)) = self.pending_jobs.last() {
            if *t > now {
                break;
            }
            let (t, spec) = self.pending_jobs.pop().expect("peeked");
            match &self.dolly {
                Some(d) => {
                    d.submit(&mut self.scheduler, spec, t.max(now));
                }
                None => {
                    self.scheduler.submit(spec, t.max(now));
                }
            }
            self.submitted_jobs += 1;
        }

        // Advance the world: each shard ticks its own servers; the merged
        // finished list (shard order = server-index order) feeds the
        // framework scheduler, which stays on the coordinator.
        self.tick_servers();
        let finished = std::mem::take(&mut self.finished_buf);
        self.scheduler.on_tick(now, &mut self.servers, &finished, self.policy.as_mut());
        self.finished_buf = finished;

        // Control plane first: at the sampling cadence the live coordinator
        // publishes fresh placement views, and every tick delivers whatever
        // messages are due (on the default zero-latency loopback a publish
        // lands within the same instant, reproducing the old direct fetch).
        let sampling = now >= self.next_sample;
        if sampling {
            self.plane.begin_interval(now, &self.cloud);
        }
        self.plane.tick(now, &mut self.cloud, &mut self.node_managers);

        // Node managers at the sampling cadence.
        if sampling {
            self.sample_node_managers(now);
            self.next_sample += self.sample_interval;
            // Placement decisions ride the same cadence, on the coordinator
            // after the sampling barrier: identify verdicts are fresh and
            // the decision order is shard- and thread-independent.
            if let Some(rt) = self.placement.as_mut() {
                rt.on_sample(
                    now,
                    &self.node_managers,
                    &mut self.servers,
                    &self.cloud,
                    &mut self.plane,
                );
            }
        }

        if let Some(trace) = self.trace.as_mut() {
            for (at, text) in self.plane.drain_events() {
                trace.record_ctrl(at, &text);
            }
        } else {
            self.plane.drain_events();
        }
    }

    /// Ticks every server, collecting `(server, finished)` pairs into
    /// `finished_buf` in server-index order.
    fn tick_servers(&mut self) {
        self.finished_buf.clear();
        let tick = self.tick;
        if self.shards == 1 {
            for (i, server) in self.servers.iter_mut().enumerate() {
                let report = server.tick(tick);
                for f in report.finished {
                    self.finished_buf.push((i, f));
                }
            }
            return;
        }
        let threaded = self.use_threads();
        let starts: Vec<usize> = self.shard_ranges.iter().map(|r| r.start).collect();
        let slices = split_mut(&mut self.servers, &self.shard_ranges);
        let mut tasks: Vec<_> = slices.into_iter().zip(self.shard_scratch.iter_mut()).collect();
        let waits = for_each_shard(threaded, &mut tasks, |s, (servers, scratch)| {
            scratch.finished.clear();
            let base = starts[s];
            for (k, server) in servers.iter_mut().enumerate() {
                let report = server.tick(tick);
                for f in report.finished {
                    scratch.finished.push((base + k, f));
                }
            }
        });
        drop(tasks);
        // Epoch barrier: concatenate per-shard results in shard order
        // (= global index order; shards are contiguous).
        for (s, scratch) in self.shard_scratch.iter_mut().enumerate() {
            scratch.barrier_wait_us += waits[s];
            self.finished_buf.append(&mut scratch.finished);
        }
    }

    /// Runs every node manager's sampling step. With one shard this is the
    /// plain sequential loop; with more, each shard steps its servers
    /// against a stall snapshot frozen at the barrier, deferring every
    /// control-plane effect into its scratch, and the coordinator replays
    /// the deferred effects in shard order — the exact order (and thus the
    /// exact control-network RNG draws) of the sequential loop.
    fn sample_node_managers(&mut self, now: SimTime) {
        if self.shards == 1 {
            for (i, nm) in self.node_managers.iter_mut().enumerate() {
                let stalled = self.plane.stalled(i, now);
                nm.step_synced(now, &mut self.servers[i], stalled, &mut self.report_buf);
                if self.report_buf.restarted {
                    // The stalled process died with its freeze.
                    self.plane.clear_stall(i);
                }
                while let Some(apps) = nm.take_colocation_notice() {
                    self.plane.send_colocation(now, i, apps);
                }
                if let Some(trace) = self.trace.as_mut() {
                    trace.record(now, i, &self.report_buf);
                }
            }
            self.drain_tees();
            return;
        }
        // A stall window only changes through its own server's restart, so
        // the pre-barrier snapshot equals the sequential loop's live reads.
        self.plane.stall_snapshot_into(now, &mut self.stall_snapshot);
        let threaded = self.use_threads();
        let tracing = self.trace.is_some();
        let starts: Vec<usize> = self.shard_ranges.iter().map(|r| r.start).collect();
        let stall = &self.stall_snapshot;
        let server_slices = split_mut(&mut self.servers, &self.shard_ranges);
        let nm_slices = split_mut(&mut self.node_managers, &self.shard_ranges);
        let mut tasks: Vec<_> = server_slices
            .into_iter()
            .zip(nm_slices)
            .zip(self.shard_scratch.iter_mut())
            .map(|((servers, nms), scratch)| (servers, nms, scratch))
            .collect();
        let waits = for_each_shard(threaded, &mut tasks, |s, (servers, nms, scratch)| {
            scratch.effects.clear();
            scratch.trace.clear();
            let base = starts[s];
            for (k, (server, nm)) in servers.iter_mut().zip(nms.iter_mut()).enumerate() {
                let i = base + k;
                nm.step_synced(now, server, stall[i], &mut scratch.report);
                if scratch.report.restarted {
                    scratch.effects.push(ShardEffect::ClearStall(i));
                }
                while let Some(apps) = nm.take_colocation_notice() {
                    scratch.effects.push(ShardEffect::Colocation(i, apps));
                }
                if tracing {
                    scratch.trace.record(now, i, &scratch.report);
                }
            }
        });
        drop(tasks);
        // Epoch barrier: replay deferred control-plane effects and splice
        // trace fragments, both in shard order.
        for (s, scratch) in self.shard_scratch.iter_mut().enumerate() {
            scratch.barrier_wait_us += waits[s];
            scratch.note_queue_depth(scratch.effects.len());
            for effect in scratch.effects.drain(..) {
                match effect {
                    ShardEffect::ClearStall(i) => self.plane.clear_stall(i),
                    ShardEffect::Colocation(i, apps) => self.plane.send_colocation(now, i, apps),
                }
            }
            if let Some(trace) = self.trace.as_mut() {
                scratch.trace.drain_into(trace);
            }
        }
        self.drain_tees();
    }

    /// Drains every node manager's teed samples into the recording writer
    /// in server-index order — the same order at any shard count, so the
    /// recording bytes are shard-invariant.
    fn drain_tees(&mut self) {
        let Some(writer) = self.tee_writer.as_mut() else { return };
        for (i, nm) in self.node_managers.iter_mut().enumerate() {
            self.tee_buf.clear();
            nm.drain_tee_into(&mut self.tee_buf);
            for s in &self.tee_buf {
                writer.append(i as u32, s);
            }
        }
        self.tee_flushes += 1;
    }

    /// Serializes and takes the teed recording, disarming the writer.
    /// `None` when [`TelemetrySpec::tee`] was not configured.
    pub fn take_recording(&mut self) -> Option<Vec<u8>> {
        self.tee_writer.take().map(TelemetryWriter::finish)
    }

    /// The in-memory recording teed so far, ready to feed back through
    /// [`TelemetrySpec::replay`]. `None` when teeing is off.
    pub fn recording(&self) -> Option<TelemetryRecording> {
        self.tee_writer.as_ref().map(TelemetryWriter::recording)
    }

    /// True when all jobs have been submitted and completed.
    pub fn drained(&self) -> bool {
        self.pending_jobs.is_empty() && self.submitted_jobs > 0 && self.scheduler.is_idle()
    }

    /// Runs to completion: until the jobs drain, or — for job-less runs —
    /// until `max_sim_time`. Panics if jobs fail to drain before the wall.
    pub fn run(&mut self) -> ExperimentResult {
        let has_jobs = !self.pending_jobs.is_empty() || self.submitted_jobs > 0;
        while self.now < self.max_sim_time {
            if has_jobs && self.drained() {
                break;
            }
            self.step_tick();
        }
        assert!(
            !has_jobs || self.drained(),
            "jobs did not drain within {} simulated seconds",
            self.max_sim_time.as_secs_f64()
        );
        self.result()
    }

    /// Runs for a fixed additional span of simulated time.
    pub fn run_for(&mut self, span: SimDuration) {
        let end = self.now + span;
        while self.now < end {
            self.step_tick();
        }
    }

    /// Collects the result snapshot.
    pub fn result(&self) -> ExperimentResult {
        let antagonists = self
            .antagonist_vms
            .iter()
            .map(|&(vm, p)| {
                // Resolve the hosting server through the registry: the VM
                // may have been live-migrated off its placement-time host.
                let host = self.cloud.record(vm).expect("antagonist registered").server.0 as usize;
                let c = self.servers[host].counters(vm).expect("antagonist VM exists").counters;
                AntagonistStats {
                    vm,
                    kind: p.kind,
                    io_ops: c.io_serviced,
                    io_bytes: c.io_service_bytes,
                    instructions: c.instructions,
                    cpu_time: c.cpu_time,
                }
            })
            .collect();
        ExperimentResult {
            mitigation: self.mitigation_name.clone(),
            outcomes: self.scheduler.outcomes().to_vec(),
            duration: self.now.saturating_since(SimTime::ZERO),
            antagonists,
            ingest: self.ingest_stats(),
        }
    }
}

/// Applies a telemetry spec to freshly built node managers: swaps in each
/// server's replay stream and arms the tee. Idempotent, so rebuilds
/// ([`Experiment::set_mitigation`]) can re-apply it.
fn apply_telemetry(spec: &TelemetrySpec, node_managers: &mut [NodeManager]) {
    for (i, nm) in node_managers.iter_mut().enumerate() {
        if let Some(rec) = &spec.replay {
            nm.set_source(Box::new(ReplaySource::for_server(rec, i as u32)));
        }
        if spec.tee.is_some() {
            nm.enable_tee();
        }
    }
}

/// A PerfCloud configuration that samples and records but never detects
/// contention (thresholds at infinity) — used to trace deviations under
/// non-PerfCloud mitigations.
fn monitoring_only() -> PerfCloudConfig {
    PerfCloudConfig { h_io: f64::INFINITY, h_cpi: f64::INFINITY, ..Default::default() }
}

/// The concrete machinery a [`Mitigation`] strategy resolves to.
struct MitigationParts {
    policy: Box<dyn SpeculationPolicy>,
    dolly: Option<Dolly>,
    pc_config: PerfCloudConfig,
    pipeline: PipelineSpec,
    /// Placement runtime configuration, for migration-capable strategies.
    placement: Option<PlacementConfig>,
    /// Whether node managers may enroll VMs for throttling. `MigrateOnly`
    /// keeps the full detect/identify pipeline but turns actuation off, so
    /// migration is the sole mitigation.
    actuation: bool,
}

/// Resolves a mitigation into its parts, applying immediate side effects
/// (static caps) to `servers`. The `pipeline` spec only applies when
/// PerfCloud's pipeline is actually in control; passive mitigations keep
/// the paper's monitoring-only pipeline so an alternative detector can
/// never act through them.
fn resolve_mitigation(
    mitigation: Mitigation,
    pipeline: PipelineSpec,
    servers: &mut [PhysicalServer],
) -> MitigationParts {
    let passive = |policy: Box<dyn SpeculationPolicy>, dolly| MitigationParts {
        policy,
        dolly,
        pc_config: monitoring_only(),
        pipeline: PipelineSpec::paper(),
        placement: None,
        actuation: true,
    };
    let active = |policy, cfg, placement, actuation| MitigationParts {
        policy,
        dolly: None,
        pc_config: cfg,
        pipeline,
        placement,
        actuation,
    };
    match mitigation {
        Mitigation::Default => passive(Box::new(NoSpeculation), None),
        Mitigation::Late(l) => passive(Box::new(l), None),
        Mitigation::Dolly(d) => passive(Box::new(NoSpeculation), Some(d)),
        Mitigation::StaticCap(s) => {
            for server in servers {
                s.apply(server);
            }
            passive(Box::new(NoSpeculation), None)
        }
        Mitigation::PerfCloud(cfg) => active(Box::new(NoSpeculation), cfg, None, true),
        Mitigation::PerfCloudWithLate(cfg, late) => active(Box::new(late), cfg, None, true),
        Mitigation::MigrateOnly(p) => {
            active(Box::new(NoSpeculation), PerfCloudConfig::default(), Some(p), false)
        }
        Mitigation::Hybrid(cfg, p) => active(Box::new(NoSpeculation), cfg, Some(p), true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfcloud_frameworks::Benchmark;

    fn one_job_config(
        bench: Benchmark,
        tasks: usize,
        mitigation: Mitigation,
        antagonist_at: Option<u64>,
    ) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::new(ClusterSpec::small_scale(7), mitigation);
        cfg.jobs.push((SimTime::from_secs(10), bench.job(tasks)));
        if let Some(at) = antagonist_at {
            cfg.antagonists.push(
                AntagonistPlacement::pinned(AntagonistKind::Fio, 0)
                    .starting_at(SimTime::from_secs(at)),
            );
        }
        cfg.max_sim_time = SimTime::from_secs(2_000);
        cfg
    }

    #[test]
    fn terasort_completes_on_clean_cluster() {
        let mut e =
            Experiment::build(one_job_config(Benchmark::Terasort, 10, Mitigation::Default, None));
        let r = e.run();
        assert_eq!(r.outcomes.len(), 1);
        let jct = r.sole_jct();
        assert!(jct > 5.0 && jct < 600.0, "implausible JCT {jct}");
        assert_eq!(r.mitigation, "default");
    }

    #[test]
    fn antagonist_slows_the_job_down() {
        // The fio antagonist runs for the whole job (degradation scenario).
        let clean =
            Experiment::build(one_job_config(Benchmark::Terasort, 10, Mitigation::Default, None))
                .run();
        let dirty = Experiment::build(one_job_config(
            Benchmark::Terasort,
            10,
            Mitigation::Default,
            Some(0),
        ))
        .run();
        assert!(
            dirty.sole_jct() > 1.25 * clean.sole_jct(),
            "fio must hurt terasort: clean {} dirty {}",
            clean.sole_jct(),
            dirty.sole_jct()
        );
        assert_eq!(dirty.antagonists.len(), 1);
        assert!(dirty.antagonists[0].io_ops > 0.0);
    }

    #[test]
    fn perfcloud_recovers_part_of_the_loss() {
        // A longer I/O-heavy job with the antagonist arriving mid-run, so
        // the identification pipeline observes the onset (as in Figs. 9-10).
        let bench = Benchmark::Terasort;
        let clean = Experiment::build(one_job_config(bench, 20, Mitigation::Default, None)).run();
        let dirty =
            Experiment::build(one_job_config(bench, 20, Mitigation::Default, Some(15))).run();
        let pc = Experiment::build(one_job_config(
            bench,
            20,
            Mitigation::PerfCloud(PerfCloudConfig::default()),
            Some(15),
        ))
        .run();
        let c = clean.sole_jct();
        let d = dirty.sole_jct();
        let p = pc.sole_jct();
        assert!(d > c, "antagonist must slow the job: {d} !> {c}");
        assert!(p < d, "PerfCloud must beat the default under contention: {p} !< {d}");
        let recovered = (d - p) / (d - c);
        assert!(
            recovered > 0.25,
            "recovered only {:.0}% (clean {c:.0} dirty {d:.0} pc {p:.0})",
            recovered * 100.0
        );
    }

    #[test]
    fn dolly_clones_small_jobs_and_reduces_efficiency() {
        let mut cfg =
            ExperimentConfig::new(ClusterSpec::small_scale(9), Mitigation::Dolly(Dolly::new(4)));
        cfg.jobs.push((SimTime::from_secs(5), Benchmark::Wordcount.job(4)));
        cfg.max_sim_time = SimTime::from_secs(2_000);
        let r = Experiment::build(cfg).run();
        assert_eq!(r.outcomes.len(), 1);
        assert_eq!(r.outcomes[0].clones, 4);
        assert!(r.outcomes[0].efficiency() < 0.8, "cloning must waste work");
        assert_eq!(r.mitigation, "dolly-4");
    }

    #[test]
    fn job_less_run_terminates_at_wall() {
        let mut cfg = ExperimentConfig::new(ClusterSpec::small_scale(3), Mitigation::Default);
        cfg.antagonists.push(AntagonistPlacement::pinned(AntagonistKind::Fio, 0));
        cfg.max_sim_time = SimTime::from_secs(30);
        let r = Experiment::build(cfg).run();
        assert!(r.outcomes.is_empty());
        assert!((r.duration.as_secs_f64() - 30.0).abs() < 0.2);
        assert!(r.antagonists[0].io_ops > 0.0);
    }

    #[test]
    fn hybrid_runs_speculation_and_control_together() {
        let mut cfg = ExperimentConfig::new(
            ClusterSpec::small_scale(13),
            Mitigation::PerfCloudWithLate(
                PerfCloudConfig::default(),
                perfcloud_baselines::LatePolicy::default(),
            ),
        );
        cfg.jobs.push((SimTime::from_secs(5), Benchmark::Terasort.job(12)));
        cfg.antagonists.push(
            AntagonistPlacement::pinned(AntagonistKind::Fio, 0).starting_at(SimTime::from_secs(15)),
        );
        cfg.max_sim_time = SimTime::from_secs(2_000);
        let mut e = Experiment::build(cfg);
        let r = e.run();
        assert_eq!(r.mitigation, "perfcloud+late");
        assert_eq!(r.outcomes.len(), 1);
        assert!(r.outcomes[0].jct > 0.0);
    }

    #[test]
    fn observability_is_pure_and_exports_all_tracks() {
        let build = || {
            let mut cfg = ExperimentConfig::new(
                ClusterSpec::small_scale(3),
                Mitigation::PerfCloud(PerfCloudConfig::default()),
            );
            cfg.antagonists.push(AntagonistPlacement::pinned(AntagonistKind::Fio, 0));
            cfg.max_sim_time = SimTime::from_secs(60);
            Experiment::build(cfg)
        };
        let mut plain = build();
        plain.enable_decision_trace();
        let r_plain = plain.run();
        let mut observed = build();
        observed.enable_decision_trace();
        observed.enable_observability(4096);
        let r_obs = observed.run();
        // Pure observation: results and decision traces are identical.
        assert_eq!(r_plain, r_obs);
        assert_eq!(
            plain.decision_trace().unwrap().canonical(),
            observed.decision_trace().unwrap().canonical()
        );
        // Every track is present: 1 server + ctrl + net.
        let sources = observed.flight_sources();
        assert_eq!(sources.len(), 3);
        assert!(plain.flight_sources().is_empty());
        // Exports are deterministic and well-formed.
        let json = observed.chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(
            json.contains("\"server0\"") && json.contains("\"ctrl\"") && json.contains("\"net\"")
        );
        assert_eq!(json, observed.chrome_trace());
        assert!(!observed.jsonl_trace().is_empty());
        assert!(!observed.flight_dump(32).is_empty());
        // Metrics surface ingest and network tallies in BENCH flat form.
        let snap = observed.metrics_snapshot();
        let get = |k: &str| snap.iter().find(|(n, _)| n == k).map(|(_, v)| *v).unwrap();
        assert!(get("ingest_recorded") > 0.0);
        assert!(get("net_sent") > 0.0);
        assert_eq!(get("ingest_rejected"), 0.0, "no faults: nothing rejected");
    }

    #[test]
    fn sharded_run_matches_sequential() {
        let build = |shards: usize, threads: Option<bool>| {
            let mut e = Experiment::build(one_job_config(
                Benchmark::Terasort,
                10,
                Mitigation::PerfCloud(PerfCloudConfig::default()),
                Some(15),
            ));
            e.enable_decision_trace();
            e.set_shards(shards);
            e.set_shard_threads(threads);
            let r = e.run();
            let t = e.decision_trace().unwrap().canonical();
            (r, t)
        };
        let (r1, t1) = build(1, None);
        assert!(!t1.is_empty());
        for shards in [2usize, 3, 7] {
            let (r, t) = build(shards, None);
            assert_eq!(r1, r, "result diverged at shards={shards}");
            assert_eq!(t1, t, "trace diverged at shards={shards}");
        }
        // Forced worker threads change latency only, never a byte.
        let (rt, tt) = build(3, Some(true));
        assert_eq!(r1, rt);
        assert_eq!(t1, tt);
    }

    #[test]
    fn shard_metrics_are_surfaced() {
        let mut e = Experiment::build(one_job_config(
            Benchmark::Terasort,
            10,
            Mitigation::PerfCloud(PerfCloudConfig::default()),
            Some(0),
        ));
        e.set_shards(3);
        e.run();
        let snap = e.metrics_snapshot();
        let get = |k: &str| snap.iter().find(|(n, _)| n == k).map(|(_, v)| *v).unwrap();
        assert_eq!(get("shards"), 3.0);
        assert!(get("shard0_queue_peak_depth") >= 0.0);
        assert!(get("shard2_barrier_wait_us") >= 0.0);
    }

    fn migration_testbed(mitigation: Mitigation) -> ExperimentConfig {
        // Two servers, the second held spare: all workers and the fio
        // antagonist land on server 0, leaving server 1 as the migration
        // target the placement policy should discover.
        let mut cluster = ClusterSpec::small_scale(7);
        cluster.servers = 2;
        cluster.spare_servers = 1;
        let mut cfg = ExperimentConfig::new(cluster, mitigation);
        cfg.jobs.push((SimTime::from_secs(10), Benchmark::Terasort.job(20)));
        cfg.antagonists.push(
            AntagonistPlacement::pinned(AntagonistKind::Fio, 0).starting_at(SimTime::from_secs(15)),
        );
        cfg.max_sim_time = SimTime::from_secs(2_000);
        cfg
    }

    #[test]
    fn migrate_only_moves_the_antagonist_and_recovers_jct() {
        use perfcloud_place::PlacementConfig;
        let dirty = Experiment::build(migration_testbed(Mitigation::Default)).run();
        let mut e = Experiment::build(migration_testbed(Mitigation::MigrateOnly(
            PlacementConfig::default(),
        )));
        let r = e.run();
        assert_eq!(r.mitigation, "migrate-only");
        let rt = e.placement().expect("placement runtime installed");
        let vm = e.antagonist_vms()[0].0;
        assert_eq!(rt.starts_of(vm), 1, "exactly one migration of the antagonist");
        assert_eq!(rt.active_count(), 0, "migration completed");
        // The registry and the host agree the VM now lives on the spare.
        assert_eq!(e.cloud.record(vm).unwrap().server, ServerId(1));
        assert!(e.servers[1].hosts(vm) && !e.servers[0].hosts(vm));
        assert!(!e.servers[1].is_paused(vm), "VM resumed after stop-and-copy");
        assert!(
            r.sole_jct() < dirty.sole_jct(),
            "migrating the antagonist away must beat no mitigation: {} !< {}",
            r.sole_jct(),
            dirty.sole_jct()
        );
        // The antagonist keeps running on the spare server (cluster
        // utilization is preserved, unlike throttling).
        assert!(r.antagonists[0].io_ops > 0.0);
    }

    #[test]
    fn hybrid_beats_throttle_only_on_victim_jct() {
        use perfcloud_place::PlacementConfig;
        let throttle =
            Experiment::build(migration_testbed(Mitigation::PerfCloud(PerfCloudConfig::default())))
                .run();
        let mut e = Experiment::build(migration_testbed(Mitigation::Hybrid(
            PerfCloudConfig::default(),
            PlacementConfig::default(),
        )));
        let hybrid = e.run();
        assert_eq!(hybrid.mitigation, "hybrid");
        assert!(e.placement().unwrap().migrations_started() >= 1);
        assert!(
            hybrid.sole_jct() <= throttle.sole_jct(),
            "hybrid (throttle + migrate) must not lose to throttle-only: {} !<= {}",
            hybrid.sole_jct(),
            throttle.sole_jct()
        );
    }

    #[test]
    fn tee_then_replay_reproduces_the_run() {
        // Record a faulted PerfCloud run, replay the recording through a
        // second build of the same config: result, decision trace, and
        // re-teed recording bytes must all match.
        let config = || {
            let mut cfg = one_job_config(
                Benchmark::Terasort,
                10,
                Mitigation::PerfCloud(PerfCloudConfig::default()),
                Some(15),
            );
            use perfcloud_sim::{FaultKind, FaultRule};
            cfg.faults = Some(
                FaultScenario::named("tee-replay")
                    .rule(
                        FaultRule::new("drop", FaultKind::DropSample)
                            .window(SimTime::from_secs(20), SimTime::from_secs(120))
                            .with_probability(0.2),
                    )
                    .rule(
                        FaultRule::new("delay", FaultKind::DelaySample { intervals: 2 })
                            .window(SimTime::from_secs(20), SimTime::from_secs(120))
                            .with_probability(0.2),
                    ),
            );
            cfg
        };
        let mut recorded = config();
        recorded.telemetry.tee = Some(RecordingFormat::Binary);
        let mut a = Experiment::build(recorded);
        a.enable_decision_trace();
        let ra = a.run();
        let rec = a.recording().expect("tee was armed");
        assert!(!rec.samples.is_empty());
        let bytes_a = a.take_recording().expect("tee was armed");
        assert!(a.take_recording().is_none(), "take disarms the tee");

        let mut replayed = config();
        replayed.telemetry.replay = Some(Arc::new(rec));
        replayed.telemetry.tee = Some(RecordingFormat::Binary);
        let mut b = Experiment::build(replayed);
        assert_eq!(b.node_managers[0].source_name(), "replay");
        b.enable_decision_trace();
        let rb = b.run();
        assert_eq!(ra, rb, "replayed result diverged");
        assert_eq!(
            a.decision_trace().unwrap().canonical(),
            b.decision_trace().unwrap().canonical(),
            "replayed decision trace diverged"
        );
        // The replayed run re-tees the identical sample stream; only the
        // header's source name differs.
        let rec_b = b.recording().unwrap();
        assert_eq!(rec_b.source, "replay");
        let parsed_a =
            perfcloud_telemetry::TelemetryReader::parse(&bytes_a).expect("recording parses");
        assert_eq!(parsed_a.samples, rec_b.samples);
    }

    #[test]
    fn telemetry_counters_surface_in_metrics() {
        let mut cfg = one_job_config(
            Benchmark::Terasort,
            10,
            Mitigation::PerfCloud(PerfCloudConfig::default()),
            Some(0),
        );
        cfg.telemetry.tee = Some(RecordingFormat::Jsonl);
        let mut e = Experiment::build(cfg);
        e.run();
        let snap = e.metrics_snapshot();
        let get = |k: &str| snap.iter().find(|(n, _)| n == k).map(|(_, v)| *v).unwrap();
        assert!(get("telemetry_teed_samples") > 0.0);
        assert!(get("telemetry_flush_batches") > 0.0);
        // The Prometheus exposition reads the same registry.
        let text = e.prometheus_metrics();
        assert!(text.contains("# TYPE telemetry_teed_samples counter"));
        assert!(text.contains("# TYPE ingest_recorded counter"));
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            Experiment::build(one_job_config(Benchmark::Terasort, 10, Mitigation::Default, Some(0)))
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.sole_jct(), b.sole_jct());
        assert_eq!(a.antagonists[0].io_ops, b.antagonists[0].io_ops);
    }
}
