//! Cluster topologies: virtual Hadoop clusters over physical servers.

use perfcloud_core::{AppId, CloudManager, VmRecord};
use perfcloud_frameworks::Worker;
use perfcloud_host::{PhysicalServer, Priority, ServerConfig, ServerId, VmConfig, VmId};
use perfcloud_sim::{RngFactory, SimDuration};

/// Specification of a virtual Hadoop cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Number of physical servers.
    pub servers: usize,
    /// Worker (slave) VMs per server.
    pub workers_per_server: usize,
    /// Task slots per worker VM (paper VMs have 2 vCPUs → 2 slots).
    pub slots_per_worker: u32,
    /// Physical server model.
    pub server_config: ServerConfig,
    /// Simulation tick length.
    pub tick: SimDuration,
    /// Master seed for all randomness in the run.
    pub seed: u64,
    /// Per-server relative speed factors for heterogeneous clusters
    /// (empty = homogeneous). Length must match `servers` when non-empty.
    pub speed_factors: Vec<f64>,
    /// Trailing servers that get no worker VMs — migration headroom for
    /// placement experiments. Must be less than `servers`; 0 (the
    /// default) reproduces the classic fully-populated topologies.
    pub spare_servers: usize,
}

impl ClusterSpec {
    /// The paper's small-scale setup: a 12-node virtual cluster on one
    /// server (2 masters are implicit in the scheduler; 10 slave VMs).
    pub fn small_scale(seed: u64) -> Self {
        ClusterSpec {
            servers: 1,
            workers_per_server: 10,
            slots_per_worker: 2,
            server_config: ServerConfig::chameleon(),
            tick: SimDuration::from_millis(100),
            seed,
            speed_factors: Vec::new(),
            spare_servers: 0,
        }
    }

    /// The paper's large-scale setup: a 152-node virtual cluster over 15
    /// servers (10 slave VMs per server).
    pub fn large_scale(seed: u64) -> Self {
        ClusterSpec {
            servers: 15,
            workers_per_server: 10,
            slots_per_worker: 2,
            server_config: ServerConfig::chameleon(),
            tick: SimDuration::from_millis(100),
            seed,
            speed_factors: Vec::new(),
            spare_servers: 0,
        }
    }

    /// Total worker VM count (spare servers host none).
    pub fn worker_count(&self) -> usize {
        (self.servers - self.spare_servers) * self.workers_per_server
    }
}

/// A built testbed: servers, the cloud registry, and worker descriptors.
pub struct Testbed {
    /// The physical servers, index-aligned with worker `server_idx`.
    pub servers: Vec<PhysicalServer>,
    /// The central VM registry.
    pub cloud: CloudManager,
    /// Worker descriptors for the framework scheduler.
    pub workers: Vec<Worker>,
    /// The RNG factory for this run.
    pub rng: RngFactory,
    /// The tick length the servers were built with.
    pub tick: SimDuration,
    next_vm: u32,
}

/// The application id assigned to the Hadoop/Spark workers.
pub const HADOOP_APP: AppId = AppId(1);

impl Testbed {
    /// Builds the testbed for `spec`: servers, high-priority worker VMs
    /// (all belonging to [`HADOOP_APP`]), and cloud-manager registrations.
    pub fn build(spec: &ClusterSpec) -> Self {
        assert!(spec.servers >= 1 && spec.workers_per_server >= 1);
        assert!(
            spec.speed_factors.is_empty() || spec.speed_factors.len() == spec.servers,
            "speed_factors must be empty or one per server"
        );
        assert!(
            spec.spare_servers < spec.servers,
            "spare_servers must leave at least one populated server"
        );
        let rng = RngFactory::new(spec.seed);
        let mut servers = Vec::with_capacity(spec.servers);
        let mut workers = Vec::new();
        let mut cloud = CloudManager::new();
        let mut next_vm = 0u32;
        for s in 0..spec.servers {
            let mut cfg = spec.server_config.clone();
            if let Some(&f) = spec.speed_factors.get(s) {
                cfg.speed_factor = f;
            }
            let mut server = PhysicalServer::new(
                ServerId(s as u32),
                cfg,
                rng.child_indexed("server", s as u64),
                spec.tick,
            );
            let workers_here =
                if s < spec.servers - spec.spare_servers { spec.workers_per_server } else { 0 };
            for _ in 0..workers_here {
                let vm = VmId(next_vm);
                next_vm += 1;
                server.add_vm(vm, VmConfig::high_priority());
                cloud.register(
                    vm,
                    VmRecord {
                        server: ServerId(s as u32),
                        priority: Priority::High,
                        app: Some(HADOOP_APP),
                    },
                );
                workers.push(Worker { server_idx: s, vm, slots: spec.slots_per_worker });
            }
            servers.push(server);
        }
        Testbed { servers, cloud, workers, rng, tick: spec.tick, next_vm }
    }

    /// Adds a low-priority VM on `server_idx`, returning its id.
    pub fn add_low_priority_vm(&mut self, server_idx: usize) -> VmId {
        let vm = VmId(self.next_vm);
        self.next_vm += 1;
        self.servers[server_idx].add_vm(vm, VmConfig::low_priority());
        self.cloud.register(
            vm,
            VmRecord { server: ServerId(server_idx as u32), priority: Priority::Low, app: None },
        );
        vm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_matches_paper() {
        let spec = ClusterSpec::small_scale(1);
        assert_eq!(spec.servers, 1);
        assert_eq!(spec.worker_count(), 10);
        let tb = Testbed::build(&spec);
        assert_eq!(tb.servers.len(), 1);
        assert_eq!(tb.workers.len(), 10);
        assert_eq!(tb.cloud.apps_on(ServerId(0)).len(), 1);
        assert_eq!(tb.cloud.apps_on(ServerId(0))[0].1.len(), 10);
    }

    #[test]
    fn large_scale_matches_paper() {
        let spec = ClusterSpec::large_scale(1);
        assert_eq!(spec.worker_count(), 150);
        let tb = Testbed::build(&spec);
        assert_eq!(tb.servers.len(), 15);
        // Workers spread evenly.
        for s in 0..15 {
            assert_eq!(tb.cloud.apps_on(ServerId(s as u32))[0].1.len(), 10);
        }
    }

    #[test]
    fn low_priority_vms_register_correctly() {
        let mut tb = Testbed::build(&ClusterSpec::small_scale(2));
        let vm = tb.add_low_priority_vm(0);
        assert!(tb.servers[0].hosts(vm));
        assert_eq!(tb.cloud.low_priority_on(ServerId(0)), vec![vm]);
    }

    #[test]
    fn heterogeneous_speed_factors_apply() {
        let mut spec = ClusterSpec::small_scale(3);
        spec.servers = 2;
        spec.speed_factors = vec![1.0, 0.5];
        let tb = Testbed::build(&spec);
        assert_eq!(tb.servers[1].config().speed_factor, 0.5);
        assert_eq!(tb.servers[0].config().speed_factor, 1.0);
    }

    #[test]
    #[should_panic(expected = "speed_factors")]
    fn mismatched_speed_factors_rejected() {
        let mut spec = ClusterSpec::small_scale(3);
        spec.speed_factors = vec![1.0, 0.5];
        let _ = Testbed::build(&spec);
    }

    #[test]
    fn spare_servers_host_no_workers() {
        let mut spec = ClusterSpec::large_scale(4);
        spec.servers = 3;
        spec.spare_servers = 1;
        assert_eq!(spec.worker_count(), 20);
        let tb = Testbed::build(&spec);
        assert_eq!(tb.servers.len(), 3);
        assert_eq!(tb.workers.len(), 20);
        assert!(tb.workers.iter().all(|w| w.server_idx < 2));
        assert!(tb.cloud.apps_on(ServerId(2)).is_empty());
        assert!(tb.servers[2].vm_ids().is_empty());
    }

    #[test]
    #[should_panic(expected = "spare_servers")]
    fn all_spare_topology_rejected() {
        let mut spec = ClusterSpec::small_scale(5);
        spec.spare_servers = 1;
        let _ = Testbed::build(&spec);
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let a = Testbed::build(&ClusterSpec::small_scale(1));
        let b = Testbed::build(&ClusterSpec::small_scale(2));
        assert_ne!(a.rng.master_seed(), b.rng.master_seed());
    }
}
