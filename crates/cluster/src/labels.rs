//! Ground-truth labels and decision-trace observations for accuracy scoring.
//!
//! Antagonists and faults are *injected*, so the true answer to every
//! question a pipeline faces — which server was contended, on which
//! resource, by which VM, over which interval — is known exactly. This
//! module derives those labels from an experiment's antagonist placements
//! ([`GroundTruth`]) and parses the canonical [`DecisionTrace`] lines back
//! into structured per-step observations ([`StepObservation`]), giving the
//! accuracy harness in `perfcloud-bench` both sides of the comparison.
//!
//! [`DecisionTrace`]: crate::trace::DecisionTrace

use crate::antagonists::AntagonistKind;
use crate::experiment::Experiment;
use perfcloud_core::antagonist::Resource;
use perfcloud_host::VmId;

/// The resource a placed antagonist truly contends on, or `None` for
/// workloads injected as decoys / innocents that a correct pipeline should
/// *not* throttle: CPU-only compute (`SysbenchCpu`), individually-mild
/// STREAM, and low-rate fio whose submission rate is well inside the disk's
/// capacity.
pub fn truth_resource(kind: AntagonistKind) -> Option<Resource> {
    match kind {
        AntagonistKind::Fio => Some(Resource::Io),
        // A rate-limited fio only saturates the shared disk when the rate is
        // a contention-scale fraction of its capacity; below that it is an
        // innocent bystander doing light I/O.
        AntagonistKind::FioRate(rate) => (rate >= 1_000.0).then_some(Resource::Io),
        AntagonistKind::Stream | AntagonistKind::StreamThreads(_) => Some(Resource::Cpu),
        AntagonistKind::StreamMild => None,
        AntagonistKind::SysbenchOltp => Some(Resource::Io),
        AntagonistKind::SysbenchCpu => None,
    }
}

/// One labeled antagonist: who, where, what, and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruthEntry {
    /// The antagonist's VM.
    pub vm: VmId,
    /// Server index it was placed on.
    pub server: usize,
    /// The resource it truly contends, `None` for innocents.
    pub resource: Option<Resource>,
    /// Workload onset, simulated seconds.
    pub active_from: f64,
    /// Workload end, simulated seconds; `None` = whole run.
    pub active_until: Option<f64>,
}

impl TruthEntry {
    /// Whether the antagonist was active at `t` (seconds).
    pub fn active_at(&self, t: f64) -> bool {
        t >= self.active_from && self.active_until.is_none_or(|end| t <= end)
    }
}

/// The complete injected-antagonist schedule of one experiment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroundTruth {
    /// All labeled antagonists, in placement order.
    pub entries: Vec<TruthEntry>,
}

impl GroundTruth {
    /// Derives the labels from a built experiment's antagonist placements.
    /// Call on the built (or finished) experiment — placements are fixed at
    /// build time, so before/after makes no difference.
    pub fn from_experiment(experiment: &Experiment) -> Self {
        let entries = experiment
            .antagonist_vms()
            .iter()
            .map(|&(vm, p)| TruthEntry {
                vm,
                server: p.server_idx,
                resource: truth_resource(p.kind),
                active_from: p.start.as_secs_f64(),
                active_until: p.duration.map(|d| (p.start + d).as_secs_f64()),
            })
            .collect();
        GroundTruth { entries }
    }

    /// The guilty entries — those that truly contend some resource.
    pub fn culprits(&self) -> impl Iterator<Item = &TruthEntry> {
        self.entries.iter().filter(|e| e.resource.is_some())
    }

    /// Whether `vm` is a true antagonist for `resource` at time `t` on
    /// `server`.
    pub fn is_culprit(&self, server: usize, vm: u64, resource: Resource, t: f64) -> bool {
        self.entries.iter().any(|e| {
            u64::from(e.vm.0) == vm
                && e.server == server
                && e.resource == Some(resource)
                && e.active_at(t)
        })
    }

    /// Whether *any* antagonist truly contends `resource` on `server` at
    /// time `t` — the detection-level truth.
    pub fn server_contended(&self, server: usize, resource: Resource, t: f64) -> bool {
        self.entries
            .iter()
            .any(|e| e.server == server && e.resource == Some(resource) && e.active_at(t))
    }
}

/// One decision-trace line parsed back into structure. `ctrl` lines (control
/// plane events) are not step observations and parse to `None`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepObservation {
    /// Simulated time of the step, seconds.
    pub t: f64,
    /// Server index the report came from.
    pub server: usize,
    /// Whether the manager made a decision this step (idle, stalled, and
    /// placement-refused steps record no signal).
    pub decided: bool,
    /// The detector's I/O verdict.
    pub io_contended: bool,
    /// The detector's processor verdict.
    pub cpu_contended: bool,
    /// VMs identified as I/O antagonists.
    pub io_antagonists: Vec<u64>,
    /// VMs identified as processor antagonists.
    pub cpu_antagonists: Vec<u64>,
    /// Applied I/O caps (VM, normalized cap).
    pub io_caps: Vec<(u64, f64)>,
    /// Applied CPU caps (VM, normalized cap).
    pub cpu_caps: Vec<(u64, f64)>,
}

impl StepObservation {
    /// The identification list for `resource`.
    pub fn antagonists(&self, resource: Resource) -> &[u64] {
        match resource {
            Resource::Io => &self.io_antagonists,
            Resource::Cpu => &self.cpu_antagonists,
        }
    }

    /// The applied caps for `resource`.
    pub fn caps(&self, resource: Resource) -> &[(u64, f64)] {
        match resource {
            Resource::Io => &self.io_caps,
            Resource::Cpu => &self.cpu_caps,
        }
    }

    /// The detector verdict for `resource`.
    pub fn contended(&self, resource: Resource) -> bool {
        match resource {
            Resource::Io => self.io_contended,
            Resource::Cpu => self.cpu_contended,
        }
    }
}

fn field<'a>(token: &'a str, key: &str) -> Option<&'a str> {
    token.strip_prefix(key)?.strip_prefix('=')
}

fn parse_vm_list(s: &str) -> Vec<u64> {
    if s == "-" {
        return Vec::new();
    }
    s.split(',').filter_map(|v| v.parse().ok()).collect()
}

fn parse_cap_list(s: &str) -> Vec<(u64, f64)> {
    if s == "-" {
        return Vec::new();
    }
    s.split(',')
        .filter_map(|pair| {
            let (vm, cap) = pair.split_once(':')?;
            Some((vm.parse().ok()?, cap.parse().ok()?))
        })
        .collect()
}

/// Parses one canonical decision-trace line. Returns `None` for `ctrl`
/// lines, comment (`#`) headers, and anything else that is not a step.
pub fn parse_step_line(line: &str) -> Option<StepObservation> {
    let mut tokens = line.split_ascii_whitespace();
    let t = field(tokens.next()?, "t")?.parse().ok()?;
    let second = tokens.next()?;
    if second == "ctrl" {
        return None;
    }
    let server = field(second, "s")?.parse().ok()?;
    let mut obs = StepObservation { t, server, ..Default::default() };
    for token in tokens {
        if let Some(v) = field(token, "io") {
            obs.decided = v != "-";
            obs.io_contended = v == "1";
        } else if let Some(v) = field(token, "cpu") {
            obs.cpu_contended = v == "1";
        } else if let Some(v) = field(token, "aio") {
            obs.io_antagonists = parse_vm_list(v);
        } else if let Some(v) = field(token, "acpu") {
            obs.cpu_antagonists = parse_vm_list(v);
        } else if let Some(v) = field(token, "cio") {
            obs.io_caps = parse_cap_list(v);
        } else if let Some(v) = field(token, "ccpu") {
            obs.cpu_caps = parse_cap_list(v);
        }
    }
    Some(obs)
}

/// Parses every step line of a canonical trace, skipping `ctrl` lines and
/// `#` headers.
pub fn parse_trace(canonical: &str) -> Vec<StepObservation> {
    canonical.lines().filter_map(parse_step_line).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_resource_classification() {
        assert_eq!(truth_resource(AntagonistKind::Fio), Some(Resource::Io));
        assert_eq!(truth_resource(AntagonistKind::FioRate(20_000.0)), Some(Resource::Io));
        assert_eq!(truth_resource(AntagonistKind::FioRate(250.0)), None);
        assert_eq!(truth_resource(AntagonistKind::Stream), Some(Resource::Cpu));
        assert_eq!(truth_resource(AntagonistKind::StreamMild), None);
        assert_eq!(truth_resource(AntagonistKind::SysbenchCpu), None);
    }

    #[test]
    fn truth_entry_active_interval() {
        let e = TruthEntry {
            vm: VmId(10),
            server: 0,
            resource: Some(Resource::Io),
            active_from: 15.0,
            active_until: Some(165.0),
        };
        assert!(!e.active_at(10.0));
        assert!(e.active_at(15.0));
        assert!(e.active_at(165.0));
        assert!(!e.active_at(170.0));
        let forever = TruthEntry { active_until: None, ..e };
        assert!(forever.active_at(1.0e9));
    }

    #[test]
    fn parses_idle_and_busy_lines() {
        let idle = parse_step_line("t=5 s=0 dio=- dcpi=- io=- cpu=- aio=- acpu=- cio=- ccpu=- f=-")
            .unwrap();
        assert_eq!(idle.t, 5.0);
        assert_eq!(idle.server, 0);
        assert!(!idle.decided);
        assert!(!idle.io_contended);

        let busy = parse_step_line(
            "t=10 s=3 dio=12.5 dcpi=- io=1 cpu=0 aio=10 acpu=- cio=10:0.2,11:0.5 ccpu=- f=R",
        )
        .unwrap();
        assert_eq!(busy.server, 3);
        assert!(busy.decided);
        assert!(busy.io_contended);
        assert!(!busy.cpu_contended);
        assert_eq!(busy.io_antagonists, vec![10]);
        assert_eq!(busy.io_caps, vec![(10, 0.2), (11, 0.5)]);
    }

    #[test]
    fn ctrl_lines_and_headers_are_skipped() {
        assert_eq!(parse_step_line("t=20 ctrl elected mgr=1"), None);
        assert_eq!(parse_step_line("# jct=431.5"), None);
        let trace = "# jct=1\nt=5 s=0 dio=- dcpi=- io=- cpu=- aio=- acpu=- cio=- ccpu=- f=-\nt=20 ctrl elected mgr=1\n";
        assert_eq!(parse_trace(trace).len(), 1);
    }

    #[test]
    fn culprit_queries_respect_server_resource_and_time() {
        let truth = GroundTruth {
            entries: vec![
                TruthEntry {
                    vm: VmId(10),
                    server: 0,
                    resource: Some(Resource::Io),
                    active_from: 15.0,
                    active_until: None,
                },
                TruthEntry {
                    vm: VmId(11),
                    server: 0,
                    resource: None,
                    active_from: 0.0,
                    active_until: None,
                },
            ],
        };
        assert!(truth.is_culprit(0, 10, Resource::Io, 20.0));
        assert!(!truth.is_culprit(0, 10, Resource::Io, 10.0));
        assert!(!truth.is_culprit(0, 10, Resource::Cpu, 20.0));
        assert!(!truth.is_culprit(1, 10, Resource::Io, 20.0));
        assert!(!truth.is_culprit(0, 11, Resource::Io, 20.0));
        assert!(truth.server_contended(0, Resource::Io, 20.0));
        assert!(!truth.server_contended(0, Resource::Cpu, 20.0));
        assert_eq!(truth.culprits().count(), 1);
    }
}
