//! Evaluation metrics: normalized JCT, degradation breakdowns, efficiency.

use perfcloud_frameworks::JobOutcome;
use std::collections::HashMap;

/// Normalizes each outcome's JCT by the baseline (interference-free) JCT of
/// the same job name. Jobs without a baseline are skipped.
pub fn normalize_jcts(outcomes: &[JobOutcome], baselines: &HashMap<String, f64>) -> Vec<f64> {
    outcomes
        .iter()
        .filter_map(|o| {
            let base = *baselines.get(&o.name)?;
            (base > 0.0).then(|| o.jct / base)
        })
        .collect()
}

/// The paper's Fig. 11a/b buckets: fraction of jobs whose performance
/// degradation (normalized JCT − 1) falls under 10%, between 10–30%, and
/// above 30%.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationBreakdown {
    /// Fraction of jobs with degradation < 10%.
    pub under_10: f64,
    /// Fraction with 10% ≤ degradation < 30%.
    pub from_10_to_30: f64,
    /// Fraction with degradation ≥ 30%.
    pub over_30: f64,
    /// Number of jobs classified.
    pub count: usize,
}

impl DegradationBreakdown {
    /// Classifies normalized JCTs (1.0 = no degradation).
    pub fn from_normalized(normalized: &[f64]) -> Self {
        let n = normalized.len();
        if n == 0 {
            return DegradationBreakdown {
                under_10: 0.0,
                from_10_to_30: 0.0,
                over_30: 0.0,
                count: 0,
            };
        }
        let mut u10 = 0usize;
        let mut u30 = 0usize;
        let mut o30 = 0usize;
        for &x in normalized {
            let d = x - 1.0;
            if d < 0.10 {
                u10 += 1;
            } else if d < 0.30 {
                u30 += 1;
            } else {
                o30 += 1;
            }
        }
        DegradationBreakdown {
            under_10: u10 as f64 / n as f64,
            from_10_to_30: u30 as f64 / n as f64,
            over_30: o30 as f64 / n as f64,
            count: n,
        }
    }

    /// Fraction with degradation < 30% (the paper's "100% of all jobs to be
    /// less than 30%" claim for PerfCloud).
    pub fn under_30(&self) -> f64 {
        self.under_10 + self.from_10_to_30
    }
}

/// Mean resource-utilization efficiency over outcomes (Fig. 11c).
pub fn mean_efficiency(outcomes: &[JobOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 1.0;
    }
    outcomes.iter().map(JobOutcome::efficiency).sum::<f64>() / outcomes.len() as f64
}

/// Aggregate efficiency: total successful task time over total task time,
/// pooled across jobs (weighted by job size, unlike [`mean_efficiency`]).
pub fn pooled_efficiency(outcomes: &[JobOutcome]) -> f64 {
    let ok: f64 = outcomes.iter().map(|o| o.successful_task_secs).sum();
    let total: f64 = outcomes.iter().map(|o| o.total_task_secs).sum();
    if total <= 0.0 {
        1.0
    } else {
        (ok / total).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfcloud_sim::SimTime;

    fn outcome(name: &str, jct: f64, ok: f64, total: f64) -> JobOutcome {
        JobOutcome {
            name: name.into(),
            submitted: SimTime::ZERO,
            jct,
            successful_task_secs: ok,
            total_task_secs: total,
            task_count: 4,
            clones: 1,
        }
    }

    #[test]
    fn normalization_uses_per_name_baselines() {
        let outcomes = vec![outcome("a", 20.0, 1.0, 1.0), outcome("b", 30.0, 1.0, 1.0)];
        let mut base = HashMap::new();
        base.insert("a".to_string(), 10.0);
        base.insert("b".to_string(), 30.0);
        let n = normalize_jcts(&outcomes, &base);
        assert_eq!(n, vec![2.0, 1.0]);
    }

    #[test]
    fn missing_baselines_are_skipped() {
        let outcomes = vec![outcome("a", 20.0, 1.0, 1.0), outcome("zzz", 30.0, 1.0, 1.0)];
        let mut base = HashMap::new();
        base.insert("a".to_string(), 10.0);
        assert_eq!(normalize_jcts(&outcomes, &base).len(), 1);
    }

    #[test]
    fn breakdown_buckets() {
        let normalized = vec![1.0, 1.05, 1.09, 1.10, 1.25, 1.30, 2.0];
        let b = DegradationBreakdown::from_normalized(&normalized);
        assert_eq!(b.count, 7);
        assert!((b.under_10 - 3.0 / 7.0).abs() < 1e-12);
        assert!((b.from_10_to_30 - 2.0 / 7.0).abs() < 1e-12);
        assert!((b.over_30 - 2.0 / 7.0).abs() < 1e-12);
        assert!((b.under_30() - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = DegradationBreakdown::from_normalized(&[]);
        assert_eq!(b.count, 0);
        assert_eq!(b.under_10, 0.0);
    }

    #[test]
    fn speedups_count_as_under_10() {
        let b = DegradationBreakdown::from_normalized(&[0.9, 0.95]);
        assert_eq!(b.under_10, 1.0);
    }

    #[test]
    fn efficiency_aggregations() {
        let outcomes = vec![outcome("a", 1.0, 8.0, 10.0), outcome("b", 1.0, 1.0, 10.0)];
        assert!((mean_efficiency(&outcomes) - (0.8 + 0.1) / 2.0).abs() < 1e-12);
        assert!((pooled_efficiency(&outcomes) - 9.0 / 20.0).abs() < 1e-12);
        assert_eq!(mean_efficiency(&[]), 1.0);
        assert_eq!(pooled_efficiency(&[]), 1.0);
    }
}
