//! Per-shard scratch state and the shard dispatch loop.
//!
//! The experiment's sharded phases (server ticking, node-manager sampling)
//! run one closure per shard over disjoint `&mut` slices of the cluster.
//! Each shard writes everything it produces — finished processes, decision
//! trace lines, deferred control-plane effects — into its own
//! [`ShardScratch`], and the coordinator replays those buffers *in shard
//! order* at the epoch barrier. Shards are contiguous server-index ranges
//! ([`perfcloud_sim::shard::partition`]), so shard-order replay equals
//! global server-index order and the merged outcome is byte-identical to
//! the sequential loop at any shard count.

use crate::trace::DecisionTrace;
use perfcloud_core::{AppId, StepReport};
use perfcloud_host::FinishedProcess;

/// A control-plane side effect a shard deferred to the epoch barrier.
///
/// Shard workers never touch the `ControlPlane` (it is shared, and its
/// network draws RNG); they queue effects here in the exact order the
/// sequential loop would have issued them, and the coordinator replays the
/// queues in shard order.
#[derive(Debug)]
pub enum ShardEffect {
    /// Server `i`'s agent restarted: clear its stall window.
    ClearStall(usize),
    /// Server `i` observed colocated high-priority apps: notify the
    /// coordinator over the control network.
    Colocation(usize, Vec<AppId>),
}

/// One shard's reusable buffers, refilled every phase.
#[derive(Debug, Default)]
pub struct ShardScratch {
    /// Node-manager step report buffer (one per shard, like the sequential
    /// loop's single reused buffer).
    pub report: StepReport,
    /// Decision-trace fragment for this shard's servers this interval.
    pub trace: DecisionTrace,
    /// `(server index, finished process)` pairs from the tick phase, in
    /// server-index order within the shard.
    pub finished: Vec<(usize, FinishedProcess)>,
    /// Deferred control-plane effects from the sampling phase, in issue
    /// order.
    pub effects: Vec<ShardEffect>,
    /// High-water mark of deferred work queued at any single barrier —
    /// the shard's cross-shard traffic burst size.
    pub queue_peak_depth: usize,
    /// Total microseconds this shard spent waiting at barriers for the
    /// slowest shard of its dispatch (0 when running sequentially).
    pub barrier_wait_us: u64,
}

impl ShardScratch {
    /// Records the depth of the deferred-effect queue at a barrier.
    pub fn note_queue_depth(&mut self, depth: usize) {
        self.queue_peak_depth = self.queue_peak_depth.max(depth);
    }
}

/// Runs `f` once per shard task, threaded when `threaded` (one scoped
/// worker per task) and inline in shard order otherwise. Returns per-shard
/// barrier wait in microseconds: how long each worker idled between
/// finishing its shard and the slowest worker finishing (all zero for the
/// sequential path, where no one waits).
///
/// Sequential execution in ascending shard order is the determinism
/// baseline; the threaded path is byte-identical because tasks are
/// disjoint and all cross-shard work is deferred into the tasks' scratch.
pub fn for_each_shard<T: Send>(
    threaded: bool,
    tasks: &mut [T],
    f: impl Fn(usize, &mut T) + Sync,
) -> Vec<u64> {
    let n = tasks.len();
    if !threaded || n <= 1 {
        for (s, t) in tasks.iter_mut().enumerate() {
            f(s, t);
        }
        return vec![0; n];
    }
    let mut elapsed = vec![0u64; n];
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .iter_mut()
            .enumerate()
            .map(|(s, t)| {
                let f = &f;
                scope.spawn(move || {
                    let start = std::time::Instant::now();
                    f(s, t);
                    start.elapsed().as_micros() as u64
                })
            })
            .collect();
        for (s, h) in handles.into_iter().enumerate() {
            elapsed[s] = h.join().expect("shard worker panicked");
        }
    });
    let slowest = elapsed.iter().copied().max().unwrap_or(0);
    elapsed.iter().map(|&e| slowest - e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_dispatch_runs_in_shard_order() {
        let mut tasks: Vec<Vec<usize>> = vec![Vec::new(); 4];
        let waits = for_each_shard(false, &mut tasks, |s, t| t.push(s));
        assert_eq!(waits, vec![0; 4]);
        for (s, t) in tasks.iter().enumerate() {
            assert_eq!(t, &vec![s]);
        }
    }

    #[test]
    fn threaded_dispatch_reaches_every_task() {
        let mut tasks: Vec<u64> = vec![0; 7];
        let waits = for_each_shard(true, &mut tasks, |s, t| *t = (s as u64 + 1) * 10);
        assert_eq!(waits.len(), 7);
        assert!(waits.contains(&0), "the slowest shard waits zero");
        assert_eq!(tasks, vec![10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn queue_depth_tracks_high_water() {
        let mut s = ShardScratch::default();
        s.note_queue_depth(3);
        s.note_queue_depth(1);
        assert_eq!(s.queue_peak_depth, 3);
    }
}
