//! Declarative antagonist placements.
//!
//! Experiments describe antagonists as data — which workload, which server,
//! when it starts, how long it runs — so repetitions and random placements
//! (Figs. 11–12) are reproducible from a seed.

use perfcloud_host::Process;
use perfcloud_sim::{SimDuration, SimTime};
use perfcloud_workloads::{FioRandRead, Stream, SysbenchCpu, SysbenchOltp};

/// Which antagonist workload to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AntagonistKind {
    /// fio random read with the default saturating rate.
    Fio,
    /// fio random read with an explicit submission rate (ops/s).
    FioRate(f64),
    /// STREAM with the paper's 8 threads / 16 GB array.
    Stream,
    /// STREAM with an explicit thread count.
    StreamThreads(u32),
    /// The Fig. 6 variant: individually mild, jointly saturating.
    StreamMild,
    /// sysbench OLTP read-only (8 threads, 120 s).
    SysbenchOltp,
    /// sysbench CPU (4 threads, primes up to 12 M).
    SysbenchCpu,
}

impl AntagonistKind {
    /// Instantiates the workload process with natural rate variability
    /// seeded by `seed` (so placements are reproducible yet distinct).
    pub fn spawn(&self, duration: Option<SimDuration>, seed: u64) -> Box<dyn Process> {
        match *self {
            AntagonistKind::Fio => Box::new(FioRandRead::new(duration).with_modulation(seed)),
            AntagonistKind::FioRate(rate) => {
                Box::new(FioRandRead::with_rate(rate, 4096.0, duration).with_modulation(seed))
            }
            AntagonistKind::Stream => Box::new(Stream::new(duration).with_modulation(seed)),
            AntagonistKind::StreamThreads(t) => {
                Box::new(Stream::with_threads(t, 16.0e9, duration).with_modulation(seed))
            }
            AntagonistKind::StreamMild => {
                Box::new(Stream::new(duration).with_intensity(0.04).with_modulation(seed))
            }
            AntagonistKind::SysbenchOltp => Box::new(SysbenchOltp::new().with_modulation(seed)),
            AntagonistKind::SysbenchCpu => Box::new(SysbenchCpu::new()),
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            AntagonistKind::Fio | AntagonistKind::FioRate(_) => "fio-randread",
            AntagonistKind::Stream
            | AntagonistKind::StreamThreads(_)
            | AntagonistKind::StreamMild => "stream",
            AntagonistKind::SysbenchOltp => "sysbench-oltp",
            AntagonistKind::SysbenchCpu => "sysbench-cpu",
        }
    }

    /// True for the workloads that contend on disk I/O.
    pub fn is_io_antagonist(&self) -> bool {
        matches!(self, AntagonistKind::Fio | AntagonistKind::FioRate(_))
    }

    /// True for the workloads that contend on LLC/memory bandwidth.
    pub fn is_memory_antagonist(&self) -> bool {
        matches!(
            self,
            AntagonistKind::Stream | AntagonistKind::StreamThreads(_) | AntagonistKind::StreamMild
        )
    }
}

/// A placed antagonist: workload + server + lifetime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AntagonistPlacement {
    /// Workload kind.
    pub kind: AntagonistKind,
    /// Server index to place the VM on.
    pub server_idx: usize,
    /// When the workload starts.
    pub start: SimTime,
    /// Optional run length; `None` = runs for the whole experiment.
    pub duration: Option<SimDuration>,
    /// Placements sharing a seed group get identical modulation patterns —
    /// instances of the same benchmark started together exhibit similar
    /// phase behaviour (the paper's two STREAM VMs in Fig. 6).
    pub seed_group: Option<u64>,
}

impl AntagonistPlacement {
    /// A placement starting at time zero and running forever.
    pub fn pinned(kind: AntagonistKind, server_idx: usize) -> Self {
        AntagonistPlacement {
            kind,
            server_idx,
            start: SimTime::ZERO,
            duration: None,
            seed_group: None,
        }
    }

    /// Same placement, sharing a modulation seed group with others.
    pub fn in_seed_group(mut self, group: u64) -> Self {
        self.seed_group = Some(group);
        self
    }

    /// Same placement with a delayed start.
    pub fn starting_at(mut self, start: SimTime) -> Self {
        self.start = start;
        self
    }

    /// Same placement with the start deferred past any horizon: the VM is
    /// booted but its workload never spawns. Fork-point sweeps build the
    /// parent this way and let each fork pick the onset with
    /// [`crate::Experiment::start_antagonist`].
    pub fn deferred(mut self) -> Self {
        self.start = SimTime::MAX;
        self
    }

    /// Same placement with a bounded run length.
    pub fn lasting(mut self, duration: SimDuration) -> Self {
        self.duration = Some(duration);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_spawn_their_workloads() {
        assert_eq!(AntagonistKind::Fio.spawn(None, 1).label(), "fio-randread");
        assert_eq!(AntagonistKind::Stream.spawn(None, 2).label(), "stream");
        assert_eq!(AntagonistKind::SysbenchOltp.spawn(None, 3).label(), "sysbench-oltp");
        assert_eq!(AntagonistKind::SysbenchCpu.spawn(None, 4).label(), "sysbench-cpu");
    }

    #[test]
    fn resource_classification() {
        assert!(AntagonistKind::Fio.is_io_antagonist());
        assert!(!AntagonistKind::Fio.is_memory_antagonist());
        assert!(AntagonistKind::Stream.is_memory_antagonist());
        assert!(!AntagonistKind::SysbenchCpu.is_io_antagonist());
        assert!(!AntagonistKind::SysbenchOltp.is_memory_antagonist());
    }

    #[test]
    fn placement_builders() {
        let p = AntagonistPlacement::pinned(AntagonistKind::Fio, 3)
            .starting_at(SimTime::from_secs(15))
            .lasting(SimDuration::from_secs(60.0));
        assert_eq!(p.server_idx, 3);
        assert_eq!(p.start, SimTime::from_secs(15));
        assert_eq!(p.duration, Some(SimDuration::from_secs(60.0)));
    }
}
