//! Multi-server cloud assembly and the paper's experiment machinery.
//!
//! This crate glues the substrates together into runnable experiments:
//!
//! * [`topology`] — builds virtual Hadoop clusters: worker VMs spread over
//!   physical servers, registered with the cloud manager (the paper's
//!   12-node single-server and 152-node / 15-server setups);
//! * [`antagonists`] — declarative antagonist placements (which VM, which
//!   server, which workload, when);
//! * [`experiment`] — the driver loop: ticks servers, runs the framework
//!   scheduler, fires the per-server node managers every sampling interval,
//!   and collects results (one [`Mitigation`] strategy per run);
//! * [`placement`] — the interference-aware placement runtime: feeds
//!   identify verdicts into the `place` crate's decayed ledger and
//!   executes policy-proposed live migrations through the control plane;
//! * [`mix`] — the large-scale workload mixes (100 MapReduce + 100 Spark
//!   jobs, 80% small) of §IV-C;
//! * [`metrics`] — normalized JCT, degradation breakdowns and
//!   resource-utilization efficiency, as reported in Figs. 11–12.

pub mod antagonists;
pub mod experiment;
pub mod labels;
pub mod metrics;
pub mod mix;
pub mod placement;
pub mod shard;
pub mod topology;
pub mod trace;

pub use antagonists::{AntagonistKind, AntagonistPlacement};
pub use experiment::{Experiment, ExperimentConfig, ExperimentResult, Mitigation, TelemetrySpec};
pub use labels::{parse_trace, GroundTruth, StepObservation, TruthEntry};
pub use metrics::{mean_efficiency, normalize_jcts, DegradationBreakdown};
pub use mix::{MixConfig, WorkloadMix};
pub use placement::PlacementRuntime;
pub use topology::{ClusterSpec, Testbed};
pub use trace::DecisionTrace;
