//! Large-scale workload mixes (§IV-C).
//!
//! The paper drives its 152-node experiments with "two workload mixes of 100
//! MapReduce and 100 Spark benchmarks", where "80% of the MapReduce jobs
//! have less than 10 map/reduce tasks, and 20% of the jobs have 10 to 50
//! tasks" (and likewise for Spark tasks-per-stage) — echoing the Facebook
//! production finding that over 80% of jobs are small. Job sizes, benchmark
//! choices, arrival times and antagonist placements all derive
//! deterministically from the run's seed.

use crate::antagonists::{AntagonistKind, AntagonistPlacement};
use perfcloud_frameworks::{Benchmark, JobSpec};
use perfcloud_sim::{RngFactory, SimTime};
use rand::Rng;

/// Parameters of a workload mix.
#[derive(Debug, Clone, PartialEq)]
pub struct MixConfig {
    /// Number of MapReduce jobs.
    pub mapreduce_jobs: usize,
    /// Number of Spark jobs.
    pub spark_jobs: usize,
    /// Fraction of jobs that are small (< 10 tasks).
    pub small_fraction: f64,
    /// Mean gap between consecutive job arrivals, seconds.
    pub mean_arrival_gap: f64,
    /// Number of servers to scatter antagonists over.
    pub servers: usize,
    /// Number of fio antagonists to place at random servers.
    pub fio_antagonists: usize,
    /// Number of STREAM antagonists to place at random servers.
    pub stream_antagonists: usize,
}

impl MixConfig {
    /// The paper's mix: 100 + 100 jobs, 80% small, over 15 servers.
    pub fn paper(servers: usize) -> Self {
        MixConfig {
            mapreduce_jobs: 100,
            spark_jobs: 100,
            small_fraction: 0.8,
            mean_arrival_gap: 12.0,
            servers,
            fio_antagonists: servers / 3,
            stream_antagonists: servers / 3,
        }
    }

    /// A scaled-down mix for tests and quick runs.
    pub fn scaled(self, factor: f64) -> Self {
        MixConfig {
            mapreduce_jobs: ((self.mapreduce_jobs as f64 * factor).round() as usize).max(1),
            spark_jobs: ((self.spark_jobs as f64 * factor).round() as usize).max(1),
            ..self
        }
    }
}

/// A generated mix: job submissions plus antagonist placements.
#[derive(Debug, Clone)]
pub struct WorkloadMix {
    /// Jobs with their arrival times, ascending.
    pub jobs: Vec<(SimTime, JobSpec)>,
    /// Antagonists scattered over the servers.
    pub antagonists: Vec<AntagonistPlacement>,
}

impl WorkloadMix {
    /// Generates the mix deterministically from `rng`.
    pub fn generate(config: &MixConfig, rng: &RngFactory) -> Self {
        assert!(config.servers >= 1);
        let mut size_rng = rng.stream("mix/sizes");
        let mut bench_rng = rng.stream("mix/benchmarks");
        let mut arrival_rng = rng.stream("mix/arrivals");
        let mut place_rng = rng.stream("mix/placement");

        let mut jobs = Vec::new();
        let mut t = 0.0f64;
        let total = config.mapreduce_jobs + config.spark_jobs;
        for k in 0..total {
            let is_spark = k >= config.mapreduce_jobs;
            let family = if is_spark { Benchmark::SPARK } else { Benchmark::MAPREDUCE };
            let bench = family[bench_rng.gen_range(0..family.len())];
            let tasks = if size_rng.gen::<f64>() < config.small_fraction {
                size_rng.gen_range(2..10)
            } else {
                size_rng.gen_range(10..=50)
            };
            // Exponential-ish arrival gaps from a uniform draw.
            let u: f64 = arrival_rng.gen::<f64>().max(1e-9);
            t += -config.mean_arrival_gap * u.ln();
            jobs.push((SimTime::from_secs_f64(t), bench.job(tasks)));
        }
        jobs.sort_by_key(|(at, _)| *at);

        let mut antagonists = Vec::new();
        for _ in 0..config.fio_antagonists {
            let s = place_rng.gen_range(0..config.servers);
            antagonists.push(AntagonistPlacement::pinned(AntagonistKind::Fio, s));
        }
        for _ in 0..config.stream_antagonists {
            let s = place_rng.gen_range(0..config.servers);
            antagonists.push(AntagonistPlacement::pinned(AntagonistKind::Stream, s));
        }
        WorkloadMix { jobs, antagonists }
    }

    /// Interference-free baseline JCTs: the set of distinct job specs in
    /// this mix (by name), for solo-baseline measurement.
    pub fn distinct_specs(&self) -> Vec<JobSpec> {
        let mut seen = std::collections::HashSet::new();
        self.jobs
            .iter()
            .filter(|(_, s)| seen.insert(s.name.clone()))
            .map(|(_, s)| s.clone())
            .collect()
    }

    /// Shifts every antagonist to a random start within `window`, modelling
    /// the paper's re-randomized placement per repetition.
    pub fn stagger_antagonists(&mut self, rng: &RngFactory, window: f64) {
        let mut r = rng.stream("mix/antagonist-starts");
        for a in &mut self.antagonists {
            *a = a.starting_at(SimTime::from_secs_f64(r.gen::<f64>() * window));
        }
    }

    /// Total task count across jobs.
    pub fn total_tasks(&self) -> usize {
        self.jobs.iter().map(|(_, s)| s.task_count()).sum()
    }
}

/// Scales every job duration knob for fast smoke runs: fewer jobs, smaller
/// arrival spread. Used by tests and the quickstart example.
pub fn tiny_mix(seed: u64, servers: usize) -> WorkloadMix {
    let cfg = MixConfig {
        mapreduce_jobs: 3,
        spark_jobs: 3,
        small_fraction: 0.8,
        mean_arrival_gap: 5.0,
        servers,
        fio_antagonists: 1,
        stream_antagonists: 1,
    };
    WorkloadMix::generate(&cfg, &RngFactory::new(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_shape() {
        let cfg = MixConfig::paper(15);
        let mix = WorkloadMix::generate(&cfg, &RngFactory::new(1));
        assert_eq!(mix.jobs.len(), 200);
        let small = mix.jobs.iter().filter(|(_, s)| s.max_tasks_per_stage() < 10).count();
        let frac = small as f64 / mix.jobs.len() as f64;
        assert!((0.70..0.90).contains(&frac), "small fraction {frac}");
        assert_eq!(mix.antagonists.len(), 10);
        // Arrivals are sorted.
        for w in mix.jobs.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn sizes_bounded_as_specified() {
        let mix = WorkloadMix::generate(&MixConfig::paper(15), &RngFactory::new(5));
        for (_, s) in &mix.jobs {
            let t = s.max_tasks_per_stage();
            assert!((2..=50).contains(&t), "size {t} out of range");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = MixConfig::paper(15);
        let a = WorkloadMix::generate(&cfg, &RngFactory::new(9));
        let b = WorkloadMix::generate(&cfg, &RngFactory::new(9));
        assert_eq!(a.jobs.len(), b.jobs.len());
        for ((ta, sa), (tb, sb)) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(ta, tb);
            assert_eq!(sa.name, sb.name);
        }
        let c = WorkloadMix::generate(&cfg, &RngFactory::new(10));
        let same =
            a.jobs.iter().zip(&c.jobs).all(|((ta, sa), (tc, sc))| ta == tc && sa.name == sc.name);
        assert!(!same, "different seeds must differ");
    }

    #[test]
    fn mapreduce_and_spark_split() {
        let mix = WorkloadMix::generate(&MixConfig::paper(15), &RngFactory::new(2));
        let spark = mix
            .jobs
            .iter()
            .filter(|(_, s)| Benchmark::SPARK.iter().any(|b| s.name.starts_with(b.name())))
            .count();
        assert_eq!(spark, 100);
    }

    #[test]
    fn antagonists_land_on_valid_servers() {
        let mix = WorkloadMix::generate(&MixConfig::paper(15), &RngFactory::new(3));
        for a in &mix.antagonists {
            assert!(a.server_idx < 15);
        }
    }

    #[test]
    fn stagger_moves_starts_within_window() {
        let mut mix = tiny_mix(4, 3);
        mix.stagger_antagonists(&RngFactory::new(4), 100.0);
        for a in &mix.antagonists {
            assert!(a.start <= SimTime::from_secs(100));
        }
    }

    #[test]
    fn distinct_specs_dedup_by_name() {
        let mix = tiny_mix(8, 2);
        let d = mix.distinct_specs();
        let mut names: Vec<_> = d.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), d.len());
        assert!(d.len() <= mix.jobs.len());
    }

    #[test]
    fn scaled_mix_shrinks() {
        let cfg = MixConfig::paper(15).scaled(0.1);
        assert_eq!(cfg.mapreduce_jobs, 10);
        assert_eq!(cfg.spark_jobs, 10);
    }
}
