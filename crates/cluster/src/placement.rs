//! The placement runtime: the experiment-side executor that closes the
//! loop from identify verdicts to live migrations.
//!
//! [`PlacementRuntime`] owns the pieces the `place` crate deliberately
//! leaves to the driver: the interference ledger fed by node-manager
//! identify results, the in-flight migration list, and the hysteresis
//! bookkeeping (per-VM cooldown, cluster-wide concurrency cap). All of it
//! runs on the coordinator side of the shard barrier — verdicts are read
//! after the sampling phase rejoins, server loads are scanned in index
//! order, and every mutation (pause, extract/insert, registry move, CPU
//! tax) happens between ticks — so a run with placement enabled is as
//! shard- and thread-invariant as one without.
//!
//! Only low-priority VMs are ever proposed or moved: the framework
//! scheduler addresses its workers by `(server_idx, vm)` and worker VMs
//! must stay put. The registry move (`CloudManager::migrate`) is published
//! to node managers through the epoch'd control plane at the next
//! sampling interval, exactly like any other placement change.

use perfcloud_core::{CloudManager, NodeManager};
use perfcloud_ctrl::{ControlPlane, MigrationAnnouncement};
use perfcloud_host::{PhysicalServer, Priority, ServerId, VmId};
use perfcloud_place::{
    ActiveMigration, InterferenceHistory, MigrationCandidate, MigrationModel, PlacementConfig,
    PlacementCtx, PlacementPolicy, ServerLoad, UsageVector,
};
use perfcloud_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

use perfcloud_core::VmMetricKind;

/// One in-flight migration plus its driver-side progress flag.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    migration: ActiveMigration,
    /// Whether the stop-and-copy freeze has been applied and announced.
    stopped: bool,
}

/// Executes placement decisions for one experiment run.
#[derive(Clone)]
pub struct PlacementRuntime {
    policy: Box<dyn PlacementPolicy + Send>,
    model: MigrationModel,
    cooldown: SimDuration,
    max_active: usize,
    history: InterferenceHistory,
    active: Vec<Inflight>,
    /// Migration start instants per VM (cooldown hysteresis) and per-VM
    /// start counts (ping-pong assertions in tests).
    last_start: BTreeMap<VmId, SimTime>,
    starts: BTreeMap<VmId, u64>,
    /// Scratch buffers reused every sampling interval.
    loads: Vec<ServerLoad>,
    candidates: Vec<MigrationCandidate>,
}

impl std::fmt::Debug for PlacementRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlacementRuntime")
            .field("policy", &self.policy.name())
            .field("active", &self.active.len())
            .field("history", &self.history)
            .finish_non_exhaustive()
    }
}

impl PlacementRuntime {
    /// Builds the runtime from its configuration.
    pub fn new(config: &PlacementConfig) -> Self {
        config.model.validate();
        assert!(config.max_active >= 1, "max_active must be at least 1");
        PlacementRuntime {
            policy: config.policy.build(),
            model: config.model,
            cooldown: config.cooldown,
            max_active: config.max_active,
            history: InterferenceHistory::new(),
            active: Vec::new(),
            last_start: BTreeMap::new(),
            starts: BTreeMap::new(),
            loads: Vec::new(),
            candidates: Vec::new(),
        }
    }

    /// The deciding policy's stable name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Total migrations started over the run.
    pub fn migrations_started(&self) -> u64 {
        self.starts.values().sum()
    }

    /// Migration starts of one VM — the ping-pong/hysteresis probe.
    pub fn starts_of(&self, vm: VmId) -> u64 {
        self.starts.get(&vm).copied().unwrap_or(0)
    }

    /// In-flight migration count.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// The decayed interference ledger.
    pub fn history(&self) -> &InterferenceHistory {
        &self.history
    }

    /// Advances in-flight migrations to `now`: applies the stop-and-copy
    /// freeze when pre-copy ends, and completes the move — VM extracted
    /// from the source tick order, installed at the destination tail,
    /// unfrozen, registry updated — when the stall ends. Called every tick
    /// *before* servers tick, so a transition applies to the tick that
    /// crosses its deadline.
    pub fn advance(
        &mut self,
        now: SimTime,
        servers: &mut [PhysicalServer],
        cloud: &mut CloudManager,
        plane: &mut ControlPlane,
    ) {
        let mut changed = false;
        let mut k = 0;
        while k < self.active.len() {
            let m = self.active[k].migration;
            if now >= m.done_at {
                let vm = servers[m.from.0 as usize]
                    .extract_vm(m.vm)
                    .expect("migrating VM hosted on source");
                servers[m.to.0 as usize].insert_vm(vm);
                servers[m.to.0 as usize].set_paused(m.vm, false);
                cloud.migrate(m.vm, m.to);
                // The VM's verdict history belonged to the old colocation;
                // it must re-earn a penalty before it can be moved again.
                self.history.forget(m.vm);
                plane.announce_migration(now, m.vm, m.from, m.to, MigrationAnnouncement::Complete);
                self.active.remove(k);
                changed = true;
                continue;
            }
            if now >= m.stop_at && !self.active[k].stopped {
                servers[m.from.0 as usize].set_paused(m.vm, true);
                plane.announce_migration(now, m.vm, m.from, m.to, MigrationAnnouncement::StopCopy);
                self.active[k].stopped = true;
            }
            k += 1;
        }
        if changed {
            self.apply_taxes(servers);
        }
    }

    /// Runs one placement decision round at a sampling instant, after the
    /// node managers stepped: ingest fresh identify verdicts into the
    /// ledger, then — capacity and cooldown permitting — ask the policy
    /// for proposals over the currently placed low-priority VMs and start
    /// the best one.
    pub fn on_sample(
        &mut self,
        now: SimTime,
        node_managers: &[NodeManager],
        servers: &mut [PhysicalServer],
        cloud: &CloudManager,
        plane: &mut ControlPlane,
    ) {
        // Decay covers the elapsed interval; fresh verdicts land on top.
        self.history.decay();
        for nm in node_managers {
            for &(vm, _) in nm.identified() {
                self.history.record_verdict(vm);
            }
        }

        if self.active.len() >= self.max_active {
            return;
        }

        // Per-server loads in index order (ServerId(i) == index i).
        self.loads.clear();
        for (i, server) in servers.iter().enumerate() {
            let nm = &node_managers[i];
            let mut usage = UsageVector::default();
            let ids = server.vm_ids();
            for &vm in &ids {
                usage = usage.plus(&vm_usage(nm, server, vm));
            }
            self.loads.push(ServerLoad {
                usage,
                vms: ids.len(),
                protected: !cloud.apps_on(ServerId(i as u32)).is_empty(),
            });
        }

        // Candidates: placed low-priority VMs that are not mid-flight and
        // are past their cooldown. Workers (high priority) never move.
        self.candidates.clear();
        for i in 0..servers.len() {
            let sid = ServerId(i as u32);
            for vm in cloud.low_priority_on(sid) {
                if self.active.iter().any(|a| a.migration.vm == vm) {
                    continue;
                }
                if self.last_start.get(&vm).is_some_and(|&t| now < t + self.cooldown) {
                    continue;
                }
                self.candidates.push(MigrationCandidate {
                    vm,
                    from: sid,
                    usage: vm_usage(&node_managers[i], &servers[i], vm),
                });
            }
        }
        if self.candidates.is_empty() {
            return;
        }

        let ctx = PlacementCtx { servers: &self.loads, history: &self.history };
        let proposals = self.policy.propose(&self.candidates, &ctx);
        // Best gain wins; ties break to the lowest VM id so the decision
        // is independent of proposal order.
        let Some(best) = proposals.iter().copied().reduce(|a, b| {
            if (b.gain, std::cmp::Reverse(b.vm)) > (a.gain, std::cmp::Reverse(a.vm)) {
                b
            } else {
                a
            }
        }) else {
            return;
        };

        let source = &servers[best.from.0 as usize];
        debug_assert_eq!(source.priority(best.vm), Some(Priority::Low));
        let mem = source.vm_config(best.vm).expect("candidate hosted on source").memory_bytes;
        let migration = ActiveMigration::begin(best.vm, best.from, best.to, now, &self.model, mem);
        plane.announce_migration(now, best.vm, best.from, best.to, MigrationAnnouncement::Start);
        self.last_start.insert(best.vm, now);
        *self.starts.entry(best.vm).or_insert(0) += 1;
        self.active.push(Inflight { migration, stopped: false });
        self.apply_taxes(servers);
    }

    /// Re-derives every server's migration CPU tax from the in-flight set
    /// (both endpoints of each migration pay `cpu_tax_cores`).
    fn apply_taxes(&self, servers: &mut [PhysicalServer]) {
        let mut tax = vec![0.0f64; servers.len()];
        for a in &self.active {
            tax[a.migration.from.0 as usize] += self.model.cpu_tax_cores;
            tax[a.migration.to.0 as usize] += self.model.cpu_tax_cores;
        }
        for (server, t) in servers.iter_mut().zip(tax) {
            server.set_migration_load(t);
        }
    }
}

/// A VM's current demand profile as its node manager's monitor sees it:
/// CPU cores against the server's core count, disk bytes/s against the
/// device's effective sequential bandwidth. No samples yet (or a paused
/// VM with missing latest values) reads as a zero vector.
fn vm_usage(nm: &NodeManager, server: &PhysicalServer, vm: VmId) -> UsageVector {
    let monitor = nm.monitor();
    let cpu = monitor.latest_present(vm, VmMetricKind::CpuCores).unwrap_or(0.0);
    let disk = monitor.latest_present(vm, VmMetricKind::IoBps).unwrap_or(0.0);
    let cfg = server.config();
    UsageVector::normalized(cpu, cfg.cores as f64, disk, cfg.disk.max_seq_bps * cfg.speed_factor)
}
