//! Property: the pipeline seam is wiring, not behaviour.
//!
//! Two invariants of the [`ExperimentConfig::pipeline`] plumbing, for
//! *arbitrary* seeds, fault schedules, and shard counts — not just the
//! golden scenarios:
//!
//! 1. Spelling the default out loud changes nothing: a run with the
//!    implicit `PipelineSpec::default()` and a run with an explicit
//!    `PipelineSpec::paper()` produce the same [`ExperimentResult`] and the
//!    same canonical decision-trace bytes.
//! 2. The spec only applies under PerfCloud mitigation: under any other
//!    strategy the node managers are monitoring-only paper pipelines, so an
//!    exotic alioth/panda spec must leave those runs byte-identical too —
//!    an alternative detector must never leak into the baselines the
//!    figures compare against.
//!
//! Together with the per-step parity properties in
//! `perfcloud-core/tests/pipeline_parity.rs` and the byte-pinned golden
//! suite, this closes the refactor-equivalence argument at every level.

use perfcloud_cluster::{
    AntagonistKind, AntagonistPlacement, ClusterSpec, Experiment, ExperimentConfig, Mitigation,
};
use perfcloud_core::{DetectorKind, IdentifierKind, PerfCloudConfig, PipelineSpec};
use perfcloud_frameworks::Benchmark;
use perfcloud_sim::{FaultKind, FaultRule, FaultScenario, SimTime};
use proptest::prelude::*;

/// One fuzzed fault rule: (kind tag, window start, window length, firing
/// probability), as in the observability-purity suite.
type RuleSpec = (u8, u16, u16, f64);

fn decode_kind(tag: u8) -> FaultKind {
    match tag % 8 {
        0 => FaultKind::DropSample,
        1 => FaultKind::DelaySample { intervals: 1 + u32::from(tag) % 3 },
        2 => FaultKind::DuplicateSample,
        3 => FaultKind::CorruptNaN,
        4 => FaultKind::CorruptSpike { factor: 30.0 },
        5 => FaultKind::CorruptStuckAt,
        6 => FaultKind::StallManager { intervals: 2 },
        _ => FaultKind::CrashRestart,
    }
}

fn scenario(rules: &[RuleSpec]) -> Option<FaultScenario> {
    if rules.is_empty() {
        return None;
    }
    let mut s = FaultScenario::named("pipeline-equivalence");
    for (i, &(tag, start, len, prob)) in rules.iter().enumerate() {
        let from = 10 + u64::from(start);
        let until = from + 5 + u64::from(len);
        s = s.rule(
            FaultRule::new(format!("r{i}"), decode_kind(tag))
                .window(SimTime::from_secs(from), SimTime::from_secs(until))
                .with_probability(prob),
        );
    }
    Some(s)
}

fn run(
    seed: u64,
    rules: &[RuleSpec],
    shards: usize,
    mitigation: Mitigation,
    pipeline: PipelineSpec,
) -> (perfcloud_cluster::ExperimentResult, String) {
    let mut cfg = ExperimentConfig::new(ClusterSpec::small_scale(seed), mitigation);
    cfg.jobs.push((SimTime::from_secs(5), Benchmark::Terasort.job(8)));
    cfg.antagonists.push(
        AntagonistPlacement::pinned(AntagonistKind::Fio, 0).starting_at(SimTime::from_secs(15)),
    );
    cfg.max_sim_time = SimTime::from_secs(3_600);
    cfg.faults = scenario(rules);
    cfg.pipeline = pipeline;
    let mut e = Experiment::build(cfg);
    e.set_shards(shards);
    e.enable_decision_trace();
    let result = e.run();
    let trace = e.decision_trace().expect("trace enabled").canonical();
    (result, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn explicit_paper_spec_is_the_default(
        seed in 0u64..1_000_000,
        rules in proptest::collection::vec((0u8..8, 0u16..120, 0u16..120, 0.05f64..0.9), 0..4),
        shards in 1usize..=4,
    ) {
        let mitigation = || Mitigation::PerfCloud(PerfCloudConfig::default());
        let implicit = run(seed, &rules, shards, mitigation(), PipelineSpec::default());
        let explicit = run(seed, &rules, shards, mitigation(), PipelineSpec::paper());
        prop_assert_eq!(&implicit.0, &explicit.0);
        prop_assert_eq!(implicit.1, explicit.1);
    }

    #[test]
    fn pipeline_spec_is_inert_outside_perfcloud(
        seed in 0u64..1_000_000,
        rules in proptest::collection::vec((0u8..8, 0u16..120, 0u16..120, 0.05f64..0.9), 0..4),
        shards in 1usize..=4,
    ) {
        let exotic = PipelineSpec {
            detector: DetectorKind::Alioth,
            identifier: IdentifierKind::Panda,
        };
        let base = run(seed, &rules, shards, Mitigation::Default, PipelineSpec::default());
        let with_spec = run(seed, &rules, shards, Mitigation::Default, exotic);
        prop_assert_eq!(&base.0, &with_spec.0);
        prop_assert_eq!(base.1, with_spec.1);
    }
}
