//! Property: in-run sharding never changes a decision.
//!
//! Partitioning the cluster into S shards with epoch-barrier effect replay
//! must be a pure execution strategy: for *arbitrary* seeds and arbitrary
//! fault schedules — not just the golden scenarios — running the same
//! experiment at S ∈ {2, 3, 4, 7} shards (sequentially or on forced worker
//! threads) must produce an [`ExperimentResult`] and canonical
//! decision-trace bytes identical to the single-shard reference. Any shard
//! closure that reads live control-plane state instead of the barrier
//! snapshot, or any replay that deviates from shard order, fails here
//! immediately.

use perfcloud_cluster::{
    AntagonistKind, AntagonistPlacement, ClusterSpec, Experiment, ExperimentConfig, Mitigation,
};
use perfcloud_core::PerfCloudConfig;
use perfcloud_frameworks::Benchmark;
use perfcloud_sim::{FaultKind, FaultRule, FaultScenario, SimTime};
use proptest::prelude::*;

/// One fuzzed fault rule: (kind tag, window start, window length, firing
/// probability). Times are in seconds, offset into the run.
type RuleSpec = (u8, u16, u16, f64);

fn decode_kind(tag: u8) -> FaultKind {
    match tag % 8 {
        0 => FaultKind::DropSample,
        1 => FaultKind::DelaySample { intervals: 1 + u32::from(tag) % 3 },
        2 => FaultKind::DuplicateSample,
        3 => FaultKind::CorruptNaN,
        4 => FaultKind::CorruptSpike { factor: 30.0 },
        5 => FaultKind::CorruptStuckAt,
        6 => FaultKind::StallManager { intervals: 2 },
        _ => FaultKind::CrashRestart,
    }
}

fn scenario(rules: &[RuleSpec]) -> Option<FaultScenario> {
    if rules.is_empty() {
        return None;
    }
    let mut s = FaultScenario::named("shard-invariance");
    for (i, &(tag, start, len, prob)) in rules.iter().enumerate() {
        let from = 10 + u64::from(start);
        let until = from + 5 + u64::from(len);
        s = s.rule(
            FaultRule::new(format!("r{i}"), decode_kind(tag))
                .window(SimTime::from_secs(from), SimTime::from_secs(until))
                .with_probability(prob),
        );
    }
    Some(s)
}

fn build(seed: u64, rules: &[RuleSpec], shards: usize, threads: bool) -> Experiment {
    let mut cfg = ExperimentConfig::new(
        ClusterSpec::small_scale(seed),
        Mitigation::PerfCloud(PerfCloudConfig::default()),
    );
    cfg.jobs.push((SimTime::from_secs(5), Benchmark::Terasort.job(8)));
    cfg.antagonists.push(
        AntagonistPlacement::pinned(AntagonistKind::Fio, 0).starting_at(SimTime::from_secs(15)),
    );
    cfg.max_sim_time = SimTime::from_secs(3_600);
    cfg.faults = scenario(rules);
    let mut e = Experiment::build(cfg);
    e.enable_decision_trace();
    e.set_shards(shards);
    if threads {
        // Force scoped worker threads even below the per-shard server
        // threshold — the threaded path must be byte-identical too.
        e.set_shard_threads(Some(true));
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn shard_count_never_changes_decisions(
        seed in 0u64..1_000_000,
        rules in proptest::collection::vec((0u8..8, 0u16..120, 0u16..120, 0.05f64..0.9), 0..4),
        shard_pick in 0usize..4,
        threads_tag in 0u8..2,
    ) {
        let shards = [2usize, 3, 4, 7][shard_pick];
        let threads = threads_tag == 1;
        let mut reference = build(seed, &rules, 1, false);
        let r_ref = reference.run();
        let mut sharded = build(seed, &rules, shards, threads);
        let r_sharded = sharded.run();
        prop_assert_eq!(&r_ref, &r_sharded);
        prop_assert_eq!(
            reference.decision_trace().expect("trace enabled").canonical(),
            sharded.decision_trace().expect("trace enabled").canonical()
        );
    }
}

/// The migration testbed: two populated servers plus a spare, so the
/// placement runtime has headroom, workers spread over two shards'
/// worth of servers, and the antagonist is live-migrated mid-run.
fn build_migration(seed: u64, shards: usize, threads: bool, hybrid: bool) -> Experiment {
    use perfcloud_place::PlacementConfig;
    let mitigation = if hybrid {
        Mitigation::Hybrid(PerfCloudConfig::default(), PlacementConfig::default())
    } else {
        Mitigation::MigrateOnly(PlacementConfig::default())
    };
    let mut cluster = ClusterSpec::small_scale(seed);
    cluster.servers = 3;
    cluster.spare_servers = 1;
    let mut cfg = ExperimentConfig::new(cluster, mitigation);
    cfg.jobs.push((SimTime::from_secs(5), Benchmark::Terasort.job(8)));
    cfg.antagonists.push(
        AntagonistPlacement::pinned(AntagonistKind::Fio, 0).starting_at(SimTime::from_secs(15)),
    );
    cfg.max_sim_time = SimTime::from_secs(3_600);
    let mut e = Experiment::build(cfg);
    e.enable_decision_trace();
    e.set_shards(shards);
    if threads {
        e.set_shard_threads(Some(true));
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Live migration runs on the coordinator between ticks and after the
    /// sampling barrier, so the whole detect → identify → migrate loop —
    /// including the migration announcements in the trace and the final
    /// registry state — must be byte-identical at any shard count, with
    /// or without worker threads, for migrate-only and hybrid alike.
    #[test]
    fn migration_is_shard_and_thread_invariant(
        seed in 0u64..1_000_000,
        shard_pick in 0usize..4,
        threads_tag in 0u8..2,
        hybrid_tag in 0u8..2,
    ) {
        let shards = [2usize, 3, 4, 7][shard_pick];
        let threads = threads_tag == 1;
        let hybrid = hybrid_tag == 1;
        let mut reference = build_migration(seed, 1, false, hybrid);
        let r_ref = reference.run();
        let mut sharded = build_migration(seed, shards, threads, hybrid);
        let r_sharded = sharded.run();
        prop_assert_eq!(&r_ref, &r_sharded);
        prop_assert_eq!(
            reference.decision_trace().expect("trace enabled").canonical(),
            sharded.decision_trace().expect("trace enabled").canonical()
        );
        let migrations = |e: &Experiment| {
            e.placement().expect("placement runtime active").migrations_started()
        };
        prop_assert_eq!(migrations(&reference), migrations(&sharded));
    }
}
