//! Property: observability is pure observation.
//!
//! Attaching flight recorders to every node manager, the control plane and
//! its network must not change a single decision — for *arbitrary* seeds
//! and arbitrary fault schedules, not just the golden scenarios. Each case
//! runs the same experiment twice, recorders off and on, and requires the
//! [`ExperimentResult`] and the canonical decision-trace bytes to be
//! identical. Any recorder hook that consumes randomness, perturbs
//! iteration order, or mutates model state fails here immediately.

use perfcloud_cluster::{
    AntagonistKind, AntagonistPlacement, ClusterSpec, Experiment, ExperimentConfig, Mitigation,
};
use perfcloud_core::PerfCloudConfig;
use perfcloud_frameworks::Benchmark;
use perfcloud_sim::{FaultKind, FaultRule, FaultScenario, SimTime};
use proptest::prelude::*;

/// One fuzzed fault rule: (kind tag, window start, window length, firing
/// probability). Times are in seconds, offset into the run.
type RuleSpec = (u8, u16, u16, f64);

fn decode_kind(tag: u8) -> FaultKind {
    match tag % 8 {
        0 => FaultKind::DropSample,
        1 => FaultKind::DelaySample { intervals: 1 + u32::from(tag) % 3 },
        2 => FaultKind::DuplicateSample,
        3 => FaultKind::CorruptNaN,
        4 => FaultKind::CorruptSpike { factor: 30.0 },
        5 => FaultKind::CorruptStuckAt,
        6 => FaultKind::StallManager { intervals: 2 },
        _ => FaultKind::CrashRestart,
    }
}

fn scenario(rules: &[RuleSpec]) -> Option<FaultScenario> {
    if rules.is_empty() {
        return None;
    }
    let mut s = FaultScenario::named("obs-purity");
    for (i, &(tag, start, len, prob)) in rules.iter().enumerate() {
        let from = 10 + u64::from(start);
        let until = from + 5 + u64::from(len);
        s = s.rule(
            FaultRule::new(format!("r{i}"), decode_kind(tag))
                .window(SimTime::from_secs(from), SimTime::from_secs(until))
                .with_probability(prob),
        );
    }
    Some(s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn recorders_never_change_decisions(
        seed in 0u64..1_000_000,
        rules in proptest::collection::vec((0u8..8, 0u16..120, 0u16..120, 0.05f64..0.9), 0..4),
    ) {
        let build = |observe: bool| {
            let mut cfg = ExperimentConfig::new(
                ClusterSpec::small_scale(seed),
                Mitigation::PerfCloud(PerfCloudConfig::default()),
            );
            cfg.jobs.push((SimTime::from_secs(5), Benchmark::Terasort.job(8)));
            cfg.antagonists.push(
                AntagonistPlacement::pinned(AntagonistKind::Fio, 0)
                    .starting_at(SimTime::from_secs(15)),
            );
            cfg.max_sim_time = SimTime::from_secs(3_600);
            cfg.faults = scenario(&rules);
            let mut e = Experiment::build(cfg);
            e.enable_decision_trace();
            if observe {
                e.enable_observability(1024);
            }
            e
        };
        let mut plain = build(false);
        let r_plain = plain.run();
        let mut observed = build(true);
        let r_obs = observed.run();
        prop_assert_eq!(&r_plain, &r_obs);
        prop_assert_eq!(
            plain.decision_trace().expect("trace enabled").canonical(),
            observed.decision_trace().expect("trace enabled").canonical()
        );
        // And the export itself is a pure function of the run.
        prop_assert_eq!(observed.chrome_trace(), observed.chrome_trace());
    }
}
