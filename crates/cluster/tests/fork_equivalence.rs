//! Property: a forked experiment is byte-identical to a fresh one.
//!
//! [`Experiment::fork`] is only useful if it is *exact*: a run forked at
//! time `t` and then diverged (an antagonist arrival, a cap change) must
//! produce the same [`ExperimentResult`], the same canonical decision-trace
//! bytes, and the same merged flight-export bytes as a fresh run built with
//! the diverged configuration — for arbitrary seeds, arbitrary fault
//! schedules, arbitrary in-run shard counts, and an arbitrary fork tick.
//! Any state the fork fails to deep-copy (an RNG stream position, a monitor
//! window, an in-flight control message) fails here immediately.

use perfcloud_baselines::StaticCapping;
use perfcloud_cluster::{
    AntagonistKind, AntagonistPlacement, ClusterSpec, Experiment, ExperimentConfig, Mitigation,
};
use perfcloud_core::PerfCloudConfig;
use perfcloud_frameworks::Benchmark;
use perfcloud_sim::{FaultKind, FaultRule, FaultScenario, SimTime};
use proptest::prelude::*;

/// One fuzzed fault rule: (kind tag, window start, window length, firing
/// probability). Times are in seconds, offset into the run.
type RuleSpec = (u8, u16, u16, f64);

fn decode_kind(tag: u8) -> FaultKind {
    match tag % 8 {
        0 => FaultKind::DropSample,
        1 => FaultKind::DelaySample { intervals: 1 + u32::from(tag) % 3 },
        2 => FaultKind::DuplicateSample,
        3 => FaultKind::CorruptNaN,
        4 => FaultKind::CorruptSpike { factor: 30.0 },
        5 => FaultKind::CorruptStuckAt,
        6 => FaultKind::StallManager { intervals: 2 },
        _ => FaultKind::CrashRestart,
    }
}

fn scenario(rules: &[RuleSpec]) -> Option<FaultScenario> {
    if rules.is_empty() {
        return None;
    }
    let mut s = FaultScenario::named("fork-equivalence");
    for (i, &(tag, start, len, prob)) in rules.iter().enumerate() {
        let from = 10 + u64::from(start);
        let until = from + 5 + u64::from(len);
        s = s.rule(
            FaultRule::new(format!("r{i}"), decode_kind(tag))
                .window(SimTime::from_secs(from), SimTime::from_secs(until))
                .with_probability(prob),
        );
    }
    Some(s)
}

/// Builds the standard scenario. The antagonist's start is the divergence
/// axis: `None` defers it past the horizon (the fork-parent shape), `Some`
/// pins the onset (the fresh-run shape).
fn build(
    seed: u64,
    rules: &[RuleSpec],
    shards: usize,
    antagonist_start: Option<SimTime>,
) -> Experiment {
    let mut cfg = ExperimentConfig::new(
        ClusterSpec::small_scale(seed),
        Mitigation::PerfCloud(PerfCloudConfig::default()),
    );
    cfg.jobs.push((SimTime::from_secs(5), Benchmark::Terasort.job(8)));
    let placement = AntagonistPlacement::pinned(AntagonistKind::Fio, 0);
    cfg.antagonists.push(match antagonist_start {
        Some(at) => placement.starting_at(at),
        None => placement.deferred(),
    });
    cfg.max_sim_time = SimTime::from_secs(3_600);
    cfg.faults = scenario(rules);
    let mut e = Experiment::build(cfg);
    e.enable_decision_trace();
    e.enable_observability(2048);
    e.set_shards(shards);
    e
}

/// Everything a run emits, for byte comparison.
fn fingerprint(e: &Experiment) -> (String, String) {
    (e.decision_trace().expect("trace enabled").canonical(), e.jsonl_trace())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fork at an arbitrary tick, schedule the antagonist onset, run to
    /// completion — must match a fresh run whose config pins that onset.
    #[test]
    fn forked_antagonist_arrival_matches_fresh_run(
        seed in 0u64..1_000_000,
        rules in proptest::collection::vec((0u8..8, 0u16..120, 0u16..120, 0.05f64..0.9), 0..3),
        shards in 1usize..5,
        fork_ticks in 0u64..120,
        onset_secs in 13u64..40,
    ) {
        let onset = SimTime::from_secs(onset_secs);
        // Fork strictly before the onset (ticks are 100 ms).
        let fork_ticks = fork_ticks.min(onset_secs * 10 - 1);

        let mut parent = build(seed, &rules, shards, None);
        for _ in 0..fork_ticks {
            parent.step_tick();
        }
        let mut forked = parent.fork();
        forked.start_antagonist(0, onset);
        let r_forked = forked.run();

        let mut fresh = build(seed, &rules, shards, Some(onset));
        let r_fresh = fresh.run();

        prop_assert_eq!(&r_fresh, &r_forked);
        prop_assert_eq!(fingerprint(&fresh), fingerprint(&forked));
    }

    /// Forking must not disturb the parent, and a mid-run cap change on a
    /// fork must match the same change applied to a fresh twin run to the
    /// same tick — the fork carries every RNG position and window forward.
    #[test]
    fn fork_is_independent_and_cap_change_is_exact(
        seed in 0u64..1_000_000,
        shards in 1usize..4,
        fork_ticks in 1u64..200,
        cap_pct in 1u32..10,
    ) {
        let run_to_fork = |e: &mut Experiment| {
            for _ in 0..fork_ticks {
                e.step_tick();
            }
        };
        let cap = |e: &mut Experiment| {
            let vm = e.antagonist_vms()[0].0;
            let caps = StaticCapping::new().cap_io(vm, f64::from(cap_pct) / 10.0, 3_000.0, 12e6);
            e.apply_static_caps(&caps);
        };

        let mut parent = build(seed, &[], shards, Some(SimTime::ZERO));
        run_to_fork(&mut parent);
        let mut forked = parent.fork();
        cap(&mut forked);
        let r_forked = forked.run();

        // The parent, continued untouched, matches a never-forked run.
        let r_parent = parent.run();
        let mut solo = build(seed, &[], shards, Some(SimTime::ZERO));
        let r_solo = solo.run();
        prop_assert_eq!(&r_solo, &r_parent);
        prop_assert_eq!(fingerprint(&solo), fingerprint(&parent));

        // A fresh twin run to the same tick with the same cap change
        // matches the fork byte-for-byte.
        let mut twin = build(seed, &[], shards, Some(SimTime::ZERO));
        run_to_fork(&mut twin);
        cap(&mut twin);
        let r_twin = twin.run();
        prop_assert_eq!(&r_twin, &r_forked);
        prop_assert_eq!(fingerprint(&twin), fingerprint(&forked));
    }
}

/// Two forks of one parent share no RNG stream: running one to completion
/// must not perturb the other, and identical divergences replay
/// identically.
#[test]
fn sibling_forks_have_independent_rng_streams() {
    let mut parent = build(7, &[], 1, None);
    for _ in 0..50 {
        parent.step_tick();
    }
    let onset = SimTime::from_secs(15);
    let mut a = parent.fork();
    let mut b = parent.fork();
    a.start_antagonist(0, onset);
    b.start_antagonist(0, onset);
    // Run `a` fully before touching `b`: if the siblings shared any RNG or
    // buffer, `a`'s draws would shift `b`'s replay.
    let r_a = a.run();
    let r_b = b.run();
    assert_eq!(r_a, r_b);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

/// A job pushed into a pre-submission fork matches a fresh run whose
/// config carried the job from the start — the pattern the figure
/// harnesses use to share an antagonist-only warm-up across benchmarks.
#[test]
fn pushed_job_matches_fresh_build() {
    let base = |with_job: bool| {
        let mut cfg = ExperimentConfig::new(
            ClusterSpec::small_scale(3),
            Mitigation::PerfCloud(PerfCloudConfig::default()),
        );
        if with_job {
            cfg.jobs.push((SimTime::from_secs(5), Benchmark::Wordcount.job(6)));
        }
        cfg.antagonists.push(AntagonistPlacement::pinned(AntagonistKind::Fio, 0));
        cfg.max_sim_time = SimTime::from_secs(3_600);
        let mut e = Experiment::build(cfg);
        e.enable_decision_trace();
        e.enable_observability(2048);
        e
    };
    let mut parent = base(false);
    // 4.9 s: strictly before the 5 s submission instant.
    for _ in 0..49 {
        parent.step_tick();
    }
    let mut forked = parent.fork();
    forked.push_job(SimTime::from_secs(5), Benchmark::Wordcount.job(6));
    let r_forked = forked.run();

    let mut fresh = base(true);
    let r_fresh = fresh.run();
    assert_eq!(r_fresh, r_forked);
    assert_eq!(fingerprint(&fresh), fingerprint(&forked));
}

/// A fork taken before the first sampling instant can swap the whole
/// mitigation stack and still match a fresh build with that mitigation.
#[test]
fn premonitoring_mitigation_swap_matches_fresh_build() {
    let build_with = |mitigation: Mitigation| {
        let mut cfg = ExperimentConfig::new(ClusterSpec::small_scale(11), mitigation);
        cfg.jobs.push((SimTime::from_secs(5), Benchmark::Terasort.job(8)));
        cfg.antagonists.push(
            AntagonistPlacement::pinned(AntagonistKind::Fio, 0).starting_at(SimTime::from_secs(15)),
        );
        cfg.max_sim_time = SimTime::from_secs(3_600);
        let mut e = Experiment::build(cfg);
        e.enable_decision_trace();
        e.enable_observability(2048);
        e
    };
    let mut parent = build_with(Mitigation::Default);
    // 4 s: past real work, still before the first 5 s sampling instant.
    for _ in 0..40 {
        parent.step_tick();
    }
    let mut forked = parent.fork();
    forked.set_mitigation(Mitigation::PerfCloud(PerfCloudConfig::default()));
    let r_forked = forked.run();

    let mut fresh = build_with(Mitigation::PerfCloud(PerfCloudConfig::default()));
    let r_fresh = fresh.run();
    assert_eq!(r_fresh, r_forked);
    assert_eq!(fingerprint(&fresh), fingerprint(&forked));
}

/// The migration testbed of `shard_invariance.rs`: migrate-only or hybrid
/// placement over two populated servers plus a spare, with the fio
/// antagonist identified around t=20 s and live-migrated right after.
fn build_migration(seed: u64, shards: usize, hybrid: bool) -> Experiment {
    use perfcloud_place::PlacementConfig;
    let mitigation = if hybrid {
        Mitigation::Hybrid(PerfCloudConfig::default(), PlacementConfig::default())
    } else {
        Mitigation::MigrateOnly(PlacementConfig::default())
    };
    let mut cluster = ClusterSpec::small_scale(seed);
    cluster.servers = 3;
    cluster.spare_servers = 1;
    let mut cfg = ExperimentConfig::new(cluster, mitigation);
    cfg.jobs.push((SimTime::from_secs(5), Benchmark::Terasort.job(8)));
    cfg.antagonists.push(
        AntagonistPlacement::pinned(AntagonistKind::Fio, 0).starting_at(SimTime::from_secs(15)),
    );
    cfg.max_sim_time = SimTime::from_secs(3_600);
    let mut e = Experiment::build(cfg);
    e.enable_decision_trace();
    e.enable_observability(2048);
    e.set_shards(shards);
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A fork taken at an arbitrary tick — before the migration epoch,
    /// mid-pre-copy, inside the stop-and-copy stall, or after completion —
    /// must reproduce the fresh run byte for byte: the penalty ledger,
    /// in-flight `ActiveMigration` deadlines, paused flags, migration CPU
    /// taxes and cooldown stamps all have to survive the deep copy.
    #[test]
    fn fork_around_migration_epoch_matches_fresh_run(
        seed in 0u64..1_000_000,
        shards in 1usize..4,
        fork_ticks in 1u64..350,
        hybrid_tag in 0u8..2,
    ) {
        let hybrid = hybrid_tag == 1;
        let mut parent = build_migration(seed, shards, hybrid);
        for _ in 0..fork_ticks {
            parent.step_tick();
        }
        let mut forked = parent.fork();
        let r_forked = forked.run();

        let mut fresh = build_migration(seed, shards, hybrid);
        let r_fresh = fresh.run();

        prop_assert_eq!(&r_fresh, &r_forked);
        prop_assert_eq!(fingerprint(&fresh), fingerprint(&forked));
        let migrations = |e: &Experiment| {
            e.placement().expect("placement runtime active").migrations_started()
        };
        prop_assert_eq!(migrations(&fresh), migrations(&forked));
    }
}
