//! Property: record/replay is lossless for arbitrary runs.
//!
//! For *arbitrary* seeds, fault schedules, and shard counts — not just the
//! golden scenarios — teeing a run's counter stream and replaying the
//! serialized recording through a fresh build of the same experiment must
//! reproduce the [`ExperimentResult`], the canonical decision-trace bytes,
//! and the JSONL flight export exactly. Faults are evaluated from each
//! sample's own timestamp against a stateless injector, so the recording
//! (which tees *pre-fault* samples) replays faulted runs byte-identically;
//! the recording itself must also be byte-invariant to the shard count.

use perfcloud_cluster::{
    AntagonistKind, AntagonistPlacement, ClusterSpec, Experiment, ExperimentConfig, Mitigation,
    TelemetrySpec,
};
use perfcloud_core::PerfCloudConfig;
use perfcloud_frameworks::Benchmark;
use perfcloud_sim::{FaultKind, FaultRule, FaultScenario, SimTime};
use perfcloud_telemetry::{RecordingFormat, TelemetryReader, TelemetryRecording};
use proptest::prelude::*;
use std::sync::Arc;

/// One fuzzed fault rule: (kind tag, window start, window length, firing
/// probability). Times are in seconds, offset into the run.
type RuleSpec = (u8, u16, u16, f64);

fn decode_kind(tag: u8) -> FaultKind {
    match tag % 8 {
        0 => FaultKind::DropSample,
        1 => FaultKind::DelaySample { intervals: 1 + u32::from(tag) % 3 },
        2 => FaultKind::DuplicateSample,
        3 => FaultKind::CorruptNaN,
        4 => FaultKind::CorruptSpike { factor: 30.0 },
        5 => FaultKind::CorruptStuckAt,
        6 => FaultKind::StallManager { intervals: 2 },
        _ => FaultKind::CrashRestart,
    }
}

fn scenario(rules: &[RuleSpec]) -> Option<FaultScenario> {
    if rules.is_empty() {
        return None;
    }
    let mut s = FaultScenario::named("replay-roundtrip");
    for (i, &(tag, start, len, prob)) in rules.iter().enumerate() {
        let from = 10 + u64::from(start);
        let until = from + 5 + u64::from(len);
        s = s.rule(
            FaultRule::new(format!("r{i}"), decode_kind(tag))
                .window(SimTime::from_secs(from), SimTime::from_secs(until))
                .with_probability(prob),
        );
    }
    Some(s)
}

fn build(seed: u64, rules: &[RuleSpec], shards: usize, telemetry: TelemetrySpec) -> Experiment {
    let mut cfg = ExperimentConfig::new(
        ClusterSpec::small_scale(seed),
        Mitigation::PerfCloud(PerfCloudConfig::default()),
    );
    cfg.jobs.push((SimTime::from_secs(5), Benchmark::Terasort.job(8)));
    cfg.antagonists.push(
        AntagonistPlacement::pinned(AntagonistKind::Fio, 0).starting_at(SimTime::from_secs(15)),
    );
    cfg.max_sim_time = SimTime::from_secs(3_600);
    cfg.faults = scenario(rules);
    cfg.telemetry = telemetry;
    let mut e = Experiment::build(cfg);
    e.enable_decision_trace();
    e.enable_observability(1024);
    e.set_shards(shards);
    e
}

fn record(seed: u64, rules: &[RuleSpec], shards: usize, format: RecordingFormat) -> Run {
    let spec = TelemetrySpec { tee: Some(format), replay: None };
    finish(build(seed, rules, shards, spec))
}

fn replay(seed: u64, rules: &[RuleSpec], shards: usize, rec: TelemetryRecording) -> Run {
    let spec = TelemetrySpec { tee: None, replay: Some(Arc::new(rec)) };
    finish(build(seed, rules, shards, spec))
}

struct Run {
    result: perfcloud_cluster::ExperimentResult,
    trace: String,
    flight: String,
    recording: Option<Vec<u8>>,
}

fn finish(mut e: Experiment) -> Run {
    let result = e.run();
    Run {
        result,
        trace: e.decision_trace().expect("trace enabled").canonical(),
        flight: e.jsonl_trace(),
        recording: e.take_recording(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn replaying_a_recording_reproduces_the_run(
        seed in 0u64..1_000_000,
        rules in proptest::collection::vec((0u8..8, 0u16..120, 0u16..120, 0.05f64..0.9), 0..4),
        shard_pick in 0usize..4,
        format_tag in 0u8..2,
    ) {
        let shards = 1 + shard_pick; // 1..=4
        let format =
            if format_tag == 0 { RecordingFormat::Binary } else { RecordingFormat::Jsonl };

        // Record at one shard; the recording must be shard-invariant.
        let reference = record(seed, &rules, 1, format);
        let bytes = reference.recording.as_ref().expect("tee armed");
        let sharded = record(seed, &rules, shards, format);
        prop_assert_eq!(bytes, sharded.recording.as_ref().expect("tee armed"),
            "recording bytes depend on the shard count");

        // Replay at the fuzzed shard count: result, decision trace, and
        // flight bytes must all reproduce.
        let rec = TelemetryReader::parse(bytes).expect("own recording parses");
        prop_assert!(!rec.samples.is_empty());
        let replayed = replay(seed, &rules, shards, rec);
        prop_assert_eq!(&reference.result, &replayed.result);
        prop_assert_eq!(&reference.trace, &replayed.trace);
        prop_assert_eq!(&reference.flight, &replayed.flight);
    }
}
