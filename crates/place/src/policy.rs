//! Pluggable placement policies.
//!
//! A [`PlacementPolicy`] answers two questions: where to put a new VM
//! ([`place`](PlacementPolicy::place)), and which hosted VMs to move
//! ([`propose`](PlacementPolicy::propose)). All four implementations are
//! pure functions of their inputs with deterministic tie-breaking (lowest
//! server id wins), so identical runs make identical decisions.

use crate::migrate::MigrationModel;
use crate::score::{affinity, InterferenceHistory, ServerLoad, UsageVector};
use perfcloud_host::{ServerId, VmId};

/// Everything a policy sees when deciding: candidate servers (index
/// position == `ServerId`) and the interference ledger.
#[derive(Debug, Clone, Copy)]
pub struct PlacementCtx<'a> {
    /// Per-server load, indexed by `ServerId.0`.
    pub servers: &'a [ServerLoad],
    /// Decayed identify-verdict ledger.
    pub history: &'a InterferenceHistory,
}

/// A hosted VM a policy may move.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationCandidate {
    /// The VM.
    pub vm: VmId,
    /// Its current host.
    pub from: ServerId,
    /// Its demand profile.
    pub usage: UsageVector,
}

/// One proposed move, with the score improvement that motivates it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationProposal {
    /// The VM to move.
    pub vm: VmId,
    /// Source server.
    pub from: ServerId,
    /// Destination server.
    pub to: ServerId,
    /// Affinity gain (destination score minus source score); always > 0.
    pub gain: f64,
}

/// A placement policy: initial placement plus rescheduling proposals.
pub trait PlacementPolicy {
    /// Short stable name (used in traces and bench records).
    fn name(&self) -> &'static str;

    /// Picks a server for a new VM with profile `usage` and interference
    /// penalty `penalty`, or `None` if no server exists.
    fn place(&self, usage: &UsageVector, penalty: f64, ctx: &PlacementCtx<'_>) -> Option<ServerId>;

    /// Proposes migrations for `candidates`. Only rescheduling policies
    /// return anything; the default is no moves.
    fn propose(
        &self,
        candidates: &[MigrationCandidate],
        ctx: &PlacementCtx<'_>,
    ) -> Vec<MigrationProposal> {
        let _ = (candidates, ctx);
        Vec::new()
    }

    /// Clones the policy behind the object (policies are tiny value types).
    fn boxed_clone(&self) -> Box<dyn PlacementPolicy + Send>;
}

impl Clone for Box<dyn PlacementPolicy + Send> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// Picks the best server by a scoring closure, lowest id winning ties
/// (strict `>` keeps the first — lowest — index on equal scores).
fn argmax_server(
    ctx: &PlacementCtx<'_>,
    mut score: impl FnMut(usize, &ServerLoad) -> f64,
) -> Option<ServerId> {
    let mut best: Option<(f64, usize)> = None;
    for (i, load) in ctx.servers.iter().enumerate() {
        let s = score(i, load);
        if best.is_none_or(|(b, _)| s > b) {
            best = Some((s, i));
        }
    }
    best.map(|(_, i)| ServerId(i as u32))
}

/// Least-loaded placement: the server hosting the fewest VMs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Spread;

impl PlacementPolicy for Spread {
    fn name(&self) -> &'static str {
        "spread"
    }

    fn place(
        &self,
        _usage: &UsageVector,
        _penalty: f64,
        ctx: &PlacementCtx<'_>,
    ) -> Option<ServerId> {
        argmax_server(ctx, |_, load| -(load.vms as f64))
    }

    fn boxed_clone(&self) -> Box<dyn PlacementPolicy + Send> {
        Box::new(*self)
    }
}

/// Consolidating placement: the server hosting the most VMs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Packed;

impl PlacementPolicy for Packed {
    fn name(&self) -> &'static str {
        "packed"
    }

    fn place(
        &self,
        _usage: &UsageVector,
        _penalty: f64,
        ctx: &PlacementCtx<'_>,
    ) -> Option<ServerId> {
        argmax_server(ctx, |_, load| load.vms as f64)
    }

    fn boxed_clone(&self) -> Box<dyn PlacementPolicy + Send> {
        Box::new(*self)
    }
}

/// VUPIC-style complementary-resource placement: maximize affinity
/// (minimal usage-vector conflict with the resident load).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Vupic;

impl PlacementPolicy for Vupic {
    fn name(&self) -> &'static str {
        "vupic"
    }

    fn place(&self, usage: &UsageVector, penalty: f64, ctx: &PlacementCtx<'_>) -> Option<ServerId> {
        argmax_server(ctx, |_, load| affinity(usage, penalty, load))
    }

    fn boxed_clone(&self) -> Box<dyn PlacementPolicy + Send> {
        Box::new(*self)
    }
}

/// Rescheduling policy driven by node-manager identify verdicts: a VM
/// whose decayed penalty crosses `min_penalty` while colocated with a
/// protected application is proposed for migration to the
/// highest-affinity other server — if that actually improves its score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AntagonistAware {
    /// Ledger penalty below which a VM is left alone. The lagged
    /// cross-correlation identifier is onset-correlated and hence
    /// transient — it may render its verdict exactly once per contention
    /// episode — so the default of 0.9 fires on any *fresh* verdict
    /// (penalty 1.0) while ignoring stale decayed ones (at most 0.8 one
    /// interval later). Flap protection is structural rather than
    /// threshold-based: the runtime's per-VM cooldown, the ledger reset on
    /// migration completion, and the rule that only interference with a
    /// protected application motivates a move (a freshly migrated
    /// antagonist lands on an unprotected server and is never proposed
    /// again).
    pub min_penalty: f64,
}

impl Default for AntagonistAware {
    fn default() -> Self {
        AntagonistAware { min_penalty: 0.9 }
    }
}

impl PlacementPolicy for AntagonistAware {
    fn name(&self) -> &'static str {
        "antagonist-aware"
    }

    fn place(&self, usage: &UsageVector, penalty: f64, ctx: &PlacementCtx<'_>) -> Option<ServerId> {
        Vupic.place(usage, penalty, ctx)
    }

    fn propose(
        &self,
        candidates: &[MigrationCandidate],
        ctx: &PlacementCtx<'_>,
    ) -> Vec<MigrationProposal> {
        let mut out = Vec::new();
        for cand in candidates {
            let penalty = ctx.history.penalty(cand.vm);
            if penalty < self.min_penalty {
                continue;
            }
            let from_idx = cand.from.0 as usize;
            let Some(source) = ctx.servers.get(from_idx) else { continue };
            // Only interference with a protected application motivates a
            // move; a penalized VM on an open server stays put.
            if !source.protected {
                continue;
            }
            let here = affinity(&cand.usage, penalty, source);
            let mut best: Option<(f64, usize)> = None;
            for (i, load) in ctx.servers.iter().enumerate() {
                if i == from_idx {
                    continue;
                }
                let s = affinity(&cand.usage, penalty, load);
                if best.is_none_or(|(b, _)| s > b) {
                    best = Some((s, i));
                }
            }
            if let Some((score, to)) = best {
                if score > here {
                    out.push(MigrationProposal {
                        vm: cand.vm,
                        from: cand.from,
                        to: ServerId(to as u32),
                        gain: score - here,
                    });
                }
            }
        }
        out
    }

    fn boxed_clone(&self) -> Box<dyn PlacementPolicy + Send> {
        Box::new(*self)
    }
}

/// Selector for the concrete policy, so experiment configs stay plain
/// data (mirrors `PipelineSpec` for detectors/identifiers).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PolicyKind {
    /// [`Spread`].
    Spread,
    /// [`Packed`].
    Packed,
    /// [`Vupic`].
    Vupic,
    /// [`AntagonistAware`] with its default threshold.
    #[default]
    AntagonistAware,
}

impl PolicyKind {
    /// Builds the policy object.
    pub fn build(self) -> Box<dyn PlacementPolicy + Send> {
        match self {
            PolicyKind::Spread => Box::new(Spread),
            PolicyKind::Packed => Box::new(Packed),
            PolicyKind::Vupic => Box::new(Vupic),
            PolicyKind::AntagonistAware => Box::new(AntagonistAware::default()),
        }
    }
}

/// Everything the experiment driver needs to run placement: which policy
/// decides, the live-migration cost model, and the hysteresis bounds that
/// keep a flapping antagonist from inducing migration ping-pong.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementConfig {
    /// The deciding policy.
    pub policy: PolicyKind,
    /// The live-migration cost model.
    pub model: MigrationModel,
    /// Minimum time between migration *starts* of the same VM. With the
    /// default model a move itself takes ~8.5 s; a 60 s cooldown means a
    /// VM flapping between guilty and quiet can bounce at most once per
    /// minute — and in practice not at all, because its ledger penalty
    /// decays below the policy threshold while it is quiet.
    pub cooldown: perfcloud_sim::SimDuration,
    /// Maximum concurrent live migrations cluster-wide (the copy streams
    /// share management-network links).
    pub max_active: usize,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            policy: PolicyKind::default(),
            model: MigrationModel::default(),
            cooldown: perfcloud_sim::SimDuration::from_secs(60.0),
            max_active: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with<'a>(
        servers: &'a [ServerLoad],
        history: &'a InterferenceHistory,
    ) -> PlacementCtx<'a> {
        PlacementCtx { servers, history }
    }

    fn loads() -> Vec<ServerLoad> {
        vec![
            ServerLoad {
                usage: UsageVector { cpu: 0.2, disk: 0.8, net: 0.0 },
                vms: 11,
                protected: true,
            },
            ServerLoad {
                usage: UsageVector { cpu: 0.7, disk: 0.1, net: 0.0 },
                vms: 3,
                protected: false,
            },
            ServerLoad::default(),
        ]
    }

    #[test]
    fn spread_picks_emptiest_and_packed_fullest() {
        let history = InterferenceHistory::new();
        let servers = loads();
        let ctx = ctx_with(&servers, &history);
        let vm = UsageVector::default();
        assert_eq!(Spread.place(&vm, 0.0, &ctx), Some(ServerId(2)));
        assert_eq!(Packed.place(&vm, 0.0, &ctx), Some(ServerId(0)));
        // Empty candidate list: nothing to pick.
        let none = ctx_with(&[], &history);
        assert_eq!(Spread.place(&vm, 0.0, &none), None);
    }

    #[test]
    fn ties_break_to_lowest_server_id() {
        let history = InterferenceHistory::new();
        let servers = vec![ServerLoad::default(); 4];
        let ctx = ctx_with(&servers, &history);
        let vm = UsageVector::default();
        assert_eq!(Spread.place(&vm, 0.0, &ctx), Some(ServerId(0)));
        assert_eq!(Packed.place(&vm, 0.0, &ctx), Some(ServerId(0)));
        assert_eq!(Vupic.place(&vm, 0.0, &ctx), Some(ServerId(0)));
    }

    #[test]
    fn vupic_places_complementary() {
        let history = InterferenceHistory::new();
        let servers = vec![
            ServerLoad {
                usage: UsageVector { disk: 0.9, ..Default::default() },
                vms: 1,
                protected: false,
            },
            ServerLoad {
                usage: UsageVector { cpu: 0.9, ..Default::default() },
                vms: 1,
                protected: false,
            },
        ];
        let ctx = ctx_with(&servers, &history);
        let disk_hog = UsageVector { disk: 0.8, ..Default::default() };
        assert_eq!(Vupic.place(&disk_hog, 0.0, &ctx), Some(ServerId(1)));
        let cpu_hog = UsageVector { cpu: 0.8, ..Default::default() };
        assert_eq!(Vupic.place(&cpu_hog, 0.0, &ctx), Some(ServerId(0)));
    }

    #[test]
    fn antagonist_aware_moves_guilty_vm_off_protected_server() {
        let mut history = InterferenceHistory::new();
        for _ in 0..4 {
            history.record_verdict(VmId(10));
        }
        let servers = loads();
        let ctx = ctx_with(&servers, &history);
        let cand = MigrationCandidate {
            vm: VmId(10),
            from: ServerId(0),
            usage: UsageVector { disk: 0.8, ..Default::default() },
        };
        let proposals = AntagonistAware::default().propose(&[cand], &ctx);
        assert_eq!(proposals.len(), 1);
        let p = proposals[0];
        assert_eq!((p.vm, p.from), (VmId(10), ServerId(0)));
        assert_ne!(p.to, ServerId(0));
        assert!(p.gain > 0.0);
    }

    #[test]
    fn below_threshold_or_unprotected_source_proposes_nothing() {
        let mut history = InterferenceHistory::new();
        history.record_verdict(VmId(10));
        history.decay(); // stale verdict: penalty 0.8 < 0.9
        let servers = loads();
        let ctx = ctx_with(&servers, &history);
        let usage = UsageVector { disk: 0.8, ..Default::default() };
        let guilty_but_mild = MigrationCandidate { vm: VmId(10), from: ServerId(0), usage };
        assert!(AntagonistAware::default().propose(&[guilty_but_mild], &ctx).is_empty());
        // Heavy penalty, but the source hosts no protected app.
        for _ in 0..8 {
            history.record_verdict(VmId(11));
        }
        let ctx = ctx_with(&servers, &history);
        let open_source = MigrationCandidate { vm: VmId(11), from: ServerId(1), usage };
        assert!(AntagonistAware::default().propose(&[open_source], &ctx).is_empty());
    }

    #[test]
    fn spread_and_packed_never_propose() {
        let mut history = InterferenceHistory::new();
        for _ in 0..8 {
            history.record_verdict(VmId(10));
        }
        let servers = loads();
        let ctx = ctx_with(&servers, &history);
        let cand = MigrationCandidate {
            vm: VmId(10),
            from: ServerId(0),
            usage: UsageVector { disk: 0.8, ..Default::default() },
        };
        assert!(Spread.propose(&[cand], &ctx).is_empty());
        assert!(Packed.propose(&[cand], &ctx).is_empty());
    }

    #[test]
    fn policy_kind_builds_named_policies() {
        for (kind, name) in [
            (PolicyKind::Spread, "spread"),
            (PolicyKind::Packed, "packed"),
            (PolicyKind::Vupic, "vupic"),
            (PolicyKind::AntagonistAware, "antagonist-aware"),
        ] {
            assert_eq!(kind.build().name(), name);
        }
        // Box<dyn> clones through boxed_clone.
        let b = PolicyKind::AntagonistAware.build();
        assert_eq!(b.clone().name(), "antagonist-aware");
    }
}
