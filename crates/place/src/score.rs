//! Usage-vector scoring: VUPIC-style complementary-resource affinity plus
//! an interference-penalty term fed by identify history.
//!
//! Every VM gets a demand profile normalized per resource dimension; a
//! destination server is scored by how little its aggregate load conflicts
//! with the candidate's profile. Two disk-hungry VMs conflict; a
//! disk-hungry VM and a CPU-hungry VM are complementary and pack well —
//! the VUPIC placement rule. On top of that, VMs with a history of
//! identified interference carry a decayed penalty that antagonist-aware
//! policies use to keep them away from protected applications.

use perfcloud_host::VmId;
use std::collections::BTreeMap;

/// A VM's (or server's aggregate) demand profile, one entry per resource
/// dimension, each normalized to the server's capacity (so values are
/// roughly in `[0, 1]` but may exceed 1 under overload).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UsageVector {
    /// CPU demand as a fraction of the server's cores.
    pub cpu: f64,
    /// Disk demand as a fraction of the device's sequential bandwidth.
    pub disk: f64,
    /// Network demand as a fraction of link bandwidth. The current
    /// testbed models no guest networking, so experiment drivers feed 0
    /// here; the dimension exists so the scoring model matches VUPIC's
    /// three-axis usage vectors and picks up a real signal the moment the
    /// host model grows one.
    pub net: f64,
}

impl UsageVector {
    /// A profile from raw observed usage and the capacities to normalize
    /// against. Non-finite or negative inputs clamp to zero.
    pub fn normalized(
        cpu_cores: f64,
        total_cores: f64,
        disk_bps: f64,
        disk_capacity_bps: f64,
    ) -> Self {
        let frac = |used: f64, cap: f64| {
            if used.is_finite() && used > 0.0 && cap > 0.0 {
                used / cap
            } else {
                0.0
            }
        };
        UsageVector {
            cpu: frac(cpu_cores, total_cores),
            disk: frac(disk_bps, disk_capacity_bps),
            net: 0.0,
        }
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &UsageVector) -> UsageVector {
        UsageVector {
            cpu: self.cpu + other.cpu,
            disk: self.disk + other.disk,
            net: self.net + other.net,
        }
    }

    /// The dominant dimension's magnitude.
    pub fn dominant(&self) -> f64 {
        self.cpu.max(self.disk).max(self.net)
    }
}

/// How strongly two profiles compete for the same resources: the dot
/// product of the two vectors. Zero when the profiles are complementary
/// (disjoint dominant resources), large when both hammer the same
/// dimension.
pub fn conflict(a: &UsageVector, b: &UsageVector) -> f64 {
    a.cpu * b.cpu + a.disk * b.disk + a.net * b.net
}

/// One candidate destination's current state, as the scorer sees it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServerLoad {
    /// Aggregate demand profile of the VMs already hosted there.
    pub usage: UsageVector,
    /// Number of hosted VMs (crowding term).
    pub vms: usize,
    /// Whether a high-priority application runs there (antagonist-aware
    /// policies keep penalized VMs off protected servers).
    pub protected: bool,
}

/// Weight of the crowding term: a mild preference for emptier servers so
/// equal-conflict candidates spread instead of piling onto one host.
const CROWDING_WEIGHT: f64 = 0.01;

/// Weight of the interference penalty when the destination hosts a
/// protected application. Large enough that any identify history
/// dominates the complementarity terms.
const PROTECTED_PENALTY_WEIGHT: f64 = 10.0;

/// Affinity of placing a VM with profile `vm` (and decayed interference
/// penalty `penalty`) onto a server in state `load`. Higher is better.
/// The score combines VUPIC complementarity (low conflict with the
/// resident load), a mild crowding term, and — only for protected
/// servers — the interference penalty.
pub fn affinity(vm: &UsageVector, penalty: f64, load: &ServerLoad) -> f64 {
    let mut score = -conflict(vm, &load.usage) - CROWDING_WEIGHT * load.vms as f64;
    if load.protected {
        score -= PROTECTED_PENALTY_WEIGHT * penalty;
    }
    score
}

/// Decayed ledger of identify verdicts per VM: every interval a VM is
/// fingered as an antagonist adds one unit of penalty; every interval
/// without a verdict decays all penalties geometrically. Deterministic
/// (BTreeMap order) and bounded: fully decayed entries are dropped.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InterferenceHistory {
    penalties: BTreeMap<VmId, f64>,
}

/// Per-interval geometric decay factor. At one verdict per interval the
/// penalty saturates near `1 / (1 - DECAY) = 5`; after a verdict stops,
/// it halves roughly every three intervals.
const DECAY: f64 = 0.8;

/// Penalties below this are dropped from the ledger entirely.
const FLOOR: f64 = 1e-3;

impl InterferenceHistory {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one identify verdict against `vm`.
    pub fn record_verdict(&mut self, vm: VmId) {
        *self.penalties.entry(vm).or_insert(0.0) += 1.0;
    }

    /// Applies one interval's decay to every ledger entry.
    pub fn decay(&mut self) {
        self.penalties.retain(|_, p| {
            *p *= DECAY;
            *p >= FLOOR
        });
    }

    /// Current penalty of `vm` (0 if never fingered or fully decayed).
    pub fn penalty(&self, vm: VmId) -> f64 {
        self.penalties.get(&vm).copied().unwrap_or(0.0)
    }

    /// Forgets a VM entirely (e.g. after it was migrated away — its
    /// history belonged to the old colocation).
    pub fn forget(&mut self, vm: VmId) {
        self.penalties.remove(&vm);
    }

    /// Number of VMs with live penalties.
    pub fn len(&self) -> usize {
        self.penalties.len()
    }

    /// True when no VM carries a penalty.
    pub fn is_empty(&self) -> bool {
        self.penalties.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_clamps_junk() {
        let v = UsageVector::normalized(f64::NAN, 48.0, -5.0, 4e8);
        assert_eq!(v, UsageVector::default());
        let v = UsageVector::normalized(24.0, 48.0, 2e8, 4e8);
        assert!((v.cpu - 0.5).abs() < 1e-12 && (v.disk - 0.5).abs() < 1e-12);
    }

    #[test]
    fn complementary_profiles_do_not_conflict() {
        let cpu_hog = UsageVector { cpu: 0.9, disk: 0.0, net: 0.0 };
        let disk_hog = UsageVector { cpu: 0.0, disk: 0.9, net: 0.0 };
        assert_eq!(conflict(&cpu_hog, &disk_hog), 0.0);
        assert!(conflict(&disk_hog, &disk_hog) > 0.5);
    }

    #[test]
    fn affinity_prefers_complementary_and_empty_servers() {
        let vm = UsageVector { cpu: 0.1, disk: 0.8, net: 0.0 };
        let disk_loaded = ServerLoad {
            usage: UsageVector { disk: 0.9, ..Default::default() },
            vms: 5,
            protected: false,
        };
        let cpu_loaded = ServerLoad {
            usage: UsageVector { cpu: 0.9, ..Default::default() },
            vms: 5,
            protected: false,
        };
        let empty = ServerLoad::default();
        assert!(affinity(&vm, 0.0, &cpu_loaded) > affinity(&vm, 0.0, &disk_loaded));
        assert!(affinity(&vm, 0.0, &empty) > affinity(&vm, 0.0, &cpu_loaded));
    }

    #[test]
    fn penalty_only_bites_on_protected_servers() {
        let vm = UsageVector { disk: 0.5, ..Default::default() };
        let open = ServerLoad { protected: false, ..Default::default() };
        let protected_ = ServerLoad { protected: true, ..Default::default() };
        assert_eq!(affinity(&vm, 3.0, &open), affinity(&vm, 0.0, &open));
        assert!(affinity(&vm, 3.0, &protected_) < affinity(&vm, 0.0, &protected_) - 1.0);
    }

    #[test]
    fn history_accumulates_decays_and_forgets() {
        let mut h = InterferenceHistory::new();
        assert!(h.is_empty());
        h.record_verdict(VmId(7));
        h.record_verdict(VmId(7));
        h.record_verdict(VmId(3));
        assert_eq!(h.penalty(VmId(7)), 2.0);
        assert_eq!(h.len(), 2);
        h.decay();
        assert!((h.penalty(VmId(7)) - 1.6).abs() < 1e-12);
        // Decay eventually drops entries entirely.
        for _ in 0..60 {
            h.decay();
        }
        assert!(h.is_empty(), "fully decayed entries must be dropped");
        h.record_verdict(VmId(3));
        h.forget(VmId(3));
        assert_eq!(h.penalty(VmId(3)), 0.0);
    }
}
