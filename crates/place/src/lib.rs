//! Interference-aware VM placement: the policy layer that closes the
//! control loop the paper leaves as future work (§VI — "complementary
//! solutions such as VM migration").
//!
//! Three layers, all deterministic:
//!
//! - [`score`]: usage-vector demand profiles per VM (CPU / disk / net),
//!   VUPIC-style complementary-resource affinity scoring, and a decayed
//!   interference-penalty ledger fed by node-manager identify verdicts.
//! - [`policy`]: a pluggable [`PlacementPolicy`] trait with [`Spread`],
//!   [`Packed`], [`Vupic`], and [`AntagonistAware`] implementations; the
//!   last consumes identify history to propose rescheduling.
//! - [`migrate`]: a pre-copy live-migration model — dirty-rate-driven
//!   transfer time, source/destination CPU tax, and a brief
//!   stop-and-copy stall for the migrated VM.
//!
//! The crate itself moves no VM: policies return [`MigrationProposal`]s
//! and the model returns phase timelines. Execution — extracting the VM
//! from its source server, republishing the registry through the epoch'd
//! control plane — belongs to the experiment driver, which keeps every
//! decision on the coordinator side of the shard barrier.

#![warn(missing_docs)]

pub mod migrate;
pub mod policy;
pub mod score;

pub use migrate::{ActiveMigration, MigrationModel, MigrationPhase, MigrationPlan};
pub use policy::{
    AntagonistAware, MigrationCandidate, MigrationProposal, Packed, PlacementConfig, PlacementCtx,
    PlacementPolicy, PolicyKind, Spread, Vupic,
};
pub use score::{affinity, conflict, InterferenceHistory, ServerLoad, UsageVector};
