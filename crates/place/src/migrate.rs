//! The live-migration cost model: iterative pre-copy with a
//! dirty-rate-driven geometric series, a hypervisor CPU tax on both ends,
//! and a final stop-and-copy stall.
//!
//! The model is the standard pre-copy analysis: round 0 transfers the
//! whole guest memory at link speed; each further round re-transfers the
//! pages dirtied during the previous round, shrinking geometrically by
//! `r = dirty_rate / link_bps`. After `precopy_rounds` rounds the VM is
//! frozen and the remaining dirty set is copied in the stop-and-copy
//! phase. Everything is computed once, up front, from static parameters —
//! no randomness, no wall clock — so a migration's timeline is a pure
//! function of `(guest memory, model, start time)` and replays exactly
//! under forks and resharding.

use perfcloud_host::{ServerId, VmId};
use perfcloud_sim::{SimDuration, SimTime};

/// Static parameters of the migration path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationModel {
    /// Migration-link bandwidth in bytes/second (default 10 GbE).
    pub link_bps: f64,
    /// Guest page-dirtying rate in bytes/second while running.
    pub dirty_rate_bps: f64,
    /// Pre-copy rounds before the stop-and-copy freeze.
    pub precopy_rounds: u32,
    /// Hypervisor cores consumed on *each* end while the migration is in
    /// flight (the copy threads' CPU tax).
    pub cpu_tax_cores: f64,
    /// Lower bound on the stop-and-copy stall (connection switch-over
    /// latency dominates for tiny dirty sets).
    pub min_stop_copy: SimDuration,
}

impl Default for MigrationModel {
    fn default() -> Self {
        MigrationModel {
            link_bps: 1.25e9,
            dirty_rate_bps: 2.5e8,
            precopy_rounds: 2,
            cpu_tax_cores: 0.5,
            min_stop_copy: SimDuration::from_secs(0.1),
        }
    }
}

/// A migration's computed timeline: how long the VM keeps running while
/// memory streams (pre-copy) and how long it is frozen (stop-and-copy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationPlan {
    /// Duration of the pre-copy phase (VM running, CPU tax applied).
    pub precopy: SimDuration,
    /// Duration of the stop-and-copy stall (VM frozen).
    pub stop_copy: SimDuration,
}

impl MigrationModel {
    /// Validates the parameters (panics on nonsense, mirroring
    /// `PerfCloudConfig::validate`).
    pub fn validate(&self) {
        assert!(self.link_bps > 0.0 && self.link_bps.is_finite(), "link_bps must be positive");
        assert!(
            self.dirty_rate_bps >= 0.0 && self.dirty_rate_bps.is_finite(),
            "dirty_rate_bps must be non-negative"
        );
        assert!(
            self.cpu_tax_cores >= 0.0 && self.cpu_tax_cores.is_finite(),
            "cpu_tax_cores must be non-negative"
        );
    }

    /// Plans a migration of a guest with `mem_bytes` of memory.
    pub fn plan(&self, mem_bytes: u64) -> MigrationPlan {
        self.validate();
        let mem = mem_bytes as f64;
        let round0 = mem / self.link_bps;
        // Dirty-to-transfer ratio; clamped below 1 so the series converges
        // even for a guest dirtying faster than the link drains (real
        // hypervisors fall back to stop-and-copy in that regime too).
        let r = (self.dirty_rate_bps / self.link_bps).min(0.95);
        let mut precopy = 0.0;
        let mut round = round0;
        for _ in 0..self.precopy_rounds {
            precopy += round;
            round *= r;
        }
        // `round` is now the transfer time of the residual dirty set.
        let stop = SimDuration::from_secs(round).max(self.min_stop_copy);
        MigrationPlan { precopy: SimDuration::from_secs(precopy), stop_copy: stop }
    }
}

/// Phase of an in-flight migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// Memory streaming while the VM runs; CPU tax on both ends.
    PreCopy,
    /// The VM is frozen for the final dirty-set copy.
    StopCopy,
}

/// One in-flight migration, tracked by the experiment driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActiveMigration {
    /// The VM being moved.
    pub vm: VmId,
    /// Source server.
    pub from: ServerId,
    /// Destination server.
    pub to: ServerId,
    /// When pre-copy began.
    pub started: SimTime,
    /// When the VM freezes (pre-copy end).
    pub stop_at: SimTime,
    /// When the VM resumes on the destination.
    pub done_at: SimTime,
}

impl ActiveMigration {
    /// Starts a migration at `now` under `model` for a guest with
    /// `mem_bytes` of memory.
    pub fn begin(
        vm: VmId,
        from: ServerId,
        to: ServerId,
        now: SimTime,
        model: &MigrationModel,
        mem_bytes: u64,
    ) -> Self {
        let plan = model.plan(mem_bytes);
        let stop_at = now + plan.precopy;
        ActiveMigration { vm, from, to, started: now, stop_at, done_at: stop_at + plan.stop_copy }
    }

    /// The phase in force at `now` (`None` once complete).
    pub fn phase(&self, now: SimTime) -> Option<MigrationPhase> {
        if now >= self.done_at {
            None
        } else if now >= self.stop_at {
            Some(MigrationPhase::StopCopy)
        } else {
            Some(MigrationPhase::PreCopy)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_shape_for_standard_guest() {
        // 8 GiB guest, 10 GbE link: round 0 ≈ 6.9 s, ratio 0.2, two
        // rounds ≈ 8.2 s of pre-copy, residual ≈ 0.27 s of stall.
        let plan = MigrationModel::default().plan(8 << 30);
        let pre = plan.precopy.as_secs_f64();
        let stop = plan.stop_copy.as_secs_f64();
        assert!((8.0..9.0).contains(&pre), "precopy {pre}");
        assert!((0.2..0.4).contains(&stop), "stop-copy {stop}");
    }

    #[test]
    fn stop_copy_never_below_floor() {
        let model = MigrationModel { dirty_rate_bps: 0.0, ..Default::default() };
        let plan = model.plan(8 << 30);
        assert_eq!(plan.stop_copy, model.min_stop_copy);
    }

    #[test]
    fn fast_dirtier_converges_via_clamp() {
        let model = MigrationModel { dirty_rate_bps: 1e12, ..Default::default() };
        let plan = model.plan(8 << 30);
        assert!(plan.precopy.as_secs_f64().is_finite());
        assert!(plan.stop_copy >= model.min_stop_copy);
    }

    #[test]
    fn more_rounds_shrink_the_stall() {
        let few = MigrationModel {
            precopy_rounds: 1,
            min_stop_copy: SimDuration::ZERO,
            ..Default::default()
        };
        let many = MigrationModel {
            precopy_rounds: 4,
            min_stop_copy: SimDuration::ZERO,
            ..Default::default()
        };
        assert!(many.plan(8 << 30).stop_copy < few.plan(8 << 30).stop_copy);
        assert!(many.plan(8 << 30).precopy > few.plan(8 << 30).precopy);
    }

    #[test]
    fn phases_progress_in_order() {
        let m = ActiveMigration::begin(
            VmId(1),
            ServerId(0),
            ServerId(1),
            SimTime::from_secs(100),
            &MigrationModel::default(),
            8 << 30,
        );
        assert_eq!(m.phase(SimTime::from_secs(100)), Some(MigrationPhase::PreCopy));
        assert_eq!(m.phase(m.stop_at), Some(MigrationPhase::StopCopy));
        assert_eq!(m.phase(m.done_at), None);
        assert!(m.started < m.stop_at && m.stop_at < m.done_at);
    }
}
