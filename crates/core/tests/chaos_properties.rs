//! Property tests for the identifier under chaotic telemetry.
//!
//! The fault-injection layer can drop or delay placement updates, so a
//! suspect VM flickers in and out of the identifier's suspect set, and it
//! can corrupt the metric streams with NaN/±inf/missing values. The
//! incremental correlation path (O(1) push per tick, backfill-on-entry)
//! must nevertheless agree with the original batch path — align the two
//! series' tails, then victim-aware Pearson — to 1e-9 relative, for
//! *arbitrary* membership schedules and arbitrary garbage in both streams.

use perfcloud_core::antagonist::Resource;
use perfcloud_core::{AntagonistIdentifier, PerfCloudConfig, PerformanceMonitor, VmMetricKind};
use perfcloud_host::VmId;
use perfcloud_sim::{SimDuration, SimTime};
use perfcloud_stats::pearson::pearson_victim_aware_lagged;
use perfcloud_stats::timeseries::align_tail;
use proptest::prelude::*;

const SUSPECT: VmId = VmId(10);

/// Decodes one fuzzed slot into a metric sample: missing, NaN, ±inf, or a
/// plain finite value.
fn decode(tag: u8, val: f64) -> Option<f64> {
    match tag {
        0 => None,
        1 => Some(f64::NAN),
        2 => Some(f64::INFINITY),
        3 => Some(f64::NEG_INFINITY),
        _ => Some(val),
    }
}

/// One fuzzed interval: (victim tag, victim value, usage tag, usage value,
/// membership tag). Membership tag 0 ⇒ the suspect is absent from the
/// suspect set that interval (a dropped/delayed placement update).
type Slot = (u8, f64, u8, f64, u8);

fn config() -> PerfCloudConfig {
    PerfCloudConfig { min_corr_samples: 2, ..Default::default() }
}

/// Runs a schedule through monitor + identifier. The suspect's usage series
/// is fed via the monitor's synthetic push (raw series only, like a real
/// sampled metric), the victim deviation via `observe`. Returns the final
/// incremental correlation plus the series for the batch reference.
fn drive(schedule: &[Slot]) -> (AntagonistIdentifier, PerformanceMonitor) {
    let cfg = config();
    let mut mon = PerformanceMonitor::new(&cfg);
    let mut ident = AntagonistIdentifier::new(&cfg);
    let mut now = SimTime::ZERO;
    let last = schedule.len() - 1;
    for (i, &(dtag, dval, utag, uval, member)) in schedule.iter().enumerate() {
        now = now.saturating_add(SimDuration::from_secs(5.0));
        mon.push_synthetic(SUSPECT, VmMetricKind::IoBps, now, decode(utag, uval));
        // The final interval always lists the suspect, mirroring the moment
        // the node manager actually asks for a correlation.
        let suspects: &[VmId] = if member == 0 && i != last { &[] } else { &[SUSPECT] };
        ident.observe(now, decode(dtag, dval), None, &mon, suspects);
    }
    (ident, mon)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn backfill_on_entry_matches_batch_pearson(
        schedule in proptest::collection::vec(
            (0u8..10, -1.0e3f64..1.0e3, 0u8..10, -1.0e3f64..1.0e3, 0u8..6),
            4..40,
        )
    ) {
        let cfg = config();
        let (ident, mon) = drive(&schedule);
        let rolled = ident.correlation(SUSPECT, Resource::Io);

        let victim = ident.deviation_series(Resource::Io);
        let usage = mon.series(SUSPECT, VmMetricKind::IoBps).expect("synthetic series exists");
        let (x, y) = align_tail(victim, usage, cfg.corr_window);
        // The identifier demands `min_corr_samples` contributing pairs
        // (finite victim deviations) before answering; apply the same gate
        // to the batch reference.
        let contributing = x.iter().filter(|v| v.is_some_and(|v| v.is_finite())).count();
        let batch = if contributing < cfg.min_corr_samples {
            None
        } else {
            pearson_victim_aware_lagged(&x, &y, cfg.corr_max_lag, cfg.min_corr_samples)
        };

        match (rolled, batch) {
            (Some(r), Some(b)) => prop_assert!(
                (r - b).abs() <= 1e-9 * b.abs().max(1.0),
                "rolled {} vs batch {} over {} intervals",
                r, b, schedule.len()
            ),
            (r, b) => prop_assert_eq!(r, b),
        }
    }

    #[test]
    fn correlation_is_always_finite_and_bounded(
        schedule in proptest::collection::vec(
            (0u8..5, -1.0e6f64..1.0e6, 0u8..5, -1.0e6f64..1.0e6, 0u8..3),
            1..60,
        )
    ) {
        // Whatever garbage the streams carry — NaN bursts, infinities,
        // missing runs, membership flicker — the identifier must never
        // panic and never report a correlation outside [-1, 1].
        let (ident, _mon) = drive(&schedule);
        for resource in [Resource::Io, Resource::Cpu] {
            if let Some(r) = ident.correlation(SUSPECT, resource) {
                prop_assert!(r.is_finite(), "non-finite correlation {r}");
                prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r), "out of range: {r}");
            }
        }
    }
}
