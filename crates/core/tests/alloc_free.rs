//! Proof that a steady-state node-manager interval allocates nothing.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! long enough to grow every rolling window to its retention horizon, each
//! call to [`NodeManager::step_into`] — placement fetch, batched sampling
//! of every VM, deviation detection, antagonist correlation — must perform
//! zero heap allocations. Server ticking happens outside the measured
//! window: the hypervisor model may allocate, the agent must not.

use perfcloud_core::{AppId, CloudManager, NodeManager, PerfCloudConfig, StepReport, VmRecord};
use perfcloud_host::{PhysicalServer, Priority, ServerConfig, ServerId, VmConfig, VmId};
use perfcloud_sim::{RngFactory, SimDuration, SimTime};
use perfcloud_workloads::{FioRandRead, SysbenchCpu};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// Only count allocations made by the test's own thread while the measured
// window is open: the libtest harness's main thread lazily initializes its
// result-channel machinery at an arbitrary point and must not pollute the
// count. Const-initialized, so reading the flag never itself allocates.
thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counted(on: bool) {
    COUNTING.with(|c| c.set(on));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Drives the steady-state testbed and returns the allocation count over
/// 50 measured `step_into` calls. With `observe` the node manager carries
/// a flight recorder from the start — attached before warm-up, so its ring
/// is the only pre-reserved buffer and the record path itself is measured.
fn steady_state_allocs(observe: bool) -> u64 {
    const DT: SimDuration = SimDuration::from_micros(100_000);
    let mut server =
        PhysicalServer::new(ServerId(0), ServerConfig::default(), RngFactory::new(7), DT);
    let mut cloud = CloudManager::new();
    // One 4-VM high-priority application plus two low-priority suspects,
    // one doing I/O and one burning CPU, so every stage of the pipeline has
    // live series to chew on.
    for vm in (0..4).map(VmId) {
        server.add_vm(vm, VmConfig::high_priority());
        server.spawn(vm, Box::new(FioRandRead::with_rate(300.0, 4096.0, None)));
        cloud.register(
            vm,
            VmRecord { server: ServerId(0), priority: Priority::High, app: Some(AppId(1)) },
        );
    }
    for vm in [VmId(10), VmId(11)] {
        server.add_vm(vm, VmConfig::low_priority());
        cloud.register(vm, VmRecord { server: ServerId(0), priority: Priority::Low, app: None });
    }
    server.spawn(VmId(10), Box::new(FioRandRead::with_rate(5_000.0, 4096.0, None)));
    server.spawn(VmId(11), Box::new(SysbenchCpu::new()));

    // Monitoring mode: thresholds at infinity, so detection, observation and
    // identification all run every interval but no VM is ever enrolled for
    // capping (the cap-trace series retain 4096 points — a far longer
    // horizon than the metric windows, needing thousands of warm-up
    // intervals to reach steady capacity).
    let config =
        PerfCloudConfig { h_io: f64::INFINITY, h_cpi: f64::INFINITY, ..Default::default() };
    let mut nm = NodeManager::new(config);
    if observe {
        nm.attach_flight(1024);
    }
    let mut report = StepReport::default();
    let mut now = SimTime::ZERO;

    // Warm-up: past the retention horizon of every rolling series
    // (corr_window * 8 = 192 samples with the default config), so all
    // buffer capacities are final.
    for _ in 0..210 {
        for _ in 0..50 {
            server.tick(DT);
        }
        now += SimDuration::from_secs(5.0);
        nm.step_into(now, &mut server, &mut cloud, &mut report);
    }

    let mut total = 0u64;
    for _ in 0..50 {
        for _ in 0..50 {
            server.tick(DT);
        }
        now += SimDuration::from_secs(5.0);
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        counted(true);
        nm.step_into(now, &mut server, &mut cloud, &mut report);
        counted(false);
        total += ALLOC_CALLS.load(Ordering::Relaxed) - before;
    }

    // The pipeline was genuinely live, not short-circuited.
    assert!(report.signal.is_some(), "detector must be producing signals in the measured window");
    total
}

#[test]
fn steady_state_node_manager_step_is_allocation_free() {
    let total = steady_state_allocs(false);
    assert_eq!(total, 0, "{total} allocations across 50 steady-state steps (expected 0)");
}

/// [`perfcloud_core::PerformanceMonitor::monitored_vms`] exists so the
/// sampling loop can walk the monitored set without materializing a `Vec`
/// per interval; iterating it — and chasing each VM's latest smoothed
/// metric — must itself be allocation-free.
#[test]
fn monitored_vms_iteration_is_allocation_free() {
    use perfcloud_core::VmMetricKind;

    const DT: SimDuration = SimDuration::from_micros(100_000);
    let mut server =
        PhysicalServer::new(ServerId(0), ServerConfig::default(), RngFactory::new(9), DT);
    let mut cloud = CloudManager::new();
    for vm in (0..6).map(VmId) {
        server.add_vm(vm, VmConfig::high_priority());
        server.spawn(vm, Box::new(FioRandRead::with_rate(400.0, 4096.0, None)));
        cloud.register(
            vm,
            VmRecord { server: ServerId(0), priority: Priority::High, app: Some(AppId(1)) },
        );
    }
    let config =
        PerfCloudConfig { h_io: f64::INFINITY, h_cpi: f64::INFINITY, ..Default::default() };
    let mut nm = NodeManager::new(config);
    let mut report = StepReport::default();
    let mut now = SimTime::ZERO;
    for _ in 0..20 {
        for _ in 0..50 {
            server.tick(DT);
        }
        now += SimDuration::from_secs(5.0);
        nm.step_into(now, &mut server, &mut cloud, &mut report);
    }

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    counted(true);
    let mut seen = 0usize;
    let mut live_series = 0usize;
    for _ in 0..100 {
        for vm in nm.monitor().monitored_vms() {
            seen += 1;
            if nm.monitor().latest_present(vm, VmMetricKind::IowaitRatio).is_some() {
                live_series += 1;
            }
        }
    }
    counted(false);
    let total = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(seen, 600, "all six VMs visible on every pass");
    assert_eq!(live_series, 600, "every monitored VM has a live iowait series");
    assert_eq!(total, 0, "{total} allocations across 100 monitored_vms() walks (expected 0)");
}

#[test]
fn steady_state_step_with_flight_recorder_is_allocation_free() {
    // The recorder's ring is reserved at attach time; recording into it —
    // and every `flight.as_mut()` branch threaded through the sampling,
    // detection and control paths — must not allocate either.
    let total = steady_state_allocs(true);
    assert_eq!(total, 0, "{total} allocations across 50 observed steady-state steps (expected 0)");
}
