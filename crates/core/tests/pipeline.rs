//! Integration tests of the PerfCloud pipeline's control dynamics.

use perfcloud_core::{AppId, CloudManager, NodeManager, PerfCloudConfig, VmRecord};
use perfcloud_host::{PhysicalServer, Priority, ServerConfig, ServerId, VmConfig, VmId};
use perfcloud_sim::{RngFactory, SimDuration, SimTime};
use perfcloud_workloads::FioRandRead;

const DT: SimDuration = SimDuration::from_micros(100_000);

struct Rig {
    server: PhysicalServer,
    cloud: CloudManager,
    nm: NodeManager,
    now: SimTime,
}

fn rig(victims: u32) -> Rig {
    let mut server =
        PhysicalServer::new(ServerId(0), ServerConfig::chameleon(), RngFactory::new(77), DT);
    let mut cloud = CloudManager::new();
    for i in 0..victims {
        let vm = VmId(i);
        server.add_vm(vm, VmConfig::high_priority());
        server.spawn(vm, Box::new(FioRandRead::with_rate(800.0, 4096.0, None)));
        cloud.register(
            vm,
            VmRecord { server: ServerId(0), priority: Priority::High, app: Some(AppId(1)) },
        );
    }
    server.add_vm(VmId(50), VmConfig::low_priority());
    cloud.register(VmId(50), VmRecord { server: ServerId(0), priority: Priority::Low, app: None });
    Rig { server, cloud, nm: NodeManager::new(PerfCloudConfig::default()), now: SimTime::ZERO }
}

impl Rig {
    fn intervals(&mut self, n: usize) {
        for _ in 0..n {
            for _ in 0..50 {
                self.server.tick(DT);
            }
            self.now += SimDuration::from_secs(5.0);
            self.nm.step(self.now, &mut self.server, &mut self.cloud);
        }
    }

    fn start_antagonist(&mut self) {
        self.server.spawn(VmId(50), Box::new(FioRandRead::new(None).with_modulation(3)));
    }
}

#[test]
fn control_is_persistent_across_quiet_periods() {
    // Algorithm 1: once identified, the antagonist stays under CUBIC
    // control — the cap probes up during quiet periods instead of being
    // released, so the next contention event throttles it instantly
    // without re-identification.
    let mut r = rig(6);
    r.intervals(3);
    r.start_antagonist();
    r.intervals(30);
    let trace = r.nm.io_cap_trace(VmId(50)).expect("antagonist was controlled");
    assert!(
        trace.len() >= 20,
        "control must persist, not release: only {} cap samples",
        trace.len()
    );
    let caps: Vec<f64> = trace.values().iter().filter_map(|v| *v).collect();
    let ceiling = PerfCloudConfig::default().release_level;
    assert!(caps.iter().all(|&c| c <= ceiling + 1e-9), "caps bounded by the probe ceiling");
    // The cap visits both throttled and non-binding levels (the limit cycle).
    assert!(caps.iter().any(|&c| c < 0.5));
    assert!(caps.iter().any(|&c| c > 1.0));
}

#[test]
fn no_throttle_is_ever_applied_without_an_antagonist() {
    let mut r = rig(6);
    r.intervals(20);
    assert!(r.nm.io_cap_trace(VmId(50)).is_none());
    assert!(!r.server.io_throttle(VmId(50)).unwrap().is_throttled());
}

#[test]
fn deregistered_vm_is_dropped_from_control() {
    let mut r = rig(6);
    r.intervals(3);
    r.start_antagonist();
    r.intervals(10);
    assert!(r.nm.io_cap_trace(VmId(50)).is_some(), "precondition: control engaged");
    // The VM disappears from the registry (teardown / migration).
    r.cloud.deregister(VmId(50));
    let before = r.nm.io_cap_trace(VmId(50)).map(|t| t.len()).unwrap_or(0);
    r.intervals(5);
    let after = r.nm.io_cap_trace(VmId(50)).map(|t| t.len()).unwrap_or(0);
    assert_eq!(before, after, "no further caps applied to a deregistered VM");
}

#[test]
fn two_victim_vms_are_the_minimum_for_detection() {
    // With a single app VM the deviation is undefined; PerfCloud must not
    // fire (and must not panic).
    let mut r = rig(1);
    r.start_antagonist();
    r.intervals(10);
    assert!(r.nm.io_cap_trace(VmId(50)).is_none());
}
