//! The pipeline seam must be invisible for the paper configuration.
//!
//! The [`Detector`]/[`Identifier`] traits lifted the paper's inlined
//! detection and identification behind seams. The adapters in
//! `pipeline::paper` must be *step-identical* to the pre-refactor code they
//! wrap — the free function [`detector::detect`] and the concrete
//! [`AntagonistIdentifier`] — for arbitrary telemetry, including the chaos
//! layer's garbage (missing samples, NaN/±inf, suspect churn). The golden
//! suite pins this end-to-end at the experiment level; these properties pin
//! it at the per-step level where a divergence would originate.
//!
//! Alongside the parity properties: the detector's documented edge cases
//! (strict threshold, single-VM and idle groups, NaN-corrupted latest) and
//! the identifier's window-eviction bound under suspect churn.

use perfcloud_core::antagonist::Resource;
use perfcloud_core::detector;
use perfcloud_core::pipeline::paper::{PaperDetector, PaperIdentifier};
use perfcloud_core::pipeline::{Detector, Identifier};
use perfcloud_core::{AntagonistIdentifier, PerfCloudConfig, PerformanceMonitor, VmMetricKind};
use perfcloud_host::VmId;
use perfcloud_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// Decodes one fuzzed slot into a metric sample: missing, NaN, ±inf, or a
/// plain finite value — the same garbage alphabet the chaos layer produces.
fn decode(tag: u8, val: f64) -> Option<f64> {
    match tag {
        0 => None,
        1 => Some(f64::NAN),
        2 => Some(f64::INFINITY),
        3 => Some(f64::NEG_INFINITY),
        _ => Some(val),
    }
}

/// NaN-aware equality for optional floats: chaos telemetry legitimately
/// produces NaN deviations/correlations, and both sides must produce the
/// *same* NaN-ness, which `PartialEq` cannot express.
fn same_opt(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
        _ => false,
    }
}

/// Pushes one synthetic interval of (iowait ratio, CPI) pairs for `vms`.
fn push_interval(mon: &mut PerformanceMonitor, now: SimTime, vms: &[VmId], slots: &[(u8, f64)]) {
    for (i, &vm) in vms.iter().enumerate() {
        let (io_tag, io_val) = slots[2 * i];
        let (cpi_tag, cpi_val) = slots[2 * i + 1];
        mon.push_synthetic(vm, VmMetricKind::IowaitRatio, now, decode(io_tag, io_val));
        mon.push_synthetic(vm, VmMetricKind::Cpi, now, decode(cpi_tag, cpi_val));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `PaperDetector` (behind the trait) and the pre-seam free function
    /// agree exactly — same deviations, same verdicts — on arbitrary
    /// monitor states.
    #[test]
    fn paper_detector_is_step_identical_to_the_free_function(
        intervals in proptest::collection::vec(
            proptest::collection::vec((0u8..10, -1.0e4f64..1.0e4), 8),
            1..12,
        ),
    ) {
        let cfg = PerfCloudConfig::default();
        let vms: Vec<VmId> = (0..4).map(VmId).collect();
        let mut mon = PerformanceMonitor::new(&cfg);
        let mut adapter = PaperDetector::new(&cfg);
        let mut now = SimTime::ZERO;
        for slots in &intervals {
            now = now.saturating_add(SimDuration::from_secs(5.0));
            push_interval(&mut mon, now, &vms, slots);
            let via_trait = adapter.detect(&mon, &vms);
            let direct = detector::detect(&mon, &vms, cfg.h_io, cfg.h_cpi);
            prop_assert!(same_opt(via_trait.io_deviation, direct.io_deviation));
            prop_assert!(same_opt(via_trait.cpi_deviation, direct.cpi_deviation));
            prop_assert_eq!(via_trait.io_contended, direct.io_contended);
            prop_assert_eq!(via_trait.cpu_contended, direct.cpu_contended);
        }
    }

    /// `PaperIdentifier` (behind the trait) and the concrete
    /// `AntagonistIdentifier` agree exactly — same correlations, same
    /// identified sets, same deviation series — under fuzzed deviations,
    /// usage garbage, and suspect churn.
    #[test]
    fn paper_identifier_is_step_identical_to_the_concrete_type(
        schedule in proptest::collection::vec(
            // (io_dev tag/val, usage tag/val per suspect ×2, membership mask)
            ((0u8..10, -1.0e3f64..1.0e3), (0u8..10, -1.0e3f64..1.0e3), (0u8..10, -1.0e3f64..1.0e3), 0u8..4),
            2..30,
        ),
    ) {
        let cfg = PerfCloudConfig { min_corr_samples: 2, ..Default::default() };
        let all: [VmId; 2] = [VmId(10), VmId(11)];
        let mut mon = PerformanceMonitor::new(&cfg);
        let mut adapter = PaperIdentifier::new(&cfg);
        let mut concrete = AntagonistIdentifier::new(&cfg);
        let mut now = SimTime::ZERO;
        let mut out_a = Vec::new();
        let mut out_c = Vec::new();
        for &((dtag, dval), (u0tag, u0val), (u1tag, u1val), mask) in &schedule {
            now = now.saturating_add(SimDuration::from_secs(5.0));
            mon.push_synthetic(all[0], VmMetricKind::IoBps, now, decode(u0tag, u0val));
            mon.push_synthetic(all[1], VmMetricKind::IoBps, now, decode(u1tag, u1val));
            // Membership mask churns the suspect set: 0 = none, 1 = first,
            // 2 = second, 3 = both.
            let suspects: Vec<VmId> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &vm)| vm)
                .collect();
            let dev = decode(dtag, dval);
            adapter.observe(now, dev, None, &mon, &suspects);
            concrete.observe(now, dev, None, &mon, &suspects);
            for &vm in &all {
                prop_assert!(same_opt(
                    adapter.correlation(vm, Resource::Io),
                    concrete.correlation(vm, Resource::Io)
                ));
            }
            adapter.identify_into(&suspects, Resource::Io, &mon, &mut out_a);
            concrete.identify_into(&suspects, Resource::Io, &mut out_c);
            prop_assert_eq!(&out_a, &out_c);
        }
        let sa = adapter.deviation_series(Resource::Io);
        let sc = concrete.deviation_series(Resource::Io);
        prop_assert_eq!(sa.times(), sc.times());
        prop_assert_eq!(sa.len(), sc.len());
        for (a, b) in sa.values().iter().zip(sc.values()) {
            prop_assert!(same_opt(*a, *b));
        }
    }
}

// --- Detector edge cases (strict threshold, degenerate groups, NaN). ---

fn monitor_with(values: &[(u32, Option<f64>)]) -> (PerformanceMonitor, Vec<VmId>) {
    let cfg = PerfCloudConfig::default();
    let mut mon = PerformanceMonitor::new(&cfg);
    let now = SimTime::from_secs(5);
    let mut vms = Vec::new();
    for &(id, v) in values {
        let vm = VmId(id);
        vms.push(vm);
        mon.push_synthetic(vm, VmMetricKind::IowaitRatio, now, v);
    }
    (mon, vms)
}

#[test]
fn deviation_exactly_at_threshold_does_not_fire() {
    // Two VMs at {0, 20}: the population stddev is exactly 10.0 = ℋ_io.
    // Eq. 1 is strict (`> ℋ`), so this must NOT be contention.
    let (mon, vms) = monitor_with(&[(0, Some(0.0)), (1, Some(20.0))]);
    let signal = detector::detect(&mon, &vms, 10.0, 1.0);
    assert_eq!(signal.io_deviation, Some(10.0));
    assert!(!signal.io_contended, "deviation == ℋ must not fire (strict >)");
    // Any separation past the threshold does fire.
    let (mon2, vms2) = monitor_with(&[(0, Some(0.0)), (1, Some(20.1))]);
    assert!(detector::detect(&mon2, &vms2, 10.0, 1.0).io_contended);
}

#[test]
fn single_vm_group_has_no_deviation() {
    // "Across VMs" needs a population: one VM can never show asymmetry.
    let (mon, vms) = monitor_with(&[(0, Some(1_000.0))]);
    let signal = detector::detect(&mon, &vms, 10.0, 1.0);
    assert_eq!(signal.io_deviation, None);
    assert!(!signal.io_contended);
}

#[test]
fn all_idle_group_has_no_deviation() {
    // Every VM idle this interval (missing latest) — no evidence, no fire.
    let (mon, vms) = monitor_with(&[(0, None), (1, None), (2, None)]);
    let signal = detector::detect(&mon, &vms, 10.0, 1.0);
    assert_eq!(signal.io_deviation, None);
    assert!(!signal.io_contended);
    assert_eq!(signal.cpi_deviation, None, "no CPI samples were pushed at all");
}

#[test]
fn nan_corrupted_latest_is_excluded_from_the_population() {
    // A chaos-corrupted NaN reaching a VM's latest sample is excluded from
    // the across-VM population rather than poisoning it: the deviation is
    // computed over the remaining finite values, so real contention on the
    // clean majority still fires.
    let (mon, vms) = monitor_with(&[(0, Some(0.0)), (1, Some(500.0)), (2, Some(f64::NAN))]);
    let signal = detector::detect(&mon, &vms, 10.0, 1.0);
    assert_eq!(signal.io_deviation, Some(250.0), "stddev of the two finite values only");
    assert!(signal.io_contended);

    // And when the corruption leaves fewer than two finite values, there is
    // no population at all — no deviation, no fire, no throttling on
    // garbage.
    let (mon2, vms2) = monitor_with(&[(0, Some(5.0)), (1, Some(f64::NAN))]);
    let signal2 = detector::detect(&mon2, &vms2, 10.0, 1.0);
    assert_eq!(signal2.io_deviation, None);
    assert!(!signal2.io_contended);
}

// --- Identifier window hygiene under suspect churn. ---

#[test]
fn windows_stay_bounded_under_suspect_churn() {
    // A long parade of short-lived suspects: each interval retires one VM
    // and introduces another. Without the eviction in `observe`, the window
    // map would grow with every VM ever seen; with it, the live count can
    // never exceed the current suspect set.
    let cfg = PerfCloudConfig::default();
    let mut mon = PerformanceMonitor::new(&cfg);
    let mut ident = AntagonistIdentifier::new(&cfg);
    let mut now = SimTime::ZERO;
    for round in 0..200u32 {
        now = now.saturating_add(SimDuration::from_secs(5.0));
        let suspects: Vec<VmId> = (round..round + 3).map(VmId).collect();
        for &vm in &suspects {
            mon.push_synthetic(vm, VmMetricKind::IoBps, now, Some(f64::from(vm.0)));
        }
        ident.observe(now, Some(1.0 + f64::from(round)), None, &mon, &suspects);
        assert!(
            ident.window_count(Resource::Io) <= suspects.len(),
            "round {round}: {} windows for {} suspects",
            ident.window_count(Resource::Io),
            suspects.len()
        );
    }
    // After the churn settles to a single suspect, exactly one window lives.
    let last = VmId(300);
    mon.push_synthetic(last, VmMetricKind::IoBps, now, Some(1.0));
    ident.observe(now.saturating_add(SimDuration::from_secs(5.0)), Some(1.0), None, &mon, &[last]);
    assert_eq!(ident.window_count(Resource::Io), 1);
    // No CPU usage metric (LLC miss rate) was ever pushed, so no CPU window
    // was ever opened — unknown suspects leave no state behind.
    assert_eq!(ident.window_count(Resource::Cpu), 0);
}

#[test]
fn boxed_pipelines_are_send() {
    // Node managers are stepped from shard worker threads; the seam must
    // not regress that.
    fn assert_send<T: Send>() {}
    assert_send::<Box<dyn Detector>>();
    assert_send::<Box<dyn Identifier>>();
}
