//! The node manager: Algorithm 1 (§III-D.2).
//!
//! One decentralized agent per physical server. Each sampling interval it
//! (1) fetches VM priorities and application membership from the cloud
//! manager, (2) samples the performance monitor, (3) computes the across-VM
//! deviations of block-iowait ratio and CPI for the high-priority
//! application, (4) identifies antagonists by cross-correlation, and (5)
//! runs the CUBIC CPU-control and I/O-control modules, applying the
//! resulting caps through the hypervisor's `vcpu_quota` and blkio-throttle
//! actuators. Caps are released once the controller has probed past the
//! point where the throttle binds.

use crate::antagonist::Resource;
use crate::chaos::{ManagerFault, NodeFaults};
use crate::cloud::{AppId, CloudManager, Placement, PlacementEpoch};
use crate::config::PerfCloudConfig;
use crate::cubic::{CubicController, CubicState};
use crate::detector::ContentionSignal;
use crate::monitor::{PerformanceMonitor, VmMetricKind};
use crate::pipeline::{Detector, Identifier, PipelineSpec};
use perfcloud_host::throttle::{CpuCap, IoThrottle};
use perfcloud_host::{PhysicalServer, VmId};
use perfcloud_obs::{FlightEvent, FlightRecorder, SAMPLE_EVENT_DECIMATION};
use perfcloud_sim::SimTime;
use perfcloud_stats::TimeSeries;
use perfcloud_telemetry::{CounterSource, Sample, SimSource};
use std::collections::BTreeMap;

/// Maps the agent's resource dimension onto the obs crate's copy of it
/// (obs is dependency-free and cannot use [`Resource`] directly).
fn obs_resource(resource: Resource) -> perfcloud_obs::flight::Resource {
    match resource {
        Resource::Io => perfcloud_obs::flight::Resource::Io,
        Resource::Cpu => perfcloud_obs::flight::Resource::Cpu,
    }
}

/// Floors below which an observed usage is not worth capping at; avoids
/// freezing a VM that happened to be momentarily idle when control began.
const MIN_REF_IOPS: f64 = 20.0;
const MIN_REF_BPS: f64 = 1.0e6;
const MIN_REF_CORES: f64 = 0.1;

#[derive(Debug, Clone, Copy)]
struct Controlled {
    state: CubicState,
    ref_iops: f64,
    ref_bps: f64,
    ref_cores: f64,
}

/// What one node-manager step observed and did.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// The contention signal at this interval (for the controlled app).
    pub signal: Option<ContentionSignal>,
    /// VMs identified as I/O antagonists this interval.
    pub io_antagonists: Vec<VmId>,
    /// VMs identified as processor antagonists this interval.
    pub cpu_antagonists: Vec<VmId>,
    /// Normalized I/O caps currently applied (VM, cap fraction).
    pub io_caps: Vec<(VmId, f64)>,
    /// Normalized CPU caps currently applied (VM, cap fraction).
    pub cpu_caps: Vec<(VmId, f64)>,
    /// The manager was stalled and skipped this interval entirely.
    pub stalled: bool,
    /// The manager crash-restarted this interval, losing its windows.
    pub restarted: bool,
    /// Decisions ran on a cached (or no) placement view this interval.
    pub placement_stale: bool,
}

impl StepReport {
    /// A report for an interval in which the manager took no action.
    fn idle() -> Self {
        StepReport {
            signal: None,
            io_antagonists: Vec::new(),
            cpu_antagonists: Vec::new(),
            io_caps: Vec::new(),
            cpu_caps: Vec::new(),
            stalled: false,
            restarted: false,
            placement_stale: false,
        }
    }

    /// Resets to the idle state, keeping the list buffers' capacity, so one
    /// report can be refilled every interval by
    /// [`NodeManager::step_into`].
    pub fn clear(&mut self) {
        self.signal = None;
        self.io_antagonists.clear();
        self.cpu_antagonists.clear();
        self.io_caps.clear();
        self.cpu_caps.clear();
        self.stalled = false;
        self.restarted = false;
        self.placement_stale = false;
    }
}

impl Default for StepReport {
    fn default() -> Self {
        StepReport::idle()
    }
}

/// What [`NodeManager::apply_placement`] did with an incoming update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementApplyOutcome {
    /// The update was at or above the last-applied epoch and was cached.
    Applied,
    /// The update's epoch was below the last-applied one (a restarted or
    /// superseded coordinator): ignored, and — deliberately — the staleness
    /// clock was *not* reset, so the bounded-staleness guard keeps counting.
    RejectedStaleEpoch,
}

/// The per-server PerfCloud agent.
#[derive(Clone)]
pub struct NodeManager {
    config: PerfCloudConfig,
    pipeline: PipelineSpec,
    controller: CubicController,
    monitor: PerformanceMonitor,
    detector: Box<dyn Detector>,
    identifier: Box<dyn Identifier>,
    io_controlled: BTreeMap<VmId, Controlled>,
    cpu_controlled: BTreeMap<VmId, Controlled>,
    io_cap_trace: BTreeMap<VmId, TimeSeries>,
    cpu_cap_trace: BTreeMap<VmId, TimeSeries>,
    controlled_app: Option<AppId>,
    faults: Option<NodeFaults>,
    /// Where counter samples come from. Defaults to [`SimSource`] (the
    /// direct hypervisor read); experiments can swap in a replay stream or
    /// a host-side cgroup collector. Deliberately *not* reset on
    /// crash-restart: the collector is a separate process from the agent.
    source: Box<dyn CounterSource>,
    /// Scratch for the current interval's collected batch; reused so the
    /// steady-state sample path stays allocation-free.
    sample_buf: Vec<Sample>,
    /// When teeing, raw (pre-fault) samples accumulate here until the
    /// experiment drains them into its recording writer.
    tee: Option<Vec<Sample>>,
    /// Samples collected since construction, for decimating
    /// `SampleIngested` flight events.
    collected: u64,
    /// Optional flight recorder; all hooks are a single branch when absent
    /// and record fixed-size `Copy` events when present (never allocating
    /// either way). Pure observation: attaching one changes no decision.
    flight: Option<FlightRecorder>,
    /// Whether the previous decision interval saw contention, so the
    /// recorder logs onset/clear *transitions* rather than every interval.
    was_contended: bool,
    /// This interval's placement view (scratch, refilled every step).
    placement: Placement,
    /// Last placement view successfully fetched from the cloud manager, for
    /// riding out desynchronization; `cache_fetched` is its fetch time.
    placement_cache: Placement,
    cache_fetched: Option<SimTime>,
    /// Epoch of the last applied [`Self::apply_placement`] update; updates
    /// below it are rejected (epoch-regression protection).
    last_epoch: Option<PlacementEpoch>,
    /// Set by [`Self::apply_placement`], consumed by [`Self::step_synced`]:
    /// whether an update arrived since the previous step.
    placement_fresh: bool,
    /// Colocation notices waiting to be shipped to the cloud manager (a
    /// direct call on the in-process path, a `Colocation` message on the
    /// control-plane path).
    colocation_outbox: Vec<Vec<AppId>>,
    /// Scratch for VMs leaving the controlled set in [`Self::control`].
    departed: Vec<VmId>,
    /// Whether the control modules may actuate caps. With actuation off
    /// the full detect/identify pipeline still runs (and its verdicts are
    /// exported via [`Self::identified`]) but no throttle is ever
    /// enrolled — the migrate-only mitigation mode.
    actuation: bool,
    /// Verdicts of the most recent decision interval, exported for
    /// placement policies: every `(vm, resource)` the identifier fingered
    /// this step. Cleared at the start of each step.
    identified: Vec<(VmId, Resource)>,
}

impl NodeManager {
    /// Creates an agent with the given configuration and the paper's own
    /// detection/identification pipeline.
    pub fn new(config: PerfCloudConfig) -> Self {
        NodeManager::with_pipeline(config, PipelineSpec::default())
    }

    /// Creates an agent running an alternative pipeline over the same
    /// monitor, controller, and actuators. The default spec reproduces
    /// [`NodeManager::new`] byte-for-byte.
    pub fn with_pipeline(config: PerfCloudConfig, pipeline: PipelineSpec) -> Self {
        config.validate();
        NodeManager {
            controller: CubicController::new(config.beta, config.gamma),
            monitor: PerformanceMonitor::new(&config),
            detector: pipeline.build_detector(&config),
            identifier: pipeline.build_identifier(&config),
            config,
            pipeline,
            io_controlled: BTreeMap::new(),
            cpu_controlled: BTreeMap::new(),
            io_cap_trace: BTreeMap::new(),
            cpu_cap_trace: BTreeMap::new(),
            controlled_app: None,
            faults: None,
            source: Box::new(SimSource::new()),
            sample_buf: Vec::new(),
            tee: None,
            collected: 0,
            flight: None,
            was_contended: false,
            placement: Placement::default(),
            placement_cache: Placement::default(),
            cache_fetched: None,
            last_epoch: None,
            placement_fresh: false,
            colocation_outbox: Vec::new(),
            departed: Vec::new(),
            actuation: true,
            identified: Vec::new(),
        }
    }

    /// Enables or disables cap actuation. With actuation off the agent
    /// still detects and identifies (feeding [`Self::identified`]) but
    /// never enrolls a VM for throttling; caps already applied keep being
    /// stepped and released normally.
    pub fn set_actuation(&mut self, on: bool) {
        self.actuation = on;
    }

    /// This interval's identify verdicts: every `(vm, resource)` pair the
    /// identifier fingered in the most recent step, in report order (I/O
    /// first, then CPU; VMs in identifier order within each resource).
    pub fn identified(&self) -> &[(VmId, Resource)] {
        &self.identified
    }

    /// Intervals the manager will run on a cached placement view before
    /// refusing to make decisions (bounded staleness).
    pub const MAX_PLACEMENT_STALENESS: u32 = 12;

    /// Attaches a fault scenario; every subsequent step goes through it.
    pub fn attach_faults(&mut self, faults: NodeFaults) {
        self.faults = Some(faults);
    }

    /// Attaches a flight recorder retaining the last `capacity` agent
    /// events (detection onset/clear, antagonist identification, throttle
    /// and release, cap updates, crash/restart, placement staleness, and
    /// ingest rejections). All recorder storage is allocated here; the
    /// record path stays allocation-free.
    pub fn attach_flight(&mut self, capacity: usize) {
        self.flight = Some(FlightRecorder::with_capacity(capacity));
    }

    /// The attached flight recorder, if any.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// The underlying monitor (read access for experiments).
    pub fn monitor(&self) -> &PerformanceMonitor {
        &self.monitor
    }

    /// The identifier, which holds the victim deviation time series.
    pub fn identifier(&self) -> &dyn Identifier {
        self.identifier.as_ref()
    }

    /// The pipeline this agent runs (the default is the paper's).
    pub fn pipeline(&self) -> PipelineSpec {
        self.pipeline
    }

    /// Trace of normalized I/O caps applied to `vm` over time.
    pub fn io_cap_trace(&self, vm: VmId) -> Option<&TimeSeries> {
        self.io_cap_trace.get(&vm)
    }

    /// Trace of normalized CPU caps applied to `vm` over time.
    pub fn cpu_cap_trace(&self, vm: VmId) -> Option<&TimeSeries> {
        self.cpu_cap_trace.get(&vm)
    }

    /// Epoch of the last applied placement update, if any arrived via
    /// [`Self::apply_placement`].
    pub fn last_epoch(&self) -> Option<PlacementEpoch> {
        self.last_epoch
    }

    /// Delivers a `PlacementUpdate` message: caches `view` as the current
    /// placement unless its `epoch` is below the last-applied one.
    ///
    /// On rejection nothing changes — in particular `cache_fetched` keeps its
    /// old timestamp, so a stale coordinator cannot silently reset the
    /// bounded-staleness clock with outdated views (the epoch-regression
    /// window of a restarted cloud manager whose volatile publish counter
    /// started over).
    pub fn apply_placement(
        &mut self,
        now: SimTime,
        epoch: PlacementEpoch,
        view: &Placement,
    ) -> PlacementApplyOutcome {
        if self.last_epoch.is_some_and(|last| epoch < last) {
            return PlacementApplyOutcome::RejectedStaleEpoch;
        }
        self.last_epoch = Some(epoch);
        self.placement_cache.clone_from(view);
        self.cache_fetched = Some(now);
        self.placement_fresh = true;
        PlacementApplyOutcome::Applied
    }

    /// Pops one pending colocation notice (multiple high-priority apps seen
    /// on this server), for shipping to the cloud manager as a message.
    pub fn take_colocation_notice(&mut self) -> Option<Vec<AppId>> {
        self.colocation_outbox.pop()
    }

    /// One interval of Algorithm 1. Call every `config.sample_interval`.
    ///
    /// Convenience wrapper over [`Self::step_into`] that returns a fresh
    /// report; hot loops should hold one report and use `step_into`, which
    /// is allocation-free in steady state.
    pub fn step(
        &mut self,
        now: SimTime,
        server: &mut PhysicalServer,
        cloud: &mut CloudManager,
    ) -> StepReport {
        let mut report = StepReport::idle();
        self.step_into(now, server, cloud, &mut report);
        report
    }

    /// One interval of Algorithm 1, writing what happened into `report`
    /// (cleared first, buffers reused).
    ///
    /// This is the in-process path: placement comes from a direct call into
    /// the cloud-manager registry and colocation notices are delivered
    /// synchronously. Cluster experiments instead run the message path —
    /// [`Self::apply_placement`] plus [`Self::step_synced`] — where the same
    /// information flows through the control plane.
    pub fn step_into(
        &mut self,
        now: SimTime,
        server: &mut PhysicalServer,
        cloud: &mut CloudManager,
        report: &mut StepReport,
    ) {
        report.clear();
        self.identified.clear();

        // (0) Manager-level faults: a crashed agent loses its in-memory
        // state and restarts. (Stalls and placement desync are control-plane
        // conditions; on this direct path they cannot occur.)
        if let Some(faults) = self.faults.as_mut() {
            if faults.begin_interval(now) == ManagerFault::Crashed {
                self.crash_restart(now, server);
                report.restarted = true;
                return;
            }
        }

        // (1) Fetch placement and priorities from the cloud manager.
        cloud.placement_into(server.id, &mut self.placement);
        self.placement_cache.clone_from(&self.placement);
        self.cache_fetched = Some(now);

        // (2) Sample all VMs (through the fault filter, when attached).
        self.sample(now, server);

        // Decide on the placement view with the scratch moved out of `self`,
        // so the decision path can borrow the manager mutably; moving a
        // `Placement` swaps pointers, it does not copy or allocate.
        let placement = std::mem::take(&mut self.placement);
        self.decide(now, server, &placement, report);
        self.placement = placement;

        // Synchronous delivery of anything the decision wanted to tell the
        // cloud manager (a message send on the control-plane path).
        for apps in self.colocation_outbox.drain(..) {
            cloud.notify_colocation(server.id, apps);
        }
    }

    /// One interval of Algorithm 1 on the message path: placement arrives
    /// beforehand via [`Self::apply_placement`], stalls are imposed by the
    /// control plane (`stalled`), and colocation notices are left in the
    /// outbox for the caller to ship.
    ///
    /// If no update arrived since the previous step, the manager rides its
    /// cached view up to [`Self::MAX_PLACEMENT_STALENESS`] intervals, then
    /// keeps the metric windows warm but stops making control decisions —
    /// exactly the bounded-staleness behavior the direct path had under
    /// placement desync.
    pub fn step_synced(
        &mut self,
        now: SimTime,
        server: &mut PhysicalServer,
        stalled: bool,
        report: &mut StepReport,
    ) {
        report.clear();
        self.identified.clear();

        // (0) A crash beats a stall, as on the direct path: the process dies
        // and restarts with clean state.
        if let Some(faults) = self.faults.as_mut() {
            if faults.begin_interval(now) == ManagerFault::Crashed {
                self.crash_restart(now, server);
                report.restarted = true;
                return;
            }
        }
        if stalled {
            report.stalled = true;
            return;
        }

        // (1) Use the placement update that arrived this interval — or ride
        // the cached view up to the bounded-staleness limit.
        if !std::mem::take(&mut self.placement_fresh) {
            let limit = self.config.sample_interval.mul_f64(Self::MAX_PLACEMENT_STALENESS as f64);
            let fresh_enough =
                self.cache_fetched.is_some_and(|fetched| now.saturating_since(fetched) <= limit);
            if let Some(fl) = self.flight.as_mut() {
                let staleness = match self.cache_fetched {
                    Some(fetched) => {
                        (now.saturating_since(fetched).as_micros()
                            / self.config.sample_interval.as_micros())
                            as u32
                    }
                    None => u32::MAX,
                };
                fl.record(
                    now.as_micros(),
                    FlightEvent::PlacementStale { server: server.id.0, staleness },
                );
            }
            if !fresh_enough {
                // The cached view is too old to act on safely. Keep the
                // metric windows warm but make no control decisions.
                self.sample(now, server);
                report.placement_stale = true;
                return;
            }
            report.placement_stale = true;
        }
        self.placement.clone_from(&self.placement_cache);

        // (2) Sample all VMs (through the fault filter, when attached).
        self.sample(now, server);

        let placement = std::mem::take(&mut self.placement);
        self.decide(now, server, &placement, report);
        self.placement = placement;
    }

    /// Steps (3)–(5) of Algorithm 1 on an already-fetched placement view.
    fn decide(
        &mut self,
        now: SimTime,
        server: &mut PhysicalServer,
        placement: &Placement,
        report: &mut StepReport,
    ) {
        // Multiple high-priority applications colocated → queue a notice for
        // the cloud manager (the paper's hook for migration-based
        // resolution); control the first.
        if placement.apps.len() > 1 {
            self.colocation_outbox.push(placement.apps.clone());
        }
        let Some(&app) = placement.apps.first() else {
            // Nothing to protect on this server; release any leftover caps.
            self.release_all(server, now);
            return;
        };
        if self.controlled_app != Some(app) {
            self.controlled_app = Some(app);
        }

        // (3) Deviations across the application's VMs.
        let signal = self.detector.detect(&self.monitor, &placement.members);
        self.identifier.observe(
            now,
            signal.io_deviation,
            signal.cpi_deviation,
            &self.monitor,
            &placement.suspects,
        );

        // (4) Identify antagonists.
        self.identifier.identify_into(
            &placement.suspects,
            Resource::Io,
            &self.monitor,
            &mut report.io_antagonists,
        );
        self.identifier.identify_into(
            &placement.suspects,
            Resource::Cpu,
            &self.monitor,
            &mut report.cpu_antagonists,
        );

        // Export the verdicts for placement policies, independent of
        // whether actuation will act on them.
        self.identified.extend(report.io_antagonists.iter().map(|&vm| (vm, Resource::Io)));
        self.identified.extend(report.cpu_antagonists.iter().map(|&vm| (vm, Resource::Cpu)));

        // Flight: detection transitions and newly identified antagonists
        // (ones not yet under control — enrollment records the throttle).
        if let Some(fl) = self.flight.as_mut() {
            let t = now.as_micros();
            let contended = signal.io_contended || signal.cpu_contended;
            if contended && !self.was_contended {
                fl.record(
                    t,
                    FlightEvent::DetectOnset {
                        server: server.id.0,
                        io: signal.io_contended,
                        cpu: signal.cpu_contended,
                    },
                );
            } else if !contended && self.was_contended {
                fl.record(t, FlightEvent::DetectClear { server: server.id.0 });
            }
            self.was_contended = contended;
            for &vm in report.io_antagonists.iter() {
                if !self.io_controlled.contains_key(&vm) {
                    fl.record(
                        t,
                        FlightEvent::AntagonistIdentified {
                            server: server.id.0,
                            vm: u64::from(vm.0),
                            resource: perfcloud_obs::flight::Resource::Io,
                        },
                    );
                }
            }
            for &vm in report.cpu_antagonists.iter() {
                if !self.cpu_controlled.contains_key(&vm) {
                    fl.record(
                        t,
                        FlightEvent::AntagonistIdentified {
                            server: server.id.0,
                            vm: u64::from(vm.0),
                            resource: perfcloud_obs::flight::Resource::Cpu,
                        },
                    );
                }
            }
        }

        // (5) Control modules.
        self.control(
            Resource::Io,
            signal.io_contended,
            &report.io_antagonists,
            &placement.suspects,
            server,
            now,
            &mut report.io_caps,
        );
        self.control(
            Resource::Cpu,
            signal.cpu_contended,
            &report.cpu_antagonists,
            &placement.suspects,
            server,
            now,
            &mut report.cpu_caps,
        );

        report.signal = Some(signal);
    }

    /// Samples all VMs: collect from the configured [`CounterSource`], tee
    /// the raw batch if a recording is active, then ingest through the
    /// fault filter when one is attached.
    fn sample(&mut self, now: SimTime, server: &PhysicalServer) {
        self.sample_buf.clear();
        self.source.collect_into(now, server, &mut self.sample_buf);
        if let Some(tee) = self.tee.as_mut() {
            tee.extend_from_slice(&self.sample_buf);
        }
        // Collector flight events are gated on telemetry actually being in
        // play (a tee or a non-sim source) so the default simulated path
        // emits byte-identical flight traces to before this seam existed.
        let telemetry_active = self.tee.is_some() || !self.source.is_sim();
        if telemetry_active {
            if let Some(fl) = self.flight.as_mut() {
                let t = now.as_micros();
                fl.record(
                    t,
                    FlightEvent::FlushBatch {
                        server: server.id.0,
                        count: self.sample_buf.len() as u64,
                    },
                );
                for (vm, count) in self.source.take_drops() {
                    fl.record(
                        t,
                        FlightEvent::SampleDropped {
                            server: server.id.0,
                            vm: u64::from(vm.0),
                            count,
                        },
                    );
                }
                for s in &self.sample_buf {
                    if self.collected.is_multiple_of(SAMPLE_EVENT_DECIMATION) {
                        fl.record(
                            t,
                            FlightEvent::SampleIngested {
                                server: server.id.0,
                                vm: u64::from(s.vm.0),
                            },
                        );
                    }
                    self.collected += 1;
                }
            } else {
                self.collected += self.sample_buf.len() as u64;
                self.source.take_drops();
            }
        }
        match self.faults.as_mut() {
            Some(faults) => faults.sample(
                now,
                self.config.sample_interval,
                &mut self.monitor,
                &self.sample_buf,
                self.flight.as_mut(),
            ),
            None => {
                for s in &self.sample_buf {
                    let _ = self.monitor.ingest(s.time, s.vm, s.snapshot);
                }
            }
        }
    }

    /// Replaces the counter source. The default is [`SimSource`]; pass a
    /// `ReplaySource` to re-drive a recording or a `HostCollector` to read
    /// real cgroup files.
    pub fn set_source(&mut self, source: Box<dyn CounterSource>) {
        self.source = source;
    }

    /// Name of the active counter source (`"sim"`, `"replay"`, `"cgroup"`).
    pub fn source_name(&self) -> &'static str {
        self.source.name()
    }

    /// Starts teeing every raw (pre-fault) collected sample into an
    /// internal buffer, drained by [`NodeManager::drain_tee_into`].
    pub fn enable_tee(&mut self) {
        if self.tee.is_none() {
            self.tee = Some(Vec::new());
        }
    }

    /// Appends all teed samples since the last drain to `out` and clears
    /// the internal buffer. No-op when the tee is disabled.
    pub fn drain_tee_into(&mut self, out: &mut Vec<Sample>) {
        if let Some(tee) = self.tee.as_mut() {
            out.append(tee);
        }
    }

    /// Models the agent process dying and restarting: every in-memory rolling
    /// window, EWMA, controller state and cached placement is gone. The fresh
    /// process finds hypervisor caps it has no record of and releases them —
    /// clean-slate recovery; re-detection re-applies them within a bounded
    /// number of intervals (the windows re-warm from empty).
    fn crash_restart(&mut self, now: SimTime, server: &mut PhysicalServer) {
        if let Some(fl) = self.flight.as_mut() {
            fl.record(now.as_micros(), FlightEvent::ManagerRestart { server: server.id.0 });
        }
        self.was_contended = false;
        self.monitor = PerformanceMonitor::new(&self.config);
        self.detector.reset();
        self.identifier.reset();
        self.io_controlled.clear();
        self.cpu_controlled.clear();
        self.controlled_app = None;
        self.placement_cache.clear();
        self.cache_fetched = None;
        self.last_epoch = None;
        self.placement_fresh = false;
        self.colocation_outbox.clear();
        self.identified.clear();
        for vm in server.vm_ids() {
            if server.io_throttle(vm).is_some_and(|t| t.is_throttled()) {
                server.set_io_throttle(vm, IoThrottle::unlimited());
            }
            if server.cpu_cap(vm).is_some_and(|c| c.is_capped()) {
                server.set_cpu_cap(vm, CpuCap::unlimited());
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn control(
        &mut self,
        resource: Resource,
        contended: bool,
        antagonists: &[VmId],
        suspects: &[VmId],
        server: &mut PhysicalServer,
        now: SimTime,
        applied: &mut Vec<(VmId, f64)>,
    ) {
        applied.clear();
        let sid = server.id.0;
        let mut flight = self.flight.as_mut();
        // Drop control state for VMs that left the suspect set. One that is
        // still hosted here (deregistered or promoted in the cloud manager)
        // must have its cap released — nothing else will ever do it; one
        // that migrated keeps its caps, which travel with the hypervisor.
        {
            let departed = &mut self.departed;
            let controlled = match resource {
                Resource::Io => &mut self.io_controlled,
                Resource::Cpu => &mut self.cpu_controlled,
            };
            departed.clear();
            departed.extend(controlled.keys().filter(|vm| !suspects.contains(vm)).copied());
            for &vm in departed.iter() {
                controlled.remove(&vm);
                if server.hosts(vm) {
                    match resource {
                        Resource::Io => server.set_io_throttle(vm, IoThrottle::unlimited()),
                        Resource::Cpu => server.set_cpu_cap(vm, CpuCap::unlimited()),
                    }
                    if let Some(fl) = flight.as_deref_mut() {
                        fl.record(
                            now.as_micros(),
                            FlightEvent::Release { server: sid, vm: u64::from(vm.0) },
                        );
                    }
                }
            }
        }
        // Enroll newly identified antagonists while contention persists —
        // unless actuation is off (migrate-only mode), in which case the
        // verdicts are exported but no cap is ever applied.
        if contended && self.actuation {
            for &vm in antagonists {
                let already = match resource {
                    Resource::Io => self.io_controlled.contains_key(&vm),
                    Resource::Cpu => self.cpu_controlled.contains_key(&vm),
                };
                if already {
                    continue;
                }
                let ref_iops = self
                    .monitor
                    .latest_present(vm, VmMetricKind::IoIops)
                    .unwrap_or(0.0)
                    .max(MIN_REF_IOPS);
                let ref_bps = self
                    .monitor
                    .latest_present(vm, VmMetricKind::IoBps)
                    .unwrap_or(0.0)
                    .max(MIN_REF_BPS);
                let ref_cores = self
                    .monitor
                    .latest_present(vm, VmMetricKind::CpuCores)
                    .unwrap_or(0.0)
                    .max(MIN_REF_CORES);
                let c = Controlled { state: CubicState::new(), ref_iops, ref_bps, ref_cores };
                match resource {
                    Resource::Io => self.io_controlled.insert(vm, c),
                    Resource::Cpu => self.cpu_controlled.insert(vm, c),
                };
                if let Some(fl) = flight.as_deref_mut() {
                    fl.record(
                        now.as_micros(),
                        FlightEvent::Throttle {
                            server: sid,
                            vm: u64::from(vm.0),
                            resource: obs_resource(resource),
                        },
                    );
                }
            }
        }

        // Step every controlled VM. Control is persistent, as in Algorithm 1:
        // once identified, an antagonist stays under CUBIC control — during
        // quiet periods the cap probes up to `release_level` × the reference
        // usage, where the throttle no longer binds, and the next contention
        // event crashes it multiplicatively without needing a fresh
        // identification.
        let controller = self.controller;
        let ceiling = self.config.release_level;
        let controlled = match resource {
            Resource::Io => &mut self.io_controlled,
            Resource::Cpu => &mut self.cpu_controlled,
        };
        for (&vm, c) in controlled.iter_mut() {
            let cap = controller.step(&mut c.state, contended).min(ceiling);
            c.state.cap = cap;
            match resource {
                Resource::Io => {
                    server.set_io_throttle(
                        vm,
                        IoThrottle { iops: Some(cap * c.ref_iops), bps: Some(cap * c.ref_bps) },
                    );
                }
                Resource::Cpu => {
                    server.set_cpu_cap(vm, CpuCap { cores: Some(cap * c.ref_cores) });
                }
            }
            applied.push((vm, cap));
            if let Some(fl) = flight.as_deref_mut() {
                fl.record(
                    now.as_micros(),
                    FlightEvent::CapUpdate {
                        server: sid,
                        vm: u64::from(vm.0),
                        resource: obs_resource(resource),
                        level: cap,
                    },
                );
            }
        }

        // Trace the applied caps for the Fig. 10 harness.
        let trace = match resource {
            Resource::Io => &mut self.io_cap_trace,
            Resource::Cpu => &mut self.cpu_cap_trace,
        };
        for &(vm, cap) in applied.iter() {
            let series = trace.entry(vm).or_default();
            series.push(now, Some(cap));
            series.retain_last(4096);
        }
    }

    fn release_all(&mut self, server: &mut PhysicalServer, _now: SimTime) {
        for (&vm, _) in self.io_controlled.iter() {
            server.set_io_throttle(vm, IoThrottle::unlimited());
        }
        for (&vm, _) in self.cpu_controlled.iter() {
            server.set_cpu_cap(vm, CpuCap::unlimited());
        }
        self.io_controlled.clear();
        self.cpu_controlled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::VmRecord;
    use perfcloud_host::{Priority, ServerConfig, ServerId, VmConfig};
    use perfcloud_sim::{RngFactory, SimDuration};
    use perfcloud_workloads::{FioRandRead, SysbenchCpu};

    const DT: SimDuration = SimDuration::from_micros(100_000);

    struct Testbed {
        server: PhysicalServer,
        cloud: CloudManager,
        nm: NodeManager,
        now: SimTime,
        victims: Vec<VmId>,
    }

    /// 4 victim VMs (mild fio) + heavy fio antagonist (VM 10) + CPU decoy
    /// (VM 11) on one server.
    fn testbed(with_perfcloud_thresholds: (f64, f64)) -> Testbed {
        let mut server =
            PhysicalServer::new(ServerId(0), ServerConfig::default(), RngFactory::new(31), DT);
        let mut cloud = CloudManager::new();
        let victims: Vec<VmId> = (0..4).map(VmId).collect();
        for &vm in &victims {
            server.add_vm(vm, VmConfig::high_priority());
            server.spawn(vm, Box::new(FioRandRead::with_rate(300.0, 4096.0, None)));
            cloud.register(
                vm,
                VmRecord { server: ServerId(0), priority: Priority::High, app: Some(AppId(1)) },
            );
        }
        for vm in [VmId(10), VmId(11)] {
            server.add_vm(vm, VmConfig::low_priority());
            cloud
                .register(vm, VmRecord { server: ServerId(0), priority: Priority::Low, app: None });
        }
        server.spawn(VmId(11), Box::new(SysbenchCpu::new()));
        let (h_io, h_cpi) = with_perfcloud_thresholds;
        let nm = NodeManager::new(PerfCloudConfig { h_io, h_cpi, ..Default::default() });
        Testbed { server, cloud, nm, now: SimTime::ZERO, victims }
    }

    impl Testbed {
        /// Runs `n` sampling intervals (5 s each), returning all reports.
        fn run(&mut self, n: usize) -> Vec<StepReport> {
            let mut reports = Vec::new();
            for _ in 0..n {
                for _ in 0..50 {
                    self.server.tick(DT);
                }
                self.now += SimDuration::from_secs(5.0);
                reports.push(self.nm.step(self.now, &mut self.server, &mut self.cloud));
            }
            reports
        }

        /// Starts the heavy fio antagonist on VM 10 (the identification
        /// signal keys on this onset, as in the paper's case studies).
        fn start_antagonist(&mut self) {
            self.server.spawn(VmId(10), Box::new(FioRandRead::with_rate(20_000.0, 4096.0, None)));
        }
    }

    #[test]
    fn detects_identifies_and_throttles_the_fio_antagonist() {
        let mut tb = testbed((10.0, 1.0));
        let mut reports = tb.run(3);
        tb.start_antagonist();
        reports.extend(tb.run(10));
        // Detection: some interval flagged I/O contention.
        assert!(
            reports.iter().any(|r| r.signal.is_some_and(|s| s.io_contended)),
            "contention never detected"
        );
        // Identification: the fio VM (10) and never the CPU decoy (11).
        let ants: Vec<VmId> = reports.iter().flat_map(|r| r.io_antagonists.clone()).collect();
        assert!(ants.contains(&VmId(10)), "fio antagonist not identified");
        assert!(!ants.contains(&VmId(11)), "decoy wrongly identified");
        // Actuation: a throttle was applied to VM 10.
        assert!(
            reports.iter().any(|r| r.io_caps.iter().any(|&(vm, _)| vm == VmId(10))),
            "no cap applied"
        );
        assert!(tb.nm.io_cap_trace(VmId(10)).is_some());
    }

    #[test]
    fn throttling_reduces_victim_deviation() {
        // Same scenario with PerfCloud active vs. detection disabled
        // (thresholds at infinity): the tail-end deviation must be lower
        // with control.
        let tail_dev = |active: bool| {
            let th = if active { (10.0, 1.0) } else { (f64::INFINITY, f64::INFINITY) };
            let mut tb = testbed(th);
            tb.run(3);
            tb.start_antagonist();
            let reports = tb.run(16);
            let tail: Vec<f64> =
                reports[8..].iter().filter_map(|r| r.signal.and_then(|s| s.io_deviation)).collect();
            tail.iter().sum::<f64>() / tail.len() as f64
        };
        let with = tail_dev(true);
        let without = tail_dev(false);
        assert!(
            with < 0.7 * without,
            "PerfCloud should cut the iowait deviation: with={with:.2} without={without:.2}"
        );
    }

    #[test]
    fn caps_follow_cubic_shape() {
        let mut tb = testbed((10.0, 1.0));
        tb.run(3);
        tb.start_antagonist();
        tb.run(30);
        let trace = tb.nm.io_cap_trace(VmId(10)).expect("trace exists");
        let caps: Vec<f64> = trace.values().iter().filter_map(|v| *v).collect();
        assert!(caps.len() >= 3);
        // First applied cap is the multiplicative decrease (≈ 0.2).
        assert!((caps[0] - 0.2).abs() < 1e-9, "first cap should be 1-β = 0.2, got {}", caps[0]);
        // Caps must later recover above 0.5 of the reference (cubic growth).
        assert!(
            caps.iter().any(|&c| c > 0.5),
            "caps never recovered: max {:?}",
            caps.iter().cloned().fold(0.0f64, f64::max)
        );
    }

    #[test]
    fn no_app_on_server_means_no_control() {
        let mut server =
            PhysicalServer::new(ServerId(0), ServerConfig::default(), RngFactory::new(3), DT);
        let mut cloud = CloudManager::new();
        server.add_vm(VmId(0), VmConfig::low_priority());
        cloud.register(
            VmId(0),
            VmRecord { server: ServerId(0), priority: Priority::Low, app: None },
        );
        server.spawn(VmId(0), Box::new(FioRandRead::new(None)));
        let mut nm = NodeManager::new(PerfCloudConfig::default());
        for k in 1..=5u64 {
            for _ in 0..50 {
                server.tick(DT);
            }
            let r = nm.step(SimTime::from_secs(5 * k), &mut server, &mut cloud);
            assert_eq!(r.signal, None);
            assert!(r.io_caps.is_empty());
        }
        assert!(!server.io_throttle(VmId(0)).unwrap().is_throttled());
    }

    #[test]
    fn colocated_apps_trigger_notification() {
        let mut tb = testbed((10.0, 1.0));
        // Add a second high-priority app on the same server.
        tb.server.add_vm(VmId(20), VmConfig::high_priority());
        tb.cloud.register(
            VmId(20),
            VmRecord { server: ServerId(0), priority: Priority::High, app: Some(AppId(2)) },
        );
        tb.run(2);
        assert!(
            !tb.cloud.notifications().is_empty(),
            "node manager must notify the cloud manager about colocated apps"
        );
    }

    #[test]
    fn throttle_released_when_antagonist_leaves_placement() {
        let mut tb = testbed((10.0, 1.0));
        tb.run(3);
        tb.start_antagonist();
        tb.run(10);
        assert!(
            tb.server.io_throttle(VmId(10)).unwrap().is_throttled(),
            "precondition: antagonist under throttle"
        );
        // The VM is torn down in the cloud manager but the guest lingers on
        // this host: it leaves the suspect set, so the cap must come off.
        tb.cloud.deregister(VmId(10));
        tb.run(1);
        assert!(
            !tb.server.io_throttle(VmId(10)).unwrap().is_throttled(),
            "cap must be released when the VM disappears from placement"
        );
    }

    #[test]
    fn crash_restart_rewarns_and_redetects() {
        let mut tb = testbed((10.0, 1.0));
        tb.run(3);
        tb.start_antagonist();
        tb.run(10);
        assert!(tb.server.io_throttle(VmId(10)).unwrap().is_throttled());
        // Crash at the next interval boundary via an attached scenario.
        let crash_at = tb.now + SimDuration::from_secs(5.0);
        let scenario = perfcloud_sim::FaultScenario::named("crash-once").rule(
            perfcloud_sim::FaultRule::new("crash", perfcloud_sim::FaultKind::CrashRestart)
                .window(crash_at, crash_at + SimDuration::from_secs(1.0)),
        );
        tb.nm.attach_faults(crate::chaos::NodeFaults::new(1, scenario, 0));
        let reports = tb.run(1);
        assert!(reports[0].restarted);
        // Clean-slate recovery: the unknown cap was released…
        assert!(!tb.server.io_throttle(VmId(10)).unwrap().is_throttled());
        // …and with the antagonist still raging, re-detection re-throttles
        // within a bounded number of intervals (warm-up ≥ min_corr_samples).
        let reports = tb.run(8);
        assert!(
            reports.iter().any(|r| r.io_caps.iter().any(|&(vm, _)| vm == VmId(10))),
            "no re-throttle within 8 intervals of the restart"
        );
    }

    #[test]
    fn epoch_regression_is_ignored_and_does_not_reset_staleness() {
        use crate::cloud::PlacementEpoch;
        use crate::node_manager::PlacementApplyOutcome;
        let mut tb = testbed((10.0, 1.0));
        let interval = SimDuration::from_secs(5.0);
        let mut view = Placement::default();
        tb.cloud.placement_into(ServerId(0), &mut view);

        // A current coordinator publishes at epoch (term 2, seq 5).
        let fresh = PlacementEpoch { term: 2, seq: 5 };
        let t0 = SimTime::from_secs(5);
        assert_eq!(tb.nm.apply_placement(t0, fresh, &view), PlacementApplyOutcome::Applied);
        assert_eq!(tb.nm.last_epoch(), Some(fresh));

        // A restarted coordinator (same term, volatile seq back at 1) keeps
        // republishing stale epochs: every one must be rejected, the applied
        // epoch must not move, and the staleness clock must keep running.
        let mut report = StepReport::default();
        let mut now = t0;
        let mut stale_intervals = 0;
        for k in 0..(NodeManager::MAX_PLACEMENT_STALENESS as u64 + 2) {
            now += interval;
            let seq = k % 4 + 1; // always below the applied seq of 5
            let outcome = tb.nm.apply_placement(now, PlacementEpoch { term: 2, seq }, &view);
            assert_eq!(outcome, PlacementApplyOutcome::RejectedStaleEpoch, "seq {seq}");
            assert_eq!(tb.nm.last_epoch(), Some(fresh), "epoch must never regress");
            for _ in 0..50 {
                tb.server.tick(DT);
            }
            tb.nm.step_synced(now, &mut tb.server, false, &mut report);
            if report.placement_stale {
                stale_intervals += 1;
            }
        }
        // Had a rejection reset the clock, the stale counter would have been
        // wiped each interval and the bounded-staleness guard never tripped.
        assert!(
            stale_intervals > NodeManager::MAX_PLACEMENT_STALENESS,
            "rejected updates must not reset the staleness clock \
             (saw {stale_intervals} stale intervals)"
        );
        // Once the restarted coordinator's seq catches up, it is accepted.
        let caught_up = PlacementEpoch { term: 2, seq: 6 };
        assert_eq!(tb.nm.apply_placement(now, caught_up, &view), PlacementApplyOutcome::Applied);
        assert_eq!(tb.nm.last_epoch(), Some(caught_up));
        // A newer term always supersedes, whatever its seq.
        let new_term = PlacementEpoch { term: 3, seq: 1 };
        assert_eq!(tb.nm.apply_placement(now, new_term, &view), PlacementApplyOutcome::Applied);
    }

    #[test]
    fn step_synced_matches_direct_path_and_bounds_staleness() {
        // Two identical testbeds: one stepped through the direct in-process
        // path, one through the message path with an update applied each
        // interval. Their decisions must be identical.
        let mut direct = testbed((10.0, 1.0));
        let mut synced = testbed((10.0, 1.0));
        let mut view = Placement::default();
        let mut ra = StepReport::default();
        let mut rb = StepReport::default();
        let interval = SimDuration::from_secs(5.0);
        let mut now = SimTime::ZERO;
        for k in 0..12u64 {
            if k == 3 {
                direct.start_antagonist();
                synced.start_antagonist();
            }
            for _ in 0..50 {
                direct.server.tick(DT);
                synced.server.tick(DT);
            }
            now += interval;
            direct.nm.step_into(now, &mut direct.server, &mut direct.cloud, &mut ra);
            synced.cloud.placement_into(ServerId(0), &mut view);
            let epoch = crate::cloud::PlacementEpoch { term: 1, seq: k + 1 };
            synced.nm.apply_placement(now, epoch, &view);
            synced.nm.step_synced(now, &mut synced.server, false, &mut rb);
            assert_eq!(ra, rb, "direct and message paths diverged at interval {k}");
        }
        // Cut off updates: the synced manager rides its cache (stale but
        // deciding) for MAX_PLACEMENT_STALENESS intervals, then stops
        // deciding entirely.
        let mut decided_while_stale = 0;
        let mut refused = 0;
        for _ in 0..(NodeManager::MAX_PLACEMENT_STALENESS + 4) {
            for _ in 0..50 {
                synced.server.tick(DT);
            }
            now += interval;
            synced.nm.step_synced(now, &mut synced.server, false, &mut rb);
            assert!(rb.placement_stale);
            if rb.signal.is_some() {
                decided_while_stale += 1;
            } else {
                refused += 1;
            }
        }
        assert_eq!(decided_while_stale, NodeManager::MAX_PLACEMENT_STALENESS);
        assert!(refused >= 4, "past the limit the manager must refuse to decide");
        // A stalled interval does nothing at all.
        synced.nm.step_synced(now + interval, &mut synced.server, true, &mut rb);
        assert!(rb.stalled && rb.signal.is_none());
    }

    #[test]
    fn flight_recorder_captures_agent_events_without_changing_decisions() {
        let mut plain = testbed((10.0, 1.0));
        let mut observed = testbed((10.0, 1.0));
        observed.nm.attach_flight(512);
        plain.run(3);
        observed.run(3);
        plain.start_antagonist();
        observed.start_antagonist();
        let ra = plain.run(10);
        let rb = observed.run(10);
        assert_eq!(ra, rb, "attaching a flight recorder must not change any decision");
        let fl = observed.nm.flight().expect("recorder attached");
        assert!(fl.total_recorded() > 0);
        let has = |pred: fn(&FlightEvent) -> bool| fl.iter().any(|r| pred(&r.event));
        assert!(has(|e| matches!(e, FlightEvent::DetectOnset { io: true, .. })));
        assert!(has(|e| matches!(e, FlightEvent::AntagonistIdentified { vm: 10, .. })));
        assert!(has(|e| matches!(e, FlightEvent::Throttle { vm: 10, .. })));
        assert!(has(|e| matches!(e, FlightEvent::CapUpdate { vm: 10, .. })));
        // Events come out time-ordered with contiguous sequence numbers.
        let recs: Vec<_> = fl.iter().collect();
        assert!(recs.windows(2).all(|w| w[0].t <= w[1].t && w[0].seq + 1 == w[1].seq));
    }

    #[test]
    fn flight_recorder_captures_crash_restart_and_release() {
        let mut tb = testbed((10.0, 1.0));
        tb.nm.attach_flight(256);
        tb.run(3);
        tb.start_antagonist();
        tb.run(10);
        let crash_at = tb.now + SimDuration::from_secs(5.0);
        let scenario = perfcloud_sim::FaultScenario::named("crash-once").rule(
            perfcloud_sim::FaultRule::new("crash", perfcloud_sim::FaultKind::CrashRestart)
                .window(crash_at, crash_at + SimDuration::from_secs(1.0)),
        );
        tb.nm.attach_faults(crate::chaos::NodeFaults::new(1, scenario, 0));
        tb.run(1);
        let fl = tb.nm.flight().unwrap();
        assert!(fl.iter().any(|r| matches!(r.event, FlightEvent::ManagerRestart { server: 0 })));
        // Deregistering the antagonist must log the cap release.
        tb.run(8);
        tb.cloud.deregister(VmId(10));
        tb.run(1);
        let fl = tb.nm.flight().unwrap();
        assert!(fl.iter().any(|r| matches!(r.event, FlightEvent::Release { vm: 10, .. })));
    }

    #[test]
    fn actuation_off_still_identifies_but_never_throttles() {
        let mut tb = testbed((10.0, 1.0));
        tb.nm.set_actuation(false);
        tb.run(3);
        tb.start_antagonist();
        let reports = tb.run(12);
        // The pipeline still runs end to end: detection and identification.
        assert!(reports.iter().any(|r| r.signal.is_some_and(|s| s.io_contended)));
        assert!(reports.iter().any(|r| r.io_antagonists.contains(&VmId(10))));
        // The verdict export mirrors the last report's antagonist lists.
        tb.start_antagonist(); // keep the signal hot for one more interval
        let last = tb.run(1).pop().unwrap();
        let exported: Vec<(VmId, Resource)> = tb.nm.identified().to_vec();
        let expect: Vec<(VmId, Resource)> = last
            .io_antagonists
            .iter()
            .map(|&vm| (vm, Resource::Io))
            .chain(last.cpu_antagonists.iter().map(|&vm| (vm, Resource::Cpu)))
            .collect();
        assert_eq!(exported, expect);
        // But nothing was ever actuated.
        assert!(reports.iter().all(|r| r.io_caps.is_empty() && r.cpu_caps.is_empty()));
        assert!(!tb.server.io_throttle(VmId(10)).unwrap().is_throttled());
        assert!(!tb.server.cpu_cap(VmId(10)).unwrap().is_capped());
    }

    #[test]
    fn antagonist_keeps_nonzero_throughput_under_control() {
        let mut tb = testbed((10.0, 1.0));
        tb.run(3);
        tb.start_antagonist();
        tb.run(20);
        let c = tb.server.counters(VmId(10)).unwrap().counters;
        assert!(c.io_serviced > 0.0, "throttled antagonist must still make progress");
        // And the victims must still be doing I/O too.
        for &vm in &tb.victims {
            assert!(tb.server.counters(vm).unwrap().counters.io_serviced > 0.0);
        }
    }
}
