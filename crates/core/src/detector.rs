//! Interference detection: across-VM deviation vs. threshold (§III-A).
//!
//! Scale-out frameworks distribute work evenly across worker VMs, so under
//! healthy conditions the block-iowait ratio and CPI look similar on every
//! VM of the application. Contention breaks that symmetry: "the standard
//! deviation of the ratio of blkio.io_wait_time and blkio.io_serviced across
//! the various VMs … can serve as an early indicator", and likewise for CPI.
//! The deviation exceeding threshold ℋ (10 for the iowait ratio, 1 for CPI)
//! *is* the contention signal `I(t)` of Eq. 1.

use crate::monitor::{PerformanceMonitor, VmMetricKind};
use perfcloud_host::VmId;
use perfcloud_stats::population_stddev_stable;

/// The detector's verdict for one sampling instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionSignal {
    /// Standard deviation of the block-iowait ratio across the application's
    /// VMs (ms/op); `None` if fewer than two VMs had I/O activity.
    pub io_deviation: Option<f64>,
    /// Standard deviation of CPI across the application's VMs; `None` if
    /// fewer than two VMs executed instructions.
    pub cpi_deviation: Option<f64>,
    /// `io_deviation > ℋ_io`.
    pub io_contended: bool,
    /// `cpi_deviation > ℋ_cpi`.
    pub cpu_contended: bool,
}

/// Standard deviation of the latest smoothed `kind` across `vms`. VMs with
/// a missing latest sample are excluded; at least two present values are
/// required for a meaningful deviation.
pub fn deviation_across_vms(
    monitor: &PerformanceMonitor,
    vms: &[VmId],
    kind: VmMetricKind,
) -> Option<f64> {
    // A fixed-order (vms order) two-pass compensated reduction: this value
    // is compared against a threshold downstream, and a single-pass Welford
    // stream rounds its running mean once per observation — enough last-bit
    // drift to flip near-threshold decisions depending on how the sum was
    // formed. It runs once per metric per server per sampling tick, so it
    // must not allocate a scratch Vec; the monitor is iterated twice instead.
    population_stddev_stable(|| vms.iter().filter_map(|&vm| monitor.latest(vm, kind)), 2)
}

/// Evaluates the contention signal for one application's VM group.
pub fn detect(
    monitor: &PerformanceMonitor,
    app_vms: &[VmId],
    h_io: f64,
    h_cpi: f64,
) -> ContentionSignal {
    let io_deviation = deviation_across_vms(monitor, app_vms, VmMetricKind::IowaitRatio);
    let cpi_deviation = deviation_across_vms(monitor, app_vms, VmMetricKind::Cpi);
    ContentionSignal {
        io_deviation,
        cpi_deviation,
        io_contended: io_deviation.is_some_and(|d| d > h_io),
        cpu_contended: cpi_deviation.is_some_and(|d| d > h_cpi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PerfCloudConfig;
    use perfcloud_host::{PhysicalServer, ServerConfig, ServerId, VmConfig};
    use perfcloud_sim::{RngFactory, SimDuration, SimTime};
    use perfcloud_workloads::FioRandRead;

    const DT: SimDuration = SimDuration::from_micros(100_000);

    /// Builds a server with `n` VMs each running a mild fio load plus an
    /// optional heavy antagonist, then samples the monitor a few times.
    fn monitored(n: u32, antagonist: bool) -> (PerformanceMonitor, Vec<VmId>) {
        let mut server =
            PhysicalServer::new(ServerId(0), ServerConfig::default(), RngFactory::new(17), DT);
        let vms: Vec<VmId> = (0..n).map(VmId).collect();
        for &vm in &vms {
            server.add_vm(vm, VmConfig::high_priority());
            server.spawn(vm, Box::new(FioRandRead::with_rate(300.0, 4096.0, None)));
        }
        if antagonist {
            server.add_vm(VmId(100), VmConfig::low_priority());
            server.spawn(VmId(100), Box::new(FioRandRead::with_rate(20_000.0, 4096.0, None)));
        }
        let mut mon = PerformanceMonitor::new(&PerfCloudConfig::default());
        let mut now = SimTime::ZERO;
        mon.sample(now, &server);
        for _ in 0..8 {
            for _ in 0..50 {
                server.tick(DT);
            }
            now += SimDuration::from_secs(5.0);
            mon.sample(now, &server);
        }
        (mon, vms)
    }

    #[test]
    fn deviation_requires_two_active_vms() {
        let (mon, vms) = monitored(1, false);
        assert_eq!(deviation_across_vms(&mon, &vms, VmMetricKind::IowaitRatio), None);
    }

    #[test]
    fn contention_raises_io_deviation() {
        let (mon_alone, vms) = monitored(6, false);
        let (mon_contended, _) = monitored(6, true);
        let alone = deviation_across_vms(&mon_alone, &vms, VmMetricKind::IowaitRatio).unwrap();
        let contended =
            deviation_across_vms(&mon_contended, &vms, VmMetricKind::IowaitRatio).unwrap();
        assert!(
            contended > 3.0 * alone,
            "deviation should blow up under contention: {alone:.3} vs {contended:.3}"
        );
    }

    #[test]
    fn detect_applies_thresholds() {
        let (mon, vms) = monitored(6, true);
        let dev = deviation_across_vms(&mon, &vms, VmMetricKind::IowaitRatio).unwrap();
        // Threshold just below the observed deviation → contended.
        let sig = detect(&mon, &vms, dev * 0.9, 1.0);
        assert!(sig.io_contended);
        // Threshold just above → not contended.
        let sig = detect(&mon, &vms, dev * 1.1, 1.0);
        assert!(!sig.io_contended);
        assert_eq!(sig.io_deviation, Some(dev));
    }

    #[test]
    fn missing_deviation_is_never_contended() {
        let (mon, _) = monitored(2, false);
        let sig = detect(&mon, &[VmId(50), VmId(51)], 0.001, 0.001);
        assert_eq!(sig.io_deviation, None);
        assert_eq!(sig.cpi_deviation, None);
        assert!(!sig.io_contended);
        assert!(!sig.cpu_contended);
    }

    #[test]
    fn identical_vms_have_near_zero_deviation_when_uncontended() {
        let (mon, vms) = monitored(6, false);
        let dev = deviation_across_vms(&mon, &vms, VmMetricKind::IowaitRatio).unwrap();
        // Mild load, jitter amplitude ≈ 0 below the onset: tiny deviation.
        assert!(dev < 1.0, "uncontended deviation should be small, got {dev}");
    }
}
