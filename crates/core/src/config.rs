//! PerfCloud tuning parameters, with the paper's published defaults.

use perfcloud_sim::SimDuration;

/// Configuration of the PerfCloud pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfCloudConfig {
    /// Monititoring/sampling interval. Paper: 5 seconds.
    pub sample_interval: SimDuration,
    /// EWMA smoothing weight on the newest sample.
    pub ewma_alpha: f64,
    /// Detection threshold ℋ for the standard deviation of block-iowait
    /// ratio (ms per op) across the application's VMs. Paper: 10.
    pub h_io: f64,
    /// Detection threshold ℋ for the standard deviation of CPI across the
    /// application's VMs. Paper: 1.
    pub h_cpi: f64,
    /// Multiplicative-decrease factor β of Eq. 1. Paper: 0.8 (caps drop to
    /// 20% on contention).
    pub beta: f64,
    /// Cubic-growth scaling constant γ of Eq. 1. Paper: 0.005.
    pub gamma: f64,
    /// Pearson correlation threshold above which a low-priority VM is
    /// declared an antagonist. Paper: 0.8.
    pub corr_threshold: f64,
    /// Sliding window (number of samples) over which correlation is
    /// computed.
    pub corr_window: usize,
    /// Minimum aligned samples before correlating (paper: identification
    /// works "with dataset size as small as three").
    pub min_corr_samples: usize,
    /// Maximum victim-response delay, in sampling intervals, scanned by the
    /// identifier's cross-correlation. The victim's smoothed deviation
    /// responds one or two intervals *after* an antagonist's resource usage
    /// changes (EWMA smoothing, plus the time contention takes to become
    /// measurable slowdown); the cross-correlation evaluates Pearson at each
    /// alignment `0..=corr_max_lag` and uses the best one. 0 disables the
    /// lag scan (plain same-interval Pearson).
    pub corr_max_lag: usize,
    /// Normalized cap level at which a throttle is considered non-binding
    /// and removed, returning the controller to the dormant state.
    pub release_level: f64,
}

impl Default for PerfCloudConfig {
    fn default() -> Self {
        PerfCloudConfig {
            sample_interval: SimDuration::from_secs(5.0),
            ewma_alpha: 0.5,
            h_io: 10.0,
            h_cpi: 1.0,
            beta: 0.8,
            gamma: 0.005,
            corr_threshold: 0.8,
            corr_window: 24,
            min_corr_samples: 3,
            corr_max_lag: 2,
            release_level: 1.5,
        }
    }
}

impl PerfCloudConfig {
    /// Validates parameter ranges; panics with a descriptive message on
    /// nonsense values. Builders call this once at construction.
    pub fn validate(&self) {
        assert!(!self.sample_interval.is_zero(), "sample interval must be positive");
        assert!(self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0, "ewma_alpha must be in (0,1]");
        assert!(self.h_io > 0.0 && self.h_cpi > 0.0, "thresholds must be positive");
        assert!(self.beta > 0.0 && self.beta < 1.0, "beta must be in (0,1)");
        assert!(self.gamma > 0.0, "gamma must be positive");
        assert!(
            self.corr_threshold > 0.0 && self.corr_threshold <= 1.0,
            "correlation threshold must be in (0,1]"
        );
        assert!(self.min_corr_samples >= 2, "correlation needs at least 2 samples");
        assert!(self.corr_window >= self.min_corr_samples, "window smaller than minimum");
        assert!(
            self.corr_max_lag < self.corr_window,
            "correlation lag scan must fit inside the window"
        );
        assert!(self.release_level > 1.0, "release level must exceed the reference (1.0)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PerfCloudConfig::default();
        assert_eq!(c.sample_interval, SimDuration::from_secs(5.0));
        assert_eq!(c.h_io, 10.0);
        assert_eq!(c.h_cpi, 1.0);
        assert_eq!(c.beta, 0.8);
        assert_eq!(c.gamma, 0.005);
        assert_eq!(c.corr_threshold, 0.8);
        assert_eq!(c.min_corr_samples, 3);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn bad_beta_rejected() {
        let c = PerfCloudConfig { beta: 1.0, ..Default::default() };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "window")]
    fn bad_window_rejected() {
        let c = PerfCloudConfig { corr_window: 1, ..Default::default() };
        c.validate();
    }
}
