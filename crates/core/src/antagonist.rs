//! Antagonist identification by online cross-correlation (§III-B).
//!
//! The identifier keeps the victim application's deviation time series (one
//! per resource dimension) and correlates its sliding window against each
//! low-priority VM's resource-usage series: **I/O throughput** for disk
//! contention, **LLC miss rate** for processor contention. Pearson
//! correlation ≥ 0.8 marks a suspect as an antagonist; missing suspect
//! samples count as zero, so a VM that was idle while the victim suffered is
//! (correctly) exonerated rather than judged on two data points.

use crate::config::PerfCloudConfig;
use crate::monitor::{PerformanceMonitor, VmMetricKind};
use perfcloud_host::VmId;
use perfcloud_sim::SimTime;
use perfcloud_stats::pearson::pearson_victim_aware;
use perfcloud_stats::timeseries::align_tail;
use perfcloud_stats::TimeSeries;

/// Which contended resource an identification concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Disk I/O (deviation of block-iowait ratio ↔ suspect I/O throughput).
    Io,
    /// Shared processor resources (deviation of CPI ↔ suspect LLC misses).
    Cpu,
}

impl Resource {
    /// The suspect-side metric used for correlation.
    pub fn suspect_metric(self) -> VmMetricKind {
        match self {
            Resource::Io => VmMetricKind::IoBps,
            Resource::Cpu => VmMetricKind::LlcMissRate,
        }
    }
}

/// Maintains victim deviation series and identifies antagonists.
#[derive(Debug)]
pub struct AntagonistIdentifier {
    corr_threshold: f64,
    window: usize,
    min_samples: usize,
    io_deviation: TimeSeries,
    cpi_deviation: TimeSeries,
}

impl AntagonistIdentifier {
    /// Creates an identifier with the pipeline configuration.
    pub fn new(config: &PerfCloudConfig) -> Self {
        config.validate();
        AntagonistIdentifier {
            corr_threshold: config.corr_threshold,
            window: config.corr_window,
            min_samples: config.min_corr_samples,
            io_deviation: TimeSeries::new(),
            cpi_deviation: TimeSeries::new(),
        }
    }

    /// Appends the victim's deviations observed at `now`.
    pub fn observe(&mut self, now: SimTime, io_dev: Option<f64>, cpi_dev: Option<f64>) {
        self.io_deviation.push(now, io_dev);
        self.cpi_deviation.push(now, cpi_dev);
        self.io_deviation.retain_last(self.window * 8);
        self.cpi_deviation.retain_last(self.window * 8);
    }

    /// The victim deviation series for `resource`.
    pub fn deviation_series(&self, resource: Resource) -> &TimeSeries {
        match resource {
            Resource::Io => &self.io_deviation,
            Resource::Cpu => &self.cpi_deviation,
        }
    }

    /// Correlation between the victim deviation and one suspect's usage
    /// series, over the sliding window. `None` until enough aligned samples
    /// exist or when either series is constant.
    pub fn correlation(
        &self,
        monitor: &PerformanceMonitor,
        suspect: VmId,
        resource: Resource,
    ) -> Option<f64> {
        let victim = self.deviation_series(resource);
        let usage = monitor.series(suspect, resource.suspect_metric())?;
        // Window over the victim's most recent *present* samples: intervals
        // where the application was idle carry no evidence about suspects.
        let (x, y) = align_tail(victim, usage, self.window);
        let present = x.iter().filter(|v| v.is_some()).count();
        if present < self.min_samples {
            return None;
        }
        pearson_victim_aware(&x, &y)
    }

    /// The suspects whose correlation meets the threshold.
    pub fn identify(
        &self,
        monitor: &PerformanceMonitor,
        suspects: &[VmId],
        resource: Resource,
    ) -> Vec<VmId> {
        suspects
            .iter()
            .copied()
            .filter(|&vm| {
                self.correlation(monitor, vm, resource)
                    .is_some_and(|r| r >= self.corr_threshold)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PerfCloudConfig;
    use perfcloud_host::{PhysicalServer, ServerConfig, ServerId, VmConfig};
    use perfcloud_sim::{RngFactory, SimDuration};
    use perfcloud_workloads::{FioRandRead, SysbenchCpu};

    const DT: SimDuration = SimDuration::from_micros(100_000);

    /// Drives a server where VM 0 is the victim (mild fio), VM 1 an
    /// on-off heavy fio antagonist, VM 2 a CPU-only decoy. Returns the
    /// identifier (fed with victim deviations) and the monitor.
    fn scenario() -> (AntagonistIdentifier, PerformanceMonitor) {
        let cfg = PerfCloudConfig::default();
        let mut server =
            PhysicalServer::new(ServerId(0), ServerConfig::default(), RngFactory::new(23), DT);
        // Victim application: 4 VMs with mild I/O.
        let victims: Vec<VmId> = (0..4).map(VmId).collect();
        for &vm in &victims {
            server.add_vm(vm, VmConfig::high_priority());
            server.spawn(vm, Box::new(FioRandRead::with_rate(300.0, 4096.0, None)));
        }
        server.add_vm(VmId(10), VmConfig::low_priority()); // fio antagonist
        server.add_vm(VmId(11), VmConfig::low_priority()); // cpu decoy
        server.spawn(VmId(11), Box::new(SysbenchCpu::new()));

        let mut mon = PerformanceMonitor::new(&cfg);
        let mut ident = AntagonistIdentifier::new(&cfg);
        let mut now = perfcloud_sim::SimTime::ZERO;
        mon.sample(now, &server);
        // 12 intervals; antagonist active on intervals 4..9.
        for k in 0..12 {
            if k == 4 {
                server.spawn(
                    VmId(10),
                    Box::new(FioRandRead::with_rate(
                        20_000.0,
                        4096.0,
                        Some(SimDuration::from_secs(25.0)),
                    )),
                );
            }
            for _ in 0..50 {
                server.tick(DT);
            }
            now += SimDuration::from_secs(5.0);
            mon.sample(now, &server);
            let dev = crate::detector::deviation_across_vms(
                &mon,
                &victims,
                VmMetricKind::IowaitRatio,
            );
            let cdev =
                crate::detector::deviation_across_vms(&mon, &victims, VmMetricKind::Cpi);
            ident.observe(now, dev, cdev);
        }
        (ident, mon)
    }

    #[test]
    fn fio_antagonist_correlates_decoy_does_not() {
        let (ident, mon) = scenario();
        let r_fio = ident.correlation(&mon, VmId(10), Resource::Io).unwrap();
        let r_cpu = ident.correlation(&mon, VmId(11), Resource::Io).unwrap_or(0.0);
        assert!(r_fio > 0.8, "fio should correlate strongly, got {r_fio}");
        assert!(r_cpu < 0.8, "decoy must not cross the threshold, got {r_cpu}");
        let found = ident.identify(&mon, &[VmId(10), VmId(11)], Resource::Io);
        assert_eq!(found, vec![VmId(10)]);
    }

    #[test]
    fn unknown_suspect_yields_none() {
        let (ident, mon) = scenario();
        assert_eq!(ident.correlation(&mon, VmId(99), Resource::Io), None);
    }

    #[test]
    fn requires_min_samples() {
        let cfg = PerfCloudConfig { min_corr_samples: 3, ..Default::default() };
        let mut ident = AntagonistIdentifier::new(&cfg);
        let mon = PerformanceMonitor::new(&cfg);
        ident.observe(perfcloud_sim::SimTime::from_secs(5), Some(1.0), None);
        ident.observe(perfcloud_sim::SimTime::from_secs(10), Some(2.0), None);
        // Monitor has no series for the suspect at all -> None regardless.
        assert_eq!(ident.correlation(&mon, VmId(0), Resource::Io), None);
    }

    #[test]
    fn deviation_series_retained() {
        let cfg = PerfCloudConfig::default();
        let mut ident = AntagonistIdentifier::new(&cfg);
        for k in 1..=1000u64 {
            ident.observe(perfcloud_sim::SimTime::from_secs(5 * k), Some(k as f64), None);
        }
        assert!(ident.deviation_series(Resource::Io).len() <= cfg.corr_window * 8);
    }

    #[test]
    fn suspect_metric_mapping() {
        assert_eq!(Resource::Io.suspect_metric(), VmMetricKind::IoBps);
        assert_eq!(Resource::Cpu.suspect_metric(), VmMetricKind::LlcMissRate);
    }
}
