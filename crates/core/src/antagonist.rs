//! Antagonist identification by online cross-correlation (§III-B).
//!
//! The identifier keeps the victim application's deviation time series (one
//! per resource dimension) and correlates its sliding window against each
//! low-priority VM's resource-usage series: **I/O throughput** for disk
//! contention, **LLC miss rate** for processor contention. Pearson
//! correlation ≥ 0.8 marks a suspect as an antagonist; missing suspect
//! samples count as zero, so a VM that was idle while the victim suffered is
//! (correctly) exonerated rather than judged on two data points.

use crate::config::PerfCloudConfig;
use crate::monitor::{PerformanceMonitor, VmMetricKind};
use perfcloud_host::VmId;
use perfcloud_sim::SimTime;
use perfcloud_stats::timeseries::align_tail;
use perfcloud_stats::{RollingPearson, TimeSeries};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// Which contended resource an identification concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Disk I/O (deviation of block-iowait ratio ↔ suspect I/O throughput).
    Io,
    /// Shared processor resources (deviation of CPI ↔ suspect LLC misses).
    Cpu,
}

impl Resource {
    /// The suspect-side metric used for correlation.
    pub fn suspect_metric(self) -> VmMetricKind {
        match self {
            Resource::Io => VmMetricKind::IoBps,
            Resource::Cpu => VmMetricKind::LlcMissRate,
        }
    }
}

/// Maintains victim deviation series and identifies antagonists.
///
/// Correlation state is **incremental**: one [`RollingPearson`] window per
/// (suspect, resource) is advanced by a single O(1) push per sampling
/// interval in [`observe`](Self::observe), so [`correlation`] and
/// [`identify`] are constant-time reads instead of re-aligning and
/// re-summing the full window per suspect per tick.
///
/// [`correlation`]: Self::correlation
/// [`identify`]: Self::identify
#[derive(Debug, Clone)]
pub struct AntagonistIdentifier {
    corr_threshold: f64,
    window: usize,
    min_samples: usize,
    max_lag: usize,
    io_deviation: TimeSeries,
    cpi_deviation: TimeSeries,
    io_windows: BTreeMap<VmId, RollingPearson>,
    cpu_windows: BTreeMap<VmId, RollingPearson>,
}

impl AntagonistIdentifier {
    /// Creates an identifier with the pipeline configuration.
    pub fn new(config: &PerfCloudConfig) -> Self {
        config.validate();
        AntagonistIdentifier {
            corr_threshold: config.corr_threshold,
            window: config.corr_window,
            min_samples: config.min_corr_samples,
            max_lag: config.corr_max_lag,
            io_deviation: TimeSeries::new(),
            cpi_deviation: TimeSeries::new(),
            io_windows: BTreeMap::new(),
            cpu_windows: BTreeMap::new(),
        }
    }

    /// Appends the victim's deviations observed at `now` and advances each
    /// suspect's correlation window with its latest usage sample. Call once
    /// per sampling interval, after `monitor.sample(now, …)`, so the
    /// suspect series' freshest entries line up with the deviations.
    pub fn observe(
        &mut self,
        now: SimTime,
        io_dev: Option<f64>,
        cpi_dev: Option<f64>,
        monitor: &PerformanceMonitor,
        suspects: &[VmId],
    ) {
        self.io_deviation.push(now, io_dev);
        self.cpi_deviation.push(now, cpi_dev);
        self.io_deviation.retain_last(self.window * 8);
        self.cpi_deviation.retain_last(self.window * 8);
        self.advance(Resource::Io, io_dev, monitor, suspects);
        self.advance(Resource::Cpu, cpi_dev, monitor, suspects);
    }

    fn advance(
        &mut self,
        resource: Resource,
        dev: Option<f64>,
        monitor: &PerformanceMonitor,
        suspects: &[VmId],
    ) {
        let window = self.window;
        let (dev_series, windows) = match resource {
            Resource::Io => (&self.io_deviation, &mut self.io_windows),
            Resource::Cpu => (&self.cpi_deviation, &mut self.cpu_windows),
        };
        // Suspects that left this server (migration, teardown) stop
        // accumulating evidence; their windows go with them.
        windows.retain(|vm, _| suspects.contains(vm));
        let metric = resource.suspect_metric();
        for &vm in suspects {
            // No usage series at all (the monitor has never seen the VM)
            // means no evidence either way — leave no window behind, so
            // `correlation` keeps answering `None` for unknown suspects.
            let Some(usage) = monitor.series(vm, metric) else {
                continue;
            };
            match windows.entry(vm) {
                Entry::Occupied(mut e) => {
                    let sample = usage.last().and_then(|(_, v)| v);
                    e.get_mut().push(dev, sample);
                }
                Entry::Vacant(slot) => {
                    // A suspect (re)entering the suspect set starts with its
                    // full retained history — both series keep `window * 8`
                    // ticks — so identification is as fast as the batch path
                    // that re-aligned at every read. The current tick is
                    // already in both series, so no extra push here. O(window)
                    // once on entry; O(1) every tick after.
                    let (x, y) = align_tail(dev_series, usage, window);
                    let mut rp = RollingPearson::new(window);
                    for (v, s) in x.into_iter().zip(y) {
                        rp.push(v, s);
                    }
                    slot.insert(rp);
                }
            }
        }
    }

    /// Drops every deviation sample and correlation window, keeping buffer
    /// capacity — the state a freshly constructed identifier has. Used by
    /// the crash-restart path, where the agent process loses its memory.
    pub fn reset(&mut self) {
        self.io_deviation = TimeSeries::new();
        self.cpi_deviation = TimeSeries::new();
        self.io_windows.clear();
        self.cpu_windows.clear();
    }

    /// Number of live correlation windows for `resource` — one per suspect
    /// currently accumulating evidence. Bounded by the suspect set:
    /// [`observe`](Self::observe) evicts windows of departed suspects, so a
    /// churn of short-lived VMs cannot grow this without bound.
    pub fn window_count(&self, resource: Resource) -> usize {
        match resource {
            Resource::Io => self.io_windows.len(),
            Resource::Cpu => self.cpu_windows.len(),
        }
    }

    /// The victim deviation series for `resource`.
    pub fn deviation_series(&self, resource: Resource) -> &TimeSeries {
        match resource {
            Resource::Io => &self.io_deviation,
            Resource::Cpu => &self.cpi_deviation,
        }
    }

    /// Cross-correlation between the victim deviation and one suspect's
    /// usage series, over the sliding window: the best Pearson coefficient
    /// across victim-delay alignments `0..=corr_max_lag`, each requiring at
    /// least `min_corr_samples` contributing pairs. `None` until enough
    /// contributing samples exist (intervals where the victim was idle carry
    /// no evidence about suspects) or when either series is constant.
    ///
    /// The lag scan matters at contention onset: the antagonist's usage
    /// steps up a full sampling interval before the victim's EWMA-smoothed
    /// deviation reflects it, so the same-interval alignment blends the
    /// clean step with post-onset execution noise and can stay below the
    /// threshold for the whole episode. Scanning small victim delays
    /// recovers the step.
    pub fn correlation(&self, suspect: VmId, resource: Resource) -> Option<f64> {
        let windows = match resource {
            Resource::Io => &self.io_windows,
            Resource::Cpu => &self.cpu_windows,
        };
        let w = windows.get(&suspect)?;
        if w.contributing() < self.min_samples {
            return None;
        }
        w.correlation_lagged(self.max_lag, self.min_samples)
    }

    /// The suspects whose correlation meets the threshold.
    pub fn identify(&self, suspects: &[VmId], resource: Resource) -> Vec<VmId> {
        let mut out = Vec::new();
        self.identify_into(suspects, resource, &mut out);
        out
    }

    /// [`identify`](Self::identify) into a reused buffer: clears `out`, then
    /// appends the qualifying suspects in suspect order.
    pub fn identify_into(&self, suspects: &[VmId], resource: Resource, out: &mut Vec<VmId>) {
        out.clear();
        out.extend(suspects.iter().copied().filter(|&vm| {
            self.correlation(vm, resource).is_some_and(|r| r >= self.corr_threshold)
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PerfCloudConfig;
    use perfcloud_host::{PhysicalServer, ServerConfig, ServerId, VmConfig};
    use perfcloud_sim::{RngFactory, SimDuration};
    use perfcloud_workloads::{FioRandRead, SysbenchCpu};

    const DT: SimDuration = SimDuration::from_micros(100_000);

    /// Drives a server where VM 0 is the victim (mild fio), VM 1 an
    /// on-off heavy fio antagonist, VM 2 a CPU-only decoy. Returns the
    /// identifier (fed with victim deviations) and the monitor.
    fn scenario() -> (AntagonistIdentifier, PerformanceMonitor) {
        let cfg = PerfCloudConfig::default();
        let mut server =
            PhysicalServer::new(ServerId(0), ServerConfig::default(), RngFactory::new(23), DT);
        // Victim application: 4 VMs with mild I/O.
        let victims: Vec<VmId> = (0..4).map(VmId).collect();
        for &vm in &victims {
            server.add_vm(vm, VmConfig::high_priority());
            server.spawn(vm, Box::new(FioRandRead::with_rate(300.0, 4096.0, None)));
        }
        server.add_vm(VmId(10), VmConfig::low_priority()); // fio antagonist
        server.add_vm(VmId(11), VmConfig::low_priority()); // cpu decoy
        server.spawn(VmId(11), Box::new(SysbenchCpu::new()));

        let mut mon = PerformanceMonitor::new(&cfg);
        let mut ident = AntagonistIdentifier::new(&cfg);
        let mut now = perfcloud_sim::SimTime::ZERO;
        mon.sample(now, &server);
        // 12 intervals; antagonist active on intervals 4..9.
        for k in 0..12 {
            if k == 4 {
                server.spawn(
                    VmId(10),
                    Box::new(FioRandRead::with_rate(
                        20_000.0,
                        4096.0,
                        Some(SimDuration::from_secs(25.0)),
                    )),
                );
            }
            for _ in 0..50 {
                server.tick(DT);
            }
            now += SimDuration::from_secs(5.0);
            mon.sample(now, &server);
            let dev =
                crate::detector::deviation_across_vms(&mon, &victims, VmMetricKind::IowaitRatio);
            let cdev = crate::detector::deviation_across_vms(&mon, &victims, VmMetricKind::Cpi);
            ident.observe(now, dev, cdev, &mon, &[VmId(10), VmId(11)]);
        }
        (ident, mon)
    }

    #[test]
    fn fio_antagonist_correlates_decoy_does_not() {
        let (ident, _mon) = scenario();
        let r_fio = ident.correlation(VmId(10), Resource::Io).unwrap();
        let r_cpu = ident.correlation(VmId(11), Resource::Io).unwrap_or(0.0);
        assert!(r_fio > 0.8, "fio should correlate strongly, got {r_fio}");
        assert!(r_cpu < 0.8, "decoy must not cross the threshold, got {r_cpu}");
        let found = ident.identify(&[VmId(10), VmId(11)], Resource::Io);
        assert_eq!(found, vec![VmId(10)]);
    }

    #[test]
    fn rolling_correlation_matches_batch_alignment() {
        // The incremental windows must agree with the original batch path
        // (align the series' tails, then victim-aware Pearson) to float
        // round-off.
        let (ident, mon) = scenario();
        let cfg = PerfCloudConfig::default();
        for suspect in [VmId(10), VmId(11)] {
            let victim = ident.deviation_series(Resource::Io);
            let usage = mon.series(suspect, Resource::Io.suspect_metric()).unwrap();
            let (x, y) = perfcloud_stats::timeseries::align_tail(victim, usage, cfg.corr_window);
            let batch = perfcloud_stats::pearson::pearson_victim_aware_lagged(
                &x,
                &y,
                cfg.corr_max_lag,
                cfg.min_corr_samples,
            );
            let rolled = ident.correlation(suspect, Resource::Io);
            match (rolled, batch) {
                (Some(r), Some(b)) => assert!(
                    (r - b).abs() <= 1e-9 * b.abs().max(1.0),
                    "suspect {suspect:?}: rolled {r} vs batch {b}"
                ),
                (r, b) => assert_eq!(r, b, "suspect {suspect:?}"),
            }
        }
    }

    #[test]
    fn late_suspect_enters_with_full_history() {
        // A suspect added to the suspect set late must be judged on the
        // retained history, exactly like the batch path — not start from an
        // empty window.
        let cfg = PerfCloudConfig::default();
        let mut server =
            PhysicalServer::new(ServerId(0), ServerConfig::default(), RngFactory::new(23), DT);
        let victims: Vec<VmId> = (0..4).map(VmId).collect();
        for &vm in &victims {
            server.add_vm(vm, VmConfig::high_priority());
            server.spawn(vm, Box::new(FioRandRead::with_rate(300.0, 4096.0, None)));
        }
        server.add_vm(VmId(10), VmConfig::low_priority());
        server.spawn(VmId(10), Box::new(FioRandRead::with_rate(20_000.0, 4096.0, None)));

        let mut mon = PerformanceMonitor::new(&cfg);
        let mut late = AntagonistIdentifier::new(&cfg);
        let mut always = AntagonistIdentifier::new(&cfg);
        let mut now = perfcloud_sim::SimTime::ZERO;
        mon.sample(now, &server);
        for k in 0..12 {
            for _ in 0..50 {
                server.tick(DT);
            }
            now += SimDuration::from_secs(5.0);
            mon.sample(now, &server);
            let dev =
                crate::detector::deviation_across_vms(&mon, &victims, VmMetricKind::IowaitRatio);
            let cdev = crate::detector::deviation_across_vms(&mon, &victims, VmMetricKind::Cpi);
            // `late` only starts suspecting VM 10 at interval 8.
            let suspects: &[VmId] = if k < 8 { &[] } else { &[VmId(10)] };
            late.observe(now, dev, cdev, &mon, suspects);
            always.observe(now, dev, cdev, &mon, &[VmId(10)]);
        }
        let r_late = late.correlation(VmId(10), Resource::Io);
        let r_always = always.correlation(VmId(10), Resource::Io);
        match (r_late, r_always) {
            (Some(a), Some(b)) => {
                assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "late {a} vs always {b}")
            }
            (a, b) => assert_eq!(a, b),
        }
    }

    #[test]
    fn unknown_suspect_yields_none() {
        let (ident, _mon) = scenario();
        assert_eq!(ident.correlation(VmId(99), Resource::Io), None);
    }

    #[test]
    fn requires_min_samples() {
        let cfg = PerfCloudConfig { min_corr_samples: 3, ..Default::default() };
        let mut ident = AntagonistIdentifier::new(&cfg);
        let mon = PerformanceMonitor::new(&cfg);
        let suspects = [VmId(0)];
        ident.observe(perfcloud_sim::SimTime::from_secs(5), Some(1.0), None, &mon, &suspects);
        ident.observe(perfcloud_sim::SimTime::from_secs(10), Some(2.0), None, &mon, &suspects);
        // Monitor has no series for the suspect at all -> None regardless.
        assert_eq!(ident.correlation(VmId(0), Resource::Io), None);
    }

    #[test]
    fn deviation_series_retained() {
        let cfg = PerfCloudConfig::default();
        let mut ident = AntagonistIdentifier::new(&cfg);
        let mon = PerformanceMonitor::new(&cfg);
        for k in 1..=1000u64 {
            ident.observe(
                perfcloud_sim::SimTime::from_secs(5 * k),
                Some(k as f64),
                None,
                &mon,
                &[],
            );
        }
        assert!(ident.deviation_series(Resource::Io).len() <= cfg.corr_window * 8);
    }

    #[test]
    fn suspect_metric_mapping() {
        assert_eq!(Resource::Io.suspect_metric(), VmMetricKind::IoBps);
        assert_eq!(Resource::Cpu.suspect_metric(), VmMetricKind::LlcMissRate);
    }
}
