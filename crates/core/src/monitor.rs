//! The performance monitor (§III-D.1).
//!
//! Every sampling interval (5 s in the paper) the monitor reads each VM's
//! cumulative counters from the hypervisor, computes delta-derived interval
//! metrics, smooths them with an EWMA, and appends them to per-VM time
//! series. Metrics with no activity in the interval are recorded as missing
//! (`None`): the block-iowait ratio is undefined with no serviced I/O, and
//! "LLC miss rates are not counted when the VMs are not running any
//! workload".

use crate::config::PerfCloudConfig;
use perfcloud_host::counters::IntervalMetrics;
use perfcloud_host::{CounterSnapshot, PhysicalServer, VmId};
use perfcloud_sim::SimTime;
use perfcloud_stats::{Ewma, TimeSeries};
use std::collections::BTreeMap;

/// The per-VM metrics the monitor maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VmMetricKind {
    /// Block iowait ratio, ms per op (victim detection signal).
    IowaitRatio,
    /// Cycles per instruction (victim detection signal).
    Cpi,
    /// LLC miss rate (suspect correlation signal).
    LlcMissRate,
    /// I/O throughput, bytes/s (suspect correlation signal).
    IoBps,
    /// I/O throughput, ops/s (cap reference).
    IoIops,
    /// CPU usage, cores (cap reference).
    CpuCores,
}

impl VmMetricKind {
    /// All metric kinds.
    pub const ALL: [VmMetricKind; 6] = [
        VmMetricKind::IowaitRatio,
        VmMetricKind::Cpi,
        VmMetricKind::LlcMissRate,
        VmMetricKind::IoBps,
        VmMetricKind::IoIops,
        VmMetricKind::CpuCores,
    ];
}

/// What the monitor did with one delivered snapshot — the graceful-
/// degradation contract the fault layer exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// First snapshot for this VM: establishes the delta baseline only.
    Baseline,
    /// Metrics were derived and recorded.
    Recorded,
    /// Rejected: the snapshot's timestamp is older than state already held
    /// (a delayed delivery overtaken by fresher samples).
    Stale,
    /// Rejected: a snapshot for this instant was already ingested.
    Duplicate,
    /// Rejected: the cumulative counters ran backwards relative to the
    /// held baseline (a late pre-baseline delivery, or a counter reset);
    /// computing the delta would go negative.
    CounterRegression,
}

/// Running totals of every [`IngestOutcome`] a monitor has produced.
/// Previously the rejection outcomes were dropped silently; these counts
/// feed the obs counters and experiment summaries.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IngestStats {
    /// Baseline-establishing first samples.
    pub baselines: u64,
    /// Samples that produced recorded metrics.
    pub recorded: u64,
    /// Timestamp-stale rejections.
    pub stale: u64,
    /// Duplicate-instant rejections.
    pub duplicates: u64,
    /// Counter-regression rejections.
    pub regressions: u64,
}

impl IngestStats {
    /// Total rejected deliveries.
    pub fn rejected(&self) -> u64 {
        self.stale + self.duplicates + self.regressions
    }

    /// Element-wise sum, for aggregating across node managers.
    pub fn merge(&mut self, other: &IngestStats) {
        self.baselines += other.baselines;
        self.recorded += other.recorded;
        self.stale += other.stale;
        self.duplicates += other.duplicates;
        self.regressions += other.regressions;
    }
}

#[derive(Debug, Default, Clone)]
struct VmMonitorState {
    prev: Option<CounterSnapshot>,
    last_ingest: Option<SimTime>,
    ewma: BTreeMap<VmMetricKind, Ewma>,
    series: BTreeMap<VmMetricKind, TimeSeries>,
}

/// Samples and retains smoothed per-VM metric series for one server.
#[derive(Debug, Clone)]
pub struct PerformanceMonitor {
    alpha: f64,
    retain: usize,
    vms: BTreeMap<VmId, VmMonitorState>,
    stats: IngestStats,
}

impl PerformanceMonitor {
    /// Creates a monitor with the pipeline configuration.
    pub fn new(config: &PerfCloudConfig) -> Self {
        config.validate();
        PerformanceMonitor {
            alpha: config.ewma_alpha,
            // Keep an ample multiple of the correlation window.
            retain: (config.corr_window * 8).max(64),
            vms: BTreeMap::new(),
            stats: IngestStats::default(),
        }
    }

    /// Running outcome totals across every delivery this monitor has seen.
    pub fn ingest_stats(&self) -> IngestStats {
        self.stats
    }

    /// Samples every VM on `server` at time `now` — one batched pass over
    /// the server's snapshots in boot order, allocation-free in steady
    /// state. The first sample of a VM only establishes its baseline
    /// snapshot (no series point).
    pub fn sample(&mut self, now: SimTime, server: &PhysicalServer) {
        for (vm, snap) in server.snapshots() {
            self.ingest(now, vm, snap);
        }
    }

    /// Ingests one VM snapshot delivered at `now` (the per-VM unit `sample`
    /// iterates; the fault layer calls it directly to drop, delay, duplicate
    /// or corrupt individual deliveries).
    pub fn ingest(&mut self, now: SimTime, vm: VmId, snap: CounterSnapshot) -> IngestOutcome {
        self.ingest_tweaked(now, vm, snap, |_, raw| raw)
    }

    /// [`Self::ingest`] with a hook that may rewrite each raw metric value
    /// before smoothing — the corruption point for NaN/spike/stuck-at
    /// faults. Returning `None` records the metric as missing.
    pub fn ingest_tweaked(
        &mut self,
        now: SimTime,
        vm: VmId,
        snap: CounterSnapshot,
        tweak: impl FnMut(VmMetricKind, Option<f64>) -> Option<f64>,
    ) -> IngestOutcome {
        let outcome = self.ingest_inner(now, vm, snap, tweak);
        match outcome {
            IngestOutcome::Baseline => self.stats.baselines += 1,
            IngestOutcome::Recorded => self.stats.recorded += 1,
            IngestOutcome::Stale => self.stats.stale += 1,
            IngestOutcome::Duplicate => self.stats.duplicates += 1,
            IngestOutcome::CounterRegression => self.stats.regressions += 1,
        }
        outcome
    }

    fn ingest_inner(
        &mut self,
        now: SimTime,
        vm: VmId,
        snap: CounterSnapshot,
        mut tweak: impl FnMut(VmMetricKind, Option<f64>) -> Option<f64>,
    ) -> IngestOutcome {
        let interval_guess = 5.0; // replaced below by the actual delta time
        let state = self.vms.entry(vm).or_default();
        if let Some(last) = state.last_ingest {
            if now == last {
                return IngestOutcome::Duplicate;
            }
            if now < last {
                return IngestOutcome::Stale;
            }
        }
        let outcome = match state.prev {
            Some(prev) => {
                if snap.regressed_since(&prev) {
                    // A late delivery of a pre-baseline snapshot; computing
                    // its delta would go negative. Reject, keep state as-is.
                    return IngestOutcome::CounterRegression;
                }
                let delta = prev.delta_to(&snap);
                // Interval length: derive from last series timestamp if any.
                let interval = state
                    .series
                    .values()
                    .find_map(|s| s.last().map(|(t, _)| now.saturating_since(t).as_secs_f64()))
                    .filter(|&s| s > 0.0)
                    .unwrap_or(interval_guess);
                let m = IntervalMetrics::from_delta(&delta, interval);
                self.record(
                    vm,
                    now,
                    VmMetricKind::IowaitRatio,
                    tweak(VmMetricKind::IowaitRatio, m.iowait_ratio_ms),
                );
                self.record(vm, now, VmMetricKind::Cpi, tweak(VmMetricKind::Cpi, m.cpi));
                self.record(
                    vm,
                    now,
                    VmMetricKind::LlcMissRate,
                    tweak(VmMetricKind::LlcMissRate, m.llc_miss_rate),
                );
                self.record(
                    vm,
                    now,
                    VmMetricKind::IoBps,
                    tweak(VmMetricKind::IoBps, Some(m.io_bps)),
                );
                self.record(
                    vm,
                    now,
                    VmMetricKind::IoIops,
                    tweak(VmMetricKind::IoIops, Some(m.io_iops)),
                );
                self.record(
                    vm,
                    now,
                    VmMetricKind::CpuCores,
                    tweak(VmMetricKind::CpuCores, Some(m.cpu_cores)),
                );
                IngestOutcome::Recorded
            }
            None => IngestOutcome::Baseline,
        };
        let state = self.vms.get_mut(&vm).expect("just inserted");
        state.prev = Some(snap);
        state.last_ingest = Some(now);
        outcome
    }

    fn record(&mut self, vm: VmId, now: SimTime, kind: VmMetricKind, raw: Option<f64>) {
        let alpha = self.alpha;
        let retain = self.retain;
        let state = self.vms.get_mut(&vm).expect("state exists");
        let series = state.series.entry(kind).or_default();
        // A corrupted non-finite reading is recorded as missing: it must not
        // enter the EWMA (which would hold it forever) or the series.
        let smoothed = match raw.filter(|v| v.is_finite()) {
            None => None,
            Some(x) => {
                let e = state.ewma.entry(kind).or_insert_with(|| Ewma::new(alpha));
                Some(e.update(x))
            }
        };
        series.push(now, smoothed);
        series.retain_last(retain);
    }

    /// The last snapshot successfully ingested for `vm` (the baseline for
    /// its next delta). The fault layer uses it to re-deliver duplicates.
    pub fn previous_snapshot(&self, vm: VmId) -> Option<CounterSnapshot> {
        self.vms.get(&vm)?.prev
    }

    /// Appends a raw (unsmoothed) point to a VM's series — a test hook for
    /// driving the identifier with exactly known values.
    #[doc(hidden)]
    pub fn push_synthetic(
        &mut self,
        vm: VmId,
        kind: VmMetricKind,
        now: SimTime,
        value: Option<f64>,
    ) {
        let retain = self.retain;
        let state = self.vms.entry(vm).or_default();
        let series = state.series.entry(kind).or_default();
        series.push(now, value);
        series.retain_last(retain);
    }

    /// The smoothed series of `kind` for `vm`, if any samples exist.
    pub fn series(&self, vm: VmId, kind: VmMetricKind) -> Option<&TimeSeries> {
        self.vms.get(&vm)?.series.get(&kind)
    }

    /// Latest smoothed value of `kind` for `vm` (missing samples yield
    /// `None`).
    pub fn latest(&self, vm: VmId, kind: VmMetricKind) -> Option<f64> {
        self.series(vm, kind)?.last()?.1
    }

    /// Latest *present* smoothed value, looking back past missing samples.
    pub fn latest_present(&self, vm: VmId, kind: VmMetricKind) -> Option<f64> {
        self.series(vm, kind)?.last_present().map(|(_, v)| v)
    }

    /// VMs with at least one delivered sample, in ascending id order.
    ///
    /// Borrowed iteration — callers in the sampling loop must not pay a
    /// fresh `Vec` per interval (the counting-allocator steady-state test
    /// covers this).
    pub fn monitored_vms(&self) -> impl Iterator<Item = VmId> + '_ {
        self.vms.keys().copied()
    }

    /// Drops a VM's state (it migrated away or was torn down).
    pub fn forget(&mut self, vm: VmId) {
        self.vms.remove(&vm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfcloud_host::{ServerConfig, ServerId, VmConfig};
    use perfcloud_sim::{RngFactory, SimDuration};
    use perfcloud_workloads::FioRandRead;

    const DT: SimDuration = SimDuration::from_micros(100_000);

    fn busy_server() -> PhysicalServer {
        let mut s =
            PhysicalServer::new(ServerId(0), ServerConfig::default(), RngFactory::new(5), DT);
        s.add_vm(VmId(0), VmConfig::high_priority());
        s.spawn(VmId(0), Box::new(FioRandRead::with_rate(1000.0, 4096.0, None)));
        s.add_vm(VmId(1), VmConfig::low_priority());
        s
    }

    fn sample_after(
        monitor: &mut PerformanceMonitor,
        server: &mut PhysicalServer,
        now: &mut SimTime,
    ) {
        for _ in 0..50 {
            server.tick(DT);
        }
        *now += SimDuration::from_secs(5.0);
        monitor.sample(*now, server);
    }

    #[test]
    fn first_sample_is_baseline_only() {
        let mut server = busy_server();
        let mut mon = PerformanceMonitor::new(&PerfCloudConfig::default());
        mon.sample(SimTime::from_secs(5), &server);
        assert!(mon.series(VmId(0), VmMetricKind::IoBps).is_none());
        for _ in 0..50 {
            server.tick(DT);
        }
        mon.sample(SimTime::from_secs(10), &server);
        let s = mon.series(VmId(0), VmMetricKind::IoBps).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.last().unwrap().1.unwrap() > 0.0);
    }

    #[test]
    fn active_vm_has_iowait_and_cpi() {
        let mut server = busy_server();
        let mut mon = PerformanceMonitor::new(&PerfCloudConfig::default());
        let mut now = SimTime::ZERO;
        mon.sample(now, &server);
        for _ in 0..3 {
            sample_after(&mut mon, &mut server, &mut now);
        }
        assert!(mon.latest(VmId(0), VmMetricKind::IowaitRatio).unwrap() > 0.0);
        assert!(mon.latest(VmId(0), VmMetricKind::Cpi).unwrap() > 0.0);
        assert!(mon.latest(VmId(0), VmMetricKind::IoIops).unwrap() > 0.0);
    }

    #[test]
    fn idle_vm_metrics_are_missing_not_zero() {
        let mut server = busy_server();
        let mut mon = PerformanceMonitor::new(&PerfCloudConfig::default());
        let mut now = SimTime::ZERO;
        mon.sample(now, &server);
        sample_after(&mut mon, &mut server, &mut now);
        // VM 1 runs nothing: ratio/CPI/LLC are missing, throughputs are 0.
        assert_eq!(mon.latest(VmId(1), VmMetricKind::IowaitRatio), None);
        assert_eq!(mon.latest(VmId(1), VmMetricKind::Cpi), None);
        assert_eq!(mon.latest(VmId(1), VmMetricKind::LlcMissRate), None);
        assert_eq!(mon.latest(VmId(1), VmMetricKind::IoBps), Some(0.0));
        assert_eq!(mon.latest(VmId(1), VmMetricKind::CpuCores), Some(0.0));
    }

    #[test]
    fn ewma_smooths_spikes() {
        // Alternate busy/idle intervals; smoothed IoBps must move gradually.
        let mut server = busy_server();
        let cfg = PerfCloudConfig { ewma_alpha: 0.3, ..Default::default() };
        let mut mon = PerformanceMonitor::new(&cfg);
        let mut now = SimTime::ZERO;
        mon.sample(now, &server);
        sample_after(&mut mon, &mut server, &mut now);
        let v1 = mon.latest(VmId(0), VmMetricKind::IoBps).unwrap();
        // Next interval: no ticking (no I/O activity) -> raw value 0.
        now += SimDuration::from_secs(5.0);
        mon.sample(now, &server);
        let v2 = mon.latest(VmId(0), VmMetricKind::IoBps).unwrap();
        assert!(v2 > 0.0, "EWMA must not jump straight to zero");
        assert!(v2 < v1);
        assert!((v2 - 0.7 * v1).abs() < 0.01 * v1, "alpha=0.3: v2 = 0.7*v1");
    }

    #[test]
    fn series_are_retained_with_bounded_length() {
        let mut server = busy_server();
        let cfg = PerfCloudConfig { corr_window: 8, ..Default::default() };
        let mut mon = PerformanceMonitor::new(&cfg);
        let mut now = SimTime::ZERO;
        mon.sample(now, &server);
        for _ in 0..100 {
            now += SimDuration::from_secs(5.0);
            server.tick(DT);
            mon.sample(now, &server);
        }
        let len = mon.series(VmId(0), VmMetricKind::CpuCores).unwrap().len();
        assert!(len <= 64);
    }

    #[test]
    fn duplicate_and_stale_deliveries_are_rejected() {
        let mut server = busy_server();
        let mut mon = PerformanceMonitor::new(&PerfCloudConfig::default());
        let t0 = SimTime::from_secs(5);
        let snap0 = server.counters(VmId(0)).unwrap();
        assert_eq!(mon.ingest(t0, VmId(0), snap0), IngestOutcome::Baseline);
        for _ in 0..50 {
            server.tick(DT);
        }
        let t1 = SimTime::from_secs(10);
        let snap1 = server.counters(VmId(0)).unwrap();
        assert_eq!(mon.ingest(t1, VmId(0), snap1), IngestOutcome::Recorded);
        // Re-delivery at the same instant: rejected, series unchanged.
        assert_eq!(mon.ingest(t1, VmId(0), snap1), IngestOutcome::Duplicate);
        // A delivery from the past: rejected on timestamp alone.
        assert_eq!(mon.ingest(t0, VmId(0), snap1), IngestOutcome::Stale);
        // A later-timestamped delivery of regressed counters: rejected as a
        // counter regression (distinguished from timestamp staleness).
        assert_eq!(
            mon.ingest(SimTime::from_secs(15), VmId(0), snap0),
            IngestOutcome::CounterRegression
        );
        assert_eq!(mon.series(VmId(0), VmMetricKind::IoBps).unwrap().len(), 1);
        // The pipeline recovers with the next good delivery.
        for _ in 0..50 {
            server.tick(DT);
        }
        let snap2 = server.counters(VmId(0)).unwrap();
        assert_eq!(mon.ingest(SimTime::from_secs(20), VmId(0), snap2), IngestOutcome::Recorded);
        // Every outcome above was tallied, including the rejections that
        // used to vanish silently.
        let stats = mon.ingest_stats();
        assert_eq!(stats.baselines, 1);
        assert_eq!(stats.recorded, 2);
        assert_eq!(stats.duplicates, 1);
        assert_eq!(stats.stale, 1);
        assert_eq!(stats.regressions, 1);
        assert_eq!(stats.rejected(), 3);
    }

    #[test]
    fn tweaked_nan_is_recorded_as_missing() {
        let mut server = busy_server();
        let mut mon = PerformanceMonitor::new(&PerfCloudConfig::default());
        let mut now = SimTime::ZERO;
        mon.sample(now, &server);
        sample_after(&mut mon, &mut server, &mut now);
        let before = mon.latest_present(VmId(0), VmMetricKind::IowaitRatio).unwrap();
        for _ in 0..50 {
            server.tick(DT);
        }
        now += SimDuration::from_secs(5.0);
        let snap = server.counters(VmId(0)).unwrap();
        let outcome = mon.ingest_tweaked(now, VmId(0), snap, |kind, raw| {
            if kind == VmMetricKind::IowaitRatio {
                Some(f64::NAN)
            } else {
                raw
            }
        });
        assert_eq!(outcome, IngestOutcome::Recorded);
        // NaN became a missing sample; the EWMA held its previous state.
        assert_eq!(mon.latest(VmId(0), VmMetricKind::IowaitRatio), None);
        assert_eq!(mon.latest_present(VmId(0), VmMetricKind::IowaitRatio), Some(before));
        // Other metrics in the same delivery were unaffected.
        assert!(mon.latest(VmId(0), VmMetricKind::IoBps).unwrap() > 0.0);
    }

    #[test]
    fn duplicate_snapshot_content_yields_missing_metrics() {
        // The duplicate *fault* re-delivers the previous snapshot content at
        // a fresh timestamp: zero delta => iowait/CPI missing, rates zero.
        let mut server = busy_server();
        let mut mon = PerformanceMonitor::new(&PerfCloudConfig::default());
        let mut now = SimTime::ZERO;
        mon.sample(now, &server);
        sample_after(&mut mon, &mut server, &mut now);
        let prev = mon.previous_snapshot(VmId(0)).unwrap();
        now += SimDuration::from_secs(5.0);
        assert_eq!(mon.ingest(now, VmId(0), prev), IngestOutcome::Recorded);
        assert_eq!(mon.latest(VmId(0), VmMetricKind::IowaitRatio), None);
        assert_eq!(mon.latest(VmId(0), VmMetricKind::Cpi), None);
    }

    #[test]
    fn forget_drops_vm() {
        let mut server = busy_server();
        let mut mon = PerformanceMonitor::new(&PerfCloudConfig::default());
        let mut now = SimTime::ZERO;
        mon.sample(now, &server);
        sample_after(&mut mon, &mut server, &mut now);
        assert_eq!(mon.monitored_vms().count(), 2);
        mon.forget(VmId(1));
        assert_eq!(mon.monitored_vms().collect::<Vec<_>>(), vec![VmId(0)]);
    }
}
