//! PerfCloud — the paper's primary contribution.
//!
//! Non-invasive performance isolation for data-intensive scale-out
//! applications in a multi-tenant cloud, built from four pieces wired
//! together by a per-server agent:
//!
//! * [`monitor::PerformanceMonitor`] — samples per-VM counters every 5 s,
//!   takes deltas, smooths with an EWMA (§III-D.1);
//! * [`detector`] — the contention signal: standard deviation **across the
//!   application's VMs** of the block-iowait ratio (threshold ℋ = 10) and of
//!   CPI (threshold ℋ = 1) (§III-A);
//! * [`antagonist::AntagonistIdentifier`] — online Pearson cross-correlation
//!   (missing-as-zero, threshold 0.8, usable from 3 samples) between the
//!   victim's deviation series and each low-priority VM's I/O throughput /
//!   LLC miss rate (§III-B);
//! * [`cubic::CubicController`] — the CUBIC-congestion-control-inspired cap
//!   dynamics of Eq. 1: multiplicative decrease by β = 0.8 under contention,
//!   cubic growth (initial-growth → plateau → probing) otherwise (§III-C);
//! * [`node_manager::NodeManager`] — Algorithm 1: fetches VM priorities and
//!   application membership from the [`cloud::CloudManager`], runs the
//!   pipeline, and applies caps through the hypervisor's blkio-throttle and
//!   `vcpu_quota` actuators (§III-D.2).

pub mod antagonist;
pub mod chaos;
pub mod cloud;
pub mod config;
pub mod cubic;
pub mod detector;
pub mod monitor;
pub mod node_manager;
pub mod pipeline;

pub use antagonist::{AntagonistIdentifier, Resource};
pub use chaos::{ManagerFault, NodeFaults};
pub use cloud::{AppId, CloudManager, Placement, PlacementEpoch, VmColumns, VmRecord};
pub use config::PerfCloudConfig;
pub use cubic::{CubicController, CubicState};
pub use detector::{deviation_across_vms, ContentionSignal};
pub use monitor::{IngestOutcome, IngestStats, PerformanceMonitor, VmMetricKind};
pub use node_manager::{NodeManager, PlacementApplyOutcome, StepReport};
pub use pipeline::{Detector, DetectorKind, Identifier, IdentifierKind, PipelineSpec};
