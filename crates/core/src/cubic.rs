//! The CUBIC-inspired dynamic resource controller (Eq. 1, §III-C).
//!
//! Caps are managed in **normalized units**: 1.0 is the antagonist VM's
//! observed resource usage when control began (the paper initializes the cap
//! "to be equal to the VM's observed CPU usage or I/O throughput"). On each
//! sampling interval:
//!
//! * **contention** (`I(t) > ℋ`): multiplicative decrease,
//!   `C ← (1 − β)·C` — with the paper's β = 0.8 the cap drops to 20%;
//! * **otherwise**: cubic growth `C(T) = γ·(T − K)³ + C_max`, where `C_max`
//!   is the cap at the last decrease event, `T` counts intervals since that
//!   event, and `K = ∛((C_max − C₀)/γ)` anchors the curve so growth resumes
//!   exactly from the post-decrease cap `C₀`.
//!
//! The curve gives the paper's three regions (Fig. 7): steep *initial
//! growth* back toward `C_max`, a *plateau* around `C_max` whose length is
//! set by γ, then aggressive *probing* for more bandwidth. When the cap
//! grows past `release_level` (≥ the observed usage), the throttle is no
//! longer binding and the controller releases the VM.

/// Floor for the normalized cap. Repeated multiplicative decreases converge
/// toward zero; an actual zero cap would freeze the antagonist entirely
/// (starving it of the progress the paper's throttling preserves) and pin
/// `K = ∛(C_max/γ)` so recovery never anchors. Saturating here keeps every
/// quota strictly positive and the cubic curve well-defined.
pub const CAP_FLOOR: f64 = 1e-3;

/// Controller parameters (β, γ of Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CubicController {
    /// Multiplicative-decrease factor β ∈ (0, 1).
    pub beta: f64,
    /// Growth scaling constant γ > 0.
    pub gamma: f64,
}

impl CubicController {
    /// Creates a controller; panics on out-of-range parameters.
    pub fn new(beta: f64, gamma: f64) -> Self {
        assert!(beta > 0.0 && beta < 1.0, "beta must be in (0,1), got {beta}");
        assert!(gamma > 0.0, "gamma must be positive, got {gamma}");
        CubicController { beta, gamma }
    }

    /// The paper's tuning: β = 0.8, γ = 0.005.
    pub fn paper() -> Self {
        Self::new(0.8, 0.005)
    }

    /// Advances one interval. `contended` is `I(t) > ℋ` for the resource
    /// this state controls. Returns the new normalized cap.
    pub fn step(&self, state: &mut CubicState, contended: bool) -> f64 {
        if contended {
            state.c_max = state.cap;
            state.cap = (state.cap * (1.0 - self.beta)).max(CAP_FLOOR);
            state.anchor = state.cap;
            state.intervals_since_decrease = 0;
            state.ever_decreased = true;
        } else {
            state.intervals_since_decrease += 1;
            let t = state.intervals_since_decrease as f64;
            let k = ((state.c_max - state.anchor) / self.gamma).cbrt();
            let next = self.gamma * (t - k).powi(3) + state.c_max;
            // Growth never moves the cap downward.
            state.cap = state.cap.max(next);
        }
        state.cap
    }
}

/// Per-(VM, resource) controller state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CubicState {
    /// Current normalized cap (1.0 = usage observed at control start).
    pub cap: f64,
    /// Cap at the last decrease event (`C_max` of Eq. 1).
    pub c_max: f64,
    /// Post-decrease cap the cubic curve is anchored at.
    anchor: f64,
    /// Intervals elapsed since the last decrease (`T_i` of Eq. 1).
    pub intervals_since_decrease: u64,
    /// Whether any decrease has happened yet.
    pub ever_decreased: bool,
}

impl CubicState {
    /// Fresh state with the cap at the observed usage (normalized 1.0).
    pub fn new() -> Self {
        Self::with_cap(1.0)
    }

    /// Fresh state with an explicit starting cap.
    pub fn with_cap(cap: f64) -> Self {
        assert!(cap > 0.0, "initial cap must be positive");
        CubicState {
            cap,
            c_max: cap,
            anchor: cap,
            intervals_since_decrease: 0,
            ever_decreased: false,
        }
    }
}

impl Default for CubicState {
    fn default() -> Self {
        Self::new()
    }
}

/// Classification of where on the growth curve a state currently sits —
/// used by the Fig. 7 / Fig. 10 harnesses to label the regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrowthRegion {
    /// Below ~95% of `C_max`: steep recovery toward fairness.
    InitialGrowth,
    /// Within ±5% of `C_max`: conservative plateau.
    Plateau,
    /// Above 105% of `C_max`: aggressive probing for spare bandwidth.
    Probing,
}

impl CubicState {
    /// Current growth region.
    pub fn region(&self) -> GrowthRegion {
        if self.cap < 0.95 * self.c_max {
            GrowthRegion::InitialGrowth
        } else if self.cap <= 1.05 * self.c_max {
            GrowthRegion::Plateau
        } else {
            GrowthRegion::Probing
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters() {
        let c = CubicController::paper();
        assert_eq!(c.beta, 0.8);
        assert_eq!(c.gamma, 0.005);
    }

    #[test]
    fn contention_decreases_multiplicatively() {
        let c = CubicController::paper();
        let mut s = CubicState::new();
        let cap = c.step(&mut s, true);
        assert!((cap - 0.2).abs() < 1e-12, "β=0.8 → cap drops to 20%");
        assert_eq!(s.c_max, 1.0);
        assert!(s.ever_decreased);
        let cap = c.step(&mut s, true);
        assert!((cap - 0.04).abs() < 1e-12, "repeated contention keeps shrinking");
    }

    #[test]
    fn growth_recovers_to_cmax_then_probes() {
        let c = CubicController::paper();
        let mut s = CubicState::new();
        c.step(&mut s, true); // drop to 0.2
        let mut saw_plateau = false;
        let mut last = s.cap;
        let mut recovered_at = None;
        for t in 1..=40 {
            let cap = c.step(&mut s, false);
            assert!(cap >= last - 1e-12, "growth must be monotone");
            last = cap;
            if s.region() == GrowthRegion::Plateau {
                saw_plateau = true;
            }
            if recovered_at.is_none() && cap >= 0.99 {
                recovered_at = Some(t);
            }
        }
        assert!(saw_plateau, "curve must pass through the plateau region");
        let r = recovered_at.expect("cap must recover to C_max");
        // K = ∛(0.8/0.005) ≈ 5.4 intervals: recovery in a handful of
        // intervals, not instantly and not after hundreds.
        assert!((3..=10).contains(&r), "recovered at interval {r}");
        assert!(s.cap > 1.05, "after recovery the controller probes beyond C_max");
        assert_eq!(s.region(), GrowthRegion::Probing);
    }

    #[test]
    fn growth_is_slow_near_cmax_fast_far_away() {
        let c = CubicController::paper();
        let mut s = CubicState::new();
        c.step(&mut s, true);
        let mut caps = vec![s.cap];
        for _ in 0..30 {
            caps.push(c.step(&mut s, false));
        }
        // Find increments: early (initial growth) and around recovery
        // (plateau) — plateau increments must be smaller.
        let increments: Vec<f64> = caps.windows(2).map(|w| w[1] - w[0]).collect();
        let k = ((s.c_max * 0.8) / c.gamma).cbrt().round() as usize;
        let early = increments[0];
        let plateau = increments[k.min(increments.len() - 2)];
        assert!(
            early > 3.0 * plateau,
            "initial growth ({early:.4}) should outpace plateau ({plateau:.4})"
        );
        // Probing increments grow again.
        let probe = increments[increments.len() - 1];
        assert!(probe > plateau, "probing should accelerate: {probe:.4} vs {plateau:.4}");
    }

    #[test]
    fn fresh_state_probes_immediately() {
        // Never-decreased state: K = 0, cubic grows from C_max upward.
        let c = CubicController::paper();
        let mut s = CubicState::new();
        let cap = c.step(&mut s, false);
        assert!(cap >= 1.0);
        for _ in 0..20 {
            c.step(&mut s, false);
        }
        assert!(s.cap > 1.0, "uncontended control probes upward");
    }

    #[test]
    fn decrease_after_recovery_uses_new_cmax() {
        let c = CubicController::paper();
        let mut s = CubicState::new();
        c.step(&mut s, true);
        for _ in 0..20 {
            c.step(&mut s, false);
        }
        let high = s.cap;
        assert!(high > 1.0);
        c.step(&mut s, true);
        assert!((s.cap - 0.2 * high).abs() < 1e-9);
        assert!((s.c_max - high).abs() < 1e-12);
    }

    #[test]
    fn sustained_contention_saturates_at_floor() {
        let c = CubicController::paper();
        let mut s = CubicState::new();
        for _ in 0..100 {
            let cap = c.step(&mut s, true);
            assert!(cap >= CAP_FLOOR, "cap fell through the floor: {cap}");
        }
        assert_eq!(s.cap, CAP_FLOOR, "repeated decrease must saturate exactly at the floor");
        // A decrease *at* the floor keeps the state consistent: C_max is the
        // pre-decrease cap (also the floor), anchor equals cap.
        let cap = c.step(&mut s, true);
        assert_eq!(cap, CAP_FLOOR);
        assert_eq!(s.c_max, CAP_FLOOR);
    }

    #[test]
    fn recovery_from_floor_is_finite_and_monotone() {
        // After saturating, K = ∛((C_max − anchor)/γ) = 0 and growth is pure
        // γ·T³ from the floor — the cap must escape in bounded time rather
        // than stay pinned.
        let c = CubicController::paper();
        let mut s = CubicState::new();
        for _ in 0..50 {
            c.step(&mut s, true);
        }
        assert_eq!(s.cap, CAP_FLOOR);
        let mut last = s.cap;
        let mut escaped_at = None;
        for t in 1..=40 {
            let cap = c.step(&mut s, false);
            assert!(cap.is_finite());
            assert!(cap >= last, "recovery must be monotone");
            last = cap;
            if escaped_at.is_none() && cap >= 0.5 {
                escaped_at = Some(t);
            }
        }
        // γ·T³ reaches 0.5 at T = ∛(0.5/0.005) ≈ 4.6.
        let t = escaped_at.expect("cap must recover from the floor");
        assert!((3..=8).contains(&t), "escaped at interval {t}");
    }

    #[test]
    fn wmax_crossing_is_exact() {
        // γ = 0.8/27 makes K = ∛(0.8/γ) = 3 exactly: the curve must touch
        // C_max precisely at T = 3, sit below it before, and exceed after.
        let c = CubicController::new(0.8, 0.8 / 27.0);
        let mut s = CubicState::new();
        c.step(&mut s, true); // cap -> 0.2, C_max = 1.0
        let c1 = c.step(&mut s, false);
        let c2 = c.step(&mut s, false);
        let c3 = c.step(&mut s, false);
        let c4 = c.step(&mut s, false);
        assert!(c1 < 1.0 && c2 < 1.0, "below W_max before the crossing: {c1} {c2}");
        assert!((c3 - 1.0).abs() < 1e-9, "curve touches C_max exactly at T = K: {c3}");
        assert!(c4 > 1.0, "beyond K the curve probes past W_max: {c4}");
        // The inflection: increments shrink approaching K, grow after it.
        let inc_before = c2 - c1;
        let inc_at = c3 - c2;
        let inc_after = c4 - c3;
        assert!(inc_before > inc_at, "growth decelerates into the plateau");
        assert!(inc_after < inc_at * 2.0 + 1e-9, "first probe step stays gentle");
    }

    #[test]
    fn region_classification() {
        let mut s = CubicState::new();
        s.c_max = 1.0;
        s.cap = 0.5;
        assert_eq!(s.region(), GrowthRegion::InitialGrowth);
        s.cap = 1.0;
        assert_eq!(s.region(), GrowthRegion::Plateau);
        s.cap = 1.2;
        assert_eq!(s.region(), GrowthRegion::Probing);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn bad_beta_rejected() {
        let _ = CubicController::new(0.0, 0.005);
    }

    #[test]
    #[should_panic(expected = "initial cap")]
    fn zero_cap_rejected() {
        let _ = CubicState::with_cap(0.0);
    }

    /// Replays the shape of the paper's Fig. 7: the cubic function's three
    /// regions appear in order after a single decrease.
    #[test]
    fn fig7_region_ordering() {
        let c = CubicController::paper();
        let mut s = CubicState::new();
        c.step(&mut s, true);
        let mut regions = Vec::new();
        for _ in 0..40 {
            c.step(&mut s, false);
            let r = s.region();
            if regions.last() != Some(&r) {
                regions.push(r);
            }
        }
        assert_eq!(
            regions,
            vec![GrowthRegion::InitialGrowth, GrowthRegion::Plateau, GrowthRegion::Probing]
        );
    }
}
