//! Fault-injection integration for the per-server agent.
//!
//! [`NodeFaults`] sits between a [`NodeManager`](crate::NodeManager) and the
//! hypervisor interface and applies a
//! [`FaultScenario`](perfcloud_sim::FaultScenario) to everything the agent
//! observes locally: sample deliveries can be dropped, delayed, or
//! duplicated; individual metric values corrupted (NaN, spike, stuck-at);
//! and the agent itself crash-restarted. All decisions come from the
//! stateless [`FaultInjector`], so runs are bit-reproducible from
//! `(seed, scenario)`.
//!
//! Manager stalls and placement desynchronization are *control-plane*
//! conditions, not local ones, and live in `perfcloud-ctrl`: a stall is the
//! plane refusing to step the agent (`StallManager` windows), and desync is
//! the placement link dropping updates (`DesyncPlacement` windows) — one
//! code path for control-plane failure injection instead of the former
//! direct-mutation duplicate here.

use crate::monitor::{IngestOutcome, PerformanceMonitor, VmMetricKind};
use perfcloud_host::{CounterSnapshot, VmId};
use perfcloud_obs::flight::{FaultClass, RejectReason};
use perfcloud_obs::{FlightEvent, FlightRecorder};
use perfcloud_sim::faults::{FaultInjector, FaultKind, FaultScenario, MetricClass};
use perfcloud_sim::{SimDuration, SimTime};
use perfcloud_telemetry::Sample;
use std::collections::BTreeMap;

/// Maps a rejection outcome to its flight-recorder reason, `None` for
/// accepted deliveries.
pub(crate) fn reject_reason(outcome: IngestOutcome) -> Option<RejectReason> {
    match outcome {
        IngestOutcome::Baseline | IngestOutcome::Recorded => None,
        IngestOutcome::Stale => Some(RejectReason::Stale),
        IngestOutcome::Duplicate => Some(RejectReason::Duplicate),
        IngestOutcome::CounterRegression => Some(RejectReason::CounterRegression),
    }
}

/// What a fault did to the node manager at an interval boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManagerFault {
    /// The manager runs normally this interval.
    None,
    /// The manager crashed: its in-memory state is gone and it restarts from
    /// scratch this interval.
    Crashed,
}

/// Per-server fault state: a bound injector plus the small amount of mutable
/// bookkeeping faults need (delayed deliveries in flight, stuck-sensor
/// memory).
#[derive(Debug, Clone)]
pub struct NodeFaults {
    injector: FaultInjector,
    server: u32,
    /// Delayed sample deliveries in flight: (due, vm, snapshot).
    delayed: Vec<(SimTime, VmId, CounterSnapshot)>,
    /// Last good value per (vm, metric) — what a stuck sensor replays.
    stuck: BTreeMap<(VmId, MetricClass), f64>,
}

impl NodeFaults {
    /// Binds `(seed, scenario)` to the server with index `server`.
    pub fn new(seed: u64, scenario: FaultScenario, server: u32) -> Self {
        NodeFaults {
            injector: FaultInjector::new(seed, scenario),
            server,
            delayed: Vec::new(),
            stuck: BTreeMap::new(),
        }
    }

    /// The bound injector.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Evaluates process-level faults at the start of a control interval.
    /// A crash loses the in-flight delayed deliveries (they were RPCs to a
    /// process that no longer exists).
    pub fn begin_interval(&mut self, now: SimTime) -> ManagerFault {
        let crashed = self.injector.scenario().rules.iter().any(|r| {
            r.kind == FaultKind::CrashRestart && self.injector.fires(r, now, self.server, None)
        });
        if crashed {
            self.delayed.clear();
            return ManagerFault::Crashed;
        }
        ManagerFault::None
    }

    /// Ingests a collected sample batch through the fault filter, in place
    /// of ingesting it directly: due delayed deliveries land first, then
    /// each fresh sample is dropped / delayed / duplicated / corrupted per
    /// the scenario. Fault decisions hash the sample's own timestamp, so a
    /// replayed batch reproduces the original run's faults exactly (for
    /// the default sim source every timestamp equals `now` and the
    /// behavior is byte-identical to the historical direct read).
    pub fn sample(
        &mut self,
        now: SimTime,
        interval: SimDuration,
        monitor: &mut PerformanceMonitor,
        samples: &[Sample],
        mut flight: Option<&mut FlightRecorder>,
    ) {
        let t = now.as_micros();
        // Deliver what's due, oldest first (deterministic order), before the
        // fresh poll — a late RPC arriving just ahead of the next one. After
        // the sort the due deliveries are a prefix, so they can be peeled off
        // the front without draining into a scratch Vec.
        self.delayed.sort_by_key(|a| (a.0, a.1));
        while self.delayed.first().is_some_and(|&(due, _, _)| due <= now) {
            let (_, vm, snap) = self.delayed.remove(0);
            let outcome = monitor.ingest(now, vm, snap);
            if let (Some(fl), Some(reason)) = (flight.as_deref_mut(), reject_reason(outcome)) {
                fl.record(
                    t,
                    FlightEvent::IngestRejected {
                        server: self.server,
                        vm: u64::from(vm.0),
                        reason,
                    },
                );
            }
        }

        for s in samples {
            let (at, vm, snap) = (s.time, s.vm, s.snapshot);
            if self.sample_fault(at, vm, FaultKindTag::Drop).is_some() {
                if let Some(fl) = flight.as_deref_mut() {
                    fl.record(
                        t,
                        FlightEvent::Fault {
                            class: FaultClass::DropSample,
                            server: self.server,
                            vm: u64::from(vm.0),
                        },
                    );
                }
                continue;
            }
            if let Some(FaultKind::DelaySample { intervals }) =
                self.sample_fault(at, vm, FaultKindTag::Delay)
            {
                let due = at.saturating_add(interval.mul_f64(intervals as f64));
                self.delayed.push((due, vm, snap));
                if let Some(fl) = flight.as_deref_mut() {
                    fl.record(
                        t,
                        FlightEvent::Fault {
                            class: FaultClass::DelaySample,
                            server: self.server,
                            vm: u64::from(vm.0),
                        },
                    );
                }
                continue;
            }
            let duplicated = self.sample_fault(at, vm, FaultKindTag::Duplicate).is_some();
            let deliver = if duplicated {
                if let Some(fl) = flight.as_deref_mut() {
                    fl.record(
                        t,
                        FlightEvent::Fault {
                            class: FaultClass::DuplicateSample,
                            server: self.server,
                            vm: u64::from(vm.0),
                        },
                    );
                }
                monitor.previous_snapshot(vm).unwrap_or(snap)
            } else {
                snap
            };
            if let Some(fl) = flight.as_deref_mut() {
                if self.corruption_fires(at, vm) {
                    fl.record(
                        t,
                        FlightEvent::Fault {
                            class: FaultClass::CorruptSample,
                            server: self.server,
                            vm: u64::from(vm.0),
                        },
                    );
                }
            }
            let outcome = self.ingest_corrupted(at, vm, deliver, monitor);
            if let (Some(fl), Some(reason)) = (flight.as_deref_mut(), reject_reason(outcome)) {
                fl.record(
                    t,
                    FlightEvent::IngestRejected {
                        server: self.server,
                        vm: u64::from(vm.0),
                        reason,
                    },
                );
            }
        }
    }

    /// Whether any metric-corruption rule fires for `vm` this instant.
    /// Pure re-evaluation of the stateless injector: recording the event
    /// cannot perturb the corruption decisions themselves.
    fn corruption_fires(&self, now: SimTime, vm: VmId) -> bool {
        self.injector.scenario().rules.iter().any(|r| {
            matches!(
                r.kind,
                FaultKind::CorruptNaN | FaultKind::CorruptSpike { .. } | FaultKind::CorruptStuckAt
            ) && (r.target.matches_metric(MetricClass::BlkioIowait)
                || r.target.matches_metric(MetricClass::Cpi))
                && self.injector.fires(r, now, self.server, Some(vm.0))
        })
    }

    fn sample_fault(&self, now: SimTime, vm: VmId, tag: FaultKindTag) -> Option<FaultKind> {
        self.injector
            .scenario()
            .rules
            .iter()
            .find(|r| tag.matches(&r.kind) && self.injector.fires(r, now, self.server, Some(vm.0)))
            .map(|r| r.kind)
    }

    /// Ingests one snapshot with the scenario's metric corruptions applied.
    pub fn ingest_corrupted(
        &mut self,
        now: SimTime,
        vm: VmId,
        snap: CounterSnapshot,
        monitor: &mut PerformanceMonitor,
    ) -> IngestOutcome {
        let injector = &self.injector;
        let server = self.server;
        let stuck = &mut self.stuck;
        monitor.ingest_tweaked(now, vm, snap, |kind, raw| {
            let metric = match kind {
                VmMetricKind::IowaitRatio => MetricClass::BlkioIowait,
                VmMetricKind::Cpi => MetricClass::Cpi,
                _ => return raw,
            };
            let mut value = raw;
            let mut stuck_fired = false;
            for rule in &injector.scenario().rules {
                if !rule.target.matches_metric(metric)
                    || !injector.fires(rule, now, server, Some(vm.0))
                {
                    continue;
                }
                match rule.kind {
                    FaultKind::CorruptNaN => value = Some(f64::NAN),
                    FaultKind::CorruptSpike { factor } => value = value.map(|v| v * factor),
                    FaultKind::CorruptStuckAt => {
                        stuck_fired = true;
                        if let Some(&held) = stuck.get(&(vm, metric)) {
                            value = Some(held);
                        }
                    }
                    _ => {}
                }
            }
            // The stuck memory tracks the last value that actually left the
            // sensor untampered-with; a stuck interval replays it unchanged.
            if !stuck_fired {
                if let Some(v) = value.filter(|v| v.is_finite()) {
                    stuck.insert((vm, metric), v);
                }
            }
            value
        })
    }
}

/// Internal discriminator for the three sample-delivery fault kinds (their
/// payloads vary, so `matches!` per call site would repeat the pattern).
#[derive(Clone, Copy)]
enum FaultKindTag {
    Drop,
    Delay,
    Duplicate,
}

impl FaultKindTag {
    fn matches(self, kind: &FaultKind) -> bool {
        matches!(
            (self, kind),
            (FaultKindTag::Drop, FaultKind::DropSample)
                | (FaultKindTag::Delay, FaultKind::DelaySample { .. })
                | (FaultKindTag::Duplicate, FaultKind::DuplicateSample)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PerfCloudConfig;
    use perfcloud_host::{PhysicalServer, ServerConfig, ServerId, VmConfig};
    use perfcloud_sim::faults::FaultRule;
    use perfcloud_sim::RngFactory;
    use perfcloud_telemetry::{CounterSource as _, SimSource};
    use perfcloud_workloads::FioRandRead;

    const DT: SimDuration = SimDuration::from_micros(100_000);
    const INTERVAL: SimDuration = SimDuration::from_micros(5_000_000);

    fn busy_server() -> PhysicalServer {
        let mut s =
            PhysicalServer::new(ServerId(0), ServerConfig::default(), RngFactory::new(5), DT);
        s.add_vm(VmId(0), VmConfig::high_priority());
        s.spawn(VmId(0), Box::new(FioRandRead::with_rate(1000.0, 4096.0, None)));
        s
    }

    fn drive(
        faults: &mut NodeFaults,
        monitor: &mut PerformanceMonitor,
        server: &mut PhysicalServer,
        intervals: usize,
    ) {
        let mut source = SimSource::new();
        let mut buf = Vec::new();
        let mut step = |faults: &mut NodeFaults,
                        monitor: &mut PerformanceMonitor,
                        server: &PhysicalServer,
                        now| {
            buf.clear();
            source.collect_into(now, server, &mut buf);
            faults.sample(now, INTERVAL, monitor, &buf, None);
        };
        let mut now = SimTime::ZERO;
        step(faults, monitor, server, now);
        for _ in 0..intervals {
            for _ in 0..50 {
                server.tick(DT);
            }
            now = now.saturating_add(INTERVAL);
            step(faults, monitor, server, now);
        }
    }

    #[test]
    fn drop_all_samples_leaves_series_empty() {
        let scenario =
            FaultScenario::named("drop-all").rule(FaultRule::new("drop", FaultKind::DropSample));
        let mut faults = NodeFaults::new(1, scenario, 0);
        let mut server = busy_server();
        let mut mon = PerformanceMonitor::new(&PerfCloudConfig::default());
        drive(&mut faults, &mut mon, &mut server, 4);
        assert!(mon.series(VmId(0), VmMetricKind::IoBps).is_none());
    }

    #[test]
    fn delayed_samples_arrive_late_and_stale() {
        // Delay exactly one delivery by two intervals; fresher samples land
        // in between, so the late one must be rejected as stale, and the
        // series must hold the fresh points only.
        let scenario = FaultScenario::named("delay-one").rule(
            FaultRule::new("delay", FaultKind::DelaySample { intervals: 2 })
                .window(SimTime::from_secs(5), SimTime::from_secs(6)),
        );
        let mut faults = NodeFaults::new(1, scenario, 0);
        let mut server = busy_server();
        let mut mon = PerformanceMonitor::new(&PerfCloudConfig::default());
        drive(&mut faults, &mut mon, &mut server, 5);
        // Intervals: t=5 delayed (due t=15), rest fresh. Fresh recorded at
        // t=10,15(rejected? no: fresh at 15 comes after late lands)… the
        // invariant that matters: no panic, and the series timestamps are
        // strictly increasing with no point at t=5.
        let series = mon.series(VmId(0), VmMetricKind::IoBps).unwrap();
        assert!(series.times().iter().all(|&t| t != SimTime::from_secs(5)));
        assert!(!faults.delayed.iter().any(|&(due, _, _)| due <= SimTime::from_secs(25)));
    }

    #[test]
    fn duplicate_delivery_zeroes_the_interval() {
        let scenario = FaultScenario::named("dup").rule(
            FaultRule::new("dup", FaultKind::DuplicateSample)
                .window(SimTime::from_secs(10), SimTime::from_secs(11)),
        );
        let mut faults = NodeFaults::new(1, scenario, 0);
        let mut server = busy_server();
        let mut mon = PerformanceMonitor::new(&PerfCloudConfig::default());
        drive(&mut faults, &mut mon, &mut server, 3);
        // At t=10 the previous snapshot was re-delivered: zero delta, so the
        // iowait ratio is missing there but present at t=5 and t=15.
        let series = mon.series(VmId(0), VmMetricKind::IowaitRatio).unwrap();
        let at = |secs: u64| {
            series
                .times()
                .iter()
                .position(|&t| t == SimTime::from_secs(secs))
                .and_then(|i| series.values()[i])
        };
        assert!(at(5).is_some());
        assert_eq!(at(10), None);
        assert!(at(15).is_some());
    }

    #[test]
    fn nan_corruption_records_missing_not_poison() {
        let scenario = FaultScenario::named("nan")
            .rule(FaultRule::new("nan", FaultKind::CorruptNaN).on_metric(MetricClass::BlkioIowait));
        let mut faults = NodeFaults::new(1, scenario, 0);
        let mut server = busy_server();
        let mut mon = PerformanceMonitor::new(&PerfCloudConfig::default());
        drive(&mut faults, &mut mon, &mut server, 4);
        let series = mon.series(VmId(0), VmMetricKind::IowaitRatio).unwrap();
        assert!(series.values().iter().all(|v| v.is_none()));
        // The CPI stream was untargeted and stays clean and finite.
        let cpi = mon.series(VmId(0), VmMetricKind::Cpi).unwrap();
        assert!(cpi.values().iter().any(|v| v.is_some_and(|x| x.is_finite())));
    }

    #[test]
    fn stuck_at_replays_last_good_value() {
        let scenario = FaultScenario::named("stuck").rule(
            FaultRule::new("stuck", FaultKind::CorruptStuckAt)
                .on_metric(MetricClass::Cpi)
                .window(SimTime::from_secs(10), SimTime::MAX),
        );
        let mut faults = NodeFaults::new(1, scenario, 0);
        let mut server = busy_server();
        let mut mon = PerformanceMonitor::new(&PerfCloudConfig::default());
        drive(&mut faults, &mut mon, &mut server, 5);
        let series = mon.series(VmId(0), VmMetricKind::Cpi).unwrap();
        let vals: Vec<f64> = series.values().iter().filter_map(|v| *v).collect();
        assert!(vals.len() >= 3);
        // From the stuck window on, the *raw* input repeats; with EWMA the
        // smoothed series converges toward that constant, so consecutive
        // steps shrink geometrically.
        let deltas: Vec<f64> = vals.windows(2).map(|w| (w[1] - w[0]).abs()).collect();
        let last = deltas.last().copied().unwrap();
        let first = deltas.first().copied().unwrap();
        assert!(last <= first + 1e-12, "stuck sensor should damp changes: {deltas:?}");
    }

    #[test]
    fn crash_semantics() {
        // Stall windows live in the control plane now: locally a stall rule
        // is inert, while the crash window still fires exactly once.
        let scenario = FaultScenario::named("mgr")
            .rule(
                FaultRule::new("stall", FaultKind::StallManager { intervals: 2 })
                    .window(SimTime::from_secs(10), SimTime::from_secs(11)),
            )
            .rule(
                FaultRule::new("crash", FaultKind::CrashRestart)
                    .window(SimTime::from_secs(30), SimTime::from_secs(31)),
            );
        let mut faults = NodeFaults::new(1, scenario, 0);
        let f =
            |faults: &mut NodeFaults, secs: u64| faults.begin_interval(SimTime::from_secs(secs));
        assert_eq!(f(&mut faults, 5), ManagerFault::None);
        assert_eq!(f(&mut faults, 10), ManagerFault::None);
        assert_eq!(f(&mut faults, 25), ManagerFault::None);
        assert_eq!(f(&mut faults, 30), ManagerFault::Crashed);
        assert_eq!(f(&mut faults, 35), ManagerFault::None);
    }

    #[test]
    fn crash_discards_inflight_delayed_deliveries() {
        let scenario = FaultScenario::named("crash-loses-rpcs").rule(
            FaultRule::new("crash", FaultKind::CrashRestart)
                .window(SimTime::from_secs(30), SimTime::from_secs(31)),
        );
        let mut faults = NodeFaults::new(1, scenario, 0);
        let snap = CounterSnapshot { counters: perfcloud_host::VmCounters::default() };
        faults.delayed.push((SimTime::from_secs(35), VmId(0), snap));
        assert_eq!(faults.begin_interval(SimTime::from_secs(30)), ManagerFault::Crashed);
        assert!(faults.delayed.is_empty(), "crash must drop in-flight deliveries");
    }
}
